package tree

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTemp drops content into a temp file and returns its path.
func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "sched.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRepairScheduleClean(t *testing.T) {
	var buf bytes.Buffer
	want := Schedule{3, 1, 4, 1, 5}
	if _, err := WriteSchedule(&buf, want.Emit); err != nil {
		t.Fatal(err)
	}
	ids, safeOff, complete, err := RepairSchedule(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !complete || ids != 5 || safeOff != int64(buf.Len()) {
		t.Fatalf("clean stream: ids=%d safeOff=%d complete=%v (len=%d)", ids, safeOff, complete, buf.Len())
	}

	path := writeTemp(t, buf.String())
	fids, fcomplete, err := RepairScheduleFile(path)
	if err != nil || !fcomplete || fids != 5 {
		t.Fatalf("file repair of clean stream: ids=%d complete=%v err=%v", fids, fcomplete, err)
	}
	after, _ := os.ReadFile(path)
	if !bytes.Equal(after, buf.Bytes()) {
		t.Fatal("clean file modified by repair")
	}
}

// TestRepairScheduleTruncatedTails drives the repair over every damage
// shape a kill can produce and checks the surviving prefix is exactly the
// trusted id lines — and that appending a WriteScheduleAt continuation
// yields a stream ReadScheduleStrict accepts.
func TestRepairScheduleTruncatedTails(t *testing.T) {
	full := Schedule{0, 1, 2, 3, 4, 5, 6, 7}
	cases := []struct {
		name    string
		content string
		ids     int64
	}{
		{"no trailer", "0\n1\n2\n", 3},
		{"torn last line", "0\n1\n27", 2},
		{"torn trailer", "0\n1\n# end cou", 2},
		{"truncation marker", "0\n1\n2\n# truncated count=3\n", 3},
		{"malformed id", "0\n1\nxyz\n2\n3\n", 2},
		{"negative id", "0\n1\n-4\n2\n", 2},
		{"miscounting end trailer", "0\n1\n# end count=7\n", 2},
		{"ids after end trailer", "0\n1\n# end count=2\n9\n", 2},
		{"empty file", "", 0},
		{"interior comment kept", "0\n# warm cache\n1\n2\n", 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := writeTemp(t, tc.content)
			ids, complete, err := RepairScheduleFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if ids != tc.ids {
				t.Fatalf("ids = %d, want %d", ids, tc.ids)
			}
			wantComplete := tc.name == "ids after end trailer"
			if complete != wantComplete {
				t.Fatalf("complete = %v, want %v", complete, wantComplete)
			}
			if complete {
				return
			}

			// Append the continuation and demand a strict-valid stream
			// equal to the uninterrupted emission.
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := WriteScheduleAt(f, ids, full.Emit); err != nil {
				t.Fatal(err)
			}
			f.Close()
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ReadScheduleStrict(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("resumed stream rejected: %v\n%s", err, data)
			}
			// The trusted prefix of every case is a prefix of full, so the
			// concatenation must equal full exactly.
			if len(got) != len(full) {
				t.Fatalf("resumed stream has %d ids, want %d", len(got), len(full))
			}
			for i := range got {
				if got[i] != full[i] {
					t.Fatalf("resumed stream diverges at %d: %d != %d", i, got[i], full[i])
				}
			}
		})
	}
}

func TestRepairScheduleFileMissing(t *testing.T) {
	_, _, err := RepairScheduleFile(filepath.Join(t.TempDir(), "absent"))
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("err = %v, want os.ErrNotExist", err)
	}
}

// TestWriteScheduleAtAbsoluteTrailers pins that a resumed emission seals
// with skip+written counts, in both the complete and the cancelled case.
func TestWriteScheduleAtAbsoluteTrailers(t *testing.T) {
	s := Schedule{10, 11, 12, 13}
	var buf bytes.Buffer
	n, err := WriteScheduleAt(&buf, 3, s.Emit)
	if err != nil || n != 1 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if got := buf.String(); got != "13\n# end count=4\n" {
		t.Fatalf("continuation = %q", got)
	}

	buf.Reset()
	stopEarly := func(yield func(seg []int) bool) bool {
		yield([]int{10, 11, 12})
		return false
	}
	n, err = WriteScheduleAt(&buf, 2, stopEarly)
	if !errors.Is(err, ErrTruncatedSchedule) || n != 1 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if got := buf.String(); got != "12\n# truncated count=3\n" {
		t.Fatalf("cancelled continuation = %q", got)
	}
}

// TestWriteScheduleAtSkipPastEnd: a source shorter than the resume offset
// is a mismatch, reported as truncation with nothing written.
func TestWriteScheduleAtSkipPastEnd(t *testing.T) {
	s := Schedule{1, 2}
	var buf bytes.Buffer
	n, err := WriteScheduleAt(&buf, 5, s.Emit)
	if !errors.Is(err, ErrTruncatedSchedule) || n != 0 || buf.Len() != 0 {
		t.Fatalf("n=%d err=%v out=%q", n, err, buf.String())
	}
	if !strings.Contains(err.Error(), "resume offset") {
		t.Fatalf("err lacks context: %v", err)
	}
}

// TestWriteScheduleAtSkipSpansSegments: the skip must count across
// segment boundaries, including a boundary exactly at the offset.
func TestWriteScheduleAtSkipSpansSegments(t *testing.T) {
	segs := func(yield func(seg []int) bool) bool {
		return yield([]int{0, 1}) && yield([]int{2, 3}) && yield([]int{4})
	}
	for skip, want := range map[int64]string{
		0: "0\n1\n2\n3\n4\n# end count=5\n",
		2: "2\n3\n4\n# end count=5\n",
		3: "3\n4\n# end count=5\n",
		5: "# end count=5\n",
	} {
		var buf bytes.Buffer
		if _, err := WriteScheduleAt(&buf, skip, segs); err != nil {
			t.Fatalf("skip=%d: %v", skip, err)
		}
		if buf.String() != want {
			t.Fatalf("skip=%d: got %q, want %q", skip, buf.String(), want)
		}
	}
}
