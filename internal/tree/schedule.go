package tree

import "fmt"

// Schedule is a permutation of the node indices: Schedule[t] is the node
// executed at step t. The paper writes σ(i) = t for the inverse mapping.
type Schedule []int

// Positions returns the inverse permutation: pos[i] = step at which node i
// executes (the paper's σ). It errors if s is not a permutation of [0, n).
func (s Schedule) Positions(n int) ([]int, error) {
	if len(s) != n {
		return nil, fmt.Errorf("schedule: has %d steps, tree has %d nodes", len(s), n)
	}
	pos := make([]int, n)
	for i := range pos {
		pos[i] = -1
	}
	for step, v := range s {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("schedule: step %d executes out-of-range node %d", step, v)
		}
		if pos[v] != -1 {
			return nil, fmt.Errorf("schedule: node %d executed twice (steps %d and %d)", v, pos[v], step)
		}
		pos[v] = step
	}
	return pos, nil
}

// IsTopological reports whether s is a valid topological schedule of t:
// a permutation in which every node appears after all of its children.
func IsTopological(t *Tree, s Schedule) bool {
	pos, err := s.Positions(t.N())
	if err != nil {
		return false
	}
	for i := 0; i < t.N(); i++ {
		if p := t.Parent(i); p != None && pos[i] >= pos[p] {
			return false
		}
	}
	return true
}

// IsPostorder reports whether s is a postorder traversal: for every node i,
// the nodes of the subtree rooted at i occupy a contiguous range of steps.
// (This is the paper's Section 3.1 definition.)
func IsPostorder(t *Tree, s Schedule) bool {
	pos, err := s.Positions(t.N())
	if err != nil {
		return false
	}
	// Compute, bottom-up, the min and max step of each subtree; the range
	// is contiguous iff max-min+1 == subtree size, and the traversal is
	// topological iff the root of the subtree sits at max.
	minStep := make([]int, t.N())
	maxStep := make([]int, t.N())
	size := make([]int, t.N())
	for _, v := range t.BottomUp() {
		minStep[v], maxStep[v], size[v] = pos[v], pos[v], 1
		for _, c := range t.Children(v) {
			if minStep[c] < minStep[v] {
				minStep[v] = minStep[c]
			}
			if maxStep[c] > maxStep[v] {
				maxStep[v] = maxStep[c]
			}
			size[v] += size[c]
		}
		if maxStep[v] != pos[v] || maxStep[v]-minStep[v]+1 != size[v] {
			return false
		}
	}
	return true
}

// Validate returns an error unless s is a topological schedule of t.
func Validate(t *Tree, s Schedule) error {
	pos, err := s.Positions(t.N())
	if err != nil {
		return err
	}
	for i := 0; i < t.N(); i++ {
		if p := t.Parent(i); p != None && pos[i] >= pos[p] {
			return fmt.Errorf("schedule: node %d (step %d) executes after its parent %d (step %d)",
				i, pos[i], p, pos[p])
		}
	}
	return nil
}
