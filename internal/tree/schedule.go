package tree

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Schedule is a permutation of the node indices: Schedule[t] is the node
// executed at step t. The paper writes σ(i) = t for the inverse mapping.
type Schedule []int

// Positions returns the inverse permutation: pos[i] = step at which node i
// executes (the paper's σ). It errors if s is not a permutation of [0, n).
func (s Schedule) Positions(n int) ([]int, error) {
	if len(s) != n {
		return nil, fmt.Errorf("schedule: has %d steps, tree has %d nodes", len(s), n)
	}
	pos := make([]int, n)
	for i := range pos {
		pos[i] = -1
	}
	for step, v := range s {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("schedule: step %d executes out-of-range node %d", step, v)
		}
		if pos[v] != -1 {
			return nil, fmt.Errorf("schedule: node %d executed twice (steps %d and %d)", v, pos[v], step)
		}
		pos[v] = step
	}
	return pos, nil
}

// IsTopological reports whether s is a valid topological schedule of t:
// a permutation in which every node appears after all of its children.
func IsTopological(t *Tree, s Schedule) bool {
	pos, err := s.Positions(t.N())
	if err != nil {
		return false
	}
	for i := 0; i < t.N(); i++ {
		if p := t.Parent(i); p != None && pos[i] >= pos[p] {
			return false
		}
	}
	return true
}

// IsPostorder reports whether s is a postorder traversal: for every node i,
// the nodes of the subtree rooted at i occupy a contiguous range of steps.
// (This is the paper's Section 3.1 definition.)
func IsPostorder(t *Tree, s Schedule) bool {
	pos, err := s.Positions(t.N())
	if err != nil {
		return false
	}
	// Compute, bottom-up, the min and max step of each subtree; the range
	// is contiguous iff max-min+1 == subtree size, and the traversal is
	// topological iff the root of the subtree sits at max.
	minStep := make([]int, t.N())
	maxStep := make([]int, t.N())
	size := make([]int, t.N())
	for _, v := range t.BottomUp() {
		minStep[v], maxStep[v], size[v] = pos[v], pos[v], 1
		for _, c := range t.Children(v) {
			if minStep[c] < minStep[v] {
				minStep[v] = minStep[c]
			}
			if maxStep[c] > maxStep[v] {
				maxStep[v] = maxStep[c]
			}
			size[v] += size[c]
		}
		if maxStep[v] != pos[v] || maxStep[v]-minStep[v]+1 != size[v] {
			return false
		}
	}
	return true
}

// Emit streams the materialized schedule as one segment — the adapter that
// lets a plain Schedule feed the segment-oriented consumers
// (WriteSchedule, memsim.RunStream).
func (s Schedule) Emit(yield func(seg []int) bool) bool {
	if len(s) == 0 {
		return true
	}
	return yield(s)
}

// ErrTruncatedSchedule marks a schedule stream that did not run to
// completion: WriteSchedule wraps it when the source stops early, and
// ReadScheduleStrict wraps it when a stream lacks the end trailer (or
// carries an explicit truncation marker). Callers test for it with
// errors.Is.
var ErrTruncatedSchedule = errors.New("schedule: truncated stream")

// The trailer lines WriteSchedule appends so a stream is crash-evident:
// a complete emission ends with endTrailerPrefix+count, an emission whose
// source stopped early ends with truncTrailerPrefix+count. Both are '#'
// comments, so the lenient ReadSchedule skips them unchanged.
const (
	endTrailerPrefix   = "# end count="
	truncTrailerPrefix = "# truncated count="
)

// WriteSchedule streams a schedule to w in the textual format of
// ReadSchedule — one node id per line — consuming it segment by segment
// from source, so a traversal of any length is written with O(segment)
// memory and the n-word slice never exists (the out-of-core emission path
// of liu.(*ProfileCache).EmitSchedule and expand.(*Engine).RecExpandStream;
// a materialized Schedule streams through its Emit method). It returns the
// number of ids written; an error from w aborts the source via its yield
// and is returned.
//
// The stream is crash-evident: a completed emission is sealed with a
// "# end count=N" trailer that ReadScheduleStrict demands, so a stream
// from a run killed mid-write can never pass for a complete one. A source
// that stops on its own is reported as an ErrTruncatedSchedule-wrapped
// error after a best-effort "# truncated count=N" marker is flushed, which
// lets downstream tooling distinguish a deliberate early stop (graceful
// cancellation) from a crash that left no trailer at all.
func WriteSchedule(w io.Writer, source func(yield func(seg []int) bool) bool) (int64, error) {
	return WriteScheduleAt(w, 0, source)
}

// WriteScheduleAt is WriteSchedule for a resumed emission: the first skip
// ids of the source are consumed without being written — they are already
// on disk in the partial stream being appended to — and the trailer counts
// are ABSOLUTE (skip + written), so the concatenation of the repaired
// partial file and this continuation is byte-identical to a single
// uninterrupted WriteSchedule run and passes ReadScheduleStrict. It
// returns the number of ids actually written (excluding the skipped
// prefix). A source that completes before producing skip ids cannot be the
// run the partial file came from; that is reported as an
// ErrTruncatedSchedule-wrapped error with nothing written.
func WriteScheduleAt(w io.Writer, skip int64, source func(yield func(seg []int) bool) bool) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	var n int64
	toSkip := skip
	var werr error
	buf := make([]byte, 0, 24)
	complete := source(func(seg []int) bool {
		if toSkip > 0 {
			if int64(len(seg)) <= toSkip {
				toSkip -= int64(len(seg))
				return true
			}
			seg = seg[toSkip:]
			toSkip = 0
		}
		for _, v := range seg {
			buf = strconv.AppendInt(buf[:0], int64(v), 10)
			buf = append(buf, '\n')
			if _, werr = bw.Write(buf); werr != nil {
				return false
			}
			n++
		}
		return true
	})
	if werr != nil {
		return n, werr
	}
	if toSkip > 0 {
		return n, fmt.Errorf("schedule: source ended %d ids before the resume offset %d: %w", toSkip, skip, ErrTruncatedSchedule)
	}
	if !complete {
		// Best-effort marker: the stream is already incomplete, so a
		// second write failure here changes nothing for the caller.
		fmt.Fprintf(bw, "%s%d\n", truncTrailerPrefix, skip+n)
		bw.Flush()
		return n, fmt.Errorf("schedule: stream stopped after %d ids: %w", skip+n, ErrTruncatedSchedule)
	}
	if _, err := fmt.Fprintf(bw, "%s%d\n", endTrailerPrefix, skip+n); err != nil {
		return n, err
	}
	if err := bw.Flush(); err != nil {
		return n, err
	}
	return n, nil
}

// ReadSchedule reads a schedule written by WriteSchedule: one decimal node
// id per line (blank lines and '#' comments skipped). It is the lenient
// reader — trailers are ignored like any other comment, so it accepts
// hand-written and truncated streams alike; use ReadScheduleStrict to
// demand proof of completeness.
func ReadSchedule(r io.Reader) (Schedule, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var s Schedule
	for sc.Scan() {
		line := sc.Text()
		if line == "" || line[0] == '#' {
			continue
		}
		v, err := strconv.Atoi(line)
		if err != nil {
			return nil, fmt.Errorf("schedule: bad line %q: %v", line, err)
		}
		s = append(s, v)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("schedule: reading stream: %w", err)
	}
	return s, nil
}

// parseTrailer reports whether line is a well-formed trailer with the
// given prefix and returns its non-negative count.
func parseTrailer(line, prefix string) (int64, bool) {
	rest, ok := strings.CutPrefix(line, prefix)
	if !ok {
		return 0, false
	}
	v, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
	if err != nil || v < 0 {
		return 0, false
	}
	return v, true
}

// ReadScheduleStrict reads a schedule written by WriteSchedule and rejects
// any stream that does not prove completeness: the stream must end with a
// "# end count=N" trailer whose count matches the ids read, must not carry
// a "# truncated count=N" marker, and must not continue past the end
// trailer. Truncation-shaped failures wrap ErrTruncatedSchedule, so a
// killed 10⁸-node emission is distinguishable from a bad line. Other
// comments and blank lines are skipped as in ReadSchedule.
func ReadScheduleStrict(r io.Reader) (Schedule, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var s Schedule
	end := int64(-1)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if line[0] == '#' {
			if c, ok := parseTrailer(line, truncTrailerPrefix); ok {
				return nil, fmt.Errorf("schedule: stream carries a truncation marker after %d ids: %w", c, ErrTruncatedSchedule)
			}
			if c, ok := parseTrailer(line, endTrailerPrefix); ok {
				if end >= 0 {
					return nil, fmt.Errorf("schedule: two end trailers (count=%d and count=%d)", end, c)
				}
				end = c
			}
			continue
		}
		if end >= 0 {
			return nil, fmt.Errorf("schedule: id line %q after the end trailer", line)
		}
		v, err := strconv.Atoi(line)
		if err != nil {
			return nil, fmt.Errorf("schedule: bad line %q: %v", line, err)
		}
		s = append(s, v)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("schedule: reading stream: %w", err)
	}
	if end < 0 {
		return nil, fmt.Errorf("schedule: missing end trailer after %d ids: %w", len(s), ErrTruncatedSchedule)
	}
	if int64(len(s)) != end {
		return nil, fmt.Errorf("schedule: end trailer claims %d ids, stream has %d: %w", end, len(s), ErrTruncatedSchedule)
	}
	return s, nil
}

// Validate returns an error unless s is a topological schedule of t.
func Validate(t *Tree, s Schedule) error {
	pos, err := s.Positions(t.N())
	if err != nil {
		return err
	}
	for i := 0; i < t.N(); i++ {
		if p := t.Parent(i); p != None && pos[i] >= pos[p] {
			return fmt.Errorf("schedule: node %d (step %d) executes after its parent %d (step %d)",
				i, pos[i], p, pos[p])
		}
	}
	return nil
}
