// Package tree implements the rooted in-tree task model of Marchal,
// McCauley, Simon and Vivien, "Minimizing I/Os in Out-of-Core Task Tree
// Scheduling" (INRIA RR-9025, 2017).
//
// Every node i of the tree is a task that produces a single output data of
// size Weight(i). A task may execute only after all of its children; its
// execution needs the outputs of all its children simultaneously in main
// memory and, upon completion, replaces them by its own output. The memory
// needed to execute node i in isolation is therefore
//
//	w̄(i) = max(Weight(i), Σ_{j child of i} Weight(j))
//
// exposed as WBar. The package is purely structural: scheduling algorithms
// live in sibling packages (liu, postorder, expand) and the out-of-core
// memory semantics in package memsim.
package tree
