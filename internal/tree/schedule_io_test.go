package tree

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestWriteScheduleRoundTrip(t *testing.T) {
	want := Schedule{5, 0, 12, 3, 1, 4, 2}
	var buf bytes.Buffer
	n, err := WriteSchedule(&buf, want.Emit)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(want)) {
		t.Fatalf("wrote %d ids, want %d", n, len(want))
	}
	got, err := ReadSchedule(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip: got %v, want %v", got, want)
	}
}

func TestWriteScheduleSegments(t *testing.T) {
	segs := [][]int{{9, 8}, {7}, {}, {6, 5, 4}}
	source := func(yield func(seg []int) bool) bool {
		for _, s := range segs {
			if !yield(s) {
				return false
			}
		}
		return true
	}
	var buf bytes.Buffer
	n, err := WriteSchedule(&buf, source)
	if err != nil || n != 6 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	got, err := ReadSchedule(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, Schedule{9, 8, 7, 6, 5, 4}) {
		t.Fatalf("got %v", got)
	}
}

// errWriter fails after k bytes.
type errWriter struct{ k int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.k -= len(p); w.k < 0 {
		return 0, errors.New("disk full")
	}
	return len(p), nil
}

func TestWriteScheduleErrors(t *testing.T) {
	big := make(Schedule, 100000)
	for i := range big {
		big[i] = i
	}
	if _, err := WriteSchedule(&errWriter{k: 1024}, big.Emit); err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("write error not surfaced: %v", err)
	}
	stopping := func(yield func(seg []int) bool) bool {
		yield([]int{1, 2})
		return false
	}
	var buf bytes.Buffer
	if _, err := WriteSchedule(&buf, stopping); err == nil {
		t.Fatal("truncated stream not reported")
	}
}
