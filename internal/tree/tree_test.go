package tree

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name    string
		parent  []int
		weight  []int64
		wantErr string
	}{
		{"empty", nil, nil, "empty"},
		{"length mismatch", []int{None}, []int64{1, 2}, "weights"},
		{"negative weight", []int{None, 0}, []int64{1, -3}, "negative"},
		{"two roots", []int{None, None}, []int64{1, 1}, "two roots"},
		{"no root cycle", []int{1, 0}, []int64{1, 1}, "root"},
		{"out of range parent", []int{None, 7}, []int64{1, 1}, "out-of-range"},
		{"self parent", []int{None, 1}, []int64{1, 1}, "own parent"},
		{"cycle", []int{None, 2, 1}, []int64{1, 1, 1}, "cycle"},
		{"ok single", []int{None}, []int64{5}, ""},
		{"ok zero weight", []int{None, 0}, []int64{1, 0}, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := New(c.parent, c.weight)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("got error %v, want containing %q", err, c.wantErr)
			}
		})
	}
}

func TestBasicAccessors(t *testing.T) {
	// root(7) with children a(3) {leaf c(2), leaf d(4)} and leaf b(5).
	tr := MustNew([]int{None, 0, 0, 1, 1}, []int64{7, 3, 5, 2, 4})
	if tr.N() != 5 || tr.Root() != 0 {
		t.Fatalf("N=%d root=%d", tr.N(), tr.Root())
	}
	if got := tr.ChildrenSum(0); got != 8 {
		t.Errorf("ChildrenSum(root)=%d want 8", got)
	}
	if got := tr.WBar(0); got != 8 {
		t.Errorf("WBar(root)=%d want 8", got)
	}
	if got := tr.WBar(1); got != 6 {
		t.Errorf("WBar(a)=%d want 6", got)
	}
	if got := tr.WBar(2); got != 5 {
		t.Errorf("WBar(b)=%d want 5 (leaf)", got)
	}
	if got := tr.MaxWBar(); got != 8 {
		t.Errorf("MaxWBar=%d want 8", got)
	}
	if got := tr.TotalWeight(); got != 21 {
		t.Errorf("TotalWeight=%d want 21", got)
	}
	if got := tr.Depth(); got != 2 {
		t.Errorf("Depth=%d want 2", got)
	}
	if got := tr.Leaves(); !reflect.DeepEqual(got, []int{2, 3, 4}) {
		t.Errorf("Leaves=%v", got)
	}
	if !tr.IsLeaf(3) || tr.IsLeaf(1) {
		t.Errorf("IsLeaf wrong")
	}
	if got := tr.Ancestors(3); !reflect.DeepEqual(got, []int{1, 0}) {
		t.Errorf("Ancestors(3)=%v", got)
	}
	if s := tr.String(); !strings.Contains(s, "n=5") {
		t.Errorf("String()=%q", s)
	}
}

func TestOrders(t *testing.T) {
	tr := MustNew([]int{None, 0, 0, 1, 1}, []int64{7, 3, 5, 2, 4})
	td := tr.TopDown()
	if td[0] != tr.Root() || len(td) != 5 {
		t.Fatalf("TopDown=%v", td)
	}
	pos := make(map[int]int)
	for i, v := range td {
		pos[v] = i
	}
	for i := 0; i < tr.N(); i++ {
		if p := tr.Parent(i); p != None && pos[p] > pos[i] {
			t.Errorf("TopDown: parent %d after child %d", p, i)
		}
	}
	bu := tr.BottomUp()
	if !IsTopological(tr, bu) {
		t.Errorf("BottomUp not topological: %v", bu)
	}
	np := tr.NaturalPostorder()
	if !IsPostorder(tr, np) {
		t.Errorf("NaturalPostorder not a postorder: %v", np)
	}
	if !reflect.DeepEqual(np, []int{3, 4, 1, 2, 0}) {
		t.Errorf("NaturalPostorder=%v", np)
	}
}

func TestSubtree(t *testing.T) {
	tr := MustNew([]int{None, 0, 0, 1, 1}, []int64{7, 3, 5, 2, 4})
	sizes := tr.SubtreeSizes()
	if !reflect.DeepEqual(sizes, []int{5, 3, 1, 1, 1}) {
		t.Fatalf("SubtreeSizes=%v", sizes)
	}
	sub, toOld := tr.Subtree(1)
	if sub.N() != 3 {
		t.Fatalf("subtree size %d", sub.N())
	}
	if toOld[0] != 1 {
		t.Fatalf("toOld=%v", toOld)
	}
	for i := 0; i < sub.N(); i++ {
		if sub.Weight(i) != tr.Weight(toOld[i]) {
			t.Errorf("weight mismatch at %d", i)
		}
	}
	if sub.Root() != 0 {
		t.Errorf("subtree root=%d", sub.Root())
	}
}

func TestCloneAndWithWeights(t *testing.T) {
	tr := MustNew([]int{None, 0}, []int64{3, 4})
	cl := tr.Clone()
	if !reflect.DeepEqual(cl.Parents(), tr.Parents()) || !reflect.DeepEqual(cl.Weights(), tr.Weights()) {
		t.Fatal("clone differs")
	}
	w2, err := tr.WithWeights([]int64{9, 9})
	if err != nil {
		t.Fatal(err)
	}
	if w2.Weight(0) != 9 || tr.Weight(0) != 3 {
		t.Fatal("WithWeights must not alias")
	}
	if _, err := tr.WithWeights([]int64{1}); err == nil {
		t.Fatal("want error for wrong length")
	}
}

func TestBuilders(t *testing.T) {
	c := Chain(5, 3, 2)
	if c.N() != 3 || c.Parent(2) != 1 || c.Parent(0) != None || c.Weight(2) != 2 {
		t.Errorf("Chain wrong: %v %v", c.Parents(), c.Weights())
	}
	s := Star(4, 1, 2, 3)
	if s.N() != 4 || s.NumChildren(0) != 3 || s.WBar(0) != 6 {
		t.Errorf("Star wrong")
	}
	cb := CompleteBinary(3, 2)
	if cb.N() != 7 || cb.Depth() != 2 || len(cb.Leaves()) != 4 {
		t.Errorf("CompleteBinary wrong: n=%d", cb.N())
	}
	cat := Caterpillar(4, 2, 7)
	if cat.N() != 8 || len(cat.Leaves()) != 4 {
		t.Errorf("Caterpillar wrong: n=%d leaves=%d", cat.N(), len(cat.Leaves()))
	}
	h := Homogeneous(cat)
	for i := 0; i < h.N(); i++ {
		if h.Weight(i) != 1 {
			t.Fatalf("Homogeneous weight %d", h.Weight(i))
		}
	}
	g := Graft(9, Chain(1, 2), Star(3, 4))
	if g.N() != 5 || g.Weight(0) != 9 || g.NumChildren(0) != 2 {
		t.Errorf("Graft wrong")
	}
	if g.Parent(1) != 0 || g.Parent(3) != 0 || g.Parent(4) != 3 {
		t.Errorf("Graft parents: %v", g.Parents())
	}
}

func TestSortChildren(t *testing.T) {
	tr := MustNew([]int{None, 0, 0, 0}, []int64{1, 3, 1, 2})
	tr.SortChildren(func(a, b int) bool { return tr.Weight(a) < tr.Weight(b) })
	if !reflect.DeepEqual(tr.Children(0), []int{2, 3, 1}) {
		t.Errorf("sorted children: %v", tr.Children(0))
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := MustNew([]int{None, 0, 0, 1}, []int64{7, 3, 5, 2})
	data, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var back Tree
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Parents(), tr.Parents()) || !reflect.DeepEqual(back.Weights(), tr.Weights()) {
		t.Fatal("JSON round trip differs")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back2.Weights(), tr.Weights()) {
		t.Fatal("WriteJSON/ReadJSON differs")
	}
}

func TestTextRoundTrip(t *testing.T) {
	tr := MustNew([]int{None, 0, 1, 1}, []int64{7, 3, 5, 2})
	var buf bytes.Buffer
	if err := tr.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Parents(), tr.Parents()) || !reflect.DeepEqual(back.Weights(), tr.Weights()) {
		t.Fatal("text round trip differs")
	}
	// Comments and blank lines are tolerated.
	in := "# comment\n\n2\n0 -1 5\n1 0 3\n"
	back2, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if back2.N() != 2 || back2.Weight(1) != 3 {
		t.Fatal("text parse wrong")
	}
	for _, bad := range []string{"", "x", "1\n0 -1", "2\n0 -1 1\n0 -1 1\n", "1\n5 -1 1\n"} {
		if _, err := ReadText(strings.NewReader(bad)); err == nil {
			t.Errorf("want error for %q", bad)
		}
	}
}

func TestWriteDOT(t *testing.T) {
	tr := MustNew([]int{None, 0}, []int64{3, 4})
	var buf bytes.Buffer
	if err := tr.WriteDOT(&buf, Schedule{1, 0}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph", "n1 -> n0", "w=4", "σ=0"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	if err := tr.WriteDOT(&buf, Schedule{0}); err == nil {
		t.Error("want error for bad schedule")
	}
}

func TestScheduleChecks(t *testing.T) {
	tr := MustNew([]int{None, 0, 0}, []int64{1, 1, 1})
	if !IsTopological(tr, Schedule{1, 2, 0}) {
		t.Error("1,2,0 is topological")
	}
	if IsTopological(tr, Schedule{0, 1, 2}) {
		t.Error("root first is not topological")
	}
	if IsTopological(tr, Schedule{1, 1, 0}) {
		t.Error("repeat not a permutation")
	}
	if IsTopological(tr, Schedule{1, 2}) {
		t.Error("short schedule")
	}
	if err := Validate(tr, Schedule{0, 1, 2}); err == nil {
		t.Error("Validate should fail")
	}
	if err := Validate(tr, Schedule{2, 1, 0}); err != nil {
		t.Error(err)
	}
	// Postorder check: subtree contiguity.
	tr2 := MustNew([]int{None, 0, 0, 1, 1}, []int64{1, 1, 1, 1, 1})
	if !IsPostorder(tr2, Schedule{3, 4, 1, 2, 0}) {
		t.Error("natural postorder rejected")
	}
	if IsPostorder(tr2, Schedule{3, 2, 4, 1, 0}) {
		t.Error("interleaved order accepted as postorder")
	}
	if IsPostorder(tr2, Schedule{3, 2, 4, 1}) {
		t.Error("short schedule accepted")
	}
}

// randomTree builds a random tree by attaching each node to a random
// earlier node.
func randomTree(n int, rng *rand.Rand) *Tree {
	parent := make([]int, n)
	weight := make([]int64, n)
	parent[0] = None
	weight[0] = 1 + rng.Int63n(20)
	for i := 1; i < n; i++ {
		parent[i] = rng.Intn(i)
		weight[i] = 1 + rng.Int63n(20)
	}
	return MustNew(parent, weight)
}

func TestPropertyPostorderIsTopological(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		tr := randomTree(1+rng.Intn(40), rng)
		np := tr.NaturalPostorder()
		if !IsPostorder(tr, np) || !IsTopological(tr, np) {
			t.Fatalf("trial %d: natural postorder invalid for %v", trial, tr.Parents())
		}
		if !IsTopological(tr, tr.BottomUp()) {
			t.Fatalf("trial %d: BottomUp invalid", trial)
		}
	}
}

func TestPropertySubtreeSizesSum(t *testing.T) {
	// Σ over leaves-to-root chains: size[root] == N and sizes consistent.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTree(1+rng.Intn(50), rng)
		sizes := tr.SubtreeSizes()
		if sizes[tr.Root()] != tr.N() {
			return false
		}
		for i := 0; i < tr.N(); i++ {
			want := 1
			for _, c := range tr.Children(i) {
				want += sizes[c]
			}
			if sizes[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPositionsErrors(t *testing.T) {
	cases := []Schedule{{0, 2}, {0, 0}, {-1, 0}}
	for _, s := range cases {
		if _, err := s.Positions(2); err == nil {
			t.Errorf("schedule %v accepted", s)
		}
	}
	good := Schedule{1, 0}
	pos, err := good.Positions(2)
	if err != nil || pos[1] != 0 || pos[0] != 1 {
		t.Errorf("pos=%v err=%v", pos, err)
	}
}
