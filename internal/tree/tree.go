package tree

import (
	"fmt"
	"sort"
)

// None marks the absence of a parent (the root's parent index).
const None = -1

// Tree is an immutable rooted in-tree of tasks. Nodes are identified by
// dense integer indices in [0, N()). Edges are directed towards the root:
// each node has exactly one parent except the root.
//
// The zero Tree is empty and unusable; construct trees with New or one of
// the builders (Chain, Star, ...).
type Tree struct {
	parent   []int
	children [][]int
	weight   []int64
	root     int
}

// New builds a tree from a parent vector and per-node output-data sizes.
// parent[i] is the node consuming i's output, or None for the root. The
// parent vector must describe a single connected tree, and all weights must
// be non-negative integers (the paper's memory unit model; zero weights
// arise for fully-evicted middle nodes of the expansion technique) whose
// sum fits in an int64 — the simulators and peak profiles accumulate
// weights, so a tree whose total overflows would corrupt every downstream
// invariant silently.
func New(parent []int, weight []int64) (*Tree, error) {
	n := len(parent)
	if n == 0 {
		return nil, fmt.Errorf("tree: empty parent vector")
	}
	if len(weight) != n {
		return nil, fmt.Errorf("tree: %d parents but %d weights", n, len(weight))
	}
	t := &Tree{
		parent:   make([]int, n),
		children: make([][]int, n),
		weight:   make([]int64, n),
		root:     None,
	}
	copy(t.parent, parent)
	copy(t.weight, weight)
	var total int64
	for i := 0; i < n; i++ {
		if weight[i] < 0 {
			return nil, fmt.Errorf("tree: node %d has negative weight %d", i, weight[i])
		}
		if total += weight[i]; total < 0 {
			return nil, fmt.Errorf("tree: total weight overflows int64 at node %d", i)
		}
		p := parent[i]
		switch {
		case p == None:
			if t.root != None {
				return nil, fmt.Errorf("tree: two roots (%d and %d)", t.root, i)
			}
			t.root = i
		case p < 0 || p >= n:
			return nil, fmt.Errorf("tree: node %d has out-of-range parent %d", i, p)
		case p == i:
			return nil, fmt.Errorf("tree: node %d is its own parent", i)
		default:
			t.children[p] = append(t.children[p], i)
		}
	}
	if t.root == None {
		return nil, fmt.Errorf("tree: no root")
	}
	// Connectivity (equivalently, acyclicity given n-1 edges): every node
	// must reach the root without revisiting anyone.
	seen := make([]uint8, n) // 0 unknown, 1 on current path, 2 done
	seen[t.root] = 2
	for i := 0; i < n; i++ {
		var path []int
		for v := i; seen[v] != 2; v = t.parent[v] {
			if seen[v] == 1 {
				return nil, fmt.Errorf("tree: cycle through node %d", v)
			}
			seen[v] = 1
			path = append(path, v)
		}
		for _, v := range path {
			seen[v] = 2
		}
	}
	return t, nil
}

// MustNew is New but panics on error; intended for tests and literals.
func MustNew(parent []int, weight []int64) *Tree {
	t, err := New(parent, weight)
	if err != nil {
		panic(err)
	}
	return t
}

// N returns the number of nodes.
func (t *Tree) N() int { return len(t.parent) }

// Root returns the root node index.
func (t *Tree) Root() int { return t.root }

// Parent returns i's parent, or None if i is the root.
func (t *Tree) Parent(i int) int { return t.parent[i] }

// Children returns i's children. The returned slice is owned by the tree
// and must not be mutated.
func (t *Tree) Children(i int) []int { return t.children[i] }

// NumChildren returns the number of children of i.
func (t *Tree) NumChildren(i int) int { return len(t.children[i]) }

// IsLeaf reports whether i has no children.
func (t *Tree) IsLeaf(i int) bool { return len(t.children[i]) == 0 }

// Weight returns the size w_i of i's output data.
func (t *Tree) Weight(i int) int64 { return t.weight[i] }

// Weights returns a copy of the weight vector.
func (t *Tree) Weights() []int64 {
	w := make([]int64, len(t.weight))
	copy(w, t.weight)
	return w
}

// Parents returns a copy of the parent vector.
func (t *Tree) Parents() []int {
	p := make([]int, len(t.parent))
	copy(p, t.parent)
	return p
}

// ChildrenSum returns Σ_{j child of i} Weight(j).
func (t *Tree) ChildrenSum(i int) int64 {
	var s int64
	for _, c := range t.children[i] {
		s += t.weight[c]
	}
	return s
}

// WBar returns w̄(i) = max(w_i, Σ_{j child of i} w_j), the memory needed to
// execute node i when nothing else is resident.
func (t *Tree) WBar(i int) int64 {
	s := t.ChildrenSum(i)
	if w := t.weight[i]; w > s {
		return w
	}
	return s
}

// MaxWBar returns LB = max_i w̄(i), the minimum memory size for which the
// tree can be processed at all (Section 6 of the paper calls this LB).
func (t *Tree) MaxWBar() int64 {
	var m int64
	for i := range t.parent {
		if wb := t.WBar(i); wb > m {
			m = wb
		}
	}
	return m
}

// TotalWeight returns Σ_i w_i.
func (t *Tree) TotalWeight() int64 {
	var s int64
	for _, w := range t.weight {
		s += w
	}
	return s
}

// Depth returns the number of edges on the longest root-to-leaf path.
func (t *Tree) Depth() int {
	depth := make([]int, t.N())
	max := 0
	for _, v := range t.TopDown() {
		if p := t.parent[v]; p != None {
			depth[v] = depth[p] + 1
			if depth[v] > max {
				max = depth[v]
			}
		}
	}
	return max
}

// Leaves returns all leaf nodes in increasing index order.
func (t *Tree) Leaves() []int {
	var ls []int
	for i := range t.parent {
		if t.IsLeaf(i) {
			ls = append(ls, i)
		}
	}
	return ls
}

// TopDown returns the nodes in an order where every parent precedes its
// children (BFS from the root).
func (t *Tree) TopDown() []int {
	order := make([]int, 0, t.N())
	order = append(order, t.root)
	for head := 0; head < len(order); head++ {
		order = append(order, t.children[order[head]]...)
	}
	return order
}

// BottomUp returns the reverse of TopDown: every child precedes its parent.
// It is a valid (postorder-free) topological schedule.
func (t *Tree) BottomUp() []int {
	td := t.TopDown()
	for i, j := 0, len(td)-1; i < j; i, j = i+1, j-1 {
		td[i], td[j] = td[j], td[i]
	}
	return td
}

// NaturalPostorder returns the depth-first postorder that visits children
// in their natural (construction) order.
func (t *Tree) NaturalPostorder() []int {
	order := make([]int, 0, t.N())
	// Iterative DFS to survive deep chains (elimination trees can have
	// depth in the tens of thousands).
	type frame struct {
		node int
		next int
	}
	stack := []frame{{t.root, 0}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(t.children[f.node]) {
			c := t.children[f.node][f.next]
			f.next++
			stack = append(stack, frame{c, 0})
			continue
		}
		order = append(order, f.node)
		stack = stack[:len(stack)-1]
	}
	return order
}

// SubtreeSizes returns, for every node, the number of nodes in its subtree
// (itself included).
func (t *Tree) SubtreeSizes() []int {
	size := make([]int, t.N())
	for _, v := range t.BottomUp() {
		size[v] = 1
		for _, c := range t.children[v] {
			size[v] += size[c]
		}
	}
	return size
}

// SubtreeNodes returns the nodes of the subtree rooted at r, r first, in
// top-down order.
func (t *Tree) SubtreeNodes(r int) []int {
	nodes := []int{r}
	for head := 0; head < len(nodes); head++ {
		nodes = append(nodes, t.children[nodes[head]]...)
	}
	return nodes
}

// Subtree extracts the subtree rooted at r as a standalone tree. It returns
// the new tree and toOld, mapping new indices to indices of t.
func (t *Tree) Subtree(r int) (sub *Tree, toOld []int) {
	nodes := t.SubtreeNodes(r)
	toNew := make(map[int]int, len(nodes))
	for i, v := range nodes {
		toNew[v] = i
	}
	parent := make([]int, len(nodes))
	weight := make([]int64, len(nodes))
	for i, v := range nodes {
		weight[i] = t.weight[v]
		if v == r {
			parent[i] = None
		} else {
			parent[i] = toNew[t.parent[v]]
		}
	}
	sub = MustNew(parent, weight)
	return sub, nodes
}

// WithWeights returns a copy of the tree with the same shape and new weights.
func (t *Tree) WithWeights(weight []int64) (*Tree, error) {
	return New(t.parent, weight)
}

// Clone returns a deep copy of the tree.
func (t *Tree) Clone() *Tree {
	return MustNew(t.Parents(), t.Weights())
}

// Ancestors returns i's proper ancestors, closest first (parent, grand-
// parent, ..., root).
func (t *Tree) Ancestors(i int) []int {
	var as []int
	for v := t.parent[i]; v != None; v = t.parent[v] {
		as = append(as, v)
	}
	return as
}

// String summarizes the tree.
func (t *Tree) String() string {
	return fmt.Sprintf("tree{n=%d root=%d leaves=%d depth=%d totalW=%d LB=%d}",
		t.N(), t.root, len(t.Leaves()), t.Depth(), t.TotalWeight(), t.MaxWBar())
}

// SortChildren reorders every node's child list using less (a strict weak
// ordering on node indices). It returns the tree to allow chaining. The
// natural postorder is affected; the structure is not. Sorting is stable.
func (t *Tree) SortChildren(less func(a, b int) bool) *Tree {
	for i := range t.children {
		cs := t.children[i]
		sort.SliceStable(cs, func(x, y int) bool { return less(cs[x], cs[y]) })
	}
	return t
}
