package tree

import (
	"bufio"
	"bytes"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
)

// TestWriteScheduleEndTrailer pins the crash-evidence contract: a complete
// stream is sealed with "# end count=N", the strict reader accepts it, and
// the lenient reader skips the trailer unchanged.
func TestWriteScheduleEndTrailer(t *testing.T) {
	want := Schedule{5, 0, 12, 3, 1, 4, 2}
	var buf bytes.Buffer
	n, err := WriteSchedule(&buf, want.Emit)
	if err != nil || n != int64(len(want)) {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if !strings.HasSuffix(buf.String(), "# end count=7\n") {
		t.Fatalf("stream not sealed: %q", buf.String())
	}
	strict, err := ReadScheduleStrict(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("strict read: %v", err)
	}
	if !reflect.DeepEqual(strict, want) {
		t.Fatalf("strict round trip: got %v, want %v", strict, want)
	}
	lenient, err := ReadSchedule(bytes.NewReader(buf.Bytes()))
	if err != nil || !reflect.DeepEqual(lenient, want) {
		t.Fatalf("lenient round trip: got %v err=%v", lenient, err)
	}
}

// TestWriteScheduleTruncationMarker pins the early-stop path: the stream
// ends with the truncation marker, the error wraps ErrTruncatedSchedule,
// and the strict reader rejects the stream while the lenient one still
// yields the partial prefix.
func TestWriteScheduleTruncationMarker(t *testing.T) {
	stopping := func(yield func(seg []int) bool) bool {
		yield([]int{1, 2})
		return false
	}
	var buf bytes.Buffer
	n, err := WriteSchedule(&buf, stopping)
	if n != 2 || !errors.Is(err, ErrTruncatedSchedule) {
		t.Fatalf("n=%d err=%v, want 2 ids and ErrTruncatedSchedule", n, err)
	}
	if !strings.HasSuffix(buf.String(), "# truncated count=2\n") {
		t.Fatalf("no truncation marker: %q", buf.String())
	}
	if _, err := ReadScheduleStrict(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrTruncatedSchedule) {
		t.Fatalf("strict read of truncated stream: %v", err)
	}
	partial, err := ReadSchedule(bytes.NewReader(buf.Bytes()))
	if err != nil || !reflect.DeepEqual(partial, Schedule{1, 2}) {
		t.Fatalf("lenient read of truncated stream: got %v err=%v", partial, err)
	}
}

// TestReadScheduleStrictRejects walks the corruption shapes the strict
// reader must refuse.
func TestReadScheduleStrictRejects(t *testing.T) {
	cases := []struct {
		name      string
		in        string
		truncated bool // must wrap ErrTruncatedSchedule
	}{
		{"missing trailer", "1\n2\n3\n", true},
		{"count too low", "1\n2\n3\n# end count=2\n", true},
		{"count too high", "1\n2\n# end count=3\n", true},
		{"truncation marker", "1\n2\n# truncated count=2\n", true},
		{"empty stream", "", true},
		{"ids after trailer", "1\n# end count=1\n2\n", false},
		{"double trailer", "1\n# end count=1\n# end count=1\n", false},
		{"bad id line", "1\nxyz\n# end count=2\n", false},
	}
	for _, tc := range cases {
		_, err := ReadScheduleStrict(strings.NewReader(tc.in))
		if err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if got := errors.Is(err, ErrTruncatedSchedule); got != tc.truncated {
			t.Fatalf("%s: Is(ErrTruncatedSchedule)=%v, want %v (err: %v)", tc.name, got, tc.truncated, err)
		}
	}
	// An empty but complete stream is fine.
	s, err := ReadScheduleStrict(strings.NewReader("# end count=0\n"))
	if err != nil || len(s) != 0 {
		t.Fatalf("empty sealed stream: got %v err=%v", s, err)
	}
}

// TestReadScheduleScannerErrorSurfaced pins that a line beyond the 1 MiB
// token limit surfaces bufio.ErrTooLong instead of a silently short read.
func TestReadScheduleScannerErrorSurfaced(t *testing.T) {
	giant := strings.Repeat("5", 1<<20+16)
	if _, err := ReadSchedule(strings.NewReader(giant)); !errors.Is(err, bufio.ErrTooLong) {
		t.Fatalf("ReadSchedule masked the scanner error: %v", err)
	}
	if _, err := ReadScheduleStrict(strings.NewReader(giant)); !errors.Is(err, bufio.ErrTooLong) {
		t.Fatalf("ReadScheduleStrict masked the scanner error: %v", err)
	}
}

// TestReadTextScannerErrorSurfaced pins the fixed masking bug: a token
// beyond ReadText's 16 MiB limit used to be reported as "empty input".
func TestReadTextScannerErrorSurfaced(t *testing.T) {
	giant := strings.Repeat("7", 1<<24+16)
	if _, err := ReadText(strings.NewReader(giant)); !errors.Is(err, bufio.ErrTooLong) {
		t.Fatalf("ReadText masked the scanner error: %v", err)
	}
	// Same failure mid-stream, after a valid header.
	in := "2\n0 -1 1\n" + giant
	if _, err := ReadText(strings.NewReader(in)); !errors.Is(err, bufio.ErrTooLong) {
		t.Fatalf("ReadText masked the mid-stream scanner error: %v", err)
	}
}

// TestReadTextHostileHeader pins that a header claiming vastly more nodes
// than the input holds fails cleanly (and, by construction of the row
// buffer, without an n-sized allocation up front).
func TestReadTextHostileHeader(t *testing.T) {
	in := "2000000000\n0 -1 1\n1 0 1\n"
	_, err := ReadText(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "expected 2000000000 node lines, got 2") {
		t.Fatalf("hostile header not rejected cleanly: %v", err)
	}
}

// TestNewWeightOverflow pins the Σw overflow rejection in New, reachable
// from both ReadJSON and ReadText.
func TestNewWeightOverflow(t *testing.T) {
	_, err := New([]int{None, 0}, []int64{math.MaxInt64, 1})
	if err == nil || !strings.Contains(err.Error(), "overflows") {
		t.Fatalf("overflowing weights accepted: %v", err)
	}
	in := `{"parents":[-1,0],"weights":[9223372036854775807,1]}`
	if _, err := ReadJSON(strings.NewReader(in)); err == nil {
		t.Fatal("ReadJSON accepted overflowing weights")
	}
}
