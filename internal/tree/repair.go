package tree

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// RepairSchedule scans a possibly interrupted schedule stream and locates
// the longest prefix a resumed emission can safely build on. It returns
// the number of valid id lines in that prefix, the byte offset just past
// its last trusted line (the truncation point a repair should cut at), and
// whether the stream is already complete (sealed by a matching end
// trailer, in which case nothing needs repairing).
//
// Trust ends at the first sign of damage, all of which a kill can cause:
// a final line without its newline (torn write), a malformed id line, a
// "# truncated count=N" marker (graceful cancellation), or an end trailer
// whose count disagrees with the ids actually present. Blank lines and
// ordinary comments are part of the trusted prefix. Only I/O failures
// from r are reported as errors — damage is the expected input here, not
// a failure.
func RepairSchedule(r io.Reader) (ids int64, safeOff int64, complete bool, err error) {
	br := bufio.NewReaderSize(r, 1<<16)
	for {
		line, rerr := br.ReadString('\n')
		if rerr == io.EOF {
			// A non-empty remainder is a line the writer never finished;
			// it is not part of the trusted prefix.
			return ids, safeOff, false, nil
		}
		if rerr != nil {
			return ids, safeOff, false, fmt.Errorf("schedule: reading stream: %w", rerr)
		}
		body := strings.TrimSuffix(line, "\n")
		switch {
		case body == "":
			// Trusted filler.
		case body[0] == '#':
			if _, ok := parseTrailer(body, truncTrailerPrefix); ok {
				// A graceful-cancel marker: everything before it is good;
				// the marker itself must go so the resumed continuation
				// can seal the stream with a real end trailer.
				return ids, safeOff, false, nil
			}
			if c, ok := parseTrailer(body, endTrailerPrefix); ok {
				if c == ids {
					return ids, safeOff + int64(len(line)), true, nil
				}
				// A trailer that miscounts is damage; cut it off.
				return ids, safeOff, false, nil
			}
			// Ordinary comment: trusted filler.
		default:
			v, perr := strconv.Atoi(body)
			if perr != nil || v < 0 {
				return ids, safeOff, false, nil
			}
			ids++
		}
		safeOff += int64(len(line))
	}
}

// RepairScheduleFile repairs a partial schedule stream in place: it runs
// RepairSchedule over the file and truncates it at the reported safe
// offset, discarding any torn final line, truncation marker, or
// trailer-less garbage so the file ends exactly after its last trusted
// line and a resumed WriteScheduleAt emission can append to it directly.
// A complete (end-trailer-sealed) file is left untouched. It returns the
// id count of the surviving prefix and whether the file was already
// complete.
func RepairScheduleFile(path string) (ids int64, complete bool, err error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return 0, false, err
	}
	defer f.Close()
	ids, safeOff, complete, err := RepairSchedule(f)
	if err != nil {
		return ids, false, err
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return ids, complete, err
	}
	if safeOff < size {
		if err := f.Truncate(safeOff); err != nil {
			return ids, complete, fmt.Errorf("schedule: trimming damaged tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			return ids, complete, err
		}
	}
	return ids, complete, nil
}
