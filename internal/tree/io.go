package tree

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// jsonTree is the on-disk JSON representation of a task tree.
type jsonTree struct {
	// Parents[i] is the parent of node i, or -1 for the root.
	Parents []int `json:"parents"`
	// Weights[i] is the output-data size of node i.
	Weights []int64 `json:"weights"`
	// Name is an optional label carried through for dataset bookkeeping.
	Name string `json:"name,omitempty"`
}

// MarshalJSON encodes the tree as {"parents": [...], "weights": [...]}.
func (t *Tree) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonTree{Parents: t.Parents(), Weights: t.Weights()})
}

// UnmarshalJSON decodes a tree encoded by MarshalJSON.
func (t *Tree) UnmarshalJSON(data []byte) error {
	var jt jsonTree
	if err := json.Unmarshal(data, &jt); err != nil {
		return err
	}
	nt, err := New(jt.Parents, jt.Weights)
	if err != nil {
		return err
	}
	*t = *nt
	return nil
}

// WriteJSON writes the tree to w in JSON form.
func (t *Tree) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(jsonTree{Parents: t.Parents(), Weights: t.Weights()})
}

// ReadJSON reads a tree written by WriteJSON. Structural defects — weight
// overflow, cycles, forests, dangling parents — are rejected by New with
// the offending node named in the error.
func ReadJSON(r io.Reader) (*Tree, error) {
	var jt jsonTree
	if err := json.NewDecoder(r).Decode(&jt); err != nil {
		return nil, fmt.Errorf("tree: decoding json: %w", err)
	}
	return New(jt.Parents, jt.Weights)
}

// WriteText writes the tree in a simple line-oriented text format:
// a header line "n", then one line "node parent weight" per node.
// Lines starting with '#' are comments.
func (t *Tree) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%d\n", t.N())
	for i := 0; i < t.N(); i++ {
		fmt.Fprintf(bw, "%d %d %d\n", i, t.Parent(i), t.Weight(i))
	}
	return bw.Flush()
}

// ReadText parses the format written by WriteText. It is safe on hostile
// input: allocation grows with the bytes actually present, so a header
// claiming billions of nodes cannot balloon memory before the node lines
// exist to back it, and scanner failures (a line beyond the 16 MiB token
// limit) are surfaced instead of being misreported as short input.
// Structural defects are rejected by New with the offending node named.
func ReadText(r io.Reader) (*Tree, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	line := func() (string, bool, error) {
		for sc.Scan() {
			s := strings.TrimSpace(sc.Text())
			if s == "" || strings.HasPrefix(s, "#") {
				continue
			}
			return s, true, nil
		}
		return "", false, sc.Err()
	}
	head, ok, err := line()
	if err != nil {
		return nil, fmt.Errorf("tree: reading header: %w", err)
	}
	if !ok {
		return nil, fmt.Errorf("tree: empty input")
	}
	n, err := strconv.Atoi(head)
	if err != nil || n <= 0 {
		return nil, fmt.Errorf("tree: bad node count %q", head)
	}
	// Collect the node triples into a buffer that grows with the input
	// actually read; the n-sized arrays are only paid for once n real
	// lines have arrived, capping the node count against the input size.
	type row struct {
		id, parent int
		weight     int64
	}
	rows := make([]row, 0, min(n, 1024))
	for len(rows) < n {
		s, ok, err := line()
		if err != nil {
			return nil, fmt.Errorf("tree: reading node lines: %w", err)
		}
		if !ok {
			return nil, fmt.Errorf("tree: expected %d node lines, got %d", n, len(rows))
		}
		fields := strings.Fields(s)
		if len(fields) != 3 {
			return nil, fmt.Errorf("tree: bad node line %q", s)
		}
		id, err1 := strconv.Atoi(fields[0])
		p, err2 := strconv.Atoi(fields[1])
		w, err3 := strconv.ParseInt(fields[2], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("tree: bad node line %q", s)
		}
		if id < 0 || id >= n {
			return nil, fmt.Errorf("tree: node id %d out of range [0, %d)", id, n)
		}
		rows = append(rows, row{id, p, w})
	}
	parent := make([]int, n)
	weight := make([]int64, n)
	seen := make([]bool, n)
	for _, rw := range rows {
		if seen[rw.id] {
			return nil, fmt.Errorf("tree: repeated node id %d", rw.id)
		}
		seen[rw.id] = true
		parent[rw.id] = rw.parent
		weight[rw.id] = rw.weight
	}
	return New(parent, weight)
}

// WriteDOT emits the tree in Graphviz DOT syntax. Nodes are annotated with
// their weight; if sched is non-nil its step numbers are shown too.
func (t *Tree) WriteDOT(w io.Writer, sched Schedule) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "digraph tasktree {")
	fmt.Fprintln(bw, "  rankdir=BT;")
	fmt.Fprintln(bw, "  node [shape=circle];")
	var pos []int
	if sched != nil {
		var err error
		pos, err = sched.Positions(t.N())
		if err != nil {
			return err
		}
	}
	for i := 0; i < t.N(); i++ {
		if pos != nil {
			fmt.Fprintf(bw, "  n%d [label=\"%d\\nw=%d\\nσ=%d\"];\n", i, i, t.Weight(i), pos[i])
		} else {
			fmt.Fprintf(bw, "  n%d [label=\"%d\\nw=%d\"];\n", i, i, t.Weight(i))
		}
	}
	for i := 0; i < t.N(); i++ {
		if p := t.Parent(i); p != None {
			fmt.Fprintf(bw, "  n%d -> n%d;\n", i, p)
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
