package tree

// Builders for the standard tree shapes used throughout the paper's
// examples, the test suite and the adversarial families of Section 4.

// Chain builds a chain of len(weights) nodes. Node 0 is the root; node i+1
// is the single child of node i; the last node is the leaf. weights[i] is
// the output size of node i.
func Chain(weights ...int64) *Tree {
	n := len(weights)
	parent := make([]int, n)
	parent[0] = None
	for i := 1; i < n; i++ {
		parent[i] = i - 1
	}
	return MustNew(parent, weights)
}

// Star builds a root with len(leafWeights) leaf children.
func Star(rootWeight int64, leafWeights ...int64) *Tree {
	n := 1 + len(leafWeights)
	parent := make([]int, n)
	weight := make([]int64, n)
	parent[0] = None
	weight[0] = rootWeight
	for i, w := range leafWeights {
		parent[1+i] = 0
		weight[1+i] = w
	}
	return MustNew(parent, weight)
}

// CompleteBinary builds a complete binary tree with the given number of
// levels (levels ≥ 1; one level is a single node) and uniform weight w.
// Node 0 is the root and node i has children 2i+1 and 2i+2.
func CompleteBinary(levels int, w int64) *Tree {
	if levels < 1 {
		panic("tree: CompleteBinary needs at least one level")
	}
	n := (1 << levels) - 1
	parent := make([]int, n)
	weight := make([]int64, n)
	parent[0] = None
	weight[0] = w
	for i := 1; i < n; i++ {
		parent[i] = (i - 1) / 2
		weight[i] = w
	}
	return MustNew(parent, weight)
}

// Caterpillar builds a spine of length n where every spine node additionally
// carries one leaf child. Node 0 is the root. Spine nodes get spineW, leaves
// get leafW. Total node count is 2n.
func Caterpillar(n int, spineW, leafW int64) *Tree {
	if n < 1 {
		panic("tree: Caterpillar needs n >= 1")
	}
	parent := make([]int, 2*n)
	weight := make([]int64, 2*n)
	parent[0] = None
	weight[0] = spineW
	for i := 1; i < n; i++ {
		parent[i] = i - 1 // spine
		weight[i] = spineW
	}
	for i := 0; i < n; i++ {
		parent[n+i] = i // leaf hanging off spine node i
		weight[n+i] = leafW
	}
	return MustNew(parent, weight)
}

// Homogeneous returns a copy of t with every weight set to 1 (the
// homogeneous model of Section 4.2).
func Homogeneous(t *Tree) *Tree {
	w := make([]int64, t.N())
	for i := range w {
		w[i] = 1
	}
	h, err := t.WithWeights(w)
	if err != nil {
		panic(err) // unreachable: shape already validated
	}
	return h
}

// Graft returns a new tree consisting of root (with weight rootW) whose
// children are the roots of the given subtrees. Node 0 of the result is the
// new root; the nodes of subtree k follow those of subtree k-1, each shifted.
func Graft(rootW int64, subtrees ...*Tree) *Tree {
	n := 1
	for _, s := range subtrees {
		n += s.N()
	}
	parent := make([]int, n)
	weight := make([]int64, n)
	parent[0] = None
	weight[0] = rootW
	off := 1
	for _, s := range subtrees {
		for i := 0; i < s.N(); i++ {
			weight[off+i] = s.Weight(i)
			if p := s.Parent(i); p == None {
				parent[off+i] = 0
			} else {
				parent[off+i] = off + p
			}
		}
		off += s.N()
	}
	return MustNew(parent, weight)
}
