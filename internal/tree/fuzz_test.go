package tree

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzReadJSON asserts ReadJSON never panics on arbitrary bytes and that
// every accepted tree survives a WriteJSON/ReadJSON round trip with its
// parents and weights intact.
func FuzzReadJSON(f *testing.F) {
	f.Add([]byte(`{"parents":[-1,0,0],"weights":[5,3,2]}`))
	f.Add([]byte(`{"parents":[1,-1],"weights":[1,9223372036854775807]}`))
	f.Add([]byte(`{"parents":[],"weights":[]}`))
	f.Add([]byte(`{"parents":[0],"weights":[1]}`))
	f.Add([]byte(`{"parents":[-1,0],"weights":[-3,1]}`))
	f.Add([]byte(`{"parents":[2,0,1],"weights":[1,1,1]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		if tr.TotalWeight() < 0 {
			t.Fatalf("accepted tree has overflowed total weight %d", tr.TotalWeight())
		}
		var buf bytes.Buffer
		if err := tr.WriteJSON(&buf); err != nil {
			t.Fatalf("WriteJSON of accepted tree: %v", err)
		}
		back, err := ReadJSON(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if !reflect.DeepEqual(back.Parents(), tr.Parents()) ||
			!reflect.DeepEqual(back.Weights(), tr.Weights()) {
			t.Fatal("round trip differs")
		}
	})
}

// FuzzReadText asserts ReadText never panics on arbitrary bytes and that
// every accepted tree survives a WriteText/ReadText round trip.
func FuzzReadText(f *testing.F) {
	f.Add([]byte("3\n0 -1 5\n1 0 3\n2 0 2\n"))
	f.Add([]byte("1\n0 -1 9223372036854775807\n"))
	f.Add([]byte("# comment\n2\n\n1 0 4\n0 -1 7\n"))
	f.Add([]byte("999999999\n0 -1 1\n"))
	f.Add([]byte("2\n0 -1 1\n0 -1 1\n"))
	f.Add([]byte("2\n0 1 1\n1 0 1\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadText(bytes.NewReader(data))
		if err != nil {
			return
		}
		if tr.TotalWeight() < 0 {
			t.Fatalf("accepted tree has overflowed total weight %d", tr.TotalWeight())
		}
		var buf bytes.Buffer
		if err := tr.WriteText(&buf); err != nil {
			t.Fatalf("WriteText of accepted tree: %v", err)
		}
		back, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if !reflect.DeepEqual(back.Parents(), tr.Parents()) ||
			!reflect.DeepEqual(back.Weights(), tr.Weights()) {
			t.Fatal("round trip differs")
		}
	})
}

// FuzzReadSchedule asserts the lenient reader never panics and that any
// schedule it accepts can be re-written by WriteSchedule into a sealed
// stream that the strict reader accepts bit-identically.
func FuzzReadSchedule(f *testing.F) {
	f.Add([]byte("1\n2\n3\n# end count=3\n"))
	f.Add([]byte("5\n9\n# truncated count=2\n"))
	f.Add([]byte("999\n\n# comment\n-5\n"))
	f.Add([]byte("# end count=0\n"))
	f.Add([]byte("# end count=\n0\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadSchedule(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		n, err := WriteSchedule(&buf, s.Emit)
		if err != nil || n != int64(len(s)) {
			t.Fatalf("WriteSchedule: n=%d err=%v, want %d ids", n, err, len(s))
		}
		back, err := ReadScheduleStrict(&buf)
		if err != nil {
			t.Fatalf("strict read of complete stream: %v", err)
		}
		if !reflect.DeepEqual(back, s) {
			t.Fatalf("round trip differs: got %v, want %v", back, s)
		}
	})
}
