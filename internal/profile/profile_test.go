package profile

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := NewTable([]string{"A", "B"}, []string{"i1", "i2", "i3"})
	// A: best on i1, i2; B best on i3.
	t.Set(0, 0, 1.0)
	t.Set(1, 0, 1.5) // B 50% over
	t.Set(0, 1, 2.0)
	t.Set(1, 1, 2.0) // tie
	t.Set(0, 2, 1.2)
	t.Set(1, 2, 1.0) // A 20% over
	return t
}

func TestOverheads(t *testing.T) {
	tab := sampleTable()
	ov, err := tab.Overheads()
	if err != nil {
		t.Fatal(err)
	}
	if ov[0][0] != 0 || math.Abs(ov[1][0]-50) > 1e-9 {
		t.Fatalf("ov=%v", ov)
	}
	if ov[0][1] != 0 || ov[1][1] != 0 {
		t.Fatalf("tie not zero: %v", ov)
	}
	if math.Abs(ov[0][2]-20) > 1e-9 || ov[1][2] != 0 {
		t.Fatalf("ov=%v", ov)
	}
}

func TestOverheadsMissingValue(t *testing.T) {
	tab := NewTable([]string{"A"}, []string{"i1"})
	if _, err := tab.Overheads(); err == nil {
		t.Fatal("missing value accepted")
	}
	tab.Set(0, 0, 0)
	if _, err := tab.Overheads(); err == nil {
		t.Fatal("zero best accepted")
	}
}

func TestComputeProfiles(t *testing.T) {
	tab := sampleTable()
	profs, err := Compute(tab, []float64{0, 10, 25, 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(profs) != 2 {
		t.Fatal("want 2 profiles")
	}
	a, b := profs[0], profs[1]
	// A: overheads {0, 0, 20} → fractions at (0,10,25,60) = (2/3, 2/3, 1, 1).
	wantA := []float64{2. / 3, 2. / 3, 1, 1}
	for k, w := range wantA {
		if math.Abs(a.Fraction[k]-w) > 1e-9 {
			t.Fatalf("A fraction[%d]=%f want %f", k, a.Fraction[k], w)
		}
	}
	// B: overheads {50, 0, 0} → (2/3, 2/3, 2/3, 1).
	wantB := []float64{2. / 3, 2. / 3, 2. / 3, 1}
	for k, w := range wantB {
		if math.Abs(b.Fraction[k]-w) > 1e-9 {
			t.Fatalf("B fraction[%d]=%f want %f", k, b.Fraction[k], w)
		}
	}
	if f := a.FractionWithin(15); math.Abs(f-2./3) > 1e-9 {
		t.Fatalf("FractionWithin(15)=%f", f)
	}
	if f := a.FractionWithin(1000); f != 1 {
		t.Fatalf("FractionWithin(1000)=%f", f)
	}
}

func TestComputeAutoGrid(t *testing.T) {
	profs, err := Compute(sampleTable(), nil)
	if err != nil {
		t.Fatal(err)
	}
	last := profs[0].Tau[len(profs[0].Tau)-1]
	if last < 50 {
		t.Fatalf("auto grid max %f below max overhead 50", last)
	}
	for _, p := range profs {
		if p.Fraction[len(p.Fraction)-1] != 1 {
			t.Fatalf("profile %s does not reach 1", p.Method)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	profs, err := Compute(sampleTable(), []float64{0, 50})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, profs); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "tau_percent,A,B\n") {
		t.Fatalf("header: %q", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 3 {
		t.Fatalf("rows: %q", out)
	}
	if err := WriteCSV(&buf, nil); err == nil {
		t.Error("empty profiles accepted")
	}
}

func TestRender(t *testing.T) {
	profs, err := Compute(sampleTable(), []float64{0, 25, 50})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Render(&buf, profs, 40, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"A = A", "B = B", "1.00", "0.00"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if err := Render(&buf, nil, 40, 10); err == nil {
		t.Error("empty profiles accepted")
	}
	// Degenerate sizes are clamped, not fatal.
	if err := Render(&buf, profs, 1, 1); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultGrid(t *testing.T) {
	g := DefaultGrid(0)
	if g[0] != 0 || g[len(g)-1] < 10 {
		t.Fatalf("grid %v", g)
	}
	g2 := DefaultGrid(200)
	if g2[len(g2)-1] != 200 {
		t.Fatalf("grid max %f", g2[len(g2)-1])
	}
}
