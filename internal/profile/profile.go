// Package profile implements Dolan–Moré performance profiles, the
// comparison tool used throughout Section 6 of the paper: for every
// instance the performance of each method is divided by the best observed
// performance, and the profile of a method maps an overhead threshold τ to
// the fraction of instances on which the method is within τ percent of the
// best.
package profile

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Table holds the raw performance values: Value[m][i] is the performance
// of method m on instance i (lower is better; the paper uses (M + IO)/M).
type Table struct {
	Methods   []string
	Instances []string
	Value     [][]float64
}

// NewTable allocates a table for the given methods and instances.
func NewTable(methods, instances []string) *Table {
	v := make([][]float64, len(methods))
	for m := range v {
		v[m] = make([]float64, len(instances))
		for i := range v[m] {
			v[m][i] = math.NaN()
		}
	}
	return &Table{Methods: methods, Instances: instances, Value: v}
}

// Set records the performance of method m on instance i.
func (t *Table) Set(m, i int, v float64) { t.Value[m][i] = v }

// Overheads returns, per method, the per-instance overhead in percent over
// the best method on that instance: 100·(v/best − 1).
func (t *Table) Overheads() ([][]float64, error) {
	ni := len(t.Instances)
	out := make([][]float64, len(t.Methods))
	for m := range out {
		out[m] = make([]float64, ni)
	}
	for i := 0; i < ni; i++ {
		best := math.Inf(1)
		for m := range t.Methods {
			v := t.Value[m][i]
			if math.IsNaN(v) {
				return nil, fmt.Errorf("profile: missing value for method %s instance %s", t.Methods[m], t.Instances[i])
			}
			if v < best {
				best = v
			}
		}
		if best <= 0 {
			return nil, fmt.Errorf("profile: non-positive best performance on instance %s", t.Instances[i])
		}
		for m := range t.Methods {
			out[m][i] = 100 * (t.Value[m][i]/best - 1)
		}
	}
	return out, nil
}

// Profile is one method's cumulative distribution: Fraction[k] is the
// share of instances whose overhead is at most Tau[k] percent.
type Profile struct {
	Method   string
	Tau      []float64
	Fraction []float64
}

// Compute builds the performance profiles on the given overhead grid
// (percent). A nil grid defaults to an automatic grid covering all
// observed overheads.
func Compute(t *Table, grid []float64) ([]Profile, error) {
	ov, err := t.Overheads()
	if err != nil {
		return nil, err
	}
	if grid == nil {
		maxOv := 0.0
		for _, row := range ov {
			for _, v := range row {
				if v > maxOv {
					maxOv = v
				}
			}
		}
		grid = DefaultGrid(maxOv)
	}
	out := make([]Profile, len(t.Methods))
	ni := float64(len(t.Instances))
	for m := range t.Methods {
		sorted := append([]float64(nil), ov[m]...)
		sort.Float64s(sorted)
		fr := make([]float64, len(grid))
		for k, tau := range grid {
			// count of overheads ≤ tau (with a hair of tolerance for
			// floating-point equality at 0).
			c := sort.SearchFloat64s(sorted, tau+1e-9)
			fr[k] = float64(c) / ni
		}
		out[m] = Profile{Method: t.Methods[m], Tau: append([]float64(nil), grid...), Fraction: fr}
	}
	return out, nil
}

// DefaultGrid returns an evenly spaced overhead grid from 0 to just above
// maxOv percent.
func DefaultGrid(maxOv float64) []float64 {
	if maxOv < 10 {
		maxOv = 10
	}
	const steps = 50
	g := make([]float64, steps+1)
	for k := 0; k <= steps; k++ {
		g[k] = maxOv * float64(k) / steps
	}
	return g
}

// FractionWithin returns the share of instances on which the method's
// overhead is at most tau percent, reading the profile curve at the largest
// grid point not exceeding tau (the curve is a step function).
func (p *Profile) FractionWithin(tau float64) float64 {
	// First index with Tau[k] > tau, then step back.
	k := sort.SearchFloat64s(p.Tau, tau+1e-12)
	if k > 0 {
		k--
	}
	return p.Fraction[k]
}

// WriteCSV emits the profiles as CSV: tau, then one column per method.
func WriteCSV(w io.Writer, profiles []Profile) error {
	if len(profiles) == 0 {
		return fmt.Errorf("profile: nothing to write")
	}
	cols := make([]string, 0, len(profiles)+1)
	cols = append(cols, "tau_percent")
	for _, p := range profiles {
		cols = append(cols, p.Method)
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for k := range profiles[0].Tau {
		row := make([]string, 0, len(profiles)+1)
		row = append(row, fmt.Sprintf("%.4g", profiles[0].Tau[k]))
		for _, p := range profiles {
			row = append(row, fmt.Sprintf("%.4f", p.Fraction[k]))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Render draws the profiles as an ASCII chart of the given size (one curve
// letter per method), mirroring the paper's figures for terminal use.
func Render(w io.Writer, profiles []Profile, width, height int) error {
	if len(profiles) == 0 {
		return fmt.Errorf("profile: nothing to render")
	}
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	marks := "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	maxTau := profiles[0].Tau[len(profiles[0].Tau)-1]
	if maxTau <= 0 {
		maxTau = 1
	}
	for mi, p := range profiles {
		mark := marks[mi%len(marks)]
		for x := 0; x < width; x++ {
			tau := maxTau * float64(x) / float64(width-1)
			f := p.FractionWithin(tau)
			y := int(math.Round(f * float64(height-1)))
			r := height - 1 - y
			if grid[r][x] == ' ' {
				grid[r][x] = mark
			}
		}
	}
	for r, row := range grid {
		frac := float64(height-1-r) / float64(height-1)
		if _, err := fmt.Fprintf(w, "%5.2f |%s|\n", frac, string(row)); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "      +%s+\n", strings.Repeat("-", width))
	fmt.Fprintf(w, "      0%%%*s\n", width-1, fmt.Sprintf("%.0f%%", maxTau))
	for mi, p := range profiles {
		fmt.Fprintf(w, "      %c = %s\n", marks[mi%len(marks)], p.Method)
	}
	return nil
}
