package core

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ParseByteSize parses a human-readable byte count as accepted by the
// -cache-budget and -budget CLI flags and the schedd request schema: a
// non-negative number with an optional case-insensitive suffix K/M/G (or
// KB/MB/GB, KiB/MiB/GiB — all binary, 1K = 1024). Fractional values are
// accepted with a suffix ("1.5GiB", "0.25M") and rounded to the nearest
// byte; a fractional count without a suffix ("1.5") is rejected, since a
// fraction of a byte is not a size. Negative, overflowing and non-finite
// inputs are rejected with a clear error. An empty string or "0" means 0
// (unlimited).
func ParseByteSize(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	u := strings.ToUpper(s)
	mult := int64(1)
	for _, suf := range []struct {
		s string
		m int64
	}{
		{"GIB", 1 << 30}, {"GB", 1 << 30}, {"G", 1 << 30},
		{"MIB", 1 << 20}, {"MB", 1 << 20}, {"M", 1 << 20},
		{"KIB", 1 << 10}, {"KB", 1 << 10}, {"K", 1 << 10},
	} {
		if strings.HasSuffix(u, suf.s) {
			u = strings.TrimSuffix(u, suf.s)
			mult = suf.m
			break
		}
	}
	num := strings.TrimSpace(u)
	// Integer counts stay on exact int64 arithmetic; only values that
	// actually carry a fraction take the float path below.
	if n, err := strconv.ParseInt(num, 10, 64); err == nil {
		if n < 0 {
			return 0, fmt.Errorf("core: negative byte size %q", s)
		}
		if n > math.MaxInt64/mult {
			return 0, fmt.Errorf("core: byte size %q overflows int64", s)
		}
		return n * mult, nil
	}
	f, err := strconv.ParseFloat(num, 64)
	if err != nil || math.IsNaN(f) || math.IsInf(f, 0) {
		return 0, fmt.Errorf("core: invalid byte size %q", s)
	}
	if f < 0 {
		return 0, fmt.Errorf("core: negative byte size %q", s)
	}
	if mult == 1 && f != math.Trunc(f) {
		return 0, fmt.Errorf("core: fractional byte size %q needs a unit suffix", s)
	}
	// mult ≤ 2³⁰ and float64 carries 52 mantissa bits, so the product is
	// exact for every representable fraction of a binary unit; guard the
	// magnitude before converting so 1e300G fails loudly, not silently.
	// The comparison is against 2⁶³ (exactly representable), not MaxInt64
	// (which float64 rounds UP to 2⁶³): any b ≥ 2⁶³ would wrap negative in
	// the int64 conversion below.
	b := math.Round(f * float64(mult))
	if b >= 1<<63 {
		return 0, fmt.Errorf("core: byte size %q overflows int64", s)
	}
	return int64(b), nil
}
