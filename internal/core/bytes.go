package core

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ParseByteSize parses a human-readable byte count as accepted by the
// -cache-budget CLI flags: a non-negative integer with an optional
// case-insensitive suffix K/M/G (or KB/MB/GB, KiB/MiB/GiB — all binary,
// 1K = 1024). An empty string or "0" means 0 (unlimited).
func ParseByteSize(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	u := strings.ToUpper(s)
	mult := int64(1)
	for _, suf := range []struct {
		s string
		m int64
	}{
		{"GIB", 1 << 30}, {"GB", 1 << 30}, {"G", 1 << 30},
		{"MIB", 1 << 20}, {"MB", 1 << 20}, {"M", 1 << 20},
		{"KIB", 1 << 10}, {"KB", 1 << 10}, {"K", 1 << 10},
	} {
		if strings.HasSuffix(u, suf.s) {
			u = strings.TrimSuffix(u, suf.s)
			mult = suf.m
			break
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(u), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("core: invalid byte size %q", s)
	}
	if n > math.MaxInt64/mult {
		return 0, fmt.Errorf("core: byte size %q overflows int64", s)
	}
	return n * mult, nil
}
