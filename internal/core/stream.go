package core

import (
	"repro/internal/expand"
	"repro/internal/tree"
)

// RunStream executes alg on t under memory bound M like Run, but streams
// the schedule to yield segment by segment instead of materializing
// Result.Schedule — the serving path of schedd, where the response is
// written straight to the client via tree.WriteSchedule. Each yielded
// segment aliases a reusable buffer, valid only for the duration of the
// call. The returned Result carries a nil Schedule; the streamed segments
// concatenate to exactly the Schedule the materializing Run would have
// produced, and every other field is identical.
//
// For the expansion heuristics (RecExpand, FullRecExpand) the emission is
// truly out-of-core — expand.(*Engine).RecExpandStream with the Runner's
// Workers/CacheBudget/Ctx/Checkpoint settings threaded through, so the
// n-word slice never exists. The closed-form algorithms are single
// materializing passes by nature; their schedule is computed as in Run and
// then replayed through yield, which keeps the wire format identical
// across algorithms. If yield stops the emission early, RunStream returns
// expand.ErrEmissionStopped.
func (rn *Runner) RunStream(alg Algorithm, t *tree.Tree, M int64, yield func(seg []int) bool) (*Result, error) {
	switch alg {
	case RecExpand, FullRecExpand:
		if rn.Ctx != nil {
			select {
			case <-rn.Ctx.Done():
				return nil, rn.Ctx.Err()
			default:
			}
		}
		opts := expand.Options{
			MaxPerNode:  2,
			Workers:     rn.Workers,
			CacheBudget: rn.CacheBudget,
			Ctx:         rn.Ctx,
			Checkpoint:  expand.CheckpointOptions{Path: rn.CheckpointPath, Interval: rn.CheckpointInterval},
			ResumeFrom:  rn.ResumeFrom,
		}
		if alg == FullRecExpand {
			opts.MaxPerNode = 0
		}
		res, err := rn.eng.RecExpandStream(t, M, opts, yield)
		if err != nil {
			return nil, err
		}
		return &Result{Algorithm: alg, IO: res.IO, Peak: res.SimulatedPeak}, nil
	default:
		res, err := rn.Run(alg, t, M)
		if err != nil {
			return nil, err
		}
		if !res.Schedule.Emit(yield) {
			return nil, expand.ErrEmissionStopped
		}
		res.Schedule = nil
		return res, nil
	}
}

// CacheStats exposes the profile-cache residency counters of the Runner's
// most recent expansion run (expand.(*Engine).CacheStats): schedd reports
// the peak resident cache per request next to the lease that bounded it.
func (rn *Runner) CacheStats() CacheStatsSnapshot {
	st := rn.eng.CacheStats()
	return CacheStatsSnapshot{
		PeakResidentBytes:  st.PeakResidentBytes,
		Evictions:          st.Evictions,
		Rematerializations: st.Rematerializations,
	}
}

// CacheStatsSnapshot is the Runner-level view of the expansion engine's
// cache counters — the subset the serving layer reports per request.
type CacheStatsSnapshot struct {
	// PeakResidentBytes is the high-water resident footprint of the
	// run's profile caches, the number a budget lease is calibrated
	// against.
	PeakResidentBytes int64
	// Evictions counts subtree evictions the budget forced.
	Evictions int64
	// Rematerializations counts recomputations of evicted profiles —
	// the time cost paid for staying inside the lease.
	Rematerializations int64
}
