package core

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/memsim"
	"repro/internal/tree"
)

// Traversal is the serializable form of a complete solution (σ, τ) for a
// given memory bound: the artifact a planner hands to an execution engine.
type Traversal struct {
	// M is the memory bound the traversal was planned for.
	M int64 `json:"m"`
	// Schedule is σ: Schedule[t] is the node executed at step t.
	Schedule tree.Schedule `json:"schedule"`
	// Tau is τ: Tau[i] is the volume of node i's output written to disk.
	Tau []int64 `json:"tau"`
	// Algorithm records the producing strategy (informational).
	Algorithm Algorithm `json:"algorithm,omitempty"`
}

// NewTraversal derives the full traversal of a schedule under M using the
// FiF policy (optimal for the schedule, Theorem 1).
func NewTraversal(t *tree.Tree, M int64, sched tree.Schedule, alg Algorithm) (*Traversal, error) {
	res, err := memsim.Run(t, M, sched, memsim.FiF)
	if err != nil {
		return nil, err
	}
	return &Traversal{M: M, Schedule: res.Schedule, Tau: res.Tau, Algorithm: alg}, nil
}

// IO returns Σ τ(i).
func (tv *Traversal) IO() int64 {
	var s int64
	for _, ti := range tv.Tau {
		s += ti
	}
	return s
}

// Validate checks the traversal against the paper's validity conditions.
func (tv *Traversal) Validate(t *tree.Tree) error {
	return memsim.Validate(t, tv.M, tv.Schedule, tv.Tau)
}

// Write serializes the traversal as JSON.
func (tv *Traversal) Write(w io.Writer) error {
	return json.NewEncoder(w).Encode(tv)
}

// ReadTraversal parses a traversal written by Write.
func ReadTraversal(r io.Reader) (*Traversal, error) {
	var tv Traversal
	if err := json.NewDecoder(r).Decode(&tv); err != nil {
		return nil, err
	}
	if tv.M <= 0 {
		return nil, fmt.Errorf("core: traversal has non-positive M")
	}
	if len(tv.Schedule) != len(tv.Tau) {
		return nil, fmt.Errorf("core: traversal has %d schedule steps but %d τ entries",
			len(tv.Schedule), len(tv.Tau))
	}
	return &tv, nil
}
