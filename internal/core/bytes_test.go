package core

import (
	"math"
	"strings"
	"testing"
)

// TestParseByteSize pins the full accepted grammar of the byte-size flags
// and the schedd request schema — integers, fractions with every binary
// suffix, whitespace — and the rejection of everything that must fail
// loudly: negatives, overflow, fractions of a bare byte, non-numbers.
func TestParseByteSize(t *testing.T) {
	ok := []struct {
		in   string
		want int64
	}{
		{"", 0},
		{"0", 0},
		{"  42  ", 42},
		{"1024", 1024},
		{"1k", 1024},
		{"1K", 1024},
		{"1KB", 1024},
		{"1KiB", 1024},
		{"1kib", 1024},
		{"3M", 3 << 20},
		{"3MiB", 3 << 20},
		{"2G", 2 << 30},
		{"2gb", 2 << 30},
		{"1.5GiB", 3 << 29}, // 1610612736
		{"1.5K", 1536},
		{"0.25M", 256 << 10},
		{"0.5k", 512},
		{"2.75G", 2952790016}, // 2.75·2³⁰ — binary fractions are exact
		{"0.0G", 0},
		{" 1.5 GiB ", 3 << 29},             // whitespace between number and suffix
		{"8589934591K", 8589934591 * 1024}, // just under the int64 cap
	}
	for _, tc := range ok {
		got, err := ParseByteSize(tc.in)
		if err != nil {
			t.Errorf("ParseByteSize(%q): unexpected error %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseByteSize(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}

	bad := []struct {
		in      string
		errPart string
	}{
		{"-1", "negative"},
		{"-1K", "negative"},
		{"-0.5G", "negative"},
		{"1.5", "unit suffix"}, // a fraction of a byte is not a size
		{"0.1", "unit suffix"},
		{"9223372036854775808", "overflows"}, // MaxInt64+1
		{"9007199254740993G", "overflows"},   // integer · mult overflow
		{"1e300G", "overflows"},              // float path overflow
		{"NaNG", "invalid"},
		{"InfK", "invalid"},
		{"+InfK", "invalid"},
		{"abc", "invalid"},
		{"12XB", "invalid"},
		{"1.2.3K", "invalid"},
		{"K", "invalid"},
		{".", "invalid"},
	}
	for _, tc := range bad {
		got, err := ParseByteSize(tc.in)
		if err == nil {
			t.Errorf("ParseByteSize(%q) = %d, want error containing %q", tc.in, got, tc.errPart)
			continue
		}
		if !strings.Contains(err.Error(), tc.errPart) {
			t.Errorf("ParseByteSize(%q) error = %v, want it to contain %q", tc.in, err, tc.errPart)
		}
	}
}

// TestParseByteSizeNeverNegative fuzz-lite: no accepted input may ever map
// to a negative size, and every accepted value must round-trip below the
// int64 ceiling (the broker divides by these values).
func TestParseByteSizeNeverNegative(t *testing.T) {
	for _, in := range []string{"0.9999999999G", "8796093022207K", "9007199254740992K"} {
		v, err := ParseByteSize(in)
		if err != nil {
			continue
		}
		if v < 0 || v > math.MaxInt64 {
			t.Fatalf("ParseByteSize(%q) = %d, outside [0, MaxInt64]", in, v)
		}
	}
}
