package core

import (
	"math/rand"
	"testing"

	"repro/internal/brute"
	"repro/internal/randtree"
	"repro/internal/tree"
)

func fig2bTree() *tree.Tree {
	return tree.Graft(1, tree.Chain(3, 5, 2, 6), tree.Chain(3, 5, 2, 6))
}

func TestRunAllAlgorithmsValid(t *testing.T) {
	tr := fig2bTree()
	in := NewInstance("fig2b", tr)
	if in.LB != 6 || in.Peak != 8 {
		t.Fatalf("LB=%d Peak=%d want 6/8", in.LB, in.Peak)
	}
	if !in.NeedsIO() {
		t.Fatal("instance needs I/O")
	}
	algs := append(append([]Algorithm(nil), PaperAlgorithms...), PostOrderMinMem, NaturalPostOrder)
	for _, M := range []int64{in.M(BoundLB), in.M(BoundMid), in.M(BoundPeakMinus1)} {
		results, err := RunAll(algs, tr, M)
		if err != nil {
			t.Fatal(err)
		}
		_, opt, err := brute.MinIO(tr, M)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range results {
			if err := tree.Validate(tr, r.Schedule); err != nil {
				t.Fatalf("%s: %v", r.Algorithm, err)
			}
			if r.IO < opt {
				t.Fatalf("%s reports IO %d below optimum %d at M=%d", r.Algorithm, r.IO, opt, M)
			}
			if p := r.Performance(M); p < 1 {
				t.Fatalf("%s: performance %f < 1", r.Algorithm, p)
			}
		}
	}
}

func TestRunUnknownAlgorithm(t *testing.T) {
	if _, err := Run(Algorithm("nope"), fig2bTree(), 8); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestRunBelowLB(t *testing.T) {
	if _, err := Run(OptMinMem, fig2bTree(), 5); err == nil {
		t.Fatal("M below LB accepted")
	}
}

func TestBounds(t *testing.T) {
	in := NewInstance("x", fig2bTree())
	if in.M(BoundLB) != 6 {
		t.Errorf("M1=%d", in.M(BoundLB))
	}
	if in.M(BoundPeakMinus1) != 7 {
		t.Errorf("M2=%d", in.M(BoundPeakMinus1))
	}
	if in.M(BoundMid) != (6+8-1)/2 {
		t.Errorf("Mid=%d", in.M(BoundMid))
	}
	for _, b := range []Bound{BoundMid, BoundLB, BoundPeakMinus1} {
		if b.String() == "" {
			t.Error("empty bound name")
		}
	}
	if Bound(9).String() == "" {
		t.Error("unknown bound name empty")
	}
}

func TestZeroIOAtPeak(t *testing.T) {
	tr := fig2bTree()
	in := NewInstance("x", tr)
	// At M = Peak_incore only the algorithms that reach the optimal
	// peak are I/O-free; postorders still pay (their own peak is 9).
	for _, alg := range []Algorithm{OptMinMem, RecExpand, FullRecExpand} {
		r, err := Run(alg, tr, in.Peak)
		if err != nil {
			t.Fatal(err)
		}
		if r.IO != 0 {
			t.Errorf("%s pays %d at M=Peak", alg, r.IO)
		}
	}
	r, err := Run(PostOrderMinIO, tr, in.Peak)
	if err != nil {
		t.Fatal(err)
	}
	if r.IO != 1 {
		t.Errorf("PostOrderMinIO pays %d at M=Peak, want 1 (its own peak is 9)", r.IO)
	}
	// At M = best-postorder peak, every algorithm is I/O-free.
	for _, alg := range PaperAlgorithms {
		r, err := Run(alg, tr, 9)
		if err != nil {
			t.Fatal(err)
		}
		if r.IO != 0 {
			t.Errorf("%s pays %d at M=9", alg, r.IO)
		}
	}
}

func TestResultsNeverBelowOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	trials := 40
	if testing.Short() {
		trials = 12
	}
	for trial := 0; trial < trials; trial++ {
		tr := randtree.AssignWeights(randtree.Remy(2+rng.Intn(7), rng), 1, 9, rng)
		in := NewInstance("t", tr)
		if !in.NeedsIO() {
			continue
		}
		M := in.M(BoundMid)
		_, opt, err := brute.MinIO(tr, M)
		if err != nil {
			t.Fatal(err)
		}
		for _, alg := range PaperAlgorithms {
			r, err := Run(alg, tr, M)
			if err != nil {
				t.Fatal(err)
			}
			if r.IO < opt {
				t.Fatalf("trial %d: %s IO %d below optimum %d (parents=%v weights=%v M=%d)",
					trial, alg, r.IO, opt, tr.Parents(), tr.Weights(), M)
			}
		}
	}
}

func TestSortInstances(t *testing.T) {
	a := NewInstance("b", fig2bTree())
	b := NewInstance("a", fig2bTree())
	ins := []*Instance{a, b}
	Sort(ins)
	if ins[0].Name != "a" {
		t.Fatal("not sorted")
	}
}
