package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/tree"
)

func TestTraversalRoundTrip(t *testing.T) {
	tr := fig2bTree()
	sched := tree.Schedule{4, 3, 2, 1, 8, 7, 6, 5, 0}
	tv, err := NewTraversal(tr, 6, sched, NaturalPostOrder)
	if err != nil {
		t.Fatal(err)
	}
	if tv.IO() != 3 {
		t.Fatalf("IO=%d", tv.IO())
	}
	if err := tv.Validate(tr); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tv.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTraversal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.IO() != 3 || back.M != 6 || back.Algorithm != NaturalPostOrder {
		t.Fatalf("round trip: %+v", back)
	}
	if err := back.Validate(tr); err != nil {
		t.Fatal(err)
	}
}

func TestTraversalErrors(t *testing.T) {
	tr := fig2bTree()
	if _, err := NewTraversal(tr, 5, tree.Schedule{4, 3, 2, 1, 8, 7, 6, 5, 0}, OptMinMem); err == nil {
		t.Error("M below LB accepted")
	}
	if _, err := ReadTraversal(strings.NewReader(`{"m":0,"schedule":[],"tau":[]}`)); err == nil {
		t.Error("zero M accepted")
	}
	if _, err := ReadTraversal(strings.NewReader(`{"m":6,"schedule":[0],"tau":[]}`)); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := ReadTraversal(strings.NewReader(`garbage`)); err == nil {
		t.Error("garbage accepted")
	}
	// A tampered traversal fails validation.
	tv, err := NewTraversal(tr, 6, tree.Schedule{4, 3, 2, 1, 8, 7, 6, 5, 0}, OptMinMem)
	if err != nil {
		t.Fatal(err)
	}
	tv.Tau[1] = 0 // remove the mandatory eviction
	if err := tv.Validate(tr); err == nil {
		t.Error("tampered traversal validated")
	}
}
