// Package core is the solver facade of the reproduction: it exposes the
// MinIO problem (minimize the I/O volume of an out-of-core task-tree
// traversal under a memory bound M), a registry of the paper's algorithms,
// the memory-bound selection rules of Section 6, and the performance metric
// used by the evaluation.
package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/expand"
	"repro/internal/liu"
	"repro/internal/memsim"
	"repro/internal/postorder"
	"repro/internal/tree"
)

// Algorithm identifies one scheduling strategy for MinIO.
type Algorithm string

const (
	// OptMinMem schedules with Liu's optimal peak-memory traversal and
	// pays FiF I/Os (Section 4.4).
	OptMinMem Algorithm = "OptMinMem"
	// PostOrderMinIO is Agullo's best postorder for the I/O volume
	// (Section 4.1).
	PostOrderMinIO Algorithm = "PostOrderMinIO"
	// PostOrderMinMem is Liu's best postorder for peak memory, included
	// as an additional baseline.
	PostOrderMinMem Algorithm = "PostOrderMinMem"
	// NaturalPostOrder processes children in construction order: the
	// naive baseline.
	NaturalPostOrder Algorithm = "NaturalPostOrder"
	// RecExpand is the paper's novel heuristic with expansion budget 2
	// per node (Section 5).
	RecExpand Algorithm = "RecExpand"
	// FullRecExpand is the unbounded variant (Algorithm 2).
	FullRecExpand Algorithm = "FullRecExpand"
)

// PaperAlgorithms lists the four strategies compared in Section 6, in the
// paper's plotting order.
var PaperAlgorithms = []Algorithm{OptMinMem, RecExpand, PostOrderMinIO, FullRecExpand}

// FastAlgorithms is PaperAlgorithms without FULLRECEXPAND, matching the
// paper's TREES runs (FULLRECEXPAND is only run on the smaller dataset
// "because of its high computational complexity").
var FastAlgorithms = []Algorithm{OptMinMem, RecExpand, PostOrderMinIO}

// Result reports a traversal produced by an algorithm.
type Result struct {
	Algorithm Algorithm
	Schedule  tree.Schedule
	// IO is the traversal's total I/O volume Σ τ(i) under memory bound M.
	IO int64
	// Peak is the in-core peak of the schedule (its memory need with
	// unbounded memory).
	Peak int64
}

// Performance returns the paper's Section 6 metric (M + IO) / M.
func (r *Result) Performance(M int64) float64 {
	return float64(M+r.IO) / float64(M)
}

// Runner executes algorithms with reusable state: one expansion engine
// whose scratch (simulator, schedule and rank buffers) survives across
// calls, plus the Workers knob threaded into the expansion heuristics.
// The experiment harness keeps one Runner per worker goroutine instead of
// re-allocating engine state per instance. A Runner is not safe for
// concurrent use.
type Runner struct {
	// Workers is passed to the expansion engine (expand.Options.Workers):
	// 0 auto-selects GOMAXPROCS on large trees, 1 forces the sequential
	// driver, >1 shards the postorder walk. Results are identical for
	// every setting.
	Workers int
	// CacheBudget is passed to the expansion engine
	// (expand.Options.CacheBudget): a bound, in bytes, on the resident
	// profile-cache footprint, under which clean subtree profiles are
	// evicted and recomputed on demand. 0 means unlimited. Results are
	// identical for every setting; only memory and time move.
	CacheBudget int64
	// Ctx cancels runs cooperatively (expand.Options.Ctx): Run checks it
	// on entry and the expansion engines check it throughout, so a SIGINT
	// aborts a long RecExpand instead of running to completion. The
	// direct algorithms (OptMinMem, the postorders) are single closed-form
	// passes and only honour the entry check. nil disables cancellation.
	Ctx context.Context
	// CheckpointPath arms durable checkpointing of the expansion
	// heuristics (expand.Options.Checkpoint.Path): the engine persists
	// its decision log and frontier there at quiescent points so a
	// killed run can be resumed via ResumeFrom. Empty disarms. The
	// direct algorithms are single closed-form passes and ignore it.
	CheckpointPath string
	// CheckpointInterval is the events-between-writes setting of the
	// armed checkpoint (expand.Options.Checkpoint.Interval); 0 means
	// the engine default.
	CheckpointInterval int
	// ResumeFrom resumes an expansion heuristic from a checkpoint file
	// written by a previous run of the same instance
	// (expand.Options.ResumeFrom). Empty disables resuming.
	ResumeFrom string

	eng *expand.Engine
}

// NewRunner returns a Runner with the given worker setting and fresh
// engine scratch.
func NewRunner(workers int) *Runner {
	return &Runner{Workers: workers, eng: expand.NewEngine()}
}

// Run executes the given algorithm on t under memory bound M, using the
// package default Runner settings (auto worker selection).
func Run(alg Algorithm, t *tree.Tree, M int64) (*Result, error) {
	return NewRunner(0).Run(alg, t, M)
}

// Run executes the given algorithm on t under memory bound M.
func (rn *Runner) Run(alg Algorithm, t *tree.Tree, M int64) (*Result, error) {
	if rn.Ctx != nil {
		select {
		case <-rn.Ctx.Done():
			return nil, rn.Ctx.Err()
		default:
		}
	}
	if lb := t.MaxWBar(); M < lb {
		return nil, fmt.Errorf("core: M=%d below LB=%d", M, lb)
	}
	var sched tree.Schedule
	switch alg {
	case OptMinMem:
		sched, _ = liu.MinMem(t)
	case PostOrderMinIO:
		sched, _, _ = postorder.MinIO(t, M)
	case PostOrderMinMem:
		sched, _ = liu.PostOrderMinMem(t)
	case NaturalPostOrder:
		sched = t.NaturalPostorder()
	case RecExpand, FullRecExpand:
		// The expansion engine already validated its transposed schedule
		// and simulated it on the original tree under M; reuse that run
		// instead of paying a redundant simulation here.
		opts := expand.Options{
			MaxPerNode:  2,
			Workers:     rn.Workers,
			CacheBudget: rn.CacheBudget,
			Ctx:         rn.Ctx,
			Checkpoint:  expand.CheckpointOptions{Path: rn.CheckpointPath, Interval: rn.CheckpointInterval},
			ResumeFrom:  rn.ResumeFrom,
		}
		if alg == FullRecExpand {
			opts.MaxPerNode = 0
		}
		res, err := rn.eng.RecExpand(t, M, opts)
		if err != nil {
			return nil, err
		}
		return &Result{Algorithm: alg, Schedule: res.Schedule, IO: res.IO, Peak: res.SimulatedPeak}, nil
	default:
		return nil, fmt.Errorf("core: unknown algorithm %q", alg)
	}
	sim, err := memsim.Run(t, M, sched, memsim.FiF)
	if err != nil {
		return nil, fmt.Errorf("core: %s produced an invalid schedule: %w", alg, err)
	}
	return &Result{Algorithm: alg, Schedule: sched, IO: sim.IO, Peak: sim.Peak}, nil
}

// RunAll runs every algorithm of algs on t under M, returning results in
// the same order.
func RunAll(algs []Algorithm, t *tree.Tree, M int64) ([]*Result, error) {
	return NewRunner(0).RunAll(algs, t, M)
}

// RunAll runs every algorithm of algs on t under M with the Runner's
// settings, returning results in the same order.
func (rn *Runner) RunAll(algs []Algorithm, t *tree.Tree, M int64) ([]*Result, error) {
	out := make([]*Result, len(algs))
	for i, a := range algs {
		r, err := rn.Run(a, t, M)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

// IOLowerBound returns a provable lower bound on the optimal I/O volume of
// t under memory bound M: any traversal whose I/O function sums to k keeps
// at most k units on disk at any instant, so its schedule's in-core peak is
// at most M + k; since that peak is at least Peak_incore (Liu's optimum),
// k ≥ Peak_incore − M.
func IOLowerBound(t *tree.Tree, M int64) int64 {
	if k := liu.MinMemPeak(t) - M; k > 0 {
		return k
	}
	return 0
}

// Bound selects the memory limit for an instance, per Section 6 and
// Appendix B.
type Bound int

const (
	// BoundMid is M = (LB + Peak_incore − 1) / 2, the main experiments'
	// setting.
	BoundMid Bound = iota
	// BoundLB is M1 = LB, the smallest bound for which the tree can be
	// processed (Appendix B).
	BoundLB
	// BoundPeakMinus1 is M2 = Peak_incore − 1, the largest bound for
	// which some I/O is required (Appendix B).
	BoundPeakMinus1
)

// String names the bound.
func (b Bound) String() string {
	switch b {
	case BoundMid:
		return "Mid"
	case BoundLB:
		return "LB"
	case BoundPeakMinus1:
		return "PeakMinus1"
	}
	return fmt.Sprintf("Bound(%d)", int(b))
}

// Instance couples a tree with its precomputed memory characteristics.
type Instance struct {
	Name string
	Tree *tree.Tree
	// LB = max_i w̄(i): minimum feasible memory.
	LB int64
	// Peak is the optimal in-core peak memory (OPTMINMEM's peak).
	Peak int64
}

// NewInstance analyzes t.
func NewInstance(name string, t *tree.Tree) *Instance {
	return &Instance{Name: name, Tree: t, LB: t.MaxWBar(), Peak: liu.MinMemPeak(t)}
}

// NeedsIO reports whether some memory bound in [LB, Peak−1] exists, i.e.
// whether the instance can be made I/O-bound at all. Section 6 drops TREES
// instances with Peak == LB.
func (in *Instance) NeedsIO() bool { return in.Peak > in.LB }

// M returns the memory bound selected by b for this instance.
func (in *Instance) M(b Bound) int64 {
	switch b {
	case BoundLB:
		return in.LB
	case BoundPeakMinus1:
		return in.Peak - 1
	default:
		return (in.LB + in.Peak - 1) / 2
	}
}

// Sort orders instances by name (stable dataset presentation).
func Sort(ins []*Instance) {
	sort.Slice(ins, func(i, j int) bool { return ins[i].Name < ins[j].Name })
}
