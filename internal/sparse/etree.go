package sparse

import "repro/internal/tree"

// Etree computes the elimination tree of the pattern using Liu's
// near-linear algorithm with path compression: parent[j] is the smallest
// row index of the nonzeros of column j of the Cholesky factor below the
// diagonal, or -1 if column j is a root. Disconnected patterns yield a
// forest (several -1 entries).
func Etree(p *Pattern) []int {
	n := p.N
	parent := make([]int, n)
	ancestor := make([]int, n)
	for j := 0; j < n; j++ {
		parent[j] = -1
		ancestor[j] = -1
	}
	// Row-wise iteration over the strict lower triangle: entry (i, j)
	// with i > j is visited when processing row i, linking j's root
	// towards i.
	rows := make([][]int, n)
	for j, l := range p.Lower {
		for _, i := range l {
			rows[i] = append(rows[i], j)
		}
	}
	for i := 0; i < n; i++ {
		for _, k := range rows[i] {
			// Walk from k to the root of its current subtree,
			// compressing the ancestor path onto i.
			r := k
			for ancestor[r] != -1 && ancestor[r] != i {
				next := ancestor[r]
				ancestor[r] = i
				r = next
			}
			if ancestor[r] == -1 {
				ancestor[r] = i
				parent[r] = i
			}
		}
	}
	return parent
}

// EtreePostorder returns a postorder of the elimination forest (children
// before parents, subtrees contiguous), processing children in increasing
// column order and roots in increasing order.
func EtreePostorder(parent []int) []int {
	n := len(parent)
	children := make([][]int, n)
	var roots []int
	for j := 0; j < n; j++ {
		if p := parent[j]; p == -1 {
			roots = append(roots, j)
		} else {
			children[p] = append(children[p], j)
		}
	}
	order := make([]int, 0, n)
	type frame struct{ node, next int }
	for _, r := range roots {
		stack := []frame{{r, 0}}
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(children[f.node]) {
				c := children[f.node][f.next]
				f.next++
				stack = append(stack, frame{c, 0})
				continue
			}
			order = append(order, f.node)
			stack = stack[:len(stack)-1]
		}
	}
	return order
}

// ColCounts returns, for every column j, the number of nonzeros of column
// j of the Cholesky factor L (diagonal included), computed by symbolic
// factorization along the elimination tree: the structure of L_j is the
// structure of A_j (below the diagonal) merged with the structures of its
// etree children minus their own indices.
//
// The implementation uses the classical row-subtree formulation, which
// runs in O(nnz(A) · height) worst case but needs only O(n) memory: row i
// of L contains j iff j is an ancestor of some k with a_ik ≠ 0, k ≤ j ≤ i;
// marking row subtrees top-down gives every column count by accumulation.
func ColCounts(p *Pattern, parent []int) []int64 {
	n := p.N
	count := make([]int64, n)
	mark := make([]int, n)
	for j := 0; j < n; j++ {
		count[j] = 1 // diagonal
		mark[j] = -1
	}
	rows := make([][]int, n)
	for j, l := range p.Lower {
		for _, i := range l {
			rows[i] = append(rows[i], j)
		}
	}
	for i := 0; i < n; i++ {
		mark[i] = i // never count the diagonal twice
		for _, k := range rows[i] {
			// Walk k → root of the row subtree of i: every visited
			// column j < i has l_ij ≠ 0.
			for j := k; j != -1 && j < i && mark[j] != i; j = parent[j] {
				count[j]++
				mark[j] = i
			}
		}
	}
	return count
}

// denseColCounts is a quadratic reference implementation used by the tests:
// it materializes every factor column structure explicitly.
func denseColCounts(p *Pattern) []int64 {
	n := p.N
	structs := make([]map[int]bool, n)
	parent := Etree(p)
	for j := 0; j < n; j++ {
		structs[j] = map[int]bool{j: true}
		for _, i := range p.Lower[j] {
			structs[j][i] = true
		}
	}
	for _, j := range EtreePostorder(parent) {
		if pj := parent[j]; pj != -1 {
			for i := range structs[j] {
				if i > j {
					structs[pj][i] = true
				}
			}
		}
	}
	counts := make([]int64, n)
	for j := 0; j < n; j++ {
		counts[j] = int64(len(structs[j]))
	}
	return counts
}

// TaskTree runs the whole multifrontal front-end in one call: it permutes
// pattern p by the elimination ordering perm (nil keeps the natural
// order), computes the elimination tree and the factor column counts, and
// converts the resulting forest into a task tree whose node weights are
// the column counts. It is the generator plumbing the certification
// harness uses to draw real elimination trees from random and nested-
// dissection patterns.
func TaskTree(p *Pattern, perm []int) (*tree.Tree, error) {
	if perm != nil {
		pp, err := p.Permute(perm)
		if err != nil {
			return nil, err
		}
		p = pp
	}
	parent := Etree(p)
	counts := ColCounts(p, parent)
	return EtreeToTaskTree(parent, counts)
}

// EtreeToTaskTree converts an elimination forest (one node per column) into
// a task tree where node j's output size is the factor column count of j.
// Forests are joined under a virtual unit-weight root, as is done when
// feeding multifrontal assembly forests to a scheduler.
func EtreeToTaskTree(parent []int, weight []int64) (*tree.Tree, error) {
	n := len(parent)
	roots := 0
	for _, p := range parent {
		if p == -1 {
			roots++
		}
	}
	if roots == 1 {
		par := make([]int, n)
		for j, p := range parent {
			if p == -1 {
				par[j] = tree.None
			} else {
				par[j] = p
			}
		}
		return tree.New(par, weight)
	}
	par := make([]int, n+1)
	w := make([]int64, n+1)
	for j, p := range parent {
		if p == -1 {
			par[j] = n
		} else {
			par[j] = p
		}
		w[j] = weight[j]
	}
	par[n] = tree.None
	w[n] = 1
	return tree.New(par, w)
}
