package sparse

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Pattern is the nonzero pattern of a sparse symmetric matrix. Only the
// strict lower triangle is stored: Lower[j] lists the rows i > j with
// a_ij ≠ 0, sorted increasingly. The diagonal is implicitly full (as is
// standard for factorization analysis).
type Pattern struct {
	N     int
	Lower [][]int
}

// NewPattern builds a pattern from (i, j) coordinate pairs (any order,
// duplicates and diagonal entries allowed; the pattern is symmetrized).
func NewPattern(n int, rows, cols []int) (*Pattern, error) {
	if len(rows) != len(cols) {
		return nil, fmt.Errorf("sparse: %d rows vs %d cols", len(rows), len(cols))
	}
	p := &Pattern{N: n, Lower: make([][]int, n)}
	for k := range rows {
		i, j := rows[k], cols[k]
		if i < 0 || i >= n || j < 0 || j >= n {
			return nil, fmt.Errorf("sparse: entry (%d,%d) out of range for n=%d", i, j, n)
		}
		if i == j {
			continue
		}
		if i < j {
			i, j = j, i
		}
		p.Lower[j] = append(p.Lower[j], i)
	}
	p.dedupe()
	return p, nil
}

func (p *Pattern) dedupe() {
	for j := range p.Lower {
		l := p.Lower[j]
		sort.Ints(l)
		out := l[:0]
		prev := -1
		for _, i := range l {
			if i != prev {
				out = append(out, i)
				prev = i
			}
		}
		p.Lower[j] = out
	}
}

// NNZ returns the number of stored (strict lower) nonzeros.
func (p *Pattern) NNZ() int {
	s := 0
	for _, l := range p.Lower {
		s += len(l)
	}
	return s
}

// Permute returns the pattern of P·A·Pᵀ where perm[old] = new.
func (p *Pattern) Permute(perm []int) (*Pattern, error) {
	if len(perm) != p.N {
		return nil, fmt.Errorf("sparse: permutation length %d for n=%d", len(perm), p.N)
	}
	seen := make([]bool, p.N)
	for _, v := range perm {
		if v < 0 || v >= p.N || seen[v] {
			return nil, fmt.Errorf("sparse: not a permutation")
		}
		seen[v] = true
	}
	var rows, cols []int
	for j, l := range p.Lower {
		for _, i := range l {
			rows = append(rows, perm[i])
			cols = append(cols, perm[j])
		}
	}
	return NewPattern(p.N, rows, cols)
}

// checkDims validates that every dimension is positive and that their
// product fits in an int, returning the product. The generators call it up
// front so hostile sizes surface as errors instead of slice panics.
func checkDims(what string, dims ...int) (int, error) {
	n := 1
	for _, d := range dims {
		if d <= 0 {
			return 0, fmt.Errorf("sparse: %s: non-positive dimension %d", what, d)
		}
		if n > math.MaxInt/d {
			return 0, fmt.Errorf("sparse: %s: dimensions %v overflow", what, dims)
		}
		n *= d
	}
	return n, nil
}

// Grid2D returns the 5-point-stencil Laplacian pattern of an nx × ny grid
// in natural (row-major) ordering. It errors on non-positive or
// overflowing dimensions.
func Grid2D(nx, ny int) (*Pattern, error) {
	n, err := checkDims("Grid2D", nx, ny)
	if err != nil {
		return nil, err
	}
	var rows, cols []int
	id := func(x, y int) int { return y*nx + x }
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			if x+1 < nx {
				rows = append(rows, id(x+1, y))
				cols = append(cols, id(x, y))
			}
			if y+1 < ny {
				rows = append(rows, id(x, y+1))
				cols = append(cols, id(x, y))
			}
		}
	}
	p, err := NewPattern(n, rows, cols)
	if err != nil {
		panic(err) // unreachable: stencil entries are in range by construction
	}
	return p, nil
}

// Grid3D returns the 7-point-stencil Laplacian pattern of an
// nx × ny × nz grid in natural ordering. It errors on non-positive or
// overflowing dimensions.
func Grid3D(nx, ny, nz int) (*Pattern, error) {
	n, err := checkDims("Grid3D", nx, ny, nz)
	if err != nil {
		return nil, err
	}
	var rows, cols []int
	id := func(x, y, z int) int { return (z*ny+y)*nx + x }
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				if x+1 < nx {
					rows = append(rows, id(x+1, y, z))
					cols = append(cols, id(x, y, z))
				}
				if y+1 < ny {
					rows = append(rows, id(x, y+1, z))
					cols = append(cols, id(x, y, z))
				}
				if z+1 < nz {
					rows = append(rows, id(x, y, z+1))
					cols = append(cols, id(x, y, z))
				}
			}
		}
	}
	p, err := NewPattern(n, rows, cols)
	if err != nil {
		panic(err) // unreachable: stencil entries are in range by construction
	}
	return p, nil
}

// Band returns a banded pattern with the given half-bandwidth. It errors
// on a non-positive order or a negative bandwidth.
func Band(n, bw int) (*Pattern, error) {
	if _, err := checkDims("Band", n); err != nil {
		return nil, err
	}
	if bw < 0 {
		return nil, fmt.Errorf("sparse: Band: negative bandwidth %d", bw)
	}
	var rows, cols []int
	for j := 0; j < n; j++ {
		for i := j + 1; i <= j+bw && i < n; i++ {
			rows = append(rows, i)
			cols = append(cols, j)
		}
	}
	p, err := NewPattern(n, rows, cols)
	if err != nil {
		panic(err) // unreachable: band entries are in range by construction
	}
	return p, nil
}

// RandomSymmetric returns a connected random symmetric pattern with n
// vertices and roughly avgDeg off-diagonal entries per row: a random
// spanning tree plus uniform random edges. It errors on a non-positive
// order or a negative degree.
func RandomSymmetric(n, avgDeg int, rng *rand.Rand) (*Pattern, error) {
	if _, err := checkDims("RandomSymmetric", n); err != nil {
		return nil, err
	}
	if avgDeg < 0 {
		return nil, fmt.Errorf("sparse: RandomSymmetric: negative degree %d", avgDeg)
	}
	var rows, cols []int
	// Random spanning tree for connectivity.
	for v := 1; v < n; v++ {
		u := rng.Intn(v)
		rows = append(rows, v)
		cols = append(cols, u)
	}
	extra := n * (avgDeg - 2) / 2
	for k := 0; k < extra; k++ {
		i := rng.Intn(n)
		j := rng.Intn(n)
		if i == j {
			continue
		}
		rows = append(rows, i)
		cols = append(cols, j)
	}
	p, err := NewPattern(n, rows, cols)
	if err != nil {
		panic(err) // unreachable: all entries are drawn in range
	}
	return p, nil
}

// Perturb returns a copy of p with extra random symmetric entries added
// (about extra of them), modelling the irregular couplings that real
// application matrices add on top of a regular stencil.
func Perturb(p *Pattern, extra int, rng *rand.Rand) *Pattern {
	var rows, cols []int
	for j, l := range p.Lower {
		for _, i := range l {
			rows = append(rows, i)
			cols = append(cols, j)
		}
	}
	for k := 0; k < extra; k++ {
		i := rng.Intn(p.N)
		j := rng.Intn(p.N)
		if i == j {
			continue
		}
		rows = append(rows, i)
		cols = append(cols, j)
	}
	q, err := NewPattern(p.N, rows, cols)
	if err != nil {
		panic(err) // unreachable: all entries are in range
	}
	return q
}

// NestedDissection2D returns a fill-reducing permutation (old → new) for
// the nx × ny grid by geometric recursive bisection: separators are
// numbered last, recursively. Leaf blocks of at most leafSize vertices are
// numbered in natural order.
func NestedDissection2D(nx, ny, leafSize int) []int {
	perm := make([]int, nx*ny)
	next := 0
	id := func(x, y int) int { return y*nx + x }
	var rec func(x0, x1, y0, y1 int)
	rec = func(x0, x1, y0, y1 int) {
		w, h := x1-x0, y1-y0
		if w*h <= leafSize || (w <= 2 && h <= 2) {
			for y := y0; y < y1; y++ {
				for x := x0; x < x1; x++ {
					perm[id(x, y)] = next
					next++
				}
			}
			return
		}
		if w >= h {
			mid := (x0 + x1) / 2
			rec(x0, mid, y0, y1)
			rec(mid+1, x1, y0, y1)
			for y := y0; y < y1; y++ {
				perm[id(mid, y)] = next
				next++
			}
		} else {
			mid := (y0 + y1) / 2
			rec(x0, x1, y0, mid)
			rec(x0, x1, mid+1, y1)
			for x := x0; x < x1; x++ {
				perm[id(x, mid)] = next
				next++
			}
		}
	}
	rec(0, nx, 0, ny)
	return perm
}

// NestedDissection3D is the 3-D analogue of NestedDissection2D for an
// nx × ny × nz grid: the largest dimension is bisected by a plane
// separator, numbered last, recursively.
func NestedDissection3D(nx, ny, nz, leafSize int) []int {
	perm := make([]int, nx*ny*nz)
	next := 0
	id := func(x, y, z int) int { return (z*ny+y)*nx + x }
	var rec func(x0, x1, y0, y1, z0, z1 int)
	rec = func(x0, x1, y0, y1, z0, z1 int) {
		w, h, d := x1-x0, y1-y0, z1-z0
		if w*h*d <= leafSize || (w <= 2 && h <= 2 && d <= 2) {
			for z := z0; z < z1; z++ {
				for y := y0; y < y1; y++ {
					for x := x0; x < x1; x++ {
						perm[id(x, y, z)] = next
						next++
					}
				}
			}
			return
		}
		switch {
		case w >= h && w >= d:
			mid := (x0 + x1) / 2
			rec(x0, mid, y0, y1, z0, z1)
			rec(mid+1, x1, y0, y1, z0, z1)
			for z := z0; z < z1; z++ {
				for y := y0; y < y1; y++ {
					perm[id(mid, y, z)] = next
					next++
				}
			}
		case h >= w && h >= d:
			mid := (y0 + y1) / 2
			rec(x0, x1, y0, mid, z0, z1)
			rec(x0, x1, mid+1, y1, z0, z1)
			for z := z0; z < z1; z++ {
				for x := x0; x < x1; x++ {
					perm[id(x, mid, z)] = next
					next++
				}
			}
		default:
			mid := (z0 + z1) / 2
			rec(x0, x1, y0, y1, z0, mid)
			rec(x0, x1, y0, y1, mid+1, z1)
			for y := y0; y < y1; y++ {
				for x := x0; x < x1; x++ {
					perm[id(x, y, mid)] = next
					next++
				}
			}
		}
	}
	rec(0, nx, 0, ny, 0, nz)
	return perm
}
