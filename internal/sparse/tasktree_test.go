package sparse

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/tree"
)

// TestTaskTreeMatchesManualPipeline pins TaskTree to the composition it
// abbreviates: permute, etree, column counts, conversion.
func TestTaskTreeMatchesManualPipeline(t *testing.T) {
	p := mustGrid3D(3, 3, 3)
	perm := NestedDissection3D(3, 3, 3, 2)
	got, err := TaskTree(p, perm)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := p.Permute(perm)
	if err != nil {
		t.Fatal(err)
	}
	parent := Etree(pp)
	counts := ColCounts(pp, parent)
	want, err := EtreeToTaskTree(parent, counts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Parents(), want.Parents()) || !reflect.DeepEqual(got.Weights(), want.Weights()) {
		t.Fatal("TaskTree diverges from the manual pipeline")
	}
}

func TestTaskTreeRandomPatterns(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(12)
		p := mustRandomSymmetric(n, 2+rng.Intn(3), rng)
		tr, err := TaskTree(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Connected pattern => no virtual root; either way the task tree
		// is a valid tree whose postorder simulates.
		if tr.N() != n && tr.N() != n+1 {
			t.Fatalf("trial %d: %d columns became %d tasks", trial, n, tr.N())
		}
		if err := tree.Validate(tr, tr.NaturalPostorder()); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := 0; i < tr.N(); i++ {
			if tr.Weight(i) < 1 {
				t.Fatalf("trial %d: node %d has weight %d (column counts are >= 1)", trial, i, tr.Weight(i))
			}
		}
	}
}

func TestTaskTreeDeterministic(t *testing.T) {
	a, err := TaskTree(mustRandomSymmetric(15, 3, rand.New(rand.NewSource(6))), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TaskTree(mustRandomSymmetric(15, 3, rand.New(rand.NewSource(6))), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Parents(), b.Parents()) || !reflect.DeepEqual(a.Weights(), b.Weights()) {
		t.Fatal("same seed produced different task trees")
	}
}

func TestTaskTreeBadPerm(t *testing.T) {
	p := mustBand(6, 1)
	if _, err := TaskTree(p, []int{0, 1}); err == nil {
		t.Fatal("short permutation accepted")
	}
}
