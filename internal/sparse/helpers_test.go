package sparse

import "math/rand"

// The must* wrappers keep the table-driven tests terse now that the
// pattern generators return errors for hostile dimensions; test inputs
// are valid by construction, so a failure here is a test bug.

func mustGrid2D(nx, ny int) *Pattern {
	p, err := Grid2D(nx, ny)
	if err != nil {
		panic(err)
	}
	return p
}

func mustGrid3D(nx, ny, nz int) *Pattern {
	p, err := Grid3D(nx, ny, nz)
	if err != nil {
		panic(err)
	}
	return p
}

func mustBand(n, bw int) *Pattern {
	p, err := Band(n, bw)
	if err != nil {
		panic(err)
	}
	return p
}

func mustRandomSymmetric(n, avgDeg int, rng *rand.Rand) *Pattern {
	p, err := RandomSymmetric(n, avgDeg, rng)
	if err != nil {
		panic(err)
	}
	return p
}
