package sparse

import (
	"math/rand"
	"testing"
)

func TestNestedDissection3DIsPermutation(t *testing.T) {
	for _, g := range []struct{ nx, ny, nz, leaf int }{
		{4, 4, 4, 8}, {6, 5, 4, 4}, {2, 2, 2, 1}, {8, 3, 5, 16},
	} {
		perm := NestedDissection3D(g.nx, g.ny, g.nz, g.leaf)
		n := g.nx * g.ny * g.nz
		if len(perm) != n {
			t.Fatalf("%+v: length %d", g, len(perm))
		}
		seen := make([]bool, n)
		for _, v := range perm {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("%+v: not a permutation", g)
			}
			seen[v] = true
		}
	}
}

func TestNestedDissection3DReducesFill(t *testing.T) {
	nx := 8
	p := mustGrid3D(nx, nx, nx)
	natFill := sum(ColCounts(p, Etree(p)))
	perm := NestedDissection3D(nx, nx, nx, 8)
	pp, err := p.Permute(perm)
	if err != nil {
		t.Fatal(err)
	}
	ndFill := sum(ColCounts(pp, Etree(pp)))
	if ndFill >= natFill {
		t.Fatalf("3-D nested dissection fill %d not below natural %d", ndFill, natFill)
	}
}

func TestNestedDissection3DBushierTree(t *testing.T) {
	// The ND assembly tree must have many leaves (natural ordering
	// yields a near-chain).
	nx := 6
	p := mustGrid3D(nx, nx, nx)
	perm := NestedDissection3D(nx, nx, nx, 8)
	pp, err := p.Permute(perm)
	if err != nil {
		t.Fatal(err)
	}
	nat, err := EliminationTaskTree(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	nd, err := EliminationTaskTree(pp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(nd.Leaves()) <= len(nat.Leaves()) {
		t.Fatalf("ND leaves %d not above natural %d", len(nd.Leaves()), len(nat.Leaves()))
	}
}

func TestPerturb(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := mustGrid2D(10, 10)
	q := Perturb(p, 30, rng)
	if q.N != p.N {
		t.Fatal("size changed")
	}
	if q.NNZ() <= p.NNZ() {
		t.Fatalf("no entries added: %d vs %d", q.NNZ(), p.NNZ())
	}
	// The original entries are preserved.
	for j := range p.Lower {
		have := map[int]bool{}
		for _, i := range q.Lower[j] {
			have[i] = true
		}
		for _, i := range p.Lower[j] {
			if !have[i] {
				t.Fatalf("entry (%d,%d) lost", i, j)
			}
		}
	}
}
