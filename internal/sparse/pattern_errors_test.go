package sparse

import (
	"math"
	"math/rand"
	"testing"
)

// TestGeneratorsRejectHostileDims pins that the pattern generators return
// errors — not panics or slice faults — for non-positive and overflowing
// sizes.
func TestGeneratorsRejectHostileDims(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		name string
		err  func() error
	}{
		{"Grid2D zero", func() error { _, err := Grid2D(0, 5); return err }},
		{"Grid2D negative", func() error { _, err := Grid2D(4, -1); return err }},
		{"Grid2D overflow", func() error { _, err := Grid2D(math.MaxInt/2, 3); return err }},
		{"Grid3D negative", func() error { _, err := Grid3D(-1, 2, 2); return err }},
		{"Grid3D overflow", func() error { _, err := Grid3D(math.MaxInt/2, 2, 2); return err }},
		{"Band zero order", func() error { _, err := Band(0, 1); return err }},
		{"Band negative bw", func() error { _, err := Band(5, -1); return err }},
		{"RandomSymmetric zero", func() error { _, err := RandomSymmetric(0, 3, rng); return err }},
		{"RandomSymmetric negative deg", func() error { _, err := RandomSymmetric(5, -1, rng); return err }},
	}
	for _, tc := range cases {
		if tc.err() == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
	}
}
