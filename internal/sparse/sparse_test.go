package sparse

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/tree"
)

func TestNewPatternValidation(t *testing.T) {
	if _, err := NewPattern(3, []int{0}, []int{0, 1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NewPattern(3, []int{5}, []int{0}); err == nil {
		t.Error("out of range accepted")
	}
	p, err := NewPattern(3, []int{0, 2, 2, 1, 1}, []int{0, 1, 1, 2, 0})
	if err != nil {
		t.Fatal(err)
	}
	// Diagonal dropped, duplicates and upper-triangle entries merged.
	if !reflect.DeepEqual(p.Lower[0], []int{1}) || !reflect.DeepEqual(p.Lower[1], []int{2}) {
		t.Fatalf("Lower=%v", p.Lower)
	}
	if p.NNZ() != 2 {
		t.Fatalf("NNZ=%d", p.NNZ())
	}
}

func TestGrid2DShape(t *testing.T) {
	p := mustGrid2D(3, 2) // 6 vertices, edges: 2 per row * 2 rows + 3 vertical = 7
	if p.N != 6 {
		t.Fatalf("N=%d", p.N)
	}
	if p.NNZ() != 7 {
		t.Fatalf("NNZ=%d want 7", p.NNZ())
	}
}

func TestGrid3DShape(t *testing.T) {
	p := mustGrid3D(2, 2, 2)
	if p.N != 8 || p.NNZ() != 12 {
		t.Fatalf("N=%d NNZ=%d want 8/12", p.N, p.NNZ())
	}
}

func TestBandShape(t *testing.T) {
	p := mustBand(5, 2)
	// Column j has min(2, 4-j) subdiagonal entries: 2+2+2+1+0 = 7.
	if p.NNZ() != 7 {
		t.Fatalf("NNZ=%d", p.NNZ())
	}
}

func TestPermute(t *testing.T) {
	p := mustGrid2D(2, 2)
	perm := []int{3, 2, 1, 0}
	q, err := p.Permute(perm)
	if err != nil {
		t.Fatal(err)
	}
	if q.NNZ() != p.NNZ() {
		t.Fatalf("NNZ changed: %d vs %d", q.NNZ(), p.NNZ())
	}
	if _, err := p.Permute([]int{0, 0, 1, 2}); err == nil {
		t.Error("non-permutation accepted")
	}
	if _, err := p.Permute([]int{0}); err == nil {
		t.Error("short permutation accepted")
	}
}

func TestEtreeChainForBand1(t *testing.T) {
	// Tridiagonal matrix: elimination tree is the chain j -> j+1.
	p := mustBand(6, 1)
	parent := Etree(p)
	for j := 0; j < 5; j++ {
		if parent[j] != j+1 {
			t.Fatalf("parent[%d]=%d", j, parent[j])
		}
	}
	if parent[5] != -1 {
		t.Fatalf("root parent %d", parent[5])
	}
}

func TestEtreeArrowhead(t *testing.T) {
	// Arrowhead: last row/column dense. Every column's parent is n-1.
	n := 5
	var rows, cols []int
	for j := 0; j < n-1; j++ {
		rows = append(rows, n-1)
		cols = append(cols, j)
	}
	p, err := NewPattern(n, rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	parent := Etree(p)
	for j := 0; j < n-1; j++ {
		if parent[j] != n-1 {
			t.Fatalf("parent[%d]=%d", j, parent[j])
		}
	}
}

func TestEtreeForestOnDisconnected(t *testing.T) {
	p, err := NewPattern(4, []int{1, 3}, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	parent := Etree(p)
	roots := 0
	for _, q := range parent {
		if q == -1 {
			roots++
		}
	}
	if roots != 2 {
		t.Fatalf("roots=%d want 2", roots)
	}
}

func TestEtreePostorderInvariants(t *testing.T) {
	p := mustGrid2D(5, 4)
	parent := Etree(p)
	post := EtreePostorder(parent)
	if len(post) != p.N {
		t.Fatalf("postorder length %d", len(post))
	}
	pos := make([]int, p.N)
	for i, v := range post {
		pos[v] = i
	}
	for j, q := range parent {
		if q != -1 && pos[j] >= pos[q] {
			t.Fatalf("column %d after its parent %d", j, q)
		}
	}
}

func TestColCountsAgainstDenseReference(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	pats := []*Pattern{
		mustGrid2D(4, 4),
		mustGrid3D(2, 3, 2),
		mustBand(10, 3),
		mustRandomSymmetric(25, 4, rng),
	}
	for pi, p := range pats {
		parent := Etree(p)
		fast := ColCounts(p, parent)
		slow := denseColCounts(p)
		if !reflect.DeepEqual(fast, slow) {
			t.Fatalf("pattern %d: ColCounts mismatch\nfast=%v\nslow=%v", pi, fast, slow)
		}
	}
}

func TestAmalgamateFundamental(t *testing.T) {
	// Tridiagonal: counts are 2,2,...,2,1; each column's count equals
	// the next minus... colCount[j]=2 for j<n-1, 1 for the root. A
	// chain of equal counts does NOT merge (2 ≠ 1+1 only at the last
	// pair): for j and child c: want = colCount[j] + size; with size 1
	// and colCount[c]=2: j's supernode merges iff colCount[j]+1 == 2,
	// i.e. colCount[j] == 1 — only the root. So supernodes are
	// {0},...,{n-3},{n-2, n-1}.
	p := mustBand(5, 1)
	parent := Etree(p)
	post := EtreePostorder(parent)
	counts := ColCounts(p, parent)
	sns := Amalgamate(parent, post, counts, 0)
	if len(sns) != 4 {
		t.Fatalf("supernodes=%d want 4 (%v)", len(sns), sns)
	}
	last := sns[len(sns)-1]
	if len(last.Cols) != 2 || last.Parent != -1 {
		t.Fatalf("last supernode %+v", last)
	}
	// Every column appears exactly once.
	seen := map[int]bool{}
	for _, sn := range sns {
		for _, c := range sn.Cols {
			if seen[c] {
				t.Fatalf("column %d in two supernodes", c)
			}
			seen[c] = true
		}
	}
	if len(seen) != 5 {
		t.Fatalf("columns covered: %d", len(seen))
	}
}

func TestAssemblyTreeWeightsPositive(t *testing.T) {
	p := mustGrid2D(6, 6)
	tt, err := EliminationTaskTree(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tt.N(); i++ {
		if tt.Weight(i) < 1 {
			t.Fatalf("weight %d at node %d", tt.Weight(i), i)
		}
	}
	if tt.N() < 6 {
		t.Fatalf("suspiciously small assembly tree: %d", tt.N())
	}
}

func TestAssemblyTreeForestJoined(t *testing.T) {
	p, err := NewPattern(4, []int{1, 3}, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	tt, err := EliminationTaskTree(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tt.Parent(tt.Root()) != tree.None {
		t.Fatal("root parent")
	}
	// Forest of two chains joined under a virtual root.
	if tt.NumChildren(tt.Root()) != 2 {
		t.Fatalf("virtual root has %d children", tt.NumChildren(tt.Root()))
	}
}

func TestEtreeToTaskTreeSingleRoot(t *testing.T) {
	parent := []int{1, 2, -1}
	tt, err := EtreeToTaskTree(parent, []int64{3, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if tt.N() != 3 || tt.Root() != 2 {
		t.Fatalf("n=%d root=%d", tt.N(), tt.Root())
	}
}

func TestNestedDissectionReducesFill(t *testing.T) {
	nx := 16
	p := mustGrid2D(nx, nx)
	natParent := Etree(p)
	natFill := sum(ColCounts(p, natParent))
	perm := NestedDissection2D(nx, nx, 8)
	pp, err := p.Permute(perm)
	if err != nil {
		t.Fatal(err)
	}
	ndParent := Etree(pp)
	ndFill := sum(ColCounts(pp, ndParent))
	if ndFill >= natFill {
		t.Fatalf("nested dissection fill %d not below natural %d", ndFill, natFill)
	}
}

func sum(xs []int64) int64 {
	var s int64
	for _, x := range xs {
		s += x
	}
	return s
}

func TestRandomSymmetricConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	p := mustRandomSymmetric(50, 4, rng)
	parent := Etree(p)
	roots := 0
	for _, q := range parent {
		if q == -1 {
			roots++
		}
	}
	// A connected graph yields a single elimination tree.
	if roots != 1 {
		t.Fatalf("roots=%d want 1", roots)
	}
}

func TestMatrixMarketRoundTrip(t *testing.T) {
	p := mustGrid2D(4, 3)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, p); err != nil {
		t.Fatal(err)
	}
	q, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.Lower, q.Lower) {
		t.Fatal("round trip differs")
	}
}

func TestMatrixMarketParsing(t *testing.T) {
	good := `%%MatrixMarket matrix coordinate real symmetric
% a comment
3 3 3
2 1 1.5
3 2 -2.0
3 3 7
`
	p, err := ReadMatrixMarket(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if p.N != 3 || p.NNZ() != 2 { // diagonal entry dropped
		t.Fatalf("N=%d NNZ=%d", p.N, p.NNZ())
	}
	bads := []string{
		"",
		"%%MatrixMarket matrix array real general\n2 2\n",
		"%%MatrixMarket matrix coordinate real symmetric\n2 3 1\n2 1\n",
		"%%MatrixMarket matrix coordinate real symmetric\n2 2 2\n2 1\n",
		"%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n9 1\n",
		"not a header\n1 1 0\n",
		"%%MatrixMarket matrix coordinate quaternion symmetric\n1 1 0\n",
		"%%MatrixMarket matrix coordinate real funky\n1 1 0\n",
	}
	for i, bad := range bads {
		if _, err := ReadMatrixMarket(strings.NewReader(bad)); err == nil {
			t.Errorf("bad input %d accepted", i)
		}
	}
	// Pattern + general with both triangles present.
	gen := "%%MatrixMarket matrix coordinate pattern general\n3 3 2\n1 2\n2 1\n"
	p2, err := ReadMatrixMarket(strings.NewReader(gen))
	if err != nil {
		t.Fatal(err)
	}
	if p2.NNZ() != 1 {
		t.Fatalf("NNZ=%d want 1 after symmetrization", p2.NNZ())
	}
}
