// Package sparse provides the sparse-matrix substrate backing the paper's
// TREES dataset: symmetric sparse-matrix patterns, symbolic Cholesky
// analysis (elimination tree, factor column counts, fundamental-supernode
// amalgamation) and conversion of the resulting assembly trees into task
// trees whose node weights are multifrontal contribution-block sizes.
//
// The paper evaluates on 329 elimination trees built from matrices of the
// University of Florida collection. That collection is not redistributable
// here, so the package generates structurally comparable matrices (2-D and
// 3-D grid Laplacians under natural and nested-dissection orderings, and
// random symmetric patterns) spanning the same tree-size range; a Matrix
// Market reader is included so real matrices can be substituted when
// available. See DESIGN.md for the substitution rationale.
package sparse
