package sparse

import (
	"fmt"

	"repro/internal/tree"
)

// Supernode is a maximal run of consecutive (postordered) columns sharing
// one frontal matrix in the multifrontal method.
type Supernode struct {
	// Cols lists the member columns in elimination order.
	Cols []int
	// FrontRows is the order of the supernode's frontal matrix: the
	// column count of its first column.
	FrontRows int64
	// CBRows = FrontRows − len(Cols): the order of the contribution
	// block passed to the parent front.
	CBRows int64
	// Parent is the parent supernode index, or -1 for a root.
	Parent int
}

// Amalgamate partitions the postordered columns into fundamental
// supernodes: column j joins its etree child c (the previously scanned
// column) when c is j's only... — precisely, when j immediately follows c
// in postorder, parent[c] == j, and colCount[c] == colCount[j] + 1 (the
// child's factor structure is the parent's plus itself). relax ≥ 0
// additionally admits near-fundamental merges where the column counts
// differ by at most relax (a standard amalgamation knob that coarsens the
// assembly tree the way multifrontal codes do).
func Amalgamate(parent []int, post []int, colCount []int64, relax int64) []Supernode {
	n := len(parent)
	if len(post) != n || len(colCount) != n {
		panic("sparse: inconsistent amalgamation inputs")
	}
	super := make([]int, n) // column -> supernode id
	var sns []Supernode
	for idx, j := range post {
		merged := false
		if idx > 0 {
			c := post[idx-1]
			if parent[c] == j {
				sn := &sns[super[c]]
				lastCols := int64(len(sn.Cols))
				// Fundamental: the child's count shrinks by exactly
				// one per elimination within the supernode.
				want := colCount[j] + lastCols
				have := sn.FrontRows
				if have >= want && have-want <= relax {
					sn.Cols = append(sn.Cols, j)
					super[j] = super[c]
					merged = true
				}
			}
		}
		if !merged {
			super[j] = len(sns)
			sns = append(sns, Supernode{Cols: []int{j}, FrontRows: colCount[j]})
		}
	}
	for s := range sns {
		sn := &sns[s]
		nc := int64(len(sn.Cols))
		sn.CBRows = sn.FrontRows - nc
		if sn.CBRows < 0 {
			sn.CBRows = 0
		}
		last := sn.Cols[len(sn.Cols)-1]
		if p := parent[last]; p == -1 {
			sn.Parent = -1
		} else {
			sn.Parent = super[p]
		}
	}
	return sns
}

// AssemblyTree converts a supernode partition into a task tree for the
// MinIO model. The output data of a supernode is its contribution block,
// stored as a symmetric matrix of order CBRows: weight
// CBRows·(CBRows+1)/2 + 1 (the +1 keeps root outputs and fully-dense
// fronts representable as positive sizes). Forests are joined under a
// virtual unit root.
func AssemblyTree(sns []Supernode) (*tree.Tree, error) {
	n := len(sns)
	if n == 0 {
		return nil, fmt.Errorf("sparse: empty supernode partition")
	}
	roots := 0
	for _, sn := range sns {
		if sn.Parent == -1 {
			roots++
		}
	}
	total := n
	virtual := -1
	if roots > 1 {
		virtual = n
		total = n + 1
	}
	par := make([]int, total)
	w := make([]int64, total)
	for s, sn := range sns {
		w[s] = sn.CBRows*(sn.CBRows+1)/2 + 1
		switch {
		case sn.Parent == -1 && virtual == -1:
			par[s] = tree.None
		case sn.Parent == -1:
			par[s] = virtual
		default:
			par[s] = sn.Parent
		}
	}
	if virtual != -1 {
		par[virtual] = tree.None
		w[virtual] = 1
	}
	return tree.New(par, w)
}

// EliminationTaskTree is the full TREES pipeline for one matrix: etree,
// postorder, column counts, amalgamation with the given relaxation, and
// conversion to a task tree.
func EliminationTaskTree(p *Pattern, relax int64) (*tree.Tree, error) {
	parent := Etree(p)
	post := EtreePostorder(parent)
	counts := ColCounts(p, parent)
	sns := Amalgamate(parent, post, counts, relax)
	return AssemblyTree(sns)
}
