package sparse

import (
	"math/rand"
	"testing"
)

func isPermutation(perm []int, n int) bool {
	if len(perm) != n {
		return false
	}
	seen := make([]bool, n)
	for _, v := range perm {
		if v < 0 || v >= n || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

func TestMinimumDegreeIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, p := range []*Pattern{
		mustGrid2D(7, 9),
		mustGrid3D(3, 4, 5),
		mustBand(30, 3),
		mustRandomSymmetric(60, 5, rng),
	} {
		perm := MinimumDegree(p)
		if !isPermutation(perm, p.N) {
			t.Fatalf("not a permutation for n=%d", p.N)
		}
	}
}

func TestMinimumDegreeReducesFill(t *testing.T) {
	for _, p := range []*Pattern{
		mustGrid2D(14, 14),
		mustRandomSymmetric(120, 4, rand.New(rand.NewSource(3))),
	} {
		natFill := sum(ColCounts(p, Etree(p)))
		perm := MinimumDegree(p)
		pp, err := p.Permute(perm)
		if err != nil {
			t.Fatal(err)
		}
		mdFill := sum(ColCounts(pp, Etree(pp)))
		if mdFill >= natFill {
			t.Fatalf("minimum degree fill %d not below natural %d", mdFill, natFill)
		}
	}
}

func TestMinimumDegreeChainIsOptimalOnPath(t *testing.T) {
	// On a path graph, minimum degree eliminates endpoints first and
	// produces zero fill: every factor column has exactly 2 nonzeros
	// (except the last with 1).
	p := mustBand(20, 1)
	perm := MinimumDegree(p)
	pp, err := p.Permute(perm)
	if err != nil {
		t.Fatal(err)
	}
	if fill := sum(ColCounts(pp, Etree(pp))); fill != 2*20-1 {
		t.Fatalf("fill %d, want %d (no fill-in on a path)", fill, 2*20-1)
	}
}

func TestReverseCuthillMcKeeIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, p := range []*Pattern{
		mustGrid2D(8, 6),
		mustRandomSymmetric(50, 4, rng),
		// Disconnected pattern.
		mustPattern(t, 6, []int{1, 3, 5}, []int{0, 2, 4}),
	} {
		perm := ReverseCuthillMcKee(p)
		if !isPermutation(perm, p.N) {
			t.Fatalf("not a permutation for n=%d", p.N)
		}
	}
}

func mustPattern(t *testing.T, n int, rows, cols []int) *Pattern {
	t.Helper()
	p, err := NewPattern(n, rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestReverseCuthillMcKeeReducesBandwidth(t *testing.T) {
	// A random symmetric matrix has large bandwidth; RCM should shrink
	// it substantially.
	p := mustRandomSymmetric(80, 4, rand.New(rand.NewSource(5)))
	bw := func(q *Pattern) int {
		max := 0
		for j, l := range q.Lower {
			for _, i := range l {
				if d := i - j; d > max {
					max = d
				}
			}
		}
		return max
	}
	perm := ReverseCuthillMcKee(p)
	pp, err := p.Permute(perm)
	if err != nil {
		t.Fatal(err)
	}
	if got, was := bw(pp), bw(p); got >= was {
		t.Fatalf("RCM bandwidth %d not below original %d", got, was)
	}
}
