package sparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadMatrixMarket parses a Matrix Market "coordinate" file and returns its
// symmetrized pattern. Supported qualifiers: real/integer/pattern/complex
// values and general/symmetric/skew-symmetric/hermitian symmetry (values
// are discarded; general matrices are symmetrized as A+Aᵀ, which is what
// elimination-tree analysis of unsymmetric matrices uses). This lets the
// TREES pipeline run on actual University of Florida collection files when
// they are available.
func ReadMatrixMarket(r io.Reader) (*Pattern, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	if !sc.Scan() {
		return nil, fmt.Errorf("sparse: empty MatrixMarket input")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 5 || header[0] != "%%matrixmarket" || header[1] != "matrix" {
		return nil, fmt.Errorf("sparse: bad MatrixMarket header %q", sc.Text())
	}
	if header[2] != "coordinate" {
		return nil, fmt.Errorf("sparse: only coordinate format supported, got %q", header[2])
	}
	valueType := header[3]
	switch valueType {
	case "real", "integer", "pattern", "complex":
	default:
		return nil, fmt.Errorf("sparse: unsupported value type %q", valueType)
	}
	switch header[4] {
	case "general", "symmetric", "skew-symmetric", "hermitian":
	default:
		return nil, fmt.Errorf("sparse: unsupported symmetry %q", header[4])
	}
	// Skip comments, read the size line.
	var sizeLine string
	for sc.Scan() {
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "%") {
			continue
		}
		sizeLine = s
		break
	}
	if sizeLine == "" {
		return nil, fmt.Errorf("sparse: missing size line")
	}
	dims := strings.Fields(sizeLine)
	if len(dims) != 3 {
		return nil, fmt.Errorf("sparse: bad size line %q", sizeLine)
	}
	nr, err1 := strconv.Atoi(dims[0])
	nc, err2 := strconv.Atoi(dims[1])
	nnz, err3 := strconv.Atoi(dims[2])
	if err1 != nil || err2 != nil || err3 != nil {
		return nil, fmt.Errorf("sparse: bad size line %q", sizeLine)
	}
	if nr != nc {
		return nil, fmt.Errorf("sparse: matrix is %dx%d; elimination analysis needs a square matrix", nr, nc)
	}
	rows := make([]int, 0, nnz)
	cols := make([]int, 0, nnz)
	for k := 0; k < nnz; k++ {
		var s string
		for sc.Scan() {
			s = strings.TrimSpace(sc.Text())
			if s != "" && !strings.HasPrefix(s, "%") {
				break
			}
			s = ""
		}
		if s == "" {
			return nil, fmt.Errorf("sparse: expected %d entries, got %d", nnz, k)
		}
		fields := strings.Fields(s)
		if len(fields) < 2 {
			return nil, fmt.Errorf("sparse: bad entry line %q", s)
		}
		i, err1 := strconv.Atoi(fields[0])
		j, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("sparse: bad entry line %q", s)
		}
		if i < 1 || i > nr || j < 1 || j > nc {
			return nil, fmt.Errorf("sparse: entry (%d,%d) out of range", i, j)
		}
		rows = append(rows, i-1)
		cols = append(cols, j-1)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return NewPattern(nr, rows, cols)
}

// WriteMatrixMarket writes the pattern as a symmetric coordinate pattern
// file (strict lower triangle plus the full diagonal omitted, as patterns
// here carry an implicit diagonal).
func WriteMatrixMarket(w io.Writer, p *Pattern) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "%%MatrixMarket matrix coordinate pattern symmetric")
	fmt.Fprintf(bw, "%d %d %d\n", p.N, p.N, p.NNZ())
	for j, l := range p.Lower {
		for _, i := range l {
			fmt.Fprintf(bw, "%d %d\n", i+1, j+1)
		}
	}
	return bw.Flush()
}
