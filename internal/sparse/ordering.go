package sparse

import (
	"container/heap"
	"sort"
)

// MinimumDegree computes a fill-reducing permutation (old → new) by the
// classical minimum-degree algorithm on the elimination graph: repeatedly
// eliminate a vertex of minimum current degree and connect its neighbours
// into a clique. This is the plain (non-approximate, non-supervariable)
// variant — quadratic in the worst case but exact, and entirely adequate
// for the matrix sizes of the TREES dataset; it is what makes arbitrary
// imported matrices (Matrix Market) produce sensible assembly trees.
func MinimumDegree(p *Pattern) []int {
	n := p.N
	adj := make([]map[int]struct{}, n)
	for i := 0; i < n; i++ {
		adj[i] = make(map[int]struct{})
	}
	for j, l := range p.Lower {
		for _, i := range l {
			adj[i][j] = struct{}{}
			adj[j][i] = struct{}{}
		}
	}
	perm := make([]int, n)
	eliminated := make([]bool, n)
	h := &degHeap{}
	heap.Init(h)
	for v := 0; v < n; v++ {
		heap.Push(h, degEntry{v, len(adj[v])})
	}
	next := 0
	for h.Len() > 0 {
		e := heap.Pop(h).(degEntry)
		v := e.v
		if eliminated[v] || e.deg != len(adj[v]) {
			if !eliminated[v] {
				// Stale degree: re-push with the current value.
				heap.Push(h, degEntry{v, len(adj[v])})
			}
			continue
		}
		eliminated[v] = true
		perm[v] = next
		next++
		// Clique the neighbourhood.
		nbrs := make([]int, 0, len(adj[v]))
		for u := range adj[v] {
			nbrs = append(nbrs, u)
		}
		sort.Ints(nbrs) // deterministic update order
		for _, u := range nbrs {
			delete(adj[u], v)
		}
		for a := 0; a < len(nbrs); a++ {
			for b := a + 1; b < len(nbrs); b++ {
				adj[nbrs[a]][nbrs[b]] = struct{}{}
				adj[nbrs[b]][nbrs[a]] = struct{}{}
			}
		}
		for _, u := range nbrs {
			heap.Push(h, degEntry{u, len(adj[u])})
		}
		adj[v] = nil
	}
	return perm
}

type degEntry struct{ v, deg int }

type degHeap []degEntry

func (h degHeap) Len() int { return len(h) }
func (h degHeap) Less(i, j int) bool {
	if h[i].deg != h[j].deg {
		return h[i].deg < h[j].deg
	}
	return h[i].v < h[j].v
}
func (h degHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *degHeap) Push(x any)   { *h = append(*h, x.(degEntry)) }
func (h *degHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// ReverseCuthillMcKee computes a bandwidth-reducing permutation
// (old → new): a breadth-first numbering from a pseudo-peripheral vertex,
// neighbours by increasing degree, reversed. Useful as a contrasting
// ordering that produces deep, chain-like elimination trees.
func ReverseCuthillMcKee(p *Pattern) []int {
	n := p.N
	adj := make([][]int, n)
	for j, l := range p.Lower {
		for _, i := range l {
			adj[i] = append(adj[i], j)
			adj[j] = append(adj[j], i)
		}
	}
	deg := make([]int, n)
	for v := range adj {
		sort.Ints(adj[v])
		deg[v] = len(adj[v])
	}
	visited := make([]bool, n)
	var order []int
	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		// Pseudo-peripheral start: the farthest, lowest-degree vertex
		// of a BFS from the component's first vertex.
		s := farthestLowDegree(adj, deg, start)
		visited[s] = true
		queue := []int{s}
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			order = append(order, v)
			nbrs := append([]int(nil), adj[v]...)
			sort.Slice(nbrs, func(a, b int) bool {
				if deg[nbrs[a]] != deg[nbrs[b]] {
					return deg[nbrs[a]] < deg[nbrs[b]]
				}
				return nbrs[a] < nbrs[b]
			})
			for _, u := range nbrs {
				if !visited[u] {
					visited[u] = true
					queue = append(queue, u)
				}
			}
		}
	}
	perm := make([]int, n)
	for k, v := range order {
		perm[v] = n - 1 - k // reversal
	}
	return perm
}

func farthestLowDegree(adj [][]int, deg []int, start int) int {
	dist := map[int]int{start: 0}
	queue := []int{start}
	best, bestDist := start, 0
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		d := dist[v]
		if d > bestDist || (d == bestDist && deg[v] < deg[best]) {
			best, bestDist = v, d
		}
		for _, u := range adj[v] {
			if _, ok := dist[u]; !ok {
				dist[u] = d + 1
				queue = append(queue, u)
			}
		}
	}
	return best
}
