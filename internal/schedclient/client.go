// Package schedclient is the retrying consumer of the schedd serving API:
// it POSTs a scheduling request, spools the streamed schedule, and — on a
// mid-body disconnect, a truncation trailer, or a retryable status — trims
// the spool to its trusted prefix (tree.RepairSchedule semantics) and
// re-POSTs with the same idempotency key and resume_from set to the
// verified id count, so the server re-emits only the missing tail and the
// reassembled stream is byte-identical to an uninterrupted one. Backoff is
// exponential with jitter and honors Retry-After.
package schedclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/schedd"
	"repro/internal/tree"
)

// ErrAttemptsExhausted is returned when every allowed attempt failed
// retryably; the last attempt's error is attached to the message.
var ErrAttemptsExhausted = errors.New("schedclient: attempts exhausted")

// StatusError is a non-200 response from the daemon, terminal or
// retryable per RetryableStatus.
type StatusError struct {
	// Status is the HTTP status code; Body the (truncated) response text.
	Status int
	Body   string
}

// Error formats the status and the server's explanation.
func (e *StatusError) Error() string {
	return fmt.Sprintf("schedclient: server returned %d: %s", e.Status, e.Body)
}

// RetryableStatus reports whether a status is worth retrying: 429 (budget
// pressure, comes with Retry-After) and the 5xx family (overload, drain,
// contained faults). Everything else — 400, 404, 409, 413, 422 — states a
// property of the request itself, which no retry can change.
func RetryableStatus(status int) bool {
	return status == http.StatusTooManyRequests || status >= 500
}

// Config carries the client policy. Zero fields take the documented
// defaults; BaseURL is mandatory.
type Config struct {
	// BaseURL is the daemon's root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient is the transport; nil means http.DefaultClient.
	HTTPClient *http.Client
	// MaxAttempts bounds POSTs per Stream call (first try included); 0
	// means 8.
	MaxAttempts int
	// BaseBackoff seeds the exponential backoff (doubled per retry,
	// jittered to [d/2, d]); 0 means 50ms. MaxBackoff caps it; 0 means 2s.
	BaseBackoff, MaxBackoff time.Duration
	// MaxRetryAfter caps how long a server-sent Retry-After is honored
	// for; 0 means 30s.
	MaxRetryAfter time.Duration
	// Seed fixes the jitter/key randomness for reproducible runs; 0 means 1.
	Seed int64
	// Logger receives one line per retry; nil means discard (retries are
	// the expected path under chaos, not events worth default noise).
	Logger *slog.Logger
}

// withDefaults resolves the zero-value policy knobs.
func (c Config) withDefaults() Config {
	if c.HTTPClient == nil {
		c.HTTPClient = http.DefaultClient
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 8
	}
	if c.BaseBackoff == 0 {
		c.BaseBackoff = 50 * time.Millisecond
	}
	if c.MaxBackoff == 0 {
		c.MaxBackoff = 2 * time.Second
	}
	if c.MaxRetryAfter == 0 {
		c.MaxRetryAfter = 30 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Client is a retrying schedd consumer. Safe for concurrent use; one
// Client is meant to be shared by every requesting goroutine of a load
// driver.
type Client struct {
	cfg Config

	mu  sync.Mutex
	rng *rand.Rand
}

// New builds a Client over the given policy.
func New(cfg Config) *Client {
	cfg = cfg.withDefaults()
	return &Client{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Result is one successfully reassembled schedule stream.
type Result struct {
	// Stream is the complete stream bytes — id lines plus the end trailer,
	// byte-identical to an uninterrupted server emission. IDs is its id
	// count.
	Stream []byte
	IDs    int64
	// Attempts counts POSTs made; Retries those after the first; Resumes
	// those that carried a non-zero resume_from.
	Attempts, Retries, Resumes int
	// BytesDiscarded is the spooled bytes trimmed as untrusted across the
	// call (torn lines, truncation markers) — the direct cost of the
	// faults survived.
	BytesDiscarded int64
}

// Schedule parses the reassembled stream, demanding the completeness
// proof (tree.ReadScheduleStrict).
func (r *Result) Schedule() (tree.Schedule, error) {
	return tree.ReadScheduleStrict(bytes.NewReader(r.Stream))
}

// Stream runs one scheduling request to completion through retries and
// resumes. If req carries no IdempotencyKey one is generated, so every
// retry of this call binds to the same server-side journal entry; the
// caller-set ResumeFrom is ignored (the client owns the resume cursor).
// Terminal statuses surface as *StatusError; exhausted retries as
// ErrAttemptsExhausted.
func (c *Client) Stream(ctx context.Context, req schedd.Request) (*Result, error) {
	if req.IdempotencyKey == "" {
		req.IdempotencyKey = c.genKey()
	}
	res := &Result{}
	var spool []byte
	var verified int64
	var lastErr error
	for attempt := 1; ; attempt++ {
		res.Attempts++
		if attempt > 1 {
			res.Retries++
		}
		if verified > 0 {
			res.Resumes++
		}
		req.ResumeFrom = verified

		var retryAfter time.Duration
		done, err := c.try(ctx, &req, &spool, &verified, res, &retryAfter)
		if done {
			return res, nil
		}
		if err != nil {
			var se *StatusError
			if errors.As(err, &se) && !RetryableStatus(se.Status) {
				return nil, err
			}
			lastErr = err
		}
		if attempt >= c.cfg.MaxAttempts {
			return nil, fmt.Errorf("%w after %d attempts: %v", ErrAttemptsExhausted, res.Attempts, lastErr)
		}
		wait := c.backoff(attempt)
		if retryAfter > wait {
			wait = retryAfter
		}
		if c.cfg.Logger != nil {
			c.cfg.Logger.Info("schedclient: retrying",
				"attempt", attempt, "wait", wait, "verified_ids", verified,
				"err", fmt.Sprint(lastErr))
		}
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return nil, fmt.Errorf("schedclient: %w (last attempt: %v)", ctx.Err(), lastErr)
		}
	}
}

// try makes one POST and folds its outcome into the spool. done reports
// success (res holds the finished stream); otherwise err says what went
// wrong and retryAfter carries a server-requested wait, if any.
func (c *Client) try(ctx context.Context, req *schedd.Request, spool *[]byte, verified *int64, res *Result, retryAfter *time.Duration) (done bool, err error) {
	body, err := json.Marshal(req)
	if err != nil {
		return false, &StatusError{Status: http.StatusBadRequest, Body: err.Error()}
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.cfg.BaseURL+"/schedule", bytes.NewReader(body))
	if err != nil {
		return false, &StatusError{Status: http.StatusBadRequest, Body: err.Error()}
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.cfg.HTTPClient.Do(hreq)
	if err != nil {
		return false, fmt.Errorf("schedclient: transport: %w", err)
	}
	defer resp.Body.Close()

	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		se := &StatusError{Status: resp.StatusCode, Body: strings.TrimSpace(string(b))}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, perr := strconv.Atoi(ra); perr == nil && secs > 0 {
				d := time.Duration(secs) * time.Second
				if d > c.cfg.MaxRetryAfter {
					d = c.cfg.MaxRetryAfter
				}
				*retryAfter = d
			}
		}
		return false, se
	}

	// 200: spool the body. A read error here is a mid-body disconnect —
	// whatever arrived is kept, then trimmed to its trusted prefix below.
	data, rerr := io.ReadAll(resp.Body)
	*spool = append(*spool, data...)

	// Trim to the trusted prefix. Damage is expected input (that is the
	// point of the repair pass); only the repaired prefix advances the
	// resume cursor, so a lying server can cost work, never correctness.
	ids, safeOff, complete, _ := tree.RepairSchedule(bytes.NewReader(*spool))
	res.BytesDiscarded += int64(len(*spool)) - safeOff
	*spool = (*spool)[:safeOff]
	*verified = ids
	if complete {
		// The end trailer matched the id count: the reassembled spool IS
		// the uninterrupted stream, whatever this attempt's transport did
		// after sealing it.
		res.Stream = *spool
		res.IDs = ids
		return true, nil
	}
	switch {
	case rerr != nil:
		return false, fmt.Errorf("schedclient: reading stream: %w", rerr)
	case resp.Trailer.Get("X-Schedd-Error") != "":
		return false, fmt.Errorf("schedclient: server stream error: %s: %w",
			resp.Trailer.Get("X-Schedd-Error"), tree.ErrTruncatedSchedule)
	default:
		return false, fmt.Errorf("schedclient: stream ended without a trailer after %d ids: %w",
			ids, tree.ErrTruncatedSchedule)
	}
}

// backoff is the jittered exponential wait before retry number attempt+1:
// uniformly drawn from [d/2, d] for d = min(Base·2^(attempt-1), Max).
func (c *Client) backoff(attempt int) time.Duration {
	d := c.cfg.BaseBackoff << (attempt - 1)
	if d <= 0 || d > c.cfg.MaxBackoff {
		d = c.cfg.MaxBackoff
	}
	half := d / 2
	c.mu.Lock()
	j := time.Duration(c.rng.Int63n(int64(half) + 1))
	c.mu.Unlock()
	return half + j
}

// genKey mints a fresh idempotency key from the client's seeded rng.
func (c *Client) genKey() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return fmt.Sprintf("sc-%016x%016x", c.rng.Uint64(), c.rng.Uint64())
}
