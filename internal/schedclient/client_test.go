package schedclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/schedd"
	"repro/internal/tree"
)

// flakyServer emulates the schedd serving contract — WriteScheduleAt over
// a fixed schedule, honoring resume_from — while failing each attempt
// according to its plan: "429", "503", "409", "cut:N" (tear the
// connection after N body bytes), "trunc" (graceful truncation trailer
// mid-stream), "ok". Attempts beyond the plan serve cleanly.
type flakyServer struct {
	sched tree.Schedule
	plan  []string

	mu       sync.Mutex
	attempts int
	keys     []string
}

func (f *flakyServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	var req schedd.Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	f.mu.Lock()
	act := "ok"
	if f.attempts < len(f.plan) {
		act = f.plan[f.attempts]
	}
	f.attempts++
	f.keys = append(f.keys, req.IdempotencyKey)
	f.mu.Unlock()

	switch {
	case act == "429":
		w.Header().Set("Retry-After", "1")
		http.Error(w, "budget busy", http.StatusTooManyRequests)
	case act == "503":
		http.Error(w, "draining", http.StatusServiceUnavailable)
	case act == "409":
		http.Error(w, "key bound to a different request", http.StatusConflict)
	case strings.HasPrefix(act, "cut:"):
		n, _ := strconv.Atoi(strings.TrimPrefix(act, "cut:"))
		var buf bytes.Buffer
		_, _ = tree.WriteScheduleAt(&buf, req.ResumeFrom, f.sched.Emit)
		if n > buf.Len() {
			n = buf.Len() / 2
		}
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(buf.Bytes()[:n])
		panic(http.ErrAbortHandler) // mid-body connection tear
	case act == "trunc":
		w.Header().Set("Trailer", "X-Schedd-Error")
		w.WriteHeader(http.StatusOK)
		_, _ = tree.WriteScheduleAt(w, req.ResumeFrom, func(yield func(seg []int) bool) bool {
			yield(f.sched[:len(f.sched)/2])
			return false // graceful early stop: truncation trailer
		})
		w.Header().Set("X-Schedd-Error", "drained")
	default:
		w.WriteHeader(http.StatusOK)
		_, _ = tree.WriteScheduleAt(w, req.ResumeFrom, f.sched.Emit)
	}
}

// testSched is an arbitrary permutation: the client never interprets ids,
// so a synthetic schedule exercises the full repair/resume path.
func testSched(n int) tree.Schedule {
	s := make(tree.Schedule, n)
	for i := range s {
		s[i] = (i*7 + 3) % n
	}
	return s
}

// wantStream renders the uninterrupted emission of s.
func wantStream(t *testing.T, s tree.Schedule) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := tree.WriteSchedule(&buf, s.Emit); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// fastClient builds a client with test-speed backoff against srv.
func fastClient(srv *httptest.Server) *Client {
	return New(Config{
		BaseURL:       srv.URL,
		HTTPClient:    srv.Client(),
		BaseBackoff:   time.Millisecond,
		MaxBackoff:    5 * time.Millisecond,
		MaxRetryAfter: 5 * time.Millisecond,
		Seed:          7,
	})
}

// request is a minimal valid request body (the flaky server ignores the
// instance fields).
func request() schedd.Request {
	return schedd.Request{Tree: json.RawMessage(`{}`), M: 100}
}

// TestClientCleanPath: no faults, one attempt, byte-identical stream.
func TestClientCleanPath(t *testing.T) {
	sched := testSched(500)
	fs := &flakyServer{sched: sched}
	srv := httptest.NewServer(fs)
	defer srv.Close()

	res, err := fastClient(srv).Stream(context.Background(), request())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Stream, wantStream(t, sched)) {
		t.Fatal("stream diverges")
	}
	if res.Attempts != 1 || res.Retries != 0 || res.Resumes != 0 {
		t.Fatalf("counters = %+v", res)
	}
	if _, err := res.Schedule(); err != nil {
		t.Fatalf("strict parse: %v", err)
	}
}

// TestClientResumesAfterMidBodyCut: a torn connection mid-stream is
// repaired to the trusted prefix and resumed; the reassembled stream is
// byte-identical to the uninterrupted one, under one idempotency key.
func TestClientResumesAfterMidBodyCut(t *testing.T) {
	sched := testSched(5000)
	fs := &flakyServer{sched: sched, plan: []string{"cut:10001", "cut:17"}}
	srv := httptest.NewServer(fs)
	defer srv.Close()

	res, err := fastClient(srv).Stream(context.Background(), request())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Stream, wantStream(t, sched)) {
		t.Fatal("reassembled stream diverges from the uninterrupted one")
	}
	if res.Attempts != 3 || res.Retries != 2 || res.Resumes == 0 {
		t.Fatalf("counters = %+v", res)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for _, k := range fs.keys {
		if k == "" || k != fs.keys[0] {
			t.Fatalf("idempotency keys not stable across attempts: %q", fs.keys)
		}
	}
}

// TestClientResumesAfterTruncationTrailer: a gracefully truncated stream
// (drain) is recognized via its marker, trimmed, and resumed.
func TestClientResumesAfterTruncationTrailer(t *testing.T) {
	sched := testSched(3000)
	fs := &flakyServer{sched: sched, plan: []string{"trunc"}}
	srv := httptest.NewServer(fs)
	defer srv.Close()

	res, err := fastClient(srv).Stream(context.Background(), request())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Stream, wantStream(t, sched)) {
		t.Fatal("reassembled stream diverges")
	}
	if res.Resumes != 1 || res.BytesDiscarded == 0 {
		// The truncation marker line itself must be discarded.
		t.Fatalf("counters = %+v", res)
	}
}

// TestClientRetriesStatuses: 429 (honoring its capped Retry-After) and
// 503 are retried through to success.
func TestClientRetriesStatuses(t *testing.T) {
	sched := testSched(200)
	fs := &flakyServer{sched: sched, plan: []string{"429", "503"}}
	srv := httptest.NewServer(fs)
	defer srv.Close()

	start := time.Now()
	res, err := fastClient(srv).Stream(context.Background(), request())
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", res.Attempts)
	}
	if el := time.Since(start); el > 3*time.Second {
		t.Fatalf("Retry-After cap not honored, took %v", el)
	}
	if !bytes.Equal(res.Stream, wantStream(t, sched)) {
		t.Fatal("stream diverges")
	}
}

// TestClientTerminalStatus: 409 is terminal — one attempt, a StatusError.
func TestClientTerminalStatus(t *testing.T) {
	fs := &flakyServer{sched: testSched(50), plan: []string{"409", "ok"}}
	srv := httptest.NewServer(fs)
	defer srv.Close()

	_, err := fastClient(srv).Stream(context.Background(), request())
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusConflict {
		t.Fatalf("err = %v, want 409 StatusError", err)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.attempts != 1 {
		t.Fatalf("terminal status retried: %d attempts", fs.attempts)
	}
}

// TestClientExhaustsAttempts: permanent overload surfaces as
// ErrAttemptsExhausted after exactly MaxAttempts tries.
func TestClientExhaustsAttempts(t *testing.T) {
	fs := &flakyServer{sched: testSched(50), plan: []string{"503", "503", "503", "503", "503", "503", "503", "503", "503", "503"}}
	srv := httptest.NewServer(fs)
	defer srv.Close()

	c := New(Config{
		BaseURL: srv.URL, HTTPClient: srv.Client(),
		MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond,
	})
	_, err := c.Stream(context.Background(), request())
	if !errors.Is(err, ErrAttemptsExhausted) {
		t.Fatalf("err = %v, want ErrAttemptsExhausted", err)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.attempts != 3 {
		t.Fatalf("attempts = %d, want 3", fs.attempts)
	}
}

// TestClientContextCancel: a cancelled context stops the retry loop.
func TestClientContextCancel(t *testing.T) {
	fs := &flakyServer{sched: testSched(50), plan: []string{"503", "503", "503"}}
	srv := httptest.NewServer(fs)
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	c := New(Config{
		BaseURL: srv.URL, HTTPClient: srv.Client(),
		BaseBackoff: 50 * time.Millisecond, MaxBackoff: time.Second,
	})
	_, err := c.Stream(ctx, request())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

// TestRetryableStatus pins the classification table.
func TestRetryableStatus(t *testing.T) {
	for _, code := range []int{429, 500, 502, 503, 504} {
		if !RetryableStatus(code) {
			t.Errorf("%d should be retryable", code)
		}
	}
	for _, code := range []int{400, 404, 409, 413, 422} {
		if RetryableStatus(code) {
			t.Errorf("%d should be terminal", code)
		}
	}
}
