package brute

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/memsim"
	"repro/internal/tree"
)

func TestMinIOChainTrivial(t *testing.T) {
	tr := tree.Chain(3, 5, 2)
	sched, io, err := MinIO(tr, 5)
	if err != nil {
		t.Fatal(err)
	}
	if io != 0 {
		t.Fatalf("chain needs no I/O at M=max w̄, got %d", io)
	}
	if !tree.IsTopological(tr, sched) {
		t.Fatal("schedule invalid")
	}
}

func TestMinIOBelowLB(t *testing.T) {
	tr := tree.Star(1, 5, 5)
	if _, _, err := MinIO(tr, 9); err == nil {
		t.Fatal("M below LB accepted")
	}
	if _, err := OptimalPeak(tr); err != nil {
		t.Fatal(err)
	}
}

func TestMinIOKnownInstance(t *testing.T) {
	// Figure 2(b): optimum 3 at M=6.
	tr := tree.Graft(1, tree.Chain(3, 5, 2, 6), tree.Chain(3, 5, 2, 6))
	sched, io, err := MinIO(tr, 6)
	if err != nil {
		t.Fatal(err)
	}
	if io != 3 {
		t.Fatalf("optimum %d, want 3", io)
	}
	got, err := memsim.IOOf(tr, 6, sched)
	if err != nil {
		t.Fatal(err)
	}
	if got != io {
		t.Fatalf("declared %d but schedule simulates to %d", io, got)
	}
}

func TestMinIOZeroShortCircuit(t *testing.T) {
	// With M = optimal peak, the enumeration stops at the first
	// zero-I/O schedule.
	tr := tree.Star(2, 3, 4)
	peak, err := OptimalPeak(tr)
	if err != nil {
		t.Fatal(err)
	}
	_, io, err := MinIO(tr, peak)
	if err != nil {
		t.Fatal(err)
	}
	if io != 0 {
		t.Fatalf("io=%d at M=peak", io)
	}
}

func TestOptimalPeakMatchesKnown(t *testing.T) {
	tr := tree.Graft(1, tree.Chain(3, 5, 2, 6), tree.Chain(3, 5, 2, 6))
	p, err := OptimalPeak(tr)
	if err != nil {
		t.Fatal(err)
	}
	if p != 8 {
		t.Fatalf("peak %d, want 8 (paper Section 4.4)", p)
	}
}

func TestMinIONeverAboveAnyHeuristicSchedule(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(7)
		parent := make([]int, n)
		weight := make([]int64, n)
		parent[0] = tree.None
		weight[0] = 1 + rng.Int63n(9)
		for i := 1; i < n; i++ {
			parent[i] = rng.Intn(i)
			weight[i] = 1 + rng.Int63n(9)
		}
		tr := tree.MustNew(parent, weight)
		lb := tr.MaxWBar()
		M := lb + rng.Int63n(5)
		_, opt, err := MinIO(tr, M)
		if err != nil {
			t.Fatal(err)
		}
		io, err := memsim.IOOf(tr, M, tr.NaturalPostorder())
		if err != nil {
			t.Fatal(err)
		}
		if opt > io {
			t.Fatalf("trial %d: optimum %d above a concrete schedule's %d", trial, opt, io)
		}
	}
}

// sixChains builds an I/O-bound instance with an astronomically large
// linear-extension count (18!/6⁶ ≈ 10¹¹) and 720 distinct postorders:
// six grafted Figure-2(b)-style chains. At M = LB = 18 the minimum peak
// over all orders is 20, so the optimum is nonzero and the zero-I/O
// short circuit never cuts the search.
func sixChains() (*tree.Tree, int64) {
	return tree.Graft(1,
		tree.Chain(3, 5, 2), tree.Chain(3, 5, 2), tree.Chain(3, 5, 2),
		tree.Chain(3, 5, 2), tree.Chain(3, 5, 2), tree.Chain(3, 5, 2),
	), 18
}

func TestMinIOCtxCancel(t *testing.T) {
	// Without the context this enumeration would only stop at the default
	// order budget, long after this test's deadline. Cancellation must cut
	// it short at a node boundary and surface ctx.Err().
	tr, M := sixChains()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := MinIOCtx(ctx, tr, M, Limits{})
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled enumeration did not return")
	}

	if _, err := OptimalPeakCtx(ctx, tr, Limits{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("OptimalPeakCtx on cancelled ctx: %v", err)
	}
	if _, _, err := MinIOPostorder(ctx, tr, M, Limits{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("MinIOPostorder on cancelled ctx: %v", err)
	}
}

func TestMinIOBudget(t *testing.T) {
	// Two grafted chains: C(8,4) = 70 linear extensions, optimum 3 > 0 at
	// M = 6, so every order is visited.
	tr := tree.Graft(1, tree.Chain(3, 5, 2, 6), tree.Chain(3, 5, 2, 6))
	if _, _, err := MinIOCtx(context.Background(), tr, 6, Limits{MaxOrders: 10}); !errors.Is(err, ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
	if _, io, err := MinIOCtx(context.Background(), tr, 6, Limits{MaxOrders: 100}); err != nil || io != 3 {
		t.Fatalf("budget 100 should cover 70 orders: io=%d err=%v", io, err)
	}
	if _, err := OptimalPeakCtx(context.Background(), tr, Limits{MaxOrders: 10}); !errors.Is(err, ErrBudget) {
		t.Fatal("OptimalPeakCtx ignored the budget")
	}
	six, M := sixChains() // 720 postorders, all I/O-bound
	if _, _, err := MinIOPostorder(context.Background(), six, M, Limits{MaxOrders: 100}); !errors.Is(err, ErrBudget) {
		t.Fatal("MinIOPostorder ignored the budget")
	}
}

func TestMinIOPostorderOracle(t *testing.T) {
	// The postorder enumeration must agree with the general one whenever
	// some postorder is optimal, and can never beat it.
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(8)
		parent := make([]int, n)
		weight := make([]int64, n)
		parent[0] = tree.None
		weight[0] = 1 + rng.Int63n(9)
		for i := 1; i < n; i++ {
			parent[i] = rng.Intn(i)
			weight[i] = 1 + rng.Int63n(9)
		}
		tr := tree.MustNew(parent, weight)
		M := tr.MaxWBar() + rng.Int63n(5)
		sched, poIO, err := MinIOPostorder(context.Background(), tr, M, Limits{})
		if err != nil {
			t.Fatal(err)
		}
		if !tree.IsPostorder(tr, sched) {
			t.Fatalf("trial %d: best postorder is not a postorder: %v", trial, sched)
		}
		if got, err := memsim.IOOf(tr, M, sched); err != nil || got != poIO {
			t.Fatalf("trial %d: declared %d, simulated %d (%v)", trial, poIO, got, err)
		}
		_, opt, err := MinIO(tr, M)
		if err != nil {
			t.Fatal(err)
		}
		if poIO < opt {
			t.Fatalf("trial %d: postorder optimum %d below global optimum %d", trial, poIO, opt)
		}
	}
}
