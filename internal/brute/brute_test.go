package brute

import (
	"math/rand"
	"testing"

	"repro/internal/memsim"
	"repro/internal/tree"
)

func TestMinIOChainTrivial(t *testing.T) {
	tr := tree.Chain(3, 5, 2)
	sched, io, err := MinIO(tr, 5)
	if err != nil {
		t.Fatal(err)
	}
	if io != 0 {
		t.Fatalf("chain needs no I/O at M=max w̄, got %d", io)
	}
	if !tree.IsTopological(tr, sched) {
		t.Fatal("schedule invalid")
	}
}

func TestMinIOBelowLB(t *testing.T) {
	tr := tree.Star(1, 5, 5)
	if _, _, err := MinIO(tr, 9); err == nil {
		t.Fatal("M below LB accepted")
	}
	if _, err := OptimalPeak(tr); err != nil {
		t.Fatal(err)
	}
}

func TestMinIOKnownInstance(t *testing.T) {
	// Figure 2(b): optimum 3 at M=6.
	tr := tree.Graft(1, tree.Chain(3, 5, 2, 6), tree.Chain(3, 5, 2, 6))
	sched, io, err := MinIO(tr, 6)
	if err != nil {
		t.Fatal(err)
	}
	if io != 3 {
		t.Fatalf("optimum %d, want 3", io)
	}
	got, err := memsim.IOOf(tr, 6, sched)
	if err != nil {
		t.Fatal(err)
	}
	if got != io {
		t.Fatalf("declared %d but schedule simulates to %d", io, got)
	}
}

func TestMinIOZeroShortCircuit(t *testing.T) {
	// With M = optimal peak, the enumeration stops at the first
	// zero-I/O schedule.
	tr := tree.Star(2, 3, 4)
	peak, err := OptimalPeak(tr)
	if err != nil {
		t.Fatal(err)
	}
	_, io, err := MinIO(tr, peak)
	if err != nil {
		t.Fatal(err)
	}
	if io != 0 {
		t.Fatalf("io=%d at M=peak", io)
	}
}

func TestOptimalPeakMatchesKnown(t *testing.T) {
	tr := tree.Graft(1, tree.Chain(3, 5, 2, 6), tree.Chain(3, 5, 2, 6))
	p, err := OptimalPeak(tr)
	if err != nil {
		t.Fatal(err)
	}
	if p != 8 {
		t.Fatalf("peak %d, want 8 (paper Section 4.4)", p)
	}
}

func TestMinIONeverAboveAnyHeuristicSchedule(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(7)
		parent := make([]int, n)
		weight := make([]int64, n)
		parent[0] = tree.None
		weight[0] = 1 + rng.Int63n(9)
		for i := 1; i < n; i++ {
			parent[i] = rng.Intn(i)
			weight[i] = 1 + rng.Int63n(9)
		}
		tr := tree.MustNew(parent, weight)
		lb := tr.MaxWBar()
		M := lb + rng.Int63n(5)
		_, opt, err := MinIO(tr, M)
		if err != nil {
			t.Fatal(err)
		}
		io, err := memsim.IOOf(tr, M, tr.NaturalPostorder())
		if err != nil {
			t.Fatal(err)
		}
		if opt > io {
			t.Fatalf("trial %d: optimum %d above a concrete schedule's %d", trial, opt, io)
		}
	}
}
