// Package brute provides an exact exponential-time MinIO solver used as a
// test oracle. By the paper's Theorem 1, for any fixed schedule σ the FiF
// policy yields an optimal I/O function τ, so the global optimum is the
// minimum of the FiF I/O volume over all topological orders of the tree.
// The solver enumerates all linear extensions; it is intended for trees of
// at most a dozen nodes.
package brute

import (
	"fmt"
	"math"

	"repro/internal/memsim"
	"repro/internal/tree"
)

// MaxOrders bounds the number of topological orders the solver will visit
// before giving up, as a guard against accidental use on large trees.
const MaxOrders = 20_000_000

// MinIO returns an optimal schedule and the optimal I/O volume for tree t
// under memory bound M. It errors if M < LB or if the enumeration exceeds
// MaxOrders.
func MinIO(t *tree.Tree, M int64) (tree.Schedule, int64, error) {
	if lb := t.MaxWBar(); M < lb {
		return nil, 0, fmt.Errorf("brute: M=%d below LB=%d", M, lb)
	}
	n := t.N()
	remaining := make([]int, n) // unprocessed children count
	for i := 0; i < n; i++ {
		remaining[i] = t.NumChildren(i)
	}
	avail := make([]bool, n)
	for i := 0; i < n; i++ {
		avail[i] = remaining[i] == 0
	}
	cur := make(tree.Schedule, 0, n)
	best := tree.Schedule(nil)
	bestIO := int64(math.MaxInt64)
	visited := 0
	var overflow bool

	var rec func()
	rec = func() {
		if overflow || bestIO == 0 && best != nil {
			return // cannot beat a zero-I/O schedule
		}
		if len(cur) == n {
			visited++
			if visited > MaxOrders {
				overflow = true
				return
			}
			res, err := memsim.Run(t, M, cur, memsim.FiF)
			if err != nil {
				panic("brute: generated invalid schedule: " + err.Error())
			}
			if res.IO < bestIO {
				bestIO = res.IO
				best = append(tree.Schedule(nil), cur...)
			}
			return
		}
		for v := 0; v < n; v++ {
			if !avail[v] {
				continue
			}
			avail[v] = false
			cur = append(cur, v)
			p := t.Parent(v)
			if p != tree.None {
				remaining[p]--
				if remaining[p] == 0 {
					avail[p] = true
				}
			}
			rec()
			if p != tree.None {
				if remaining[p] == 0 {
					avail[p] = false
				}
				remaining[p]++
			}
			cur = cur[:len(cur)-1]
			avail[v] = true
		}
	}
	rec()
	if overflow {
		return nil, 0, fmt.Errorf("brute: more than %d topological orders", MaxOrders)
	}
	return best, bestIO, nil
}

// OptimalPeak returns the minimum in-core peak memory over all topological
// orders, by exhaustive enumeration (an oracle for Liu's MinMem).
func OptimalPeak(t *tree.Tree) (int64, error) {
	n := t.N()
	remaining := make([]int, n)
	for i := 0; i < n; i++ {
		remaining[i] = t.NumChildren(i)
	}
	avail := make([]bool, n)
	for i := 0; i < n; i++ {
		avail[i] = remaining[i] == 0
	}
	cur := make(tree.Schedule, 0, n)
	bestPeak := int64(math.MaxInt64)
	visited := 0
	var overflow bool

	var rec func()
	rec = func() {
		if overflow {
			return
		}
		if len(cur) == n {
			visited++
			if visited > MaxOrders {
				overflow = true
				return
			}
			p, err := memsim.Peak(t, cur)
			if err != nil {
				panic("brute: generated invalid schedule: " + err.Error())
			}
			if p < bestPeak {
				bestPeak = p
			}
			return
		}
		for v := 0; v < n; v++ {
			if !avail[v] {
				continue
			}
			avail[v] = false
			cur = append(cur, v)
			p := t.Parent(v)
			if p != tree.None {
				remaining[p]--
				if remaining[p] == 0 {
					avail[p] = true
				}
			}
			rec()
			if p != tree.None {
				if remaining[p] == 0 {
					avail[p] = false
				}
				remaining[p]++
			}
			cur = cur[:len(cur)-1]
			avail[v] = true
		}
	}
	rec()
	if overflow {
		return 0, fmt.Errorf("brute: more than %d topological orders", MaxOrders)
	}
	return bestPeak, nil
}
