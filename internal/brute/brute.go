// Package brute provides exact exponential-time solvers used as test
// oracles. By the paper's Theorem 1, for any fixed schedule σ the FiF
// policy yields an optimal I/O function τ, so the global optimum is the
// minimum of the FiF I/O volume over all topological orders of the tree.
// The solvers enumerate all linear extensions (MinIO, OptimalPeak) or all
// postorders (MinIOPostorder); they are intended for trees of at most a
// dozen nodes.
//
// Long enumerations are interruptible: the Ctx variants poll the context
// at node boundaries of the search, and Limits bounds the number of
// complete orders visited so a certification sweep can skip an instance
// whose extension count explodes instead of stalling (ErrBudget).
package brute

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/memsim"
	"repro/internal/tree"
)

// MaxOrders is the default bound on the number of complete orders a solver
// will visit before giving up, as a guard against accidental use on large
// trees. Limits.MaxOrders overrides it per call.
const MaxOrders = 20_000_000

// ErrBudget is wrapped by the error returned when an enumeration visits
// more complete orders than its budget allows. Callers sweeping random
// instances match it with errors.Is and skip the instance.
var ErrBudget = errors.New("brute: enumeration budget exhausted")

// Limits bounds one enumeration call. The zero value applies the package
// defaults.
type Limits struct {
	// MaxOrders caps the number of complete orders visited; 0 means the
	// package-level MaxOrders default.
	MaxOrders int
}

func (l Limits) maxOrders() int {
	if l.MaxOrders <= 0 {
		return MaxOrders
	}
	return l.MaxOrders
}

// ctxPollMask throttles context polling: the enumerator checks Done once
// every ctxPollMask+1 node boundaries, keeping the poll off the critical
// path while still reacting within microseconds of a cancellation.
const ctxPollMask = 255

// enumerator holds the shared depth-first linear-extension walk state.
// The simulator is reused across all visited orders, so the inner loop of
// an enumeration does not allocate.
type enumerator struct {
	t         *tree.Tree
	remaining []int // unprocessed children count
	avail     []bool
	cur       tree.Schedule
	sim       *memsim.Simulator
	visited   int
	budget    int
	steps     int
	ctx       context.Context
	err       error // ctx error or budget overflow, sticky
	stop      bool  // early exit (err or visitor cut-off)
}

func newEnumerator(ctx context.Context, t *tree.Tree, lim Limits) *enumerator {
	n := t.N()
	e := &enumerator{
		t:         t,
		remaining: make([]int, n),
		avail:     make([]bool, n),
		cur:       make(tree.Schedule, 0, n),
		sim:       memsim.NewSimulator(),
		budget:    lim.maxOrders(),
		ctx:       ctx,
	}
	for i := 0; i < n; i++ {
		e.remaining[i] = t.NumChildren(i)
		e.avail[i] = e.remaining[i] == 0
	}
	return e
}

// poll checks the context every ctxPollMask+1 calls (one call per node
// boundary of the search) and the order budget at every complete order.
func (e *enumerator) poll() bool {
	if e.ctx == nil {
		return true
	}
	if e.steps++; e.steps&ctxPollMask != 0 {
		return true
	}
	select {
	case <-e.ctx.Done():
		e.err = e.ctx.Err()
		e.stop = true
		return false
	default:
		return true
	}
}

// walk enumerates all linear extensions depth first, calling visit with
// each complete order. visit returns false to cut the whole search short
// (e.g. a provably unbeatable incumbent was found).
func (e *enumerator) walk(visit func(sched tree.Schedule) bool) {
	n := e.t.N()
	var rec func()
	rec = func() {
		if e.stop || !e.poll() {
			return
		}
		if len(e.cur) == n {
			if e.visited++; e.visited > e.budget {
				e.err = fmt.Errorf("%w: more than %d complete orders", ErrBudget, e.budget)
				e.stop = true
				return
			}
			if !visit(e.cur) {
				e.stop = true
			}
			return
		}
		for v := 0; v < n; v++ {
			if !e.avail[v] {
				continue
			}
			e.avail[v] = false
			e.cur = append(e.cur, v)
			p := e.t.Parent(v)
			if p != tree.None {
				e.remaining[p]--
				if e.remaining[p] == 0 {
					e.avail[p] = true
				}
			}
			rec()
			if p != tree.None {
				if e.remaining[p] == 0 {
					e.avail[p] = false
				}
				e.remaining[p]++
			}
			e.cur = e.cur[:len(e.cur)-1]
			e.avail[v] = true
			if e.stop {
				return
			}
		}
	}
	rec()
}

// MinIO returns an optimal schedule and the optimal I/O volume for tree t
// under memory bound M. It errors if M < LB or if the enumeration exceeds
// MaxOrders. It is MinIOCtx without cancellation and with default limits.
func MinIO(t *tree.Tree, M int64) (tree.Schedule, int64, error) {
	return MinIOCtx(context.Background(), t, M, Limits{})
}

// MinIOCtx is MinIO with cooperative cancellation (polled at node
// boundaries of the enumeration) and an explicit order budget. A cancelled
// call returns ctx.Err(); a blown budget returns an error matching
// ErrBudget.
func MinIOCtx(ctx context.Context, t *tree.Tree, M int64, lim Limits) (tree.Schedule, int64, error) {
	if lb := t.MaxWBar(); M < lb {
		return nil, 0, fmt.Errorf("brute: M=%d below LB=%d", M, lb)
	}
	e := newEnumerator(ctx, t, lim)
	root := t.Root()
	best := tree.Schedule(nil)
	bestIO := int64(math.MaxInt64)
	e.walk(func(cur tree.Schedule) bool {
		io, _, err := e.sim.Run(t, root, M, cur, memsim.FiF)
		if err != nil {
			panic("brute: generated invalid schedule: " + err.Error())
		}
		if io < bestIO {
			bestIO = io
			best = append(best[:0], cur...)
		}
		return bestIO > 0 // a zero-I/O schedule cannot be beaten
	})
	if e.err != nil {
		return nil, 0, e.err
	}
	return best, bestIO, nil
}

// OptimalPeak returns the minimum in-core peak memory over all topological
// orders, by exhaustive enumeration (an oracle for Liu's MinMem). It is
// OptimalPeakCtx without cancellation and with default limits.
func OptimalPeak(t *tree.Tree) (int64, error) {
	return OptimalPeakCtx(context.Background(), t, Limits{})
}

// OptimalPeakCtx is OptimalPeak with cooperative cancellation and an
// explicit order budget; see MinIOCtx for the failure modes.
func OptimalPeakCtx(ctx context.Context, t *tree.Tree, lim Limits) (int64, error) {
	e := newEnumerator(ctx, t, lim)
	root := t.Root()
	bestPeak := int64(math.MaxInt64)
	e.walk(func(cur tree.Schedule) bool {
		_, peak, err := e.sim.Run(t, root, memsim.Unbounded, cur, memsim.FiF)
		if err != nil {
			panic("brute: generated invalid schedule: " + err.Error())
		}
		if peak < bestPeak {
			bestPeak = peak
		}
		return true
	})
	if e.err != nil {
		return 0, e.err
	}
	return bestPeak, nil
}

// MinIOPostorder returns a best postorder schedule and its FiF I/O volume
// under memory bound M, by exhaustively enumerating every depth-first
// postorder (all child-order permutations at every node). It is the
// independent oracle for the paper's Theorem 3 claim that POSTORDERMINIO's
// child ordering minimizes the I/O volume among all postorders. The number
// of postorders is Π_v (#children(v))!, far below the linear-extension
// count, so it reaches slightly larger trees than MinIO.
func MinIOPostorder(ctx context.Context, t *tree.Tree, M int64, lim Limits) (tree.Schedule, int64, error) {
	if lb := t.MaxWBar(); M < lb {
		return nil, 0, fmt.Errorf("brute: M=%d below LB=%d", M, lb)
	}
	n := t.N()
	e := &enumerator{ // only poll/budget/sim state is used by this walk
		t:      t,
		cur:    make(tree.Schedule, 0, n),
		sim:    memsim.NewSimulator(),
		budget: lim.maxOrders(),
		ctx:    ctx,
	}
	root := t.Root()
	best := tree.Schedule(nil)
	bestIO := int64(math.MaxInt64)
	// order[v] is the current permutation of v's children, permuted in
	// place by the recursive generator below.
	order := make([][]int, n)
	for v := 0; v < n; v++ {
		order[v] = append([]int(nil), t.Children(v)...)
	}
	// emit appends the postorder of v's subtree under the current child
	// orders, then continues with cont; cont is called once per complete
	// assignment below v. Child permutations are generated lazily: perm(v)
	// iterates the permutations of order[v] and recurses into each child's
	// own permutation space before emitting.
	var eval func()
	eval = func() {
		if e.stop {
			return
		}
		if e.visited++; e.visited > e.budget {
			e.err = fmt.Errorf("%w: more than %d postorders", ErrBudget, e.budget)
			e.stop = true
			return
		}
		e.cur = e.cur[:0]
		var emit func(v int)
		emit = func(v int) {
			for _, c := range order[v] {
				emit(c)
			}
			e.cur = append(e.cur, v)
		}
		emit(root)
		io, _, err := e.sim.Run(t, root, M, e.cur, memsim.FiF)
		if err != nil {
			panic("brute: generated invalid postorder: " + err.Error())
		}
		if io < bestIO {
			bestIO = io
			best = append(best[:0], e.cur...)
		}
		if bestIO == 0 {
			e.stop = true
		}
	}
	// nodes in a fixed order; permute each node's child list with Heap's
	// algorithm, recursing to the next node for every permutation.
	nodes := t.TopDown()
	var perm func(k int)
	perm = func(k int) {
		if e.stop || !e.poll() {
			return
		}
		for k < len(nodes) && len(order[nodes[k]]) < 2 {
			k++
		}
		if k == len(nodes) {
			eval()
			return
		}
		cs := order[nodes[k]]
		var heaps func(m int)
		heaps = func(m int) {
			if e.stop {
				return
			}
			if m == 1 {
				perm(k + 1)
				return
			}
			for i := 0; i < m; i++ {
				heaps(m - 1)
				if e.stop {
					return
				}
				if m%2 == 0 {
					cs[i], cs[m-1] = cs[m-1], cs[i]
				} else {
					cs[0], cs[m-1] = cs[m-1], cs[0]
				}
			}
		}
		heaps(len(cs))
	}
	perm(0)
	if e.err != nil {
		return nil, 0, e.err
	}
	return best, bestIO, nil
}
