package postorder

import (
	"fmt"
	"sort"

	"repro/internal/tree"
)

// HomLabels holds the Section 4.2 labels of a homogeneous tree (every
// output has size 1) for a memory bound M.
type HomLabels struct {
	// L[v] is the minimum memory (in unit slots) needed to execute the
	// subtree rooted at v without any I/O; leaves have L = 1 and internal
	// nodes L = max_i (L(v_i) + i − 1) over children sorted by
	// non-increasing L (the Sethi–Ullman number of the in-tree).
	L []int64
	// C[v] is the I/O indicator: 1 if POSTORDER writes one unit of v to
	// disk while executing a later sibling subtree, else 0. The root has
	// C = 0.
	C []int64
	// W[v] = Σ_{children v_i} C[v_i], the number of children of v that
	// POSTORDER stores.
	W []int64
	// Sorted[v] lists v's children in the POSTORDER processing order
	// (non-increasing L, ties by index).
	Sorted [][]int
}

// WT returns W(T(v)) = C[v] + Σ_{μ in subtree of v} W[μ], the I/O volume
// of POSTORDER on the subtree of v (Lemma 3) and the lower bound on any
// schedule (Lemma 5).
func (h *HomLabels) WT(t *tree.Tree, v int) int64 {
	var sum int64
	for _, u := range t.SubtreeNodes(v) {
		sum += h.W[u]
	}
	return h.C[v] + sum
}

// ComputeHomLabels computes the labels for homogeneous tree t and memory
// bound M. It errors if the tree is not homogeneous.
func ComputeHomLabels(t *tree.Tree, M int64) (*HomLabels, error) {
	n := t.N()
	for i := 0; i < n; i++ {
		if t.Weight(i) != 1 {
			return nil, fmt.Errorf("postorder: node %d has weight %d; homogeneous labels need unit weights", i, t.Weight(i))
		}
	}
	h := &HomLabels{
		L:      make([]int64, n),
		C:      make([]int64, n),
		W:      make([]int64, n),
		Sorted: make([][]int, n),
	}
	for _, v := range t.BottomUp() {
		if t.IsLeaf(v) {
			h.L[v] = 1
			continue
		}
		cs := append([]int(nil), t.Children(v)...)
		sort.SliceStable(cs, func(a, b int) bool {
			if h.L[cs[a]] != h.L[cs[b]] {
				return h.L[cs[a]] > h.L[cs[b]]
			}
			return cs[a] < cs[b]
		})
		h.Sorted[v] = cs
		var l int64
		for i, c := range cs {
			if q := h.L[c] + int64(i); q > l {
				l = q
			}
		}
		h.L[v] = l
		// I/O indicators: c(v_1) = 0; c(v_i) = 0 iff
		// l(v_i) + Σ_{j<i}(1 − c(v_j)) ≤ M.
		var inMem int64 // m(v_i) = Σ_{j<i} (1 − c(v_j))
		for i, c := range cs {
			if i == 0 {
				h.C[c] = 0
			} else if h.L[c]+inMem <= M {
				h.C[c] = 0
			} else {
				h.C[c] = 1
			}
			inMem += 1 - h.C[c]
			h.W[v] += h.C[c]
		}
	}
	h.C[t.Root()] = 0
	return h, nil
}

// HomPostorder returns the POSTORDER schedule of Section 4.2: the postorder
// that processes children by non-increasing L labels. Its FiF I/O volume is
// at most W(T) (Lemma 3), which is optimal (Lemma 5, Theorem 4).
func HomPostorder(t *tree.Tree, h *HomLabels) tree.Schedule {
	order := make([][]int, t.N())
	for _, v := range t.BottomUp() {
		var sched []int
		cs := h.Sorted[v]
		if cs == nil {
			cs = t.Children(v)
		}
		for k, c := range cs {
			if k == 0 {
				sched = order[c] // reuse: keeps chains linear-time
			} else {
				sched = append(sched, order[c]...)
			}
			order[c] = nil
		}
		sched = append(sched, v)
		order[v] = sched
	}
	return order[t.Root()]
}
