// Package postorder implements the postorder-constrained algorithms of the
// paper: POSTORDERMINIO, E. Agullo's best postorder traversal for the
// I/O-volume objective (Section 4.1, Algorithm 1), and the homogeneous-tree
// label theory of Section 4.2 (labels l, c, m, w and the lower bound W(T))
// under which the best postorder is optimal (Theorem 4).
package postorder

import (
	"sort"

	"repro/internal/tree"
)

// Analysis carries the per-node quantities of Section 4.1 for the chosen
// (best) postorder.
type Analysis struct {
	// S[i] is the storage requirement of the subtree rooted at i: the
	// in-core peak of the chosen postorder restricted to that subtree.
	S []int64
	// A[i] = min(M, S[i]): the main-memory footprint of the out-of-core
	// execution of the subtree.
	A []int64
	// V[i] is the I/O volume incurred while executing the subtree rooted
	// at i under the FiF policy with memory bound M.
	V []int64
}

// MinIO computes the best postorder traversal for the I/O volume under
// memory bound M (Algorithm 1 of the paper): the children of every node are
// processed in non-increasing order of A_j − w_j, which minimizes V_root
// among all postorders by Theorem 3. It returns the schedule, the predicted
// I/O volume V_root, and the per-node analysis.
func MinIO(t *tree.Tree, M int64) (tree.Schedule, int64, *Analysis) {
	n := t.N()
	an := &Analysis{
		S: make([]int64, n),
		A: make([]int64, n),
		V: make([]int64, n),
	}
	order := make([][]int, n)
	for _, v := range t.BottomUp() {
		children := append([]int(nil), t.Children(v)...)
		// Non-increasing A_j − w_j (Theorem 3), deterministic ties.
		sort.SliceStable(children, func(a, b int) bool {
			da := an.A[children[a]] - t.Weight(children[a])
			db := an.A[children[b]] - t.Weight(children[b])
			if da != db {
				return da > db
			}
			return children[a] < children[b]
		})
		s := t.Weight(v)
		var ioPeak int64 // max_j (A_j + Σ_{k before j} w_k) − M, clamped at 0
		var before int64 // Σ outputs of already-finished siblings
		var vsum int64   // Σ_j V_j
		var sched []int
		for k, c := range children {
			if q := an.S[c] + before; q > s {
				s = q
			}
			if q := an.A[c] + before - M; q > ioPeak {
				ioPeak = q
			}
			vsum += an.V[c]
			before += t.Weight(c)
			if k == 0 {
				sched = order[c] // reuse: keeps chains linear-time
			} else {
				sched = append(sched, order[c]...)
			}
			order[c] = nil
		}
		sched = append(sched, v)
		an.S[v] = s
		if s < M {
			an.A[v] = s
		} else {
			an.A[v] = M
		}
		an.V[v] = ioPeak + vsum
		order[v] = sched
	}
	r := t.Root()
	return order[r], an.V[r], an
}
