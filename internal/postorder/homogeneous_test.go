package postorder

import (
	"math/rand"
	"testing"

	"repro/internal/brute"
	"repro/internal/liu"
	"repro/internal/memsim"
	"repro/internal/tree"
)

func homRandomTree(n int, rng *rand.Rand) *tree.Tree {
	parent := make([]int, n)
	weight := make([]int64, n)
	parent[0] = tree.None
	weight[0] = 1
	for i := 1; i < n; i++ {
		parent[i] = rng.Intn(i)
		weight[i] = 1
	}
	return tree.MustNew(parent, weight)
}

func TestHomLabelsRejectHeterogeneous(t *testing.T) {
	tr := tree.Chain(2, 1)
	if _, err := ComputeHomLabels(tr, 5); err == nil {
		t.Fatal("heterogeneous tree accepted")
	}
}

func TestHomLabelsSethiUllman(t *testing.T) {
	// Complete binary tree of depth d has Sethi–Ullman number d+1 in
	// the in-tree pebble model with unit weights: l(leaf)=1,
	// l(internal)= max(l+0, l+1) = l_child + 1.
	for levels := 1; levels <= 5; levels++ {
		tr := tree.CompleteBinary(levels, 1)
		h, err := ComputeHomLabels(tr, 1<<30)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := h.L[tr.Root()], int64(levels); got != want {
			t.Fatalf("levels=%d: l(root)=%d want %d", levels, got, want)
		}
	}
}

func TestHomLabelsMatchMinMem(t *testing.T) {
	// Lemmas 1+2: l(root) is exactly the optimal peak memory, which
	// Liu's MinMem computes for arbitrary weights.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 300; trial++ {
		tr := homRandomTree(1+rng.Intn(40), rng)
		h, err := ComputeHomLabels(tr, 1<<30)
		if err != nil {
			t.Fatal(err)
		}
		_, peak := liu.MinMem(tr)
		if h.L[tr.Root()] != peak {
			t.Fatalf("trial %d: l(root)=%d MinMem peak=%d (parents=%v)",
				trial, h.L[tr.Root()], peak, tr.Parents())
		}
	}
}

func TestHomPostorderIOEqualsWT(t *testing.T) {
	// Lemma 3: POSTORDER's FiF I/O is at most W(T); combined with
	// Lemma 5 (no schedule beats W(T)) it is exactly W(T).
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 300; trial++ {
		tr := homRandomTree(1+rng.Intn(25), rng)
		lb := tr.MaxWBar()
		_, peak := liu.MinMem(tr)
		if peak <= lb {
			continue
		}
		for _, M := range []int64{lb, (lb + peak) / 2, peak - 1} {
			if M < lb {
				continue
			}
			h, err := ComputeHomLabels(tr, M)
			if err != nil {
				t.Fatal(err)
			}
			want := h.WT(tr, tr.Root())
			sched := HomPostorder(tr, h)
			if !tree.IsPostorder(tr, sched) {
				t.Fatalf("trial %d: POSTORDER not a postorder", trial)
			}
			io, err := memsim.IOOf(tr, M, sched)
			if err != nil {
				t.Fatal(err)
			}
			if io > want {
				t.Fatalf("trial %d M=%d: POSTORDER paid %d > W(T)=%d (parents=%v)",
					trial, M, io, want, tr.Parents())
			}
		}
	}
}

func TestTheorem4HomogeneousOptimality(t *testing.T) {
	// On homogeneous trees: brute-force optimum == W(T) ==
	// POSTORDERMINIO's I/O (Theorem 4).
	rng := rand.New(rand.NewSource(8))
	trials := 150
	if testing.Short() {
		trials = 40
	}
	for trial := 0; trial < trials; trial++ {
		tr := homRandomTree(2+rng.Intn(7), rng)
		lb := tr.MaxWBar()
		_, peak := liu.MinMem(tr)
		if peak <= lb {
			continue
		}
		for M := lb; M < peak; M++ {
			h, err := ComputeHomLabels(tr, M)
			if err != nil {
				t.Fatal(err)
			}
			wt := h.WT(tr, tr.Root())
			_, opt, err := brute.MinIO(tr, M)
			if err != nil {
				t.Fatal(err)
			}
			if wt != opt {
				t.Fatalf("trial %d M=%d: W(T)=%d but optimal=%d (parents=%v)",
					trial, M, wt, opt, tr.Parents())
			}
			_, v, _ := MinIO(tr, M)
			if v != opt {
				t.Fatalf("trial %d M=%d: POSTORDERMINIO=%d but optimal=%d (parents=%v)",
					trial, M, v, opt, tr.Parents())
			}
		}
	}
}

func TestHomLabelsCIndicators(t *testing.T) {
	// Star with k unit leaves and M < k: the first M−... with M slots,
	// leaves beyond the first M−? must be written. l(leaf)=1;
	// c(v_i)=1 iff 1 + (in-memory count) > M.
	tr := tree.Star(1, 1, 1, 1, 1, 1) // 5 leaves
	// LB = w̄(root) = 5, so the only interesting bound is M >= 5 where
	// nothing is written.
	h, err := ComputeHomLabels(tr, 5)
	if err != nil {
		t.Fatal(err)
	}
	if h.WT(tr, tr.Root()) != 0 {
		t.Fatalf("star needs no I/O at M=LB, got %d", h.WT(tr, tr.Root()))
	}
	// A two-level construction where I/O is forced: root over two
	// subtrees each needing the full memory.
	sub := tree.Star(1, 1, 1, 1)
	tr2 := tree.Graft(1, sub, sub.Clone())
	lb := tr2.MaxWBar() // 4? w̄(sub root)=3... w̄(root)=2 → LB=3
	_, peak := liu.MinMem(tr2)
	if peak <= lb {
		t.Skip("no I/O range")
	}
	h2, err := ComputeHomLabels(tr2, lb)
	if err != nil {
		t.Fatal(err)
	}
	wt := h2.WT(tr2, tr2.Root())
	_, opt, err := brute.MinIO(tr2, lb)
	if err != nil {
		t.Fatal(err)
	}
	if wt != opt {
		t.Fatalf("W(T)=%d optimal=%d", wt, opt)
	}
}
