package postorder

import (
	"math/rand"
	"testing"

	"repro/internal/liu"
	"repro/internal/memsim"
	"repro/internal/tree"
)

func TestMinIOPredictionMatchesSimulation(t *testing.T) {
	// V_root is, by construction, the FiF I/O volume of the returned
	// postorder; cross-check against the independent simulator.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 400; trial++ {
		tr := randomTree(1+rng.Intn(30), rng)
		lb := tr.MaxWBar()
		_, peak := liu.PostOrderMinMem(tr)
		for _, M := range []int64{lb, (lb + peak) / 2, peak} {
			if M < lb {
				continue
			}
			sched, predicted, an := MinIO(tr, M)
			if !tree.IsPostorder(tr, sched) {
				t.Fatalf("trial %d: not a postorder", trial)
			}
			io, err := memsim.IOOf(tr, M, sched)
			if err != nil {
				t.Fatal(err)
			}
			if io != predicted {
				t.Fatalf("trial %d M=%d: predicted V=%d simulated %d (parents=%v weights=%v)",
					trial, M, predicted, io, tr.Parents(), tr.Weights())
			}
			// S of the root is the postorder's in-core peak.
			simPeak, err := memsim.Peak(tr, sched)
			if err != nil {
				t.Fatal(err)
			}
			if an.S[tr.Root()] != simPeak {
				t.Fatalf("trial %d: S_root=%d simulated peak=%d", trial, an.S[tr.Root()], simPeak)
			}
		}
	}
}

func TestMinIOZeroWhenFits(t *testing.T) {
	tr := tree.Graft(1, tree.Chain(3, 5, 2, 6), tree.Chain(3, 5, 2, 6))
	_, peak := liu.PostOrderMinMem(tr)
	_, v, _ := MinIO(tr, peak)
	if v != 0 {
		t.Fatalf("V=%d at M=postorder peak", v)
	}
}

func TestMinIOBeatsOtherPostordersExhaustively(t *testing.T) {
	// Theorem 3 ⇒ the A−w ordering is optimal among postorders; verify
	// against all child permutations on small trees.
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 80; trial++ {
		tr := randomTree(1+rng.Intn(7), rng)
		lb := tr.MaxWBar()
		_, peak := liu.PostOrderMinMem(tr)
		if peak <= lb {
			continue
		}
		M := (lb + peak) / 2
		_, got, _ := MinIO(tr, M)
		best := bestPostorderIO(t, tr, M)
		if got != best {
			t.Fatalf("trial %d: MinIO %d but best postorder %d (M=%d parents=%v weights=%v)",
				trial, got, best, M, tr.Parents(), tr.Weights())
		}
	}
}

func bestPostorderIO(t *testing.T, tr *tree.Tree, M int64) int64 {
	t.Helper()
	perms := func(xs []int) [][]int {
		if len(xs) == 0 {
			return [][]int{{}}
		}
		var out [][]int
		var rec func(cur, rest []int)
		rec = func(cur, rest []int) {
			if len(rest) == 0 {
				out = append(out, append([]int(nil), cur...))
				return
			}
			for i := range rest {
				next := append(append([]int(nil), rest[:i]...), rest[i+1:]...)
				rec(append(cur, rest[i]), next)
			}
		}
		rec(nil, xs)
		return out
	}
	nodes := tr.TopDown()
	choice := make([][][]int, tr.N())
	for _, v := range nodes {
		choice[v] = perms(tr.Children(v))
	}
	idx := make([]int, tr.N())
	var best int64 = 1 << 62
	var walk func(k int)
	walk = func(k int) {
		if k == len(nodes) {
			var sched tree.Schedule
			var emit func(v int)
			emit = func(v int) {
				for _, c := range choice[v][idx[v]] {
					emit(c)
				}
				sched = append(sched, v)
			}
			emit(tr.Root())
			io, err := memsim.IOOf(tr, M, sched)
			if err != nil {
				t.Fatal(err)
			}
			if io < best {
				best = io
			}
			return
		}
		v := nodes[k]
		for i := range choice[v] {
			idx[v] = i
			walk(k + 1)
		}
	}
	walk(0)
	return best
}

func randomTree(n int, rng *rand.Rand) *tree.Tree {
	parent := make([]int, n)
	weight := make([]int64, n)
	parent[0] = tree.None
	weight[0] = 1 + rng.Int63n(12)
	for i := 1; i < n; i++ {
		parent[i] = rng.Intn(i)
		weight[i] = 1 + rng.Int63n(12)
	}
	return tree.MustNew(parent, weight)
}
