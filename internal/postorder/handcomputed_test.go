package postorder

import (
	"testing"

	"repro/internal/tree"
)

// Hand-computed S/A/V values for the Figure 2(b) tree at M = 6.
func TestAnalysisValuesFig2b(t *testing.T) {
	tr := tree.Graft(1, tree.Chain(3, 5, 2, 6), tree.Chain(3, 5, 2, 6))
	_, v, an := MinIO(tr, 6)
	// Per chain (nodes top-down 1,2,3,4): S(leaf)=6; S(2-node)=
	// max(2, 6)=6; S(5-node)=max(5, 6)=6; S(3-node)=max(3, 6)=6.
	for _, chainTop := range []int{1, 5} {
		for off := 0; off < 4; off++ {
			if got := an.S[chainTop+off]; got != 6 {
				t.Fatalf("S[%d]=%d want 6", chainTop+off, got)
			}
			if got := an.A[chainTop+off]; got != 6 {
				t.Fatalf("A[%d]=%d want 6", chainTop+off, got)
			}
			if got := an.V[chainTop+off]; got != 0 {
				t.Fatalf("V[%d]=%d want 0 (each chain alone fits)", chainTop+off, got)
			}
		}
	}
	// Root: children both have A=6, w=3; sorted by A−w they tie.
	// S = max(1, max(6+0, 6+3)) = 9; A = min(6, 9) = 6;
	// V = max(0, max(6+0, 6+3) − 6) = 3.
	root := tr.Root()
	if an.S[root] != 9 || an.A[root] != 6 || an.V[root] != 3 || v != 3 {
		t.Fatalf("root S=%d A=%d V=%d (want 9/6/3)", an.S[root], an.A[root], an.V[root])
	}
}

// Hand-computed labels for a small homogeneous tree at M = 2:
//
//	root ─ a ─ leaf1
//	    └─ b ─ leaf2
//
// l(leaf)=1, l(a)=l(b)=1, l(root)=max(1+0, 1+1)=2.
func TestHomLabelsHandComputed(t *testing.T) {
	tr := tree.MustNew([]int{tree.None, 0, 0, 1, 2}, []int64{1, 1, 1, 1, 1})
	h, err := ComputeHomLabels(tr, 2)
	if err != nil {
		t.Fatal(err)
	}
	if h.L[3] != 1 || h.L[1] != 1 || h.L[0] != 2 {
		t.Fatalf("l = %v", h.L)
	}
	// With M=2: processing the second child subtree needs l=1 plus the
	// first child's retained unit = 2 ≤ M, so nothing is stored.
	if h.WT(tr, tr.Root()) != 0 {
		t.Fatalf("W(T)=%d want 0", h.WT(tr, tr.Root()))
	}
	// With M=2 on a wider tree (three unit-chains), the third child
	// would need l + 2 = 3 > 2: exactly one unit is stored.
	tr3 := tree.MustNew([]int{tree.None, 0, 0, 0, 1, 2, 3}, []int64{1, 1, 1, 1, 1, 1, 1})
	// LB: w̄(root) = 3 > 2, so use M = 3: third child needs 1+2 = 3 ≤ 3:
	// still zero.
	h3, err := ComputeHomLabels(tr3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if h3.WT(tr3, tr3.Root()) != 0 {
		t.Fatalf("W(T)=%d want 0 at M=3", h3.WT(tr3, tr3.Root()))
	}
	// l(root) = max(1+0, 1+1, 1+2) = 3 > M would force storing: check
	// the labels directly at the root.
	if h3.L[tr3.Root()] != 3 {
		t.Fatalf("l(root)=%d want 3", h3.L[tr3.Root()])
	}
}
