package oocexec

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/liu"
	"repro/internal/memsim"
	"repro/internal/randtree"
	"repro/internal/tree"
)

// hashCompute is a deterministic "factorization": every output byte mixes
// the node id with all input bytes, so any lost or reordered spill bytes
// change the root output.
func hashCompute(t *tree.Tree, unit int) Compute {
	return func(node int, inputs map[int][]byte) ([]byte, error) {
		var acc uint64 = 1469598103934665603
		mix := func(b byte) {
			acc ^= uint64(b)
			acc *= 1099511628211
		}
		mix(byte(node))
		// Deterministic input order: by child id as stored in the tree.
		for _, c := range t.Children(node) {
			buf, ok := inputs[c]
			if !ok {
				return nil, fmt.Errorf("missing input %d", c)
			}
			mix(byte(c))
			for _, b := range buf {
				mix(b)
			}
		}
		out := make([]byte, t.Weight(node)*int64(unit))
		for i := range out {
			mix(byte(i))
			out[i] = byte(acc >> 32)
		}
		return out, nil
	}
}

func synth(n int, seed int64) *tree.Tree {
	return randtree.Synth(n, rand.New(rand.NewSource(seed)))
}

func TestExecuteMatchesInCoreRun(t *testing.T) {
	const unit = 16
	for _, seed := range []int64{1, 2, 3} {
		tr := synth(60, seed)
		sched, peak := liu.MinMem(tr)
		f := hashCompute(tr, unit)
		// In-core reference.
		want, st, err := Execute(tr, peak, sched, Config{UnitSize: unit}, f)
		if err != nil {
			t.Fatal(err)
		}
		if st.UnitsWritten != 0 {
			t.Fatalf("in-core run spilled %d units", st.UnitsWritten)
		}
		// Out-of-core at several bounds, both stores.
		lb := tr.MaxWBar()
		for _, M := range []int64{lb, (lb + peak) / 2, peak - 1} {
			if M < lb {
				continue
			}
			for _, dir := range []string{"", t.TempDir()} {
				got, st, err := Execute(tr, M, sched, Config{UnitSize: unit, SpillDir: dir}, f)
				if err != nil {
					t.Fatalf("seed=%d M=%d dir=%q: %v", seed, M, dir, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("seed=%d M=%d dir=%q: out-of-core result differs", seed, M, dir)
				}
				if st.UnitsRead != st.UnitsWritten {
					t.Fatalf("reads %d ≠ writes %d", st.UnitsRead, st.UnitsWritten)
				}
				if st.BytesWritten != st.UnitsWritten*unit {
					t.Fatalf("byte accounting")
				}
			}
		}
	}
}

func TestExecuteSpillVolumeMatchesPlanner(t *testing.T) {
	// The executor's realized spill volume must equal the simulator's
	// FiF τ total: both implement the same policy.
	for _, seed := range []int64{4, 5, 6, 7} {
		tr := synth(80, seed)
		sched, peak := liu.MinMem(tr)
		lb := tr.MaxWBar()
		if peak <= lb {
			continue
		}
		M := (lb + peak) / 2
		plan, err := memsim.Run(tr, M, sched, memsim.FiF)
		if err != nil {
			t.Fatal(err)
		}
		_, st, err := Execute(tr, M, sched, Config{UnitSize: 8}, hashCompute(tr, 8))
		if err != nil {
			t.Fatal(err)
		}
		if st.UnitsWritten != plan.IO {
			t.Fatalf("seed=%d: executor spilled %d units, planner predicted %d",
				seed, st.UnitsWritten, plan.IO)
		}
		if st.PeakResidentUnits > M {
			t.Fatalf("seed=%d: peak resident %d exceeds M=%d", seed, st.PeakResidentUnits, M)
		}
	}
}

func TestExecuteErrors(t *testing.T) {
	tr := tree.Graft(1, tree.Chain(3, 5), tree.Chain(3, 5))
	sched, _ := liu.MinMem(tr)
	f := hashCompute(tr, 4)
	if _, _, err := Execute(tr, 4, sched, Config{UnitSize: 4}, f); err == nil {
		t.Error("M below w̄ accepted")
	}
	if _, _, err := Execute(tr, 8, tree.Schedule{0, 1, 2, 3, 4}, Config{}, f); err == nil {
		t.Error("non-topological schedule accepted")
	}
	bad := func(node int, inputs map[int][]byte) ([]byte, error) {
		return nil, fmt.Errorf("boom")
	}
	if _, _, err := Execute(tr, 8, sched, Config{UnitSize: 4}, bad); err == nil {
		t.Error("compute error swallowed")
	}
	short := func(node int, inputs map[int][]byte) ([]byte, error) {
		return []byte{1}, nil
	}
	if _, _, err := Execute(tr, 8, sched, Config{UnitSize: 4}, short); err == nil {
		t.Error("wrong output size accepted")
	}
}

func TestExecuteParallelMatchesSequential(t *testing.T) {
	const unit = 8
	for _, seed := range []int64{8, 9} {
		tr := synth(100, seed)
		sched, peak := liu.MinMem(tr)
		lb := tr.MaxWBar()
		f := hashCompute(tr, unit)
		want, _, err := Execute(tr, peak, sched, Config{UnitSize: unit}, f)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			for _, M := range []int64{lb, (lb + peak) / 2, peak + 50} {
				if M < lb {
					continue
				}
				got, st, err := ExecuteParallel(tr, M, sched, workers, Config{UnitSize: unit}, f)
				if err != nil {
					t.Fatalf("seed=%d workers=%d M=%d: %v", seed, workers, M, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("seed=%d workers=%d M=%d: result differs", seed, workers, M)
				}
				if st.PeakResidentUnits > M {
					t.Fatalf("seed=%d workers=%d: peak %d exceeds M=%d", seed, workers, st.PeakResidentUnits, M)
				}
				if st.UnitsRead != st.UnitsWritten {
					t.Fatalf("reads %d ≠ writes %d", st.UnitsRead, st.UnitsWritten)
				}
			}
		}
	}
}

func TestExecuteParallelFileStore(t *testing.T) {
	tr := synth(60, 10)
	sched, peak := liu.MinMem(tr)
	lb := tr.MaxWBar()
	if peak <= lb {
		t.Skip("no pressure")
	}
	f := hashCompute(tr, 8)
	want, _, err := Execute(tr, peak, sched, Config{UnitSize: 8}, f)
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := ExecuteParallel(tr, lb, sched, 4, Config{UnitSize: 8, SpillDir: t.TempDir()}, f)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("result differs")
	}
	if st.UnitsWritten == 0 {
		t.Fatal("expected spilling at M=LB")
	}
}

func TestExecuteParallelErrors(t *testing.T) {
	tr := tree.Graft(1, tree.Chain(3, 5), tree.Chain(3, 5))
	sched, _ := liu.MinMem(tr)
	f := hashCompute(tr, 4)
	if _, _, err := ExecuteParallel(tr, 4, sched, 2, Config{UnitSize: 4}, f); err == nil {
		t.Error("M below LB accepted")
	}
	bad := func(node int, inputs map[int][]byte) ([]byte, error) {
		return nil, fmt.Errorf("boom %d", node)
	}
	if _, _, err := ExecuteParallel(tr, 8, sched, 3, Config{UnitSize: 4}, bad); err == nil {
		t.Error("compute error swallowed")
	}
}

func TestStoreChunkOrder(t *testing.T) {
	for _, mk := range []func() spillStore{
		func() spillStore { return &memStore{chunks: map[int][][]byte{}} },
		func() spillStore {
			s, err := newStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
	} {
		s := mk()
		// Evictions cut suffixes back to front: [6,9) first, then [2,6).
		if err := s.write(5, []byte{6, 7, 8}); err != nil {
			t.Fatal(err)
		}
		if err := s.write(5, []byte{2, 3, 4, 5}); err != nil {
			t.Fatal(err)
		}
		got, err := s.read(5)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, []byte{2, 3, 4, 5, 6, 7, 8}) {
			t.Fatalf("reassembled %v", got)
		}
		if _, err := s.read(5); err == nil {
			t.Error("double read accepted")
		}
		if _, err := s.read(99); err == nil {
			t.Error("read of unspilled node accepted")
		}
		if err := s.cleanup(); err != nil {
			t.Fatal(err)
		}
	}
}
