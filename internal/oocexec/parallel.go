package oocexec

import (
	"fmt"
	"sync"

	"repro/internal/tree"
)

// ExecuteParallel runs the tree with up to workers concurrent tasks under
// a shared memory budget of M units, spilling completed outputs with the
// Furthest-in-Future rule relative to the given plan (any topological
// schedule; it provides both the eviction order and the admission
// priority). Parallel processing of task trees under bounded memory is the
// motivation the paper states for the sequential MinIO study (Section 1);
// this executor gives the library a practical tree-parallel runtime whose
// realized I/O can be compared against the sequential plan's.
//
// Memory accounting: each completed output occupies its (non-spilled)
// units; each running task additionally reserves w̄(task). A ready task is
// admitted when, after evicting completed outputs not needed by running
// tasks, the reservation fits in M. When nothing runs, any single ready
// task fits (M ≥ LB), so progress is always possible and the executor
// never deadlocks.
func ExecuteParallel(t *tree.Tree, M int64, plan tree.Schedule, workers int, cfg Config, f Compute) ([]byte, Stats, error) {
	var stats Stats
	n := t.N()
	pos, err := plan.Positions(n)
	if err != nil {
		return nil, stats, err
	}
	if err := tree.Validate(t, plan); err != nil {
		return nil, stats, err
	}
	if lb := t.MaxWBar(); M < lb {
		return nil, stats, fmt.Errorf("oocexec: M=%d below LB=%d", M, lb)
	}
	if workers < 1 {
		workers = 1
	}
	unit := cfg.unitSize()
	store, err := newStore(cfg.SpillDir)
	if err != nil {
		return nil, stats, err
	}
	defer store.cleanup()

	var (
		mu        sync.Mutex
		cond      = sync.NewCond(&mu)
		resident  = make([][]byte, n) // in-memory prefix of completed outputs
		spilled   = make([]int64, n)  // spilled units per completed output
		remaining = make([]int, n)    // unfinished children count
		running   = make([]bool, n)
		done      = make([]bool, n)
		ledger    int64 // resident output units + Σ w̄ of running tasks
		pending   = n
		active    = 0
		firstErr  error
		rootOut   []byte
	)
	for i := 0; i < n; i++ {
		remaining[i] = t.NumChildren(i)
	}

	// evictable reports the units currently evictable: completed outputs
	// whose parent is neither running nor done, beyond what is spilled.
	// evictFor frees memory until free ≥ need, preferring outputs whose
	// parent is scheduled latest in the plan. Called with mu held.
	evictFor := func(need int64) error {
		for ledger+need > M {
			victim, victimKey := -1, int64(-1)
			for i := 0; i < n; i++ {
				if !done[i] || len(resident[i]) == 0 {
					continue
				}
				p := t.Parent(i)
				if p == tree.None || running[p] || done[p] {
					continue // being consumed or root output
				}
				if key := int64(pos[p]); key > victimKey {
					victim, victimKey = i, key
				}
			}
			if victim < 0 {
				return fmt.Errorf("oocexec: overflow with nothing evictable (ledger=%d need=%d M=%d)", ledger, need, M)
			}
			have := int64(len(resident[victim])) / int64(unit)
			take := ledger + need - M
			if take > have {
				take = have
			}
			cut := int64(len(resident[victim])) - take*int64(unit)
			if err := store.write(victim, resident[victim][cut:]); err != nil {
				return err
			}
			resident[victim] = resident[victim][:cut:cut]
			spilled[victim] += take
			ledger -= take
			stats.UnitsWritten += take
			stats.BytesWritten += take * int64(unit)
			stats.Spills++
		}
		return nil
	}

	// pick returns an admissible ready task (lowest plan position first)
	// or -1. Called with mu held.
	pick := func() (int, error) {
		best := -1
		for i := 0; i < n; i++ {
			if done[i] || running[i] || remaining[i] != 0 {
				continue
			}
			if best == -1 || pos[i] < pos[best] {
				best = i
			}
		}
		if best == -1 {
			return -1, nil
		}
		// The reservation replaces the children's resident footprint.
		var childResident int64
		for _, c := range t.Children(best) {
			childResident += int64(len(resident[c])) / int64(unit)
		}
		need := t.WBar(best) - childResident
		evictableUnits := int64(0)
		for i := 0; i < n; i++ {
			if done[i] && len(resident[i]) > 0 {
				p := t.Parent(i)
				if p != tree.None && !running[p] && p != best && !done[p] {
					evictableUnits += int64(len(resident[i])) / int64(unit)
				}
			}
		}
		if ledger+need > M+evictableUnits {
			if active > 0 {
				return -1, nil // wait for a completion
			}
			// Nothing running: children are resident (counted in need
			// via w̄) and everything else is evictable, so this must
			// fit; a failure here is a real invariant violation.
		}
		// Mark running first so evictFor never victimizes the children
		// we are about to consume, then swap the children's footprint
		// for the w̄ reservation.
		running[best] = true
		for _, c := range t.Children(best) {
			ledger -= int64(len(resident[c])) / int64(unit)
		}
		if err := evictFor(t.WBar(best)); err != nil {
			return -1, err
		}
		ledger += t.WBar(best)
		if ledger > stats.PeakResidentUnits {
			stats.PeakResidentUnits = ledger
		}
		return best, nil
	}

	// materialize collects the children buffers of v (reading back any
	// spilled parts). Called with mu held; store reads happen under the
	// lock, which keeps the accounting exact at the cost of serializing
	// reads (acceptable: reads are on the critical path anyway).
	materialize := func(v int) (map[int][]byte, error) {
		inputs := make(map[int][]byte, t.NumChildren(v))
		for _, c := range t.Children(v) {
			buf := resident[c]
			if spilled[c] > 0 {
				back, err := store.read(c)
				if err != nil {
					return nil, err
				}
				buf = append(append(make([]byte, 0, t.Weight(c)*int64(unit)), buf...), back...)
				stats.UnitsRead += spilled[c]
				stats.BytesRead += spilled[c] * int64(unit)
				stats.Reads++
				spilled[c] = 0
			}
			if got, want := int64(len(buf)), t.Weight(c)*int64(unit); got != want {
				return nil, fmt.Errorf("oocexec: child %d reassembled to %d bytes, want %d", c, got, want)
			}
			resident[c] = nil
			inputs[c] = buf
		}
		return inputs, nil
	}

	var wg sync.WaitGroup
	worker := func() {
		defer wg.Done()
		for {
			mu.Lock()
			for {
				if firstErr != nil || pending == 0 {
					mu.Unlock()
					cond.Broadcast()
					return
				}
				v, err := pick()
				if err != nil {
					firstErr = err
					mu.Unlock()
					cond.Broadcast()
					return
				}
				if v >= 0 {
					inputs, err := materialize(v)
					if err != nil {
						firstErr = err
						mu.Unlock()
						cond.Broadcast()
						return
					}
					active++
					mu.Unlock()
					out, err := f(v, inputs)
					mu.Lock()
					active--
					if err == nil {
						if got, want := int64(len(out)), t.Weight(v)*int64(unit); got != want {
							err = fmt.Errorf("oocexec: task %d produced %d bytes, want %d", v, got, want)
						}
					}
					if err != nil && firstErr == nil {
						firstErr = err
					}
					if firstErr != nil {
						mu.Unlock()
						cond.Broadcast()
						return
					}
					// Release the reservation; keep the output and
					// make the parent ready once its last child is in.
					ledger -= t.WBar(v)
					running[v] = false
					done[v] = true
					pending--
					if p := t.Parent(v); p == tree.None {
						rootOut = out
					} else {
						resident[v] = out
						ledger += t.Weight(v)
						remaining[p]--
					}
					cond.Broadcast()
					continue
				}
				cond.Wait()
			}
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go worker()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, stats, firstErr
	}
	if rootOut == nil {
		return nil, stats, fmt.Errorf("oocexec: finished without a root output")
	}
	return rootOut, stats, nil
}
