package oocexec

// evictHeap is an indexed min-heap of node ids by int64 key; with the key
// set to the negated schedule position of a node's parent, the minimum is
// the Furthest-in-the-Future eviction victim. (A sibling of the planner's
// heap in internal/memsim; kept separate so the executor has no dependency
// on the simulator.)
type evictHeap struct {
	ids  []int
	keys []int64
	pos  map[int]int
}

func (h *evictHeap) push(id int, key int64) {
	if h.pos == nil {
		h.pos = make(map[int]int)
	}
	if _, ok := h.pos[id]; ok {
		panic("oocexec: node pushed twice")
	}
	h.ids = append(h.ids, id)
	h.keys = append(h.keys, key)
	h.pos[id] = len(h.ids) - 1
	h.up(len(h.ids) - 1)
}

func (h *evictHeap) peek() int {
	if len(h.ids) == 0 {
		return -1
	}
	return h.ids[0]
}

func (h *evictHeap) remove(id int) {
	i, ok := h.pos[id]
	if !ok {
		return // tolerated: zero-weight nodes are never pushed
	}
	last := len(h.ids) - 1
	h.swap(i, last)
	h.ids = h.ids[:last]
	h.keys = h.keys[:last]
	delete(h.pos, id)
	if i < last {
		h.down(i)
		h.up(i)
	}
}

func (h *evictHeap) swap(i, j int) {
	h.ids[i], h.ids[j] = h.ids[j], h.ids[i]
	h.keys[i], h.keys[j] = h.keys[j], h.keys[i]
	h.pos[h.ids[i]] = i
	h.pos[h.ids[j]] = j
}

func (h *evictHeap) less(i, j int) bool {
	if h.keys[i] != h.keys[j] {
		return h.keys[i] < h.keys[j]
	}
	return h.ids[i] < h.ids[j]
}

func (h *evictHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.swap(i, p)
		i = p
	}
}

func (h *evictHeap) down(i int) {
	n := len(h.ids)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.less(l, small) {
			small = l
		}
		if r < n && h.less(r, small) {
			small = r
		}
		if small == i {
			return
		}
		h.swap(i, small)
		i = small
	}
}
