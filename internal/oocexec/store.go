package oocexec

import (
	"fmt"
	"os"
	"path/filepath"
)

// spillStore persists evicted data. Evictions cut suffixes off a node's
// buffer, so chunks for one node arrive in back-to-front order; read
// returns them re-concatenated front-to-back (reverse append order) and
// discards them.
type spillStore interface {
	write(node int, data []byte) error
	read(node int) ([]byte, error)
	cleanup() error
}

func newStore(dir string) (spillStore, error) {
	if dir == "" {
		return &memStore{chunks: map[int][][]byte{}}, nil
	}
	tmp, err := os.MkdirTemp(dir, "oocspill-*")
	if err != nil {
		return nil, fmt.Errorf("oocexec: creating spill dir: %w", err)
	}
	return &fileStore{dir: tmp, sizes: map[int][]int{}}, nil
}

// memStore keeps chunks in memory; it is the default for tests and for
// callers who only want the accounting.
type memStore struct {
	chunks map[int][][]byte
}

func (s *memStore) write(node int, data []byte) error {
	cp := append([]byte(nil), data...)
	s.chunks[node] = append(s.chunks[node], cp)
	return nil
}

func (s *memStore) read(node int) ([]byte, error) {
	cs := s.chunks[node]
	if len(cs) == 0 {
		return nil, fmt.Errorf("oocexec: nothing spilled for node %d", node)
	}
	var out []byte
	for i := len(cs) - 1; i >= 0; i-- {
		out = append(out, cs[i]...)
	}
	delete(s.chunks, node)
	return out, nil
}

func (s *memStore) cleanup() error {
	s.chunks = map[int][][]byte{}
	return nil
}

// fileStore appends each node's chunks to one file per node under a
// temporary directory and remembers the chunk sizes for reassembly.
type fileStore struct {
	dir   string
	sizes map[int][]int
}

func (s *fileStore) path(node int) string {
	return filepath.Join(s.dir, fmt.Sprintf("node-%d.spill", node))
}

func (s *fileStore) write(node int, data []byte) error {
	f, err := os.OpenFile(s.path(node), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write(data); err != nil {
		return err
	}
	s.sizes[node] = append(s.sizes[node], len(data))
	return f.Sync()
}

func (s *fileStore) read(node int) ([]byte, error) {
	sizes := s.sizes[node]
	if len(sizes) == 0 {
		return nil, fmt.Errorf("oocexec: nothing spilled for node %d", node)
	}
	raw, err := os.ReadFile(s.path(node))
	if err != nil {
		return nil, err
	}
	total := 0
	for _, sz := range sizes {
		total += sz
	}
	if total != len(raw) {
		return nil, fmt.Errorf("oocexec: spill file for node %d has %d bytes, want %d", node, len(raw), total)
	}
	out := make([]byte, 0, total)
	off := total
	for i := len(sizes) - 1; i >= 0; i-- {
		off -= sizes[i]
		out = append(out, raw[off:off+sizes[i]]...)
	}
	delete(s.sizes, node)
	if err := os.Remove(s.path(node)); err != nil {
		return nil, err
	}
	return out, nil
}

func (s *fileStore) cleanup() error {
	return os.RemoveAll(s.dir)
}
