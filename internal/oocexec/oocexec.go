// Package oocexec is the out-of-core execution engine: it takes a task
// tree, a memory bound and a schedule produced by any of the scheduling
// algorithms, and actually runs the computation with real byte buffers,
// paging data to a spill store (a directory of files, or memory for tests)
// exactly as the planner's Furthest-in-Future policy prescribes.
//
// The engine enforces the paper's model at byte granularity: one weight
// unit of a task's output is Config.UnitSize bytes; executing a task needs
// all children outputs materialized plus its own output buffer, within
// M·UnitSize bytes of resident data; evictions write the tail of the
// victim's buffer to the spill store and release that memory. On
// completion it reports the exact volumes moved, which the tests check
// against the planner's predicted τ.
package oocexec

import (
	"fmt"

	"repro/internal/tree"
)

// Compute produces the output data of a task from its children's outputs.
// The returned slice must be exactly Weight(node)·UnitSize bytes. Inputs
// are keyed by child node id and must not be retained.
type Compute func(node int, inputs map[int][]byte) ([]byte, error)

// Config tunes the executor.
type Config struct {
	// UnitSize is the number of bytes per weight unit (default 64).
	UnitSize int
	// SpillDir is the directory for spill files; empty means an
	// in-memory store (useful in tests and benchmarks).
	SpillDir string
}

func (c Config) unitSize() int {
	if c.UnitSize <= 0 {
		return 64
	}
	return c.UnitSize
}

// Stats reports the actual data movement of an execution.
type Stats struct {
	// UnitsWritten is the total volume written to the spill store in
	// weight units (the realized Σ τ).
	UnitsWritten int64
	// UnitsRead is the total volume read back (equal to UnitsWritten:
	// everything spilled is eventually consumed by a parent).
	UnitsRead int64
	// BytesWritten and BytesRead are the same volumes in bytes.
	BytesWritten, BytesRead int64
	// Spills and Reads count the store operations.
	Spills, Reads int
	// PeakResidentUnits is the maximum resident volume observed,
	// including the executing task's w̄.
	PeakResidentUnits int64
}

// Execute runs the tree under memory bound M (in units) following sched,
// evicting with the Furthest-in-Future policy. It returns the root's
// output and the realized data-movement statistics.
func Execute(t *tree.Tree, M int64, sched tree.Schedule, cfg Config, f Compute) ([]byte, Stats, error) {
	var stats Stats
	n := t.N()
	pos, err := sched.Positions(n)
	if err != nil {
		return nil, stats, err
	}
	if err := tree.Validate(t, sched); err != nil {
		return nil, stats, err
	}
	unit := cfg.unitSize()
	store, err := newStore(cfg.SpillDir)
	if err != nil {
		return nil, stats, err
	}
	defer store.cleanup()

	// resident[i] holds the in-memory prefix of i's output; the spilled
	// suffix lives in the store.
	resident := make([][]byte, n)
	spilled := make([]int64, n) // units of i currently in the store
	var residentUnits int64

	h := &evictHeap{}
	evict := func(need int64) error {
		for residentUnits+need > M {
			victim := h.peek()
			if victim < 0 {
				return fmt.Errorf("oocexec: memory overflow with nothing evictable")
			}
			have := int64(len(resident[victim])) / int64(unit)
			take := residentUnits + need - M
			if take > have {
				take = have
			}
			cut := int64(len(resident[victim])) - take*int64(unit)
			if err := store.write(victim, resident[victim][cut:]); err != nil {
				return err
			}
			resident[victim] = resident[victim][:cut:cut]
			spilled[victim] += take
			residentUnits -= take
			stats.UnitsWritten += take
			stats.BytesWritten += take * int64(unit)
			stats.Spills++
			if len(resident[victim]) == 0 {
				h.remove(victim)
			}
		}
		return nil
	}

	for _, v := range sched {
		// Materialize the children: read back any spilled suffixes.
		// The children's full sizes are accounted inside w̄(v), and
		// their resident parts leave the "other residents" pool now.
		inputs := make(map[int][]byte, t.NumChildren(v))
		for _, c := range t.Children(v) {
			residentUnits -= int64(len(resident[c])) / int64(unit)
			if len(resident[c]) > 0 && spilled[c] == 0 {
				inputs[c] = resident[c]
				resident[c] = nil
				h.remove(c)
				continue
			}
			buf := make([]byte, 0, t.Weight(c)*int64(unit))
			buf = append(buf, resident[c]...)
			if spilled[c] > 0 {
				back, err := store.read(c)
				if err != nil {
					return nil, stats, err
				}
				buf = append(buf, back...)
				stats.UnitsRead += spilled[c]
				stats.BytesRead += spilled[c] * int64(unit)
				stats.Reads++
				spilled[c] = 0
			}
			if got := int64(len(buf)); got != t.Weight(c)*int64(unit) {
				return nil, stats, fmt.Errorf("oocexec: child %d reassembled to %d bytes, want %d",
					c, got, t.Weight(c)*int64(unit))
			}
			if len(resident[c]) > 0 {
				h.remove(c)
			}
			resident[c] = nil
			inputs[c] = buf
		}
		need := t.WBar(v)
		if need > M {
			return nil, stats, fmt.Errorf("oocexec: task %d needs w̄=%d > M=%d", v, need, M)
		}
		if err := evict(need); err != nil {
			return nil, stats, err
		}
		if peak := residentUnits + need; peak > stats.PeakResidentUnits {
			stats.PeakResidentUnits = peak
		}
		out, err := f(v, inputs)
		if err != nil {
			return nil, stats, fmt.Errorf("oocexec: task %d: %w", v, err)
		}
		if got, want := int64(len(out)), t.Weight(v)*int64(unit); got != want {
			return nil, stats, fmt.Errorf("oocexec: task %d produced %d bytes, want %d", v, got, want)
		}
		if t.Parent(v) == tree.None {
			return out, stats, nil
		}
		resident[v] = out
		residentUnits += t.Weight(v)
		if t.Weight(v) > 0 {
			// FiF: evict first the node whose parent runs last.
			h.push(v, -int64(pos[t.Parent(v)]))
		}
	}
	return nil, stats, fmt.Errorf("oocexec: schedule ended without executing the root")
}
