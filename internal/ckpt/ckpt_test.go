package ckpt

import (
	"encoding/binary"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sampleState builds a representative state with a multi-record log.
func sampleState(exps int) *State {
	st := &State{
		FP: Fingerprint{
			TreeHash:   0xdeadbeefcafef00d,
			N:          1234,
			M:          98765,
			MaxPerNode: 2,
			Victim:     1,
			GlobalCap:  64*1234 + 1024,
		},
		Cursor:     17,
		CurIters:   1,
		Phase:      PhaseExpand,
		CapHit:     false,
		EmittedIDs: 0,
	}
	for i := 0; i < exps; i++ {
		st.Exps = append(st.Exps, Exp{Victim: i * 3 % 1234, Amount: int64(1 + i%97)})
	}
	return st
}

func TestCkptRoundTrip(t *testing.T) {
	for _, exps := range []int{0, 1, 5, maxExpsPerRecord + 3} {
		st := sampleState(exps)
		st.Phase = PhaseFinish
		st.CapHit = true
		st.EmittedIDs = 42424242
		dir := t.TempDir()
		path := filepath.Join(dir, "run.ckpt")
		if err := WriteFile(path, st); err != nil {
			t.Fatalf("exps=%d: write: %v", exps, err)
		}
		got, err := ReadFile(path)
		if err != nil {
			t.Fatalf("exps=%d: read: %v", exps, err)
		}
		if got.FP != st.FP || got.Cursor != st.Cursor || got.CurIters != st.CurIters ||
			got.Phase != st.Phase || got.CapHit != st.CapHit || got.EmittedIDs != st.EmittedIDs {
			t.Fatalf("exps=%d: scalar fields diverge:\ngot  %+v\nwant %+v", exps, got, st)
		}
		if len(got.Exps) != len(st.Exps) {
			t.Fatalf("exps=%d: log length %d, want %d", exps, len(got.Exps), len(st.Exps))
		}
		for i := range got.Exps {
			if got.Exps[i] != st.Exps[i] {
				t.Fatalf("exps=%d: log entry %d = %+v, want %+v", exps, i, got.Exps[i], st.Exps[i])
			}
		}
		if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("exps=%d: temp file left behind", exps)
		}
	}
}

// TestCkptRoundTripStream covers the io.Reader entry point.
func TestCkptRoundTripStream(t *testing.T) {
	st := sampleState(9)
	got, err := Read(strings.NewReader(string(Encode(st))))
	if err != nil {
		t.Fatal(err)
	}
	if got.FP != st.FP || len(got.Exps) != 9 {
		t.Fatalf("stream roundtrip diverges: %+v", got)
	}
}

// TestCkptCorruptionEveryByte is the satellite's contract: flipping any
// single byte of a valid checkpoint must yield a typed ErrCorrupt (or, for
// the one field that legitimately means "other version", ErrVersion) and
// never a panic or a silently different state.
func TestCkptCorruptionEveryByte(t *testing.T) {
	data := Encode(sampleState(25))
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x5a
		st, err := Decode(mut)
		if err == nil {
			t.Fatalf("byte %d: corruption accepted (state %+v)", i, st)
		}
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
			t.Fatalf("byte %d: error %v is neither ErrCorrupt nor ErrVersion", i, err)
		}
	}
}

// TestCkptTruncationEveryLength feeds every strict prefix of a valid file:
// all must be rejected as corrupt (the cursor record is the commit point,
// so no prefix is a valid checkpoint).
func TestCkptTruncationEveryLength(t *testing.T) {
	data := Encode(sampleState(10))
	for n := 0; n < len(data); n++ {
		if _, err := Decode(data[:n]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("prefix of %d bytes: err = %v, want ErrCorrupt", n, err)
		}
	}
}

// TestCkptVersionBumpRejected hand-crafts a well-formed checkpoint whose
// header declares Version+1 — valid CRCs, valid framing — and demands the
// typed ErrVersion, not ErrCorrupt: this is the forward-compat rejection
// path, distinct from damage.
func TestCkptVersionBumpRejected(t *testing.T) {
	var p []byte
	p = append(p, recHeader)
	p = append(p, magic...)
	p = binary.AppendUvarint(p, Version+1)
	p = binary.AppendUvarint(p, 1) // tree hash
	for i := 0; i < 5; i++ {
		p = binary.AppendVarint(p, 1)
	}
	data := appendRecord(nil, p)
	p = p[:0]
	p = append(p, recCursor, byte(PhaseExpand), 0)
	for i := 0; i < 4; i++ {
		p = binary.AppendUvarint(p, 0)
	}
	data = appendRecord(data, p)

	_, err := Decode(data)
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("version-bumped file: err = %v, want ErrVersion", err)
	}
	if errors.Is(err, ErrCorrupt) {
		t.Fatalf("version skew must not read as corruption: %v", err)
	}
}

// TestCkptStructuralRejections covers the framing invariants one by one.
func TestCkptStructuralRejections(t *testing.T) {
	valid := Encode(sampleState(3))

	// A record appended after the cursor record.
	extra := appendRecord(append([]byte(nil), valid...), []byte{recExps, 0})
	if _, err := Decode(extra); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("record after cursor: %v", err)
	}

	// Cursor whose log-length cross-check disagrees.
	st := sampleState(3)
	st.Exps = st.Exps[:2]
	lying := Encode(st)
	// Splice the 3-exp log records in front of the 2-exp cursor: rebuild
	// by decoding framing manually is overkill — instead encode a state
	// with matching fields and corrupt the cross-check by re-encoding the
	// cursor of a DIFFERENT log length.
	_ = lying
	mismatch := encodeWithLogLen(sampleState(3), 99)
	if _, err := Decode(mismatch); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("log-length mismatch: %v", err)
	}

	// Missing cursor record entirely.
	hdrOnly := Encode(sampleState(0))
	// The 0-exp encoding is header+cursor; chop the cursor record off.
	hlen := 8 + int(binary.LittleEndian.Uint32(hdrOnly[0:4]))
	if _, err := Decode(hdrOnly[:hlen]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("missing cursor: %v", err)
	}

	// Empty file.
	if _, err := Decode(nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("empty file: %v", err)
	}
}

// encodeWithLogLen encodes st but lies about the logged-expansion count in
// the cursor record (with a correct CRC), exercising the cross-check.
func encodeWithLogLen(st *State, logLen int) []byte {
	data := Encode(st)
	// Strip the genuine cursor record (it is last) and append a lying one.
	off := 0
	lastStart := 0
	for off < len(data) {
		lastStart = off
		plen := int(binary.LittleEndian.Uint32(data[off : off+4]))
		off += 8 + plen
	}
	data = data[:lastStart]
	var p []byte
	p = append(p, recCursor, byte(st.Phase), 0)
	p = binary.AppendUvarint(p, uint64(st.Cursor))
	p = binary.AppendUvarint(p, uint64(st.CurIters))
	p = binary.AppendUvarint(p, uint64(st.EmittedIDs))
	p = binary.AppendUvarint(p, uint64(logLen))
	return appendRecord(data, p)
}

// TestCkptReadFileMissing pins the missing-file contract: os.ErrNotExist,
// so callers can distinguish "no checkpoint yet" from damage.
func TestCkptReadFileMissing(t *testing.T) {
	_, err := ReadFile(filepath.Join(t.TempDir(), "absent.ckpt"))
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file: err = %v, want os.ErrNotExist", err)
	}
}

// TestCkptWriteReplacesAtomically overwrites an existing checkpoint and
// verifies the new state landed and no temp residue remains.
func TestCkptWriteReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	if err := WriteFile(path, sampleState(2)); err != nil {
		t.Fatal(err)
	}
	next := sampleState(7)
	next.Cursor = 99
	if err := WriteFile(path, next); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cursor != 99 || len(got.Exps) != 7 {
		t.Fatalf("overwrite not visible: %+v", got)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("directory holds %d entries after overwrite, want 1", len(ents))
	}
}

// TestWriteFileAtomicErrorKeepsTarget: a failing content writer must leave
// the previous target byte-identical and clean up its temp file.
func TestWriteFileAtomicErrorKeepsTarget(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := os.WriteFile(path, []byte("previous"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := WriteFileAtomic(path, func(w io.Writer) error {
		w.Write([]byte("half-written"))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	got, err2 := os.ReadFile(path)
	if err2 != nil || string(got) != "previous" {
		t.Fatalf("target damaged: %q, %v", got, err2)
	}
	if _, err2 := os.Stat(path + ".tmp"); !errors.Is(err2, os.ErrNotExist) {
		t.Fatal("temp file left behind")
	}
}

// TestCkptHashTree pins that the fingerprint hash separates shape from
// weights and is stable across calls.
func TestCkptHashTree(t *testing.T) {
	p1, w1 := []int{-1, 0, 0}, []int64{2, 5, 4}
	h := HashTree(p1, w1)
	if h != HashTree([]int{-1, 0, 0}, []int64{2, 5, 4}) {
		t.Fatal("hash not deterministic")
	}
	if h == HashTree([]int{-1, 0, 1}, w1) {
		t.Fatal("parent change not reflected")
	}
	if h == HashTree(p1, []int64{2, 5, 5}) {
		t.Fatal("weight change not reflected")
	}
	if h == HashTree([]int{-1, 0}, []int64{2, 5}) {
		t.Fatal("size change not reflected")
	}
}
