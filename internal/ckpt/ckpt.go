package ckpt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"

	"repro/internal/faultinject"
)

// Version is the checkpoint format version this package writes and the
// only one it reads; a file written by a later version is rejected with
// ErrVersion (resume from an incompatible build must fail loudly, not
// replay a misparsed log).
const Version = 1

// The typed failures of ReadFile/Decode. ErrCorrupt covers every
// malformed-byte condition — bad magic, CRC mismatch, impossible length,
// truncated or trailing bytes, inconsistent cursor — so "flip one byte
// anywhere" is guaranteed to surface as errors.Is(err, ErrCorrupt).
// ErrVersion is reserved for a well-formed file whose declared format
// version this build does not speak.
var (
	// ErrCorrupt marks a checkpoint whose bytes fail validation.
	ErrCorrupt = errors.New("ckpt: corrupt checkpoint")
	// ErrVersion marks a well-formed checkpoint of an unsupported format
	// version.
	ErrVersion = errors.New("ckpt: unsupported checkpoint version")
)

// magic identifies a checkpoint header payload. It lives inside the
// CRC-protected header record, so a damaged magic reads as ErrCorrupt.
const magic = "RXCKPT"

// Record type tags (first payload byte of each record).
const (
	recHeader byte = 1
	recExps   byte = 2
	recCursor byte = 3
)

// maxExpsPerRecord chunks the decision log so no single record payload
// grows unbounded; smaller records also localize what one CRC protects.
const maxExpsPerRecord = 1 << 16

// Fingerprint identifies the instance and the semantic engine options a
// checkpoint belongs to. Resume refuses a checkpoint whose fingerprint
// does not match the live run byte-for-byte: replaying a decision log
// against a different tree, bound or victim policy would silently produce
// garbage. Non-semantic knobs (workers, cache budget, checkpoint interval)
// are deliberately absent — they never change the decisions, so a run may
// be checkpointed under one setting and resumed under another.
type Fingerprint struct {
	// TreeHash is HashTree of the instance's parent and weight vectors.
	TreeHash uint64
	// N is the node count (redundant with the hash, kept for diagnostics).
	N int64
	// M is the memory bound.
	M int64
	// MaxPerNode is the per-node expansion budget (0 = FULLRECEXPAND).
	MaxPerNode int64
	// Victim is the victim policy ordinal.
	Victim int64
	// GlobalCap is the EFFECTIVE global expansion cap (defaults resolved).
	GlobalCap int64
}

// Exp is one logged expansion decision: the victim in the run's
// mutable-tree id space and the amount it was expanded by. The id space is
// deterministic — ids are assigned in Expand-call order, which the log
// preserves — so replaying the log onto a fresh mutable copy of the tree
// reconstructs the exact expanded tree.
type Exp struct {
	// Victim is the expanded node's mutable-tree id.
	Victim int
	// Amount is the expansion amount (the victim's FiF I/O volume).
	Amount int64
}

// Phase says how far a checkpointed run had progressed.
type Phase uint8

const (
	// PhaseExpand: the expansion walk was still running; Cursor/CurIters
	// locate the frontier.
	PhaseExpand Phase = iota
	// PhaseFinish: every expansion decision is in the log and the run was
	// in (or past) the final evaluation/emission; resume skips the walk.
	PhaseFinish
)

// State is everything a checkpoint holds. See the package comment for
// what is deliberately excluded.
type State struct {
	// FP is the instance fingerprint the log belongs to.
	FP Fingerprint
	// Exps is the decision log: every expansion applied to the (shared)
	// mutable tree so far, in application order.
	Exps []Exp
	// Cursor is the index into the tree's natural postorder of the first
	// recursion node whose expansion loop is not yet complete; every
	// earlier node is fully processed by the log.
	Cursor int
	// CurIters is the number of completed loop iterations at the Cursor
	// node (each contributed one logged expansion); resume re-enters the
	// loop with this iteration count so MaxPerNode budgets stay exact.
	CurIters int
	// Phase is PhaseFinish once the expansion walk is complete.
	Phase Phase
	// CapHit records that the global expansion cap tripped (meaningful
	// once Phase == PhaseFinish; during the walk it is recomputed).
	CapHit bool
	// EmittedIDs counts the schedule ids the streaming finish had handed
	// to the consumer when the checkpoint was taken. Informational: resume
	// trusts the repaired output stream for the seek offset, since the
	// stream on disk may be ahead of (or behind) the last checkpoint.
	EmittedIDs int64
}

// HashTree fingerprints a tree's shape and weights (FNV-1a over the
// varint-encoded parent and weight vectors).
func HashTree(parents []int, weights []int64) uint64 {
	h := fnv.New64a()
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(parents)))
	h.Write(buf[:n])
	for _, p := range parents {
		n = binary.PutVarint(buf[:], int64(p))
		h.Write(buf[:n])
	}
	for _, w := range weights {
		n = binary.PutVarint(buf[:], w)
		h.Write(buf[:n])
	}
	return h.Sum64()
}

// appendRecord frames one payload: length, CRC32, payload.
func appendRecord(dst, payload []byte) []byte {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// Encode serializes st into the checkpoint wire format.
func Encode(st *State) []byte {
	var p []byte

	// Header record: magic, version, fingerprint.
	p = append(p, recHeader)
	p = append(p, magic...)
	p = binary.AppendUvarint(p, Version)
	p = binary.AppendUvarint(p, st.FP.TreeHash)
	p = binary.AppendVarint(p, st.FP.N)
	p = binary.AppendVarint(p, st.FP.M)
	p = binary.AppendVarint(p, st.FP.MaxPerNode)
	p = binary.AppendVarint(p, st.FP.Victim)
	p = binary.AppendVarint(p, st.FP.GlobalCap)
	out := appendRecord(nil, p)

	// Expansion-log records, chunked.
	for off := 0; off < len(st.Exps); off += maxExpsPerRecord {
		end := off + maxExpsPerRecord
		if end > len(st.Exps) {
			end = len(st.Exps)
		}
		p = p[:0]
		p = append(p, recExps)
		p = binary.AppendUvarint(p, uint64(end-off))
		for _, e := range st.Exps[off:end] {
			p = binary.AppendUvarint(p, uint64(e.Victim))
			p = binary.AppendUvarint(p, uint64(e.Amount))
		}
		out = appendRecord(out, p)
	}

	// Cursor record: the commit point, with the log length cross-check.
	p = p[:0]
	p = append(p, recCursor)
	p = append(p, byte(st.Phase))
	if st.CapHit {
		p = append(p, 1)
	} else {
		p = append(p, 0)
	}
	p = binary.AppendUvarint(p, uint64(st.Cursor))
	p = binary.AppendUvarint(p, uint64(st.CurIters))
	p = binary.AppendUvarint(p, uint64(st.EmittedIDs))
	p = binary.AppendUvarint(p, uint64(len(st.Exps)))
	return appendRecord(out, p)
}

// corrupt wraps a description in ErrCorrupt.
func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// byteReader walks a payload with bounds-checked varint reads.
type byteReader struct {
	b   []byte
	off int
}

func (r *byteReader) byte() (byte, error) {
	if r.off >= len(r.b) {
		return 0, corrupt("payload truncated")
	}
	v := r.b[r.off]
	r.off++
	return v, nil
}

func (r *byteReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, corrupt("bad uvarint at payload offset %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *byteReader) varint() (int64, error) {
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		return 0, corrupt("bad varint at payload offset %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *byteReader) done() bool { return r.off == len(r.b) }

// Decode parses a checkpoint produced by Encode, validating every
// record's CRC, the header magic and version, and the cursor record's
// log-length cross-check. All malformed inputs return ErrCorrupt-wrapped
// errors; a valid file of a different version returns ErrVersion.
func Decode(data []byte) (*State, error) {
	st := &State{}
	sawHeader, sawCursor := false, false
	for off := 0; off < len(data); {
		if len(data)-off < 8 {
			return nil, corrupt("trailing %d bytes are not a record", len(data)-off)
		}
		plen := binary.LittleEndian.Uint32(data[off : off+4])
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		off += 8
		if uint64(plen) > uint64(len(data)-off) {
			return nil, corrupt("record length %d exceeds remaining %d bytes", plen, len(data)-off)
		}
		payload := data[off : off+int(plen)]
		off += int(plen)
		if crc32.ChecksumIEEE(payload) != sum {
			return nil, corrupt("record checksum mismatch")
		}
		if sawCursor {
			return nil, corrupt("record after the cursor record")
		}
		r := &byteReader{b: payload}
		tag, err := r.byte()
		if err != nil {
			return nil, err
		}
		switch tag {
		case recHeader:
			if sawHeader {
				return nil, corrupt("duplicate header record")
			}
			if err := decodeHeader(r, st); err != nil {
				return nil, err
			}
			sawHeader = true
		case recExps:
			if !sawHeader {
				return nil, corrupt("expansion record before header")
			}
			if err := decodeExps(r, st); err != nil {
				return nil, err
			}
		case recCursor:
			if !sawHeader {
				return nil, corrupt("cursor record before header")
			}
			if err := decodeCursor(r, st); err != nil {
				return nil, err
			}
			sawCursor = true
		default:
			return nil, corrupt("unknown record type %d", tag)
		}
		if !r.done() {
			return nil, corrupt("record type %d has %d trailing payload bytes", tag, len(payload)-r.off)
		}
	}
	if !sawHeader {
		return nil, corrupt("missing header record")
	}
	if !sawCursor {
		return nil, corrupt("missing cursor record")
	}
	return st, nil
}

// decodeHeader parses the header payload after its type tag.
func decodeHeader(r *byteReader, st *State) error {
	if len(r.b)-r.off < len(magic) || string(r.b[r.off:r.off+len(magic)]) != magic {
		return corrupt("bad magic")
	}
	r.off += len(magic)
	v, err := r.uvarint()
	if err != nil {
		return err
	}
	if v != Version {
		return fmt.Errorf("%w: file is version %d, this build reads %d", ErrVersion, v, Version)
	}
	if st.FP.TreeHash, err = r.uvarint(); err != nil {
		return err
	}
	for _, dst := range []*int64{&st.FP.N, &st.FP.M, &st.FP.MaxPerNode, &st.FP.Victim, &st.FP.GlobalCap} {
		if *dst, err = r.varint(); err != nil {
			return err
		}
	}
	if st.FP.N < 0 || st.FP.N > 1<<40 {
		return corrupt("implausible node count %d", st.FP.N)
	}
	return nil
}

// decodeExps parses one expansion-log chunk after its type tag.
func decodeExps(r *byteReader, st *State) error {
	count, err := r.uvarint()
	if err != nil {
		return err
	}
	// Each logged expansion costs at least 2 payload bytes; anything
	// claiming more entries than bytes is lying about its length.
	if count > uint64(len(r.b)-r.off) {
		return corrupt("expansion record claims %d entries in %d bytes", count, len(r.b)-r.off)
	}
	for i := uint64(0); i < count; i++ {
		v, err := r.uvarint()
		if err != nil {
			return err
		}
		a, err := r.uvarint()
		if err != nil {
			return err
		}
		if v > 1<<40 || a == 0 || a > 1<<62 {
			return corrupt("implausible expansion (victim=%d amount=%d)", v, a)
		}
		st.Exps = append(st.Exps, Exp{Victim: int(v), Amount: int64(a)})
	}
	return nil
}

// decodeCursor parses the cursor payload after its type tag.
func decodeCursor(r *byteReader, st *State) error {
	ph, err := r.byte()
	if err != nil {
		return err
	}
	if ph > byte(PhaseFinish) {
		return corrupt("unknown phase %d", ph)
	}
	st.Phase = Phase(ph)
	hit, err := r.byte()
	if err != nil {
		return err
	}
	if hit > 1 {
		return corrupt("bad cap-hit flag %d", hit)
	}
	st.CapHit = hit == 1
	cur, err := r.uvarint()
	if err != nil {
		return err
	}
	iters, err := r.uvarint()
	if err != nil {
		return err
	}
	emitted, err := r.uvarint()
	if err != nil {
		return err
	}
	logLen, err := r.uvarint()
	if err != nil {
		return err
	}
	if cur > 1<<40 || iters > 1<<40 || emitted > 1<<62 {
		return corrupt("implausible cursor (cursor=%d iters=%d emitted=%d)", cur, iters, emitted)
	}
	if logLen != uint64(len(st.Exps)) {
		return corrupt("cursor claims %d logged expansions, file holds %d", logLen, len(st.Exps))
	}
	st.Cursor, st.CurIters, st.EmittedIDs = int(cur), int(iters), int64(emitted)
	return nil
}

// WriteFile durably replaces the checkpoint at path with st: the encoded
// bytes go to a temp file that is fsynced and atomically renamed over
// path, with the directory fsynced after the rename. A kill at ANY byte
// of this sequence leaves either the previous checkpoint or the new one
// at path, never a mixture. The CkptWrite and CkptRename fault points let
// the robustness harness fail the write mid-file and the rename step.
func WriteFile(path string, st *State) error {
	data := Encode(st)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if faultinject.Fire(faultinject.CkptWrite) {
		// Simulate a write failing partway: flush a prefix so the temp
		// file holds garbage, as a real ENOSPC/EIO would leave it.
		f.Write(data[:len(data)/2])
		f.Close()
		return faultinject.ErrCkptWrite
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if faultinject.Fire(faultinject.CkptRename) {
		return faultinject.ErrCkptRename
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return SyncDir(filepath.Dir(path))
}

// ReadFile loads and validates the checkpoint at path. A missing file
// surfaces as os.ErrNotExist (callers decide whether that means "start
// fresh" or "operator error"); malformed bytes surface as ErrCorrupt and
// format-version skew as ErrVersion.
func ReadFile(path string) (*State, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

// Read loads and validates a checkpoint from a stream (Decode over
// io.ReadAll).
func Read(r io.Reader) (*State, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}
