package ckpt

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"syscall"
)

// WriteFileAtomic writes a file so that path never holds a half-written
// artifact: write writes the content to a temp file in the same directory,
// the temp file is fsynced and closed, renamed over path, and the
// directory is fsynced so the rename itself is durable. On any error the
// temp file is removed and path is untouched (whatever was there before —
// including nothing — is still there).
func WriteFileAtomic(path string, write func(w io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := commitFile(f, tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// commitFile makes an already-written temp file durable at path: fsync,
// close, rename over path, fsync the directory. The caller removes tmp on
// error.
func commitFile(f *os.File, tmp, path string) error {
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return SyncDir(filepath.Dir(path))
}

// CommitFile finalizes a file written in place under a temporary name:
// fsync + close f (which must be open on tmp), atomically rename tmp over
// path, and fsync the directory. It is the commit step of the streaming
// outputs that cannot buffer their whole content through WriteFileAtomic's
// callback (cmd/sched -stream-sched writes for hours into out.partial and
// renames only a complete, trailer-sealed stream over the target).
func CommitFile(f *os.File, tmp, path string) error {
	return commitFile(f, tmp, path)
}

// SyncDir fsyncs a directory so a just-committed rename in it survives a
// power cut. Filesystems that refuse to sync directories (some CI
// overlays) are tolerated: the rename is still atomic, only its
// durability-after-power-loss is weakened, and erroring out would fail
// every checkpoint on such hosts.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("ckpt: opening dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !isSyncUnsupported(err) {
		return fmt.Errorf("ckpt: syncing dir: %w", err)
	}
	return nil
}

// isSyncUnsupported reports errors that mean "this filesystem cannot sync
// a directory", not "the sync failed".
func isSyncUnsupported(err error) bool {
	return errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP) || errors.Is(err, syscall.ENOTTY)
}
