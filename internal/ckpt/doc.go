// Package ckpt is the durable checkpoint layer of the expansion engine:
// a versioned, checksummed, length-prefixed binary format for the state a
// long-running expansion needs to survive a kill — the instance
// fingerprint, the decision log of completed expansions, the postorder
// frontier, and the emitted-id count of the schedule stream — plus the
// atomic-and-durable file helpers (temp file + fsync + rename) the rest
// of the repository routes its artifacts through.
//
// The format is a flat sequence of records, each encoded as
//
//	uint32 payload length | uint32 CRC32(payload) | payload
//
// with all multi-byte integers little-endian and every payload value a
// varint. The first record is the header (magic, format version, instance
// fingerprint), followed by zero or more expansion-log records and exactly
// one trailing cursor record — the commit point. Because every write goes
// through WriteFileAtomic, a reader only ever observes complete files; the
// per-record CRCs exist to catch bit rot and tampering, not torn writes.
// Any malformed byte surfaces as ErrCorrupt (never a panic: see
// FuzzReadCheckpoint), and a well-formed file written by a newer format
// version surfaces as ErrVersion.
//
// What a checkpoint deliberately does NOT hold: profile caches, simulator
// scratch, or any other derived state. Expansion is deterministic, so the
// decision log plus the frontier reconstruct everything else bit-for-bit
// on resume (see expand.Options.ResumeFrom and DESIGN.md §2.10).
package ckpt
