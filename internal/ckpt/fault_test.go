//go:build faultinject

package ckpt

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultinject"
)

// TestCkptWriteFaultKeepsPrevious arms the CkptWrite point: the failed
// write must surface ErrCkptWrite, leave the previously committed
// checkpoint byte-intact and readable, and the next (unfaulted) write must
// succeed over whatever garbage temp file the failure left behind.
func TestCkptWriteFaultKeepsPrevious(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	first := sampleState(5)
	if err := WriteFile(path, first); err != nil {
		t.Fatal(err)
	}

	faultinject.Reset()
	faultinject.Arm(faultinject.CkptWrite, 1)
	next := sampleState(9)
	next.Cursor = 123
	err := WriteFile(path, next)
	if !errors.Is(err, faultinject.ErrCkptWrite) {
		t.Fatalf("err = %v, want ErrCkptWrite", err)
	}

	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("previous checkpoint unreadable after failed write: %v", err)
	}
	if got.Cursor != first.Cursor || len(got.Exps) != len(first.Exps) {
		t.Fatalf("previous checkpoint changed: %+v", got)
	}
	// The failure mode deliberately leaves a half-written temp file (as a
	// real ENOSPC would); it must parse as corrupt, never as a checkpoint.
	if tmp, err := os.ReadFile(path + ".tmp"); err == nil {
		if _, derr := Decode(tmp); !errors.Is(derr, ErrCorrupt) {
			t.Fatalf("half-written temp decodes as %v, want ErrCorrupt", derr)
		}
	}

	faultinject.Reset()
	if err := WriteFile(path, next); err != nil {
		t.Fatalf("retry after fault failed: %v", err)
	}
	if got, err := ReadFile(path); err != nil || got.Cursor != 123 {
		t.Fatalf("retry did not commit: %+v, %v", got, err)
	}
}

// TestCkptRenameFaultKeepsPrevious arms the CkptRename point: the rename
// failure leaves a fully written, VALID temp file next to the intact
// previous checkpoint, and a retry commits cleanly.
func TestCkptRenameFaultKeepsPrevious(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	first := sampleState(3)
	if err := WriteFile(path, first); err != nil {
		t.Fatal(err)
	}

	faultinject.Reset()
	faultinject.Arm(faultinject.CkptRename, 1)
	next := sampleState(6)
	next.Cursor = 77
	err := WriteFile(path, next)
	if !errors.Is(err, faultinject.ErrCkptRename) {
		t.Fatalf("err = %v, want ErrCkptRename", err)
	}

	if got, err := ReadFile(path); err != nil || got.Cursor != first.Cursor {
		t.Fatalf("previous checkpoint damaged: %+v, %v", got, err)
	}
	// The temp file was fully written and fsynced before the rename step,
	// so it must itself be a valid checkpoint of the NEW state.
	tmpSt, err := ReadFile(path + ".tmp")
	if err != nil {
		t.Fatalf("temp file after rename fault not a valid checkpoint: %v", err)
	}
	if tmpSt.Cursor != 77 {
		t.Fatalf("temp checkpoint holds cursor %d, want 77", tmpSt.Cursor)
	}

	faultinject.Reset()
	if err := WriteFile(path, next); err != nil {
		t.Fatalf("retry after rename fault failed: %v", err)
	}
	if got, err := ReadFile(path); err != nil || got.Cursor != 77 {
		t.Fatalf("retry did not commit: %+v, %v", got, err)
	}
}

// TestWriteFileAtomicWriterFault pushes a WriterIO fault through
// WriteFileAtomic's callback (the cmd/sched -o path shape): the target
// must be untouched and no temp file may remain.
func TestWriteFileAtomicWriterFault(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := os.WriteFile(path, []byte("previous"), 0o644); err != nil {
		t.Fatal(err)
	}

	payload := []byte("new content that will not land")
	faultinject.Reset()
	faultinject.Arm(faultinject.WriterIO, uint64(len(payload)/2))
	err := WriteFileAtomic(path, func(w io.Writer) error {
		_, werr := faultinject.NewWriter(w).Write(payload)
		return werr
	})
	if !errors.Is(err, faultinject.ErrWrite) {
		t.Fatalf("err = %v, want ErrWrite", err)
	}
	if got, rerr := os.ReadFile(path); rerr != nil || string(got) != "previous" {
		t.Fatalf("target damaged: %q, %v", got, rerr)
	}
	if _, serr := os.Stat(path + ".tmp"); !errors.Is(serr, os.ErrNotExist) {
		t.Fatal("temp file left behind")
	}
}
