package ckpt

import (
	"errors"
	"testing"
)

// FuzzReadCheckpoint throws arbitrary bytes at Decode: the contract is
// typed failure (ErrCorrupt or ErrVersion) or a successful parse — never a
// panic, never an untyped error. Successful parses are re-encoded and
// re-decoded to check the format round-trips whatever it accepts.
func FuzzReadCheckpoint(f *testing.F) {
	f.Add([]byte(nil))
	f.Add(Encode(sampleState(0)))
	f.Add(Encode(sampleState(7)))
	big := sampleState(300)
	big.Phase = PhaseFinish
	big.CapHit = true
	big.EmittedIDs = 1 << 30
	f.Add(Encode(big))
	// A version-byte mutation (lands in the CRC/version rejection paths).
	f.Add(func() []byte {
		d := Encode(sampleState(2))
		// The version byte follows tag+magic in the header payload.
		d[8+1+len(magic)] = Version + 1
		return d
	}())

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		re, err := Decode(Encode(st))
		if err != nil {
			t.Fatalf("re-decode of accepted state failed: %v", err)
		}
		if re.FP != st.FP || re.Cursor != st.Cursor || len(re.Exps) != len(st.Exps) {
			t.Fatalf("accepted state does not round-trip: %+v vs %+v", re, st)
		}
	})
}
