package cert

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"

	"repro/internal/expand"
	"repro/internal/liu"
	"repro/internal/memsim"
	"repro/internal/postorder"
	"repro/internal/tree"
)

// CheckProperties runs the metamorphic and invariance properties that
// need no exhaustive oracle, so they apply to instances far beyond brute
// range. It returns a *Divergence error naming the violated property, a
// skip error (see IsSkip) for infeasible instances, and nil when every
// property holds.
//
// The properties: across a ladder of memory bounds from LB to the
// optimal in-core peak, the best-postorder I/O volume and the FiF I/O of
// any FIXED schedule are monotone non-increasing in M (both
// theorem-backed; the heuristic's own I/O is deliberately NOT asserted
// monotone — RecExpand's budgeted expansion is demonstrably non-monotone
// in M on the Figure 2(c) family); each engine run's schedule is valid
// and re-simulates to exactly the declared (I/O, peak) — via
// memsim.ScoreSchedule — with a FiF τ satisfying the paper's validity
// conditions; at M equal to the peak the run is I/O-free with zero
// expansions; and at the instance's own bound the Result is
// bit-identical across the streamed finish, Workers, CacheBudget,
// checkpointing and checkpoint-resume. Every engine run is made with the
// post-run profile-cache audit armed (expand.Options.VerifyCache).
func CheckProperties(ctx context.Context, inst Instance) error {
	t := inst.Tree
	if t == nil {
		return fmt.Errorf("cert: instance has no tree")
	}
	lb := t.MaxWBar()
	if inst.M < lb {
		return fmt.Errorf("%w: M=%d < LB=%d", ErrInfeasible, inst.M, lb)
	}
	fail := func(check, format string, args ...any) error {
		return &Divergence{Check: check, Detail: fmt.Sprintf(format, args...), Inst: inst}
	}
	peak := liu.MinMemPeak(t)

	run := func(M int64, o expand.Options) (*expand.Result, error) {
		o.Ctx = ctx
		o.VerifyCache = true
		if o.MaxPerNode == 0 {
			o.MaxPerNode = 2
		}
		if o.Workers == 0 {
			o.Workers = 1
		}
		res, err := expand.RecExpand(t, M, o)
		if err != nil {
			if ctx != nil && ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, fail("prop-engine-error", "engine failed at M=%d: %v", M, err)
		}
		return res, nil
	}

	// consistent checks one run's self-consistency: schedule validity,
	// declared == re-simulated via the scoring hook, and a valid FiF τ.
	consistent := func(M int64, res *expand.Result) error {
		if err := tree.Validate(t, res.Schedule); err != nil {
			return fail("prop-schedule-invalid", "M=%d: %v", M, err)
		}
		score, err := memsim.ScoreSchedule(t, M, res.Schedule)
		if err != nil {
			return fail("prop-score", "M=%d: %v", M, err)
		}
		if score.IO != res.SimulatedIO || score.Peak != res.SimulatedPeak {
			return fail("prop-resim", "M=%d: declared (io=%d, peak=%d), scored (io=%d, peak=%d)",
				M, res.SimulatedIO, res.SimulatedPeak, score.IO, score.Peak)
		}
		if score.Bounded != (res.SimulatedIO == 0) {
			return fail("prop-score-bounded", "M=%d: Bounded=%v with io=%d", M, score.Bounded, res.SimulatedIO)
		}
		sim, err := memsim.Run(t, M, res.Schedule, memsim.FiF)
		if err != nil {
			return fail("prop-resim", "M=%d: %v", M, err)
		}
		if err := memsim.Validate(t, M, res.Schedule, sim.Tau); err != nil {
			return fail("prop-tau-invalid", "M=%d: FiF traversal fails validity: %v", M, err)
		}
		if res.SimulatedIO > res.IO {
			return fail("prop-accounting", "M=%d: simulated I/O %d exceeds declared %d", M, res.SimulatedIO, res.IO)
		}
		if res.IO != res.ExpansionIO+res.ResidualIO {
			return fail("prop-accounting", "M=%d: IO %d != ExpansionIO %d + ResidualIO %d",
				M, res.IO, res.ExpansionIO, res.ResidualIO)
		}
		return nil
	}

	// The M-ladder: LB, the instance's bound, a midpoint, and the peak.
	// Two monotone quantities are tracked along it — the best-postorder
	// volume (minimum over a fixed schedule class, Theorem 3's algorithm)
	// and the FiF I/O of one fixed reference schedule (Theorem 1:
	// furthest-in-future is optimal per schedule, and more memory never
	// hurts a fixed schedule). The heuristic's own I/O is checked for
	// consistency at every rung but NOT for monotonicity: its budgeted
	// expansion genuinely rises with M on Figure 2(c) instances.
	ladder := []int64{lb, inst.M, lb + (peak-lb)/2, peak}
	sort.Slice(ladder, func(i, j int) bool { return ladder[i] < ladder[j] })
	refSched := inst.Tree.NaturalPostorder()
	prevPoV, prevRefIO := int64(-1), int64(-1)
	var prevM int64
	for i, M := range ladder {
		if i > 0 && M == ladder[i-1] {
			continue
		}
		res, err := run(M, expand.Options{})
		if err != nil {
			return err
		}
		if err := consistent(M, res); err != nil {
			return err
		}
		_, poV, _ := postorder.MinIO(t, M)
		refIO, err := memsim.IOOf(t, M, refSched)
		if err != nil {
			return fail("prop-ref-schedule", "M=%d: %v", M, err)
		}
		if prevPoV >= 0 && poV > prevPoV {
			return fail("prop-monotone-postorder", "best-postorder I/O rose from %d at M=%d to %d at M=%d",
				prevPoV, prevM, poV, M)
		}
		if prevRefIO >= 0 && refIO > prevRefIO {
			return fail("prop-monotone-fixed", "fixed-schedule FiF I/O rose from %d at M=%d to %d at M=%d",
				prevRefIO, prevM, refIO, M)
		}
		prevPoV, prevRefIO, prevM = poV, refIO, M
		if M >= peak && (res.SimulatedIO != 0 || res.Expansions != 0) {
			return fail("prop-peak-io", "M=%d >= peak %d yet io=%d with %d expansions",
				M, peak, res.SimulatedIO, res.Expansions)
		}
	}

	// Invariance battery at the instance's own bound: the Result must be
	// bit-identical however the run is executed.
	base, err := run(inst.M, expand.Options{})
	if err != nil {
		return err
	}
	if err := consistent(inst.M, base); err != nil {
		return err
	}
	for _, v := range []struct {
		name string
		opts expand.Options
	}{
		{"workers", expand.Options{Workers: 2}},
		{"cache-budget", expand.Options{CacheBudget: 1}},
	} {
		got, err := run(inst.M, v.opts)
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(got, base) {
			return fail("prop-invariance-"+v.name, "Result diverges from the baseline run")
		}
	}

	// Streamed finish: the segments concatenate to exactly the
	// materialized schedule, and every other Result field agrees.
	var streamed []int
	sres, serr := expand.NewEngine().RecExpandStream(t, inst.M, expand.Options{
		Ctx: ctx, MaxPerNode: 2, Workers: 1, VerifyCache: true,
	}, func(seg []int) bool {
		streamed = append(streamed, seg...)
		return true
	})
	if serr != nil {
		if ctx != nil && ctx.Err() != nil {
			return ctx.Err()
		}
		return fail("prop-stream-error", "streamed run failed: %v", serr)
	}
	if !reflect.DeepEqual(tree.Schedule(streamed), base.Schedule) {
		return fail("prop-stream-schedule", "streamed segments diverge from the materialized schedule")
	}
	want := *base
	want.Schedule = nil
	if !reflect.DeepEqual(sres, &want) {
		return fail("prop-stream-result", "streamed Result fields diverge from the materialized run")
	}

	// Checkpointing never changes the Result, and resuming from the
	// finished checkpoint reproduces it bit-identically.
	dir, err := os.MkdirTemp("", "cert-ckpt-")
	if err != nil {
		return fmt.Errorf("cert: creating checkpoint scratch: %w", err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "run.ckpt")
	got, err := run(inst.M, expand.Options{Checkpoint: expand.CheckpointOptions{Path: path, Interval: 1}})
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(got, base) {
		return fail("prop-invariance-checkpoint", "checkpointed Result diverges from the baseline run")
	}
	got, err = run(inst.M, expand.Options{ResumeFrom: path})
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(got, base) {
		return fail("prop-invariance-resume", "Result resumed from a finished checkpoint diverges")
	}
	return nil
}
