package cert

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestRegenerateTestdata is the shrink-and-commit workflow, checked in as
// a gated test so the procedure is executable documentation: run
//
//	CERT_REGEN=1 go test ./internal/cert -run TestRegenerateTestdata -v
//
// to remine and rewrite the committed corpora — one shrunk near-miss
// instance per generator family under testdata/cert/ (instances where the
// heuristic is strictly above the certified optimum: the closest thing to
// a failure that is not one), the shrunk injected-bug catch, and the
// matching seed tuples under testdata/fuzz/. Without the environment
// variable the test is a no-op, so normal runs never touch testdata.
func TestRegenerateTestdata(t *testing.T) {
	if os.Getenv("CERT_REGEN") == "" {
		t.Skip("set CERT_REGEN=1 to regenerate the committed corpora")
	}
	ctx := context.Background()

	nearMiss := func(inst Instance) bool {
		rep, err := Certify(ctx, inst, testLimits())
		return err == nil && rep.EngineIO > rep.OptIO
	}
	ioBound := func(inst Instance) bool {
		rep, err := Certify(ctx, inst, testLimits())
		return err == nil && rep.EngineIO > 0
	}

	for famIdx, fam := range Families {
		// Mine the first near-miss seed of the family; fall back to a
		// merely I/O-bound instance if the heuristic is exact on every
		// small instance the family produces.
		pred, kind := nearMiss, "near-miss"
		seed := int64(-1)
		for s := int64(0); s < 5000; s++ {
			inst, err := GenSmall(fam, s)
			if err != nil {
				t.Fatal(err)
			}
			if pred(inst) {
				seed = s
				break
			}
		}
		if seed < 0 {
			pred, kind = ioBound, "io-bound"
			for s := int64(0); s < 5000; s++ {
				inst, err := GenSmall(fam, s)
				if err != nil {
					t.Fatal(err)
				}
				if pred(inst) {
					seed = s
					break
				}
			}
		}
		if seed < 0 {
			t.Fatalf("family %s: no I/O-bound instance in 5000 seeds", fam)
		}
		inst, err := GenSmall(fam, seed)
		if err != nil {
			t.Fatal(err)
		}
		shrunk := Shrink(inst, pred)
		path := filepath.Join("testdata", "cert", fmt.Sprintf("near-miss-%s.json", fam))
		if err := shrunk.WriteFile(path); err != nil {
			t.Fatal(err)
		}
		t.Logf("%s: %s seed %d shrunk %d -> %d nodes -> %s", fam, kind, seed, inst.Tree.N(), shrunk.Tree.N(), path)

		writeFuzzSeed(t, filepath.Join("testdata", "fuzz", "FuzzCertifySmall", "near-miss-"+fam),
			int64(famIdx), seed, 0)
		writeFuzzSeed(t, filepath.Join("testdata", "fuzz", "FuzzCertifyProperties", fam),
			int64(famIdx), seed)
	}

	// The injected-bug catch: certify with the under-reporting engine
	// until it diverges, shrink on that predicate, commit.
	var caught *Instance
	for s := int64(0); s < 1000 && caught == nil; s++ {
		for _, fam := range Families {
			inst, err := GenSmall(fam, s)
			if err != nil {
				t.Fatal(err)
			}
			if brokenFails(inst) {
				caught = &inst
				break
			}
		}
	}
	if caught == nil {
		t.Fatal("injected engine never caught")
	}
	shrunk := Shrink(*caught, brokenFails)
	path := filepath.Join("testdata", "cert", "injected-underreport.json")
	if err := shrunk.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	t.Logf("injected bug: shrunk %d -> %d nodes -> %s", caught.Tree.N(), shrunk.Tree.N(), path)
}

// writeFuzzSeed writes one Go native fuzz corpus file ("go test fuzz v1"
// format) holding int64 values.
func writeFuzzSeed(t *testing.T, path string, vals ...int64) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	body := "go test fuzz v1\n"
	for _, v := range vals {
		body += fmt.Sprintf("int64(%d)\n", v)
	}
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
}
