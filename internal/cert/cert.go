package cert

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/brute"
	"repro/internal/expand"
	"repro/internal/liu"
	"repro/internal/memsim"
	"repro/internal/postorder"
	"repro/internal/tree"
)

// ErrInfeasible marks an instance whose memory bound is below the tree's
// LB = max w̄: no traversal exists, so there is nothing to certify. Fuzz
// targets and sweep drivers skip such instances.
var ErrInfeasible = errors.New("cert: memory bound below LB")

// EngineFunc is the heuristic under certification. Production code passes
// nil (meaning expand.RecExpand); the harness's own tests inject broken
// engines here to prove the wall actually catches bugs.
type EngineFunc func(t *tree.Tree, M int64, opts expand.Options) (*expand.Result, error)

// Options tunes a certification run.
type Options struct {
	// Limits bounds the brute-force enumerations; an exhausted budget
	// surfaces as brute.ErrBudget (a skip, not a failure). The zero value
	// uses brute.MaxOrders.
	Limits brute.Limits
	// Engine is the heuristic under test; nil means expand.RecExpand.
	Engine EngineFunc
}

// Divergence is a certification failure: a named check whose two sides
// disagreed, carrying the full instance so the report alone reproduces
// the bug.
type Divergence struct {
	// Check names the violated claim ("liu-vs-brute-peak", "theorem3", ...).
	Check string
	// Detail states the two sides that disagreed.
	Detail string
	// Inst is the certified instance.
	Inst Instance
}

// Error formats the divergence with its instance.
func (d *Divergence) Error() string {
	return fmt.Sprintf("cert: %s: %s on %s", d.Check, d.Detail, d.Inst)
}

// IsSkip reports whether err means the instance could not be judged —
// infeasible bound, exhausted enumeration budget, or cancellation —
// rather than a genuine divergence. Sweep drivers regenerate and move on.
func IsSkip(err error) bool {
	return errors.Is(err, ErrInfeasible) || errors.Is(err, brute.ErrBudget) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Report carries the certified optima of one instance.
type Report struct {
	// OptPeak is the exact optimal in-core peak (brute == liu.MinMem).
	OptPeak int64
	// OptIO is the exact optimal I/O volume at the instance's M.
	OptIO int64
	// PostorderIO is the best-postorder I/O volume (Theorem 3 certified).
	PostorderIO int64
	// EngineIO is RecExpand's (MaxPerNode 2) simulated I/O.
	EngineIO int64
	// FullIO is FullRecExpand's simulated I/O.
	FullIO int64
}

// Certify runs the full exact-optimality wall on one brute-range
// instance. It returns a *Divergence error when any check fails, a skip
// error (see IsSkip) when the instance cannot be judged, and the
// certified Report otherwise.
//
// The checks, in order: liu.MinMem's peak equals the exhaustive optimum
// and its schedule really attains it; brute.MinIO's declared optimum is
// reproduced by re-simulation and hits zero whenever M admits the
// in-core peak; postorder.MinIO's prediction simulates exactly, is the
// exhaustive best postorder (Theorem 3), and on the unit-weight copy of
// the tree equals the global optimum (Theorem 4); and the expansion
// engine — both RecExpand and FullRecExpand, cache audit armed — emits a
// valid schedule with internally consistent accounting that never beats
// the exact optimum and is never improved upon by the ablation eviction
// policies.
func Certify(ctx context.Context, inst Instance, opts Options) (*Report, error) {
	t := inst.Tree
	if t == nil {
		return nil, fmt.Errorf("cert: instance has no tree")
	}
	if lb := t.MaxWBar(); inst.M < lb {
		return nil, fmt.Errorf("%w: M=%d < LB=%d", ErrInfeasible, inst.M, lb)
	}
	engine := opts.Engine
	if engine == nil {
		engine = func(t *tree.Tree, M int64, o expand.Options) (*expand.Result, error) {
			return expand.RecExpand(t, M, o)
		}
	}
	fail := func(check, format string, args ...any) error {
		return &Divergence{Check: check, Detail: fmt.Sprintf(format, args...), Inst: inst}
	}
	rep := &Report{}

	// Optimal peak: Liu's algorithm against exhaustive enumeration, and
	// the returned schedule must itself attain the declared peak.
	liuSched, liuPeak := liu.MinMem(t)
	optPeak, err := brute.OptimalPeakCtx(ctx, t, opts.Limits)
	if err != nil {
		return nil, err
	}
	if liuPeak != optPeak {
		return nil, fail("liu-vs-brute-peak", "liu.MinMem declares peak %d, exhaustive optimum is %d", liuPeak, optPeak)
	}
	simPeak, err := memsim.Peak(t, liuSched)
	if err != nil {
		return nil, fail("liu-schedule-invalid", "liu.MinMem schedule rejected: %v", err)
	}
	if simPeak != liuPeak {
		return nil, fail("liu-peak-unattained", "liu.MinMem schedule peaks at %d, declared %d", simPeak, liuPeak)
	}
	rep.OptPeak = optPeak

	// Optimal I/O: the oracle itself must be internally consistent before
	// anything is judged against it.
	optSched, optIO, err := brute.MinIOCtx(ctx, t, inst.M, opts.Limits)
	if err != nil {
		return nil, err
	}
	optRes, err := memsim.Run(t, inst.M, optSched, memsim.FiF)
	if err != nil {
		return nil, fail("brute-schedule-invalid", "brute.MinIO schedule rejected: %v", err)
	}
	if optRes.IO != optIO {
		return nil, fail("brute-io-mismatch", "brute.MinIO declares %d, its schedule simulates to %d", optIO, optRes.IO)
	}
	if inst.M >= optPeak && optIO != 0 {
		return nil, fail("brute-io-nonzero", "M=%d >= optimal peak %d but optimum I/O is %d", inst.M, optPeak, optIO)
	}
	rep.OptIO = optIO

	// Best postorder: prediction == simulation, and Theorem 3 — the
	// A_j − w_j child order is exhaustively the best postorder.
	poSched, poV, _ := postorder.MinIO(t, inst.M)
	poRes, err := memsim.Run(t, inst.M, poSched, memsim.FiF)
	if err != nil {
		return nil, fail("postorder-schedule-invalid", "postorder.MinIO schedule rejected: %v", err)
	}
	if poRes.IO != poV {
		return nil, fail("postorder-prediction", "postorder.MinIO predicts %d, simulates to %d", poV, poRes.IO)
	}
	if poV < optIO {
		return nil, fail("postorder-beats-optimum", "best postorder %d below global optimum %d", poV, optIO)
	}
	_, bruteV, err := brute.MinIOPostorder(ctx, t, inst.M, opts.Limits)
	if err != nil {
		return nil, err
	}
	if poV != bruteV {
		return nil, fail("theorem3", "postorder.MinIO gives %d, exhaustive best postorder is %d", poV, bruteV)
	}
	rep.PostorderIO = poV

	// Theorem 4 on the unit-weight copy of the same shape: the best
	// postorder is globally optimal on homogeneous trees. The bound is
	// derived deterministically from the instance so replays agree.
	hom := tree.Homogeneous(t)
	homLB, homPeak := hom.MaxWBar(), liu.MinMemPeak(hom)
	homM := homLB
	if homPeak > homLB {
		homM += inst.M % (homPeak - homLB + 1)
	}
	_, homPoV, _ := postorder.MinIO(hom, homM)
	_, homOptIO, err := brute.MinIOCtx(ctx, hom, homM, opts.Limits)
	if err != nil {
		return nil, err
	}
	if homPoV != homOptIO {
		return nil, fail("theorem4", "unit-weight copy at M=%d: best postorder %d, global optimum %d", homM, homPoV, homOptIO)
	}

	// The engine, both budgeted and full, against the certified optimum.
	rep.EngineIO, err = certifyEngine(ctx, inst, engine, "recexpand", expand.Options{MaxPerNode: 2}, optPeak, optIO, fail)
	if err != nil {
		return nil, err
	}
	rep.FullIO, err = certifyEngine(ctx, inst, engine, "fullrecexpand", expand.Options{MaxPerNode: 0}, optPeak, optIO, fail)
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// certifyEngine runs one engine variant and checks its result against the
// certified optima. The variant's Ctx and VerifyCache are always armed.
func certifyEngine(ctx context.Context, inst Instance, engine EngineFunc, name string,
	eopts expand.Options, optPeak, optIO int64,
	fail func(check, format string, args ...any) error) (int64, error) {
	t := inst.Tree
	eopts.Ctx = ctx
	eopts.VerifyCache = true
	res, err := engine(t, inst.M, eopts)
	if err != nil {
		if ctx != nil && ctx.Err() != nil {
			return 0, ctx.Err()
		}
		return 0, fail(name+"-error", "engine failed: %v", err)
	}
	if err := tree.Validate(t, res.Schedule); err != nil {
		return 0, fail(name+"-schedule-invalid", "engine schedule rejected: %v", err)
	}
	sim, err := memsim.Run(t, inst.M, res.Schedule, memsim.FiF)
	if err != nil {
		return 0, fail(name+"-simulation", "re-simulation rejected: %v", err)
	}
	if sim.IO != res.SimulatedIO || sim.Peak != res.SimulatedPeak {
		return 0, fail(name+"-resim", "declared (io=%d, peak=%d), re-simulated (io=%d, peak=%d)",
			res.SimulatedIO, res.SimulatedPeak, sim.IO, sim.Peak)
	}
	if res.SimulatedIO < optIO {
		return 0, fail(name+"-beats-optimum", "simulated I/O %d below exact optimum %d", res.SimulatedIO, optIO)
	}
	if res.SimulatedIO > res.IO {
		return 0, fail(name+"-accounting", "simulated I/O %d exceeds declared I/O %d", res.SimulatedIO, res.IO)
	}
	if res.IO != res.ExpansionIO+res.ResidualIO {
		return 0, fail(name+"-accounting", "IO %d != ExpansionIO %d + ResidualIO %d",
			res.IO, res.ExpansionIO, res.ResidualIO)
	}
	if inst.M >= optPeak && (res.SimulatedIO != 0 || res.Expansions != 0) {
		return 0, fail(name+"-spurious-io", "M=%d fits optimal peak %d yet engine paid io=%d with %d expansions",
			inst.M, optPeak, res.SimulatedIO, res.Expansions)
	}
	if eopts.MaxPerNode == 0 && !res.CapHit {
		if res.ResidualIO != 0 {
			return 0, fail(name+"-residual", "uncapped full expansion left residual I/O %d", res.ResidualIO)
		}
		if res.FinalPeak > inst.M {
			return 0, fail(name+"-finalpeak", "uncapped full expansion finished with peak %d > M=%d", res.FinalPeak, inst.M)
		}
	}
	// Theorem 1's observable corollary: on the engine's own schedule the
	// FiF policy is never beaten by the ablation policies.
	for _, pol := range []memsim.EvictionPolicy{memsim.NiF, memsim.LargestFirst} {
		ab, err := memsim.Run(t, inst.M, res.Schedule, pol)
		if err != nil {
			return 0, fail(name+"-ablation", "%v re-simulation rejected: %v", pol, err)
		}
		if ab.IO < res.SimulatedIO {
			return 0, fail(name+"-fif-dominated", "%v pays %d, FiF pays %d on the same schedule", pol, ab.IO, res.SimulatedIO)
		}
	}
	return res.SimulatedIO, nil
}
