package cert

import (
	"context"
	"testing"

	"repro/internal/brute"
)

// fuzzLimits keeps a single fuzz execution bounded: an instance whose
// enumeration would explode is skipped, not waited for.
var fuzzLimits = Options{Limits: brute.Limits{MaxOrders: 500_000}}

// FuzzCertifySmall drives the full exact-optimality wall from a
// three-int64 tuple: generator family, seed, and a shift applied to the
// generated memory bound (so the fuzzer explores bounds the generator's
// own mix would not pick, including infeasible ones, which skip). Any
// non-skip error is a certification divergence and a crasher.
func FuzzCertifySmall(f *testing.F) {
	f.Add(int64(0), int64(1), int64(0))
	f.Add(int64(1), int64(2), int64(1))
	f.Add(int64(2), int64(3), int64(-1))
	f.Add(int64(0), int64(77), int64(5))
	f.Fuzz(func(t *testing.T, famIdx, seed, mShift int64) {
		inst, err := GenSmall(FamilyByIndex(famIdx), seed)
		if err != nil {
			t.Fatal(err)
		}
		inst.M += mShift % 8
		if _, err := Certify(context.Background(), inst, fuzzLimits); err != nil {
			if IsSkip(err) {
				t.Skip()
			}
			t.Fatal(err)
		}
	})
}

// FuzzCertifyProperties drives the metamorphic property suite on
// property-range instances (beyond brute reach) from a (family, seed)
// tuple.
func FuzzCertifyProperties(f *testing.F) {
	f.Add(int64(0), int64(1))
	f.Add(int64(1), int64(2))
	f.Add(int64(2), int64(3))
	f.Fuzz(func(t *testing.T, famIdx, seed int64) {
		inst, err := GenMedium(FamilyByIndex(famIdx), seed)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckProperties(context.Background(), inst); err != nil {
			if IsSkip(err) {
				t.Skip()
			}
			t.Fatal(err)
		}
	})
}
