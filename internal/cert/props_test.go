package cert

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/liu"
	"repro/internal/randtree"
	"repro/internal/tree"
)

// recursiveWeighted reproduces the random-recursive-tree half of the
// expand package's differential corpus: parent[i] uniform in [0, i),
// weights uniform in [1, 12].
func recursiveWeighted(n int, rng *rand.Rand) *tree.Tree {
	parent := make([]int, n)
	weight := make([]int64, n)
	parent[0] = tree.None
	weight[0] = 1 + rng.Int63n(12)
	for i := 1; i < n; i++ {
		parent[i] = rng.Intn(i)
		weight[i] = 1 + rng.Int63n(12)
	}
	return tree.MustNew(parent, weight)
}

// TestProperties220Corpus runs the metamorphic suite over the exact
// 220-instance corpus of the engine's differential tests (same seed, same
// recipe, same I/O-bound filter), so the property wall and the
// bit-identity wall judge the same population.
func TestProperties220Corpus(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	tried := 0
	for trial := 0; tried < 220; trial++ {
		var tr *tree.Tree
		if trial%3 == 0 {
			tr = randtree.Synth(20+rng.Intn(150), rng)
		} else {
			tr = recursiveWeighted(2+rng.Intn(60), rng)
		}
		lb := tr.MaxWBar()
		_, peak := liu.MinMem(tr)
		if peak <= lb {
			continue
		}
		M := lb + rng.Int63n(peak-lb)
		tried++
		inst := Instance{Family: "corpus", Seed: int64(trial), M: M, Tree: tr}
		if err := CheckProperties(context.Background(), inst); err != nil {
			t.Fatalf("corpus trial %d: %v", trial, err)
		}
	}
	if tried < 200 {
		t.Fatalf("only %d I/O-bound corpus instances, need >= 200", tried)
	}
}

// TestPropertiesFreshInstances runs the metamorphic suite on 100 fresh
// generator-drawn instances spanning all three families.
func TestPropertiesFreshInstances(t *testing.T) {
	checked := 0
	for seed := int64(10_000); checked < 100; seed++ {
		fam := Families[int(seed)%len(Families)]
		inst, err := GenMedium(fam, seed)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckProperties(context.Background(), inst); err != nil {
			if IsSkip(err) {
				continue
			}
			t.Fatalf("seed %d family %s: %v", seed, fam, err)
		}
		checked++
	}
}
