package cert

import (
	"strings"

	"repro/internal/tree"
)

// FailFunc reports whether an instance still exhibits the failure being
// minimized. Implementations must treat instances they cannot judge —
// infeasible bounds, budget-exhausted enumerations (see IsSkip) — as not
// failing, so the shrinker never walks out of certifiable territory.
type FailFunc func(Instance) bool

// Shrink greedily minimizes a failing instance while fails keeps holding:
// it repeatedly deletes whole subtrees, shrinks node weights towards 1,
// and lowers the memory bound towards the (recomputed) LB, to a fixpoint.
// The result is the committable regression — typically a handful of nodes
// — whose JSON form goes under testdata/cert/. Shrinking is deterministic:
// the same instance and predicate always reduce to the same minimum.
//
// fails(inst) should be true on entry; if it is not, inst is returned
// unchanged.
func Shrink(inst Instance, fails FailFunc) Instance {
	cur := inst
	if cur.Tree == nil || !fails(cur) {
		return inst
	}
	// Each pass may unlock the others (a deleted subtree lowers LB, which
	// opens new M reductions), so loop to a fixpoint with a hard cap as a
	// guard against a pathological predicate.
	for round := 0; round < 64; round++ {
		improved := false
		// Subtree deletion, rescanning from the start after every success
		// because node indices shift.
		for {
			removed := false
			for v := 0; v < cur.Tree.N(); v++ {
				if v == cur.Tree.Root() {
					continue
				}
				cand := removeSubtree(cur, v)
				if fails(cand) {
					cur = cand
					removed = true
					improved = true
					break
				}
			}
			if !removed {
				break
			}
		}
		// Weight shrinking: try the floor first, then halving.
		for v := 0; v < cur.Tree.N(); v++ {
			w := cur.Tree.Weight(v)
			for _, nw := range []int64{1, w / 2} {
				if nw >= w || nw < 1 {
					continue
				}
				cand := withWeight(cur, v, nw)
				if fails(cand) {
					cur = cand
					improved = true
					break
				}
			}
		}
		// Memory-bound shrinking towards the current LB.
		lb := cur.Tree.MaxWBar()
		for _, nm := range []int64{lb, lb + (cur.M-lb)/2} {
			if nm >= cur.M || nm < lb {
				continue
			}
			cand := cur
			cand.M = nm
			if fails(cand) {
				cur = cand
				improved = true
				break
			}
		}
		if !improved {
			break
		}
	}
	if !strings.HasPrefix(cur.Label, "shrunk") {
		cur.Label = strings.TrimSpace("shrunk " + cur.Label)
	}
	return cur
}

// removeSubtree returns a copy of inst without the subtree rooted at v
// (which must not be the root), remapping node indices densely.
func removeSubtree(inst Instance, v int) Instance {
	t := inst.Tree
	drop := make([]bool, t.N())
	for _, u := range t.SubtreeNodes(v) {
		drop[u] = true
	}
	remap := make([]int, t.N())
	kept := 0
	for i := 0; i < t.N(); i++ {
		if drop[i] {
			remap[i] = -1
			continue
		}
		remap[i] = kept
		kept++
	}
	parent := make([]int, 0, kept)
	weight := make([]int64, 0, kept)
	for i := 0; i < t.N(); i++ {
		if drop[i] {
			continue
		}
		if p := t.Parent(i); p == tree.None {
			parent = append(parent, tree.None)
		} else {
			parent = append(parent, remap[p])
		}
		weight = append(weight, t.Weight(i))
	}
	out := inst
	out.Tree = tree.MustNew(parent, weight)
	return out
}

// withWeight returns a copy of inst with node v's weight replaced.
func withWeight(inst Instance, v int, w int64) Instance {
	ws := inst.Tree.Weights()
	ws[v] = w
	nt, err := inst.Tree.WithWeights(ws)
	if err != nil {
		panic(err) // unreachable: shape unchanged, weight non-negative
	}
	out := inst
	out.Tree = nt
	return out
}
