// Package cert is the optimality-certification harness: it draws random
// small instances from several structurally different generator families,
// certifies the exact claims of the scheduling stack against the
// brute-force oracles of internal/brute, and property-checks the
// metamorphic invariants that keep holding beyond brute range.
//
// # What is certified exactly
//
// On instances small enough to enumerate (a dozen nodes or so), the
// harness requires, with zero tolerance:
//
//   - liu.MinMem's peak equals brute.OptimalPeak (Liu's algorithm is
//     provably optimal, so any gap is an implementation bug in one side);
//   - postorder.MinIO's I/O volume equals the exhaustive minimum over all
//     postorders (Theorem 3) and, on homogeneous trees, the global
//     optimum brute.MinIO (Theorem 4);
//   - the engine's simulated I/O is never below brute.MinIO's optimum (a
//     sub-optimal claim means the simulation itself is broken), its
//     declared accounting is internally consistent, and it reaches the
//     optimum of zero whenever M admits an I/O-free traversal;
//   - FiF dominates the ablation eviction policies on the engine's own
//     schedule (Theorem 1's observable corollary).
//
// # What is property-checked
//
// Properties that hold at any scale and need no oracle: simulated I/O
// monotone non-increasing in M, schedule validity under memsim
// re-simulation (memsim.ScoreSchedule), streamed == materialized results,
// Workers/CacheBudget/checkpoint-resume invariance, and the profile
// cache's CheckInvariants audit after every run.
//
// # Workflow
//
// Go native fuzz targets (FuzzCertifySmall, FuzzCertifyProperties) mine
// the instance space continuously; cmd/certify runs seeded sweeps in CI
// and, on a divergence, Shrink minimizes the failing instance to a
// committable JSON regression file under testdata/cert/ that the package
// tests replay forever after.
package cert
