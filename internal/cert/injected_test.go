package cert

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/expand"
	"repro/internal/tree"
)

// underReportEngine is the documented injected bug: the real engine with
// its simulated I/O under-reported by one whenever it is positive — the
// classic off-by-one an accounting refactor could introduce. The harness
// must catch it (the re-simulation check, and the beats-the-optimum check
// once the lie crosses the certified floor) and the shrinker must reduce
// the catch to a tiny committable instance.
func underReportEngine(t *tree.Tree, M int64, opts expand.Options) (*expand.Result, error) {
	res, err := expand.RecExpand(t, M, opts)
	if err != nil {
		return nil, err
	}
	if res.SimulatedIO > 0 {
		res.SimulatedIO--
	}
	return res, nil
}

// brokenFails reports whether the injected-bug engine fails certification
// on inst, skip-class outcomes counting as "does not fail" so the
// shrinker stays inside certifiable territory.
func brokenFails(inst Instance) bool {
	opts := testLimits()
	opts.Engine = underReportEngine
	_, err := Certify(context.Background(), inst, opts)
	if err == nil || IsSkip(err) {
		return false
	}
	var div *Divergence
	return errors.As(err, &div)
}

// TestInjectedBugCaughtAndShrunk proves the wall is not vacuous: with the
// under-reporting engine injected, the seeded sweep must produce a
// divergence within a few seeds, the divergence must blame the
// re-simulation (or optimality) check, and Shrink must reduce the failing
// instance to at most a dozen nodes that still fail under the bug and
// certify cleanly without it.
func TestInjectedBugCaughtAndShrunk(t *testing.T) {
	var caught *Instance
	var caughtErr error
	for seed := int64(0); seed < 50 && caught == nil; seed++ {
		for _, fam := range Families {
			inst, err := GenSmall(fam, seed)
			if err != nil {
				t.Fatal(err)
			}
			opts := testLimits()
			opts.Engine = underReportEngine
			if _, err := Certify(context.Background(), inst, opts); err != nil && !IsSkip(err) {
				caught, caughtErr = &inst, err
				break
			}
		}
	}
	if caught == nil {
		t.Fatal("injected under-reporting engine was never caught in 50 seeds × 3 families")
	}
	var div *Divergence
	if !errors.As(caughtErr, &div) {
		t.Fatalf("catch is not a Divergence: %v", caughtErr)
	}
	if !strings.Contains(div.Check, "resim") && !strings.Contains(div.Check, "beats-optimum") {
		t.Fatalf("unexpected check blamed: %s", div.Check)
	}

	shrunk := Shrink(*caught, brokenFails)
	if n, orig := shrunk.Tree.N(), caught.Tree.N(); n > 12 || n > orig {
		t.Fatalf("shrunk to %d nodes (from %d), want <= 12 and no growth", n, orig)
	}
	if !brokenFails(shrunk) {
		t.Fatal("shrunk instance no longer catches the injected bug")
	}
	if _, err := Certify(context.Background(), shrunk, testLimits()); err != nil {
		t.Fatalf("shrunk instance does not certify cleanly with the real engine: %v", err)
	}
}

// TestInjectedBugRegressionFile replays the committed shrunk catch: the
// production engine certifies it cleanly, and re-injecting the documented
// bug still fails on it — the file keeps its teeth.
func TestInjectedBugRegressionFile(t *testing.T) {
	inst, err := ReadInstanceFile("testdata/cert/injected-underreport.json")
	if err != nil {
		t.Fatal(err)
	}
	if inst.Tree.N() > 12 {
		t.Fatalf("committed injected-bug regression has %d nodes, want <= 12", inst.Tree.N())
	}
	if _, err := Certify(context.Background(), inst, testLimits()); err != nil {
		t.Fatalf("real engine fails the committed regression: %v", err)
	}
	if !brokenFails(inst) {
		t.Fatal("committed regression no longer catches the injected bug")
	}
}

// TestShrinkIOBoundPredicate: Shrink works with any predicate, not only
// divergences — here the predicate used to mine the committed near-miss
// corpus (unavoidable I/O: the closest certified instances get to a
// failure, given that the heuristic has been exactly optimal on every
// small instance certified to date).
func TestShrinkIOBoundPredicate(t *testing.T) {
	ioBound := func(inst Instance) bool {
		rep, err := Certify(context.Background(), inst, testLimits())
		return err == nil && rep.OptIO > 0
	}
	var found *Instance
	for seed := int64(0); seed < 200 && found == nil; seed++ {
		inst, err := GenSmall("adversarial", seed)
		if err != nil {
			t.Fatal(err)
		}
		if ioBound(inst) {
			found = &inst
		}
	}
	if found == nil {
		t.Fatal("no I/O-bound adversarial instance in 200 seeds")
	}
	shrunk := Shrink(*found, ioBound)
	if shrunk.Tree.N() > found.Tree.N() {
		t.Fatalf("shrink grew the instance: %d -> %d nodes", found.Tree.N(), shrunk.Tree.N())
	}
	if !ioBound(shrunk) {
		t.Fatal("shrunk instance lost the I/O-bound property")
	}
	if !strings.HasPrefix(shrunk.Label, "shrunk") {
		t.Fatalf("shrunk label not marked: %q", shrunk.Label)
	}
}

// TestShrinkNonFailingUnchanged: an instance the predicate rejects is
// returned untouched.
func TestShrinkNonFailingUnchanged(t *testing.T) {
	inst, err := GenSmall("randtree", 1)
	if err != nil {
		t.Fatal(err)
	}
	got := Shrink(inst, func(Instance) bool { return false })
	if got.Tree != inst.Tree || got.M != inst.M || got.Label != inst.Label {
		t.Fatal("non-failing instance was modified")
	}
}
