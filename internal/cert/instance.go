package cert

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/tree"
)

// Instance is one certification case: a task tree plus a memory bound,
// tagged with the generator family and seed that produced it so a failure
// report names its origin. Shrunk regressions committed under
// testdata/cert/ are serialized Instances.
type Instance struct {
	// Family is the generator family name ("randtree", "adversarial",
	// "sparse"), or "shrunk" for a minimized regression.
	Family string `json:"family"`
	// Seed is the generator seed that produced the instance; informative
	// only (a shrunk instance no longer matches its seed).
	Seed int64 `json:"seed"`
	// Label is a free-form note ("remy n=7", "fig2c k=2", ...).
	Label string `json:"label,omitempty"`
	// M is the memory bound the instance is certified under.
	M int64 `json:"m"`
	// Tree is the task tree.
	Tree *tree.Tree `json:"tree"`
}

// String summarizes the instance for failure messages.
func (in Instance) String() string {
	if in.Tree == nil {
		return fmt.Sprintf("cert.Instance{%s seed=%d M=%d <nil tree>}", in.Family, in.Seed, in.M)
	}
	return fmt.Sprintf("cert.Instance{%s seed=%d %q M=%d n=%d parents=%v weights=%v}",
		in.Family, in.Seed, in.Label, in.M, in.Tree.N(), in.Tree.Parents(), in.Tree.Weights())
}

// WriteFile serializes the instance as indented JSON to path, creating
// parent directories as needed. This is how cmd/certify commits a shrunk
// regression under testdata/cert/.
func (in Instance) WriteFile(path string) error {
	if in.Tree == nil {
		return fmt.Errorf("cert: writing %s: nil tree", path)
	}
	data, err := json.MarshalIndent(in, "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadInstanceFile loads an instance written by WriteFile. Structural
// defects in the embedded tree are rejected by tree.New via its
// UnmarshalJSON.
func ReadInstanceFile(path string) (Instance, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Instance{}, err
	}
	var in Instance
	if err := json.Unmarshal(data, &in); err != nil {
		return Instance{}, fmt.Errorf("cert: decoding %s: %w", path, err)
	}
	if in.Tree == nil {
		return Instance{}, fmt.Errorf("cert: %s has no tree", path)
	}
	return in, nil
}
