package cert

import (
	"fmt"
	"math/rand"

	"repro/internal/experiments"
	"repro/internal/liu"
	"repro/internal/randtree"
	"repro/internal/sparse"
	"repro/internal/tree"
)

// Families lists the generator family names understood by GenSmall and
// GenMedium: uniform random trees (binary Rémy shapes and unbounded-arity
// recursive trees), the paper's adversarial constructions (Figure 2
// gadgets, grafted chains, stars, caterpillars), and real elimination
// trees obtained by symbolic factorization of random and grid sparse
// patterns.
var Families = []string{"randtree", "adversarial", "sparse"}

// FamilyByIndex maps an arbitrary integer (for example a fuzz-mutated
// one) onto a valid family name.
func FamilyByIndex(i int64) string {
	return Families[int(((i%3)+3)%3)]
}

// GenSmall draws a brute-range instance: at most about a dozen nodes, so
// that the exhaustive oracles of internal/brute stay affordable. The
// (family, seed) pair fully determines the instance.
func GenSmall(family string, seed int64) (Instance, error) {
	return generate(family, seed, true)
}

// GenMedium draws a property-range instance: up to ~150 nodes, beyond
// exhaustive enumeration but well inside the metamorphic property checks
// of CheckProperties. The (family, seed) pair fully determines the
// instance.
func GenMedium(family string, seed int64) (Instance, error) {
	return generate(family, seed, false)
}

func generate(family string, seed int64, small bool) (Instance, error) {
	rng := rand.New(rand.NewSource(seed))
	var (
		t     *tree.Tree
		label string
		m     int64 // 0 means "pick with chooseM"
	)
	switch family {
	case "randtree":
		t, label = genRandtree(rng, small)
	case "adversarial":
		t, label, m = genAdversarial(rng, small)
	case "sparse":
		t, label = genSparse(rng, small)
	default:
		return Instance{}, fmt.Errorf("cert: unknown family %q (have %v)", family, Families)
	}
	if m == 0 {
		m = chooseM(t, rng)
	}
	return Instance{Family: family, Seed: seed, Label: label, M: m, Tree: t}, nil
}

// chooseM picks a memory bound for t: mostly interior points of
// [LB, peak] — where I/O actually happens — with the endpoints and a
// beyond-peak bound mixed in so the zero-I/O and at-LB edge cases stay
// covered. The peak here is only generator guidance (liu.MinMemPeak);
// the certification itself re-derives the optimal peak from brute force.
func chooseM(t *tree.Tree, rng *rand.Rand) int64 {
	lb := t.MaxWBar()
	peak := liu.MinMemPeak(t)
	switch rng.Intn(6) {
	case 0:
		return lb
	case 1:
		return peak
	case 2:
		return peak + 1 + rng.Int63n(3)
	case 3:
		if peak > lb {
			return lb + rng.Int63n(peak-lb+1)
		}
		return lb
	default:
		// Two of six draws land in the lower half of [LB, peak], where
		// schedules overflow M most often — the I/O-bound regime the
		// harness is really about.
		if peak > lb {
			return lb + rng.Int63n((peak-lb)/2+1)
		}
		return lb
	}
}

func genRandtree(rng *rand.Rand, small bool) (*tree.Tree, string) {
	if small {
		n := 2 + rng.Intn(9) // 2..10 nodes
		switch rng.Intn(3) {
		case 0:
			return randtree.AssignWeights(randtree.Remy(n, rng), 1, 9, rng),
				fmt.Sprintf("remy n=%d", n)
		case 1:
			return randtree.AssignWeights(randtree.Recursive(n, rng), 1, 9, rng),
				fmt.Sprintf("recursive n=%d", n)
		default:
			return randtree.AssignWeights(randtree.CatalanSplit(n, rng), 1, 9, rng),
				fmt.Sprintf("catalan n=%d", n)
		}
	}
	n := 20 + rng.Intn(131) // 20..150 nodes
	if rng.Intn(2) == 0 {
		return randtree.Synth(n, rng), fmt.Sprintf("synth n=%d", n)
	}
	return randtree.AssignWeights(randtree.Recursive(n, rng), 1, 12, rng),
		fmt.Sprintf("recursive n=%d", n)
}

// genAdversarial draws from the paper's worst-case constructions. The
// Figure 2 gadgets are returned with their designed memory bound (the
// bound at which the construction bites) half of the time; the grafted
// chains, stars and caterpillars get a chooseM bound like everyone else.
func genAdversarial(rng *rand.Rand, small bool) (*tree.Tree, string, int64) {
	useDesignedM := rng.Intn(2) == 0
	switch rng.Intn(5) {
	case 0: // Figure 2(a): postorders pay per leaf, one order pays 1.
		levels, M := 0, int64(4+2*rng.Int63n(2)) // M ∈ {4, 6}
		if !small {
			levels = rng.Intn(4)
			M = 4 + 2*rng.Int63n(3) // M ∈ {4, 6, 8}
		}
		t, _, err := experiments.Fig2a(levels, M)
		if err != nil {
			panic(err) // unreachable: parameters are in range by construction
		}
		label := fmt.Sprintf("fig2a levels=%d M=%d", levels, M)
		if useDesignedM {
			return t, label, M
		}
		return t, label, 0
	case 1: // Figure 2(c): OptMinMem pays Θ(k²), chain-after-chain 2k.
		k := int64(1 + rng.Intn(2))
		if !small {
			k = int64(1 + rng.Intn(12))
		}
		t, _, M, err := experiments.Fig2c(k)
		if err != nil {
			panic(err) // unreachable: k >= 1
		}
		label := fmt.Sprintf("fig2c k=%d", k)
		if useDesignedM {
			return t, label, M
		}
		return t, label, 0
	case 2: // Grafted deep chains: the Figure 2(b) shape, randomized.
		chains := 2 + rng.Intn(2)
		maxLen, maxW := 4, int64(9)
		if !small {
			chains = 3 + rng.Intn(6)
			maxLen, maxW = 10, 20
		}
		subs := make([]*tree.Tree, chains)
		for i := range subs {
			ws := make([]int64, 2+rng.Intn(maxLen-1))
			for j := range ws {
				ws[j] = 1 + rng.Int63n(maxW)
			}
			subs[i] = tree.Chain(ws...)
		}
		return tree.Graft(1+rng.Int63n(3), subs...), fmt.Sprintf("chains k=%d", chains), 0
	case 3: // Fan-out: a star stresses sibling ordering and FiF ties.
		leaves := 3 + rng.Intn(5)
		maxW := int64(9)
		if !small {
			leaves = 10 + rng.Intn(60)
			maxW = 30
		}
		ws := make([]int64, leaves)
		for j := range ws {
			ws[j] = 1 + rng.Int63n(maxW)
		}
		return tree.Star(1+rng.Int63n(maxW), ws...), fmt.Sprintf("star leaves=%d", leaves), 0
	default: // Caterpillar: one leaf per spine node, mixed depth/fan-out.
		n := 3 + rng.Intn(4)
		if !small {
			n = 10 + rng.Intn(40)
		}
		return tree.Caterpillar(n, 1+rng.Int63n(6), 1+rng.Int63n(9)),
			fmt.Sprintf("caterpillar n=%d", n), 0
	}
}

func genSparse(rng *rand.Rand, small bool) (*tree.Tree, string) {
	if small {
		// Dense-ish random patterns have near-chain elimination trees
		// (one topological order, peak == LB, never I/O-bound), so the
		// small class mixes very sparse patterns — whose forests become
		// branchy trees under the virtual root — with tiny
		// nested-dissection grids, whose separators branch by design.
		if rng.Intn(2) == 0 {
			nx, ny := 2+rng.Intn(2), 3 // 2x3 or 3x3 grid
			p, err := sparse.Grid2D(nx, ny)
			if err != nil {
				panic(err) // unreachable: dimensions are in range
			}
			t, err := sparse.TaskTree(p, sparse.NestedDissection2D(nx, ny, 1))
			if err != nil {
				panic(err) // unreachable: Etree output is well-formed
			}
			return t, fmt.Sprintf("etree-nd2d %dx%d", nx, ny)
		}
		n := 4 + rng.Intn(6) // 4..9 columns
		p, err := sparse.RandomSymmetric(n, 1+rng.Intn(2), rng)
		if err != nil {
			panic(err) // unreachable: n and avgDeg are in range
		}
		t, err := sparse.TaskTree(p, nil)
		if err != nil {
			panic(err) // unreachable: Etree output is well-formed
		}
		return t, fmt.Sprintf("etree-random n=%d", n)
	}
	if rng.Intn(3) == 0 {
		// A real multifrontal shape: 3×3×3 grid under nested dissection.
		p, err := sparse.Grid3D(3, 3, 3)
		if err != nil {
			panic(err)
		}
		t, err := sparse.TaskTree(p, sparse.NestedDissection3D(3, 3, 3, 2))
		if err != nil {
			panic(err)
		}
		return t, "etree-nd3d 3x3x3"
	}
	n := 15 + rng.Intn(60)
	p, err := sparse.RandomSymmetric(n, 2+rng.Intn(3), rng)
	if err != nil {
		panic(err)
	}
	t, err := sparse.TaskTree(p, nil)
	if err != nil {
		panic(err)
	}
	return t, fmt.Sprintf("etree-random n=%d", n)
}
