package cert

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/brute"
	"repro/internal/tree"
)

// testLimits bounds the oracles tightly enough that a pathological
// instance is skipped instead of stalling the suite.
func testLimits() Options {
	return Options{Limits: brute.Limits{MaxOrders: 2_000_000}}
}

// TestCertifySweepAllFamilies is the continuous-differential core: a
// seeded sweep across every generator family must certify with zero
// divergences, and every family must actually contribute.
func TestCertifySweepAllFamilies(t *testing.T) {
	perFamily := make(map[string]int)
	ioBound := make(map[string]int)
	for seed := int64(0); seed < 100; seed++ {
		for _, fam := range Families {
			inst, err := GenSmall(fam, seed)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := Certify(context.Background(), inst, testLimits())
			if err != nil {
				if IsSkip(err) {
					continue
				}
				t.Fatalf("seed %d family %s: %v", seed, fam, err)
			}
			perFamily[fam]++
			if rep.OptIO > 0 {
				ioBound[fam]++
			}
			if rep.PostorderIO < rep.OptIO {
				t.Fatalf("seed %d family %s: report inconsistent: postorder %d < optimum %d",
					seed, fam, rep.PostorderIO, rep.OptIO)
			}
		}
	}
	for _, fam := range Families {
		if perFamily[fam] < 90 {
			t.Fatalf("family %s certified only %d/100 instances", fam, perFamily[fam])
		}
		// Every family must contribute I/O-bound instances (OptIO > 0) —
		// otherwise its ≥-optimum and accounting checks are vacuous.
		// (The heuristic itself is exactly optimal on every small
		// instance certified to date, so suboptimality cannot be the
		// non-vacuity witness here.)
		if ioBound[fam] == 0 {
			t.Fatalf("family %s produced no I/O-bound instance in 100 seeds", fam)
		}
	}
}

// TestGenDeterministic: the (family, seed) pair fully determines the
// instance, for both size classes.
func TestGenDeterministic(t *testing.T) {
	for _, fam := range Families {
		for _, gen := range []func(string, int64) (Instance, error){GenSmall, GenMedium} {
			a, err := gen(fam, 42)
			if err != nil {
				t.Fatal(err)
			}
			b, err := gen(fam, 42)
			if err != nil {
				t.Fatal(err)
			}
			if a.M != b.M || !reflect.DeepEqual(a.Tree.Parents(), b.Tree.Parents()) ||
				!reflect.DeepEqual(a.Tree.Weights(), b.Tree.Weights()) {
				t.Fatalf("family %s: same seed produced different instances", fam)
			}
		}
	}
}

// TestGenUnknownFamily: a bad family name is an error, not a panic.
func TestGenUnknownFamily(t *testing.T) {
	if _, err := GenSmall("nope", 1); err == nil {
		t.Fatal("unknown family accepted")
	}
}

// TestFamilyByIndex maps any integer, including negatives, onto a family.
func TestFamilyByIndex(t *testing.T) {
	for _, i := range []int64{-7, -1, 0, 1, 2, 3, 1 << 40} {
		fam := FamilyByIndex(i)
		if _, err := GenSmall(fam, 1); err != nil {
			t.Fatalf("FamilyByIndex(%d) = %q: %v", i, fam, err)
		}
	}
}

// TestInstanceRoundTrip pins the JSON regression-file codec.
func TestInstanceRoundTrip(t *testing.T) {
	inst, err := GenSmall("adversarial", 7)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sub", "case.json")
	if err := inst.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadInstanceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Family != inst.Family || got.M != inst.M ||
		!reflect.DeepEqual(got.Tree.Parents(), inst.Tree.Parents()) ||
		!reflect.DeepEqual(got.Tree.Weights(), inst.Tree.Weights()) {
		t.Fatalf("round trip diverged: wrote %s, read %s", inst, got)
	}
}

// TestCertifyInfeasible: a bound below LB is a skip, not a divergence.
func TestCertifyInfeasible(t *testing.T) {
	inst := Instance{Family: "manual", M: 1, Tree: tree.Chain(3, 5, 2)}
	_, err := Certify(context.Background(), inst, testLimits())
	if !errors.Is(err, ErrInfeasible) || !IsSkip(err) {
		t.Fatalf("err = %v, want ErrInfeasible (a skip)", err)
	}
	if err := CheckProperties(context.Background(), inst); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("properties err = %v, want ErrInfeasible", err)
	}
}

// TestCertifyBudget: an exhausted enumeration budget surfaces as
// brute.ErrBudget and classifies as a skip.
func TestCertifyBudget(t *testing.T) {
	inst := Instance{
		Family: "manual",
		M:      6,
		Tree:   tree.Graft(1, tree.Chain(3, 5, 2, 6), tree.Chain(3, 5, 2, 6)),
	}
	_, err := Certify(context.Background(), inst, Options{Limits: brute.Limits{MaxOrders: 3}})
	if !errors.Is(err, brute.ErrBudget) || !IsSkip(err) {
		t.Fatalf("err = %v, want brute.ErrBudget (a skip)", err)
	}
}

// TestCertifyCancel: cancellation propagates out of the enumeration as a
// skip-class error, promptly.
func TestCertifyCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	inst, err := GenSmall("randtree", 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Certify(ctx, inst, testLimits()); !errors.Is(err, context.Canceled) || !IsSkip(err) {
		t.Fatalf("err = %v, want context.Canceled (a skip)", err)
	}
}

// TestRegressionCorpus replays every committed regression under
// testdata/cert/: each one must certify cleanly with the production
// engine. Files land here via the shrink-and-commit workflow (see
// regen_test.go and cmd/certify); once committed they guard forever.
func TestRegressionCorpus(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "cert", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no committed regressions under testdata/cert/")
	}
	for _, path := range paths {
		inst, err := ReadInstanceFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if _, err := Certify(context.Background(), inst, testLimits()); err != nil {
			t.Errorf("%s: %v", path, err)
		}
		if err := CheckProperties(context.Background(), inst); err != nil {
			t.Errorf("%s (properties): %v", path, err)
		}
	}
}
