package liu

import (
	"math/rand"
	"testing"

	"repro/internal/tree"
)

// budgetedEquals checks that a budgeted cache answers every query exactly
// like an unbounded one over the same tree: peaks at every node and the
// schedule at the root.
func budgetedEquals(t *testing.T, tr *tree.Tree, opts CacheOptions, label string) {
	t.Helper()
	ref := NewProfileCache(tr)
	c := NewProfileCacheOpts(tr, opts)
	for v := 0; v < tr.N(); v++ {
		if got, want := c.Peak(v), ref.Peak(v); got != want {
			t.Fatalf("%s: node %d peak %d, unbounded %d", label, v, got, want)
		}
	}
	got := c.AppendSchedule(tr.Root(), nil)
	want := ref.AppendSchedule(tr.Root(), nil)
	if len(got) != len(want) {
		t.Fatalf("%s: schedule lengths %d vs %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: schedules differ at %d", label, i)
		}
	}
}

// TestBudgetedCacheMatchesUnbounded sweeps tiny-to-generous budgets and
// segment caps over random trees: residency policy must never change a
// query answer.
func TestBudgetedCacheMatchesUnbounded(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	budgets := []CacheOptions{
		{MaxResidentBytes: 1},       // constant thrash
		{MaxResidentBytes: 1 << 12}, // tight
		{MaxResidentBytes: 1 << 24}, // loose
		{MaxProfileSegments: 1},     // aggressive segment cap, no budget
		{MaxResidentBytes: 1 << 12, MaxProfileSegments: 2},
	}
	for trial := 0; trial < 40; trial++ {
		tr := cacheRandomTree(2+rng.Intn(300), rng)
		for _, opts := range budgets {
			budgetedEquals(t, tr, opts, "static tree")
		}
	}
}

// TestBudgetedIncrementalMatchesFresh is the budgeted mirror of
// TestProfileCacheIncrementalMatchesFresh: random splices with path
// invalidation under a thrashing budget must still reproduce a fresh
// MinMem of the frozen tree.
func TestBudgetedIncrementalMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 80; trial++ {
		tr := cacheRandomTree(2+rng.Intn(60), rng)
		m := newWeightedMutable(tr)
		opts := CacheOptions{MaxResidentBytes: []int64{1, 512, 1 << 16}[trial%3]}
		if trial%2 == 0 {
			opts.MaxProfileSegments = 1 + rng.Intn(3)
		}
		c := NewProfileCacheOpts(m, opts)
		c.Peak(m.root)
		k := 1 + rng.Intn(8)
		for e := 0; e < k; e++ {
			v := rng.Intn(m.N())
			w := m.weight[v]
			if w <= 0 {
				continue
			}
			top := m.splice(v, 1+rng.Int63n(w))
			c.Grow()
			c.Invalidate(top)
			if rng.Intn(2) == 0 {
				c.Peak(m.root)
			}
		}
		frozen, toNew := m.freeze()
		wantSched, wantPeak := MinMem(frozen)
		if got := c.Peak(m.root); got != wantPeak {
			t.Fatalf("trial %d: budgeted incremental peak %d, fresh MinMem %d", trial, got, wantPeak)
		}
		got := c.AppendSchedule(m.root, nil)
		if len(got) != len(wantSched) {
			t.Fatalf("trial %d: schedule lengths %d vs %d", trial, len(got), len(wantSched))
		}
		for i := range got {
			if toNew[got[i]] != wantSched[i] {
				t.Fatalf("trial %d: schedules differ at step %d", trial, i)
			}
		}
	}
}

// TestEvictThenInvalidate pins the evict-then-invalidate corner: after a
// subtree is evicted (clean, memory reclaimed), invalidating a node inside
// it must walk through the evicted (profile-free) region without touching
// freed memory, and the next query must rebuild everything correctly.
func TestEvictThenInvalidate(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 60; trial++ {
		tr := cacheRandomTree(10+rng.Intn(200), rng)
		m := newWeightedMutable(tr)
		// A 1-byte budget evicts every subtree hanging off every
		// invalidated path, so each splice-and-query cycle runs the
		// evict-then-invalidate sequence at many nodes.
		c := NewProfileCacheOpts(m, CacheOptions{MaxResidentBytes: 1})
		c.Peak(m.root)
		for e := 0; e < 6; e++ {
			v := rng.Intn(m.N())
			if m.weight[v] <= 0 {
				continue
			}
			top := m.splice(v, 1+rng.Int63n(m.weight[v]))
			c.Grow()
			c.Invalidate(top)
			// Invalidate deeper nodes of regions that were just evicted:
			// leaves are always inside some evicted hanging subtree here.
			leaf := rng.Intn(m.N())
			c.Invalidate(leaf)
		}
		frozen, toNew := m.freeze()
		wantSched, wantPeak := MinMem(frozen)
		if got := c.Peak(m.root); got != wantPeak {
			t.Fatalf("trial %d: peak %d after evict+invalidate cycles, want %d", trial, got, wantPeak)
		}
		got := c.AppendSchedule(m.root, nil)
		for i := range got {
			if toNew[got[i]] != wantSched[i] {
				t.Fatalf("trial %d: schedule differs at %d", trial, i)
			}
		}
	}
}

// TestEvictionMidParallelWarm drives the sharded warm under budgets small
// enough that workers evict inside their shards while other workers are
// still warming: the final state must match a sequential unbounded warm at
// every node, for every worker count.
func TestEvictionMidParallelWarm(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 30; trial++ {
		tr := cacheRandomTree(200+rng.Intn(2000), rng)
		ref := NewProfileCache(tr)
		ref.Peak(tr.Root())
		for _, workers := range []int{2, 4, 8} {
			for _, budget := range []int64{1, 1 << 14} {
				c := NewProfileCacheOpts(tr, CacheOptions{MaxResidentBytes: budget})
				c.EnsureParallel(tr.Root(), workers)
				for v := 0; v < tr.N(); v++ {
					if !c.valid[v] {
						t.Fatalf("trial %d w=%d budget=%d: node %d left dirty", trial, workers, budget, v)
					}
					if c.peak[v] != ref.peak[v] {
						t.Fatalf("trial %d w=%d budget=%d: node %d peak %d, want %d",
							trial, workers, budget, v, c.peak[v], ref.peak[v])
					}
				}
				got := c.AppendSchedule(tr.Root(), nil)
				want := ref.AppendSchedule(tr.Root(), nil)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("trial %d w=%d budget=%d: schedules differ at %d", trial, workers, budget, i)
					}
				}
			}
		}
	}
}

// TestBudgetBoundsResidentBytes checks the budget does its actual job on a
// profile-heavy tree: the high-water resident footprint under a budget
// must stay well below the unbounded footprint (the pinned working set and
// the schedule ropes form the floor), and eviction counters must move.
func TestBudgetBoundsResidentBytes(t *testing.T) {
	// A hill–valley staircase: spine outputs grow upward, leaf peaks
	// shrink downward, so every spine level keeps one more segment and
	// profile slices dominate the footprint (the experiments.Huge shape).
	const L = 400
	parent := make([]int, 0, 2*L)
	weight := make([]int64, 0, 2*L)
	prev := tree.None
	for j := L; j >= 1; j-- {
		id := len(parent)
		parent = append(parent, prev)
		weight = append(weight, int64(j)*2)
		parent = append(parent, id)
		weight = append(weight, int64(5000-j*10))
		prev = id
	}
	tr := tree.MustNew(parent, weight)

	unbounded := NewProfileCache(tr)
	unbounded.Peak(tr.Root())
	full := unbounded.Stats().PeakResidentBytes

	budget := full / 10
	c := NewProfileCacheOpts(tr, CacheOptions{MaxResidentBytes: budget})
	c.Peak(tr.Root())
	st := c.Stats()
	if st.SlicedProfiles == 0 {
		t.Fatalf("budget %d evicted no slices (unbounded footprint %d)", budget, full)
	}
	// The warm's floor is the rope pages plus the merge frontier; on this
	// shape that is far below the unbounded segment footprint.
	if st.PeakResidentBytes > full/2 {
		t.Fatalf("budgeted high-water %d, want well under unbounded %d", st.PeakResidentBytes, full)
	}
	if got, want := c.Peak(tr.Root()), unbounded.Peak(tr.Root()); got != want {
		t.Fatalf("budgeted peak %d, unbounded %d", got, want)
	}
}

// TestAppendScheduleInteriorSliceless pins the regression where flattening
// an interior clean-but-sliceless node rebuilt its profile while resident
// ancestors still referenced the old rope pages: recompute must not pool
// (and thereby recycle) pages a resident ancestor can still reach, or the
// next root flatten silently returns a truncated traversal.
func TestAppendScheduleInteriorSliceless(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 60; trial++ {
		tr := cacheRandomTree(10+rng.Intn(120), rng)
		c := NewProfileCacheOpts(tr, CacheOptions{MaxResidentBytes: 1})
		want := NewProfileCache(tr).AppendSchedule(tr.Root(), nil)
		c.Peak(tr.Root())
		c.AppendSchedule(tr.Root(), nil) // leaves interiors sliceless
		// Flatten every node directly — interior sliceless nodes rebuild
		// under resident ancestors here — then re-query the root.
		for v := 0; v < tr.N(); v++ {
			c.AppendSchedule(v, nil)
		}
		got := c.AppendSchedule(tr.Root(), nil)
		if len(got) != len(want) {
			t.Fatalf("trial %d: root schedule length %d after interior flattens, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: root schedule differs at %d after interior flattens", trial, i)
			}
		}
	}
}

// TestSegmentCapEvictsHeavyProfiles checks MaxProfileSegments alone (no
// byte budget): consumed profiles over the cap must be dropped, and
// results must be unchanged.
func TestSegmentCapEvictsHeavyProfiles(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	tr := cacheRandomTree(500, rng)
	c := NewProfileCacheOpts(tr, CacheOptions{MaxProfileSegments: 1})
	sched := c.AppendSchedule(tr.Root(), nil)
	if st := c.Stats(); st.SlicedProfiles == 0 {
		t.Fatal("segment cap 1 dropped no profiles on a 500-node random tree")
	}
	want, _ := MinMem(tr)
	for i := range want {
		if sched[i] != want[i] {
			t.Fatalf("schedule differs at %d under segment cap", i)
		}
	}
}
