package liu

import (
	"math/rand"
	"testing"

	"repro/internal/brute"
	"repro/internal/memsim"
	"repro/internal/tree"
)

func TestMinMemLeaf(t *testing.T) {
	tr := tree.Chain(7)
	sched, peak := MinMem(tr)
	if peak != 7 || len(sched) != 1 || sched[0] != 0 {
		t.Fatalf("sched=%v peak=%d", sched, peak)
	}
}

func TestMinMemChain(t *testing.T) {
	// Chains have a single topological order; peak = max w̄.
	tr := tree.Chain(3, 9, 2, 6)
	sched, peak := MinMem(tr)
	if !tree.IsTopological(tr, sched) {
		t.Fatalf("not topological: %v", sched)
	}
	if peak != 9 {
		t.Fatalf("peak=%d want 9", peak)
	}
}

func TestMinMemStar(t *testing.T) {
	// All children must be resident at the root: peak = max(w̄ values).
	tr := tree.Star(2, 4, 1, 3)
	sched, peak := MinMem(tr)
	if !tree.IsTopological(tr, sched) {
		t.Fatal("not topological")
	}
	if peak != 8 {
		t.Fatalf("peak=%d want 8", peak)
	}
}

func TestMinMemFig2bPeak(t *testing.T) {
	// The paper states OPTMINMEM reaches peak 8 on the Figure 2(b)
	// tree, versus 9 for the postorder.
	tr := tree.Graft(1, tree.Chain(3, 5, 2, 6), tree.Chain(3, 5, 2, 6))
	sched, peak := MinMem(tr)
	if peak != 8 {
		t.Fatalf("peak=%d want 8", peak)
	}
	got, err := memsim.Peak(tr, sched)
	if err != nil {
		t.Fatal(err)
	}
	if got != peak {
		t.Fatalf("declared peak %d but simulated %d", peak, got)
	}
	_, popeak := PostOrderMinMem(tr)
	if popeak != 9 {
		t.Fatalf("postorder peak=%d want 9", popeak)
	}
}

func TestMinMemFig2cPeak(t *testing.T) {
	// Section 4.4: OPTMINMEM reaches peak 5k on the Figure 2(c) family
	// (the best postorder needs 6k).
	for k := int64(1); k <= 6; k++ {
		var ws []int64
		for j := int64(0); j <= k; j++ {
			ws = append(ws, 2*k-j, 3*k+j)
		}
		tr := tree.Graft(1, tree.Chain(ws...), tree.Chain(ws...))
		_, peak := MinMem(tr)
		if peak != 5*k {
			t.Fatalf("k=%d: peak=%d want %d", k, peak, 5*k)
		}
		_, popeak := PostOrderMinMem(tr)
		if popeak != 6*k {
			t.Fatalf("k=%d: postorder peak=%d want %d", k, popeak, 6*k)
		}
	}
}

func TestMinMemMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	trials := 300
	if testing.Short() {
		trials = 60
	}
	for trial := 0; trial < trials; trial++ {
		tr := randomTree(1+rng.Intn(8), rng)
		sched, peak := MinMem(tr)
		if !tree.IsTopological(tr, sched) {
			t.Fatalf("trial %d: schedule invalid", trial)
		}
		sim, err := memsim.Peak(tr, sched)
		if err != nil {
			t.Fatal(err)
		}
		if sim != peak {
			t.Fatalf("trial %d: declared %d simulated %d", trial, peak, sim)
		}
		opt, err := brute.OptimalPeak(tr)
		if err != nil {
			t.Fatal(err)
		}
		if peak != opt {
			t.Fatalf("trial %d: MinMem peak %d but optimal %d on parents=%v weights=%v",
				trial, peak, opt, tr.Parents(), tr.Weights())
		}
	}
}

func TestPostOrderMinMemIsBestPostorder(t *testing.T) {
	// Exhaustively compare against every postorder (child permutations)
	// on small trees.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		tr := randomTree(1+rng.Intn(7), rng)
		sched, peak := PostOrderMinMem(tr)
		if !tree.IsPostorder(tr, sched) {
			t.Fatalf("trial %d: not a postorder", trial)
		}
		sim, err := memsim.Peak(tr, sched)
		if err != nil {
			t.Fatal(err)
		}
		if sim != peak {
			t.Fatalf("trial %d: declared %d simulated %d", trial, peak, sim)
		}
		best := bestPostorderPeak(tr)
		if peak != best {
			t.Fatalf("trial %d: got %d want %d", trial, peak, best)
		}
	}
}

// bestPostorderPeak enumerates all postorders by trying every child
// permutation at every node.
func bestPostorderPeak(tr *tree.Tree) int64 {
	var best int64 = 1 << 62
	var enumerate func(order [][]int, node int, done func())
	// Build child orders per node, then evaluate.
	perms := func(xs []int) [][]int {
		if len(xs) == 0 {
			return [][]int{{}}
		}
		var out [][]int
		var rec func(cur []int, rest []int)
		rec = func(cur, rest []int) {
			if len(rest) == 0 {
				out = append(out, append([]int(nil), cur...))
				return
			}
			for i := range rest {
				next := append(append([]int(nil), rest[:i]...), rest[i+1:]...)
				rec(append(cur, rest[i]), next)
			}
		}
		rec(nil, xs)
		return out
	}
	_ = enumerate
	nodes := tr.TopDown()
	choice := make([][][]int, tr.N())
	for _, v := range nodes {
		choice[v] = perms(tr.Children(v))
	}
	idx := make([]int, tr.N())
	var walk func(k int)
	walk = func(k int) {
		if k == len(nodes) {
			var sched tree.Schedule
			var emit func(v int)
			emit = func(v int) {
				for _, c := range choice[v][idx[v]] {
					emit(c)
				}
				sched = append(sched, v)
			}
			emit(tr.Root())
			p, err := memsim.Peak(tr, sched)
			if err != nil {
				panic(err)
			}
			if p < best {
				best = p
			}
			return
		}
		v := nodes[k]
		for i := range choice[v] {
			idx[v] = i
			walk(k + 1)
		}
	}
	walk(0)
	return best
}

func TestMinMemNeverWorseThanPostorder(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	strictly := false
	for trial := 0; trial < 200; trial++ {
		tr := randomTree(2+rng.Intn(30), rng)
		_, opt := MinMem(tr)
		_, po := PostOrderMinMem(tr)
		if opt > po {
			t.Fatalf("trial %d: MinMem %d > PostOrderMinMem %d", trial, opt, po)
		}
		if opt < po {
			strictly = true
		}
		if lb := tr.MaxWBar(); opt < lb {
			t.Fatalf("trial %d: peak %d below LB %d", trial, opt, lb)
		}
	}
	if !strictly {
		t.Error("expected MinMem to strictly beat the best postorder somewhere")
	}
}

func TestMinMemDeepChainNoOverflow(t *testing.T) {
	// 200k-node chain: exercises the explicit stacks in MinMem.
	n := 200_000
	parent := make([]int, n)
	weight := make([]int64, n)
	parent[0] = tree.None
	weight[0] = 1
	for i := 1; i < n; i++ {
		parent[i] = i - 1
		weight[i] = int64(1 + i%5)
	}
	tr := tree.MustNew(parent, weight)
	sched, peak := MinMem(tr)
	if len(sched) != n {
		t.Fatalf("schedule length %d", len(sched))
	}
	if peak != tr.MaxWBar() {
		t.Fatalf("chain peak %d want %d", peak, tr.MaxWBar())
	}
}

func TestCanonicalProfileInvariant(t *testing.T) {
	// The root profile must have strictly decreasing hills and strictly
	// increasing valleys (cumulative), ending at the root weight.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		tr := randomTree(1+rng.Intn(40), rng)
		prof := minMemProfile(tr, tr.Root())
		var r, prevHill, prevValley int64
		prevHill = 1 << 62
		prevValley = -1
		for i, s := range prof {
			hill := r + s.hill
			valley := r + s.valley
			if hill >= prevHill {
				t.Fatalf("trial %d: hills not strictly decreasing at %d", trial, i)
			}
			if valley <= prevValley {
				t.Fatalf("trial %d: valleys not strictly increasing at %d", trial, i)
			}
			if hill < valley {
				t.Fatalf("trial %d: hill %d below valley %d", trial, hill, valley)
			}
			prevHill, prevValley = hill, valley
			r = valley
		}
		if r != tr.Weight(tr.Root()) {
			t.Fatalf("trial %d: final valley %d ≠ root weight %d", trial, r, tr.Weight(tr.Root()))
		}
	}
}

// randomTree attaches each node to a random earlier node.
func randomTree(n int, rng *rand.Rand) *tree.Tree {
	parent := make([]int, n)
	weight := make([]int64, n)
	parent[0] = tree.None
	weight[0] = 1 + rng.Int63n(12)
	for i := 1; i < n; i++ {
		parent[i] = rng.Intn(i)
		weight[i] = 1 + rng.Int63n(12)
	}
	return tree.MustNew(parent, weight)
}
