package liu

import (
	"math/rand"
	"testing"
)

// TestProfileCacheRecomputeZeroAlloc guards the pooled merge path: on a
// warm cache, an Invalidate followed by the recomputation of the dirty
// root path must perform zero heap allocations — the profile slices and
// rope nodes freed by Invalidate are exactly what the recompute needs, and
// all transient state lives in the scratch (the mirror of
// TestSimulatorZeroAllocWarm for the profile side of the inner loop).
func TestProfileCacheRecomputeZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	tr := cacheRandomTree(2000, rng)
	c := NewProfileCache(tr)
	c.Peak(tr.Root())
	// Pick a deep node so the recomputed path is substantial.
	deepest, depth := tr.Root(), -1
	for v := 0; v < tr.N(); v++ {
		d := 0
		for p := v; p != tr.Root(); p = tr.Parent(p) {
			d++
		}
		if d > depth {
			deepest, depth = v, d
		}
	}
	cycle := func() {
		c.Invalidate(deepest)
		c.Peak(tr.Root())
	}
	cycle() // warm the scratch and free lists
	if allocs := testing.AllocsPerRun(20, cycle); allocs != 0 {
		t.Fatalf("warm invalidate+recompute allocates %.1f times per run, want 0", allocs)
	}
}

// TestArenaFreeOnInvalidate pins the recycling discipline that bounds
// arena memory by the live profile set: Invalidate returns the path's rope
// nodes to the free list, and the following recomputation drains it again
// instead of allocating fresh nodes.
func TestArenaFreeOnInvalidate(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	tr := cacheRandomTree(300, rng)
	c := NewProfileCache(tr)
	c.Peak(tr.Root())
	if n := countFreeRopes(&c.sc.arena); n != 0 {
		t.Fatalf("after a cold warm the free list holds %d ropes, want 0", n)
	}
	leaf := tr.Leaves()[0]
	c.Invalidate(leaf)
	freed := countFreeRopes(&c.sc.arena)
	if freed == 0 {
		t.Fatal("Invalidate freed no rope nodes")
	}
	c.Peak(tr.Root())
	if n := countFreeRopes(&c.sc.arena); n >= freed {
		t.Fatalf("recompute left %d of %d freed ropes unused", n, freed)
	}
	// Steady state: repeated cycles never grow the pooled population.
	for i := 0; i < 50; i++ {
		c.Invalidate(leaf)
		c.Peak(tr.Root())
	}
	if n := countFreeRopes(&c.sc.arena); n >= freed {
		t.Fatalf("free list grew to %d ropes across cycles (one cycle frees %d)", n, freed)
	}
}

func countFreeRopes(a *profileArena) int {
	n := 0
	for r := a.freeRopes; r != nil; r = r.nextOwned {
		n++
	}
	return n
}

// TestEnsureParallelMatchesSequential: a sharded warm must leave the cache
// in exactly the state a sequential warm produces — same peaks everywhere
// and the same root schedule.
func TestEnsureParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 40; trial++ {
		tr := cacheRandomTree(2+rng.Intn(800), rng)
		seq := NewProfileCache(tr)
		seq.Peak(tr.Root())
		for _, workers := range []int{2, 4, 8} {
			par := NewProfileCache(tr)
			par.EnsureParallel(tr.Root(), workers)
			for v := 0; v < tr.N(); v++ {
				if !par.valid[v] {
					t.Fatalf("trial %d workers=%d: node %d left dirty by EnsureParallel", trial, workers, v)
				}
				if par.peak[v] != seq.peak[v] {
					t.Fatalf("trial %d workers=%d: node %d peak %d vs sequential %d",
						trial, workers, v, par.peak[v], seq.peak[v])
				}
			}
			got := par.AppendSchedule(tr.Root(), nil)
			want := seq.AppendSchedule(tr.Root(), nil)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d workers=%d: schedules differ at %d", trial, workers, i)
				}
			}
		}
	}
}
