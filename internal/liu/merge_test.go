package liu

import (
	"math/rand"
	"sort"
	"testing"
)

// referenceMerge is the pre-arena profile merge, kept verbatim as a frozen
// baseline: all segments stable-sorted by non-increasing hill − valley
// (ties resolved by child order, then per-child segment order). The
// production merge in mergeScratch replaced the sort with a bottom-up
// stable run-merge; since ReferenceRecExpand itself runs on the shared
// merge, this property test is what still pins the original ordering.
func referenceMerge(parts []profile) profile {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	items := make([]segment, 0, total)
	for _, p := range parts {
		items = append(items, p...)
	}
	sort.SliceStable(items, func(a, b int) bool {
		da := items[a].hill - items[a].valley
		db := items[b].hill - items[b].valley
		return da > db
	})
	return items
}

// randomCanonicalPart builds a profile with strictly decreasing
// hill − valley — the invariant canonical profiles guarantee and the
// run-merge relies on — with deliberately many cross-part key collisions
// so the stability tie-breaks are exercised.
func randomCanonicalPart(rng *rand.Rand, tag int) profile {
	n := 1 + rng.Intn(6)
	p := make(profile, 0, n)
	d := int64(20 + rng.Intn(10))
	for i := 0; i < n; i++ {
		v := rng.Int63n(5)
		// A segment's identity is its rope pointer (buf carries a debug
		// tag); equal-key segments from different parts stay telling.
		p = append(p, segment{hill: d + v, valley: v, nodes: &nodeRope{buf: [1]int{tag*100 + i}}})
		d -= 1 + rng.Int63n(4) // strictly decreasing hill − valley
	}
	return p
}

// TestMergeMatchesStableSortReference: the run-merge must reproduce the
// frozen stable-sort merge exactly — same segment values in the same
// order, including the identity (rope pointer) of equal-key segments.
func TestMergeMatchesStableSortReference(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	var ms mergeScratch
	for trial := 0; trial < 500; trial++ {
		parts := make([]profile, 1+rng.Intn(6))
		for i := range parts {
			parts[i] = randomCanonicalPart(rng, i)
		}
		want := referenceMerge(parts)
		got := ms.merge(parts)
		if len(got) != len(want) {
			t.Fatalf("trial %d: merged %d segments, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i].hill != want[i].hill || got[i].valley != want[i].valley || got[i].nodes != want[i].nodes {
				t.Fatalf("trial %d: segment %d differs: got {%d %d %p}, want {%d %d %p}",
					trial, i,
					got[i].hill, got[i].valley, got[i].nodes,
					want[i].hill, want[i].valley, want[i].nodes)
			}
		}
	}
}
