package liu

// Streaming schedule emission: walking the rope structure of a cached
// profile and handing the traversal to the consumer segment by segment,
// instead of flattening it into one n-word slice. Two variants share the
// machinery:
//
//   - EmitSchedule / ScheduleIter stream without touching residency: the
//     cache state after the emission is exactly the state AppendSchedule
//     leaves behind (AppendSchedule itself is a thin collector over the
//     stream).
//   - EmitScheduleRelease / ScheduleIterRelease additionally return every
//     rope page to the arena the moment the walk has consumed it, and drop
//     the subtree's profile slices up front, leaving the whole subtree in
//     the clean-but-evicted state of DESIGN.md §2.6 (peaks stay served;
//     profiles rematerialize on demand). This is the final-emission mode:
//     it removes the Θ(n) rope floor of AppendSchedule, because rope
//     memory shrinks as the traversal streams out instead of being pinned
//     until one flattened slice has been built.
//
// Releasing is sound only at the same moment subtree eviction is sound: no
// profile outside v's subtree may reference the subtree's rope pages. That
// is guaranteed exactly when every ancestor of v is dirty (then their
// slices and rope chains were freed by the Invalidate that dirtied them) —
// trivially true at the root — and when no Pin is outstanding anywhere in
// the cache (a pinned unit root means a concurrent snapshot reader may be
// walking the ropes). When either condition fails, the releasing entry
// points degrade to the non-consuming walk, so callers never need to check
// first; results are identical either way.
//
// A non-releasing iterator must be drained (or Closed) before the next
// mutation of the tree or cache, like any AppendSchedule result that
// aliases live ropes. A releasing iterator owns everything it walks — the
// detach up front severs the pages from the cache — so cache queries and
// even invalidations between Next calls are safe; they simply rematerialize
// what the emission released.

// emitChunkIDs is the target size of one yielded segment. Chunks are
// reused, so the constant trades callback overhead against the working-set
// granularity of consumers (a 32 KiB chunk streams well through both the
// FiF simulator and buffered writers).
const emitChunkIDs = 4096

// ScheduleIter is a pull-style cursor over the optimal traversal of one
// subtree: successive Next calls yield the schedule in traversal order,
// segment by segment, without materializing it. Obtain one from
// ProfileCache.ScheduleIter or ScheduleIterRelease; see EmitSchedule for
// the push-style equivalent.
type ScheduleIter struct {
	c         *ProfileCache
	v         int
	segs      profile
	segIdx    int
	stack     []*nodeRope
	buf       []int
	releasing bool
	pinned    bool
	done      bool
}

// ScheduleIter returns a pull-style iterator over the optimal traversal of
// v's subtree. The iterator holds a Pin on v until it is exhausted or
// Closed; the underlying ropes stay resident, so the caller must drain it
// before mutating the tree or invalidating the cache.
func (c *ProfileCache) ScheduleIter(v int) *ScheduleIter {
	return c.scheduleIter(v, false)
}

// ScheduleIterRelease is ScheduleIter in releasing mode: every rope page is
// returned to the arena as soon as the walk has consumed it and the
// subtree's profile slices are dropped up front, leaving v's subtree
// clean-but-evicted (peaks still served, profiles rematerialized on
// demand). Releasing engages only when it is sound — every ancestor of v
// dirty and no Pin outstanding anywhere in the cache — and degrades to the
// non-consuming ScheduleIter otherwise; the emitted traversal is identical
// either way.
func (c *ProfileCache) ScheduleIterRelease(v int) *ScheduleIter {
	return c.scheduleIter(v, true)
}

// scheduleIter builds the iterator: ensure under a pin (the slice tier
// could otherwise reclaim v's just-computed slice mid-ensure), then either
// keep the pin (non-releasing) or detach the subtree and take ownership of
// its slice and ropes (releasing).
func (c *ProfileCache) scheduleIter(v int, release bool) *ScheduleIter {
	c.Pin(v)
	c.ensure(v)
	it := c.newIter()
	it.c, it.v = c, v
	if release && c.pinCount == 1 && c.ancestorsDirty(v) {
		c.Unpin(v)
		it.releasing = true
		c.detachSubtree(v)
		it.segs = c.prof[v]
		c.residentBytes.Add(-int64(cap(c.prof[v])) * segmentBytes)
		c.prof[v] = nil
	} else {
		it.pinned = true
		it.segs = c.prof[v]
	}
	return it
}

// ancestorsDirty reports that every proper ancestor of v is dirty — the
// releasing precondition: dirty ancestors hold neither profile slices nor
// rope chains (Invalidate freed both), so nothing outside v's subtree can
// reference the subtree's rope pages.
func (c *ProfileCache) ancestorsDirty(v int) bool {
	for p := c.t.Parent(v); p >= 0; p = c.t.Parent(p) {
		if c.valid[p] {
			return false
		}
	}
	return true
}

// detachSubtree severs v's subtree from the residency machinery ahead of a
// releasing emission: every profile slice except v's own is freed to the
// arena and every rope-ownership chain is cleared *without* freeing its
// pages — the emission walk owns them now and will release each page as it
// is consumed. Nodes stay valid with their peaks, i.e. in the evicted
// state of DESIGN.md §2.6.
func (c *ProfileCache) detachSubtree(v int) {
	sc := c.sc
	st := append(sc.evictStack[:0], v)
	var nodes int64
	for len(st) > 0 {
		x := st[len(st)-1]
		st = st[:len(st)-1]
		if !c.valid[x] {
			continue
		}
		var freed int64
		if x != v && c.prof[x] != nil {
			freed += int64(cap(c.prof[x])) * segmentBytes
			sc.arena.freeProfile(c.prof[x])
			c.prof[x] = nil
		}
		if c.owned[x] != nil {
			freed += int64(c.ownedCount[x]) * ropeBytes
			c.ownedCount[x] = 0
			c.owned[x] = nil // pages are released one by one during the walk
		}
		if freed != 0 || x == v {
			// v's slice is detached by the caller, so the root counts even
			// when its freed total here is zero; already-evicted interior
			// nodes held nothing and are not counted as released.
			c.residentBytes.Add(-freed)
			nodes++
		}
		st = append(st, c.t.Children(x)...)
	}
	sc.evictStack = st[:0]
	c.streamedNodes.Add(nodes)
}

// Next returns the next segment of the traversal. The returned slice is
// the iterator's reusable chunk, valid until the following Next call; ok is
// false once the traversal is exhausted (the iterator then releases its pin
// or pools its remaining resources, so Close is only needed on early exit).
func (it *ScheduleIter) Next() (seg []int, ok bool) {
	if it.done {
		return nil, false
	}
	if it.buf == nil {
		it.buf = make([]int, 0, emitChunkIDs)
	}
	buf := it.buf[:0]
	a := &it.c.sc.arena
	st := it.stack
	for len(buf) < emitChunkIDs {
		if len(st) == 0 {
			if it.segIdx >= len(it.segs) {
				break
			}
			st = append(st, it.segs[it.segIdx].nodes)
			it.segIdx++
			continue
		}
		cur := st[len(st)-1]
		st = st[:len(st)-1]
		if cur == nil {
			continue
		}
		if cur.leaf != nil {
			buf = append(buf, cur.leaf...)
			if it.releasing {
				a.release(cur)
			}
			continue
		}
		l, r := cur.left, cur.right
		if it.releasing {
			a.release(cur)
		}
		st = append(st, r, l)
	}
	it.stack, it.buf = st, buf
	if len(buf) == 0 {
		it.finish()
		return nil, false
	}
	return buf, true
}

// Close releases the iterator's resources before exhaustion: the pin is
// dropped (non-releasing mode), or the not-yet-walked rope pages are left
// for the garbage collector (releasing mode — the detach already severed
// them from the cache, so abandoning them is safe, it merely forgoes
// pooling). Close after exhaustion is a no-op.
func (it *ScheduleIter) Close() {
	if !it.done {
		it.finish()
	}
}

// finish tears the iterator down and returns it to the cache's iterator
// pool so that steady-state emission (the expansion loop's per-iteration
// schedule queries) allocates nothing.
func (it *ScheduleIter) finish() {
	it.done = true
	if it.pinned {
		it.c.Unpin(it.v)
		it.pinned = false
	}
	if it.releasing {
		// The profile slice was detached at construction; pool it now that
		// no segment refers to unvisited ropes (early Close simply drops
		// the remaining pages for the GC along with the zeroed slice).
		it.c.sc.arena.freeProfile(it.segs)
	}
	c := it.c
	it.segs = nil
	it.stack = it.stack[:0]
	if c.freeIter == nil {
		it.c = nil
		it.releasing = false
		c.freeIter = it
	}
}

// newIter pops the pooled iterator or allocates a fresh one (nested
// iterations fall back to allocating).
func (c *ProfileCache) newIter() *ScheduleIter {
	if it := c.freeIter; it != nil {
		c.freeIter = nil
		*it = ScheduleIter{stack: it.stack[:0], buf: it.buf}
		return it
	}
	return &ScheduleIter{}
}

// EmitSchedule streams the optimal traversal of v's subtree (what MinMem
// would return on an extracted copy, in the underlying tree's node ids) to
// yield, segment by segment in traversal order, without materializing the
// schedule. Each yielded segment aliases a reusable chunk, valid only for
// the duration of the call. Emission stops early if yield returns false;
// the return value reports whether the full traversal was emitted. The
// cache state afterwards is exactly what AppendSchedule leaves behind.
func (c *ProfileCache) EmitSchedule(v int, yield func(seg []int) bool) bool {
	return emit(c.ScheduleIter(v), yield)
}

// EmitScheduleRelease is EmitSchedule in releasing mode: rope pages return
// to the arena as the walk consumes them and the subtree is left
// clean-but-evicted — the final-emission mode that removes the Θ(n) rope
// floor (see ScheduleIterRelease for when releasing engages and how it
// degrades).
func (c *ProfileCache) EmitScheduleRelease(v int, yield func(seg []int) bool) bool {
	return emit(c.ScheduleIterRelease(v), yield)
}

// emit drains it into yield.
func emit(it *ScheduleIter, yield func(seg []int) bool) bool {
	defer it.Close()
	for {
		seg, ok := it.Next()
		if !ok {
			return true
		}
		if !yield(seg) {
			return false
		}
	}
}
