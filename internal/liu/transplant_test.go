package liu

import (
	"math/rand"
	"testing"

	"repro/internal/randtree"
)

// TestAdoptSubtreeMatchesRecompute transplants whole random trees between
// caches (via the extraction renumbering) and checks the adopted cache is
// indistinguishable from a recomputed one: same peaks, same schedules, and
// no recomputation triggered by the queries.
func TestAdoptSubtreeMatchesRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 80; trial++ {
		tr := cacheRandomTree(2+rng.Intn(200), rng)
		src := NewProfileCache(tr)
		src.Peak(tr.Root())

		// The destination tree is the BFS extraction of the same tree
		// (identity here, but through the generic lockstep machinery).
		m := newWeightedMutable(tr)
		frozen, toNew := m.freeze()
		dst := NewProfileCache(frozen)
		adopted := dst.AdoptSubtree(src.Snapshot(), tr, tr.Root(), frozen.Root())
		if adopted != tr.N() {
			t.Fatalf("trial %d: adopted %d of %d nodes", trial, adopted, tr.N())
		}
		for v := 0; v < tr.N(); v++ {
			if !dst.availNode(toNew[v]) {
				t.Fatalf("trial %d: node %d not resident after adopt", trial, v)
			}
			if dst.peak[toNew[v]] != src.peak[v] {
				t.Fatalf("trial %d: node %d peak %d, src %d", trial, v, dst.peak[toNew[v]], src.peak[v])
			}
		}
		got := dst.AppendSchedule(frozen.Root(), nil)
		want, _ := MinMem(frozen)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: adopted schedule differs at %d", trial, i)
			}
		}
		if st := dst.Stats(); st.Rematerializations != 0 {
			t.Fatalf("trial %d: queries after a full adopt recomputed %d nodes", trial, st.Rematerializations)
		}
	}
}

// TestAdoptSubtreePartial checks the mixed-residency walk: the source has
// dirty, sliceless and resident regions (driven by a tight budget plus
// invalidations); adoption takes what is usable, leaves the rest dirty,
// and a subsequent ensure converges to the exact unbounded answers.
func TestAdoptSubtreePartial(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 80; trial++ {
		tr := cacheRandomTree(10+rng.Intn(200), rng)
		opts := CacheOptions{MaxResidentBytes: []int64{1, 2048, 0}[trial%3]}
		src := NewProfileCacheOpts(tr, opts)
		src.Peak(tr.Root())
		// Dirty a random path so the source has holes.
		src.Invalidate(rng.Intn(tr.N()))
		if trial%2 == 0 {
			src.Peak(tr.Root()) // re-warm part of it
		}

		m := newWeightedMutable(tr)
		frozen, _ := m.freeze()
		dst := NewProfileCacheOpts(frozen, opts)
		dst.AdoptSubtree(src.Snapshot(), tr, tr.Root(), frozen.Root())
		got := dst.AppendSchedule(frozen.Root(), nil)
		want, wantPeak := MinMem(frozen)
		if dst.Peak(frozen.Root()) != wantPeak {
			t.Fatalf("trial %d: peak %d, want %d", trial, dst.Peak(frozen.Root()), wantPeak)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: schedule differs at %d", trial, i)
			}
		}
	}
}

// TestAdoptSubtreeIntoDirtyRegion adopts into a destination that already
// holds resident profiles for part of the subtree (the replay-time
// direction of the parallel driver): resident destination subtrees are
// pruned, dirty ones adopted, and the merged state must answer like a
// fresh cache.
func TestAdoptSubtreeIntoDirtyRegion(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 80; trial++ {
		tr := cacheRandomTree(10+rng.Intn(200), rng)
		src := NewProfileCache(tr)
		src.Peak(tr.Root())

		m := newWeightedMutable(tr)
		frozen, _ := m.freeze()
		dst := NewProfileCache(frozen)
		dst.Peak(frozen.Root())
		// Dirty a path in the destination, as a replayed expansion would.
		dst.Invalidate(rng.Intn(frozen.N()))
		dst.AdoptSubtree(src.Snapshot(), tr, tr.Root(), frozen.Root())
		got := dst.AppendSchedule(frozen.Root(), nil)
		want, _ := MinMem(frozen)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: schedule differs at %d", trial, i)
			}
		}
		// The dirtied path must have been adopted, not recomputed.
		if st := dst.Stats(); st.AdoptedNodes == 0 {
			t.Fatalf("trial %d: nothing adopted into the dirty path", trial)
		}
	}
}

// TestAdoptSubtreeImmediateEviction is the regression test for the §5
// adopt-heavy budget overshoot: a transplant that lands over budget must
// offer the freshly clean subtree for eviction immediately — rope pages
// included — instead of parking the bytes until the next Invalidate
// happens to expose them. Before the fix the adopted rope pages stayed
// resident indefinitely (the post-adopt slice pressure reclaims slices
// only), so ResidentBytes right after AdoptSubtree tracked the donor's
// full footprint rather than the budget.
func TestAdoptSubtreeImmediateEviction(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	tr := randtree.Synth(3000, rng)
	donor := NewProfileCache(tr)
	donor.Peak(tr.Root())
	full := donor.Stats().ResidentBytes
	if full == 0 {
		t.Fatal("donor warmed nothing")
	}
	budget := full / 20

	c := NewProfileCacheOpts(tr, CacheOptions{MaxResidentBytes: budget})
	adopted := c.AdoptSubtree(donor.Snapshot(), tr, tr.Root(), tr.Root())
	if adopted != tr.N() {
		t.Fatalf("adopted %d of %d nodes", adopted, tr.N())
	}
	st := c.Stats()
	if st.ResidentBytes > budget {
		t.Fatalf("adopt left %d bytes resident under a %d budget (donor holds %d)",
			st.ResidentBytes, budget, full)
	}
	if st.Evictions == 0 {
		t.Fatal("over-budget adopt triggered no subtree eviction")
	}
	// The evicted state must still answer correctly (clean peaks, profiles
	// rematerialized on demand).
	if got, want := c.Peak(tr.Root()), donor.Peak(tr.Root()); got != want {
		t.Fatalf("peak after immediate eviction: %d, want %d", got, want)
	}
	got := c.AppendSchedule(tr.Root(), nil)
	want := donor.AppendSchedule(tr.Root(), nil)
	if len(got) != len(want) {
		t.Fatalf("schedule length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("schedule differs at step %d", i)
		}
	}
}
