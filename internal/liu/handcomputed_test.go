package liu

import (
	"reflect"
	"testing"

	"repro/internal/tree"
)

// Hand-computed canonical profiles for the paper's building blocks.

func TestMemProfileChainFig2b(t *testing.T) {
	// Chain 3←5←2←6 (root 3): bottom-up the profile develops as
	//   leaf 6:            [(6,6)]
	//   node 2 (w̄=6):      [(6,2)]      (merge: hill 6 ≤ 6)
	//   node 5 (w̄=5):      [(6,2),(5,5)]
	//   node 3 (w̄=5):      [(6,2),(5,3)] (merge (5,5)+(5,3))
	c := tree.Chain(3, 5, 2, 6)
	prof := MemProfile(c)
	hills := make([]int64, len(prof))
	valleys := make([]int64, len(prof))
	for i, s := range prof {
		hills[i] = s.Hill
		valleys[i] = s.Valley
	}
	if !reflect.DeepEqual(hills, []int64{6, 5}) || !reflect.DeepEqual(valleys, []int64{2, 3}) {
		t.Fatalf("profile hills=%v valleys=%v, want [6 5]/[2 3]", hills, valleys)
	}
	// Segment node sets: first the leaf and node 2, then 5 and 3.
	if !reflect.DeepEqual(prof[0].Nodes, []int{3, 2}) {
		t.Fatalf("segment 0 nodes %v", prof[0].Nodes)
	}
	if !reflect.DeepEqual(prof[1].Nodes, []int{1, 0}) {
		t.Fatalf("segment 1 nodes %v", prof[1].Nodes)
	}
}

func TestMemProfileFig2cChain(t *testing.T) {
	// The Figure 2(c) chain for k=3 must canonicalize to the arithmetic
	// staircase [(4k, k), (4k−1, k+1), ..., (3k, 2k)].
	k := int64(3)
	var ws []int64
	for j := int64(0); j <= k; j++ {
		ws = append(ws, 2*k-j, 3*k+j)
	}
	prof := MemProfile(tree.Chain(ws...))
	if len(prof) != int(k)+1 {
		t.Fatalf("%d segments, want %d", len(prof), k+1)
	}
	for j, s := range prof {
		if s.Hill != 4*k-int64(j) || s.Valley != k+int64(j) {
			t.Fatalf("segment %d = (%d,%d), want (%d,%d)", j, s.Hill, s.Valley, 4*k-int64(j), k+int64(j))
		}
	}
}

func TestMinMemSingleNodeZeroWeight(t *testing.T) {
	// Zero-weight nodes (expansion middles) are legal inputs.
	tr := tree.MustNew([]int{tree.None, 0, 1}, []int64{2, 0, 2})
	sched, peak := MinMem(tr)
	if !tree.IsTopological(tr, sched) {
		t.Fatal("invalid schedule")
	}
	// leaf 2 → node 0 (w̄ = max(0, 2) = 2) → root (w̄ = max(2, 0) = 2).
	if peak != 2 {
		t.Fatalf("peak=%d want 2", peak)
	}
}
