package liu

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/randtree"
	"repro/internal/tree"
)

// collect drains an emission into a fresh slice.
func collect(c *ProfileCache, v int, release bool) []int {
	var out []int
	sink := func(seg []int) bool { out = append(out, seg...); return true }
	if release {
		c.EmitScheduleRelease(v, sink)
	} else {
		c.EmitSchedule(v, sink)
	}
	return out
}

// TestEmitScheduleMatchesAppend pins the base contract of the streaming
// emitter: the concatenation of the yielded segments is exactly the
// AppendSchedule flatten, for every node of random trees, cold and warm,
// with and without a residency budget.
func TestEmitScheduleMatchesAppend(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		tr := randtree.Synth(30+rng.Intn(400), rng)
		ref := NewProfileCache(tr)
		opts := CacheOptions{}
		if trial%2 == 1 {
			opts.MaxResidentBytes = 1 // constant thrash
		}
		c := NewProfileCacheOpts(tr, opts)
		for probe := 0; probe < 10; probe++ {
			v := rng.Intn(tr.N())
			want := ref.AppendSchedule(v, nil)
			if got := collect(c, v, false); !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d: EmitSchedule(%d) diverges from AppendSchedule", trial, v)
			}
			if got := c.AppendSchedule(v, nil); !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d: AppendSchedule(%d) collector diverges", trial, v)
			}
		}
	}
}

// TestEmitScheduleReleaseConsumes checks the releasing mode end to end on a
// budgeted cache: the stream matches the materialized schedule, the
// subtree's slices and rope pages are handed back (resident bytes drop to
// zero, StreamedNodes counts the whole tree), peaks stay served without
// rematerialization, and a later query rebuilds the identical profile.
func TestEmitScheduleReleaseConsumes(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 20; trial++ {
		tr := randtree.Synth(50+rng.Intn(300), rng)
		want := NewProfileCache(tr).AppendSchedule(tr.Root(), nil)
		c := NewProfileCacheOpts(tr, CacheOptions{MaxResidentBytes: 1 << 20})
		peak := c.Peak(tr.Root())
		if got := collect(c, tr.Root(), true); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: releasing emission diverges", trial)
		}
		st := c.Stats()
		if st.StreamedNodes != int64(tr.N()) {
			t.Fatalf("trial %d: streamed %d of %d nodes", trial, st.StreamedNodes, tr.N())
		}
		if st.ResidentBytes != 0 {
			t.Fatalf("trial %d: %d bytes still resident after releasing emission", trial, st.ResidentBytes)
		}
		remats := st.Rematerializations
		if got := c.Peak(tr.Root()); got != peak {
			t.Fatalf("trial %d: peak after release %d, want %d", trial, got, peak)
		}
		if c.Stats().Rematerializations != remats {
			t.Fatalf("trial %d: Peak after release rematerialized", trial)
		}
		if got := c.AppendSchedule(tr.Root(), nil); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: rematerialized schedule diverges", trial)
		}
	}
}

// TestEmitScheduleReleaseInterior exercises releasing below the root: after
// an invalidation dirties the root path, a clean subtree hanging off it can
// be stream-released (ancestors hold no profiles), while a subtree under a
// resident ancestor must degrade to the non-consuming walk.
func TestEmitScheduleReleaseInterior(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 20; trial++ {
		tr := randtree.Synth(80+rng.Intn(200), rng)
		// A non-root interior node with a non-trivial subtree.
		v := -1
		for x := 0; x < tr.N(); x++ {
			if tr.Parent(x) != tree.None && len(tr.Children(x)) > 0 {
				v = x
				break
			}
		}
		if v < 0 {
			continue
		}
		want := NewProfileCache(tr).AppendSchedule(v, nil)

		// Resident ancestors: releasing must degrade (nothing consumed).
		c := NewProfileCacheOpts(tr, CacheOptions{MaxResidentBytes: 1 << 30})
		c.Peak(tr.Root())
		if got := collect(c, v, true); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: degraded emission diverges", trial)
		}
		if st := c.Stats(); st.StreamedNodes != 0 {
			t.Fatalf("trial %d: released %d nodes under resident ancestors", trial, st.StreamedNodes)
		}
		if got := c.AppendSchedule(tr.Root(), nil); len(got) != tr.N() {
			t.Fatalf("trial %d: root schedule has %d of %d nodes after degraded emission", trial, len(got), tr.N())
		}

		// Dirty ancestors: releasing engages.
		c.Invalidate(tr.Parent(v))
		if !c.valid[v] {
			continue // v itself sat on the invalidated path
		}
		if got := collect(c, v, true); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: interior releasing emission diverges", trial)
		}
		if st := c.Stats(); st.StreamedNodes == 0 {
			t.Fatalf("trial %d: nothing released under dirty ancestors", trial)
		}
		// The whole cache must still converge to the reference afterwards.
		wantRoot := NewProfileCache(tr).AppendSchedule(tr.Root(), nil)
		if got := c.AppendSchedule(tr.Root(), nil); !reflect.DeepEqual(got, wantRoot) {
			t.Fatalf("trial %d: root schedule diverges after interior release", trial)
		}
	}
}

// TestEmitScheduleEarlyStop checks both modes under a consumer that stops
// mid-stream: the emitter reports the truncation, the cache survives, and a
// full re-emission still matches the reference.
func TestEmitScheduleEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 20; trial++ {
		tr := randtree.Synth(100+rng.Intn(300), rng)
		want := NewProfileCache(tr).AppendSchedule(tr.Root(), nil)
		for _, release := range []bool{false, true} {
			c := NewProfileCacheOpts(tr, CacheOptions{MaxResidentBytes: 1 << 20})
			var got []int
			stop := 1 + rng.Intn(len(want))
			sink := func(seg []int) bool {
				got = append(got, seg...)
				return len(got) < stop
			}
			var full bool
			if release {
				full = c.EmitScheduleRelease(tr.Root(), sink)
			} else {
				full = c.EmitSchedule(tr.Root(), sink)
			}
			if full && len(got) < len(want) {
				t.Fatalf("trial %d release=%v: truncated emission reported as full", trial, release)
			}
			if !reflect.DeepEqual(got, want[:len(got)]) {
				t.Fatalf("trial %d release=%v: emitted prefix diverges", trial, release)
			}
			if got := c.AppendSchedule(tr.Root(), nil); !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d release=%v: re-emission after early stop diverges", trial, release)
			}
		}
	}
}

// TestEmitSchedulePull exercises the pull-style iterator directly,
// including Close before exhaustion.
func TestEmitSchedulePull(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	tr := randtree.Synth(500, rng)
	want := NewProfileCache(tr).AppendSchedule(tr.Root(), nil)
	c := NewProfileCache(tr)
	var got []int
	it := c.ScheduleIter(tr.Root())
	for {
		seg, ok := it.Next()
		if !ok {
			break
		}
		got = append(got, seg...)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("pull iteration diverges from AppendSchedule")
	}
	it = c.ScheduleIter(tr.Root())
	if _, ok := it.Next(); !ok {
		t.Fatal("fresh iterator exhausted immediately")
	}
	it.Close()
	if got := c.AppendSchedule(tr.Root(), nil); !reflect.DeepEqual(got, want) {
		t.Fatal("schedule diverges after early Close")
	}
}

// TestEmitWhileParallelWarm crosses a releasing emission with a concurrent
// snapshot reader (the parallel driver's fan-out pattern): the reader's
// subtree is pinned, so releasing must degrade to the non-consuming walk
// and the reader must see intact ropes throughout. Run under -race in CI.
func TestEmitWhileParallelWarm(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	tr := randtree.Synth(4000, rng)
	c := NewProfileCacheOpts(tr, CacheOptions{MaxResidentBytes: 1 << 30})
	c.EnsureParallel(tr.Root(), 4)

	// Pick a child subtree of the root as the "unit" a worker is reading.
	children := tr.Children(tr.Root())
	if len(children) == 0 {
		t.Skip("degenerate tree")
	}
	unit := children[0]
	c.Pin(unit)
	snap := c.Snapshot()

	sub, toOld := tr.Subtree(unit)
	var wg sync.WaitGroup
	wg.Add(1)
	var adopted int
	go func() {
		defer wg.Done()
		local := NewProfileCache(sub)
		adopted = local.AdoptSubtree(snap, tr, unit, sub.Root())
	}()

	want := NewProfileCache(tr).AppendSchedule(tr.Root(), nil)
	if got := collect(c, tr.Root(), true); !reflect.DeepEqual(got, want) {
		t.Fatal("emission during concurrent snapshot read diverges")
	}
	if st := c.Stats(); st.StreamedNodes != 0 {
		t.Fatalf("released %d nodes while a unit was pinned", st.StreamedNodes)
	}
	wg.Wait()
	c.Unpin(unit)
	if adopted != sub.N() {
		t.Fatalf("concurrent reader adopted %d of %d nodes", adopted, sub.N())
	}
	_ = toOld
}
