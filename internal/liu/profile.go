package liu

import (
	"repro/internal/tree"
)

// SegmentInfo is one hill–valley segment of a subtree's optimal memory
// profile, in cumulative coordinates: processing the segment's Nodes (in
// order, starting from retained memory equal to the previous segment's
// Valley) reaches peak Hill and ends with Valley units retained.
type SegmentInfo struct {
	Hill   int64
	Valley int64
	Nodes  []int
}

// MemProfile returns the canonical optimal memory profile of the whole
// tree: the hill/valley decomposition of Liu's optimal traversal. Hills
// strictly decrease, valleys strictly increase, the first hill is the
// optimal peak and the last valley is the root's output size. The profile
// is the natural input for higher-level analyses (e.g. choosing switching
// points when embedding the tree into a larger computation).
func MemProfile(t *tree.Tree) []SegmentInfo {
	prof := minMemProfile(t, t.Root())
	out := make([]SegmentInfo, len(prof))
	var r int64
	for i, s := range prof {
		out[i] = SegmentInfo{
			Hill:   r + s.hill,
			Valley: r + s.valley,
			Nodes:  s.nodes.appendTo(nil),
		}
		r = out[i].Valley
	}
	return out
}
