package liu

import (
	"math/rand"
	"testing"

	"repro/internal/tree"
)

func cacheRandomTree(n int, rng *rand.Rand) *tree.Tree {
	parent := make([]int, n)
	weight := make([]int64, n)
	parent[0] = tree.None
	weight[0] = 1 + rng.Int63n(30)
	for i := 1; i < n; i++ {
		parent[i] = rng.Intn(i)
		weight[i] = 1 + rng.Int63n(30)
	}
	return tree.MustNew(parent, weight)
}

// TestProfileCacheMatchesMinMem: a cold cache query over a static tree must
// reproduce MinMem exactly — same peak at every node (AllSubtreePeaks) and
// the same schedule at the root.
func TestProfileCacheMatchesMinMem(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		tr := cacheRandomTree(2+rng.Intn(60), rng)
		c := NewProfileCache(tr)
		sched, peak := MinMem(tr)
		if got := c.Peak(tr.Root()); got != peak {
			t.Fatalf("trial %d: cache peak %d, MinMem %d", trial, got, peak)
		}
		got := c.AppendSchedule(tr.Root(), nil)
		if len(got) != len(sched) {
			t.Fatalf("trial %d: schedule length %d vs %d", trial, len(got), len(sched))
		}
		for i := range got {
			if got[i] != sched[i] {
				t.Fatalf("trial %d: schedules differ at %d: %v vs %v", trial, i, got, sched)
			}
		}
		peaks := AllSubtreePeaks(tr)
		for v := range peaks {
			if c.Peak(v) != peaks[v] {
				t.Fatalf("trial %d: node %d peak %d, AllSubtreePeaks %d", trial, v, c.Peak(v), peaks[v])
			}
		}
	}
}

// weightedMutable is a minimal growing TreeLike used to exercise the
// cache's invalidation path without depending on package expand (which
// already imports liu). It supports splicing a chain above a node, the
// shape of the expansion operation.
type weightedMutable struct {
	parent   []int
	children [][]int
	weight   []int64
	root     int
}

func newWeightedMutable(t *tree.Tree) *weightedMutable {
	n := t.N()
	m := &weightedMutable{
		parent:   append([]int(nil), t.Parents()...),
		children: make([][]int, n),
		weight:   append([]int64(nil), t.Weights()...),
		root:     t.Root(),
	}
	for i := 0; i < n; i++ {
		m.children[i] = append([]int(nil), t.Children(i)...)
	}
	return m
}

func (m *weightedMutable) N() int               { return len(m.parent) }
func (m *weightedMutable) Parent(i int) int     { return m.parent[i] }
func (m *weightedMutable) Children(i int) []int { return m.children[i] }
func (m *weightedMutable) Weight(i int) int64   { return m.weight[i] }

// splice inserts two chain nodes above i (the expansion shape: i → i2 → i3
// with weights w, w−amount, w) and returns the topmost new node.
func (m *weightedMutable) splice(i int, amount int64) int {
	w := m.weight[i]
	i2 := m.N()
	m.parent = append(m.parent, 0)
	m.children = append(m.children, nil)
	m.weight = append(m.weight, w-amount)
	i3 := m.N()
	m.parent = append(m.parent, 0)
	m.children = append(m.children, nil)
	m.weight = append(m.weight, w)
	p := m.parent[i]
	if p == tree.None {
		m.root = i3
	} else {
		for k, c := range m.children[p] {
			if c == i {
				m.children[p][k] = i3
			}
		}
	}
	m.parent[i3] = p
	m.children[i3] = []int{i2}
	m.parent[i2] = i3
	m.children[i2] = []int{i}
	m.parent[i] = i2
	return i3
}

// freeze extracts the current tree with BFS renumbering (children keep
// their list order, as expand's extraction does), returning the tree and
// the mutable-id → frozen-id map.
func (m *weightedMutable) freeze() (*tree.Tree, []int) {
	nodes := []int{m.root}
	for head := 0; head < len(nodes); head++ {
		nodes = append(nodes, m.children[nodes[head]]...)
	}
	toNew := make([]int, m.N())
	for k, v := range nodes {
		toNew[v] = k
	}
	parent := make([]int, len(nodes))
	weight := make([]int64, len(nodes))
	for k, v := range nodes {
		weight[k] = m.weight[v]
		if v == m.root {
			parent[k] = tree.None
		} else {
			parent[k] = toNew[m.parent[v]]
		}
	}
	return tree.MustNew(parent, weight), toNew
}

// TestProfileCacheIncrementalMatchesFresh is the cache's core property:
// after k random splices with path invalidation, the cached peak and
// schedule of the root must equal a fresh MinMem of the frozen tree
// (modulo the extraction renumbering), and the schedule must be a valid
// traversal.
func TestProfileCacheIncrementalMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 120; trial++ {
		tr := cacheRandomTree(2+rng.Intn(40), rng)
		m := newWeightedMutable(tr)
		c := NewProfileCache(m)
		c.Peak(m.root) // warm: everything clean
		k := 1 + rng.Intn(8)
		for e := 0; e < k; e++ {
			v := rng.Intn(m.N())
			w := m.weight[v]
			if w <= 0 {
				continue
			}
			top := m.splice(v, 1+rng.Int63n(w))
			c.Grow()
			c.Invalidate(top)
			if rng.Intn(2) == 0 {
				c.Peak(m.root) // interleave queries with mutations
			}
		}
		frozen, toNew := m.freeze()
		wantSched, wantPeak := MinMem(frozen)
		if got := c.Peak(m.root); got != wantPeak {
			t.Fatalf("trial %d: incremental peak %d, fresh MinMem %d", trial, got, wantPeak)
		}
		got := c.AppendSchedule(m.root, nil)
		if len(got) != len(wantSched) {
			t.Fatalf("trial %d: schedule lengths %d vs %d", trial, len(got), len(wantSched))
		}
		mapped := make(tree.Schedule, len(got))
		for i := range got {
			mapped[i] = toNew[got[i]]
			if mapped[i] != wantSched[i] {
				t.Fatalf("trial %d: schedules differ at step %d: %v vs %v", trial, i, mapped[i], wantSched[i])
			}
		}
		if err := tree.Validate(frozen, mapped); err != nil {
			t.Fatalf("trial %d: cached schedule invalid: %v", trial, err)
		}
	}
}
