package liu

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/randtree"
)

// closedChan returns an already-closed Done channel: the earliest possible
// cancellation that still lets the pass run until its first poll.
func closedChan() <-chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}

// TestCancelMidWarm interrupts a sequential warm via the Done signal and
// checks the canceled-pass contract: work actually stopped early, the
// cache invariants hold, and after ResetCancel the remaining work resumes
// to bit-identical results — with and without a residency budget.
func TestCancelMidWarm(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	tr := randtree.Synth(20000, rng)
	ref := NewProfileCache(tr)
	wantPeak := ref.Peak(tr.Root())
	wantSched := ref.AppendSchedule(tr.Root(), nil)
	for _, budget := range []int64{0, 1 << 16} {
		c := NewProfileCacheOpts(tr, CacheOptions{MaxResidentBytes: budget, Done: closedChan()})
		c.ensure(tr.Root())
		if !c.Canceled() {
			t.Fatalf("budget %d: warm with a closed Done ran to completion", budget)
		}
		if c.availNode(tr.Root()) {
			t.Fatalf("budget %d: root resident despite cancellation", budget)
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("budget %d: after cancel: %v", budget, err)
		}
		// The canceled cache is still evictable: dirtying a path must not
		// trip any accounting.
		c.Invalidate(tr.Root())
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("budget %d: after cancel+invalidate: %v", budget, err)
		}
		// Re-runnable: clear the latch, lift the signal, finish the work.
		c.ResetCancel()
		c.opts.Done = nil
		if got := c.Peak(tr.Root()); got != wantPeak {
			t.Fatalf("budget %d: peak after resume %d, want %d", budget, got, wantPeak)
		}
		if got := c.AppendSchedule(tr.Root(), nil); !reflect.DeepEqual(got, wantSched) {
			t.Fatalf("budget %d: schedule after resume diverges", budget)
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("budget %d: after resume: %v", budget, err)
		}
	}
}

// TestCancelDuringParallelWarm cancels a sharded EnsureParallel while its
// workers are mid-flight (run under -race in CI): whatever subset of
// shards completed, the cache must be consistent and resumable.
func TestCancelDuringParallelWarm(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	tr := randtree.Synth(60000, rng)
	want := NewProfileCache(tr).Peak(tr.Root())
	done := make(chan struct{})
	c := NewProfileCacheOpts(tr, CacheOptions{MaxResidentBytes: 1 << 18, Done: done})
	go func() {
		time.Sleep(2 * time.Millisecond)
		close(done)
	}()
	c.EnsureParallel(tr.Root(), 4)
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("after parallel cancel: %v", err)
	}
	c.ResetCancel()
	c.opts.Done = nil
	c.EnsureParallel(tr.Root(), 4)
	if got := c.Peak(tr.Root()); got != want {
		t.Fatalf("peak after resumed parallel warm %d, want %d", got, want)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("after resumed parallel warm: %v", err)
	}
}

// TestCancelMidEmission pins the emission-side contract (the streaming
// counterpart of TestEmitWhileParallelWarm): a canceled ensure leaves the
// queried profile absent, so the emission is empty rather than partial-
// but-plausible, and the cache stays evictable and re-runnable.
func TestCancelMidEmission(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	tr := randtree.Synth(20000, rng)
	want := NewProfileCache(tr).AppendSchedule(tr.Root(), nil)
	c := NewProfileCacheOpts(tr, CacheOptions{MaxResidentBytes: 1 << 16, Done: closedChan()})
	var got []int
	c.EmitScheduleRelease(tr.Root(), func(seg []int) bool {
		got = append(got, seg...)
		return true
	})
	if !c.Canceled() {
		t.Fatal("emission with a closed Done ran to completion")
	}
	if len(got) != 0 {
		t.Fatalf("canceled emission yielded %d ids; want none (full-or-empty contract)", len(got))
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("after canceled emission: %v", err)
	}
	c.Invalidate(tr.Root())
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("after cancel+invalidate: %v", err)
	}
	c.ResetCancel()
	c.opts.Done = nil
	if got := c.AppendSchedule(tr.Root(), nil); !reflect.DeepEqual(got, want) {
		t.Fatal("schedule after resumed emission diverges")
	}
}
