//go:build faultinject

package liu

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/randtree"
)

// TestFaultForcedCacheEvict arms the CacheEvict point at several planned
// hit indices: a forced eviction at a safe window must be result-neutral
// (bit-identical schedule) and leave the accounting invariants intact.
func TestFaultForcedCacheEvict(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	tr := randtree.Synth(6000, rng)
	want := NewProfileCache(tr).AppendSchedule(tr.Root(), nil)
	opts := CacheOptions{MaxResidentBytes: 1 << 16}

	faultinject.Reset()
	base := NewProfileCacheOpts(tr, opts)
	base.ensure(tr.Root())
	total := faultinject.Hits(faultinject.CacheEvict)
	if total == 0 {
		t.Fatal("counting run hit no CacheEvict windows")
	}
	for seed := int64(0); seed < 8; seed++ {
		faultinject.Reset()
		faultinject.Arm(faultinject.CacheEvict, faultinject.PlanHit(seed, faultinject.CacheEvict, total))
		c := NewProfileCacheOpts(tr, opts)
		got := c.AppendSchedule(tr.Root(), nil)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: forced eviction changed the schedule", seed)
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
	faultinject.Reset()
}

// TestFaultArenaAllocContained arms the ArenaAlloc point mid-warm: the
// injected panic must leave the cache arrays consistent (recompute
// publishes only at its end), and after disarming the same cache must
// finish the run to bit-identical results.
func TestFaultArenaAllocContained(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	tr := randtree.Synth(6000, rng)
	want := NewProfileCache(tr).AppendSchedule(tr.Root(), nil)
	opts := CacheOptions{MaxResidentBytes: 1 << 16}

	faultinject.Reset()
	base := NewProfileCacheOpts(tr, opts)
	base.ensure(tr.Root())
	total := faultinject.Hits(faultinject.ArenaAlloc)
	if total == 0 {
		t.Fatal("counting run performed no arena allocations")
	}
	for seed := int64(0); seed < 8; seed++ {
		faultinject.Reset()
		faultinject.Arm(faultinject.ArenaAlloc, faultinject.PlanHit(seed, faultinject.ArenaAlloc, total))
		c := NewProfileCacheOpts(tr, opts)
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("seed %d: armed allocation fault did not fire", seed)
				}
				err, ok := r.(error)
				if !ok || !errors.Is(err, faultinject.ErrArenaAlloc) {
					panic(r) // not ours: re-raise
				}
			}()
			c.ensure(tr.Root())
		}()
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("seed %d: after injected panic: %v", seed, err)
		}
		// Continue on the same cache with the fault disarmed.
		faultinject.Reset()
		if got := c.AppendSchedule(tr.Root(), nil); !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: schedule diverges after contained panic", seed)
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("seed %d: after recovery run: %v", seed, err)
		}
	}
	faultinject.Reset()
}
