package liu

import (
	"math/rand"
	"testing"

	"repro/internal/memsim"
	"repro/internal/tree"
)

func TestMemProfileInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 100; trial++ {
		tr := randomTree(1+rng.Intn(30), rng)
		prof := MemProfile(tr)
		if len(prof) == 0 {
			t.Fatal("empty profile")
		}
		_, peak := MinMem(tr)
		if prof[0].Hill != peak {
			t.Fatalf("first hill %d ≠ optimal peak %d", prof[0].Hill, peak)
		}
		if last := prof[len(prof)-1].Valley; last != tr.Weight(tr.Root()) {
			t.Fatalf("last valley %d ≠ root weight %d", last, tr.Weight(tr.Root()))
		}
		var count int
		for i, s := range prof {
			count += len(s.Nodes)
			if i > 0 {
				if s.Hill >= prof[i-1].Hill {
					t.Fatal("hills not strictly decreasing")
				}
				if s.Valley <= prof[i-1].Valley {
					t.Fatal("valleys not strictly increasing")
				}
			}
			if s.Hill < s.Valley {
				t.Fatal("hill below its valley")
			}
		}
		if count != tr.N() {
			t.Fatalf("profile covers %d of %d nodes", count, tr.N())
		}
	}
}

func TestMemProfileSegmentsAreExecutable(t *testing.T) {
	// Concatenating the segment node lists gives exactly the MinMem
	// schedule, and simulating each prefix confirms the declared hills:
	// the running peak after segment k equals max of hills 1..k.
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 50; trial++ {
		tr := randomTree(2+rng.Intn(20), rng)
		prof := MemProfile(tr)
		var sched tree.Schedule
		maxHill := int64(0)
		for _, s := range prof {
			sched = append(sched, s.Nodes...)
			if s.Hill > maxHill {
				maxHill = s.Hill
			}
		}
		peak, err := memsim.Peak(tr, sched)
		if err != nil {
			t.Fatal(err)
		}
		if peak != maxHill {
			t.Fatalf("simulated %d, profile max hill %d", peak, maxHill)
		}
	}
}
