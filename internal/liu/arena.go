package liu

import (
	"math/bits"

	"repro/internal/faultinject"
)

// profileArena recycles the two kinds of objects a ProfileCache recompute
// allocates — profile segment slices and rope nodes — so that steady-state
// recomputation after an Invalidate performs no heap allocations at all
// (the merge/canonicalize scratch lives in cacheScratch; the arena owns the
// objects that survive the recompute inside c.prof).
//
// Free-on-invalidate is what bounds the arena: Invalidate (and, under
// CacheOptions, eviction) returns a node's profile slice and its owned rope
// nodes to the free lists, so the arena's footprint is proportional to the
// live profile set, not to the total number of recomputations. Ownership is
// tracked per node: every rope node allocated while recomputing v is
// chained (through nextOwned) into a list the cache stores as owned[v].
// Freeing the chain is safe exactly because of the dirty-up-closure and
// resident-down-closure invariants: a rope owned by v is referenced only
// by v's profile and by profiles of v's ancestors, and both Invalidate and
// eviction only ever free nodes whose ancestors hold no resident profile.
//
// When a residency budget is active, the free lists themselves are capped
// (poolCap): pages freed beyond the cap are dropped for the garbage
// collector instead of pooled, so pooled + resident memory stays within
// twice the budget rather than ratcheting up to the largest transient
// footprint ever reached.
//
// An arena is single-goroutine state. The sharded warm (EnsureParallel)
// gives every worker a private cacheScratch — and hence a private arena —
// for its subtree; the objects those arenas hand out are ordinary heap
// objects, so they can later be freed into the primary arena's lists
// without ever being shared between two live arenas.
type profileArena struct {
	freeRopes *nodeRope // free list, chained through nextOwned
	owned     *nodeRope // ropes allocated since the last takeOwned
	allocs    int32     // length of the owned chain
	// freeSegs[k] holds released profile slices of capacity exactly 1<<k.
	freeSegs [33][]profile
	// pooled is the byte footprint of the free lists; poolCap (0 =
	// unlimited) is the point beyond which freed objects are dropped
	// rather than pooled.
	pooled  int64
	poolCap int64
}

// newRope hands out a cleared rope node and records it on the current
// ownership chain. The faultinject.ArenaAlloc point models an allocation
// failure here by panicking with faultinject.ErrArenaAlloc; the cache
// arrays are untouched mid-recompute (recompute publishes only at its
// end), so the containment layer above (expand.Engine) sees a cache whose
// invariants still hold.
func (a *profileArena) newRope() *nodeRope {
	if faultinject.Fire(faultinject.ArenaAlloc) {
		panic(faultinject.ErrArenaAlloc)
	}
	r := a.freeRopes
	if r != nil {
		a.freeRopes = r.nextOwned
		a.pooled -= ropeBytes
		r.left, r.right, r.leaf = nil, nil, nil
	} else {
		r = &nodeRope{}
	}
	r.nextOwned = a.owned
	a.owned = r
	a.allocs++
	return r
}

// leafRope returns an owned single-id leaf rope. The id lives in the node's
// inline buffer, so no separate slice is allocated.
func (a *profileArena) leafRope(v int) *nodeRope {
	r := a.newRope()
	r.buf[0] = v
	r.leaf = r.buf[:1]
	return r
}

// cat concatenates two ropes, allocating the internal node (if any) from
// the arena.
func (a *profileArena) cat(x, y *nodeRope) *nodeRope {
	if x == nil {
		return y
	}
	if y == nil {
		return x
	}
	r := a.newRope()
	r.left, r.right = x, y
	return r
}

// takeOwned detaches and returns the chain of ropes allocated since the
// previous call, along with its length; the caller stores the chain as the
// ownership record of the node just recomputed and the length for byte
// accounting.
func (a *profileArena) takeOwned() (*nodeRope, int32) {
	r, n := a.owned, a.allocs
	a.owned, a.allocs = nil, 0
	return r, n
}

// freeOwned returns a whole ownership chain to the free list, dropping
// nodes beyond poolCap for the garbage collector.
func (a *profileArena) freeOwned(chain *nodeRope) {
	for chain != nil {
		next := chain.nextOwned
		a.release(chain)
		chain = next
	}
}

// release returns one rope node to the free list (or, beyond poolCap,
// clears it for the garbage collector). Streaming emission uses it to hand
// back each page the moment the traversal walk has consumed it.
func (a *profileArena) release(r *nodeRope) {
	if a.poolCap > 0 && a.pooled+ropeBytes > a.poolCap {
		r.left, r.right, r.leaf, r.nextOwned = nil, nil, nil, nil
		return
	}
	r.left, r.right, r.leaf = nil, nil, nil
	r.nextOwned = a.freeRopes
	a.freeRopes = r
	a.pooled += ropeBytes
}

// segClass returns the bucket index of a capacity: the smallest k with
// 1<<k >= n.
func segClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// newProfile returns an empty profile with capacity at least n, reusing a
// released slice when one of the right class is available.
func (a *profileArena) newProfile(n int) profile {
	k := segClass(n)
	if l := a.freeSegs[k]; len(l) > 0 {
		p := l[len(l)-1]
		a.freeSegs[k] = l[:len(l)-1]
		a.pooled -= int64(cap(p)) * segmentBytes
		return p
	}
	return make(profile, 0, 1<<k)
}

// freeProfile releases a profile slice back to its capacity bucket,
// dropping its rope references so freed ropes are not kept reachable.
// Slices beyond poolCap are left to the garbage collector.
func (a *profileArena) freeProfile(p profile) {
	if cap(p) == 0 {
		return
	}
	for i := range p {
		p[i] = segment{}
	}
	k := segClass(cap(p))
	if 1<<k != cap(p) {
		return // not arena-allocated; let the GC reclaim it
	}
	if a.poolCap > 0 && a.pooled+int64(cap(p))*segmentBytes > a.poolCap {
		return
	}
	a.pooled += int64(cap(p)) * segmentBytes
	a.freeSegs[k] = append(a.freeSegs[k], p[:0])
}
