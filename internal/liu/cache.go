package liu

import "repro/internal/tree"

// TreeLike is the read-only structural view of a task tree that the profile
// cache needs. Both *tree.Tree and the growing mutable trees of package
// expand satisfy it.
type TreeLike interface {
	N() int
	Parent(i int) int
	Children(i int) []int
	Weight(i int) int64
}

// ProfileCache memoizes, per node, the canonical optimal hill–valley
// profile of the node's subtree (the object MinMem computes transiently).
// It is the engine behind incremental recursive expansion: after a local
// tree mutation, only the profiles on the path from the mutated node to the
// root change, so Invalidate marks exactly that path dirty and the next
// Peak or AppendSchedule query recomputes only dirty nodes, reusing every
// clean child profile. A full cold query costs one bottom-up pass (the same
// work as MinMem); a query after k expansions costs O(Σ path merge work)
// instead of re-running MinMem on the whole subtree.
//
// Invariants (see DESIGN.md):
//   - a dirty node's ancestors are all dirty (Invalidate walks to the root),
//     hence a clean node's entire subtree is clean and its profile reusable;
//   - profiles are immutable once computed: merging copies segments and rope
//     concatenation never mutates its operands, so a parent recomputation
//     can share child profiles without spoiling them;
//   - nodes appended to the tree after Grow start dirty.
type ProfileCache struct {
	t     TreeLike
	prof  []profile
	peak  []int64
	valid []bool

	// Reusable scratch for ensure/recompute/flatten.
	stack []cacheFrame
	parts []profile
	ropes []*nodeRope
}

type cacheFrame struct {
	node     int
	expanded bool
}

// NewProfileCache creates an empty cache over t; nothing is computed until
// the first query.
func NewProfileCache(t TreeLike) *ProfileCache {
	c := &ProfileCache{t: t}
	c.Grow()
	return c
}

// Grow extends the cache to the tree's current node count. Call it after
// nodes have been appended to the underlying tree; the new nodes start
// dirty.
func (c *ProfileCache) Grow() {
	for len(c.valid) < c.t.N() {
		c.prof = append(c.prof, nil)
		c.peak = append(c.peak, 0)
		c.valid = append(c.valid, false)
	}
}

// Invalidate marks v and every ancestor of v dirty, releasing their cached
// profiles. Call it with the topmost node whose subtree changed (for an
// expansion of node i into i → i2 → i3, that is i3: i's own subtree is
// untouched and stays cached).
func (c *ProfileCache) Invalidate(v int) {
	for ; v != tree.None; v = c.t.Parent(v) {
		c.valid[v] = false
		c.prof[v] = nil
	}
}

// Peak returns the optimal peak memory of v's subtree (what
// liu.MinMemPeak would report on an extracted copy), recomputing dirty
// profiles as needed.
func (c *ProfileCache) Peak(v int) int64 {
	c.ensure(v)
	return c.peak[v]
}

// AppendSchedule appends the optimal traversal of v's subtree (what
// liu.MinMem would return on an extracted copy, expressed in the underlying
// tree's node ids) to dst and returns the extended slice.
func (c *ProfileCache) AppendSchedule(v int, dst []int) []int {
	c.ensure(v)
	st := c.ropes[:0]
	for _, seg := range c.prof[v] {
		st = append(st, seg.nodes)
		for len(st) > 0 {
			cur := st[len(st)-1]
			st = st[:len(st)-1]
			if cur == nil {
				continue
			}
			if cur.leaf != nil {
				dst = append(dst, cur.leaf...)
				continue
			}
			st = append(st, cur.right, cur.left)
		}
	}
	c.ropes = st[:0]
	return dst
}

// ensure recomputes every dirty profile in v's subtree, bottom-up, reusing
// clean children. It works on an explicit stack to survive elimination-tree
// depths far beyond the goroutine recursion limit.
func (c *ProfileCache) ensure(v int) {
	if c.valid[v] {
		return
	}
	st := c.stack[:0]
	st = append(st, cacheFrame{v, false})
	for len(st) > 0 {
		f := st[len(st)-1]
		if !f.expanded {
			st[len(st)-1].expanded = true
			for _, ch := range c.t.Children(f.node) {
				if !c.valid[ch] {
					st = append(st, cacheFrame{ch, false})
				}
			}
			continue
		}
		st = st[:len(st)-1]
		c.recompute(f.node)
	}
	c.stack = st[:0]
}

// recompute rebuilds v's profile from its children's (all clean) profiles:
// exactly the per-node step of minMemProfileWithPeaks.
func (c *ProfileCache) recompute(v int) {
	children := c.t.Children(v)
	var merged profile
	if len(children) > 0 {
		parts := c.parts[:0]
		for _, ch := range children {
			parts = append(parts, c.prof[ch])
		}
		merged = mergeProfiles(parts)
		c.parts = parts[:0]
	} else {
		merged = make(profile, 0, 1)
	}
	var cs int64
	for _, ch := range children {
		cs += c.t.Weight(ch)
	}
	w := c.t.Weight(v)
	wbar := cs
	if w > wbar {
		wbar = w
	}
	merged = append(merged, segment{hill: wbar - cs, valley: w - cs, nodes: ropeOf(v)})
	canon := canonicalize(merged)
	var r, pk int64
	for _, s := range canon {
		if h := r + s.hill; h > pk {
			pk = h
		}
		r += s.valley
	}
	c.prof[v] = canon
	c.peak[v] = pk
	c.valid[v] = true
}
