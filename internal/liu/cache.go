package liu

import (
	"sync"
	"sync/atomic"

	"repro/internal/tree"
)

// TreeLike is the read-only structural view of a task tree that the profile
// cache needs. Both *tree.Tree and the growing mutable trees of package
// expand satisfy it.
type TreeLike interface {
	N() int
	Parent(i int) int
	Children(i int) []int
	Weight(i int) int64
}

// ProfileCache memoizes, per node, the canonical optimal hill–valley
// profile of the node's subtree (the object MinMem computes transiently).
// It is the engine behind incremental recursive expansion: after a local
// tree mutation, only the profiles on the path from the mutated node to the
// root change, so Invalidate marks exactly that path dirty and the next
// Peak or AppendSchedule query recomputes only dirty nodes, reusing every
// clean child profile. A full cold query costs one bottom-up pass (the same
// work as MinMem); a query after k expansions costs O(Σ path merge work)
// instead of re-running MinMem on the whole subtree.
//
// Invariants (see DESIGN.md):
//   - a dirty node's ancestors are all dirty (Invalidate walks to the root),
//     hence a clean node's entire subtree is clean and its profile reusable;
//   - profiles are immutable once computed: merging copies segments and rope
//     concatenation never mutates its operands, so a parent recomputation
//     can share child profiles without spoiling them;
//   - nodes appended to the tree after Grow start dirty.
//
// Allocation discipline: the transient state of a recomputation lives in a
// cacheScratch, and the objects that survive it (the profile slice and the
// rope nodes it created) come from the scratch's arena and are returned to
// it by Invalidate, so steady-state recomputation is allocation-free and
// arena memory is bounded by the live profile set (see arena.go).
//
// Concurrency discipline: a ProfileCache is single-writer. The one
// exception is EnsureParallel, which shards a warm across disjoint
// subtrees, each owned by exactly one worker with a private cacheScratch —
// the per-subtree cache regions the parallel expansion driver relies on.
type ProfileCache struct {
	t     TreeLike
	prof  []profile
	peak  []int64
	valid []bool
	owned []*nodeRope // head of the rope-ownership chain per node

	sc    *cacheScratch // primary scratch (sequential queries)
	ropes []*nodeRope   // reusable flatten stack for AppendSchedule
}

// cacheScratch is the transient state of ensure/recompute. Each concurrent
// warmer owns one; the embedded arena provides the pooled allocations.
type cacheScratch struct {
	stack []cacheFrame
	parts []profile
	merge mergeScratch
	cum   []cumSeg
	arena profileArena
}

type cacheFrame struct {
	node     int
	expanded bool
}

// cumSeg is a profile segment in cumulative coordinates, the working
// representation of canonicalization.
type cumSeg struct {
	hill, valley int64
	nodes        *nodeRope
}

// NewProfileCache creates an empty cache over t; nothing is computed until
// the first query.
func NewProfileCache(t TreeLike) *ProfileCache {
	c := &ProfileCache{t: t, sc: &cacheScratch{}}
	c.Grow()
	return c
}

// Grow extends the cache to the tree's current node count. Call it after
// nodes have been appended to the underlying tree; the new nodes start
// dirty.
func (c *ProfileCache) Grow() {
	for len(c.valid) < c.t.N() {
		c.prof = append(c.prof, nil)
		c.peak = append(c.peak, 0)
		c.valid = append(c.valid, false)
		c.owned = append(c.owned, nil)
	}
}

// Invalidate marks v and every ancestor of v dirty, releasing their cached
// profiles and rope nodes back to the arena. Call it with the topmost node
// whose subtree changed (for an expansion of node i into i → i2 → i3, that
// is i3: i's own subtree is untouched and stays cached). Freeing the whole
// root path at once is what makes eager reclamation safe: a rope owned by
// a freed node is referenced only by profiles of its ancestors, all of
// which are freed by the same call.
func (c *ProfileCache) Invalidate(v int) {
	a := &c.sc.arena
	for ; v != tree.None; v = c.t.Parent(v) {
		c.valid[v] = false
		if c.prof[v] != nil {
			a.freeProfile(c.prof[v])
			c.prof[v] = nil
		}
		if c.owned[v] != nil {
			a.freeOwned(c.owned[v])
			c.owned[v] = nil
		}
	}
}

// Peak returns the optimal peak memory of v's subtree (what
// liu.MinMemPeak would report on an extracted copy), recomputing dirty
// profiles as needed.
func (c *ProfileCache) Peak(v int) int64 {
	c.ensure(v)
	return c.peak[v]
}

// AppendSchedule appends the optimal traversal of v's subtree (what
// liu.MinMem would return on an extracted copy, expressed in the underlying
// tree's node ids) to dst and returns the extended slice.
func (c *ProfileCache) AppendSchedule(v int, dst []int) []int {
	c.ensure(v)
	st := c.ropes[:0]
	for _, seg := range c.prof[v] {
		st = append(st, seg.nodes)
		for len(st) > 0 {
			cur := st[len(st)-1]
			st = st[:len(st)-1]
			if cur == nil {
				continue
			}
			if cur.leaf != nil {
				dst = append(dst, cur.leaf...)
				continue
			}
			st = append(st, cur.right, cur.left)
		}
	}
	c.ropes = st[:0]
	return dst
}

// ensure recomputes every dirty profile in v's subtree, bottom-up, using
// the primary scratch.
func (c *ProfileCache) ensure(v int) { c.ensureWith(v, c.sc) }

// ensureWith recomputes every dirty profile in v's subtree, bottom-up,
// reusing clean children. It works on an explicit stack to survive
// elimination-tree depths far beyond the goroutine recursion limit. The
// caller must guarantee exclusive ownership of v's subtree region of the
// cache arrays for the duration of the call (trivially true for the
// sequential entry points; EnsureParallel enforces it by sharding).
func (c *ProfileCache) ensureWith(v int, sc *cacheScratch) {
	if c.valid[v] {
		return
	}
	st := sc.stack[:0]
	st = append(st, cacheFrame{v, false})
	for len(st) > 0 {
		f := st[len(st)-1]
		if !f.expanded {
			st[len(st)-1].expanded = true
			for _, ch := range c.t.Children(f.node) {
				if !c.valid[ch] {
					st = append(st, cacheFrame{ch, false})
				}
			}
			continue
		}
		st = st[:len(st)-1]
		c.recompute(f.node, sc)
	}
	sc.stack = st[:0]
}

// recompute rebuilds v's profile from its children's (all clean) profiles:
// exactly the per-node step of minMemProfileWithPeaks, with every surviving
// allocation drawn from the scratch's arena.
func (c *ProfileCache) recompute(v int, sc *cacheScratch) {
	children := c.t.Children(v)
	var merged profile
	if len(children) > 0 {
		parts := sc.parts[:0]
		for _, ch := range children {
			parts = append(parts, c.prof[ch])
		}
		merged = sc.merge.merge(parts)
		sc.parts = parts[:0]
	} else {
		sc.merge.ensure(1)
		merged = sc.merge.bufA[:0]
	}
	var cs int64
	for _, ch := range children {
		cs += c.t.Weight(ch)
	}
	w := c.t.Weight(v)
	wbar := cs
	if w > wbar {
		wbar = w
	}
	merged = append(merged, segment{hill: wbar - cs, valley: w - cs, nodes: sc.arena.leafRope(v)})
	canon := sc.canonicalize(merged)
	var r, pk int64
	for _, s := range canon {
		if h := r + s.hill; h > pk {
			pk = h
		}
		r += s.valley
	}
	c.prof[v] = canon
	c.owned[v] = sc.arena.takeOwned()
	c.peak[v] = pk
	c.valid[v] = true
}

// canonicalize rewrites a profile so that cumulative hills strictly
// decrease and cumulative valleys strictly increase, merging offending
// consecutive segments; the memory profile it denotes is unchanged. The
// output profile and the concatenation rope nodes come from the scratch's
// arena (MinMem uses a transient scratch; the profile cache recycles its
// primary one across recomputations).
func (sc *cacheScratch) canonicalize(p profile) profile {
	st := sc.cum[:0]
	var r int64
	for _, s := range p {
		c := cumSeg{hill: r + s.hill, valley: r + s.valley, nodes: s.nodes}
		r = c.valley
		for len(st) > 0 {
			top := st[len(st)-1]
			if top.hill <= c.hill || top.valley >= c.valley {
				if top.hill > c.hill {
					c.hill = top.hill
				}
				c.nodes = sc.arena.cat(top.nodes, c.nodes)
				st = st[:len(st)-1]
				continue
			}
			break
		}
		st = append(st, c)
	}
	out := sc.arena.newProfile(len(st))
	var prev int64
	for _, c := range st {
		out = append(out, segment{hill: c.hill - prev, valley: c.valley - prev, nodes: c.nodes})
		prev = c.valley
	}
	sc.cum = st[:0]
	return out
}

// EnsureParallel warms v's subtree with up to workers concurrent warmers:
// the dirty region under v is sharded into disjoint subtrees, each ensured
// by exactly one worker with a private scratch (and private arena), then
// the residual top of the region is finished sequentially. The cached
// values are identical to a sequential ensure — only the wall-clock
// changes — and the sharding is race-clean because workers write disjoint
// index ranges of the cache arrays and never resize them.
func (c *ProfileCache) EnsureParallel(v, workers int) {
	if workers <= 1 || c.valid[v] {
		c.ensure(v)
		return
	}
	roots := c.shardRoots(v, workers)
	if len(roots) < 2 {
		c.ensure(v)
		return
	}
	if workers > len(roots) {
		workers = len(roots)
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := &cacheScratch{}
			for {
				i := atomic.AddInt64(&next, 1) - 1
				if i >= int64(len(roots)) {
					return
				}
				c.ensureWith(roots[i], sc)
			}
		}()
	}
	wg.Wait()
	c.ensure(v)
}

// shardRoots picks the roots of the parallel warm: maximal dirty subtrees
// under v whose dirty-node count is at most a grain chosen to yield several
// shards per worker. Shards are disjoint by maximality, so each can be
// ensured by an independent worker.
func (c *ProfileCache) shardRoots(v, workers int) []int {
	// Preorder over the dirty region (clean subtrees cost a warm nothing).
	order := make([]int, 0, 1024)
	stack := append(make([]int, 0, 64), v)
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if c.valid[x] {
			continue
		}
		order = append(order, x)
		for _, ch := range c.t.Children(x) {
			stack = append(stack, ch)
		}
	}
	grain := len(order) / (4 * workers)
	if grain < 1 {
		grain = 1
	}
	// Dirty-subtree sizes, bottom-up (reverse preorder).
	size := make([]int32, c.t.N())
	for i := len(order) - 1; i >= 0; i-- {
		x := order[i]
		size[x]++
		if x != v {
			size[c.t.Parent(x)] += size[x]
		}
	}
	roots := make([]int, 0, 4*workers)
	for _, x := range order {
		if int(size[x]) <= grain && (x == v || int(size[c.t.Parent(x)]) > grain) {
			roots = append(roots, x)
		}
	}
	return roots
}
