package liu

import (
	"fmt"
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/faultinject"
	"repro/internal/tree"
)

// TreeLike is the read-only structural view of a task tree that the profile
// cache needs. Both *tree.Tree and the growing mutable trees of package
// expand satisfy it.
type TreeLike interface {
	N() int
	Parent(i int) int
	Children(i int) []int
	Weight(i int) int64
}

// CacheOptions tunes the residency policy of a ProfileCache. The zero value
// is the unbounded cache of PR 1/PR 2: every computed profile stays resident
// until invalidated, and the policy machinery adds no overhead.
//
// Residency never affects results: an evicted profile is recomputed on
// demand from its (clean) children, and recomputation is deterministic, so
// every query answer is bit-identical under every option setting. Only the
// memory/time trade-off moves.
type CacheOptions struct {
	// MaxResidentBytes caps the bytes held by resident profile segment
	// slices and rope nodes. Under pressure the cache evicts in two tiers
	// (see DESIGN.md): the segment slices of already-merged profiles are
	// dropped FIFO as soon as the budget is exceeded, and whole clean
	// subtrees hanging off an invalidated path are dropped — slices and
	// rope pages — the moment the path is dirtied. 0 means unlimited.
	//
	// The cap is a soft target: the working set of the query in flight
	// (the profile being flattened, the child slices of the merge running
	// now, and the schedule ropes of whatever subtree the caller asked
	// for) cannot be evicted, so a query whose own working set exceeds
	// the budget will exceed it for the duration of that query.
	MaxResidentBytes int64
	// MaxProfileSegments caps how long a pathological hill–valley profile
	// stays resident: a profile with more than this many segments
	// (caterpillar weight patterns can reach O(depth) segments) has its
	// segment slice dropped as soon as its parent has consumed it, and is
	// evicted with its subtree at the first invalidation that exposes it,
	// budget or no budget. 0 means no segment-count capping.
	MaxProfileSegments int
	// Done, when non-nil, is a cancellation signal (typically a
	// context's Done channel). Bottom-up recomputation passes poll it
	// about every cancelPollInterval recomputations and stop early once
	// it is closed, leaving every already-computed profile valid and
	// every unreached node dirty — a state from which the cache is fully
	// re-runnable. After a cancellation (Canceled reports true) query
	// results are unspecified until the caller checks the signal: a
	// Peak may be stale and an emission may be empty, so cancelable
	// callers must test Canceled (or their context) before trusting an
	// answer. nil (the default) disables polling entirely, so the
	// non-cancelable hot path pays one nil check per recompute.
	Done <-chan struct{}
}

// cancelPollInterval is how many recomputations pass between polls of
// CacheOptions.Done. Recomputes are heavyweight (a k-way merge plus a
// canonicalization), so the poll amortizes to noise while still bounding
// cancellation latency to a few thousand nodes of work.
const cancelPollInterval = 1024

// segmentBytes and ropeBytes are the accounting units of the residency
// budget: the sizes of the two object kinds the arena hands out.
const (
	segmentBytes = int64(unsafe.Sizeof(segment{}))
	ropeBytes    = int64(unsafe.Sizeof(nodeRope{}))
)

// ProfileCache memoizes, per node, the canonical optimal hill–valley
// profile of the node's subtree (the object MinMem computes transiently).
// It is the engine behind incremental recursive expansion: after a local
// tree mutation, only the profiles on the path from the mutated node to the
// root change, so Invalidate marks exactly that path dirty and the next
// Peak or AppendSchedule query recomputes only dirty nodes, reusing every
// clean child profile. A full cold query costs one bottom-up pass (the same
// work as MinMem); a query after k expansions costs O(Σ path merge work)
// instead of re-running MinMem on the whole subtree.
//
// Node states. Every node is in one of four states:
//
//   - dirty (valid[v] == false): peak and profile are stale;
//   - resident (valid[v], prof[v] != nil): peak and profile are usable;
//   - sliceless (valid[v], prof[v] == nil, owned[v] != nil): the peak is
//     correct and the node's rope pages are still live (they are shared
//     upward into resident ancestors' profiles), but the profile's segment
//     slice was reclaimed after its parent consumed it; it is rebuilt
//     (deterministically) if the parent is ever recomputed;
//   - evicted (valid[v], prof[v] == nil, owned[v] == nil): slice and ropes
//     both reclaimed; the whole subtree below is in the same state.
//
// Invariants (see DESIGN.md for the full memory-model write-up):
//
//   - dirty-up-closure: a dirty node's ancestors are all dirty (Invalidate
//     walks to the root), hence a clean node's entire subtree is clean;
//   - rope-reference locality: a rope owned by v is referenced only by v's
//     profile and by profiles of v's ancestors. Rope pages are therefore
//     freed only when no ancestor holds a profile slice — which is
//     guaranteed O(1) at exactly one moment, inside Invalidate, right
//     after the whole root path has been dirtied; that is the only place
//     subtree eviction runs;
//   - slice locality: a profile's segment slice is referenced by nobody
//     but the node itself (merging copies segments), so it can be dropped
//     whenever its parent is not mid-merge — the cache drops it right
//     after the parent's merge consumes it;
//   - profiles are immutable once computed: merging copies segments and
//     rope concatenation never mutates its operands, so a parent
//     recomputation can share child profiles without spoiling them;
//   - nodes appended to the tree after Grow start dirty.
//
// Allocation discipline: the transient state of a recomputation lives in a
// cacheScratch, and the objects that survive it (the profile slice and the
// rope nodes it created) come from the scratch's arena and are returned to
// it by Invalidate and by eviction, so steady-state recomputation is
// allocation-free and arena memory is bounded by the live profile set (see
// arena.go). Under CacheOptions the free lists themselves are capped so
// that pooled pages beyond the budget are released to the garbage
// collector.
//
// Concurrency discipline: a ProfileCache is single-writer. The one
// exception is EnsureParallel, which shards a warm across disjoint
// subtrees, each owned by exactly one worker with a private cacheScratch —
// the per-subtree cache regions the parallel expansion driver relies on.
// Under a residency policy each worker also evicts, but only within its own
// shard and only into its private arena, so the sharded warm stays
// race-free. Snapshot provides the read-only view concurrent adopters use;
// Pin keeps a snapshot-read subtree safe from the writer's evictions.
type ProfileCache struct {
	t     TreeLike
	prof  []profile
	peak  []int64
	valid []bool
	owned []*nodeRope // head of the rope-ownership chain per node

	// Residency-policy state (all zero-cost when opts is the zero value).
	opts       CacheOptions
	ownedCount []int32 // ropes on the owned chain, for byte accounting
	pinned     []int32 // >0 while a reader or in-flight merge relies on v
	pinCount   int64   // outstanding pins cache-wide (writer-side count)
	inSliceQ   []bool  // dedupe flag for the consumed-slice queue

	// canceled latches once a recomputation pass observes the Done
	// signal; every scratch (the primary and the parallel warmers')
	// checks it so a cancellation stops all shards of a warm.
	canceled atomic.Bool

	residentBytes atomic.Int64
	peakResident  atomic.Int64
	evictions     atomic.Int64
	evictedNodes  atomic.Int64
	slicedProfs   atomic.Int64
	remats        atomic.Int64
	adopted       atomic.Int64
	streamedNodes atomic.Int64

	sc       *cacheScratch // primary scratch (sequential queries)
	freeIter *ScheduleIter // pooled emission iterator (see emit.go)
}

// CacheStats reports the residency counters of a ProfileCache. All values
// are monotone except ResidentBytes.
type CacheStats struct {
	// ResidentBytes is the current footprint of resident profile slices
	// and rope nodes (free-list pages excluded).
	ResidentBytes int64
	// PeakResidentBytes is the high-water mark of ResidentBytes, the
	// number the MaxResidentBytes budget is calibrated against.
	PeakResidentBytes int64
	// Evictions counts subtree evictions; EvictedNodes the node profiles
	// they reclaimed (slices and rope pages).
	Evictions    int64
	EvictedNodes int64
	// SlicedProfiles counts consumed segment slices dropped by the
	// budget's slice tier (rope pages retained).
	SlicedProfiles int64
	// Rematerializations counts recomputations of clean-but-reclaimed
	// profiles — the time cost paid for the memory bound.
	Rematerializations int64
	// AdoptedNodes counts profiles transplanted in from another cache
	// (see AdoptSubtree).
	AdoptedNodes int64
	// StreamedNodes counts node profiles consumed by releasing schedule
	// emissions (EmitScheduleRelease): their slices and rope pages were
	// handed back to the arena as the traversal streamed out.
	StreamedNodes int64
}

// cacheScratch is the transient state of ensure/recompute. Each concurrent
// warmer owns one; the embedded arena provides the pooled allocations and
// sliceQ holds that warmer's consumed-slice eviction candidates.
type cacheScratch struct {
	stack []cacheFrame
	parts []profile
	merge mergeScratch
	cum   []cumSeg
	arena profileArena

	// sliceQ is the FIFO of consumed profiles (nodes whose parent has
	// merged them); entries are validated lazily at pop.
	sliceQ      []int
	sliceHead   int
	tick        uint32      // recomputes since the last Done poll
	evictStack  []int       // reusable eviction traversal scratch
	candScratch []int       // reusable Invalidate candidate scratch
	adoptRopes  []*nodeRope // reusable chain-reversal scratch for adoptNode
}

type cacheFrame struct {
	node     int
	expanded bool
}

// cumSeg is a profile segment in cumulative coordinates, the working
// representation of canonicalization.
type cumSeg struct {
	hill, valley int64
	nodes        *nodeRope
}

// NewProfileCache creates an empty, unbounded cache over t; nothing is
// computed until the first query.
func NewProfileCache(t TreeLike) *ProfileCache {
	return NewProfileCacheOpts(t, CacheOptions{})
}

// NewProfileCacheOpts creates an empty cache over t with the given
// residency policy.
func NewProfileCacheOpts(t TreeLike, opts CacheOptions) *ProfileCache {
	c := &ProfileCache{t: t, opts: opts, sc: &cacheScratch{}}
	c.sc.arena.poolCap = opts.MaxResidentBytes
	c.Grow()
	return c
}

// Options returns the cache's residency policy.
func (c *ProfileCache) Options() CacheOptions { return c.opts }

// Stats returns the current residency counters.
func (c *ProfileCache) Stats() CacheStats {
	return CacheStats{
		ResidentBytes:      c.residentBytes.Load(),
		PeakResidentBytes:  c.peakResident.Load(),
		Evictions:          c.evictions.Load(),
		EvictedNodes:       c.evictedNodes.Load(),
		SlicedProfiles:     c.slicedProfs.Load(),
		Rematerializations: c.remats.Load(),
		AdoptedNodes:       c.adopted.Load(),
		StreamedNodes:      c.streamedNodes.Load(),
	}
}

// policied reports whether any residency policy is active; when false, the
// eviction machinery is skipped entirely and the cache behaves exactly like
// the unbounded PR 1/PR 2 cache.
func (c *ProfileCache) policied() bool {
	return c.opts.MaxResidentBytes > 0 || c.opts.MaxProfileSegments > 0
}

// overBudget reports that the resident footprint exceeds the byte budget.
func (c *ProfileCache) overBudget() bool {
	return c.opts.MaxResidentBytes > 0 && c.residentBytes.Load() > c.opts.MaxResidentBytes
}

// heavyProfile reports that p trips the segment-count cap.
func (c *ProfileCache) heavyProfile(p profile) bool {
	return c.opts.MaxProfileSegments > 0 && len(p) > c.opts.MaxProfileSegments
}

// availNode reports that v's profile is resident and usable as-is.
func (c *ProfileCache) availNode(v int) bool { return c.valid[v] && c.prof[v] != nil }

// Grow extends the cache to the tree's current node count. Call it after
// nodes have been appended to the underlying tree; the new nodes start
// dirty.
func (c *ProfileCache) Grow() {
	for len(c.valid) < c.t.N() {
		c.prof = append(c.prof, nil)
		c.peak = append(c.peak, 0)
		c.valid = append(c.valid, false)
		c.owned = append(c.owned, nil)
		c.ownedCount = append(c.ownedCount, 0)
		c.pinned = append(c.pinned, 0)
		c.inSliceQ = append(c.inSliceQ, false)
	}
}

// Pin marks v (and, for subtree eviction, everything below it) as
// unevictable until the matching Unpin. The parallel expansion driver pins
// the roots of its planned units so that concurrent snapshot readers never
// observe an eviction; AppendSchedule pins the queried root across its
// flatten. Pinning nests.
func (c *ProfileCache) Pin(v int) { c.pinned[v]++; c.pinCount++ }

// Unpin releases a Pin.
func (c *ProfileCache) Unpin(v int) { c.pinned[v]--; c.pinCount-- }

// Invalidate marks v and every ancestor of v dirty, releasing their cached
// profiles and rope nodes back to the arena. Call it with the topmost node
// whose subtree changed (for an expansion of node i into i → i2 → i3, that
// is i3: i's own subtree is untouched and stays cached). Freeing the whole
// root path at once is what makes eager reclamation safe: a rope owned by
// a freed node is referenced only by profiles of its ancestors, all of
// which are freed by the same call.
//
// Under a residency policy this is also the subtree-eviction point: once
// the path is dirty, the clean subtrees hanging off it are exactly the
// nodes with no profile-holding ancestor, so their rope pages can be freed
// with no further checks. While the footprint exceeds the budget (or a
// hanging subtree's profile trips the segment cap), those subtrees are
// evicted deepest-first.
func (c *ProfileCache) Invalidate(v int) {
	a := &c.sc.arena
	policied := c.policied()
	cand := c.sc.candScratch[:0]
	for ; v != tree.None; v = c.t.Parent(v) {
		if policied && c.valid[v] {
			// The walk's previous path node is already dirty, so the valid
			// check keeps exactly the clean subtrees hanging off the path.
			for _, ch := range c.t.Children(v) {
				if c.valid[ch] {
					cand = append(cand, ch)
				}
			}
		}
		c.valid[v] = false
		var freed int64
		if c.prof[v] != nil {
			freed += int64(cap(c.prof[v])) * segmentBytes
			a.freeProfile(c.prof[v])
			c.prof[v] = nil
		}
		if c.owned[v] != nil {
			freed += int64(c.ownedCount[v]) * ropeBytes
			c.ownedCount[v] = 0
			a.freeOwned(c.owned[v])
			c.owned[v] = nil
		}
		if freed != 0 {
			c.residentBytes.Add(-freed)
		}
	}
	if len(cand) > 0 {
		c.evictHanging(cand, c.sc)
	}
	c.sc.candScratch = cand[:0]
}

// evictHanging evicts the clean subtrees hanging off a freshly dirtied
// path, deepest-first, while the budget is exceeded; subtrees whose root
// profile trips the segment cap are evicted unconditionally. Safe exactly
// here: every candidate's ancestors have just been dirtied, so no resident
// profile references the candidates' rope pages.
func (c *ProfileCache) evictHanging(cand []int, sc *cacheScratch) {
	for _, v := range cand {
		if !c.valid[v] || c.pinned[v] != 0 {
			continue
		}
		// faultinject.CacheEvict forces the eviction regardless of
		// pressure: this is a safe eviction window (the candidate's
		// ancestors were all just dirtied), so a forced eviction must be
		// result-neutral — the property the injection harness asserts.
		if faultinject.Fire(faultinject.CacheEvict) || c.heavyProfile(c.prof[v]) || c.overBudget() {
			c.evictSubtree(v, sc)
		}
	}
}

// NoteCandidate offers v for immediate subtree eviction. Mutators call it
// for a clean subtree that ends up below freshly appended dirty nodes (the
// expanded node i under its new chain), which the Invalidate walk cannot
// see; the contract is the same as Invalidate's — every ancestor of v must
// be dirty at the time of the call.
func (c *ProfileCache) NoteCandidate(v int) {
	if !c.policied() || !c.valid[v] || c.pinned[v] != 0 {
		return
	}
	if (c.prof[v] != nil && c.heavyProfile(c.prof[v])) || c.overBudget() {
		c.evictSubtree(v, c.sc)
	}
}

// Peak returns the optimal peak memory of v's subtree (what
// liu.MinMemPeak would report on an extracted copy), recomputing dirty
// profiles as needed. The peak of a clean-but-reclaimed profile is served
// without rematerializing it.
func (c *ProfileCache) Peak(v int) int64 {
	if !c.valid[v] {
		c.ensure(v)
	}
	return c.peak[v]
}

// AppendSchedule appends the optimal traversal of v's subtree (what
// liu.MinMem would return on an extracted copy, expressed in the underlying
// tree's node ids) to dst and returns the extended slice. It is a thin
// collector over EmitSchedule; callers that can consume the traversal
// segment by segment should use the emitter directly and skip the slice.
func (c *ProfileCache) AppendSchedule(v int, dst []int) []int {
	c.EmitSchedule(v, func(seg []int) bool {
		dst = append(dst, seg...)
		return true
	})
	return dst
}

// ensure recomputes every dirty or reclaimed profile in v's subtree,
// bottom-up, using the primary scratch.
func (c *ProfileCache) ensure(v int) { c.ensureWith(v, c.sc) }

// ensureWith makes v's profile resident, recomputing every dirty or
// reclaimed profile in v's subtree bottom-up and reusing resident
// children. It works on an explicit stack to survive elimination-tree
// depths far beyond the goroutine recursion limit. The caller must
// guarantee exclusive ownership of v's subtree region of the cache arrays
// for the duration of the call (trivially true for the sequential entry
// points; EnsureParallel enforces it by sharding).
//
// Under a residency policy the pass streams: each merge enqueues the child
// slices it just consumed, and the budget reclaims them FIFO while the
// pass continues — the slice tier never touches a profile that a merge
// still ahead of it will read (only consumed slices are enqueued, and
// subtree eviction runs exclusively inside Invalidate), so the pass
// terminates after exactly one recomputation per non-resident node.
func (c *ProfileCache) ensureWith(v int, sc *cacheScratch) {
	if c.availNode(v) {
		return
	}
	cancelable := c.opts.Done != nil
	if cancelable && c.canceled.Load() {
		return
	}
	policied := c.policied()
	st := sc.stack[:0]
	st = append(st, cacheFrame{node: v})
	for len(st) > 0 {
		if cancelable && c.pollCancel(sc) {
			break
		}
		f := st[len(st)-1]
		if !f.expanded {
			st[len(st)-1].expanded = true
			for _, ch := range c.t.Children(f.node) {
				if !c.availNode(ch) {
					st = append(st, cacheFrame{node: ch})
				}
			}
			continue
		}
		st = st[:len(st)-1]
		c.recompute(f.node, sc)
		if policied {
			for _, ch := range c.t.Children(f.node) {
				c.pushConsumed(sc, ch)
			}
			c.slicePressure(sc)
		}
	}
	sc.stack = st[:0]
}

// pollCancel advances the scratch's recompute tick and, every
// cancelPollInterval steps, polls the Done channel, latching the
// cache-wide canceled flag. It reports whether the pass should stop.
// A canceled pass leaves each node either fully recomputed or untouched
// (recompute publishes a node's state only at its end), so cancellation
// can never expose a partially built profile.
func (c *ProfileCache) pollCancel(sc *cacheScratch) bool {
	sc.tick++
	if sc.tick%cancelPollInterval == 0 {
		select {
		case <-c.opts.Done:
			c.canceled.Store(true)
		default:
		}
	}
	return c.canceled.Load()
}

// Canceled reports whether a recomputation pass observed the Done signal.
// Once set it stays set until ResetCancel, and every query result produced
// after the signal is unspecified (stale peaks, empty emissions).
func (c *ProfileCache) Canceled() bool { return c.canceled.Load() }

// ResetCancel clears the canceled latch so the cache can serve queries
// again after its owner has handled a cancellation. The cache state is
// already consistent — computed nodes valid, unreached nodes dirty — so
// the next query simply resumes the remaining work.
func (c *ProfileCache) ResetCancel() { c.canceled.Store(false) }

// recompute rebuilds v's profile from its children's (all resident)
// profiles: exactly the per-node step of minMemProfileWithPeaks, with every
// surviving allocation drawn from the scratch's arena.
func (c *ProfileCache) recompute(v int, sc *cacheScratch) {
	if c.valid[v] {
		// v was clean but reclaimed: this recomputation is the deferred
		// cost of an earlier eviction.
		c.remats.Add(1)
	}
	if c.owned[v] != nil {
		// A sliceless node being rebuilt. Its old rope pages may be pooled
		// for reuse only when no ancestor profile references them, i.e.
		// when the parent is dirty (dirty-up-closure then covers the whole
		// path) — the ordinary in-engine case, where this recompute is one
		// step of an ensure over an invalidated region. When the node is
		// queried directly while its ancestors are still resident (a
		// public AppendSchedule on an interior node), the old pages stay
		// referenced from above: drop the ownership record and let the
		// garbage collector reclaim them once the ancestors do.
		c.residentBytes.Add(-int64(c.ownedCount[v]) * ropeBytes)
		c.ownedCount[v] = 0
		if p := c.t.Parent(v); p == tree.None || !c.valid[p] {
			sc.arena.freeOwned(c.owned[v])
		}
		c.owned[v] = nil
	}
	children := c.t.Children(v)
	var merged profile
	if len(children) > 0 {
		parts := sc.parts[:0]
		for _, ch := range children {
			parts = append(parts, c.prof[ch])
		}
		merged = sc.merge.merge(parts)
		sc.parts = parts[:0]
	} else {
		sc.merge.ensure(1)
		merged = sc.merge.bufA[:0]
	}
	var cs int64
	for _, ch := range children {
		cs += c.t.Weight(ch)
	}
	w := c.t.Weight(v)
	wbar := cs
	if w > wbar {
		wbar = w
	}
	merged = append(merged, segment{hill: wbar - cs, valley: w - cs, nodes: sc.arena.leafRope(v)})
	canon := sc.canonicalize(merged)
	var r, pk int64
	for _, s := range canon {
		if h := r + s.hill; h > pk {
			pk = h
		}
		r += s.valley
	}
	chain, nropes := sc.arena.takeOwned()
	c.prof[v] = canon
	c.owned[v] = chain
	c.ownedCount[v] = nropes
	c.peak[v] = pk
	c.valid[v] = true
	c.addResident(int64(cap(canon))*segmentBytes + int64(nropes)*ropeBytes)
}

// addResident adjusts the resident-byte counter and maintains its
// high-water mark.
func (c *ProfileCache) addResident(n int64) {
	r := c.residentBytes.Add(n)
	for {
		p := c.peakResident.Load()
		if r <= p || c.peakResident.CompareAndSwap(p, r) {
			return
		}
	}
}

// pushConsumed registers a child profile whose parent has just merged it:
// from here until the next invalidation of its parent, the segment slice
// is dead weight. Heavy (over-the-segment-cap) slices are dropped on the
// spot; the rest queue FIFO for the budget's slice tier.
func (c *ProfileCache) pushConsumed(sc *cacheScratch, v int) {
	if c.prof[v] == nil || c.inSliceQ[v] {
		return
	}
	// faultinject.CacheEvict forces a mid-warm slice drop: v's parent has
	// already merged the slice, so dropping it here is always safe and
	// must be result-neutral (the slice is rebuilt on demand).
	if c.pinned[v] == 0 &&
		(faultinject.Fire(faultinject.CacheEvict) || c.heavyProfile(c.prof[v])) {
		c.evictSlice(v, sc)
		return
	}
	if c.opts.MaxResidentBytes > 0 {
		c.inSliceQ[v] = true
		sc.sliceQ = append(sc.sliceQ, v)
	}
}

// slicePressure drops consumed segment slices, oldest first, until the
// footprint fits the budget or the queue runs dry. Validation at pop keeps
// it safe: only resident, unpinned nodes whose parent holds its own
// profile (i.e. the merge that read this slice has completed and not been
// invalidated since) are dropped, so no merge still ahead of the current
// pass can lose an input. Entries skipped because the node is pinned are
// re-queued — the pin is transient (a flatten or a snapshot reader) and
// the slice stays evictable once it lifts; every other skip is stale and
// dropped.
func (c *ProfileCache) slicePressure(sc *cacheScratch) {
	// Borrow the eviction scratch for the pinned re-queue (evictSubtree
	// never runs inside this loop).
	requeue := sc.evictStack[:0]
	for c.overBudget() && sc.sliceHead < len(sc.sliceQ) {
		v := sc.sliceQ[sc.sliceHead]
		sc.sliceHead++
		if c.pinned[v] != 0 {
			requeue = append(requeue, v)
			continue
		}
		c.inSliceQ[v] = false
		p := c.t.Parent(v)
		if c.availNode(v) && p != tree.None && c.availNode(p) {
			c.evictSlice(v, sc)
		}
	}
	if sc.sliceHead >= len(sc.sliceQ) {
		sc.sliceQ, sc.sliceHead = sc.sliceQ[:0], 0
	}
	sc.sliceQ = append(sc.sliceQ, requeue...)
	sc.evictStack = requeue[:0]
}

// DropQueuedSlices empties the consumed-slice queue without evicting
// anything. The parallel expansion driver calls it right after pinning its
// unit roots: queue entries recorded during the warm may point inside unit
// subtrees that concurrent snapshot readers are about to walk, and the
// slice tier's per-node pin check cannot see a pinned ancestor. Dropped
// slices are reclaimed later through re-consumption or the subtree tier.
func (c *ProfileCache) DropQueuedSlices() {
	sc := c.sc
	for _, v := range sc.sliceQ[sc.sliceHead:] {
		c.inSliceQ[v] = false
	}
	sc.sliceQ, sc.sliceHead = sc.sliceQ[:0], 0
}

// evictSlice reclaims v's segment slice (rope pages stay: they are shared
// into resident ancestors' profiles), leaving v sliceless.
func (c *ProfileCache) evictSlice(v int, sc *cacheScratch) {
	c.residentBytes.Add(-int64(cap(c.prof[v])) * segmentBytes)
	sc.arena.freeProfile(c.prof[v])
	c.prof[v] = nil
	c.slicedProfs.Add(1)
}

// evictSubtree reclaims everything v's whole clean subtree holds — segment
// slices and rope chains — returning the pages to the evicting scratch's
// arena. Peaks and validity are untouched: the subtree stays clean, only
// its memory is gone until rematerialized. Only Invalidate/NoteCandidate
// call this, on subtrees whose ancestors were all just dirtied; pinned
// descendants (concurrent snapshot readers) are skipped with their whole
// subtrees, which is safe because a skipped subtree's ropes are referenced
// only from within itself once everything above it is profile-free.
func (c *ProfileCache) evictSubtree(v int, sc *cacheScratch) {
	a := &sc.arena
	st := append(sc.evictStack[:0], v)
	var nodes int64
	for len(st) > 0 {
		x := st[len(st)-1]
		st = st[:len(st)-1]
		if c.pinned[x] != 0 {
			continue
		}
		var freed int64
		if c.prof[x] != nil {
			freed += int64(cap(c.prof[x])) * segmentBytes
			a.freeProfile(c.prof[x])
			c.prof[x] = nil
		}
		if c.owned[x] != nil {
			freed += int64(c.ownedCount[x]) * ropeBytes
			c.ownedCount[x] = 0
			a.freeOwned(c.owned[x])
			c.owned[x] = nil
		}
		if freed != 0 {
			c.residentBytes.Add(-freed)
			nodes++
		}
		st = append(st, c.t.Children(x)...)
	}
	sc.evictStack = st[:0]
	if nodes > 0 {
		c.evictions.Add(1)
		c.evictedNodes.Add(nodes)
	}
}

// canonicalize rewrites a profile so that cumulative hills strictly
// decrease and cumulative valleys strictly increase, merging offending
// consecutive segments; the memory profile it denotes is unchanged. The
// output profile and the concatenation rope nodes come from the scratch's
// arena (MinMem uses a transient scratch; the profile cache recycles its
// primary one across recomputations).
func (sc *cacheScratch) canonicalize(p profile) profile {
	st := sc.cum[:0]
	var r int64
	for _, s := range p {
		c := cumSeg{hill: r + s.hill, valley: r + s.valley, nodes: s.nodes}
		r = c.valley
		for len(st) > 0 {
			top := st[len(st)-1]
			if top.hill <= c.hill || top.valley >= c.valley {
				if top.hill > c.hill {
					c.hill = top.hill
				}
				c.nodes = sc.arena.cat(top.nodes, c.nodes)
				st = st[:len(st)-1]
				continue
			}
			break
		}
		st = append(st, c)
	}
	out := sc.arena.newProfile(len(st))
	var prev int64
	for _, c := range st {
		out = append(out, segment{hill: c.hill - prev, valley: c.valley - prev, nodes: c.nodes})
		prev = c.valley
	}
	sc.cum = st[:0]
	return out
}

// EnsureParallel warms v's subtree with up to workers concurrent warmers:
// the dirty region under v is sharded into disjoint subtrees, each ensured
// by exactly one worker with a private scratch (and private arena), then
// the residual top of the region is finished sequentially. The cached
// values are identical to a sequential ensure — only the wall-clock
// changes — and the sharding is race-clean because workers write disjoint
// index ranges of the cache arrays and never resize them. Under a
// residency policy every worker drops consumed slices within its own shard
// into its own arena; surviving queue entries are handed to the primary
// scratch at the join.
//
// A panic inside a warmer (an injected faultinject.ArenaAlloc failure, or
// a genuine bug) is re-raised on the calling goroutine at the join, after
// the surviving workers have finished their shards and the slice queues
// have been handed over — the cache stays consistent (recompute publishes
// a node only at its end) and the caller's recover sees the original
// panic value instead of the process dying in a bare goroutine.
func (c *ProfileCache) EnsureParallel(v, workers int) {
	if c.availNode(v) {
		return
	}
	if workers <= 1 {
		c.ensure(v)
		return
	}
	roots := c.shardRoots(v, workers)
	if len(roots) < 2 {
		c.ensure(v)
		return
	}
	if workers > len(roots) {
		workers = len(roots)
	}
	scratches := make([]*cacheScratch, workers)
	var next int64
	var firstPanic atomic.Pointer[any]
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		sc := &cacheScratch{}
		sc.arena.poolCap = c.sc.arena.poolCap
		scratches[w] = sc
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					firstPanic.CompareAndSwap(nil, &r)
					// Stop the other warmers at their next poll; the latch
					// is lifted again below once every goroutine has joined.
					c.canceled.Store(true)
				}
			}()
			for {
				i := atomic.AddInt64(&next, 1) - 1
				if i >= int64(len(roots)) {
					return
				}
				c.ensureWith(roots[i], sc)
			}
		}()
	}
	wg.Wait()
	for _, sc := range scratches {
		c.sc.sliceQ = append(c.sc.sliceQ, sc.sliceQ[sc.sliceHead:]...)
	}
	if p := firstPanic.Load(); p != nil {
		if c.opts.Done == nil {
			// The latch was only a sibling-stop signal, not a caller-visible
			// cancellation: clear it so a recovering caller can keep using
			// the cache.
			c.canceled.Store(false)
		}
		panic(*p)
	}
	c.ensure(v)
}

// CheckInvariants audits the cache's internal accounting and state
// machine: the resident-byte counter must equal the bytes recomputed from
// the per-node records, pins must be balanced and non-negative, no dirty
// node may hold a profile, and the dirty-up-closure must hold (a clean
// node's children are clean). The cancellation and fault-injection
// harnesses call it after interrupting the cache mid-work to prove the
// interruption left it sound. It returns the first violation found.
func (c *ProfileCache) CheckInvariants() error {
	var bytes, pins int64
	for v := 0; v < c.t.N() && v < len(c.valid); v++ {
		if c.prof[v] != nil {
			bytes += int64(cap(c.prof[v])) * segmentBytes
		}
		bytes += int64(c.ownedCount[v]) * ropeBytes
		if c.pinned[v] < 0 {
			return fmt.Errorf("liu: node %d has negative pin count %d", v, c.pinned[v])
		}
		pins += int64(c.pinned[v])
		if c.prof[v] != nil && !c.valid[v] {
			return fmt.Errorf("liu: dirty node %d holds a profile", v)
		}
		if c.valid[v] {
			for _, ch := range c.t.Children(v) {
				if !c.valid[ch] {
					return fmt.Errorf("liu: clean node %d has dirty child %d (dirty-up-closure broken)", v, ch)
				}
			}
		}
	}
	if got := c.residentBytes.Load(); got != bytes {
		return fmt.Errorf("liu: resident-byte counter %d, per-node records sum to %d", got, bytes)
	}
	if pins != c.pinCount {
		return fmt.Errorf("liu: pin counter %d, per-node pins sum to %d", c.pinCount, pins)
	}
	return nil
}

// shardRoots picks the roots of the parallel warm: maximal dirty subtrees
// under v whose dirty-node count is at most a grain chosen to yield several
// shards per worker. Shards are disjoint by maximality, so each can be
// ensured by an independent worker. Clean-but-reclaimed subtrees below a
// shard are rematerialized by that shard's worker as the bottom-up pass
// reaches their parents.
func (c *ProfileCache) shardRoots(v, workers int) []int {
	// Preorder over the dirty region (clean subtrees cost a warm nothing).
	order := make([]int, 0, 1024)
	stack := append(make([]int, 0, 64), v)
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if c.valid[x] {
			continue
		}
		order = append(order, x)
		for _, ch := range c.t.Children(x) {
			stack = append(stack, ch)
		}
	}
	grain := len(order) / (4 * workers)
	if grain < 1 {
		grain = 1
	}
	// Dirty-subtree sizes, bottom-up (reverse preorder).
	size := make([]int32, c.t.N())
	for i := len(order) - 1; i >= 0; i-- {
		x := order[i]
		size[x]++
		if x != v {
			size[c.t.Parent(x)] += size[x]
		}
	}
	roots := make([]int, 0, 4*workers)
	for _, x := range order {
		if int(size[x]) <= grain && (x == v || int(size[c.t.Parent(x)]) > grain) {
			roots = append(roots, x)
		}
	}
	return roots
}
