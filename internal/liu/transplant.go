package liu

// Profile transplant: copying the memoized profiles of one cache into
// another across an id remap, instead of recomputing them from scratch.
//
// The parallel expansion driver maintains two caches per work unit: the
// shared cache over the full mutable tree, and a local cache over the
// unit's extracted copy. Both describe the same subtree shape, so their
// canonical profiles are equal segment-for-segment — only the node ids
// inside the schedule ropes differ, and every leaf rope by construction
// holds exactly the id of the node that owns it. Transplanting therefore
// needs no explicit id map at all: a lockstep walk over the two trees
// (extraction preserves child order) pairs the nodes, and each cloned leaf
// rope is re-labelled with its destination owner. Internal (concatenation)
// ropes are cloned through a memo keyed by source rope pointer, which
// preserves the structural sharing between a parent's profile and its
// descendants' ropes — without the memo, cloning a subtree's profiles
// node-by-node would duplicate the whole subtree's ropes once per
// ancestor.
//
// Determinism makes the transplant invisible to results: recomputation
// would produce byte-identical profiles (same hills, valleys and node
// sequences), so adopting is purely a time/memory optimization and every
// bit-identity guarantee of the expansion engine is preserved.
//
// Residency states complicate the walk but not the contract. A source
// node may be sliceless (segment slice reclaimed, rope pages live): its
// ropes are still cloned — resident source ancestors reference them — and
// the destination node becomes sliceless too. A destination node that is
// already resident prunes the walk and seeds the memo from its existing
// segment ropes; if the source lost the matching slice, that seeding is
// impossible, and the nodes above the pruned subtree are left dirty
// (poisoned) rather than adopted with dangling ropes — they recompute
// later through the ordinary ensure path.

// CacheSnapshot is a read-only view of a cache's per-node arrays, stable
// under subsequent Grow calls of the source cache (Grow appends, so the
// snapshotted backing arrays keep describing the nodes that existed at
// snapshot time). The parallel driver hands snapshots of the shared cache
// to its unit workers; the driver pins the unit roots so no concurrent
// eviction can reclaim the profiles a snapshot reader is walking.
type CacheSnapshot struct {
	prof  []profile
	owned []*nodeRope
	peak  []int64
	valid []bool
}

// Snapshot captures the read-only view used by AdoptSubtree.
func (c *ProfileCache) Snapshot() CacheSnapshot {
	return CacheSnapshot{prof: c.prof, owned: c.owned, peak: c.peak, valid: c.valid}
}

// avail reports that s held a resident profile at snapshot time (and still
// does, as long as the pinning contract above is honored).
func (s *CacheSnapshot) avail(v int) bool {
	return v < len(s.valid) && s.valid[v] && s.prof[v] != nil
}

// adoptPair is one lockstep frame: the same structural node in the source
// and destination trees, plus the destination id of its parent for poison
// propagation (-1 at the walk root).
type adoptPair struct {
	s, d, pd int
	expanded bool
}

// AdoptSubtree transplants the clean profiles of src's subtree rooted at
// srcRoot into c at dstRoot. srcT is the tree the source cache was built
// over; its subtree at srcRoot must have exactly the shape (and child
// order) of c's subtree at dstRoot — the contract extraction and trace
// replay both guarantee. Dirty source nodes are skipped (their destination
// counterparts stay dirty), sliceless source nodes transplant their rope
// pages only, and already-resident destination subtrees are kept as-is.
// It returns the number of node profiles adopted.
func (c *ProfileCache) AdoptSubtree(src CacheSnapshot, srcT TreeLike, srcRoot, dstRoot int) int {
	memo := make(map[*nodeRope]*nodeRope)
	// poisoned marks destination nodes that must not be adopted because a
	// descendant's memo seeding was impossible (resident destination with
	// a slice-evicted source); the mark propagates to the walk root.
	var poisoned map[int]bool
	poison := func(d int) {
		if d >= 0 {
			if poisoned == nil {
				poisoned = make(map[int]bool)
			}
			poisoned[d] = true
		}
	}
	st := []adoptPair{{s: srcRoot, d: dstRoot, pd: -1}}
	adopted := 0
	for len(st) > 0 {
		f := st[len(st)-1]
		if !f.expanded {
			st[len(st)-1].expanded = true
			if c.availNode(f.d) {
				// Already resident here: identical content by determinism.
				// Seed the memo so an adopting ancestor can reference the
				// existing ropes instead of cloning the subtree again —
				// possible only while the source still has the matching
				// slice to read the correspondence from.
				st = st[:len(st)-1]
				if !src.avail(f.s) {
					poison(f.pd)
					continue
				}
				sp, dp := src.prof[f.s], c.prof[f.d]
				for k := range sp {
					memo[sp[k].nodes] = dp[k].nodes
				}
				continue
			}
			sch, dch := srcT.Children(f.s), c.t.Children(f.d)
			for k := range sch {
				st = append(st, adoptPair{s: sch[k], d: dch[k], pd: f.d})
			}
			continue
		}
		st = st[:len(st)-1]
		if !src.valid[f.s] || c.availNode(f.d) {
			if !src.valid[f.s] {
				poison(f.pd)
			}
			continue
		}
		if poisoned[f.d] {
			poison(f.pd)
			continue
		}
		if c.adoptNode(src, f.s, f.d, memo) {
			adopted++
		}
	}
	if adopted > 0 {
		c.adopted.Add(int64(adopted))
	}
	if c.policied() {
		c.slicePressure(c.sc)
		// Offer the freshly clean subtree for subtree eviction right away
		// instead of waiting for its next Invalidate exposure: an
		// adopt-heavy parallel run would otherwise stack transplanted rope
		// pages past the budget between invalidations (the §5 overshoot).
		// NoteCandidate's contract — every ancestor dirty — holds whenever
		// the adoption wrote anything at dstRoot (a resident ancestor
		// implies a resident destination subtree, which the walk prunes),
		// but check the parent anyway so a fully pruned walk stays safe.
		if p := c.t.Parent(dstRoot); p < 0 || !c.valid[p] {
			c.NoteCandidate(dstRoot)
		}
	}
	return adopted
}

// adoptNode clones one clean source node into the destination cache: its
// rope chain always (resident ancestors share those pages), its segment
// slice and residency when the source still holds them. The caller
// guarantees (by postorder) that every rope the node references through
// descendants is already in the memo; the node's own ropes are cloned here
// in allocation order, so concatenations always find their operands cloned
// first. It reports whether a profile slice was adopted.
func (c *ProfileCache) adoptNode(src CacheSnapshot, s, d int, memo map[*nodeRope]*nodeRope) bool {
	sc := c.sc
	if c.owned[d] != nil {
		// A sliceless destination being overwritten: its stale rope pages
		// are unreferenced (every destination ancestor on the walk is
		// profile-free, or the walk would have pruned), so recycle them.
		c.residentBytes.Add(-int64(c.ownedCount[d]) * ropeBytes)
		c.ownedCount[d] = 0
		sc.arena.freeOwned(c.owned[d])
		c.owned[d] = nil
	}
	// The owned chain is LIFO (newest first); reverse it to clone in
	// allocation order.
	chain := sc.adoptRopes[:0]
	for r := src.owned[s]; r != nil; r = r.nextOwned {
		chain = append(chain, r)
	}
	for i := len(chain) - 1; i >= 0; i-- {
		r := chain[i]
		var nr *nodeRope
		if r.leaf != nil {
			// Every leaf rope holds exactly its owning node's id; the
			// remap is therefore just the destination owner.
			nr = sc.arena.leafRope(d)
		} else {
			nr = sc.arena.newRope()
			nr.left, nr.right = memo[r.left], memo[r.right]
		}
		memo[r] = nr
	}
	sc.adoptRopes = chain[:0]
	ropes, nropes := sc.arena.takeOwned()
	c.owned[d] = ropes
	c.ownedCount[d] = nropes
	c.peak[d] = src.peak[s]
	c.valid[d] = true
	bytes := int64(nropes) * ropeBytes
	slice := false
	if sp := src.prof[s]; sp != nil {
		p := sc.arena.newProfile(len(sp))
		for _, seg := range sp {
			p = append(p, segment{hill: seg.hill, valley: seg.valley, nodes: memo[seg.nodes]})
		}
		c.prof[d] = p
		bytes += int64(cap(p)) * segmentBytes
		slice = true
	} else {
		c.prof[d] = nil // sliceless, like the source
	}
	c.addResident(bytes)
	if slice && c.policied() {
		// Queue the fresh slice for the budget's slice tier (its parent's
		// adoption, if any, reads only the memo, never this slice). The
		// pressure itself runs once after the walk: adoption is bottom-up,
		// so popping these entries any earlier would find parents not yet
		// adopted and drop the entries unevicted.
		c.pushConsumed(sc, d)
	}
	return slice
}
