// Package liu implements J.W.H. Liu's two classical algorithms for
// peak-memory tree scheduling, which the paper uses as substrates:
//
//   - MinMem (the paper's OPTMINMEM): the optimal, postorder-free traversal
//     minimizing peak memory, via generalized tree pebbling ("An application
//     of generalized tree pebbling to sparse matrix factorization", SIAM J.
//     Alg. Discrete Methods 8(3), 1987).
//   - PostOrderMinMem: the best postorder traversal for peak memory ("On the
//     storage requirement in the out-of-core multifrontal method for sparse
//     factorization", ACM TOMS, 1986).
//
// Both operate on the in-place task model of package tree, where executing
// node i needs w̄(i) = max(w_i, Σ_child w_j) and afterwards retains w_i.
//
// MinMem represents the traversal of each subtree by its hill–valley
// profile: a sequence of segments (H_1,V_1),...,(H_s,V_s) with strictly
// decreasing hills H and strictly increasing valleys V, where H_k is the
// peak reached during segment k and V_k the memory retained after it
// (measured from an empty memory at the subtree's start). Liu's theorem
// states that an optimal traversal of a node is obtained by merging the
// segments of the children's optimal traversals in non-increasing order of
// H − V (the exchange argument is the paper's Theorem 3) and appending the
// node's own execution; the per-child segment order is automatically
// preserved because H − V strictly decreases along a canonical profile.
package liu

import (
	"sort"

	"repro/internal/tree"
)

// nodeRope is an immutable sequence of node ids with O(1) concatenation;
// canonicalization merges segments constantly on chain-like trees, and
// copying slices there would cost Θ(n²) overall. buf and nextOwned serve
// the pooled allocation path of ProfileCache (see arena.go): buf backs
// single-id leaves without a separate slice, nextOwned chains a node into
// its owner's ownership list while live and into the free list when freed.
type nodeRope struct {
	left, right *nodeRope
	leaf        []int
	buf         [1]int
	nextOwned   *nodeRope
}

// appendTo flattens the rope into dst (iteratively: ropes from long chains
// are deep).
func (r *nodeRope) appendTo(dst []int) []int {
	stack := []*nodeRope{r}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur == nil {
			continue
		}
		if cur.leaf != nil {
			dst = append(dst, cur.leaf...)
			continue
		}
		stack = append(stack, cur.right, cur.left)
	}
	return dst
}

// segment is one hill–valley segment of a traversal profile. hill and
// valley are incremental with respect to the previous valley of the same
// profile: if the profile's retained memory before the segment is r, the
// segment reaches peak r+hill and ends with retained memory r+valley.
// nodes lists the tasks executed during the segment, in order.
type segment struct {
	hill   int64
	valley int64
	nodes  *nodeRope
}

// profile is a canonical traversal profile: incremental segments whose
// cumulative hills strictly decrease and cumulative valleys strictly
// increase.
type profile []segment

// MinMem computes an optimal peak-memory traversal of t. It returns the
// schedule and its peak memory (the minimum over all topological
// traversals of the maximum memory in use).
func MinMem(t *tree.Tree) (tree.Schedule, int64) {
	prof := minMemProfile(t, t.Root())
	sched := make(tree.Schedule, 0, t.N())
	var peak, r int64
	for _, s := range prof {
		if h := r + s.hill; h > peak {
			peak = h
		}
		r += s.valley
		sched = s.nodes.appendTo(sched)
	}
	return sched, peak
}

// MinMemPeak returns only the optimal peak (Peak_incore in Section 6).
func MinMemPeak(t *tree.Tree) int64 {
	_, p := MinMem(t)
	return p
}

// AllSubtreePeaks returns, for every node v, the optimal peak memory of
// the subtree rooted at v, in one bottom-up pass (the peak of a canonical
// profile is its first cumulative hill, recorded before the profile is
// consumed by the parent's merge).
func AllSubtreePeaks(t *tree.Tree) []int64 {
	peaks := make([]int64, t.N())
	minMemProfileWithPeaks(t, t.Root(), peaks)
	return peaks
}

// minMemProfile computes the canonical optimal profile of the subtree
// rooted at v. It works on an explicit stack to survive elimination-tree
// depths far beyond the goroutine recursion limit.
func minMemProfile(t *tree.Tree, root int) profile {
	return minMemProfileWithPeaks(t, root, nil)
}

// minMemProfileWithPeaks additionally records every finished subtree's
// optimal peak into peaks when non-nil.
func minMemProfileWithPeaks(t *tree.Tree, root int, peaks []int64) profile {
	// done[v] holds the finished profile of v's subtree. The scratch (and
	// its arena) is transient: nothing is ever invalidated here, so the
	// arena only pools this pass's allocations and is dropped with it.
	done := make(map[int]profile)
	sc := &cacheScratch{}
	type frame struct {
		node    int
		visited bool
	}
	stack := []frame{{root, false}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		if !f.visited {
			stack[len(stack)-1].visited = true
			for _, c := range t.Children(f.node) {
				stack = append(stack, frame{c, false})
			}
			continue
		}
		stack = stack[:len(stack)-1]
		v := f.node
		children := t.Children(v)
		var merged profile
		if len(children) > 0 {
			parts := make([]profile, len(children))
			for i, c := range children {
				parts[i] = done[c]
				delete(done, c)
			}
			merged = sc.merge.merge(parts)
		} else {
			sc.merge.ensure(1)
			merged = sc.merge.bufA[:0]
		}
		// Executing v itself: all children outputs (Σ w_c) are
		// resident; the execution peaks at w̄(v) and retains w_v.
		// In incremental terms relative to the pre-segment retained
		// volume Σ w_c (the sum of all child valleys):
		cs := t.ChildrenSum(v)
		merged = append(merged, segment{
			hill:   t.WBar(v) - cs,
			valley: t.Weight(v) - cs,
			nodes:  sc.arena.leafRope(v),
		})
		canon := sc.canonicalize(merged)
		if peaks != nil {
			var r, peak int64
			for _, s := range canon {
				if h := r + s.hill; h > peak {
					peak = h
				}
				r += s.valley
			}
			peaks[v] = peak
		}
		done[v] = canon
	}
	return done[root]
}

// mergeScratch holds the reusable buffers of the profile merge. The merge
// interleaves the children's canonical profiles optimally: all segments
// ordered by non-increasing (hill − valley), which by Liu's theorem (and
// the paper's Theorem 3 with x = hill, y = valley) minimizes the combined
// peak max_k (x_k + Σ_{j<k} y_j). Ties are broken by child order, then by
// per-child segment order. Because hill − valley strictly decreases within
// a canonical profile, every child is already a sorted run, so instead of
// a (allocating, reflect-based) stable sort the merge runs a bottom-up
// stable merge of the runs — O(total·log k) and allocation-free once the
// buffers are warm.
type mergeScratch struct {
	bufA, bufB   profile
	endsA, endsB []int32
}

// ensure grows both segment buffers to capacity n so that the caller can
// append one further segment to the merge result without reallocating.
func (ms *mergeScratch) ensure(n int) {
	if cap(ms.bufA) < n {
		ms.bufA = make(profile, 0, 2*n)
	}
	if cap(ms.bufB) < n {
		ms.bufB = make(profile, 0, 2*n)
	}
}

// merge interleaves the canonical profiles in parts. The result aliases one
// of the scratch buffers (capacity at least total+1, so the caller may
// append the node's own segment in place) and is valid until the next call.
func (ms *mergeScratch) merge(parts []profile) profile {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	ms.ensure(total + 1)
	if len(parts) == 1 {
		return append(ms.bufA[:0], parts[0]...)
	}
	// Lay the runs out contiguously in child order.
	src, dst := ms.bufA[:0], ms.bufB[:0]
	ends, newEnds := ms.endsA[:0], ms.endsB[:0]
	for _, p := range parts {
		if len(p) == 0 {
			continue
		}
		src = append(src, p...)
		ends = append(ends, int32(len(src)))
	}
	// Merge adjacent run pairs until one run remains; on equal keys the
	// left (earlier-child) run wins, reproducing a stable sort.
	for len(ends) > 1 {
		dst = dst[:0]
		newEnds = newEnds[:0]
		var start int32
		for i := 0; i < len(ends); i += 2 {
			if i+1 == len(ends) {
				dst = append(dst, src[start:ends[i]]...)
				newEnds = append(newEnds, int32(len(dst)))
				break
			}
			l, lEnd := start, ends[i]
			r, rEnd := ends[i], ends[i+1]
			for l < lEnd && r < rEnd {
				if src[l].hill-src[l].valley >= src[r].hill-src[r].valley {
					dst = append(dst, src[l])
					l++
				} else {
					dst = append(dst, src[r])
					r++
				}
			}
			dst = append(dst, src[l:lEnd]...)
			dst = append(dst, src[r:rEnd]...)
			newEnds = append(newEnds, int32(len(dst)))
			start = ends[i+1]
		}
		src, dst = dst, src
		ends, newEnds = newEnds, ends
	}
	// Keep the (possibly grown) buffers, whichever roles they ended in.
	ms.bufA, ms.bufB = src[:len(src):cap(src)], dst[:0:cap(dst)]
	ms.endsA, ms.endsB = ends[:0:cap(ends)], newEnds[:0:cap(newEnds)]
	return src
}

// PostOrderMinMem computes Liu's best postorder traversal for peak memory:
// children are visited in non-increasing order of (subtree peak − output
// size), per Theorem 3. It returns the postorder schedule and its peak.
func PostOrderMinMem(t *tree.Tree) (tree.Schedule, int64) {
	n := t.N()
	peak := make([]int64, n) // postorder peak of each subtree
	order := make([][]int, n)
	for _, v := range t.BottomUp() {
		children := append([]int(nil), t.Children(v)...)
		sort.SliceStable(children, func(a, b int) bool {
			da := peak[children[a]] - t.Weight(children[a])
			db := peak[children[b]] - t.Weight(children[b])
			if da != db {
				return da > db
			}
			return children[a] < children[b]
		})
		var before int64 // Σ outputs of already-finished siblings
		p := t.WBar(v)
		var sched []int
		for k, c := range children {
			if q := peak[c] + before; q > p {
				p = q
			}
			before += t.Weight(c)
			if k == 0 {
				sched = order[c] // reuse: keeps chains linear-time
			} else {
				sched = append(sched, order[c]...)
			}
			order[c] = nil
		}
		sched = append(sched, v)
		peak[v] = p
		order[v] = sched
	}
	return order[t.Root()], peak[t.Root()]
}
