// Package liu implements J.W.H. Liu's two classical algorithms for
// peak-memory tree scheduling, which the paper uses as substrates:
//
//   - MinMem (the paper's OPTMINMEM): the optimal, postorder-free traversal
//     minimizing peak memory, via generalized tree pebbling ("An application
//     of generalized tree pebbling to sparse matrix factorization", SIAM J.
//     Alg. Discrete Methods 8(3), 1987).
//   - PostOrderMinMem: the best postorder traversal for peak memory ("On the
//     storage requirement in the out-of-core multifrontal method for sparse
//     factorization", ACM TOMS, 1986).
//
// Both operate on the in-place task model of package tree, where executing
// node i needs w̄(i) = max(w_i, Σ_child w_j) and afterwards retains w_i.
//
// MinMem represents the traversal of each subtree by its hill–valley
// profile: a sequence of segments (H_1,V_1),...,(H_s,V_s) with strictly
// decreasing hills H and strictly increasing valleys V, where H_k is the
// peak reached during segment k and V_k the memory retained after it
// (measured from an empty memory at the subtree's start). Liu's theorem
// states that an optimal traversal of a node is obtained by merging the
// segments of the children's optimal traversals in non-increasing order of
// H − V (the exchange argument is the paper's Theorem 3) and appending the
// node's own execution; the per-child segment order is automatically
// preserved because H − V strictly decreases along a canonical profile.
package liu

import (
	"sort"

	"repro/internal/tree"
)

// nodeRope is an immutable sequence of node ids with O(1) concatenation;
// canonicalization merges segments constantly on chain-like trees, and
// copying slices there would cost Θ(n²) overall.
type nodeRope struct {
	left, right *nodeRope
	leaf        []int
}

func ropeOf(ids ...int) *nodeRope { return &nodeRope{leaf: ids} }

func ropeCat(a, b *nodeRope) *nodeRope {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return &nodeRope{left: a, right: b}
}

// appendTo flattens the rope into dst (iteratively: ropes from long chains
// are deep).
func (r *nodeRope) appendTo(dst []int) []int {
	stack := []*nodeRope{r}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur == nil {
			continue
		}
		if cur.leaf != nil {
			dst = append(dst, cur.leaf...)
			continue
		}
		stack = append(stack, cur.right, cur.left)
	}
	return dst
}

// segment is one hill–valley segment of a traversal profile. hill and
// valley are incremental with respect to the previous valley of the same
// profile: if the profile's retained memory before the segment is r, the
// segment reaches peak r+hill and ends with retained memory r+valley.
// nodes lists the tasks executed during the segment, in order.
type segment struct {
	hill   int64
	valley int64
	nodes  *nodeRope
}

// profile is a canonical traversal profile: incremental segments whose
// cumulative hills strictly decrease and cumulative valleys strictly
// increase.
type profile []segment

// MinMem computes an optimal peak-memory traversal of t. It returns the
// schedule and its peak memory (the minimum over all topological
// traversals of the maximum memory in use).
func MinMem(t *tree.Tree) (tree.Schedule, int64) {
	prof := minMemProfile(t, t.Root())
	sched := make(tree.Schedule, 0, t.N())
	var peak, r int64
	for _, s := range prof {
		if h := r + s.hill; h > peak {
			peak = h
		}
		r += s.valley
		sched = s.nodes.appendTo(sched)
	}
	return sched, peak
}

// MinMemPeak returns only the optimal peak (Peak_incore in Section 6).
func MinMemPeak(t *tree.Tree) int64 {
	_, p := MinMem(t)
	return p
}

// AllSubtreePeaks returns, for every node v, the optimal peak memory of
// the subtree rooted at v, in one bottom-up pass (the peak of a canonical
// profile is its first cumulative hill, recorded before the profile is
// consumed by the parent's merge).
func AllSubtreePeaks(t *tree.Tree) []int64 {
	peaks := make([]int64, t.N())
	minMemProfileWithPeaks(t, t.Root(), peaks)
	return peaks
}

// minMemProfile computes the canonical optimal profile of the subtree
// rooted at v. It works on an explicit stack to survive elimination-tree
// depths far beyond the goroutine recursion limit.
func minMemProfile(t *tree.Tree, root int) profile {
	return minMemProfileWithPeaks(t, root, nil)
}

// minMemProfileWithPeaks additionally records every finished subtree's
// optimal peak into peaks when non-nil.
func minMemProfileWithPeaks(t *tree.Tree, root int, peaks []int64) profile {
	// done[v] holds the finished profile of v's subtree.
	done := make(map[int]profile)
	type frame struct {
		node    int
		visited bool
	}
	stack := []frame{{root, false}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		if !f.visited {
			stack[len(stack)-1].visited = true
			for _, c := range t.Children(f.node) {
				stack = append(stack, frame{c, false})
			}
			continue
		}
		stack = stack[:len(stack)-1]
		v := f.node
		children := t.Children(v)
		merged := make(profile, 0, len(children)+1)
		if len(children) > 0 {
			parts := make([]profile, len(children))
			for i, c := range children {
				parts[i] = done[c]
				delete(done, c)
			}
			merged = mergeProfiles(parts)
		}
		// Executing v itself: all children outputs (Σ w_c) are
		// resident; the execution peaks at w̄(v) and retains w_v.
		// In incremental terms relative to the pre-segment retained
		// volume Σ w_c (the sum of all child valleys):
		cs := t.ChildrenSum(v)
		merged = append(merged, segment{
			hill:   t.WBar(v) - cs,
			valley: t.Weight(v) - cs,
			nodes:  ropeOf(v),
		})
		canon := canonicalize(merged)
		if peaks != nil {
			var r, peak int64
			for _, s := range canon {
				if h := r + s.hill; h > peak {
					peak = h
				}
				r += s.valley
			}
			peaks[v] = peak
		}
		done[v] = canon
	}
	return done[root]
}

// mergeProfiles interleaves the children's canonical profiles optimally:
// all segments sorted by non-increasing (hill − valley), which by Liu's
// theorem (and the paper's Theorem 3 with x = hill, y = valley) minimizes
// the combined peak max_k (x_k + Σ_{j<k} y_j). Ties are broken by child
// order, then by per-child segment order, keeping the merge deterministic
// and per-child order intact (within one child, hill − valley strictly
// decreases, so stability suffices).
func mergeProfiles(parts []profile) profile {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	type item struct {
		child, idx int
		seg        segment
	}
	items := make([]item, 0, total)
	for ci, p := range parts {
		for si, s := range p {
			items = append(items, item{ci, si, s})
		}
	}
	sort.SliceStable(items, func(a, b int) bool {
		da := items[a].seg.hill - items[a].seg.valley
		db := items[b].seg.hill - items[b].seg.valley
		return da > db
	})
	out := make(profile, len(items))
	for i, it := range items {
		out[i] = it.seg
	}
	return out
}

// canonicalize rewrites a profile so that cumulative hills strictly
// decrease and cumulative valleys strictly increase, merging offending
// consecutive segments. The memory profile it denotes is unchanged.
func canonicalize(p profile) profile {
	// Work in cumulative coordinates for clarity.
	type cum struct {
		hill, valley int64
		nodes        *nodeRope
	}
	var st []cum
	var r int64
	for _, s := range p {
		c := cum{hill: r + s.hill, valley: r + s.valley, nodes: s.nodes}
		r = c.valley
		for len(st) > 0 {
			top := st[len(st)-1]
			if top.hill <= c.hill || top.valley >= c.valley {
				if top.hill > c.hill {
					c.hill = top.hill
				}
				c.nodes = ropeCat(top.nodes, c.nodes)
				st = st[:len(st)-1]
				continue
			}
			break
		}
		st = append(st, c)
	}
	out := make(profile, len(st))
	var prev int64
	for i, c := range st {
		out[i] = segment{hill: c.hill - prev, valley: c.valley - prev, nodes: c.nodes}
		prev = c.valley
	}
	return out
}

// PostOrderMinMem computes Liu's best postorder traversal for peak memory:
// children are visited in non-increasing order of (subtree peak − output
// size), per Theorem 3. It returns the postorder schedule and its peak.
func PostOrderMinMem(t *tree.Tree) (tree.Schedule, int64) {
	n := t.N()
	peak := make([]int64, n) // postorder peak of each subtree
	order := make([][]int, n)
	for _, v := range t.BottomUp() {
		children := append([]int(nil), t.Children(v)...)
		sort.SliceStable(children, func(a, b int) bool {
			da := peak[children[a]] - t.Weight(children[a])
			db := peak[children[b]] - t.Weight(children[b])
			if da != db {
				return da > db
			}
			return children[a] < children[b]
		})
		var before int64 // Σ outputs of already-finished siblings
		p := t.WBar(v)
		var sched []int
		for k, c := range children {
			if q := peak[c] + before; q > p {
				p = q
			}
			before += t.Weight(c)
			if k == 0 {
				sched = order[c] // reuse: keeps chains linear-time
			} else {
				sched = append(sched, order[c]...)
			}
			order[c] = nil
		}
		sched = append(sched, v)
		peak[v] = p
		order[v] = sched
	}
	return order[t.Root()], peak[t.Root()]
}
