// Package chaosnet is a seeded deterministic TCP fault proxy: it sits
// between a client and a server and injects the network failures the
// serving path must survive — connection resets (RST), clean mid-body
// truncation (FIN), latency spikes, and throughput throttling. Each
// accepted connection draws a fault plan from one seeded rng, so a run is
// reproducible from its seed, and an optional fault budget guarantees the
// chaos eventually dries up and every retried request can complete.
//
// Faults are injected on the server→client direction — the schedule
// stream — which is where a byte lost or a connection torn must be
// recovered by the client's repair-and-resume loop, not where it merely
// fails a request before any work happened.
package chaosnet

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"
)

// faultKind enumerates what a connection's plan does to it.
type faultKind int

const (
	faultNone     faultKind = iota
	faultReset              // RST the client mid-body (SetLinger(0) + close)
	faultTruncate           // clean FIN mid-body
	faultStall              // one latency spike mid-stream, then continue
	faultThrottle           // rate-limit the rest of the stream
)

// Config carries the proxy policy. All probabilities are per-connection
// and drawn in accept order from one rng seeded with Seed.
type Config struct {
	// Target is the server address proxied to (host:port). Mandatory at
	// New; changeable later via SetTarget (drain failover).
	Target string
	// Seed fixes the fault schedule; 0 means 1.
	Seed int64
	// ResetProb, TruncProb, StallProb and ThrottleProb select each fault
	// kind; their sum must be ≤ 1, the remainder is clean connections.
	ResetProb, TruncProb, StallProb, ThrottleProb float64
	// FaultAfterMax bounds how many server→client bytes pass before a
	// reset/truncate fires (drawn uniformly from [1, FaultAfterMax]); 0
	// means 4096. Small values tear streams early, large ones late.
	FaultAfterMax int64
	// StallDur is the injected latency spike; 0 means 200ms.
	StallDur time.Duration
	// ThrottleBytesPerSec is the throttled rate; 0 means 16KiB/s.
	ThrottleBytesPerSec int64
	// MaxFaults, when positive, caps the injected faults: once spent,
	// every further connection is clean, so a bounded retry loop is
	// guaranteed to finish. 0 means unlimited.
	MaxFaults int64
}

// withDefaults resolves the zero-value policy knobs.
func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.FaultAfterMax == 0 {
		c.FaultAfterMax = 4096
	}
	if c.StallDur == 0 {
		c.StallDur = 200 * time.Millisecond
	}
	if c.ThrottleBytesPerSec == 0 {
		c.ThrottleBytesPerSec = 16 << 10
	}
	return c
}

// Stats counts the proxy's traffic and injected faults.
type Stats struct {
	// Conns counts accepted connections; Clean those that ran unfaulted.
	Conns, Clean int64
	// Resets, Truncates, Stalls and Throttles count injected faults by
	// kind.
	Resets, Truncates, Stalls, Throttles int64
	// BytesDown is the server→client bytes actually forwarded.
	BytesDown int64
}

// plan is one connection's drawn fate.
type plan struct {
	kind    faultKind
	fireAt  int64 // server→client bytes before the fault fires
	stall   time.Duration
	bytesPS int64
}

// Proxy is a running chaos proxy. Construct with New, point clients at
// Addr, stop with Close.
type Proxy struct {
	cfg Config
	ln  net.Listener

	mu     sync.Mutex
	target string
	rng    *rand.Rand
	spent  int64
	stats  Stats
	closed bool

	wg sync.WaitGroup
}

// New starts a proxy on a fresh loopback port, forwarding to cfg.Target.
func New(cfg Config) (*Proxy, error) {
	cfg = cfg.withDefaults()
	if cfg.Target == "" {
		return nil, fmt.Errorf("chaosnet: Target is mandatory")
	}
	if s := cfg.ResetProb + cfg.TruncProb + cfg.StallProb + cfg.ThrottleProb; s > 1 {
		return nil, fmt.Errorf("chaosnet: fault probabilities sum to %v > 1", s)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("chaosnet: listening: %w", err)
	}
	p := &Proxy{
		cfg:    cfg,
		ln:     ln,
		target: cfg.Target,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the address clients should dial (host:port).
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetTarget repoints the proxy at a new server address; connections
// already in flight keep their old target. This is the drain-failover
// hook: kill server A, repoint at server B, and resumed requests must
// pick up from A's checkpoints.
func (p *Proxy) SetTarget(addr string) {
	p.mu.Lock()
	p.target = addr
	p.mu.Unlock()
}

// Stats returns a snapshot of the proxy counters.
func (p *Proxy) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Close stops accepting, tears down in-flight connections' listener side,
// and waits for the handler goroutines to drain.
func (p *Proxy) Close() error {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	err := p.ln.Close()
	p.wg.Wait()
	return err
}

// acceptLoop draws a plan per connection, in accept order, and hands it
// to a handler goroutine.
func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		pl, target := p.draw()
		p.wg.Add(1)
		go p.handle(c, pl, target)
	}
}

// draw picks the next connection's plan and target under the lock — the
// rng consumption order is the accept order, which is what the seed
// reproduces.
func (p *Proxy) draw() (plan, string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Conns++
	pl := plan{kind: faultNone}
	if p.cfg.MaxFaults == 0 || p.spent < p.cfg.MaxFaults {
		r := p.rng.Float64()
		switch {
		case r < p.cfg.ResetProb:
			pl.kind = faultReset
		case r < p.cfg.ResetProb+p.cfg.TruncProb:
			pl.kind = faultTruncate
		case r < p.cfg.ResetProb+p.cfg.TruncProb+p.cfg.StallProb:
			pl.kind = faultStall
		case r < p.cfg.ResetProb+p.cfg.TruncProb+p.cfg.StallProb+p.cfg.ThrottleProb:
			pl.kind = faultThrottle
		}
	}
	switch pl.kind {
	case faultNone:
		p.stats.Clean++
	case faultReset:
		p.spent++
		p.stats.Resets++
		pl.fireAt = 1 + p.rng.Int63n(p.cfg.FaultAfterMax)
	case faultTruncate:
		p.spent++
		p.stats.Truncates++
		pl.fireAt = 1 + p.rng.Int63n(p.cfg.FaultAfterMax)
	case faultStall:
		p.spent++
		p.stats.Stalls++
		pl.fireAt = 1 + p.rng.Int63n(p.cfg.FaultAfterMax)
		pl.stall = p.cfg.StallDur
	case faultThrottle:
		p.spent++
		p.stats.Throttles++
		pl.fireAt = 1 + p.rng.Int63n(p.cfg.FaultAfterMax)
		pl.bytesPS = p.cfg.ThrottleBytesPerSec
	}
	return pl, p.target
}

// handle proxies one connection under its plan.
func (p *Proxy) handle(client net.Conn, pl plan, target string) {
	defer p.wg.Done()
	defer client.Close()
	server, err := net.Dial("tcp", target)
	if err != nil {
		// Target down (a drain window): drop the client, its retry will
		// land on the repointed target.
		return
	}
	defer server.Close()

	// Upstream direction runs clean: requests are small, and faulting
	// them only rejects work before it starts.
	go func() {
		_, _ = io.Copy(server, client)
		if tc, ok := server.(*net.TCPConn); ok {
			_ = tc.CloseWrite()
		}
	}()

	p.copyDown(client, server, pl)
}

// copyDown forwards server→client, firing the plan's fault at its byte
// offset. Small chunks keep the fault offset sharp relative to the
// stream's framing.
func (p *Proxy) copyDown(client, server net.Conn, pl plan) {
	buf := make([]byte, 1024)
	var fwd int64
	fired := false
	for {
		n, rerr := server.Read(buf)
		if n > 0 {
			chunk := buf[:n]
			if !fired && pl.kind != faultNone && fwd+int64(n) >= pl.fireAt {
				fired = true
				switch pl.kind {
				case faultReset:
					// Forward the partial chunk up to the fault offset,
					// then RST: SetLinger(0) discards the send queue and
					// closes with a reset, which the client observes as a
					// mid-body connection error.
					cut := pl.fireAt - fwd
					p.forward(client, chunk[:cut])
					if tc, ok := client.(*net.TCPConn); ok {
						_ = tc.SetLinger(0)
					}
					return
				case faultTruncate:
					// Clean FIN mid-body: the HTTP framing is torn, so the
					// client sees an unexpected EOF and must repair.
					cut := pl.fireAt - fwd
					p.forward(client, chunk[:cut])
					return
				case faultStall:
					time.Sleep(pl.stall)
				case faultThrottle:
					// Handled below per chunk once fired.
				}
			}
			if fired && pl.kind == faultThrottle && pl.bytesPS > 0 {
				time.Sleep(time.Duration(int64(n) * int64(time.Second) / pl.bytesPS))
			}
			if !p.forward(client, chunk) {
				return
			}
			fwd += int64(n)
		}
		if rerr != nil {
			return
		}
	}
}

// forward writes one chunk to the client and tallies it; false means the
// client side is gone.
func (p *Proxy) forward(client net.Conn, chunk []byte) bool {
	if len(chunk) == 0 {
		return true
	}
	n, err := client.Write(chunk)
	p.mu.Lock()
	p.stats.BytesDown += int64(n)
	p.mu.Unlock()
	return err == nil
}
