package chaosnet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/randtree"
	"repro/internal/schedclient"
	"repro/internal/schedd"
	"repro/internal/tree"
)

// quiet drops log noise from the daemons under chaos.
func quiet() *slog.Logger { return slog.New(slog.NewTextHandler(io.Discard, nil)) }

// chaosInstance synthesizes an I/O-bound instance for the grid.
func chaosInstance(t *testing.T, n int, seed int64) (*tree.Tree, int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for {
		tr := randtree.Synth(n, rng)
		in := core.NewInstance("chaos", tr)
		if in.NeedsIO() {
			return tr, in.M(core.BoundMid)
		}
	}
}

// directStream is the ground truth: the uninterrupted RunStream bytes.
func directStream(t *testing.T, tr *tree.Tree, M int64) []byte {
	t.Helper()
	var buf bytes.Buffer
	rn := core.NewRunner(0)
	if _, err := tree.WriteSchedule(&buf, func(yield func(seg []int) bool) bool {
		_, err := rn.RunStream(core.RecExpand, tr, M, yield)
		return err == nil
	}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// chaosHTTPClient gives every request its own connection, so each draws
// its own fault plan from the proxy.
func chaosHTTPClient() *http.Client {
	return &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
}

// schedReq builds the client request for tr under M.
func schedReq(t *testing.T, tr *tree.Tree, M int64) schedd.Request {
	t.Helper()
	raw, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	return schedd.Request{Tree: raw, M: M, WaitMS: 2000}
}

// TestProxyCleanPassThrough: with no fault probability, the proxy is an
// invisible TCP relay — HTTP round-trips through it unchanged.
func TestProxyCleanPassThrough(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "pong")
	}))
	defer backend.Close()
	p, err := New(Config{Target: backend.Listener.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	resp, err := chaosHTTPClient().Get("http://" + p.Addr() + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if string(b) != "pong" {
		t.Fatalf("through-proxy body %q", b)
	}
	st := p.Stats()
	if st.Conns != 1 || st.Clean != 1 || st.BytesDown == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestProxyDeterministicPlans: two proxies with the same seed draw the
// same fault sequence; a different seed draws a different one.
func TestProxyDeterministicPlans(t *testing.T) {
	draw := func(seed int64) []faultKind {
		p := &Proxy{cfg: Config{
			ResetProb: 0.3, TruncProb: 0.3, StallProb: 0.2, ThrottleProb: 0.1,
		}.withDefaults(), rng: rand.New(rand.NewSource(seed)), target: "x"}
		var kinds []faultKind
		for i := 0; i < 64; i++ {
			pl, _ := p.draw()
			kinds = append(kinds, pl.kind)
		}
		return kinds
	}
	a, b, c := draw(5), draw(5), draw(6)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverges at %d: %v vs %v", i, a[i], b[i])
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds drew identical plans")
	}
}

// TestChaosServingGrid is the kill-anywhere serving grid of the issue:
// for a seeded chaos schedule of connection resets, mid-body truncations,
// stalls and throttling, every request driven through
// client↔proxy↔daemon eventually completes and its reassembled stream is
// byte-for-byte identical to an uninterrupted RunStream of the same
// instance. Runs per seed so a failure names its chaos schedule.
func TestChaosServingGrid(t *testing.T) {
	seeds := []int64{1, 2, 3}
	reqs := 6
	if testing.Short() {
		seeds = seeds[:1]
		reqs = 3
	}
	tr, M := chaosInstance(t, 12000, 101)
	want := directStream(t, tr, M)

	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			s, err := schedd.NewServer(schedd.Config{
				Budget:        256 << 20,
				CheckpointDir: t.TempDir(),
				Logger:        quiet(),
			})
			if err != nil {
				t.Fatal(err)
			}
			backend := httptest.NewServer(s.Handler())
			defer backend.Close()
			p, err := New(Config{
				Target:        backend.Listener.Addr().String(),
				Seed:          seed,
				ResetProb:     0.35,
				TruncProb:     0.35,
				StallProb:     0.1,
				ThrottleProb:  0.1,
				StallDur:      20 * time.Millisecond,
				FaultAfterMax: 32 << 10,
				MaxFaults:     int64(reqs) * 4, // chaos dries up, completion guaranteed
			})
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()

			c := schedclient.New(schedclient.Config{
				BaseURL:       "http://" + p.Addr(),
				HTTPClient:    chaosHTTPClient(),
				MaxAttempts:   12,
				BaseBackoff:   2 * time.Millisecond,
				MaxBackoff:    50 * time.Millisecond,
				MaxRetryAfter: 50 * time.Millisecond,
				Seed:          seed,
			})
			retries, resumes := 0, 0
			for i := 0; i < reqs; i++ {
				res, err := c.Stream(context.Background(), schedReq(t, tr, M))
				if err != nil {
					t.Fatalf("request %d: %v", i, err)
				}
				if !bytes.Equal(res.Stream, want) {
					t.Fatalf("request %d: reassembled stream diverges from direct RunStream (%d vs %d bytes)",
						i, len(res.Stream), len(want))
				}
				retries += res.Retries
				resumes += res.Resumes
			}
			st := p.Stats()
			if st.Resets+st.Truncates+st.Stalls+st.Throttles == 0 {
				t.Fatalf("chaos injected nothing: %+v", st)
			}
			t.Logf("proxy: %+v; client retries=%d resumes=%d", st, retries, resumes)
		})
	}
}

// TestChaosDrainFailover is the drain leg of the grid: server A is
// drained mid-stream, the proxy is repointed at server B sharing A's
// checkpoint directory, and the client's retry resumes A's flushed
// checkpoint on B — the reassembled stream still byte-identical to an
// uninterrupted run.
func TestChaosDrainFailover(t *testing.T) {
	ckptDir := t.TempDir()
	tr, M := chaosInstance(t, 20000, 103)
	want := directStream(t, tr, M)

	newServer := func() (*schedd.Server, *httptest.Server) {
		s, err := schedd.NewServer(schedd.Config{
			Budget:        256 << 20,
			CheckpointDir: ckptDir,
			DrainGrace:    10 * time.Millisecond,
			Logger:        quiet(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return s, httptest.NewServer(s.Handler())
	}
	sA, srvA := newServer()
	defer srvA.Close()
	sB, srvB := newServer()
	defer srvB.Close()

	// One guaranteed mid-body truncation on the first connection (to A),
	// clean after that: the cut is deterministic, the drain is not racing
	// socket buffering.
	p, err := New(Config{
		Target:        srvA.Listener.Addr().String(),
		Seed:          9,
		TruncProb:     1,
		MaxFaults:     1,
		FaultAfterMax: 8 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c := schedclient.New(schedclient.Config{
		BaseURL:       "http://" + p.Addr(),
		HTTPClient:    chaosHTTPClient(),
		MaxAttempts:   10,
		BaseBackoff:   5 * time.Millisecond,
		MaxBackoff:    100 * time.Millisecond,
		MaxRetryAfter: 100 * time.Millisecond,
		Seed:          9,
	})
	type outcome struct {
		res *schedclient.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := c.Stream(context.Background(), schedReq(t, tr, M))
		done <- outcome{res, err}
	}()

	// Wait for the torn attempt to settle on A (its keyed checkpoint and
	// journal entry are then durably in the shared directory), repoint
	// the proxy at B, and drain A. A may record the attempt as errored
	// (the cut propagated) or served (the proxy swallowed the tail after
	// A finished) — both leave the durable state the retry needs. A retry
	// that slips into A first is cut by the drain; either way the request
	// finishes on B.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := sA.Stats()
		if st.Errored+st.Served >= 1 && st.InFlight == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("torn attempt never settled on A")
		}
		time.Sleep(time.Millisecond)
	}
	p.SetTarget(srvB.Listener.Addr().String())
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := sA.Drain(ctx); err != nil {
		t.Fatalf("drain A: %v", err)
	}

	out := <-done
	if out.err != nil {
		t.Fatalf("client through failover: %v", out.err)
	}
	if !bytes.Equal(out.res.Stream, want) {
		t.Fatalf("failover reassembly diverges from direct RunStream (%d vs %d bytes)",
			len(out.res.Stream), len(want))
	}
	if out.res.Retries == 0 || out.res.Resumes == 0 {
		t.Fatalf("failover produced no retry/resume: %+v", out.res)
	}
	// B observed the key and resumed A's flushed state — the cross-daemon
	// handoff went through the shared durable journal and checkpoint, not
	// through luck.
	if js := sB.Journal().Stats(); js.Begun == 0 {
		t.Fatalf("server B never saw the key: %+v", js)
	}
	if st := sB.Stats(); st.Resumed == 0 {
		t.Fatalf("server B never resumed: %+v", st)
	}
}
