// Package faultinject is a deterministic, seed-driven fault-injection
// registry for the engine's robustness tests. Production code calls the
// Fire/FireN hooks at its injection points; under the default build the
// hooks are compiled as constant-false no-ops (see disabled.go), and under
// the `faultinject` build tag they count hits with atomic counters and
// trigger the armed fault exactly once (see enabled.go).
//
// The intended protocol is count-then-arm: run the workload once with
// nothing armed to learn how often a point fires (Hits), derive a
// deterministic hit index from a test seed (PlanHit), Reset, Arm that
// index, and re-run. Concurrent workloads still fire exactly once at a
// deterministic hit NUMBER, though which goroutine observes that hit may
// vary; sequential workloads are fully deterministic.
//
// The registry is process-global on purpose — the hooks sit deep inside
// the arena and the parallel driver, where threading a handle through
// every call would distort the very hot paths the faults are meant to
// stress. Tests that arm faults must therefore not run in parallel with
// each other.
package faultinject

import "errors"

// Point identifies one injection site compiled into the engine.
type Point uint8

// The compiled-in injection points. Hits are counted per point; see the
// hook sites for what a triggered fault does there.
const (
	// ArenaAlloc fires in the liu profile arena's rope allocation; a
	// triggered fault panics with ErrArenaAlloc (contained and converted
	// to a typed error at the expand.Engine boundary).
	ArenaAlloc Point = iota
	// CacheEvict fires at the liu cache's safe eviction windows (consumed
	// slices during a warm, hanging subtrees at invalidation); a triggered
	// fault forces the eviction even when the budget would not demand it.
	CacheEvict
	// WorkerPanic fires at the start of a parallel-driver unit worker; a
	// triggered fault panics with ErrWorkerPanic inside the worker
	// goroutine (contained as an expand.WorkerError).
	WorkerPanic
	// WorkerStall fires at the start of a parallel-driver unit worker; a
	// triggered fault sleeps the worker briefly, exercising the merger's
	// wait and the lead-bounded queue under skew.
	WorkerStall
	// WriterIO fires per byte offered to a Writer; a triggered fault makes
	// that Write call fail with ErrWrite, so arming hit N injects an I/O
	// error at byte N of the output stream.
	WriterIO
	// CkptWrite fires once per durable checkpoint write (ckpt.WriteFile);
	// a triggered fault fails that write with ErrCkptWrite after flushing
	// only a prefix of the temp file, so the committed checkpoint on disk
	// must stay the previous, intact one.
	CkptWrite
	// CkptRename fires at the atomic-rename step of a checkpoint write; a
	// triggered fault fails the rename with ErrCkptRename, leaving a fully
	// written temp file next to the still-intact previous checkpoint.
	CkptRename
	// LeaseAcquire fires per budget-lease acquisition attempt in the
	// schedd broker; a triggered fault fails that acquisition with
	// ErrLeaseAcquire (surfaced to the client as a 503), exercising the
	// admission path's error handling without exhausting the budget.
	LeaseAcquire
	// HandlerPanic fires at the start of each schedd request handler; a
	// triggered fault panics with ErrHandlerPanic inside the handler,
	// which the server must contain to a 500 on that request only — the
	// daemon stays serving.
	HandlerPanic
	// WriterStall fires per response Write of the schedd streaming path;
	// a triggered fault makes the server stall that write briefly,
	// simulating a slow client draining its response at a trickle while
	// other requests must keep being served.
	WriterStall

	numPoints
)

// String names the point.
func (p Point) String() string {
	switch p {
	case ArenaAlloc:
		return "ArenaAlloc"
	case CacheEvict:
		return "CacheEvict"
	case WorkerPanic:
		return "WorkerPanic"
	case WorkerStall:
		return "WorkerStall"
	case WriterIO:
		return "WriterIO"
	case CkptWrite:
		return "CkptWrite"
	case CkptRename:
		return "CkptRename"
	case LeaseAcquire:
		return "LeaseAcquire"
	case HandlerPanic:
		return "HandlerPanic"
	case WriterStall:
		return "WriterStall"
	}
	return "Point(?)"
}

// The sentinel values injected faults surface with: the two panic values
// the engine's containment layers must convert to typed errors, and the
// write error the Writer wrapper returns.
var (
	// ErrArenaAlloc is the panic value of an injected arena allocation
	// failure (the ArenaAlloc point).
	ErrArenaAlloc = errors.New("faultinject: injected arena allocation failure")
	// ErrWorkerPanic is the panic value of an injected unit-worker panic
	// (the WorkerPanic point).
	ErrWorkerPanic = errors.New("faultinject: injected worker panic")
	// ErrWrite is the error an injected Writer failure returns (the
	// WriterIO point).
	ErrWrite = errors.New("faultinject: injected write error")
	// ErrCkptWrite is the error an injected checkpoint write failure
	// returns (the CkptWrite point).
	ErrCkptWrite = errors.New("faultinject: injected checkpoint write failure")
	// ErrCkptRename is the error an injected checkpoint rename failure
	// returns (the CkptRename point).
	ErrCkptRename = errors.New("faultinject: injected checkpoint rename failure")
	// ErrLeaseAcquire is the error an injected budget-lease acquisition
	// failure returns (the LeaseAcquire point).
	ErrLeaseAcquire = errors.New("faultinject: injected lease acquisition failure")
	// ErrHandlerPanic is the panic value of an injected request-handler
	// panic (the HandlerPanic point).
	ErrHandlerPanic = errors.New("faultinject: injected handler panic")
)

// PlanHit derives a deterministic 1-based hit index in [1, total] from a
// test seed — the arming value for a point observed to fire total times in
// a counting run. It returns 0 (never fires) when total is 0. The mix is
// splitmix64, so nearby seeds arm well-spread indices.
func PlanHit(seed int64, p Point, total uint64) uint64 {
	if total == 0 {
		return 0
	}
	x := uint64(seed) + (uint64(p)+1)*0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return 1 + x%total
}
