//go:build faultinject

package faultinject

import (
	"io"
	"sync/atomic"
)

// pointState is the per-point registry slot: a monotone hit counter and
// the armed hit index (0 = disarmed).
type pointState struct {
	hits atomic.Uint64
	arm  atomic.Uint64
}

var state [numPoints]pointState

// Enabled reports whether the binary was built with the faultinject tag;
// hook call sites stay cheap either way, but tests use this to skip
// arming-dependent assertions on default builds.
func Enabled() bool { return true }

// Reset zeroes every point's hit counter and disarms every fault. Call it
// between injection experiments.
func Reset() {
	for i := range state {
		state[i].hits.Store(0)
		state[i].arm.Store(0)
	}
}

// Arm schedules the fault at p to trigger when the hit counter crosses n
// (1-based, counted from the last Reset); n == 0 disarms the point. The
// fault triggers exactly once.
func Arm(p Point, n uint64) { state[p].arm.Store(n) }

// Hits returns how many hits point p has accumulated since the last
// Reset — the count-then-arm protocol's observation step.
func Hits(p Point) uint64 { return state[p].hits.Load() }

// Fire records one hit at p and reports whether the armed fault triggers
// on it. Hook sites act on a true return (panic, forced eviction, ...).
func Fire(p Point) bool { return FireN(p, 1) }

// FireN records n hits at p at once (a Writer counts bytes, not calls) and
// reports whether the armed index was crossed by this batch.
func FireN(p Point, n int) bool {
	if n <= 0 {
		return false
	}
	s := &state[p]
	after := s.hits.Add(uint64(n))
	a := s.arm.Load()
	return a != 0 && after >= a && after-uint64(n) < a
}

// NewWriter wraps w with the WriterIO injection point: every Write offers
// its byte count to FireN, and the Write on which the armed byte index is
// crossed fails with ErrWrite instead of reaching w. With nothing armed
// the wrapper only counts.
func NewWriter(w io.Writer) io.Writer { return &faultWriter{w: w} }

// faultWriter is the enabled-build Writer wrapper.
type faultWriter struct{ w io.Writer }

func (fw *faultWriter) Write(p []byte) (int, error) {
	if FireN(WriterIO, len(p)) {
		return 0, ErrWrite
	}
	return fw.w.Write(p)
}
