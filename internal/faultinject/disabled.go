//go:build !faultinject

package faultinject

import "io"

// Enabled reports whether the binary was built with the faultinject tag;
// on this default build every hook is a constant-false no-op the compiler
// erases from the hot paths.
func Enabled() bool { return false }

// Reset is a no-op on default builds.
func Reset() {}

// Arm is a no-op on default builds.
func Arm(Point, uint64) {}

// Hits returns 0 on default builds.
func Hits(Point) uint64 { return 0 }

// Fire reports false on default builds, erasing the hook.
func Fire(Point) bool { return false }

// FireN reports false on default builds, erasing the hook.
func FireN(Point, int) bool { return false }

// NewWriter returns w unchanged on default builds: no wrapper, no byte
// counting.
func NewWriter(w io.Writer) io.Writer { return w }
