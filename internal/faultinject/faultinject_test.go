package faultinject

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// TestPlanHitRange pins the arming helper: indices stay in [1, total],
// distinct seeds spread, and total == 0 disarms.
func TestPlanHitRange(t *testing.T) {
	if got := PlanHit(1, ArenaAlloc, 0); got != 0 {
		t.Fatalf("PlanHit(total=0) = %d, want 0", got)
	}
	seen := map[uint64]bool{}
	for seed := int64(0); seed < 200; seed++ {
		h := PlanHit(seed, CacheEvict, 97)
		if h < 1 || h > 97 {
			t.Fatalf("PlanHit(seed=%d) = %d out of [1, 97]", seed, h)
		}
		seen[h] = true
	}
	if len(seen) < 30 {
		t.Fatalf("PlanHit spread too poor: %d distinct values of 200 seeds", len(seen))
	}
	if PlanHit(7, ArenaAlloc, 1000) == PlanHit(7, WriterIO, 1000) &&
		PlanHit(8, ArenaAlloc, 1000) == PlanHit(8, WriterIO, 1000) {
		t.Fatal("PlanHit ignores the point")
	}
}

// TestPointString covers the point names used in harness failure messages.
func TestPointString(t *testing.T) {
	for p := ArenaAlloc; p < numPoints; p++ {
		if s := p.String(); s == "" || strings.Contains(s, "?") {
			t.Fatalf("point %d has no name: %q", p, s)
		}
	}
	if s := Point(250).String(); !strings.Contains(s, "?") {
		t.Fatalf("out-of-range point stringified as %q", s)
	}
}

// TestRegistry exercises the count/arm/fire protocol. On default builds it
// instead pins that every hook is inert, so the test is meaningful under
// both values of the build tag.
func TestRegistry(t *testing.T) {
	if !Enabled() {
		if Fire(ArenaAlloc) || FireN(WriterIO, 100) {
			t.Fatal("disabled build fired")
		}
		Arm(ArenaAlloc, 1)
		if Fire(ArenaAlloc) {
			t.Fatal("disabled build fired after Arm")
		}
		if Hits(ArenaAlloc) != 0 {
			t.Fatal("disabled build counted hits")
		}
		return
	}
	Reset()
	t.Cleanup(Reset)
	for i := 0; i < 5; i++ {
		if Fire(ArenaAlloc) {
			t.Fatal("unarmed point fired")
		}
	}
	if got := Hits(ArenaAlloc); got != 5 {
		t.Fatalf("Hits = %d, want 5", got)
	}
	Reset()
	Arm(ArenaAlloc, 3)
	fired := 0
	for i := 0; i < 10; i++ {
		if Fire(ArenaAlloc) {
			fired++
			if i != 2 {
				t.Fatalf("fired on hit %d, want hit 3", i+1)
			}
		}
	}
	if fired != 1 {
		t.Fatalf("fired %d times, want exactly once", fired)
	}
	// Batch counting: crossing the armed index mid-batch triggers once.
	Reset()
	Arm(WriterIO, 150)
	if FireN(WriterIO, 100) {
		t.Fatal("fired before the armed byte")
	}
	if !FireN(WriterIO, 100) {
		t.Fatal("did not fire on the batch crossing the armed byte")
	}
	if FireN(WriterIO, 100) {
		t.Fatal("fired twice")
	}
}

// TestWriter exercises the WriterIO wrapper. On default builds NewWriter
// must return the writer unchanged.
func TestWriter(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if !Enabled() {
		if w != &buf {
			t.Fatal("disabled NewWriter wrapped the writer")
		}
		return
	}
	Reset()
	t.Cleanup(Reset)
	Arm(WriterIO, 11) // fail on the write containing byte 11
	if _, err := w.Write([]byte("0123456789")); err != nil {
		t.Fatalf("write before the armed byte failed: %v", err)
	}
	_, err := w.Write([]byte("abcdef"))
	if !errors.Is(err, ErrWrite) {
		t.Fatalf("write crossing the armed byte: err = %v, want ErrWrite", err)
	}
	if buf.String() != "0123456789" {
		t.Fatalf("failed write reached the sink: %q", buf.String())
	}
	if _, err := w.Write([]byte("ghi")); err != nil {
		t.Fatalf("write after the fault failed: %v", err)
	}
}
