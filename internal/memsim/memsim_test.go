package memsim

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/tree"
)

// twoChains is the Figure 2(b) tree: unit root over two 3,5,2,6 chains.
func twoChains() *tree.Tree {
	return tree.Graft(1, tree.Chain(3, 5, 2, 6), tree.Chain(3, 5, 2, 6))
}

func TestPeakSimpleChain(t *testing.T) {
	// Chain root(3) <- mid(5) <- leaf(2): leaf: 2; mid: max(5,2)=5;
	// root: max(3,5)=5. Peak 5.
	c := tree.Chain(3, 5, 2)
	p, err := Peak(c, tree.Schedule{2, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if p != 5 {
		t.Fatalf("peak=%d want 5", p)
	}
}

func TestPeakStar(t *testing.T) {
	// Star root(1) with leaves 2,3,4: leaves accumulate, then root
	// needs max(1, 9) = 9. Peak 9 whatever the leaf order.
	s := tree.Star(1, 2, 3, 4)
	p, err := Peak(s, tree.Schedule{1, 2, 3, 0})
	if err != nil {
		t.Fatal(err)
	}
	if p != 9 {
		t.Fatalf("peak=%d want 9", p)
	}
}

func TestRunChainAfterChainFig2b(t *testing.T) {
	tr := twoChains()
	sched := tree.Schedule{4, 3, 2, 1, 8, 7, 6, 5, 0}
	res, err := RunTraced(tr, 6, sched, FiF)
	if err != nil {
		t.Fatal(err)
	}
	if res.IO != 3 {
		t.Errorf("IO=%d want 3 (paper, Section 4.4)", res.IO)
	}
	if res.Peak != 9 {
		t.Errorf("peak=%d want 9", res.Peak)
	}
	// All I/O is paid on the first chain's top node (id 1), evicted
	// while the second chain's leaf executes.
	if res.Tau[1] != 3 {
		t.Errorf("tau=%v want 3 on node 1", res.Tau)
	}
	if len(res.Trace) != tr.N() {
		t.Errorf("trace has %d steps", len(res.Trace))
	}
	var evictedAt int
	for _, st := range res.Trace {
		if st.Evicted > 0 {
			evictedAt = st.Node
		}
	}
	if evictedAt != 8 {
		t.Errorf("eviction at node %d, want 8 (second chain's leaf)", evictedAt)
	}
}

func TestRunErrors(t *testing.T) {
	tr := twoChains()
	if _, err := Run(tr, 6, tree.Schedule{0, 1, 2, 3, 4, 5, 6, 7, 8}, FiF); err == nil {
		t.Error("non-topological schedule accepted")
	}
	if _, err := Run(tr, 5, tree.Schedule{4, 3, 2, 1, 8, 7, 6, 5, 0}, FiF); err == nil {
		t.Error("M below w̄ accepted")
	}
	if _, err := Run(tr, 6, tree.Schedule{4, 3}, FiF); err == nil {
		t.Error("short schedule accepted")
	}
}

func TestIOZeroWhenMemoryAmple(t *testing.T) {
	tr := twoChains()
	sched := tree.Schedule{4, 3, 2, 1, 8, 7, 6, 5, 0}
	res, err := Run(tr, 100, sched, FiF)
	if err != nil {
		t.Fatal(err)
	}
	if res.IO != 0 {
		t.Errorf("IO=%d want 0", res.IO)
	}
	for i, ti := range res.Tau {
		if ti != 0 {
			t.Errorf("tau[%d]=%d", i, ti)
		}
	}
}

func TestIOMonotoneInM(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		tr := randomTree(2+rng.Intn(20), rng)
		sched := tr.NaturalPostorder()
		lb := tr.MaxWBar()
		peak, err := Peak(tr, sched)
		if err != nil {
			t.Fatal(err)
		}
		prev := int64(-1)
		for M := peak; M >= lb; M-- {
			io, err := IOOf(tr, M, sched)
			if err != nil {
				t.Fatal(err)
			}
			if prev >= 0 && io < prev {
				t.Fatalf("I/O not monotone: M=%d io=%d, M=%d io=%d", M+1, prev, M, io)
			}
			prev = io
		}
		// At M = peak, no I/O at all.
		io, _ := IOOf(tr, peak, sched)
		if io != 0 {
			t.Fatalf("io=%d at M=peak", io)
		}
	}
}

func TestFiFBeatsOtherPoliciesOnAverage(t *testing.T) {
	// Theorem 1: for a fixed schedule, FiF is optimal; hence it is never
	// worse than NiF or LargestFirst on any instance.
	rng := rand.New(rand.NewSource(21))
	beatenNiF, beatenLF := false, false
	for trial := 0; trial < 300; trial++ {
		tr := randomTree(3+rng.Intn(15), rng)
		sched := tr.NaturalPostorder()
		lb := tr.MaxWBar()
		peak, _ := Peak(tr, sched)
		if peak <= lb {
			continue
		}
		M := (lb + peak) / 2
		fif, err := Run(tr, M, sched, FiF)
		if err != nil {
			t.Fatal(err)
		}
		nif, err := Run(tr, M, sched, NiF)
		if err != nil {
			t.Fatal(err)
		}
		lf, err := Run(tr, M, sched, LargestFirst)
		if err != nil {
			t.Fatal(err)
		}
		if fif.IO > nif.IO {
			t.Fatalf("FiF (%d) worse than NiF (%d) on %v M=%d", fif.IO, nif.IO, tr.Parents(), M)
		}
		if fif.IO > lf.IO {
			t.Fatalf("FiF (%d) worse than LargestFirst (%d)", fif.IO, lf.IO)
		}
		if fif.IO < nif.IO {
			beatenNiF = true
		}
		if fif.IO < lf.IO {
			beatenLF = true
		}
	}
	if !beatenNiF || !beatenLF {
		t.Error("expected FiF to strictly beat both baselines somewhere")
	}
}

func TestTauNeverExceedsWeight(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		tr := randomTree(2+rng.Intn(25), rng)
		sched := tr.BottomUp()
		lb := tr.MaxWBar()
		res, err := Run(tr, lb, sched, FiF)
		if err != nil {
			t.Fatal(err)
		}
		for i, ti := range res.Tau {
			if ti < 0 || ti > tr.Weight(i) {
				t.Fatalf("tau[%d]=%d weight=%d", i, ti, tr.Weight(i))
			}
		}
		if err := Validate(tr, lb, sched, res.Tau); err != nil {
			t.Fatalf("FiF result fails Validate: %v", err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	// root(1){x(3){leaf(5)}, y(3){leaf(5)}}: LB = 6 (the root's input
	// sum and each chain's w̄ are at most 6... w̄(x)=5, w̄(root)=6).
	tr := tree.Graft(1, tree.Chain(3, 5), tree.Chain(3, 5))
	sched := tree.Schedule{2, 1, 4, 3, 0} // leaf, x, leaf, y, root
	// M=8: works with zero tau (peak is 3+5 at the second leaf).
	zero := make([]int64, 5)
	if err := Validate(tr, 8, sched, zero); err != nil {
		t.Fatal(err)
	}
	// M=6: executing the second leaf with x resident needs tau(x) >= 2.
	if err := Validate(tr, 6, sched, zero); err == nil {
		t.Error("overflow accepted")
	} else if !strings.Contains(err.Error(), "active resident") {
		t.Errorf("unexpected error: %v", err)
	}
	if err := Validate(tr, 6, sched, []int64{0, 2, 0, 0, 0}); err != nil {
		t.Errorf("valid tau rejected: %v", err)
	}
	if err := Validate(tr, 8, sched, []int64{0, 9, 0, 0, 0}); err == nil {
		t.Error("tau above weight accepted")
	}
	if err := Validate(tr, 8, sched, []int64{0, -1, 0, 0, 0}); err == nil {
		t.Error("negative tau accepted")
	}
	if err := Validate(tr, 8, sched, []int64{0, 0}); err == nil {
		t.Error("short tau accepted")
	}
	if err := Validate(tr, 8, tree.Schedule{0, 1, 2, 3, 4}, zero); err == nil {
		t.Error("non-topological accepted")
	}
}

func TestValidateWBarAtRoot(t *testing.T) {
	// Validate must also catch the case where the node's own w̄ exceeds
	// M even with an empty active set.
	tr := tree.Star(1, 5, 5)
	if err := Validate(tr, 9, tree.Schedule{1, 2, 0}, []int64{0, 5, 0}); err == nil {
		t.Error("root w̄=10 > M=9 accepted")
	}
}

func TestPoliciesString(t *testing.T) {
	if FiF.String() != "FiF" || NiF.String() != "NiF" || LargestFirst.String() != "LargestFirst" {
		t.Error("policy names")
	}
	if EvictionPolicy(42).String() == "" {
		t.Error("unknown policy name empty")
	}
}

func TestHeapBasics(t *testing.T) {
	h := &nodeHeap{}
	if h.peek() != -1 {
		t.Fatal("empty peek")
	}
	h.push(3, 5)
	h.push(1, 2)
	h.push(7, 9)
	h.push(4, 2) // tie with node 1: smaller id wins
	if h.peek() != 1 {
		t.Fatalf("peek=%d", h.peek())
	}
	h.remove(1)
	if h.peek() != 4 {
		t.Fatalf("peek=%d after remove", h.peek())
	}
	h.remove(7)
	h.remove(4)
	if h.peek() != 3 || h.len() != 1 {
		t.Fatalf("peek=%d len=%d", h.peek(), h.len())
	}
	resident := []int64{0, 0, 0, 9, 0, 0, 0, 0}
	if h.largest(resident) != 3 {
		t.Fatal("largest")
	}
	defer func() {
		if recover() == nil {
			t.Error("double push should panic")
		}
	}()
	h.push(3, 1)
}

func TestHeapRemoveAbsentPanics(t *testing.T) {
	h := &nodeHeap{}
	h.push(1, 1)
	defer func() {
		if recover() == nil {
			t.Error("remove absent should panic")
		}
	}()
	h.remove(2)
}

// randomTree builds a random tree by attaching each node to a random
// earlier node, with weights in [1, 20].
func randomTree(n int, rng *rand.Rand) *tree.Tree {
	parent := make([]int, n)
	weight := make([]int64, n)
	parent[0] = tree.None
	weight[0] = 1 + rng.Int63n(20)
	for i := 1; i < n; i++ {
		parent[i] = rng.Intn(i)
		weight[i] = 1 + rng.Int63n(20)
	}
	return tree.MustNew(parent, weight)
}
