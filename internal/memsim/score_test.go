package memsim

import (
	"math/rand"
	"testing"

	"repro/internal/tree"
)

func TestScoreScheduleKnownInstance(t *testing.T) {
	// Figure 2(b): the chain-after-chain traversal pays exactly 3 I/Os at
	// M = 6 and peaks at 9 without a bound.
	tr := tree.Graft(1, tree.Chain(3, 5, 2, 6), tree.Chain(3, 5, 2, 6))
	sched := tree.Schedule{4, 3, 2, 1, 8, 7, 6, 5, 0}
	s, err := ScoreSchedule(tr, 6, sched)
	if err != nil {
		t.Fatal(err)
	}
	if s.IO != 3 || s.Peak != 9 || s.Bounded {
		t.Fatalf("score %+v, want IO=3 Peak=9 Bounded=false", s)
	}
	// At M = Peak the same schedule needs no I/O.
	s, err = ScoreSchedule(tr, s.Peak, sched)
	if err != nil {
		t.Fatal(err)
	}
	if s.IO != 0 || !s.Bounded {
		t.Fatalf("score at M=peak %+v, want IO=0 Bounded=true", s)
	}
}

func TestScoreScheduleMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(20)
		parent := make([]int, n)
		weight := make([]int64, n)
		parent[0] = tree.None
		weight[0] = 1 + rng.Int63n(9)
		for i := 1; i < n; i++ {
			parent[i] = rng.Intn(i)
			weight[i] = 1 + rng.Int63n(9)
		}
		tr := tree.MustNew(parent, weight)
		M := tr.MaxWBar() + rng.Int63n(6)
		sched := tr.NaturalPostorder()
		s, err := ScoreSchedule(tr, M, sched)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(tr, M, sched, FiF)
		if err != nil {
			t.Fatal(err)
		}
		if s.IO != res.IO || s.Peak != res.Peak || s.Bounded != (res.IO == 0) {
			t.Fatalf("trial %d: score %+v vs run io=%d peak=%d", trial, s, res.IO, res.Peak)
		}
	}
}

func TestScoreScheduleErrors(t *testing.T) {
	tr := tree.Chain(3, 5, 2)
	if _, err := ScoreSchedule(tr, 5, tree.Schedule{0, 1, 2}); err == nil {
		t.Fatal("non-topological schedule accepted")
	}
	if _, err := ScoreSchedule(tr, 1, tree.Schedule{2, 1, 0}); err == nil {
		t.Fatal("M below LB accepted")
	}
}
