// Package memsim is the out-of-core memory substrate: it executes a task
// tree schedule under a main-memory bound M with unit-granularity paging to
// an unbounded disk, exactly following the model of Section 3 of RR-9025.
//
// The central entry point is Run, which evaluates a schedule σ and derives
// the I/O function τ using the Furthest-in-the-Future (FiF) eviction policy,
// which Theorem 1 of the paper proves optimal for a fixed σ. The package
// also provides Validate for checking arbitrary (σ, τ) traversals against
// the paper's validity conditions, Peak for the M = ∞ peak-memory
// evaluation used by the MinMem algorithms, and (*Simulator).RunStream for
// evaluating a schedule delivered as a stream of segments without ever
// materializing it (stream.go).
package memsim

import (
	"fmt"
	"math"

	"repro/internal/tree"
)

// Unbounded is a memory bound large enough to never trigger I/O; passing it
// to Run computes the in-core peak of a schedule.
const Unbounded = math.MaxInt64 / 4

// EvictionPolicy selects which active data to page out when memory
// overflows. FiF is optimal (Theorem 1); the others exist for the ablation
// benchmarks that demonstrate that optimality empirically.
type EvictionPolicy int

const (
	// FiF evicts the active data whose parent is scheduled furthest in
	// the future (the paper's policy, analogous to Belady's MIN rule).
	FiF EvictionPolicy = iota
	// NiF (nearest in future) evicts the data needed soonest: the
	// pessimal counterpart of FiF.
	NiF
	// LargestFirst evicts the active data with the largest resident part.
	LargestFirst
)

// String names the policy.
func (p EvictionPolicy) String() string {
	switch p {
	case FiF:
		return "FiF"
	case NiF:
		return "NiF"
	case LargestFirst:
		return "LargestFirst"
	}
	return fmt.Sprintf("EvictionPolicy(%d)", int(p))
}

// StepTrace records the memory state around the execution of one task.
type StepTrace struct {
	Step    int   // schedule position
	Node    int   // task executed
	Before  int64 // resident volume before eviction, children included
	Need    int64 // w̄(node): memory required by the execution itself
	Evicted int64 // volume written to disk at this step
	After   int64 // resident volume right after the execution completes
}

// Result is the outcome of simulating a schedule.
type Result struct {
	Schedule tree.Schedule
	// Tau[i] is the total volume of node i's output written to disk
	// (the paper's τ(i)); reads are implicit and not counted.
	Tau []int64
	// IO is Σ_i Tau[i], the objective value of MinIO.
	IO int64
	// Peak is the maximum over steps of the memory in use had no
	// eviction been performed at that step; with M = Unbounded this is
	// the in-core peak memory of the schedule.
	Peak int64
	// Trace holds one entry per step when tracing was requested.
	Trace []StepTrace
}

// Run executes sched on t under memory bound M, deriving τ with the given
// eviction policy (use FiF for Theorem-1-optimal behaviour). It errors if
// sched is not a topological permutation or if M < max_i w̄(i).
func Run(t *tree.Tree, M int64, sched tree.Schedule, policy EvictionPolicy) (*Result, error) {
	return run(t, M, sched, policy, false)
}

// RunTraced is Run with a per-step trace attached to the result.
func RunTraced(t *tree.Tree, M int64, sched tree.Schedule, policy EvictionPolicy) (*Result, error) {
	return run(t, M, sched, policy, true)
}

// Peak returns the in-core peak memory of sched on t (the smallest M for
// which sched completes without any I/O).
func Peak(t *tree.Tree, sched tree.Schedule) (int64, error) {
	res, err := run(t, Unbounded, sched, FiF, false)
	if err != nil {
		return 0, err
	}
	return res.Peak, nil
}

func run(t *tree.Tree, M int64, sched tree.Schedule, policy EvictionPolicy, traced bool) (*Result, error) {
	s := NewSimulator()
	io, peak, err := s.run(t, t.Root(), M, sched, policy, traced)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Schedule: append(tree.Schedule(nil), sched...),
		Tau:      append([]int64(nil), s.tau[:t.N()]...),
		IO:       io,
		Peak:     peak,
	}
	if traced {
		res.Trace = append([]StepTrace(nil), s.trace...)
	}
	return res, nil
}

// Validate checks the paper's three validity conditions for an explicit
// traversal (σ, τ): topological order, 0 ≤ τ(i) ≤ w_i, and for every step,
// Σ_{k active}(w_k − τ(k)) ≤ M − w̄(executed node). Active means executed
// strictly before the step with parent executed strictly after it; writes
// happen immediately after production, reads immediately before the parent.
func Validate(t *tree.Tree, M int64, sched tree.Schedule, tau []int64) error {
	n := t.N()
	if len(tau) != n {
		return fmt.Errorf("memsim: τ has %d entries for %d nodes", len(tau), n)
	}
	if err := tree.Validate(t, sched); err != nil {
		return err
	}
	for i, ti := range tau {
		if ti < 0 || ti > t.Weight(i) {
			return fmt.Errorf("memsim: τ(%d)=%d out of [0, %d]", i, ti, t.Weight(i))
		}
	}
	var active int64 // Σ over active nodes of (w_k - τ(k))
	for step, v := range sched {
		for _, c := range t.Children(v) {
			active -= t.Weight(c) - tau[c]
		}
		if got, limit := active, M-t.WBar(v); got > limit {
			return fmt.Errorf("memsim: step %d (node %d): active resident %d > M-w̄ = %d",
				step, v, got, limit)
		}
		if t.Parent(v) != tree.None {
			active += t.Weight(v) - tau[v]
		}
	}
	return nil
}

// IOOf is a convenience wrapper returning only the FiF I/O volume of a
// schedule.
func IOOf(t *tree.Tree, M int64, sched tree.Schedule) (int64, error) {
	res, err := Run(t, M, sched, FiF)
	if err != nil {
		return 0, err
	}
	return res.IO, nil
}
