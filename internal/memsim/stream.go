package memsim

import (
	"context"
	"errors"
	"fmt"
)

// ScheduleSource produces a schedule as a stream of segments: it calls
// yield with successive segments in traversal order and stops early if
// yield returns false, reporting whether the full schedule was delivered.
// liu.ProfileCache.EmitSchedule and expand.(*Engine).RecExpandStream both
// have this shape.
type ScheduleSource = func(yield func(seg []int) bool) bool

// ErrStreamStopped is returned by RunStream when the source stopped
// delivering segments before the schedule was complete (its own consumer
// cancelled, or it failed mid-stream).
var ErrStreamStopped = errors.New("memsim: schedule stream stopped early")

// RunStream simulates a schedule delivered as a stream of segments — the
// subtree rooted at root on ts under memory bound M, deriving τ with the
// given eviction policy — without ever materializing the schedule slice.
// It returns the same I/O volume and no-eviction peak as Run on the
// flattened schedule (pinned by TestRunStreamMatchesRun).
//
// The source is invoked exactly twice and must deliver the identical node
// sequence both times (streamed emissions are deterministic walks, so this
// holds for them by construction): the first pass assigns schedule
// positions — the future knowledge the FiF/NiF eviction keys need — and
// validates the permutation; the second pass runs the simulation. A
// divergence between the passes is detected and rejected. The only
// per-run transient beyond the simulator's preallocated node-indexed
// scratch is the source's segment, so verifying a streamed schedule adds
// O(segment) resident memory, not O(n): the n-word schedule of the old
// Run path never exists.
func (s *Simulator) RunStream(ts TreeView, root int, M int64, source ScheduleSource, policy EvictionPolicy) (io, peak int64, err error) {
	n := ts.N()
	s.begin(ts, n)
	total := 0
	var serr error
	complete := source(func(seg []int) bool {
		if serr = s.index(n, seg, total); serr != nil {
			return false
		}
		total += len(seg)
		return true
	})
	if serr != nil {
		return 0, 0, serr
	}
	if !complete {
		return 0, 0, ErrStreamStopped
	}
	if total == 0 {
		return 0, 0, fmt.Errorf("memsim: empty schedule")
	}
	var st simState
	complete = source(func(seg []int) bool {
		serr = s.steps(&st, ts, root, M, seg, policy, false)
		return serr == nil
	})
	if serr != nil {
		return 0, 0, serr
	}
	if !complete || st.step != total {
		if serr == nil && !complete {
			return 0, 0, ErrStreamStopped
		}
		return 0, 0, fmt.Errorf("memsim: stream delivered %d nodes on the second pass, %d on the first", st.step, total)
	}
	return st.io, st.peak, nil
}

// RunStreamCtx is RunStream with cooperative cancellation at segment
// granularity: before consuming each segment of either pass it checks the
// context, and a pending cancellation aborts the run with ctx.Err()
// instead of ErrStreamStopped. A nil context — or one that can never be
// cancelled, like context.Background(), whose Done channel is nil — takes
// the exact RunStream path with zero per-segment overhead.
func (s *Simulator) RunStreamCtx(ctx context.Context, ts TreeView, root int, M int64, source ScheduleSource, policy EvictionPolicy) (io, peak int64, err error) {
	if ctx == nil || ctx.Done() == nil {
		return s.RunStream(ts, root, M, source, policy)
	}
	done := ctx.Done()
	canceled := false
	wrapped := func(yield func(seg []int) bool) bool {
		return source(func(seg []int) bool {
			select {
			case <-done:
				canceled = true
				return false
			default:
			}
			return yield(seg)
		})
	}
	io, peak, err = s.RunStream(ts, root, M, wrapped, policy)
	if canceled {
		return 0, 0, ctx.Err()
	}
	return io, peak, err
}
