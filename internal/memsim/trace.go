package memsim

import (
	"fmt"
	"strings"
)

// RenderTrace formats a traced simulation as an ASCII memory timeline: one
// line per step with the executed node, the memory level before eviction
// (as a bar scaled to width columns), and the volume evicted at that step.
// It returns the empty string if the result carries no trace.
func RenderTrace(res *Result, width int) string {
	if len(res.Trace) == 0 {
		return ""
	}
	if width < 10 {
		width = 10
	}
	var max int64 = 1
	for _, st := range res.Trace {
		if st.Before > max {
			max = st.Before
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%6s %8s %10s %8s  %s\n", "step", "node", "mem", "evicted", "usage")
	for _, st := range res.Trace {
		bar := int(st.Before * int64(width) / max)
		if bar < 0 {
			bar = 0
		}
		marker := ""
		if st.Evicted > 0 {
			marker = " <-- I/O"
		}
		fmt.Fprintf(&b, "%6d %8d %10d %8d  |%s%s|%s\n",
			st.Step, st.Node, st.Before, st.Evicted,
			strings.Repeat("#", bar), strings.Repeat(" ", width-bar), marker)
	}
	fmt.Fprintf(&b, "total I/O volume: %d; peak demand: %d\n", res.IO, res.Peak)
	return b.String()
}
