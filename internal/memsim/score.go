package memsim

import "repro/internal/tree"

// Score is the two-level (in-core + disk) evaluation of a schedule: the
// figure of merit the paging model assigns to a traversal executed under a
// main-memory bound with FiF eviction. It is the scoring hook of the
// certification harness (ROADMAP item 5: score schedules by I/O volume,
// not just peak) and the tested form of the re-simulation that
// examples/paging walks through step by step.
type Score struct {
	// IO is the FiF I/O volume under the bound: the total disk traffic
	// (in data units) of the two-level execution. Reads mirror writes and
	// are not double-counted, exactly as in Result.IO.
	IO int64
	// Peak is the in-core peak demand of the schedule — the memory the
	// traversal would need to run without any I/O. Peak <= M iff IO == 0.
	Peak int64
	// Bounded reports whether the schedule fits the bound without disk
	// traffic (IO == 0).
	Bounded bool
}

// ScoreSchedule re-simulates sched on t under memory bound M with the FiF
// policy (Theorem-1-optimal for a fixed schedule) and returns its
// two-level score. It errors exactly where Run does: non-topological
// schedules and M below the instance lower bound.
func ScoreSchedule(t *tree.Tree, M int64, sched tree.Schedule) (Score, error) {
	res, err := Run(t, M, sched, FiF)
	if err != nil {
		return Score{}, err
	}
	return Score{IO: res.IO, Peak: res.Peak, Bounded: res.IO == 0}, nil
}
