package memsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tree"
)

// Property-based tests (testing/quick) for the simulator's fundamental
// invariants over randomly drawn trees, schedules and memory bounds.

func genTreeAndSchedule(seed int64) (*tree.Tree, tree.Schedule, int64) {
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(25)
	parent := make([]int, n)
	weight := make([]int64, n)
	parent[0] = tree.None
	weight[0] = 1 + rng.Int63n(15)
	for i := 1; i < n; i++ {
		parent[i] = rng.Intn(i)
		weight[i] = 1 + rng.Int63n(15)
	}
	t := tree.MustNew(parent, weight)
	// Random topological order: repeatedly pick a random ready node.
	remaining := make([]int, n)
	for i := 0; i < n; i++ {
		remaining[i] = t.NumChildren(i)
	}
	var ready []int
	for i := 0; i < n; i++ {
		if remaining[i] == 0 {
			ready = append(ready, i)
		}
	}
	sched := make(tree.Schedule, 0, n)
	for len(ready) > 0 {
		k := rng.Intn(len(ready))
		v := ready[k]
		ready = append(ready[:k], ready[k+1:]...)
		sched = append(sched, v)
		if p := t.Parent(v); p != tree.None {
			remaining[p]--
			if remaining[p] == 0 {
				ready = append(ready, p)
			}
		}
	}
	lb := t.MaxWBar()
	peak, err := Peak(t, sched)
	if err != nil {
		panic(err)
	}
	M := lb
	if peak > lb {
		M = lb + rng.Int63n(peak-lb+1)
	}
	return t, sched, M
}

// Property: the FiF I/O of any schedule is at least its peak deficit
// (peak − M) and zero exactly when the schedule fits.
func TestQuickIOBoundsPeakDeficit(t *testing.T) {
	f := func(seed int64) bool {
		tr, sched, M := genTreeAndSchedule(seed)
		peak, err := Peak(tr, sched)
		if err != nil {
			return false
		}
		io, err := IOOf(tr, M, sched)
		if err != nil {
			return false
		}
		if deficit := peak - M; deficit > 0 && io < deficit {
			return false
		}
		if peak <= M && io != 0 {
			return false
		}
		if io < 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the τ returned by the FiF run always passes the independent
// Validate checker, and its total matches the declared IO.
func TestQuickFiFTauValidates(t *testing.T) {
	f := func(seed int64) bool {
		tr, sched, M := genTreeAndSchedule(seed)
		res, err := Run(tr, M, sched, FiF)
		if err != nil {
			return false
		}
		var total int64
		for _, ti := range res.Tau {
			total += ti
		}
		if total != res.IO {
			return false
		}
		return Validate(tr, M, sched, res.Tau) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the root's output is never evicted, and no τ is charged to
// the last executed node.
func TestQuickRootNeverEvicted(t *testing.T) {
	f := func(seed int64) bool {
		tr, sched, M := genTreeAndSchedule(seed)
		res, err := Run(tr, M, sched, FiF)
		if err != nil {
			return false
		}
		return res.Tau[tr.Root()] == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
