package memsim

// nodeHeap is an indexed min-heap of node ids ordered by an int64 key, with
// O(log n) push/remove and O(1) peek. It backs the eviction-order queue of
// the simulator: for FiF the key is the negated schedule position of the
// node's parent, so the minimum-key element is the active data used furthest
// in the future.
//
// The id → heap-slot index is a plain slice (idx), grown on demand, so that
// a Simulator can clear and refill the heap without allocating. Key ties are
// broken by rank when set (the sibling order of a mutable tree, matching the
// BFS numbering an extracted subtree would receive) and by smaller id
// otherwise.
type nodeHeap struct {
	ids  []int   // heap array of node ids
	keys []int64 // keys[k] is the key of ids[k]
	idx  []int32 // node id -> index in ids, -1 when absent
	rank []int32 // optional sibling-order tie-break; nil falls back to ids
}

func (h *nodeHeap) len() int { return len(h.ids) }

// grow extends the id index to cover ids in [0, n).
func (h *nodeHeap) grow(n int) {
	for len(h.idx) < n {
		h.idx = append(h.idx, -1)
	}
}

// clear empties the heap, resetting the index entries it used.
func (h *nodeHeap) clear() {
	for _, id := range h.ids {
		h.idx[id] = -1
	}
	h.ids = h.ids[:0]
	h.keys = h.keys[:0]
}

// push inserts id with the given key. Pushing an id twice is a programming
// error and panics.
func (h *nodeHeap) push(id int, key int64) {
	h.grow(id + 1)
	if h.idx[id] >= 0 {
		panic("memsim: node pushed twice")
	}
	h.ids = append(h.ids, id)
	h.keys = append(h.keys, key)
	h.idx[id] = int32(len(h.ids) - 1)
	h.up(len(h.ids) - 1)
}

// peek returns the id with the minimum key, or -1 if empty.
func (h *nodeHeap) peek() int {
	if len(h.ids) == 0 {
		return -1
	}
	return h.ids[0]
}

// remove deletes id from the heap. Removing an absent id panics.
func (h *nodeHeap) remove(id int) {
	if id >= len(h.idx) || h.idx[id] < 0 {
		panic("memsim: removing node not in heap")
	}
	i := int(h.idx[id])
	last := len(h.ids) - 1
	h.swap(i, last)
	h.ids = h.ids[:last]
	h.keys = h.keys[:last]
	h.idx[id] = -1
	if i < last {
		h.down(i)
		h.up(i)
	}
}

// largest returns the id whose resident value is maximal (ties broken by
// smaller id). It scans the whole heap: only the ablation policies use it.
func (h *nodeHeap) largest(resident []int64) int {
	best, bestVal := -1, int64(-1)
	for _, id := range h.ids {
		v := resident[id]
		if v > bestVal || (v == bestVal && id < best) {
			best, bestVal = id, v
		}
	}
	return best
}

func (h *nodeHeap) swap(i, j int) {
	h.ids[i], h.ids[j] = h.ids[j], h.ids[i]
	h.keys[i], h.keys[j] = h.keys[j], h.keys[i]
	h.idx[h.ids[i]] = int32(i)
	h.idx[h.ids[j]] = int32(j)
}

func (h *nodeHeap) less(i, j int) bool {
	if h.keys[i] != h.keys[j] {
		return h.keys[i] < h.keys[j]
	}
	if h.rank != nil {
		// Equal keys mean equal parent positions, i.e. siblings; their
		// child-list ranks are distinct and reproduce the id order an
		// extracted copy of the subtree would have.
		if ri, rj := h.rank[h.ids[i]], h.rank[h.ids[j]]; ri != rj {
			return ri < rj
		}
	}
	return h.ids[i] < h.ids[j] // deterministic tie-break
}

func (h *nodeHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.swap(i, p)
		i = p
	}
}

func (h *nodeHeap) down(i int) {
	n := len(h.ids)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.less(l, small) {
			small = l
		}
		if r < n && h.less(r, small) {
			small = r
		}
		if small == i {
			return
		}
		h.swap(i, small)
		i = small
	}
}
