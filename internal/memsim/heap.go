package memsim

// nodeHeap is an indexed min-heap of node ids ordered by an int64 key, with
// O(log n) push/remove and O(1) peek. It backs the eviction-order queue of
// the simulator: for FiF the key is the negated schedule position of the
// node's parent, so the minimum-key element is the active data used furthest
// in the future.
type nodeHeap struct {
	ids  []int       // heap array of node ids
	keys []int64     // keys[k] is the key of ids[k]
	pos  map[int]int // node id -> index in ids
}

func (h *nodeHeap) init() {
	if h.pos == nil {
		h.pos = make(map[int]int)
	}
}

func (h *nodeHeap) len() int { return len(h.ids) }

// push inserts id with the given key. Pushing an id twice is a programming
// error and panics.
func (h *nodeHeap) push(id int, key int64) {
	h.init()
	if _, ok := h.pos[id]; ok {
		panic("memsim: node pushed twice")
	}
	h.ids = append(h.ids, id)
	h.keys = append(h.keys, key)
	h.pos[id] = len(h.ids) - 1
	h.up(len(h.ids) - 1)
}

// peek returns the id with the minimum key, or -1 if empty.
func (h *nodeHeap) peek() int {
	if len(h.ids) == 0 {
		return -1
	}
	return h.ids[0]
}

// remove deletes id from the heap. Removing an absent id panics.
func (h *nodeHeap) remove(id int) {
	i, ok := h.pos[id]
	if !ok {
		panic("memsim: removing node not in heap")
	}
	last := len(h.ids) - 1
	h.swap(i, last)
	h.ids = h.ids[:last]
	h.keys = h.keys[:last]
	delete(h.pos, id)
	if i < last {
		h.down(i)
		h.up(i)
	}
}

// largest returns the id whose resident value is maximal (ties broken by
// smaller id). It scans the whole heap: only the ablation policies use it.
func (h *nodeHeap) largest(resident []int64) int {
	best, bestVal := -1, int64(-1)
	for _, id := range h.ids {
		v := resident[id]
		if v > bestVal || (v == bestVal && id < best) {
			best, bestVal = id, v
		}
	}
	return best
}

func (h *nodeHeap) swap(i, j int) {
	h.ids[i], h.ids[j] = h.ids[j], h.ids[i]
	h.keys[i], h.keys[j] = h.keys[j], h.keys[i]
	h.pos[h.ids[i]] = i
	h.pos[h.ids[j]] = j
}

func (h *nodeHeap) less(i, j int) bool {
	if h.keys[i] != h.keys[j] {
		return h.keys[i] < h.keys[j]
	}
	return h.ids[i] < h.ids[j] // deterministic tie-break
}

func (h *nodeHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.swap(i, p)
		i = p
	}
}

func (h *nodeHeap) down(i int) {
	n := len(h.ids)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.less(l, small) {
			small = l
		}
		if r < n && h.less(r, small) {
			small = r
		}
		if small == i {
			return
		}
		h.swap(i, small)
		i = small
	}
}
