package memsim

import (
	"math/rand"
	"testing"

	"repro/internal/liu"
	"repro/internal/randtree"
)

// chunkedSource streams sched in chunks of at most k ids.
func chunkedSource(sched []int, k int) ScheduleSource {
	return func(yield func(seg []int) bool) bool {
		for i := 0; i < len(sched); i += k {
			end := i + k
			if end > len(sched) {
				end = len(sched)
			}
			if !yield(sched[i:end]) {
				return false
			}
		}
		return true
	}
}

// TestRunStreamMatchesRun pins the streaming simulator against the
// materialized path: identical I/O and peak for every policy across random
// instances, chunk sizes and memory bounds, on a reused (warm) simulator.
func TestRunStreamMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	sim := NewSimulator()
	for trial := 0; trial < 60; trial++ {
		tr := randtree.Synth(20+rng.Intn(400), rng)
		sched, peak := liu.MinMem(tr)
		lb := tr.MaxWBar()
		M := lb
		if peak > lb {
			M = lb + rng.Int63n(peak-lb+1)
		}
		for _, policy := range []EvictionPolicy{FiF, NiF, LargestFirst} {
			want, err := Run(tr, M, sched, policy)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			for _, k := range []int{1, 7, 64, len(sched)} {
				io, pk, err := sim.RunStream(tr, tr.Root(), M, chunkedSource(sched, k), policy)
				if err != nil {
					t.Fatalf("trial %d chunk=%d: %v", trial, k, err)
				}
				if io != want.IO || pk != want.Peak {
					t.Fatalf("trial %d chunk=%d policy=%v: stream io=%d peak=%d, run io=%d peak=%d",
						trial, k, policy, io, pk, want.IO, want.Peak)
				}
			}
		}
	}
}

// TestRunStreamRejectsBadStreams covers the failure modes: a source that
// stops early, a non-topological stream, and a second pass that diverges
// from the first.
func TestRunStreamRejectsBadStreams(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	tr := randtree.Synth(200, rng)
	sched, peak := liu.MinMem(tr)
	sim := NewSimulator()

	stopped := func(yield func(seg []int) bool) bool {
		yield(sched[:10])
		return false
	}
	if _, _, err := sim.RunStream(tr, tr.Root(), peak, stopped, FiF); err != ErrStreamStopped {
		t.Fatalf("early-stopping source: got %v, want ErrStreamStopped", err)
	}

	reversed := make([]int, len(sched))
	for i, v := range sched {
		reversed[len(sched)-1-i] = v
	}
	if _, _, err := sim.RunStream(tr, tr.Root(), peak, chunkedSource(reversed, 16), FiF); err == nil {
		t.Fatal("reversed schedule accepted")
	}

	pass := 0
	diverging := func(yield func(seg []int) bool) bool {
		pass++
		if pass == 1 {
			return chunkedSource(sched, 16)(yield)
		}
		return chunkedSource(reversed, 16)(yield)
	}
	if _, _, err := sim.RunStream(tr, tr.Root(), peak, diverging, FiF); err == nil {
		t.Fatal("diverging second pass accepted")
	}

	// The simulator must stay usable after every failure.
	want, err := Run(tr, peak, sched, FiF)
	if err != nil {
		t.Fatal(err)
	}
	io, pk, err := sim.RunStream(tr, tr.Root(), peak, chunkedSource(sched, 16), FiF)
	if err != nil {
		t.Fatal(err)
	}
	if io != want.IO || pk != want.Peak {
		t.Fatalf("post-failure stream io=%d peak=%d, want io=%d peak=%d", io, pk, want.IO, want.Peak)
	}
}
