package memsim

import (
	"strings"
	"testing"

	"repro/internal/tree"
)

func TestRenderTrace(t *testing.T) {
	tr := tree.Graft(1, tree.Chain(3, 5, 2, 6), tree.Chain(3, 5, 2, 6))
	sched := tree.Schedule{4, 3, 2, 1, 8, 7, 6, 5, 0}
	res, err := RunTraced(tr, 6, sched, FiF)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderTrace(res, 40)
	if !strings.Contains(out, "<-- I/O") {
		t.Errorf("no I/O marker:\n%s", out)
	}
	if !strings.Contains(out, "total I/O volume: 3") {
		t.Errorf("missing totals:\n%s", out)
	}
	if got := strings.Count(out, "\n"); got != tr.N()+2 {
		t.Errorf("expected %d lines, got %d", tr.N()+2, got)
	}
	// Untraced results render to nothing.
	plain, err := Run(tr, 6, sched, FiF)
	if err != nil {
		t.Fatal(err)
	}
	if RenderTrace(plain, 40) != "" {
		t.Error("untraced render not empty")
	}
	// Narrow width is clamped, not broken.
	if !strings.Contains(RenderTrace(res, 1), "total I/O volume") {
		t.Error("clamped render broken")
	}
}
