package memsim

import "fmt"

// TreeView is the read-only structural view of a task tree that the
// simulator needs. Both *tree.Tree and the mutable expanded trees of
// package expand satisfy it, so the same simulator serves the public Run
// API and the inner loop of the recursive-expansion engine without
// extracting subtree copies.
type TreeView interface {
	N() int
	Parent(i int) int
	Children(i int) []int
	Weight(i int) int64
}

// ChildRanker is an optional TreeView extension: ChildRanks()[i] is i's
// position in its parent's child list. When present, the eviction heap
// breaks key ties between siblings by child rank instead of node id, which
// reproduces exactly the behaviour of simulating an extracted copy of the
// subtree (extraction numbers siblings in child-list order). *tree.Tree
// deliberately does not implement it, keeping the historical id tie-break
// of the public Run API.
type ChildRanker interface {
	ChildRanks() []int32
}

// Simulator is a reusable out-of-core schedule evaluator. All per-run state
// (schedule positions, resident sizes, τ, the eviction heap, the optional
// trace) lives in preallocated scratch that is recycled across runs, so a
// warm simulator evaluates a schedule without allocating. A Simulator is
// not safe for concurrent use; the package-level Run creates a fresh one
// per call and remains safe.
//
// The zero value is ready to use.
type Simulator struct {
	h        nodeHeap
	pos      []int32  // schedule position per node, valid iff stamp matches
	stamp    []uint64 // generation stamp validating pos/resident/tau entries
	gen      uint64
	resident []int64
	tau      []int64
	trace    []StepTrace
}

// NewSimulator returns an empty simulator; scratch grows on first use.
func NewSimulator() *Simulator { return &Simulator{} }

// Tau returns the simulator's τ array, indexed by node id of the TreeView
// passed to the last Run. Only entries of nodes in that run's schedule are
// meaningful. The slice is scratch: it is valid until the next Run.
func (s *Simulator) Tau() []int64 { return s.tau }

// Positions returns the schedule-position array of the last Run, indexed by
// node id. Only entries of nodes in that run's schedule are meaningful, and
// the slice is valid until the next Run.
func (s *Simulator) Positions() []int32 { return s.pos }

// Run simulates sched — a topological schedule of the subtree rooted at
// root — on ts under memory bound M, deriving τ with the given eviction
// policy. Nodes in sched index ts directly; root's output is treated as the
// final result (never activated, never evicted). It returns the total I/O
// volume and the peak demand (the memory in use had no eviction been
// performed, maximized over steps). τ and positions stay readable through
// Tau and Positions until the next Run.
func (s *Simulator) Run(ts TreeView, root int, M int64, sched []int, policy EvictionPolicy) (io, peak int64, err error) {
	return s.run(ts, root, M, sched, policy, false)
}

// ensure grows the scratch to cover n nodes.
func (s *Simulator) ensure(n int) {
	if len(s.pos) >= n {
		return
	}
	if c := cap(s.pos); c >= n {
		s.pos = s.pos[:n]
		s.stamp = s.stamp[:n]
		s.resident = s.resident[:n]
		s.tau = s.tau[:n]
	} else {
		grow := n
		if d := 2 * c; d > grow {
			grow = d
		}
		pos := make([]int32, n, grow)
		copy(pos, s.pos)
		stamp := make([]uint64, n, grow)
		copy(stamp, s.stamp)
		resident := make([]int64, n, grow)
		copy(resident, s.resident)
		tau := make([]int64, n, grow)
		copy(tau, s.tau)
		s.pos, s.stamp, s.resident, s.tau = pos, stamp, resident, tau
	}
	s.h.grow(n)
}

func (s *Simulator) run(ts TreeView, root int, M int64, sched []int, policy EvictionPolicy, traced bool) (int64, int64, error) {
	n := ts.N()
	if len(sched) == 0 {
		return 0, 0, fmt.Errorf("memsim: empty schedule")
	}
	s.begin(ts, n)
	if err := s.index(n, sched, 0); err != nil {
		return 0, 0, err
	}
	if traced {
		s.trace = s.trace[:0]
	}
	var st simState
	if err := s.steps(&st, ts, root, M, sched, policy, traced); err != nil {
		return 0, 0, err
	}
	return st.io, st.peak, nil
}

// simState is the running state of one simulation, persisted across the
// segments of a streamed schedule.
type simState struct {
	residentSum int64
	io          int64
	peak        int64
	step        int
}

// begin resets the simulator for a fresh run over ts.
func (s *Simulator) begin(ts TreeView, n int) {
	s.ensure(n)
	s.gen++
	s.h.clear()
	if rk, ok := ts.(ChildRanker); ok {
		s.h.rank = rk.ChildRanks()
	} else {
		s.h.rank = nil
	}
}

// index is the position-assignment pass over one schedule segment starting
// at global position offset: range and permutation checks plus pos/τ/
// resident resets. Resetting resident and τ for exactly the scheduled
// nodes keeps the run correct after an earlier errored run left stale
// entries (stale entries of other nodes are never read: every node the
// simulation touches is validated to be in the schedule).
func (s *Simulator) index(n int, seg []int, offset int) error {
	gen := s.gen
	for k, v := range seg {
		if v < 0 || v >= n {
			return fmt.Errorf("memsim: schedule entry %d out of range [0, %d)", v, n)
		}
		if s.stamp[v] == gen {
			return fmt.Errorf("memsim: node %d scheduled twice", v)
		}
		s.stamp[v] = gen
		s.pos[v] = int32(offset + k)
		s.resident[v] = 0
		s.tau[v] = 0
	}
	return nil
}

// steps executes the simulation over one schedule segment, continuing from
// st. Every node must have been indexed first; a node arriving out of its
// indexed position (a second streaming pass that diverged from the first)
// is rejected.
func (s *Simulator) steps(st *simState, ts TreeView, root int, M int64, seg []int, policy EvictionPolicy, traced bool) error {
	n := ts.N()
	gen := s.gen
	residentSum, ioSum, peak := st.residentSum, st.io, st.peak
	for _, v := range seg {
		step := st.step
		st.step++
		if v < 0 || v >= n || s.stamp[v] != gen || s.pos[v] != int32(step) {
			return fmt.Errorf("memsim: node %d at step %d does not match the indexing pass", v, step)
		}
		if v != root {
			p := ts.Parent(v)
			if p < 0 || p >= n || s.stamp[p] != gen || s.pos[p] < int32(step) {
				return fmt.Errorf("memsim: node %d executed without its parent scheduled later", v)
			}
		}
		// The children of v leave the active set: their outputs are
		// consumed by v's execution (any evicted parts are read back,
		// which costs no additional writes).
		var cs int64
		for _, c := range ts.Children(v) {
			if s.stamp[c] != gen || s.pos[c] > int32(step) {
				return fmt.Errorf("memsim: node %d executed before its child %d", v, c)
			}
			residentSum -= s.resident[c]
			s.resident[c] = 0
			cs += ts.Weight(c)
		}
		need := cs // w̄(v) = max(w_v, Σ w_child)
		if w := ts.Weight(v); w > need {
			need = w
		}
		if need > M {
			return fmt.Errorf("memsim: node %d needs w̄=%d > M=%d", v, need, M)
		}
		before := residentSum + need
		if before > peak {
			peak = before
		}
		var evicted int64
		for residentSum+need > M {
			var victim int
			if policy == LargestFirst {
				victim = s.h.largest(s.resident)
			} else {
				victim = s.h.peek()
			}
			if victim < 0 {
				return fmt.Errorf("memsim: internal error: overflow with empty active set at step %d", step)
			}
			overflow := residentSum + need - M
			take := s.resident[victim]
			if take > overflow {
				take = overflow
			}
			s.resident[victim] -= take
			residentSum -= take
			s.tau[victim] += take
			ioSum += take
			evicted += take
			if s.resident[victim] == 0 {
				s.h.remove(victim)
			}
		}
		// v's output becomes active (unless v is the root, whose output
		// is the final result and is not consumed by any further task).
		if v != root {
			w := ts.Weight(v)
			s.resident[v] = w
			residentSum += w
			var key int64
			switch policy {
			case FiF:
				key = -int64(s.pos[ts.Parent(v)]) // max parent position first
			case NiF:
				key = int64(s.pos[ts.Parent(v)]) // min parent position first
			default:
				key = 0 // LargestFirst scans resident sizes dynamically
			}
			s.h.push(v, key)
		}
		if traced {
			after := residentSum
			if v == root {
				after = ts.Weight(v)
			}
			s.trace = append(s.trace, StepTrace{
				Step: step, Node: v, Before: before, Need: need,
				Evicted: evicted, After: after,
			})
		}
	}
	st.residentSum, st.io, st.peak = residentSum, ioSum, peak
	return nil
}
