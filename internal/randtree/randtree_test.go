package randtree

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/tree"
)

func TestRemySizesAndShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 10, 100, 3000} {
		tr := Remy(n, rng)
		if tr.N() != n {
			t.Fatalf("n=%d: got %d nodes", n, tr.N())
		}
		for i := 0; i < tr.N(); i++ {
			if tr.NumChildren(i) > 2 {
				t.Fatalf("n=%d: node %d has %d children", n, i, tr.NumChildren(i))
			}
			if tr.Weight(i) != 1 {
				t.Fatalf("n=%d: weight %d", n, tr.Weight(i))
			}
		}
	}
}

func TestCatalanTable(t *testing.T) {
	c := catalanTable(10)
	want := []int64{1, 1, 2, 5, 14, 42, 132, 429, 1430, 4862, 16796}
	for i, w := range want {
		if c[i].Int64() != w {
			t.Fatalf("C_%d = %v, want %d", i, c[i], w)
		}
	}
}

func TestCatalanSplitSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 5, 20} {
		tr := CatalanSplit(n, rng)
		if tr.N() != n {
			t.Fatalf("n=%d: got %d nodes", n, tr.N())
		}
		for i := 0; i < tr.N(); i++ {
			if tr.NumChildren(i) > 2 {
				t.Fatalf("node %d has %d children", i, tr.NumChildren(i))
			}
		}
	}
}

// shapeKey canonically serializes a binary tree shape, distinguishing a
// single left child from a single right child via the construction order:
// children lists preserve insertion order but not sides, so we recover
// sides from the generator's preorder numbering (first child created =
// left in CatalanSplit; Remy assigns preorder ids). For the distribution
// test we compare the *unordered* child-count shape plus depth profile,
// which already distinguishes all 5 of the 3-node Catalan shapes except
// the left/right chain pair; we therefore compare distributions over
// (depth sequence) classes and check counts are consistent between the
// two samplers rather than against exact Catalan weights.
func shapeKey(tr *tree.Tree) string {
	var rec func(v int) string
	rec = func(v int) string {
		cs := tr.Children(v)
		switch len(cs) {
		case 0:
			return "L"
		case 1:
			return "(" + rec(cs[0]) + ")"
		default:
			return "(" + rec(cs[0]) + "," + rec(cs[1]) + ")"
		}
	}
	return rec(tr.Root())
}

func TestRemyDistributionMatchesCatalanSplit(t *testing.T) {
	// Both samplers claim uniformity over Catalan(n) shapes. Compare
	// empirical distributions of shape classes for n=4 (14 shapes; some
	// classes merge under shapeKey since sides are not tracked, which
	// is fine as both samplers are reduced identically).
	const n = 4
	const samples = 20000
	count := func(gen func(int, *rand.Rand) *tree.Tree, seed int64) map[string]int {
		rng := rand.New(rand.NewSource(seed))
		m := map[string]int{}
		for i := 0; i < samples; i++ {
			m[shapeKey(gen(n, rng))]++
		}
		return m
	}
	a := count(Remy, 11)
	b := count(CatalanSplit, 13)
	if len(a) != len(b) {
		t.Fatalf("class counts differ: %d vs %d (%v vs %v)", len(a), len(b), a, b)
	}
	for k, ca := range a {
		cb, ok := b[k]
		if !ok {
			t.Fatalf("class %s missing from CatalanSplit", k)
		}
		ra := float64(ca) / samples
		rb := float64(cb) / samples
		if diff := ra - rb; diff > 0.02 || diff < -0.02 {
			t.Errorf("class %s: Remy %.3f vs CatalanSplit %.3f", k, ra, rb)
		}
	}
}

func TestAssignWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := Remy(200, rng)
	wt := AssignWeights(tr, 1, 100, rng)
	seen := map[int64]bool{}
	for i := 0; i < wt.N(); i++ {
		w := wt.Weight(i)
		if w < 1 || w > 100 {
			t.Fatalf("weight %d out of range", w)
		}
		seen[w] = true
	}
	if len(seen) < 50 {
		t.Errorf("only %d distinct weights in 200 draws", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Error("bad range should panic")
		}
	}()
	AssignWeights(tr, 5, 4, rng)
}

func TestSynthDeterministicPerSeed(t *testing.T) {
	a := Synth(50, rand.New(rand.NewSource(7)))
	b := Synth(50, rand.New(rand.NewSource(7)))
	if fmt.Sprint(a.Parents()) != fmt.Sprint(b.Parents()) || fmt.Sprint(a.Weights()) != fmt.Sprint(b.Weights()) {
		t.Fatal("same seed produced different trees")
	}
	c := Synth(50, rand.New(rand.NewSource(8)))
	if fmt.Sprint(a.Parents()) == fmt.Sprint(c.Parents()) && fmt.Sprint(a.Weights()) == fmt.Sprint(c.Weights()) {
		t.Fatal("different seeds produced identical trees")
	}
}

func TestGeneratorPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, f := range []func(){
		func() { Remy(0, rng) },
		func() { CatalanSplit(0, rng) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("n=0 should panic")
				}
			}()
			f()
		}()
	}
}

// TestGeneratorsDeterministicPerSeed pins the reproducibility contract the
// certification harness depends on: every generator is a pure function of
// (n, seed), so a failing fuzz input or a shrunk regression file can be
// replayed bit-for-bit.
func TestGeneratorsDeterministicPerSeed(t *testing.T) {
	gens := map[string]func(int, *rand.Rand) *tree.Tree{
		"Remy":         Remy,
		"CatalanSplit": CatalanSplit,
		"Recursive":    Recursive,
		"Synth":        Synth,
	}
	for name, gen := range gens {
		a := gen(40, rand.New(rand.NewSource(17)))
		b := gen(40, rand.New(rand.NewSource(17)))
		if fmt.Sprint(a.Parents()) != fmt.Sprint(b.Parents()) || fmt.Sprint(a.Weights()) != fmt.Sprint(b.Weights()) {
			t.Errorf("%s: same seed produced different trees", name)
		}
		c := gen(40, rand.New(rand.NewSource(18)))
		if fmt.Sprint(a.Parents()) == fmt.Sprint(c.Parents()) {
			t.Errorf("%s: different seeds produced identical shapes", name)
		}
	}
}

// TestGeneratorsPostorderValid checks that every generated tree admits its
// natural postorder as a valid topological schedule — the structural
// precondition for feeding instances to the simulators and the brute
// oracle without a repair pass.
func TestGeneratorsPostorderValid(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(40)
		for name, tr := range map[string]*tree.Tree{
			"Remy":      Remy(n, rng),
			"Recursive": Recursive(n, rng),
			"Synth":     Synth(n, rng),
		} {
			po := tr.NaturalPostorder()
			if err := tree.Validate(tr, po); err != nil {
				t.Fatalf("%s n=%d: natural postorder invalid: %v", name, n, err)
			}
			if !tree.IsPostorder(tr, po) {
				t.Fatalf("%s n=%d: natural postorder not a postorder", name, n)
			}
		}
	}
}

// TestShapeFamilyCoverage guards the breadth of the certified space: over
// a modest seed sweep the samplers must actually produce the extreme
// shape families — chains, balanced trees, and (for Recursive) stars — so
// a generator regression cannot silently narrow certification to one
// corner of shape space.
func TestShapeFamilyCoverage(t *testing.T) {
	const n = 7
	const samples = 4000
	rng := rand.New(rand.NewSource(31))
	depths := map[int]int{}
	for i := 0; i < samples; i++ {
		depths[Remy(n, rng).Depth()]++
	}
	// A 7-node binary tree has depth between 2 (balanced) and 6 (chain).
	for d := 2; d <= 6; d++ {
		if depths[d] == 0 {
			t.Errorf("Remy(n=%d): no tree of depth %d in %d samples (histogram %v)", n, d, samples, depths)
		}
	}
	if len(depths) != 5 {
		t.Errorf("Remy(n=%d): depth histogram has impossible entries: %v", n, depths)
	}

	starSeen, chainSeen := false, false
	for i := 0; i < samples; i++ {
		tr := Recursive(5, rng)
		switch tr.Depth() {
		case 1:
			starSeen = true // every node hangs off the root
		case 4:
			chainSeen = true
		}
	}
	if !starSeen || !chainSeen {
		t.Errorf("Recursive(n=5): star=%v chain=%v over %d samples", starSeen, chainSeen, samples)
	}
}
