// Package randtree generates the SYNTH dataset of Section 6.1: binary
// trees drawn uniformly at random among all binary trees with a given
// number of nodes (counted by the Catalan numbers), with node weights drawn
// uniformly from an integer interval.
//
// Two independent samplers are provided. Remy is Rémy's O(n) algorithm: it
// grows a uniform full binary tree with n internal nodes by repeatedly
// grafting a leaf onto a uniformly chosen node side, then deletes the
// leaves, leaving a uniform (ordered) binary tree with n nodes — the same
// distribution as the Catalan-number recursive method the paper cites from
// Mäkinen's survey [15]. CatalanSplit is the direct recursive method using
// exact big-integer Catalan numbers; it is O(n²) big-integer work and
// serves as a distribution cross-check for Remy in the tests.
package randtree

import (
	"math/big"
	"math/rand"

	"repro/internal/tree"
)

// Remy samples a uniform ordered binary tree with n nodes (each node has
// 0, 1-left, 1-right or 2 children) using Rémy's algorithm, with all
// weights set to 1. Use AssignWeights to draw weights afterwards.
func Remy(n int, rng *rand.Rand) *tree.Tree {
	if n < 1 {
		panic("randtree: need n >= 1")
	}
	// Full binary tree over 2n+1 slots. child[v][0/1] = left/right child
	// or -1. Slot 0 starts as the root leaf.
	child := make([][2]int, 1, 2*n+1)
	child[0] = [2]int{-1, -1}
	parent := make([]int, 1, 2*n+1)
	parent[0] = -1
	root := 0
	for k := 0; k < n; k++ {
		// Pick a uniform existing node v and a uniform side s: the new
		// internal node u replaces v, keeping v on side s and a fresh
		// leaf l on the other side.
		v := rng.Intn(len(child))
		s := rng.Intn(2)
		u := len(child)
		child = append(child, [2]int{-1, -1})
		parent = append(parent, -1)
		l := len(child)
		child = append(child, [2]int{-1, -1})
		parent = append(parent, u)
		p := parent[v]
		if p == -1 {
			root = u
		} else {
			if child[p][0] == v {
				child[p][0] = u
			} else {
				child[p][1] = u
			}
		}
		parent[u] = p
		child[u][s] = v
		parent[v] = u
		child[u][1-s] = l
	}
	// Strip the leaves: internal nodes of the full tree (ids with a
	// child) become the binary tree's nodes.
	isInternal := make([]bool, len(child))
	cnt := 0
	for v := range child {
		if child[v][0] != -1 {
			isInternal[v] = true
			cnt++
		}
	}
	if cnt != n {
		panic("randtree: internal node count mismatch")
	}
	id := make([]int, len(child))
	for v := range id {
		id[v] = -1
	}
	next := 0
	// Assign ids in a preorder walk from the root for determinism.
	var stack []int
	if isInternal[root] {
		stack = append(stack, root)
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		id[v] = next
		next++
		for s := 1; s >= 0; s-- {
			if c := child[v][s]; c != -1 && isInternal[c] {
				stack = append(stack, c)
			}
		}
	}
	par := make([]int, n)
	w := make([]int64, n)
	for v := range child {
		if !isInternal[v] {
			continue
		}
		w[id[v]] = 1
		p := parent[v]
		if p == -1 {
			par[id[v]] = tree.None
		} else {
			par[id[v]] = id[p]
		}
	}
	if n == 1 {
		// The single internal node may not exist when n==1 handled above
		// by the loop; nothing special needed, but guard the root case.
		par[0] = tree.None
	}
	return tree.MustNew(par, w)
}

// catalanTable returns [C_0, ..., C_n].
func catalanTable(n int) []*big.Int {
	c := make([]*big.Int, n+1)
	c[0] = big.NewInt(1)
	for i := 1; i <= n; i++ {
		// C_i = Σ_{k=0}^{i-1} C_k · C_{i-1-k}
		s := new(big.Int)
		tmp := new(big.Int)
		for k := 0; k < i; k++ {
			s.Add(s, tmp.Mul(c[k], c[i-1-k]))
			tmp = new(big.Int)
		}
		c[i] = s
	}
	return c
}

// CatalanSplit samples a uniform ordered binary tree with n nodes by the
// exact recursive Catalan-splitting method. It is quadratic in big-integer
// operations; use Remy for large n.
func CatalanSplit(n int, rng *rand.Rand) *tree.Tree {
	if n < 1 {
		panic("randtree: need n >= 1")
	}
	cat := catalanTable(n)
	par := make([]int, 0, n)
	w := make([]int64, 0, n)
	var build func(parent, size int)
	build = func(parent, size int) {
		if size == 0 {
			return
		}
		self := len(par)
		par = append(par, parent)
		w = append(w, 1)
		// Choose left-subtree size k with probability
		// C_k · C_{size-1-k} / C_size.
		r := new(big.Int).Rand(rng, cat[size])
		k := 0
		acc := new(big.Int)
		tmp := new(big.Int)
		for ; k < size-1; k++ {
			acc.Add(acc, tmp.Mul(cat[k], cat[size-1-k]))
			if r.Cmp(acc) < 0 {
				break
			}
			tmp = new(big.Int)
		}
		build(self, k)
		build(self, size-1-k)
	}
	build(tree.None, n)
	return tree.MustNew(par, w)
}

// Recursive samples a uniform random recursive tree with n nodes and all
// weights 1: node 0 is the root and node i attaches to a parent drawn
// uniformly from the i nodes created before it. Unlike the binary Remy
// shapes, arity is unbounded — stars, brooms and deep mixed fan-outs all
// occur — which is what the certification harness wants from a second,
// structurally different random family. Use AssignWeights to draw weights
// afterwards.
func Recursive(n int, rng *rand.Rand) *tree.Tree {
	if n < 1 {
		panic("randtree: need n >= 1")
	}
	par := make([]int, n)
	w := make([]int64, n)
	par[0] = tree.None
	w[0] = 1
	for i := 1; i < n; i++ {
		par[i] = rng.Intn(i)
		w[i] = 1
	}
	return tree.MustNew(par, w)
}

// AssignWeights returns a copy of t whose weights are drawn independently
// and uniformly from [lo, hi] (inclusive). The paper's SYNTH dataset uses
// [1, 100].
func AssignWeights(t *tree.Tree, lo, hi int64, rng *rand.Rand) *tree.Tree {
	if lo < 0 || hi < lo {
		panic("randtree: bad weight range")
	}
	w := make([]int64, t.N())
	for i := range w {
		w[i] = lo + rng.Int63n(hi-lo+1)
	}
	nt, err := t.WithWeights(w)
	if err != nil {
		panic(err)
	}
	return nt
}

// Synth generates one SYNTH instance: a uniform binary tree with n nodes
// and weights uniform in [1, 100], as in Section 6.1.
func Synth(n int, rng *rand.Rand) *tree.Tree {
	return AssignWeights(Remy(n, rng), 1, 100, rng)
}
