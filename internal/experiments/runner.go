package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/profile"
)

// RunResult collects one figure-style study: every algorithm evaluated on
// every instance under one memory-bound rule.
type RunResult struct {
	Bound      core.Bound
	Algorithms []core.Algorithm
	Instances  []*core.Instance
	// IO[a][i] is the I/O volume of algorithm a on instance i.
	IO [][]int64
	// M[i] is the memory bound used for instance i.
	M []int64
}

// Run evaluates algs on every instance under the bound rule, in parallel
// across instances (the evaluation is embarrassingly parallel; a worker
// pool sized to GOMAXPROCS keeps the dataset runs tractable at paper
// scale), with unbounded profile caches.
func Run(instances []*core.Instance, algs []core.Algorithm, bound core.Bound, workers int) (*RunResult, error) {
	return RunBudgetedCtx(nil, instances, algs, bound, workers, 0)
}

// RunCtx is Run with cooperative cancellation: the producer stops handing
// out instances once ctx is done, every worker's Runner checks it per
// algorithm call, and the first cancellation surfaces as ctx.Err(). A nil
// ctx disables cancellation.
func RunCtx(ctx context.Context, instances []*core.Instance, algs []core.Algorithm, bound core.Bound, workers int) (*RunResult, error) {
	return RunBudgetedCtx(ctx, instances, algs, bound, workers, 0)
}

// RunBudgeted is Run with a resident-byte budget applied to every
// expansion engine's profile cache (core.Runner.CacheBudget; 0 means
// unlimited). I/O volumes are identical for every budget — the budget only
// caps the evaluation's memory footprint.
func RunBudgeted(instances []*core.Instance, algs []core.Algorithm, bound core.Bound, workers int, cacheBudget int64) (*RunResult, error) {
	return RunBudgetedCtx(nil, instances, algs, bound, workers, cacheBudget)
}

// RunBudgetedCtx combines the cache budget of RunBudgeted with the
// cancellation of RunCtx — the full-featured form the others delegate to.
func RunBudgetedCtx(ctx context.Context, instances []*core.Instance, algs []core.Algorithm, bound core.Bound, workers int, cacheBudget int64) (*RunResult, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	res := &RunResult{
		Bound:      bound,
		Algorithms: algs,
		Instances:  instances,
		IO:         make([][]int64, len(algs)),
		M:          make([]int64, len(instances)),
	}
	for a := range algs {
		res.IO[a] = make([]int64, len(instances))
	}
	type job struct{ i int }
	jobs := make(chan job)
	errs := make(chan error, workers)
	// done is closed on the first failure so that the producer stops
	// handing out work: with an unbuffered jobs channel, a bare send
	// would deadlock once every worker has returned early on an error.
	done := make(chan struct{})
	var closeDone sync.Once
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One Runner per worker: the expansion engine's scratch
			// (simulator, schedule buffers) is reused across every
			// instance this worker evaluates instead of being
			// re-allocated per instance. The inner engine stays
			// sequential (Workers: 1) — the instance-level pool is
			// already the parallelism here, and nested sharding would
			// only add scheduling overhead.
			rn := core.NewRunner(1)
			rn.CacheBudget = cacheBudget
			rn.Ctx = ctx
			for j := range jobs {
				in := instances[j.i]
				M := in.M(bound)
				res.M[j.i] = M
				for a, alg := range algs {
					r, err := rn.Run(alg, in.Tree, M)
					if err != nil {
						select {
						case errs <- fmt.Errorf("%s on %s: %w", alg, in.Name, err):
						default:
						}
						closeDone.Do(func() { close(done) })
						return
					}
					res.IO[a][j.i] = r.IO
				}
			}
		}()
	}
	// A nil Done channel (nil ctx, context.Background()) never selects:
	// the produce loop degenerates to the uncancellable form for free.
	var ctxDone <-chan struct{}
	if ctx != nil {
		ctxDone = ctx.Done()
	}
produce:
	for i := range instances {
		select {
		case jobs <- job{i}:
		case <-done:
			break produce
		case <-ctxDone:
			break produce
		}
	}
	close(jobs)
	wg.Wait()
	select {
	case err := <-errs:
		return nil, err
	default:
	}
	if ctx != nil && ctx.Err() != nil {
		return nil, ctx.Err()
	}
	return res, nil
}

// PerformanceTable converts a run into the paper's performance metric
// (M + IO)/M per algorithm and instance.
func (r *RunResult) PerformanceTable() *profile.Table {
	methods := make([]string, len(r.Algorithms))
	for a, alg := range r.Algorithms {
		methods[a] = string(alg)
	}
	names := make([]string, len(r.Instances))
	for i, in := range r.Instances {
		names[i] = in.Name
	}
	tab := profile.NewTable(methods, names)
	for a := range r.Algorithms {
		for i := range r.Instances {
			tab.Set(a, i, float64(r.M[i]+r.IO[a][i])/float64(r.M[i]))
		}
	}
	return tab
}

// Profiles computes the Dolan–Moré performance profiles of the run.
func (r *RunResult) Profiles(grid []float64) ([]profile.Profile, error) {
	return profile.Compute(r.PerformanceTable(), grid)
}

// DifferingInstances returns the restriction of the run to instances on
// which not all algorithms achieved the same I/O volume — the right-hand
// plots of Figures 5, 9 and 11.
func (r *RunResult) DifferingInstances() *RunResult {
	keep := make([]int, 0, len(r.Instances))
	for i := range r.Instances {
		same := true
		for a := 1; a < len(r.Algorithms); a++ {
			if r.IO[a][i] != r.IO[0][i] {
				same = false
				break
			}
		}
		if !same {
			keep = append(keep, i)
		}
	}
	out := &RunResult{
		Bound:      r.Bound,
		Algorithms: r.Algorithms,
		Instances:  make([]*core.Instance, len(keep)),
		IO:         make([][]int64, len(r.Algorithms)),
		M:          make([]int64, len(keep)),
	}
	for a := range r.Algorithms {
		out.IO[a] = make([]int64, len(keep))
	}
	for k, i := range keep {
		out.Instances[k] = r.Instances[i]
		out.M[k] = r.M[i]
		for a := range r.Algorithms {
			out.IO[a][k] = r.IO[a][i]
		}
	}
	return out
}

// WinLossCounts returns, for each pair (a, b) of algorithm indices, the
// number of instances where a strictly beats b.
func (r *RunResult) WinLossCounts() [][]int {
	na := len(r.Algorithms)
	wins := make([][]int, na)
	for a := range wins {
		wins[a] = make([]int, na)
	}
	for i := range r.Instances {
		for a := 0; a < na; a++ {
			for b := 0; b < na; b++ {
				if r.IO[a][i] < r.IO[b][i] {
					wins[a][b]++
				}
			}
		}
	}
	return wins
}
