package experiments

import (
	"fmt"
	"math/rand"
	"runtime"

	"repro/internal/core"
	"repro/internal/liu"
	"repro/internal/randtree"
	"repro/internal/sparse"
	"repro/internal/tree"
)

// SynthConfig parameterizes the SYNTH dataset of Section 6.1. The paper
// uses 330 uniform binary trees of 3000 nodes with weights in [1, 100].
type SynthConfig struct {
	Count int
	Nodes int
	Seed  int64
}

// PaperSynth is the paper-scale configuration.
var PaperSynth = SynthConfig{Count: 330, Nodes: 3000, Seed: 9025}

// SmallSynth is a reduced configuration for quick runs and benchmarks.
var SmallSynth = SynthConfig{Count: 40, Nodes: 300, Seed: 9025}

// Synth generates the SYNTH dataset: instances whose peak exceeds LB (all
// random binary trees of this size do in practice, but the filter keeps the
// invariant explicit).
func Synth(cfg SynthConfig) []*core.Instance {
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]*core.Instance, 0, cfg.Count)
	for i := 0; len(out) < cfg.Count; i++ {
		t := randtree.Synth(cfg.Nodes, rng)
		in := core.NewInstance(fmt.Sprintf("synth-%04d", i), t)
		if in.NeedsIO() {
			out = append(out, in)
		}
	}
	return out
}

// DeepChain builds the adversarial regime of the expansion engine: a bushy
// I/O-bound SYNTH subtree of `bushy` nodes hanging at the bottom of a unit
// spine of `spine` nodes. Subtree peaks are monotone up the tree, so every
// one of the spine prefixes inherits the bottom subtree's peak: under any
// memory bound between LB and Peak, the recursion of RECEXPAND visits all
// spine nodes — which costs O(spine²) on an engine that reschedules the
// whole subtree per visit and O(spine) on the incremental one. Node 0 is
// the root; the spine is 0 ← 1 ← ... ← spine−1 ← bottom root.
func DeepChain(spine, bushy int, seed int64) (*core.Instance, error) {
	if spine < 1 || bushy < 1 {
		return nil, fmt.Errorf("experiments: DeepChain needs spine ≥ 1 and bushy ≥ 1, got %d and %d", spine, bushy)
	}
	rng := rand.New(rand.NewSource(seed))
	var bottom *tree.Tree
	// Retry until the bottom subtree is I/O-bound (Peak > LB), which
	// random binary trees of realistic sizes essentially always are;
	// trees of a handful of nodes may never be, so fail loudly rather
	// than spin.
	for attempt := 0; ; attempt++ {
		if attempt == 1000 {
			return nil, fmt.Errorf("experiments: no I/O-bound synth tree of %d nodes in %d draws", bushy, attempt)
		}
		bottom = randtree.Synth(bushy, rng)
		if in := core.NewInstance("", bottom); in.NeedsIO() {
			break
		}
	}
	n := spine + bottom.N()
	parent := make([]int, n)
	weight := make([]int64, n)
	parent[0] = tree.None
	weight[0] = 1
	for i := 1; i < spine; i++ {
		parent[i] = i - 1
		weight[i] = 1
	}
	bp := bottom.Parents()
	for i, p := range bp {
		if p == tree.None {
			parent[spine+i] = spine - 1
		} else {
			parent[spine+i] = spine + p
		}
		weight[spine+i] = bottom.Weight(i)
	}
	t := tree.MustNew(parent, weight)
	return core.NewInstance(fmt.Sprintf("deepchain-%d-%d", spine, bushy), t), nil
}

// Forest builds the maximally parallel regime of the sharded expansion
// driver: a weight-1 root over k copies of one I/O-bound SYNTH subtree of
// `bushy` nodes, each behind a weight-1 buffer node. Identical copies give
// every branch the same peak, so the mid memory bound overflows all k
// branches at once — k independent, equally sized expansion work units —
// while the buffer nodes keep the forest's peak driven by the subtree
// peaks rather than by the sum of the subtree outputs.
func Forest(k, bushy int, seed int64) (*core.Instance, error) {
	if k < 1 || bushy < 1 {
		return nil, fmt.Errorf("experiments: Forest needs k ≥ 1 and bushy ≥ 1, got %d and %d", k, bushy)
	}
	rng := rand.New(rand.NewSource(seed))
	var sub *tree.Tree
	for attempt := 0; ; attempt++ {
		if attempt == 1000 {
			return nil, fmt.Errorf("experiments: no I/O-bound synth tree of %d nodes in %d draws", bushy, attempt)
		}
		sub = randtree.Synth(bushy, rng)
		if in := core.NewInstance("", sub); in.NeedsIO() {
			break
		}
	}
	parent := []int{tree.None}
	weight := []int64{1}
	for i := 0; i < k; i++ {
		buf := len(parent)
		parent = append(parent, 0)
		weight = append(weight, 1)
		off := len(parent)
		for v := 0; v < sub.N(); v++ {
			p := sub.Parent(v)
			if p == tree.None {
				parent = append(parent, buf)
			} else {
				parent = append(parent, p+off)
			}
			weight = append(weight, sub.Weight(v))
		}
	}
	t := tree.MustNew(parent, weight)
	return core.NewInstance(fmt.Sprintf("forest-%d-%d", k, bushy), t), nil
}

// Huge builds the out-of-core-scale regime of the budgeted profile cache:
// roughly n nodes as a forest of identical hill–valley staircase branches
// behind weight-1 buffer nodes. Each branch is a spine whose outputs grow
// toward its top while a leaf of shrinking weight hangs at every step —
// the shape whose canonical profiles retain one segment per spine level
// (Σ segments = Θ(L²) per branch of spine length L), i.e. the
// caterpillar-profile regime DESIGN.md §5 names as the cache's worst
// case. Profile segments, not rope pages, dominate the footprint here, so
// a resident-byte budget has real leverage: the unbounded warm holds tens
// of segments per node while the floor (schedule ropes plus the live
// merge frontier) is an order of magnitude smaller.
//
// Construction replicates one branch O(n); the instance analysis uses a
// memory-budgeted, parallel-warmed liu.ProfileCache instead of
// core.NewInstance's transient MinMem pass, so building a 10⁷-node
// instance does not itself blow the memory the budget is there to bound.
func Huge(n int, seed int64) *core.Instance {
	const spine = 250 // branch = 2·spine nodes; Σ segments ≈ spine²/2
	_ = seed          // the staircase is deterministic; seed kept for API symmetry
	k := n / (2*spine + 1)
	if k < 1 {
		k = 1
	}
	total := 1 + k*(2*spine+1)
	parent := make([]int, 1, total)
	weight := make([]int64, 1, total)
	parent[0] = tree.None
	weight[0] = 1
	for i := 0; i < k; i++ {
		buf := len(parent)
		parent = append(parent, 0)
		weight = append(weight, 1)
		// Spine j = spine..1 top-down: spine node weight j·C (outputs grow
		// toward the branch top, so earlier valleys stay below later ones
		// and segments survive canonicalization), leaf weight W − j·D
		// (peaks shrink toward the bottom, keeping hills decreasing).
		const C, W, D = 2, 5000, 10
		prev := buf
		for j := spine; j >= 1; j-- {
			id := len(parent)
			parent = append(parent, prev)
			weight = append(weight, int64(j)*C)
			lw := int64(W) - int64(j)*D
			if lw < 1 {
				lw = 1
			}
			parent = append(parent, id)
			weight = append(weight, lw)
			prev = id
		}
	}
	t := tree.MustNew(parent, weight)
	// Budgeted, sharded warm for the peak: the analysis of the huge
	// instance is itself a bounded-memory workload.
	c := liu.NewProfileCacheOpts(t, liu.CacheOptions{MaxResidentBytes: 64 << 20})
	c.EnsureParallel(t.Root(), runtime.GOMAXPROCS(0))
	return &core.Instance{
		Name: fmt.Sprintf("huge-%d x%d", 2*spine, k),
		Tree: t,
		LB:   t.MaxWBar(),
		Peak: c.Peak(t.Root()),
	}
}

// TreesConfig parameterizes the TREES dataset: elimination task trees of
// synthetic sparse matrices standing in for the University of Florida
// collection (see DESIGN.md). The generator enumerates matrix families —
// square and rectangular 2-D grids under natural and nested-dissection
// orderings with several separator leaf sizes, 3-D grids, random symmetric
// patterns of varying size/density/seed, and banded matrices — and keeps
// the instances whose optimal peak exceeds LB (the paper similarly keeps
// 133 of its 329 trees).
type TreesConfig struct {
	// Scale multiplies the linear grid dimensions and random sizes.
	Scale int
	Seed  int64
	// Relax is the supernode amalgamation relaxation (0 = fundamental).
	Relax int64
	// Variants multiplies the number of randomized instances per family
	// (default 1; PaperTrees uses 6).
	Variants int
}

// PaperTrees approximates the paper-scale dataset (hundreds of candidate
// matrices before the Peak > LB filter).
var PaperTrees = TreesConfig{Scale: 2, Seed: 9025, Variants: 6}

// SmallTrees is a reduced configuration for quick runs and benchmarks.
var SmallTrees = TreesConfig{Scale: 1, Seed: 9025, Variants: 1}

// Trees generates the TREES dataset and keeps only instances that need
// I/O for some bound (Peak > LB), as Section 6.1 does. Generator and
// ordering failures are returned with the failing family named.
func Trees(cfg TreesConfig) ([]*core.Instance, error) {
	s := cfg.Scale
	if s < 1 {
		s = 1
	}
	variants := cfg.Variants
	if variants < 1 {
		variants = 1
	}
	type spec struct {
		name string
		pat  *sparse.Pattern
	}
	var specs []spec
	// addSpec wraps the fallible pattern builders: family construction
	// stops at the first failure, named after the failing instance.
	var buildErr error
	addSpec := func(name string, p *sparse.Pattern, err error) {
		if buildErr != nil {
			return
		}
		if err != nil {
			buildErr = fmt.Errorf("experiments: building %s: %w", name, err)
			return
		}
		specs = append(specs, spec{name, p})
	}
	// 2-D grids, natural ordering: long, skinny elimination trees.
	for _, g := range []int{8, 12, 16, 20, 24} {
		p, err := sparse.Grid2D(g*s, g*s)
		addSpec(fmt.Sprintf("grid2d-nat-%d", g*s), p, err)
	}
	// Rectangular and square 2-D grids under nested dissection with
	// several separator leaf sizes: bushy, well-balanced trees whose
	// subtree imbalance is what separates the heuristics.
	for _, g := range []struct{ nx, ny int }{
		{10, 10}, {12, 12}, {14, 14}, {16, 16}, {18, 18}, {20, 20},
		{22, 22}, {24, 24}, {26, 26}, {28, 28},
		{12, 30}, {8, 40}, {16, 24}, {30, 12}, {20, 36}, {10, 50},
		{14, 42}, {24, 32}, {18, 54},
	} {
		for _, leaf := range []int{4, 8, 16} {
			nx, ny := g.nx*s, g.ny*s
			name := fmt.Sprintf("grid2d-nd-%dx%d-l%d", nx, ny, leaf)
			p, err := sparse.Grid2D(nx, ny)
			if err != nil {
				addSpec(name, nil, err)
				continue
			}
			pp, err := p.Permute(sparse.NestedDissection2D(nx, ny, leaf))
			addSpec(name, pp, err)
		}
	}
	// Perturbed ND grids: regular stencils plus random long-range
	// couplings, the closest synthetic stand-in for irregular
	// application matrices; several seeds per configuration.
	for _, g := range []struct{ nx, ny int }{
		{12, 12}, {16, 16}, {20, 20}, {24, 24}, {16, 32}, {12, 44},
	} {
		for v := 0; v < variants; v++ {
			nx, ny := g.nx*s, g.ny*s
			name := fmt.Sprintf("grid2d-px-%dx%d-v%d", nx, ny, v)
			rng := rand.New(rand.NewSource(cfg.Seed + int64(1000*g.nx+10*g.ny+v)))
			base, err := sparse.Grid2D(nx, ny)
			if err != nil {
				addSpec(name, nil, err)
				continue
			}
			p := sparse.Perturb(base, nx*ny/10, rng)
			pp, err := p.Permute(sparse.NestedDissection2D(nx, ny, 8))
			addSpec(name, pp, err)
		}
	}
	// 3-D grids under nested dissection: heavy, fast-growing fronts.
	for _, g := range []struct{ nx, ny, nz int }{
		{6, 6, 6}, {8, 8, 8}, {10, 10, 10}, {6, 8, 12}, {4, 10, 16},
	} {
		nx, ny, nz := g.nx*s, g.ny*s, g.nz*s
		name := fmt.Sprintf("grid3d-nd-%dx%dx%d", nx, ny, nz)
		p, err := sparse.Grid3D(nx, ny, nz)
		if err != nil {
			addSpec(name, nil, err)
			continue
		}
		pp, err := p.Permute(sparse.NestedDissection3D(nx, ny, nz, 8))
		addSpec(name, pp, err)
	}
	// 3-D grids: heavier fronts, wider weight spreads.
	for _, g := range []int{4, 5, 6, 7} {
		p, err := sparse.Grid3D(g*s, g*s, g*s)
		addSpec(fmt.Sprintf("grid3d-nat-%d", g*s), p, err)
	}
	// Random symmetric patterns: irregular trees; several seeds per
	// size/density, both in natural and minimum-degree ordering (the
	// latter is what a real solver would use and yields bushier trees).
	for i, n := range []int{150, 300, 500, 800, 1200} {
		for _, deg := range []int{3, 4, 6} {
			for v := 0; v < variants; v++ {
				seed := cfg.Seed + int64(10000*v+100*i+deg)
				name := fmt.Sprintf("rand-%d-d%d-v%d", n*s, deg, v)
				p, err := sparse.RandomSymmetric(n*s, deg, rand.New(rand.NewSource(seed)))
				addSpec(name, p, err)
				if err != nil {
					continue
				}
				// Minimum degree is the expensive part: cap its use.
				if v < 2 && n*s <= 1000 {
					pm, err := p.Permute(sparse.MinimumDegree(p))
					addSpec(fmt.Sprintf("rand-md-%d-d%d-v%d", n*s, deg, v), pm, err)
				}
			}
		}
	}
	// Banded matrices: near-chains after amalgamation.
	for _, n := range []int{200, 400} {
		p, err := sparse.Band(n*s, 4)
		addSpec(fmt.Sprintf("band-%d", n*s), p, err)
	}
	if buildErr != nil {
		return nil, buildErr
	}
	var out []*core.Instance
	for _, sp := range specs {
		t, err := sparse.EliminationTaskTree(sp.pat, cfg.Relax)
		if err != nil {
			return nil, fmt.Errorf("experiments: building %s: %w", sp.name, err)
		}
		in := core.NewInstance(sp.name, t)
		if in.NeedsIO() {
			out = append(out, in)
		}
	}
	return out, nil
}
