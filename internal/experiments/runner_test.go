package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/tree"
)

func smallDataset(t *testing.T) []*core.Instance {
	t.Helper()
	cfg := SynthConfig{Count: 8, Nodes: 120, Seed: 7}
	ins := Synth(cfg)
	if len(ins) != 8 {
		t.Fatalf("got %d instances", len(ins))
	}
	return ins
}

func TestSynthDataset(t *testing.T) {
	ins := smallDataset(t)
	for _, in := range ins {
		if !in.NeedsIO() {
			t.Fatalf("%s: Peak=%d LB=%d", in.Name, in.Peak, in.LB)
		}
		if in.Tree.N() != 120 {
			t.Fatalf("%s: %d nodes", in.Name, in.Tree.N())
		}
		for i := 0; i < in.Tree.N(); i++ {
			if w := in.Tree.Weight(i); w < 1 || w > 100 {
				t.Fatalf("%s: weight %d", in.Name, w)
			}
		}
	}
	// Determinism.
	again := Synth(SynthConfig{Count: 8, Nodes: 120, Seed: 7})
	for i := range ins {
		if ins[i].Peak != again[i].Peak || ins[i].LB != again[i].LB {
			t.Fatal("dataset not deterministic")
		}
	}
}

func TestTreesDataset(t *testing.T) {
	ins, err := Trees(SmallTrees)
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) < 5 {
		t.Fatalf("only %d TREES instances need I/O", len(ins))
	}
	seen := map[string]bool{}
	for _, in := range ins {
		if seen[in.Name] {
			t.Fatalf("duplicate instance %s", in.Name)
		}
		seen[in.Name] = true
		if !in.NeedsIO() {
			t.Fatalf("%s kept despite Peak==LB", in.Name)
		}
	}
}

func TestRunAndProfiles(t *testing.T) {
	ins := smallDataset(t)
	algs := core.FastAlgorithms
	run, err := Run(ins, algs, core.BoundMid, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.IO) != len(algs) || len(run.IO[0]) != len(ins) {
		t.Fatal("result shape")
	}
	for i, in := range ins {
		M := run.M[i]
		if M != in.M(core.BoundMid) {
			t.Fatalf("M mismatch at %d", i)
		}
		lbIO := core.IOLowerBound(in.Tree, M)
		for a := range algs {
			if run.IO[a][i] < lbIO {
				t.Fatalf("%s on %s: IO %d below provable lower bound %d",
					algs[a], in.Name, run.IO[a][i], lbIO)
			}
		}
	}
	profs, err := run.Profiles(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range profs {
		if p.Fraction[len(p.Fraction)-1] != 1 {
			t.Fatalf("%s profile does not reach 1", p.Method)
		}
	}
	// Win/loss counts are antisymmetric-ish: wins[a][b] + wins[b][a]
	// ≤ instances, and diagonal is zero.
	wins := run.WinLossCounts()
	for a := range algs {
		if wins[a][a] != 0 {
			t.Fatal("diagonal wins")
		}
		for b := range algs {
			if wins[a][b]+wins[b][a] > len(ins) {
				t.Fatal("win counts exceed instance count")
			}
		}
	}
}

func TestDifferingInstances(t *testing.T) {
	ins := smallDataset(t)
	run, err := Run(ins, core.FastAlgorithms, core.BoundMid, 2)
	if err != nil {
		t.Fatal(err)
	}
	diff := run.DifferingInstances()
	if len(diff.Instances) > len(run.Instances) {
		t.Fatal("restriction grew")
	}
	for i := range diff.Instances {
		same := true
		for a := 1; a < len(diff.Algorithms); a++ {
			if diff.IO[a][i] != diff.IO[0][i] {
				same = false
			}
		}
		if same {
			t.Fatal("kept an instance where all algorithms tie")
		}
	}
}

// TestRunSurvivesFailingInstances reproduces the worker-pool deadlock: a
// dataset made entirely of infeasible instances (precomputed LB below the
// true max w̄, so every core.Run errors with M below LB) used to kill all
// workers while the producer still blocked on the unbuffered jobs channel.
// The fixed pool must return the first error promptly.
func TestRunSurvivesFailingInstances(t *testing.T) {
	star := tree.Star(1, 50, 50) // true LB = 100
	bad := make([]*core.Instance, 64)
	for i := range bad {
		// LB deliberately understated: M(BoundLB) = 10 < max w̄ = 100.
		bad[i] = &core.Instance{Name: "bad", Tree: star, LB: 10, Peak: 101}
	}
	type outcome struct {
		run *RunResult
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		run, err := Run(bad, []core.Algorithm{core.OptMinMem}, core.BoundLB, 4)
		ch <- outcome{run, err}
	}()
	select {
	case out := <-ch:
		if out.err == nil {
			t.Fatal("expected an error from infeasible instances")
		}
		if !strings.Contains(out.err.Error(), "below LB") {
			t.Fatalf("unexpected error: %v", out.err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Run deadlocked on failing instances")
	}
	// A failure in the middle of a healthy dataset must also surface.
	mixed := append(smallDataset(t), bad...)
	if _, err := Run(mixed, []core.Algorithm{core.OptMinMem}, core.BoundLB, 2); err == nil {
		t.Fatal("expected an error from the mixed dataset")
	}
}

func TestRunAtPeakBoundAllZeroForOptMinMem(t *testing.T) {
	ins := smallDataset(t)
	run, err := Run(ins, []core.Algorithm{core.OptMinMem}, core.BoundPeakMinus1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ins {
		// At M = Peak − 1 the optimal-peak schedule overflows by at
		// most... it must pay at least 1 (the provable lower bound).
		if run.IO[0][i] < 1 {
			t.Fatalf("OptMinMem pays %d at M=Peak-1", run.IO[0][i])
		}
	}
}
