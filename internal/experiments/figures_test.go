package experiments

import (
	"testing"

	"repro/internal/brute"
	"repro/internal/core"
	"repro/internal/expand"
	"repro/internal/liu"
	"repro/internal/memsim"
	"repro/internal/postorder"
	"repro/internal/tree"
)

// --- Figure 2(a): POSTORDERMINIO is not competitive -----------------------

func TestFig2aGoodScheduleSingleIO(t *testing.T) {
	for _, M := range []int64{4, 8, 20} {
		for levels := 0; levels <= 4; levels++ {
			tr, sched, err := Fig2a(levels, M)
			if err != nil {
				t.Fatal(err)
			}
			if !tree.IsTopological(tr, sched) {
				t.Fatalf("M=%d levels=%d: schedule invalid", M, levels)
			}
			io, err := memsim.IOOf(tr, M, sched)
			if err != nil {
				t.Fatal(err)
			}
			if io != 1 {
				t.Fatalf("M=%d levels=%d: good schedule pays %d, want 1", M, levels, io)
			}
		}
	}
}

func TestFig2aPostorderPaysPerLeaf(t *testing.T) {
	// Every postorder pays at least M/2 − 1 per leaf beyond the first;
	// POSTORDERMINIO is a postorder, so its cost grows with the number
	// of levels while the optimum stays at 1.
	M := int64(20)
	prev := int64(0)
	for levels := 0; levels <= 5; levels++ {
		tr, _, err := Fig2a(levels, M)
		if err != nil {
			t.Fatal(err)
		}
		sched, predicted, _ := postorder.MinIO(tr, M)
		io, err := memsim.IOOf(tr, M, sched)
		if err != nil {
			t.Fatal(err)
		}
		if io != predicted {
			t.Fatalf("levels=%d: prediction %d vs simulation %d", levels, predicted, io)
		}
		leaves := int64(2 + levels)
		if min := (leaves - 1) * (M/2 - 1); io < min {
			t.Fatalf("levels=%d: postorder paid %d < %d", levels, io, min)
		}
		if io <= prev {
			t.Fatalf("levels=%d: postorder cost did not grow (%d after %d)", levels, io, prev)
		}
		prev = io
	}
}

func TestFig2aBruteOptimumIsOne(t *testing.T) {
	tr, _, err := Fig2a(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, opt, err := brute.MinIO(tr, 4)
	if err != nil {
		t.Fatal(err)
	}
	if opt != 1 {
		t.Fatalf("brute optimum %d, want 1", opt)
	}
}

func TestFig2aRejectsBadParams(t *testing.T) {
	if _, _, err := Fig2a(0, 5); err == nil {
		t.Error("odd M accepted")
	}
	if _, _, err := Fig2a(0, 2); err == nil {
		t.Error("M=2 accepted")
	}
	if _, _, err := Fig2a(-1, 4); err == nil {
		t.Error("negative levels accepted")
	}
}

// --- Figure 2(b): OPTMINMEM is suboptimal ---------------------------------

func TestFig2b(t *testing.T) {
	tr, chain := Fig2b()
	if !tree.IsTopological(tr, chain) {
		t.Fatal("chain schedule invalid")
	}
	chainPeak, err := memsim.Peak(tr, chain)
	if err != nil {
		t.Fatal(err)
	}
	if chainPeak != 9 {
		t.Fatalf("chain-after-chain peak %d, want 9", chainPeak)
	}
	chainIO, err := memsim.IOOf(tr, Fig2bM, chain)
	if err != nil {
		t.Fatal(err)
	}
	if chainIO != 3 {
		t.Fatalf("chain-after-chain IO %d, want 3", chainIO)
	}
	sched, peak := liu.MinMem(tr)
	if peak != 8 {
		t.Fatalf("OptMinMem peak %d, want 8", peak)
	}
	optIO, err := memsim.IOOf(tr, Fig2bM, sched)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's run reports 4; the exact value depends on how ties
	// between the two symmetric chains are broken inside OPTMINMEM (see
	// EXPERIMENTS.md). Either way it exceeds the 3 I/Os of the peak-9
	// chain-after-chain traversal.
	if optIO <= chainIO {
		t.Fatalf("OptMinMem IO %d not worse than chain traversal %d", optIO, chainIO)
	}
	if optIO < 4 || optIO > 5 {
		t.Fatalf("OptMinMem IO %d outside the tie-break range [4,5]", optIO)
	}
	_, opt, err := brute.MinIO(tr, Fig2bM)
	if err != nil {
		t.Fatal(err)
	}
	if opt != 3 {
		t.Fatalf("brute optimum %d, want 3", opt)
	}
}

// --- Figure 2(c): OPTMINMEM is not competitive ----------------------------

func TestFig2cFamily(t *testing.T) {
	for k := int64(1); k <= 8; k++ {
		tr, chain, M, err := Fig2c(k)
		if err != nil {
			t.Fatal(err)
		}
		if M != 4*k {
			t.Fatalf("M=%d want %d", M, 4*k)
		}
		if !tree.IsTopological(tr, chain) {
			t.Fatalf("k=%d: chain schedule invalid", k)
		}
		cPeak, err := memsim.Peak(tr, chain)
		if err != nil {
			t.Fatal(err)
		}
		if cPeak != 6*k {
			t.Fatalf("k=%d: chain peak %d want %d", k, cPeak, 6*k)
		}
		cIO, err := memsim.IOOf(tr, M, chain)
		if err != nil {
			t.Fatal(err)
		}
		if cIO != 2*k {
			t.Fatalf("k=%d: chain IO %d want %d", k, cIO, 2*k)
		}
		sched, peak := liu.MinMem(tr)
		if peak != 5*k {
			t.Fatalf("k=%d: OptMinMem peak %d want %d", k, peak, 5*k)
		}
		io, err := memsim.IOOf(tr, M, sched)
		if err != nil {
			t.Fatal(err)
		}
		// The paper counts k(k+1); exact totals shift slightly with
		// tie-breaking, but the quadratic growth — versus the linear
		// 2k of the chain traversal — is the point of the example.
		if io < k*k-k {
			t.Fatalf("k=%d: OptMinMem IO %d below quadratic envelope %d", k, io, k*k-k)
		}
		if k >= 3 && io <= cIO {
			t.Fatalf("k=%d: OptMinMem IO %d not worse than chain %d", k, io, cIO)
		}
	}
	if _, _, _, err := Fig2c(0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestFig2cRatioGrows(t *testing.T) {
	// Competitive ratio OPTMINMEM/optimal grows at least linearly in k.
	ratio := func(k int64) float64 {
		tr, chain, M, err := Fig2c(k)
		if err != nil {
			t.Fatal(err)
		}
		sched, _ := liu.MinMem(tr)
		io, err := memsim.IOOf(tr, M, sched)
		if err != nil {
			t.Fatal(err)
		}
		cIO, err := memsim.IOOf(tr, M, chain)
		if err != nil {
			t.Fatal(err)
		}
		return float64(io) / float64(cIO)
	}
	r4, r8 := ratio(4), ratio(8)
	if r8 < 1.5*r4 {
		t.Fatalf("ratio not growing: k=4 → %.2f, k=8 → %.2f", r4, r8)
	}
}

// --- Figure 6: FULLRECEXPAND beats OPTMINMEM ------------------------------

func TestFig6(t *testing.T) {
	tr, a, b := Fig6()
	sched, peak := liu.MinMem(tr)
	if peak != 12 {
		t.Fatalf("OptMinMem peak %d, want 12", peak)
	}
	res, err := memsim.Run(tr, Fig6M, sched, memsim.FiF)
	if err != nil {
		t.Fatal(err)
	}
	if res.IO != 4 || res.Tau[a] != 2 || res.Tau[b] != 2 {
		t.Fatalf("OptMinMem: io=%d tau[a]=%d tau[b]=%d, want 4/2/2", res.IO, res.Tau[a], res.Tau[b])
	}
	full, err := expand.FullRecExpand(tr, Fig6M)
	if err != nil {
		t.Fatal(err)
	}
	if full.IO != 3 {
		t.Fatalf("FullRecExpand IO %d, want 3", full.IO)
	}
	_, opt, err := brute.MinIO(tr, Fig6M)
	if err != nil {
		t.Fatal(err)
	}
	if opt != 3 {
		t.Fatalf("brute optimum %d, want 3", opt)
	}
	// The best postorder pays 4 here: FULLRECEXPAND strictly beats it.
	_, pv, _ := postorder.MinIO(tr, Fig6M)
	if pv != 4 {
		t.Fatalf("PostOrderMinIO %d, want 4", pv)
	}
}

// --- Figure 7: node-c instance ---------------------------------------------

func TestFig7(t *testing.T) {
	tr, c, a, b := Fig7()
	_ = a
	_ = b
	// POSTORDERMINIO processes the left subtree first and pays exactly
	// 3 I/Os, all on node c (the robust claim of the figure).
	sched, pv, _ := postorder.MinIO(tr, Fig7M)
	res, err := memsim.Run(tr, Fig7M, sched, memsim.FiF)
	if err != nil {
		t.Fatal(err)
	}
	if pv != 3 || res.IO != 3 {
		t.Fatalf("PostOrderMinIO predicted %d simulated %d, want 3", pv, res.IO)
	}
	if res.Tau[c] != 3 {
		t.Fatalf("tau=%v: the 3 I/Os should all be on node c=%d", res.Tau, c)
	}
	// The figure's narrative (OPTMINMEM pays 4, POSTORDERMINIO optimal)
	// depends on tie-breaking inside OPTMINMEM; under ours, OPTMINMEM's
	// schedule pays 2, which the brute-force oracle confirms to be the
	// true optimum of the instance. See EXPERIMENTS.md for discussion.
	_, opt, err := brute.MinIO(tr, Fig7M)
	if err != nil {
		t.Fatal(err)
	}
	if opt > 3 {
		t.Fatalf("optimum %d above the postorder's 3", opt)
	}
	optSched, _ := liu.MinMem(tr)
	optIO, err := memsim.IOOf(tr, Fig7M, optSched)
	if err != nil {
		t.Fatal(err)
	}
	if optIO < opt {
		t.Fatalf("OptMinMem IO %d below optimum %d", optIO, opt)
	}
	full, err := expand.FullRecExpand(tr, Fig7M)
	if err != nil {
		t.Fatal(err)
	}
	if full.IO < opt {
		t.Fatalf("FullRecExpand IO %d below optimum %d", full.IO, opt)
	}
}

// --- Cross-check: Run harness on the examples ------------------------------

func TestCoreRunOnFig6(t *testing.T) {
	tr, _, _ := Fig6()
	results, err := core.RunAll(core.PaperAlgorithms, tr, Fig6M)
	if err != nil {
		t.Fatal(err)
	}
	byAlg := map[core.Algorithm]int64{}
	for _, r := range results {
		byAlg[r.Algorithm] = r.IO
	}
	if byAlg[core.FullRecExpand] != 3 {
		t.Errorf("FullRecExpand via core: %d", byAlg[core.FullRecExpand])
	}
	if byAlg[core.OptMinMem] != 4 {
		t.Errorf("OptMinMem via core: %d", byAlg[core.OptMinMem])
	}
	if byAlg[core.PostOrderMinIO] != 4 {
		t.Errorf("PostOrderMinIO via core: %d", byAlg[core.PostOrderMinIO])
	}
}
