// Package experiments reproduces the evaluation of the paper figure by
// figure: the adversarial families of Section 4 (Figure 2), the worked
// examples of Appendix A (Figures 6 and 7), and the performance-profile
// studies of Section 6 and Appendix B (Figures 4, 5, 8–11).
package experiments

import (
	"fmt"

	"repro/internal/tree"
)

// Fig2a builds the Section 4.3 family showing that POSTORDERMINIO is not
// a constant-factor approximation: with memory M (even, ≥ 4) the returned
// tree admits a traversal with a single unit of I/O — returned as
// GoodSchedule — while every postorder pays at least M/2 − 1 I/Os per leaf
// beyond the first. levels ≥ 0 extra levels extend the construction as
// described in the paper (each level adds one {1, M/2, M/2, M−1} gadget and
// one more leaf); the base tree is the 7-node core with two M-leaves.
//
// Nodes (base): root r(1) {children: p(M/2){q(1){leaf(M)}}, p'(M/2){q'(1)
// {leaf(M)}}}; each extra level wraps the previous root: new(1){children:
// up(M/2){old root}, side(M/2){leaf(M−1)}}.
func Fig2a(levels int, M int64) (*tree.Tree, tree.Schedule, error) {
	if M < 4 || M%2 != 0 {
		return nil, nil, fmt.Errorf("experiments: Fig2a needs even M >= 4, got %d", M)
	}
	if levels < 0 {
		return nil, nil, fmt.Errorf("experiments: Fig2a needs levels >= 0")
	}
	var parent []int
	var weight []int64
	add := func(p int, w int64) int {
		parent = append(parent, p)
		weight = append(weight, w)
		return len(parent) - 1
	}
	// Base: two (M-leaf → 1 → M/2) chains under a unit LCA.
	lca := add(tree.None, 1)
	pL := add(lca, M/2)
	qL := add(pL, 1)
	leafL := add(qL, M)
	pR := add(lca, M/2)
	qR := add(pR, 1)
	leafR := add(qR, M)
	sched := tree.Schedule{leafL, qL, leafR, qR, pR, pL, lca}
	root := lca
	for k := 0; k < levels; k++ {
		newRoot := add(tree.None, 1)
		up := add(newRoot, M/2)
		parent[root] = up
		side := add(newRoot, M/2)
		leaf := add(side, M-1)
		// Continue the paper's order: after completing the previous
		// root (weight 1), the fresh leaf fits next to it; then its
		// M/2 parent, then the M/2 above the old root, then the new
		// root.
		sched = append(sched, leaf, side, up, newRoot)
		root = newRoot
	}
	t, err := tree.New(parent, weight)
	if err != nil {
		return nil, nil, err
	}
	return t, sched, nil
}

// Fig2b builds the 9-node example of Section 4.4 (M = 6): two chains with
// weights 3, 5, 2, 6 from the root down. OPTMINMEM reaches the optimal
// peak 8 but pays more I/O than the peak-9 chain-after-chain traversal,
// which pays exactly 3.
func Fig2b() (*tree.Tree, tree.Schedule) {
	t := tree.Graft(1,
		tree.Chain(3, 5, 2, 6),
		tree.Chain(3, 5, 2, 6),
	)
	// Chain-after-chain: nodes of the first chain bottom-up, then the
	// second, then the root. Chain nodes are 1..4 and 5..8 top-down.
	sched := tree.Schedule{4, 3, 2, 1, 8, 7, 6, 5, 0}
	return t, sched
}

// Fig2bM is the memory bound of the Figure 2(b) example.
const Fig2bM = int64(6)

// Fig2c builds the Section 4.4 family (M = 4k) on which OPTMINMEM pays
// Θ(k²) I/Os while processing the chains one after the other pays exactly
// 2k. The tree has a unit root and two identical chains of 2k+2 nodes
// whose top-down weights interleave {2k, ..., k} and {3k, ..., 4k}.
// The returned schedule is the chain-after-chain traversal.
func Fig2c(k int64) (*tree.Tree, tree.Schedule, int64, error) {
	if k < 1 {
		return nil, nil, 0, fmt.Errorf("experiments: Fig2c needs k >= 1")
	}
	var ws []int64
	for j := int64(0); j <= k; j++ {
		ws = append(ws, 2*k-j, 3*k+j)
	}
	t := tree.Graft(1, tree.Chain(ws...), tree.Chain(ws...))
	n := t.N()
	cl := int(2*k + 2) // chain length
	sched := make(tree.Schedule, 0, n)
	for i := cl; i >= 1; i-- {
		sched = append(sched, i)
	}
	for i := 2 * cl; i >= cl+1; i-- {
		sched = append(sched, i)
	}
	sched = append(sched, 0)
	return t, sched, 4 * k, nil
}

// Fig6 builds the Appendix A example (M = 10) on which FULLRECEXPAND is
// optimal with 3 I/Os while OPTMINMEM pays 4: a unit root with branches
// 4→8→2(a)→9(leaf) and 6→4(b)→10(leaf). It returns the tree and the ids
// of the paper's nodes a and b.
func Fig6() (t *tree.Tree, a, b int) {
	t = tree.Graft(1,
		tree.Chain(4, 8, 2, 9),
		tree.Chain(6, 4, 10),
	)
	return t, 3, 6
}

// Fig6M is the memory bound of the Figure 6 example.
const Fig6M = int64(10)

// Fig7 builds the second Appendix A example (M = 7): a unit root with
// branches c(3)→a(2)→7(leaf) and 3→b(4)→7(leaf). The paper uses it to show
// that no expansion strategy that only expands OPTMINMEM-evicted nodes can
// be optimal; the best postorder pays all of its 3 I/Os on node c. It
// returns the tree and the ids of nodes c, a and b.
func Fig7() (t *tree.Tree, c, a, b int) {
	t = tree.Graft(1,
		tree.Chain(3, 2, 7),
		tree.Chain(3, 4, 7),
	)
	return t, 1, 2, 5
}

// Fig7M is the memory bound of the Figure 7 example.
const Fig7M = int64(7)
