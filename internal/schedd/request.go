package schedd

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/tree"
)

// Request is the wire schema of one scheduling request, constrained by the
// struct-tag validator (see Validate). A JSON POST carries the whole
// struct; a text/plain POST carries the treegen text format as the body
// and the scalar fields as query parameters of the same names.
type Request struct {
	// Tree is the instance in the tree JSON form
	// ({"parents":[...],"weights":[...]}); required on the JSON path.
	Tree json.RawMessage `json:"tree" validate:"required"`
	// M is the absolute memory bound; ignored when Mid is set. Exactly
	// one of M>0 or Mid must be given.
	M int64 `json:"m" validate:"min=0"`
	// Mid asks for the paper's mid bound, (LB+Peak-1)/2, computed from
	// the instance itself.
	Mid bool `json:"mid"`
	// Algorithm selects the scheduler; empty means the server default
	// (RecExpand).
	Algorithm string `json:"algorithm" validate:"oneof=OptMinMem PostOrderMinIO PostOrderMinMem NaturalPostOrder RecExpand FullRecExpand"`
	// Workers is the engine parallelism; 0 auto-selects.
	Workers int `json:"workers" validate:"min=0,max=256"`
	// CacheBudget optionally lowers this request's lease below the
	// estimate, in ParseByteSize form ("256MiB"); empty takes the
	// server's estimate. It can only shrink the lease, never grow it
	// past the estimate-capped admission cost.
	CacheBudget string `json:"cache_budget" validate:"bytesize,maxlen=32"`
	// WaitMS bounds how long admission may queue behind the budget
	// broker before giving up with 429; 0 means fail fast (TryAcquire).
	WaitMS int64 `json:"wait_ms" validate:"min=0,max=600000"`
	// TimeoutMS bounds the whole run+stream after admission; 0 takes the
	// server default.
	TimeoutMS int64 `json:"timeout_ms" validate:"min=0,max=86400000"`
	// Name is an optional label echoed in logs and checkpoints.
	Name string `json:"name" validate:"maxlen=128"`
	// IdempotencyKey, when non-empty, binds the request to a durable
	// journal entry: re-POSTs with the same key resume the previous
	// attempt's checkpoint instead of recomputing, and keys are
	// single-flight (a concurrent duplicate waits, it does not double the
	// work). Reusing a key for a different instance/bound/algorithm is a
	// 409.
	IdempotencyKey string `json:"idempotency_key" validate:"maxlen=128"`
	// ResumeFrom is the count of schedule ids the client already holds
	// verified (the RepairSchedule-trusted prefix): the stream starts
	// after them, so prefix + response reassemble the uninterrupted
	// stream byte-for-byte. Only meaningful with IdempotencyKey.
	ResumeFrom int64 `json:"resume_from" validate:"min=0"`
}

// estimate constants of the admission cost model: a request's resident
// cost is floored at minLeaseBytes and grows linearly with the node count.
// bytesPerNode covers the decoded tree (parent + weight + children arrays,
// ~28 B/node) plus the engine's working state under a bounded cache —
// postorder scratch, the unit queue, and the resident profile segments the
// cache keeps hot even at its smallest useful budget.
const (
	minLeaseBytes = 1 << 20 // 1 MiB floor: tiny trees still cost a lease
	bytesPerNode  = 224
)

// EstimateCost is the admission cost model: the resident bytes a request
// over an n-node tree is charged against the global budget. It
// deliberately over-approximates (the profile cache evicts under its
// budget, so the true footprint can be driven lower) — admission must be
// computable from the node count alone, before any expensive analysis of
// the instance runs.
func EstimateCost(n int) int64 {
	c := int64(n) * bytesPerNode
	if c < minLeaseBytes {
		c = minLeaseBytes
	}
	return c
}

// ParseRequest ingests one POST: application/json bodies carry the full
// Request struct; text/plain bodies carry the treegen text format with the
// scalar fields as query parameters. The body is rejected past limit
// bytes. It returns the validated request and the decoded, structurally
// verified tree.
func ParseRequest(r *http.Request, limit int64) (*Request, *tree.Tree, error) {
	body := http.MaxBytesReader(nil, r.Body, limit)
	ct := r.Header.Get("Content-Type")
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	ct = strings.TrimSpace(ct)

	var req Request
	var t *tree.Tree
	switch ct {
	case "", "application/json":
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			return nil, nil, fmt.Errorf("schedd: decoding request json: %w", err)
		}
		if err := Validate(&req); err != nil {
			return nil, nil, err
		}
		var tr tree.Tree
		if err := json.Unmarshal(req.Tree, &tr); err != nil {
			return nil, nil, fmt.Errorf("schedd: decoding tree: %w", err)
		}
		t = &tr
	case "text/plain":
		if err := queryRequest(r, &req); err != nil {
			return nil, nil, err
		}
		// The text path has no tree field to satisfy `required`; stub it
		// before validating, the body is the tree.
		req.Tree = json.RawMessage("{}")
		if err := Validate(&req); err != nil {
			return nil, nil, err
		}
		tr, err := tree.ReadText(body)
		if err != nil {
			return nil, nil, fmt.Errorf("schedd: decoding tree text: %w", err)
		}
		t = tr
	default:
		return nil, nil, fmt.Errorf("schedd: unsupported content type %q (want application/json or text/plain)", ct)
	}

	if req.M < 0 || (req.M == 0) == (!req.Mid) {
		return nil, nil, fmt.Errorf("schedd: exactly one of m>0 or mid must be given")
	}
	if req.ResumeFrom > 0 && req.IdempotencyKey == "" {
		return nil, nil, fmt.Errorf("schedd: resume_from requires idempotency_key")
	}
	return &req, t, nil
}

// queryRequest fills the scalar request fields from URL query parameters
// (the text/plain ingest path, mirroring the JSON field names).
func queryRequest(r *http.Request, req *Request) error {
	q := r.URL.Query()
	var err error
	geti := func(key string) int64 {
		if err != nil || !q.Has(key) {
			return 0
		}
		var v int64
		if v, err = strconv.ParseInt(q.Get(key), 10, 64); err != nil {
			err = fmt.Errorf("schedd: query parameter %q: %w", key, err)
		}
		return v
	}
	req.M = geti("m")
	req.Mid = q.Get("mid") == "1" || q.Get("mid") == "true"
	req.Algorithm = q.Get("algorithm")
	req.Workers = int(geti("workers"))
	req.CacheBudget = q.Get("cache_budget")
	req.WaitMS = geti("wait_ms")
	req.TimeoutMS = geti("timeout_ms")
	req.Name = q.Get("name")
	req.IdempotencyKey = q.Get("idempotency_key")
	req.ResumeFrom = geti("resume_from")
	return err
}

// algorithm resolves the request's algorithm with the server default.
func (req *Request) algorithm() core.Algorithm {
	if req.Algorithm == "" {
		return core.RecExpand
	}
	return core.Algorithm(req.Algorithm)
}

// leaseCost resolves the request's admission cost: the node-count estimate,
// optionally lowered (never raised) by an explicit cache_budget.
func (req *Request) leaseCost(n int) (int64, error) {
	cost := EstimateCost(n)
	if req.CacheBudget == "" {
		return cost, nil
	}
	asked, err := core.ParseByteSize(req.CacheBudget)
	if err != nil {
		return 0, fmt.Errorf("schedd: cache_budget: %w", err)
	}
	if asked < cost {
		if asked < minLeaseBytes {
			asked = minLeaseBytes
		}
		cost = asked
	}
	return cost, nil
}

// drainBody consumes and closes an ingested request body so the connection
// can be reused; bounded by the server's request limit upstream.
func drainBody(r io.ReadCloser) {
	_, _ = io.Copy(io.Discard, io.LimitReader(r, 1<<20))
	_ = r.Close()
}
