// Package schedd is the multi-tenant scheduling service of the
// reproduction: a long-running HTTP server in front of the expansion
// engine, where clients POST tree instances (JSON or the treegen text
// format) and stream back schedules — the tree.WriteSchedule segment
// protocol, byte-identical to what `sched -stream-sched` writes — plus a
// peak-memory report in HTTP trailers.
//
// The robustness core is the budget lease broker (Broker): one global
// MaxResidentBytes budget is partitioned across concurrent requests as
// per-request leases, generalizing the per-unit token bucket of
// expand.Options.MaxUnitLead to the request level. Each admitted request
// runs its engine under a profile-cache budget equal to its lease, so the
// sum of resident cache footprints stays inside the global budget no
// matter how many tenants are active. Requests that cannot acquire a
// lease within their declared wait are rejected with 429 + Retry-After
// (load shedding); requests whose estimated cost exceeds the whole budget
// are rejected at validation time with the estimate (413); requests with
// malformed bodies are rejected by the struct-tag validator with
// field-keyed errors (400).
//
// Failure containment composes the PR 6/7 machinery: every request runs
// under its own context (client disconnect, per-request timeout, and the
// server's drain deadline all cancel it at engine quiescent points), a
// panic in a handler or engine is contained to a 500/truncated stream on
// that request only — never process death — and graceful drain stops
// admission, lets in-flight requests finish for a grace period, then
// cancels them so checkpoint-armed runs flush a resumable checkpoint
// (expand's flush-on-cancel drain hook) before the process exits 0.
//
// Observability: /healthz (process liveness), /readyz (admission state —
// 503 while draining), /statz (broker and serving counters as JSON), and
// one structured log line per request with queue-wait/run/stream timings.
package schedd
