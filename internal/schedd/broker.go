package schedd

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/faultinject"
)

// OversizeError rejects a request whose estimated resident cost exceeds
// the entire global budget: no amount of waiting can ever admit it, so it
// must be rejected at validation time with the estimate attached (the 413
// path of the server).
type OversizeError struct {
	// Cost is the rejected request's estimated resident bytes.
	Cost int64
	// Total is the broker's whole budget.
	Total int64
}

// Error formats the estimate against the budget.
func (e *OversizeError) Error() string {
	return fmt.Sprintf("schedd: request cost %d bytes exceeds the whole budget of %d bytes", e.Cost, e.Total)
}

// ErrBudgetBusy is returned by TryAcquire (and by Acquire when its context
// expires first) when the budget cannot cover the requested lease right
// now: the admission-control signal the server maps to 429 + Retry-After.
var ErrBudgetBusy = errors.New("schedd: budget exhausted, retry later")

// Broker partitions one global MaxResidentBytes budget across concurrent
// requests as leases. Accounting is strict: a lease's cost is debited at
// grant time and credited back exactly once at Release, so Used returns to
// zero when the last tenant leaves — the no-leak invariant the drain tests
// assert. Waiters are served strictly FIFO (a small request never
// overtakes a big one), which keeps admission starvation-free. A Broker is
// safe for concurrent use.
type Broker struct {
	total int64

	mu       sync.Mutex
	used     int64
	peakUsed int64
	leases   int
	waiters  []*waiter // FIFO; granted or abandoned entries are nil
	granted  int64
	rejected int64
}

// waiter is one blocked Acquire: ready is closed under the broker lock
// when the lease is granted; abandoned is set under the lock when the
// waiter gives up, so a grant and an abandon cannot race.
type waiter struct {
	cost      int64
	ready     chan struct{}
	granted   bool
	abandoned bool
}

// NewBroker returns a broker over a global budget of total bytes; total
// must be positive.
func NewBroker(total int64) (*Broker, error) {
	if total <= 0 {
		return nil, fmt.Errorf("schedd: broker budget must be positive, got %d", total)
	}
	return &Broker{total: total}, nil
}

// Total returns the global budget the broker partitions.
func (b *Broker) Total() int64 { return b.total }

// TryAcquire grants a lease of cost bytes if the budget can cover it RIGHT
// NOW and no earlier request is waiting; otherwise it fails immediately
// with ErrBudgetBusy (or OversizeError if no budget state could ever admit
// the request). This is the wait_ms=0 admission path: overload sheds load
// instead of queueing it.
func (b *Broker) TryAcquire(cost int64) (*Lease, error) {
	if err := b.precheck(cost); err != nil {
		return nil, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.waiting() > 0 || b.used+cost > b.total {
		b.rejected++
		return nil, ErrBudgetBusy
	}
	return b.grant(cost), nil
}

// Acquire grants a lease of cost bytes, waiting in FIFO order behind
// earlier requests until the budget can cover it or ctx expires; expiry
// surfaces as ErrBudgetBusy wrapped with the context cause, so callers
// treat a timed-out wait exactly like an immediate rejection.
func (b *Broker) Acquire(ctx context.Context, cost int64) (*Lease, error) {
	if err := b.precheck(cost); err != nil {
		return nil, err
	}
	b.mu.Lock()
	if b.waiting() == 0 && b.used+cost <= b.total {
		l := b.grant(cost)
		b.mu.Unlock()
		return l, nil
	}
	w := &waiter{cost: cost, ready: make(chan struct{})}
	b.waiters = append(b.waiters, w)
	b.mu.Unlock()

	select {
	case <-w.ready:
		return &Lease{b: b, cost: cost}, nil
	case <-ctx.Done():
		b.mu.Lock()
		if w.granted {
			// The grant raced the cancellation: the lease is ours, take it
			// rather than leak the debit.
			b.mu.Unlock()
			return &Lease{b: b, cost: cost}, nil
		}
		w.abandoned = true
		b.rejected++
		b.mu.Unlock()
		return nil, fmt.Errorf("%w (%v)", ErrBudgetBusy, ctx.Err())
	}
}

// precheck hosts the shared fast rejections of both acquire paths: the
// LeaseAcquire fault-injection point, nonsensical costs, and oversize
// requests.
func (b *Broker) precheck(cost int64) error {
	if faultinject.Fire(faultinject.LeaseAcquire) {
		return faultinject.ErrLeaseAcquire
	}
	if cost <= 0 {
		return fmt.Errorf("schedd: lease cost must be positive, got %d", cost)
	}
	if cost > b.total {
		b.mu.Lock()
		b.rejected++
		b.mu.Unlock()
		return &OversizeError{Cost: cost, Total: b.total}
	}
	return nil
}

// grant debits the budget and mints the lease. Caller holds b.mu.
func (b *Broker) grant(cost int64) *Lease {
	b.used += cost
	if b.used > b.peakUsed {
		b.peakUsed = b.used
	}
	b.leases++
	b.granted++
	return &Lease{b: b, cost: cost}
}

// waiting counts live (non-abandoned, ungranted) waiters. Caller holds b.mu.
func (b *Broker) waiting() int {
	n := 0
	for _, w := range b.waiters {
		if w != nil && !w.granted && !w.abandoned {
			n++
		}
	}
	return n
}

// release credits a lease's cost back and wakes FIFO waiters for as long
// as the freed budget covers the head of the queue.
func (b *Broker) release(cost int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.used -= cost
	b.leases--
	// Compact dead entries and grant from the head while budget allows;
	// strictly in order, so a small late request cannot starve a big
	// early one.
	live := b.waiters[:0]
	for _, w := range b.waiters {
		if w == nil || w.granted || w.abandoned {
			continue
		}
		live = append(live, w)
	}
	b.waiters = live
	for len(b.waiters) > 0 {
		w := b.waiters[0]
		if b.used+w.cost > b.total {
			break
		}
		b.used += w.cost
		if b.used > b.peakUsed {
			b.peakUsed = b.used
		}
		b.leases++
		b.granted++
		w.granted = true
		close(w.ready)
		b.waiters = b.waiters[1:]
	}
}

// BrokerStats is a consistent snapshot of the broker's accounting.
type BrokerStats struct {
	// Total is the global budget; Used the bytes currently leased out;
	// PeakUsed the high-water mark of Used.
	Total, Used, PeakUsed int64
	// Leases is the number of outstanding leases; Waiting the number of
	// blocked Acquire calls.
	Leases, Waiting int
	// WaitingCost is the summed lease cost of the blocked Acquire calls —
	// with Used, the demand ahead of a new arrival, which is what the
	// server's Retry-After estimate is derived from.
	WaitingCost int64
	// Granted and Rejected count admission outcomes since construction
	// (Rejected includes oversize and timed-out waits).
	Granted, Rejected int64
}

// Stats returns a consistent snapshot of the broker's accounting.
func (b *Broker) Stats() BrokerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	var wcost int64
	for _, w := range b.waiters {
		if w != nil && !w.granted && !w.abandoned {
			wcost += w.cost
		}
	}
	return BrokerStats{
		Total: b.total, Used: b.used, PeakUsed: b.peakUsed,
		Leases: b.leases, Waiting: b.waiting(), WaitingCost: wcost,
		Granted: b.granted, Rejected: b.rejected,
	}
}

// Lease is one granted slice of the global budget. The holder runs its
// engine with a profile-cache budget of Cost bytes and must Release
// exactly when done; Release is idempotent, so deferred releases compose
// with early error paths.
type Lease struct {
	b        *Broker
	cost     int64
	released sync.Once
}

// Cost returns the leased bytes — the cache budget the holder's engine
// must run under.
func (l *Lease) Cost() int64 { return l.cost }

// Release returns the leased bytes to the broker and wakes eligible
// waiters. Safe to call more than once; only the first call credits.
func (l *Lease) Release() {
	l.released.Do(func() { l.b.release(l.cost) })
}
