package schedd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// The request journal behind idempotent resumable serving (DESIGN.md
// §2.13). A client-supplied idempotency key binds to one durable Entry:
// the instance fingerprint the key was first used with, the stable
// checkpoint path of that request's engine run, and the committed
// emitted-id count. A re-POST with the same key and a matching fingerprint
// may resume — the engine continues from the checkpoint and the emission
// is skipped past the client's verified prefix — while a key reused for a
// DIFFERENT instance is a conflict (409): silently serving instance B
// under a key that once meant instance A is how retried requests corrupt
// downstream pipelines.
//
// Entries are one file each (key-<fnv64>.journal in the journal
// directory), written atomically (temp+fsync+rename) and framed with a
// CRC so a torn or bit-rotted entry is detected on read, dropped, and
// recomputed from scratch — journal damage degrades to extra work, never
// to a wrong stream or a panic. With no directory configured the journal
// is memory-only: conflict detection and single-flight still hold within
// one daemon process, durability across restarts does not.

// journalMagic leads every serialized entry; the hex CRC32 of the JSON
// body follows on the same line.
const journalMagic = "RXJRNL1"

// ErrJournalCorrupt marks a journal entry whose bytes fail validation
// (bad magic, CRC mismatch, malformed JSON). Callers treat it as "no
// entry": the request is recomputed and the entry rewritten.
var ErrJournalCorrupt = errors.New("schedd: corrupt journal entry")

// ErrKeyConflict is returned when an idempotency key is reused with a
// different instance fingerprint (tree, bound or algorithm) than the one
// it is bound to — the 409 path of the server.
var ErrKeyConflict = errors.New("schedd: idempotency key bound to a different request")

// ReqFingerprint identifies what an idempotency key is bound to: the
// instance (tree hash + node count), the resolved memory bound, and the
// algorithm. Non-semantic knobs (workers, cache budget, timeouts, wait
// policy) are deliberately absent — they never change the served bytes,
// so a retry may lower its wait or budget without losing its binding.
type ReqFingerprint struct {
	// TreeHash is ckpt.HashTree over the instance's parent/weight vectors.
	TreeHash uint64 `json:"tree_hash"`
	// N is the node count (redundant with the hash, kept for diagnostics).
	N int64 `json:"n"`
	// M is the RESOLVED memory bound (mid requests resolve before binding).
	M int64 `json:"m"`
	// Algorithm is the resolved algorithm name.
	Algorithm string `json:"algorithm"`
}

// Entry is one journal record: the state of an idempotent request.
type Entry struct {
	// Key is the client-supplied idempotency key.
	Key string `json:"key"`
	// FP is the fingerprint the key is bound to.
	FP ReqFingerprint `json:"fp"`
	// CkptPath is the stable engine checkpoint path of this request ("" for
	// closed-form algorithms or checkpoint-less servers). Every attempt of
	// the key shares it, so a drained attempt's progress carries over.
	CkptPath string `json:"ckpt_path,omitempty"`
	// Committed is the emitted-id count as of the last completed or sealed
	// attempt (absolute, including any resumed prefix). Advisory for
	// diagnostics and resume validation; the emission is deterministic, so
	// correctness never depends on it.
	Committed int64 `json:"committed"`
	// Complete records that some attempt streamed the schedule to its end
	// trailer; Committed is then the schedule's total id count.
	Complete bool `json:"complete"`
}

// JournalStats counts journal outcomes since construction.
type JournalStats struct {
	// Begun counts bindings opened; Reused counts those that found an
	// existing entry for their key (a retry or duplicate).
	Begun, Reused int64
	// Conflicts counts key reuses with a mismatched fingerprint (409s);
	// Corrupt counts entries dropped for failing validation.
	Conflicts, Corrupt int64
}

// Journal tracks idempotency-key bindings. Per-key access is
// single-flight: Begin blocks while another request holds the same key,
// so two clients sharing a key serialize into one computation and two
// byte-identical streams. Safe for concurrent use.
type Journal struct {
	dir string // "" = memory-only

	mu    sync.Mutex
	locks map[string]chan struct{} // per-key single-flight (cap-1 channel)
	mem   map[string]*Entry        // memory-only store when dir == ""
	stats JournalStats
}

// NewJournal opens a journal over dir; an empty dir means memory-only.
// The directory is created if missing.
func NewJournal(dir string) (*Journal, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("schedd: creating journal dir: %w", err)
		}
	}
	return &Journal{
		dir:   dir,
		locks: make(map[string]chan struct{}),
		mem:   make(map[string]*Entry),
	}, nil
}

// Stats returns a snapshot of the journal counters.
func (j *Journal) Stats() JournalStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stats
}

// keyHash names a key's files without trusting its bytes (keys are
// client-supplied; the filename must not be).
func keyHash(key string) string {
	h := fnv.New64a()
	io.WriteString(h, key)
	return fmt.Sprintf("%016x", h.Sum64())
}

// entryPath is the journal file of a key; CkptPathFor the stable engine
// checkpoint path requests bound to the key share across attempts.
func (j *Journal) entryPath(key string) string {
	return filepath.Join(j.dir, "key-"+keyHash(key)+".journal")
}

// CkptPathFor returns the stable checkpoint path for a key under dir, or
// "" when the journal is memory-only (no durable directory to keep it in).
func (j *Journal) CkptPathFor(key string) string {
	if j.dir == "" {
		return ""
	}
	return filepath.Join(j.dir, "key-"+keyHash(key)+".ckpt")
}

// Binding is one open claim on a key: the caller holds the key's
// single-flight lock until Close. Entry is the existing record (nil for a
// first use).
type Binding struct {
	j   *Journal
	key string
	// Entry is the journal record found at Begin time; nil when the key
	// was unbound (first use, or its previous entry was corrupt).
	Entry *Entry
}

// Begin claims key for one request: it takes the key's single-flight lock
// (waiting for a concurrent holder, bounded by ctx), loads the existing
// entry if any, and verifies the fingerprint binding. A corrupt entry is
// dropped and counted; a fingerprint mismatch releases the lock and
// returns ErrKeyConflict.
func (j *Journal) Begin(ctx context.Context, key string, fp ReqFingerprint) (*Binding, error) {
	lock := j.lockFor(key)
	select {
	case lock <- struct{}{}:
	case <-ctx.Done():
		return nil, fmt.Errorf("schedd: waiting for idempotency key %q: %w", key, ctx.Err())
	}
	b := &Binding{j: j, key: key}
	ent, err := j.load(key)
	switch {
	case err == nil && ent != nil:
		if ent.FP != fp {
			j.mu.Lock()
			j.stats.Begun++
			j.stats.Conflicts++
			j.mu.Unlock()
			b.Close()
			return nil, fmt.Errorf("%w: key %q is bound to fingerprint %+v, request has %+v",
				ErrKeyConflict, key, ent.FP, fp)
		}
		b.Entry = ent
		j.mu.Lock()
		j.stats.Begun++
		j.stats.Reused++
		j.mu.Unlock()
	case errors.Is(err, ErrJournalCorrupt):
		// Damage degrades to a fresh computation: drop the bad entry so
		// the rewrite below starts clean.
		j.drop(key)
		j.mu.Lock()
		j.stats.Begun++
		j.stats.Corrupt++
		j.mu.Unlock()
	case err != nil:
		b.Close()
		return nil, err
	default:
		j.mu.Lock()
		j.stats.Begun++
		j.mu.Unlock()
	}
	return b, nil
}

// Commit durably records the binding's current state (creating the entry
// on first use). Called with the lock held, before streaming begins (so a
// kill leaves the binding) and again with the final counts.
func (b *Binding) Commit(ent *Entry) error {
	ent.Key = b.key
	b.Entry = ent
	return b.j.store(b.key, ent)
}

// Close releases the key's single-flight lock. Idempotent per Binding is
// NOT needed — the server's defer calls it exactly once.
func (b *Binding) Close() {
	b.j.mu.Lock()
	lock := b.j.locks[b.key]
	b.j.mu.Unlock()
	<-lock
}

// lockFor returns the key's cap-1 lock channel, creating it on first use.
// Lock channels are never deleted: a key's lifetime of contention is
// bounded and the per-key footprint is one empty channel.
func (j *Journal) lockFor(key string) chan struct{} {
	j.mu.Lock()
	defer j.mu.Unlock()
	lock, ok := j.locks[key]
	if !ok {
		lock = make(chan struct{}, 1)
		j.locks[key] = lock
	}
	return lock
}

// load reads a key's entry: (nil, nil) when absent, ErrJournalCorrupt
// when the bytes fail validation. Disk is the source of truth for durable
// journals — entries are re-read per Begin, so an external byte flip (or
// another daemon's write to a shared directory) is observed, not masked
// by a stale cache.
func (j *Journal) load(key string) (*Entry, error) {
	if j.dir == "" {
		j.mu.Lock()
		defer j.mu.Unlock()
		return j.mem[key], nil
	}
	data, err := os.ReadFile(j.entryPath(key))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("schedd: reading journal entry: %w", err)
	}
	ent, err := decodeEntry(data)
	if err != nil {
		return nil, err
	}
	if ent.Key != key {
		// A hash collision or a copied file: not this key's entry.
		return nil, fmt.Errorf("%w: entry holds key %q, file names %q", ErrJournalCorrupt, ent.Key, key)
	}
	return ent, nil
}

// store writes a key's entry atomically (or into the memory map).
func (j *Journal) store(key string, ent *Entry) error {
	if j.dir == "" {
		cp := *ent
		j.mu.Lock()
		j.mem[key] = &cp
		j.mu.Unlock()
		return nil
	}
	data, err := encodeEntry(ent)
	if err != nil {
		return err
	}
	return writeFileAtomic(j.entryPath(key), data)
}

// drop removes a key's entry (used for corrupt files; missing is fine).
func (j *Journal) drop(key string) {
	if j.dir == "" {
		j.mu.Lock()
		delete(j.mem, key)
		j.mu.Unlock()
		return
	}
	_ = os.Remove(j.entryPath(key))
}

// encodeEntry frames an entry: "RXJRNL1 <crc32hex>\n" + JSON body, the
// CRC over the body so any flipped byte — header or body — fails decode.
func encodeEntry(ent *Entry) ([]byte, error) {
	body, err := json.Marshal(ent)
	if err != nil {
		return nil, err
	}
	head := fmt.Sprintf("%s %08x\n", journalMagic, crc32.ChecksumIEEE(body))
	return append([]byte(head), body...), nil
}

// decodeEntry validates the frame and parses the entry. Every malformed
// input — short file, bad magic, CRC mismatch, broken JSON — surfaces as
// ErrJournalCorrupt, never a panic.
func decodeEntry(data []byte) (*Entry, error) {
	nl := -1
	for i, c := range data {
		if c == '\n' {
			nl = i
			break
		}
	}
	if nl < 0 {
		return nil, fmt.Errorf("%w: no header line", ErrJournalCorrupt)
	}
	head := string(data[:nl])
	rest, ok := strings.CutPrefix(head, journalMagic+" ")
	if !ok {
		return nil, fmt.Errorf("%w: bad magic", ErrJournalCorrupt)
	}
	var want uint32
	if _, err := fmt.Sscanf(rest, "%08x", &want); err != nil || len(rest) != 8 {
		return nil, fmt.Errorf("%w: bad checksum field", ErrJournalCorrupt)
	}
	body := data[nl+1:]
	if crc32.ChecksumIEEE(body) != want {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrJournalCorrupt)
	}
	ent := &Entry{}
	if err := json.Unmarshal(body, ent); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrJournalCorrupt, err)
	}
	if ent.Committed < 0 || ent.Key == "" {
		return nil, fmt.Errorf("%w: implausible entry", ErrJournalCorrupt)
	}
	return ent, nil
}

// writeFileAtomic is ckpt.WriteFileAtomic for a byte slice, kept local so
// the journal's write path has no callback indirection.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
