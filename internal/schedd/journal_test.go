package schedd

import (
	"context"
	"errors"
	"os"
	"testing"
	"time"
)

// testFP is a fixed fingerprint for journal unit tests.
var testFP = ReqFingerprint{TreeHash: 0xfeed, N: 10, M: 100, Algorithm: "RecExpand"}

// TestJournalRoundTrip: an entry committed is the entry loaded, durable
// across Journal instances sharing the directory (the daemon-restart and
// drain-failover shape).
func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := NewJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := j.Begin(context.Background(), "k1", testFP)
	if err != nil {
		t.Fatal(err)
	}
	if b.Entry != nil {
		t.Fatalf("fresh key has entry %+v", b.Entry)
	}
	want := &Entry{FP: testFP, CkptPath: j.CkptPathFor("k1"), Committed: 42, Complete: false}
	if err := b.Commit(want); err != nil {
		t.Fatal(err)
	}
	b.Close()

	// A second journal over the same directory sees the entry — disk is
	// the source of truth.
	j2, err := NewJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := j2.Begin(context.Background(), "k1", testFP)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	if b2.Entry == nil || b2.Entry.Committed != 42 || b2.Entry.Key != "k1" || b2.Entry.FP != testFP {
		t.Fatalf("reloaded entry = %+v", b2.Entry)
	}
}

// TestJournalConflict: a mismatched fingerprint is ErrKeyConflict and
// releases the key lock (the next correct Begin does not deadlock).
func TestJournalConflict(t *testing.T) {
	j, err := NewJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	b, err := j.Begin(context.Background(), "k", testFP)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(&Entry{FP: testFP}); err != nil {
		t.Fatal(err)
	}
	b.Close()

	other := testFP
	other.M++
	if _, err := j.Begin(context.Background(), "k", other); !errors.Is(err, ErrKeyConflict) {
		t.Fatalf("mismatched Begin err = %v, want ErrKeyConflict", err)
	}
	// The lock was released on the conflict path.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	b2, err := j.Begin(ctx, "k", testFP)
	if err != nil {
		t.Fatalf("post-conflict Begin: %v", err)
	}
	b2.Close()
	if st := j.Stats(); st.Begun != 3 || st.Conflicts != 1 || st.Reused != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestJournalSingleFlight: a second Begin on a held key blocks until the
// holder closes, and a waiter's context expiry abandons the wait cleanly.
func TestJournalSingleFlight(t *testing.T) {
	j, err := NewJournal("") // memory-only: single-flight must hold there too
	if err != nil {
		t.Fatal(err)
	}
	b, err := j.Begin(context.Background(), "k", testFP)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := j.Begin(ctx, "k", testFP); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked Begin err = %v, want deadline exceeded", err)
	}

	got := make(chan error, 1)
	go func() {
		b2, err := j.Begin(context.Background(), "k", testFP)
		if err == nil {
			b2.Close()
		}
		got <- err
	}()
	select {
	case err := <-got:
		t.Fatalf("second Begin returned while the key was held: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	b.Close()
	if err := <-got; err != nil {
		t.Fatalf("Begin after release: %v", err)
	}
}

// TestJournalEntryCodecCorruption: every way an entry's bytes can rot —
// flipped body byte, flipped header byte, bad magic, truncation, raw
// garbage — decodes to ErrJournalCorrupt, never a panic or a wrong entry.
func TestJournalEntryCodecCorruption(t *testing.T) {
	ent := &Entry{Key: "k", FP: testFP, Committed: 7}
	data, err := encodeEntry(ent)
	if err != nil {
		t.Fatal(err)
	}
	back, err := decodeEntry(data)
	if err != nil || back.Key != "k" || back.Committed != 7 || back.FP != testFP {
		t.Fatalf("roundtrip = %+v, %v", back, err)
	}

	mutate := map[string]func([]byte) []byte{
		"flip body byte":   func(d []byte) []byte { d[len(d)-2] ^= 1; return d },
		"flip header byte": func(d []byte) []byte { d[9] ^= 1; return d },
		"bad magic":        func(d []byte) []byte { d[0] = 'X'; return d },
		"truncated":        func(d []byte) []byte { return d[:len(d)/2] },
		"no newline":       func(d []byte) []byte { return []byte("RXJRNL1 deadbeef") },
		"empty":            func(d []byte) []byte { return nil },
	}
	for name, f := range mutate {
		bad := f(append([]byte(nil), data...))
		if _, err := decodeEntry(bad); !errors.Is(err, ErrJournalCorrupt) {
			t.Errorf("%s: err = %v, want ErrJournalCorrupt", name, err)
		}
	}
}

// TestJournalCorruptEntryDropped: Begin over a rotted file counts it,
// removes it, and presents the key as unbound.
func TestJournalCorruptEntryDropped(t *testing.T) {
	dir := t.TempDir()
	j, err := NewJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(j.entryPath("k"), []byte("not a journal entry"), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := j.Begin(context.Background(), "k", testFP)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.Entry != nil {
		t.Fatalf("corrupt entry surfaced as %+v", b.Entry)
	}
	if st := j.Stats(); st.Corrupt != 1 {
		t.Fatalf("stats = %+v, want Corrupt=1", st)
	}
	if _, err := os.Stat(j.entryPath("k")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("corrupt file not dropped: %v", err)
	}
}
