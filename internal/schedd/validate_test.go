package schedd

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// tagged is the validator-exercise struct of the table test: one field per
// rule family, with json names to check wire-name reporting.
type tagged struct {
	Raw    json.RawMessage `json:"raw" validate:"required"`
	Count  int             `json:"count" validate:"min=1,max=10"`
	Uns    uint32          `json:"uns" validate:"max=100"`
	Label  string          `json:"label" validate:"maxlen=4"`
	Mode   string          `json:"mode" validate:"oneof=fast slow"`
	Budget string          `json:"budget" validate:"bytesize"`
}

func valid() tagged {
	return tagged{Raw: json.RawMessage("{}"), Count: 5, Uns: 7, Label: "ok", Mode: "fast", Budget: "1.5GiB"}
}

// TestValidateTable drives each rule through passing and failing values
// and asserts the violation names the JSON field and rule.
func TestValidateTable(t *testing.T) {
	if err := Validate(valid()); err != nil {
		t.Fatalf("valid struct rejected: %v", err)
	}
	v := valid()
	v.Mode = ""
	v.Budget = ""
	if err := Validate(v); err != nil {
		t.Fatalf("empty oneof/bytesize (server default) rejected: %v", err)
	}

	cases := []struct {
		name     string
		mutate   func(*tagged)
		field    string
		rulePart string
	}{
		{"missing required", func(g *tagged) { g.Raw = nil }, "raw", "required"},
		{"below min", func(g *tagged) { g.Count = 0 }, "count", "min=1"},
		{"above max", func(g *tagged) { g.Count = 11 }, "count", "max=10"},
		{"uint above max", func(g *tagged) { g.Uns = 101 }, "uns", "max=100"},
		{"too long", func(g *tagged) { g.Label = "overlong" }, "label", "maxlen=4"},
		{"bad oneof", func(g *tagged) { g.Mode = "warp" }, "mode", "oneof"},
		{"bad bytesize", func(g *tagged) { g.Budget = "-1K" }, "budget", "bytesize"},
		{"fractional no-unit bytesize", func(g *tagged) { g.Budget = "1.5" }, "budget", "bytesize"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := valid()
			tc.mutate(&g)
			err := Validate(&g)
			var verr *ValidationError
			if !errors.As(err, &verr) {
				t.Fatalf("got %v, want ValidationError", err)
			}
			if len(verr.Fields) != 1 {
				t.Fatalf("got %d violations, want 1: %v", len(verr.Fields), verr)
			}
			fe := verr.Fields[0]
			if fe.Field != tc.field || !strings.Contains(fe.Rule, tc.rulePart) {
				t.Fatalf("violation = %+v, want field %q rule ~%q", fe, tc.field, tc.rulePart)
			}
		})
	}
}

// TestValidateAggregates: every violated field is reported at once, so a
// client fixes a bad request in one round trip.
func TestValidateAggregates(t *testing.T) {
	g := tagged{Count: 0, Mode: "warp"} // also missing required raw
	err := Validate(&g)
	var verr *ValidationError
	if !errors.As(err, &verr) {
		t.Fatalf("got %v, want ValidationError", err)
	}
	if len(verr.Fields) != 3 {
		t.Fatalf("got %d violations, want 3: %v", len(verr.Fields), verr)
	}
}

// TestValidateUnknownRule: a typoed tag must fail validation loudly, never
// silently validate nothing.
func TestValidateUnknownRule(t *testing.T) {
	type typo struct {
		X int `validate:"atleast=3"`
	}
	err := Validate(typo{X: 5})
	var verr *ValidationError
	if !errors.As(err, &verr) {
		t.Fatalf("unknown rule passed validation: %v", err)
	}
	if !strings.Contains(verr.Error(), "unknown validation rule") {
		t.Fatalf("unknown-rule violation reads %q", verr.Error())
	}
}

// TestValidateNonStruct pins the misuse errors: nil pointers and
// non-struct values are rejected, not reflected into a panic.
func TestValidateNonStruct(t *testing.T) {
	if err := Validate((*tagged)(nil)); err == nil {
		t.Fatal("nil pointer validated")
	}
	if err := Validate(42); err == nil {
		t.Fatal("non-struct validated")
	}
}
