package schedd

import (
	"fmt"
	"reflect"
	"strconv"
	"strings"

	"repro/internal/core"
)

// The request-schema validator: a small struct-tag interpreter in the
// spirit of the json-validation/tageval idiom. Fields of a request struct
// declare their constraints in a `validate:"..."` tag, rules separated by
// commas:
//
//	required            non-zero value (non-empty for strings/slices)
//	min=N, max=N        numeric bounds (ints and uints)
//	maxlen=N            length bound for strings/slices
//	oneof=a b c         string membership; the empty string is allowed
//	                    (it means "use the server default") — combine
//	                    with required to forbid it
//	bytesize            string must parse with core.ParseByteSize; the
//	                    empty string is allowed (server default)
//
// Validation failures are field-keyed FieldErrors, so the 400 body names
// the offending JSON field and rule rather than a bare "bad request".

// FieldError is one violated rule on one request field.
type FieldError struct {
	// Field is the field's JSON name (falling back to the Go name).
	Field string
	// Rule is the violated rule as written in the tag.
	Rule string
	// Detail says what the value looked like instead.
	Detail string
}

// Error formats the violation with its field and rule.
func (e *FieldError) Error() string {
	return fmt.Sprintf("field %q violates %q: %s", e.Field, e.Rule, e.Detail)
}

// ValidationError aggregates every violated rule of one request, so a
// client fixing a request sees all problems at once.
type ValidationError struct {
	// Fields lists the violations in field order.
	Fields []*FieldError
}

// Error joins the per-field violations.
func (e *ValidationError) Error() string {
	msgs := make([]string, len(e.Fields))
	for i, f := range e.Fields {
		msgs[i] = f.Error()
	}
	return "schedd: invalid request: " + strings.Join(msgs, "; ")
}

// Validate checks every `validate` tag of the struct v (or pointer to
// struct) and returns a *ValidationError listing all violations, or nil.
// Unknown rules are reported as violations of themselves: a typo in a tag
// must fail loudly in tests, not silently validate nothing.
func Validate(v any) error {
	rv := reflect.ValueOf(v)
	for rv.Kind() == reflect.Pointer {
		if rv.IsNil() {
			return &ValidationError{Fields: []*FieldError{{Field: "<root>", Rule: "required", Detail: "nil request"}}}
		}
		rv = rv.Elem()
	}
	if rv.Kind() != reflect.Struct {
		return fmt.Errorf("schedd: Validate wants a struct, got %T", v)
	}
	var verr ValidationError
	rt := rv.Type()
	for i := 0; i < rt.NumField(); i++ {
		sf := rt.Field(i)
		tag := sf.Tag.Get("validate")
		if tag == "" || !sf.IsExported() {
			continue
		}
		name := jsonName(sf)
		fv := rv.Field(i)
		for _, rule := range strings.Split(tag, ",") {
			if fe := checkRule(name, fv, strings.TrimSpace(rule)); fe != nil {
				verr.Fields = append(verr.Fields, fe)
			}
		}
	}
	if len(verr.Fields) > 0 {
		return &verr
	}
	return nil
}

// jsonName resolves the wire name of a struct field: the json tag's first
// element, or the Go name.
func jsonName(sf reflect.StructField) string {
	if tag, ok := sf.Tag.Lookup("json"); ok {
		if n, _, _ := strings.Cut(tag, ","); n != "" && n != "-" {
			return n
		}
	}
	return sf.Name
}

// checkRule evaluates one rule against one field value, returning the
// violation or nil.
func checkRule(name string, fv reflect.Value, rule string) *FieldError {
	key, arg, hasArg := strings.Cut(rule, "=")
	switch key {
	case "required":
		if fv.IsZero() {
			return &FieldError{Field: name, Rule: rule, Detail: "missing or empty"}
		}
	case "min", "max":
		if !hasArg {
			return &FieldError{Field: name, Rule: rule, Detail: "rule needs an argument"}
		}
		bound, err := strconv.ParseInt(arg, 10, 64)
		if err != nil {
			return &FieldError{Field: name, Rule: rule, Detail: "unparseable bound in tag"}
		}
		n, ok := intValue(fv)
		if !ok {
			return &FieldError{Field: name, Rule: rule, Detail: fmt.Sprintf("rule applies to integers, field is %s", fv.Kind())}
		}
		if key == "min" && n < bound {
			return &FieldError{Field: name, Rule: rule, Detail: fmt.Sprintf("%d is below the minimum %d", n, bound)}
		}
		if key == "max" && n > bound {
			return &FieldError{Field: name, Rule: rule, Detail: fmt.Sprintf("%d is above the maximum %d", n, bound)}
		}
	case "maxlen":
		if !hasArg {
			return &FieldError{Field: name, Rule: rule, Detail: "rule needs an argument"}
		}
		bound, err := strconv.Atoi(arg)
		if err != nil {
			return &FieldError{Field: name, Rule: rule, Detail: "unparseable bound in tag"}
		}
		switch fv.Kind() {
		case reflect.String, reflect.Slice, reflect.Array, reflect.Map:
			if fv.Len() > bound {
				return &FieldError{Field: name, Rule: rule, Detail: fmt.Sprintf("length %d exceeds %d", fv.Len(), bound)}
			}
		default:
			return &FieldError{Field: name, Rule: rule, Detail: fmt.Sprintf("rule applies to strings/slices, field is %s", fv.Kind())}
		}
	case "oneof":
		if fv.Kind() != reflect.String {
			return &FieldError{Field: name, Rule: rule, Detail: fmt.Sprintf("rule applies to strings, field is %s", fv.Kind())}
		}
		s := fv.String()
		if s == "" {
			return nil // empty means "server default"; `required` forbids it
		}
		for _, opt := range strings.Fields(arg) {
			if s == opt {
				return nil
			}
		}
		return &FieldError{Field: name, Rule: rule, Detail: fmt.Sprintf("%q is not one of [%s]", s, arg)}
	case "bytesize":
		if fv.Kind() != reflect.String {
			return &FieldError{Field: name, Rule: rule, Detail: fmt.Sprintf("rule applies to strings, field is %s", fv.Kind())}
		}
		if fv.String() == "" {
			return nil // empty means "server default"; `required` forbids it
		}
		if _, err := core.ParseByteSize(fv.String()); err != nil {
			return &FieldError{Field: name, Rule: rule, Detail: err.Error()}
		}
	default:
		return &FieldError{Field: name, Rule: rule, Detail: "unknown validation rule"}
	}
	return nil
}

// intValue widens any integer kind to int64 for the bound rules.
func intValue(fv reflect.Value) (int64, bool) {
	switch fv.Kind() {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return fv.Int(), true
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		u := fv.Uint()
		if u > 1<<62 {
			return 0, false
		}
		return int64(u), true
	default:
		return 0, false
	}
}
