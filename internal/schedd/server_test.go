package schedd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/randtree"
	"repro/internal/tree"
)

// quietLogger drops the per-request lines so test output stays readable.
func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// newTestServer builds a Server with test-friendly defaults over cfg.
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Budget == 0 {
		cfg.Budget = 256 << 20
	}
	if cfg.Logger == nil {
		cfg.Logger = quietLogger()
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// testInstance synthesizes an I/O-bound instance: random binary tree, the
// paper's mid bound.
func testInstance(t *testing.T, n int, seed int64) (*tree.Tree, int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for {
		tr := randtree.Synth(n, rng)
		in := core.NewInstance("test", tr)
		if in.NeedsIO() {
			return tr, in.M(core.BoundMid)
		}
	}
}

// postJSON builds the JSON request body for tr with the given overrides.
func postJSON(t *testing.T, tr *tree.Tree, mutate func(*Request)) *bytes.Reader {
	t.Helper()
	raw, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Tree: raw, Mid: true}
	if mutate != nil {
		mutate(&req)
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(body)
}

// expectedStream renders what the serving path must produce for (alg, t,
// M): the tree.WriteSchedule bytes of a direct engine stream — the same
// bytes `sched -stream-sched` writes.
func expectedStream(t *testing.T, alg core.Algorithm, tr *tree.Tree, M int64) []byte {
	t.Helper()
	var buf bytes.Buffer
	rn := core.NewRunner(0)
	if _, err := tree.WriteSchedule(&buf, func(yield func(seg []int) bool) bool {
		_, err := rn.RunStream(alg, tr, M, yield)
		return err == nil
	}); err != nil {
		t.Fatalf("direct stream of %s: %v", alg, err)
	}
	return buf.Bytes()
}

// TestServeByteIdentity is the fidelity contract of the service: over a
// corpus of instances spanning every algorithm, the response body must be
// byte-identical to the direct engine stream (and therefore to what
// `sched -stream-sched` writes for the same instance), and the trailers
// must carry the run report.
func TestServeByteIdentity(t *testing.T) {
	corpus := 220
	if testing.Short() {
		corpus = 40
	}
	s := newTestServer(t, Config{})
	h := s.Handler()
	algs := []core.Algorithm{
		core.RecExpand, core.FullRecExpand, core.OptMinMem,
		core.PostOrderMinIO, core.PostOrderMinMem, core.NaturalPostOrder,
	}
	rng := rand.New(rand.NewSource(41))
	tried := 0
	for trial := 0; tried < corpus; trial++ {
		tr := randtree.Synth(20+rng.Intn(150), rng)
		in := core.NewInstance("corpus", tr)
		if !in.NeedsIO() {
			continue
		}
		alg := algs[tried%len(algs)]
		M := in.M(core.BoundMid)
		raw, err := json.Marshal(tr)
		if err != nil {
			t.Fatal(err)
		}
		body, err := json.Marshal(Request{Tree: raw, M: M, Algorithm: string(alg)})
		if err != nil {
			t.Fatal(err)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("POST", "/schedule", bytes.NewReader(body)))
		if rec.Code != http.StatusOK {
			t.Fatalf("trial %d (%s): status %d: %s", tried, alg, rec.Code, rec.Body.String())
		}
		want := expectedStream(t, alg, tr, M)
		if !bytes.Equal(rec.Body.Bytes(), want) {
			t.Fatalf("trial %d (%s): served stream diverges from the direct engine stream", tried, alg)
		}
		// The stream itself must pass the strict reader: sealed trailer,
		// a valid traversal of the tree.
		if _, err := tree.ReadScheduleStrict(bytes.NewReader(rec.Body.Bytes())); err != nil {
			t.Fatalf("trial %d (%s): served stream not strict-readable: %v", tried, alg, err)
		}
		tried++
	}
	if st := s.Broker().Stats(); st.Used != 0 || st.Leases != 0 {
		t.Fatalf("corpus run leaked leases: %+v", st)
	}
	if st := s.Stats(); st.Served != int64(corpus) {
		t.Fatalf("served = %d, want %d", st.Served, corpus)
	}
}

// TestServeTextPlain: the text ingest path (treegen format body, query
// scalars) serves the same bytes as the JSON path.
func TestServeTextPlain(t *testing.T) {
	tr, M := testInstance(t, 300, 5)
	s := newTestServer(t, Config{})
	h := s.Handler()

	var text bytes.Buffer
	if err := tr.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", fmt.Sprintf("/schedule?m=%d&algorithm=RecExpand", M), bytes.NewReader(text.Bytes()))
	req.Header.Set("Content-Type", "text/plain")
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("text POST: status %d: %s", rec.Code, rec.Body.String())
	}
	if want := expectedStream(t, core.RecExpand, tr, M); !bytes.Equal(rec.Body.Bytes(), want) {
		t.Fatal("text-path stream diverges from the direct engine stream")
	}
}

// TestServeRejections drives each rejection path and checks its status
// code, cause counter, and that no lease leaks.
func TestServeRejections(t *testing.T) {
	tr, M := testInstance(t, 200, 7)
	raw, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Budget: 1 << 20}) // exactly one minimum lease
	h := s.Handler()

	post := func(body io.Reader, ct string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("POST", "/schedule", body)
		if ct != "" {
			req.Header.Set("Content-Type", ct)
		}
		h.ServeHTTP(rec, req)
		return rec
	}

	// Malformed JSON.
	if rec := post(strings.NewReader("{"), ""); rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed json: %d", rec.Code)
	}
	// Validator rejection, field-keyed.
	if rec := post(strings.NewReader(`{"tree":{},"m":1,"algorithm":"Magic"}`), ""); rec.Code != http.StatusBadRequest || !strings.Contains(rec.Body.String(), `"algorithm"`) {
		t.Fatalf("bad algorithm: %d %q", rec.Code, rec.Body.String())
	}
	// Neither m nor mid.
	if rec := post(bytes.NewReader(mustBody(t, Request{Tree: raw})), ""); rec.Code != http.StatusBadRequest {
		t.Fatalf("no bound: %d", rec.Code)
	}
	// Both m and mid.
	if rec := post(bytes.NewReader(mustBody(t, Request{Tree: raw, M: M, Mid: true})), ""); rec.Code != http.StatusBadRequest {
		t.Fatalf("both bounds: %d", rec.Code)
	}
	// Unsupported content type.
	if rec := post(strings.NewReader("x"), "application/xml"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad content type: %d", rec.Code)
	}
	// Infeasible bound: m below the instance lower bound.
	if rec := post(bytes.NewReader(mustBody(t, Request{Tree: raw, M: 1})), ""); rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("infeasible m: %d", rec.Code)
	}
	// Oversize: a tree whose estimate exceeds the whole budget is 413
	// with the estimate in the body.
	bigTr, _ := testInstance(t, 30000, 11)
	bigRaw, err := json.Marshal(bigTr)
	if err != nil {
		t.Fatal(err)
	}
	rec := post(bytes.NewReader(mustBody(t, Request{Tree: bigRaw, Mid: true})), "")
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize: %d %q", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), fmt.Sprint(EstimateCost(bigTr.N()))) {
		t.Fatalf("oversize body lacks the estimate: %q", rec.Body.String())
	}

	if st := s.Broker().Stats(); st.Used != 0 || st.Leases != 0 {
		t.Fatalf("rejections leaked leases: %+v", st)
	}
	if st := s.Stats(); st.Served != 0 || st.Rejected["invalid"] != 6 || st.Rejected["oversize"] != 1 {
		t.Fatalf("rejection counters = %+v", st)
	}
}

// mustBody marshals a request.
func mustBody(t *testing.T, req Request) []byte {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestOverloadExactAdmission is the acceptance property of admission
// control: with a budget sized for exactly K concurrent minimum leases and
// 2K concurrent fail-fast POSTs, exactly K are served and exactly K get
// 429 — no panic, no deadlock, and the lease accounting returns to zero.
// The testGate hook holds the first K requests with their leases while the
// second wave arrives, so the counts are deterministic.
func TestOverloadExactAdmission(t *testing.T) {
	const K = 3
	tr, _ := testInstance(t, 200, 13) // cost = the 1 MiB floor
	cost := EstimateCost(tr.N())
	s := newTestServer(t, Config{Budget: K * cost, Engines: K})

	arrived := make(chan struct{}, 2*K)
	release := make(chan struct{})
	s.testGate = func() {
		arrived <- struct{}{}
		<-release
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	body := mustBody(t, Request{Tree: mustRaw(t, tr), Mid: true}) // wait_ms=0: fail fast
	statuses := make(chan int, 2*K)
	bodies := make(chan []byte, 2*K)
	var wg sync.WaitGroup
	post := func() {
		defer wg.Done()
		resp, err := http.Post(srv.URL+"/schedule", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Errorf("post: %v", err)
			statuses <- -1
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		statuses <- resp.StatusCode
		if resp.StatusCode == http.StatusOK {
			bodies <- b
		}
		if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
			t.Error("429 without Retry-After")
		}
	}
	// Wave 1: K requests; wait until all K hold their leases at the gate.
	wg.Add(K)
	for i := 0; i < K; i++ {
		go post()
	}
	for i := 0; i < K; i++ {
		select {
		case <-arrived:
		case <-time.After(30 * time.Second):
			t.Fatal("gate never saw K lease holders")
		}
	}
	st := s.Broker().Stats()
	if st.Used != K*cost || st.Leases != K {
		t.Fatalf("gated broker state = %+v, want %d leases of %d", st, K, cost)
	}
	// Wave 2: K more fail-fast requests against the pinned budget; each
	// must resolve to 429 before the gate opens (their statuses arrive
	// while every lease is still held).
	wg.Add(K)
	for i := 0; i < K; i++ {
		go post()
	}
	var ok, busy, other int
	count := func(status int) {
		switch status {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			busy++
		default:
			other++
		}
	}
	for i := 0; i < K; i++ {
		count(<-statuses)
	}
	if busy != K {
		t.Fatalf("shed wave against a pinned budget: %d ok, %d busy, %d other; want 0/%d/0", ok, busy, other, K)
	}
	close(release)
	wg.Wait()
	for i := 0; i < K; i++ {
		count(<-statuses)
	}
	if ok != K || busy != K || other != 0 {
		t.Fatalf("admission outcomes: %d ok, %d busy, %d other; want %d/%d/0", ok, busy, other, K, K)
	}
	// Served schedules are complete and identical across the winners.
	want := <-bodies
	if !strings.Contains(string(want), "# end count=") {
		t.Fatal("served stream is not sealed")
	}
	for i := 1; i < K; i++ {
		if !bytes.Equal(<-bodies, want) {
			t.Fatal("winners served divergent streams")
		}
	}
	// The no-leak invariant: accounting back to zero.
	st = s.Broker().Stats()
	if st.Used != 0 || st.Leases != 0 || st.Waiting != 0 {
		t.Fatalf("overload leaked leases: %+v", st)
	}
	if sst := s.Stats(); sst.Served != K || sst.Rejected["busy"] != K {
		t.Fatalf("serving counters = %+v", sst)
	}
}

// mustRaw marshals a tree to its JSON wire form.
func mustRaw(t *testing.T, tr *tree.Tree) json.RawMessage {
	t.Helper()
	raw, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestWaitingAdmissionServesAll: with wait_ms allowed, an overload wave
// queues instead of shedding — every request is eventually served, FIFO.
func TestWaitingAdmissionServesAll(t *testing.T) {
	const K = 2
	tr, _ := testInstance(t, 200, 17)
	cost := EstimateCost(tr.N())
	s := newTestServer(t, Config{Budget: K * cost, Engines: K})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	body := mustBody(t, Request{Tree: mustRaw(t, tr), Mid: true, WaitMS: 10000})
	var wg sync.WaitGroup
	errs := make(chan error, 3*K)
	for i := 0; i < 3*K; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(srv.URL+"/schedule", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("waiting request failed: %v", err)
	}
	if st := s.Broker().Stats(); st.Used != 0 || st.Leases != 0 {
		t.Fatalf("waiting wave leaked leases: %+v", st)
	}
}

// TestDrainMidStream is the graceful-shutdown contract: a drain triggered
// while a request streams lets admission close (readyz 503, new POSTs
// 503), cancels the in-flight request after the grace period at an engine
// quiescent point, seals its stream with the truncation trailer, leaves a
// resumable checkpoint behind, and returns with zero leases outstanding.
func TestDrainMidStream(t *testing.T) {
	ckptDir := t.TempDir()
	tr, M := testInstance(t, 20000, 19)
	s := newTestServer(t, Config{
		CheckpointDir: ckptDir,
		DrainGrace:    10 * time.Millisecond,
	})
	atSegment := make(chan struct{})
	holdSegment := make(chan struct{})
	var once sync.Once
	s.testSegment = func(seg int) {
		if seg == 2 {
			once.Do(func() {
				close(atSegment)
				<-holdSegment
			})
		}
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	type result struct {
		status int
		body   []byte
		err    error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Post(srv.URL+"/schedule", "application/json",
			bytes.NewReader(mustBody(t, Request{Tree: mustRaw(t, tr), M: M})))
		if err != nil {
			done <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		done <- result{status: resp.StatusCode, body: b, err: err}
	}()

	<-atSegment // the request is mid-stream, holding its lease

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	// Admission must close immediately, before in-flight work resolves.
	waitFor(t, func() bool { return s.Stats().Draining })
	if resp, err := http.Get(srv.URL + "/readyz"); err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}
	resp, err := http.Post(srv.URL+"/schedule", "application/json",
		bytes.NewReader(mustBody(t, Request{Tree: mustRaw(t, tr), M: M})))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST while draining: %d", resp.StatusCode)
	}
	// healthz stays green through the whole drain.
	if resp, err := http.Get(srv.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while draining: %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}

	// Wait for the grace period to expire and the hard cancel to land on
	// the in-flight request's context, then release the held segment: the
	// engine resumes, observes the cancellation at its next quiescent
	// point, truncates the stream, and flushes the checkpoint.
	waitFor(t, func() bool { return s.hardCtx.Err() != nil })
	close(holdSegment)
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	res := <-done
	if res.err != nil {
		t.Fatalf("draining client: %v", res.err)
	}
	if res.status != http.StatusOK {
		t.Fatalf("draining client status: %d", res.status)
	}
	if !strings.Contains(string(res.body), "# truncated count=") {
		t.Fatalf("drained stream is not sealed with a truncation trailer:\n...%q", tail(res.body, 80))
	}

	// The in-flight request left a resumable checkpoint at the drain
	// point: committed, finish-phase, emission progress recorded.
	ents, err := os.ReadDir(ckptDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("checkpoint dir holds %d files, want 1: %v", len(ents), ents)
	}
	st, err := ckpt.ReadFile(filepath.Join(ckptDir, ents[0].Name()))
	if err != nil {
		t.Fatalf("reading drained checkpoint: %v", err)
	}
	if st.Phase != ckpt.PhaseFinish || st.EmittedIDs == 0 {
		t.Fatalf("drained checkpoint phase=%v emitted=%d", st.Phase, st.EmittedIDs)
	}

	if bst := s.Broker().Stats(); bst.Used != 0 || bst.Leases != 0 {
		t.Fatalf("drain leaked leases: %+v", bst)
	}
}

// TestServedRequestRemovesCheckpoint: a request that completes normally
// leaves no checkpoint file behind.
func TestServedRequestRemovesCheckpoint(t *testing.T) {
	ckptDir := t.TempDir()
	tr, M := testInstance(t, 2000, 23)
	s := newTestServer(t, Config{CheckpointDir: ckptDir})
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/schedule",
		bytes.NewReader(mustBody(t, Request{Tree: mustRaw(t, tr), M: M}))))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	ents, err := os.ReadDir(ckptDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("served request left checkpoints: %v", ents)
	}
}

// TestStatzEndpoint: the counters round-trip as JSON.
func TestStatzEndpoint(t *testing.T) {
	tr, M := testInstance(t, 300, 29)
	s := newTestServer(t, Config{})
	h := s.Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/schedule",
		bytes.NewReader(mustBody(t, Request{Tree: mustRaw(t, tr), M: M}))))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/statz", nil))
	var statz struct {
		Broker  BrokerStats  `json:"broker"`
		Serving ServingStats `json:"serving"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &statz); err != nil {
		t.Fatalf("statz decode: %v", err)
	}
	if statz.Serving.Served != 1 || statz.Broker.Granted != 1 || statz.Broker.Used != 0 {
		t.Fatalf("statz = %+v", statz)
	}
}

// waitFor polls cond to true within a bounded window.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// tail returns the last n bytes of b for failure messages.
func tail(b []byte, n int) []byte {
	if len(b) <= n {
		return b
	}
	return b[len(b)-n:]
}
