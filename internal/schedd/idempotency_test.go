package schedd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/tree"
)

// keyedBody builds a JSON request body for tr with an idempotency key and
// resume offset.
func keyedBody(t *testing.T, tr *tree.Tree, M int64, key string, resume int64) []byte {
	t.Helper()
	return mustBody(t, Request{
		Tree: mustRaw(t, tr), M: M,
		IdempotencyKey: key, ResumeFrom: resume,
	})
}

// TestIdempotentResumeByteIdentity is the exactly-once contract end to
// end, without a client library: a keyed request is torn mid-stream by a
// client disconnect, the partial body is trimmed to its trusted prefix
// (RepairSchedule), and a re-POST with the same key and resume_from set
// to the verified count returns exactly the missing tail — prefix +
// continuation reassemble byte-identically to an uninterrupted stream,
// with the second run resuming the first one's flushed checkpoint instead
// of recomputing.
func TestIdempotentResumeByteIdentity(t *testing.T) {
	ckptDir := t.TempDir()
	tr, M := testInstance(t, 20000, 43)
	want := expectedStream(t, core.RecExpand, tr, M)
	s := newTestServer(t, Config{CheckpointDir: ckptDir})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	const key = "resume-bytes-1"

	// First attempt: read a mid-stream prefix, then vanish.
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", srv.URL+"/schedule",
		bytes.NewReader(keyedBody(t, tr, M, key, 0)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first attempt status %d", resp.StatusCode)
	}
	prefix := make([]byte, 16<<10)
	n, _ := io.ReadFull(resp.Body, prefix)
	prefix = prefix[:n]
	cancel()
	resp.Body.Close()
	if n == 0 {
		t.Fatal("read no prefix before disconnecting")
	}

	// The abandoned attempt must settle (journal final commit, checkpoint
	// flush) before the retry observes its state; in production the key
	// lock serializes this, here we also want to assert on the counters.
	waitFor(t, func() bool { st := s.Stats(); return st.InFlight == 0 })

	// Trim to the trusted prefix, exactly as a retrying client would.
	ids, safeOff, complete, err := tree.RepairSchedule(bytes.NewReader(prefix))
	if err != nil {
		t.Fatal(err)
	}
	if complete || ids == 0 {
		t.Fatalf("prefix repair: ids=%d complete=%v", ids, complete)
	}
	trusted := prefix[:safeOff]

	// Second attempt: same key, resume_from = verified ids.
	resp2, err := http.Post(srv.URL+"/schedule", "application/json",
		bytes.NewReader(keyedBody(t, tr, M, key, ids)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	tail2, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("resume attempt status %d: %s", resp2.StatusCode, tail2)
	}

	got := append(append([]byte(nil), trusted...), tail2...)
	if !bytes.Equal(got, want) {
		t.Fatalf("reassembled stream diverges from the uninterrupted one (got %d bytes, want %d)", len(got), len(want))
	}
	if _, err := tree.ReadScheduleStrict(bytes.NewReader(got)); err != nil {
		t.Fatalf("reassembled stream fails the strict reader: %v", err)
	}

	st := s.Stats()
	if st.Resumed == 0 {
		t.Fatalf("no request counted as resumed: %+v", st)
	}
	js := s.journal.Stats()
	if js.Begun != 2 || js.Reused != 1 {
		t.Fatalf("journal stats = %+v, want Begun=2 Reused=1", js)
	}
	// The keyed checkpoint survives success so later retries stay cheap.
	if _, err := os.Stat(s.journal.CkptPathFor(key)); err != nil {
		t.Fatalf("keyed checkpoint missing after completion: %v", err)
	}
}

// TestIdempotentConcurrentRace: two clients sharing one key race their
// POSTs. The key's single-flight lock serializes them into one
// computation chain (the second rides the first one's kept checkpoint),
// and both receive streams byte-identical to the uninterrupted emission.
// Run under -race, this is also the data-race check on the journal.
func TestIdempotentConcurrentRace(t *testing.T) {
	ckptDir := t.TempDir()
	tr, M := testInstance(t, 5000, 47)
	want := expectedStream(t, core.RecExpand, tr, M)
	s := newTestServer(t, Config{CheckpointDir: ckptDir})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	const key = "race-key-1"

	var wg sync.WaitGroup
	bodies := make([][]byte, 2)
	errs := make([]error, 2)
	for i := range bodies {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(srv.URL+"/schedule", "application/json",
				bytes.NewReader(keyedBody(t, tr, M, key, 0)))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			b, err := io.ReadAll(resp.Body)
			if err != nil {
				errs[i] = err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d: %s", resp.StatusCode, b)
				return
			}
			bodies[i] = b
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		if !bytes.Equal(bodies[i], want) {
			t.Fatalf("client %d stream diverges from the uninterrupted one", i)
		}
	}
	js := s.journal.Stats()
	if js.Begun != 2 || js.Reused != 1 || js.Conflicts != 0 {
		t.Fatalf("journal stats = %+v, want Begun=2 Reused=1", js)
	}
	// The loser of the race resumed the winner's finished checkpoint
	// rather than redoing the expansion walk.
	if st := s.Stats(); st.Resumed != 1 {
		t.Fatalf("resumed = %d, want 1 (second request rides the kept checkpoint)", st.Resumed)
	}
}

// TestIdempotentKeyConflict: reusing a key with a different memory bound
// (a different fingerprint) is 409, and the original binding survives.
func TestIdempotentKeyConflict(t *testing.T) {
	tr, M := testInstance(t, 1000, 53)
	s := newTestServer(t, Config{CheckpointDir: t.TempDir()})
	h := s.Handler()
	const key = "conflict-key-1"

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/schedule",
		bytes.NewReader(keyedBody(t, tr, M, key, 0))))
	if rec.Code != http.StatusOK {
		t.Fatalf("first request status %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/schedule",
		bytes.NewReader(keyedBody(t, tr, M+1, key, 0))))
	if rec.Code != http.StatusConflict {
		t.Fatalf("mismatched reuse status %d, want 409: %s", rec.Code, rec.Body.String())
	}
	if js := s.journal.Stats(); js.Conflicts != 1 {
		t.Fatalf("journal stats = %+v, want Conflicts=1", js)
	}
	if st := s.Stats(); st.Rejected["conflict"] != 1 {
		t.Fatalf("rejected = %+v, want conflict=1", st.Rejected)
	}
	// The original fingerprint still serves.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/schedule",
		bytes.NewReader(keyedBody(t, tr, M, key, 0))))
	if rec.Code != http.StatusOK {
		t.Fatalf("original-fingerprint retry status %d", rec.Code)
	}
}

// TestJournalCorruptionRecovers: a byte-flipped journal entry is detected
// by its checksum, dropped, and the request recomputes from scratch —
// never a panic, never a wrong stream.
func TestJournalCorruptionRecovers(t *testing.T) {
	ckptDir := t.TempDir()
	tr, M := testInstance(t, 2000, 59)
	want := expectedStream(t, core.RecExpand, tr, M)
	s := newTestServer(t, Config{CheckpointDir: ckptDir})
	h := s.Handler()
	const key = "corrupt-key-1"

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/schedule",
		bytes.NewReader(keyedBody(t, tr, M, key, 0))))
	if rec.Code != http.StatusOK {
		t.Fatalf("first request status %d", rec.Code)
	}

	// Flip one byte of the entry's JSON body on disk.
	path := s.journal.entryPath(key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/schedule",
		bytes.NewReader(keyedBody(t, tr, M, key, 0))))
	if rec.Code != http.StatusOK {
		t.Fatalf("post-corruption request status %d: %s", rec.Code, rec.Body.String())
	}
	if !bytes.Equal(rec.Body.Bytes(), want) {
		t.Fatal("post-corruption stream diverges from the uninterrupted one")
	}
	if js := s.journal.Stats(); js.Corrupt != 1 {
		t.Fatalf("journal stats = %+v, want Corrupt=1", js)
	}
	// The rewritten entry is valid again.
	if ent, err := s.journal.load(key); err != nil || ent == nil || !ent.Complete {
		t.Fatalf("rewritten entry = %+v, %v", ent, err)
	}
}

// TestRetryAfterEstimate: the 429 Retry-After header is a positive
// integer derived from live queue state, and statz carries the journal
// and queue-depth counters the estimate is built from.
func TestRetryAfterEstimate(t *testing.T) {
	tr, _ := testInstance(t, 200, 61)
	cost := EstimateCost(tr.N())
	s := newTestServer(t, Config{Budget: cost, Engines: 1})
	h := s.Handler()

	hold := make(chan struct{})
	arrived := make(chan struct{}, 1)
	s.testGate = func() {
		arrived <- struct{}{}
		<-hold
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("POST", "/schedule",
			bytes.NewReader(mustBody(t, Request{Tree: mustRaw(t, tr), M: 1 << 40}))))
	}()
	<-arrived // the budget is now fully leased

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/schedule",
		bytes.NewReader(mustBody(t, Request{Tree: mustRaw(t, tr), M: 1 << 40}))))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", rec.Code)
	}
	ra := rec.Header().Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 || secs > 60 {
		t.Fatalf("Retry-After = %q, want an integer in [1, 60]", ra)
	}
	close(hold)
	<-done

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/statz", nil))
	var statz struct {
		Broker  BrokerStats  `json:"broker"`
		Journal JournalStats `json:"journal"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &statz); err != nil {
		t.Fatalf("statz decode: %v", err)
	}
	if statz.Broker.Total != cost {
		t.Fatalf("statz broker = %+v", statz.Broker)
	}
}

// TestResumeFromRequiresKey: a bare resume_from is a 400, not a silent
// partial stream.
func TestResumeFromRequiresKey(t *testing.T) {
	tr, M := testInstance(t, 300, 67)
	s := newTestServer(t, Config{})
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/schedule",
		bytes.NewReader(mustBody(t, Request{Tree: mustRaw(t, tr), M: M, ResumeFrom: 5}))))
	if rec.Code != http.StatusBadRequest || !strings.Contains(rec.Body.String(), "idempotency_key") {
		t.Fatalf("status %d body %q", rec.Code, rec.Body.String())
	}
}

// slowTestWriter makes every Write succeed but take the given duration —
// the trickling-reader shape the wall-clock overrun check exists for.
type slowTestWriter struct {
	delay  time.Duration
	writes int
}

// Write sleeps, then accepts the bytes.
func (sw *slowTestWriter) Write(p []byte) (int, error) {
	time.Sleep(sw.delay)
	sw.writes++
	return len(p), nil
}

// TestDeadlineWriterSealsOnOverrun is the unit contract of the seal
// sentinel: a write that succeeds but overruns the deadline trips the
// seal exactly once, cancels the request context, and keeps forwarding
// later writes (the truncation trailer's path out).
func TestDeadlineWriterSealsOnOverrun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sw := &slowTestWriter{delay: 20 * time.Millisecond}
	dw := &deadlineWriter{
		w:       sw,
		rc:      http.NewResponseController(httptest.NewRecorder()),
		timeout: time.Millisecond,
		cancel:  cancel,
	}
	if _, err := dw.Write([]byte("42\n")); err != nil {
		t.Fatal(err)
	}
	if !dw.sealed {
		t.Fatal("overrun did not seal")
	}
	if ctx.Err() == nil {
		t.Fatal("seal did not cancel the request context")
	}
	// Post-seal writes still forward (trailer path), without re-arming.
	if _, err := dw.Write([]byte("# truncated count=1\n")); err != nil {
		t.Fatal(err)
	}
	if sw.writes != 2 {
		t.Fatalf("forwarded %d writes, want 2", sw.writes)
	}
}

// TestDeadlineWriterDisabled: a zero timeout is a plain pass-through.
func TestDeadlineWriterDisabled(t *testing.T) {
	sw := &slowTestWriter{delay: 5 * time.Millisecond}
	dw := &deadlineWriter{
		w:  sw,
		rc: http.NewResponseController(httptest.NewRecorder()),
		cancel: func() {
			t.Fatal("disabled deadline writer cancelled the request")
		},
	}
	if _, err := dw.Write([]byte("7\n")); err != nil || dw.sealed {
		t.Fatalf("err=%v sealed=%v", err, dw.sealed)
	}
}
