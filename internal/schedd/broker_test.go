package schedd

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestBrokerAccounting pins the no-leak invariant: grants debit, releases
// credit, and after every lease is released — in any order, with Release
// called redundantly — Used is exactly zero.
func TestBrokerAccounting(t *testing.T) {
	b, err := NewBroker(1000)
	if err != nil {
		t.Fatal(err)
	}
	var leases []*Lease
	for _, c := range []int64{100, 300, 600} {
		l, err := b.TryAcquire(c)
		if err != nil {
			t.Fatalf("TryAcquire(%d): %v", c, err)
		}
		leases = append(leases, l)
	}
	st := b.Stats()
	if st.Used != 1000 || st.Leases != 3 || st.PeakUsed != 1000 {
		t.Fatalf("full broker stats = %+v", st)
	}
	if _, err := b.TryAcquire(1); !errors.Is(err, ErrBudgetBusy) {
		t.Fatalf("TryAcquire on a full broker: %v, want ErrBudgetBusy", err)
	}
	// Release out of order, each twice: idempotent.
	for _, l := range []*Lease{leases[1], leases[0], leases[2]} {
		l.Release()
		l.Release()
	}
	st = b.Stats()
	if st.Used != 0 || st.Leases != 0 {
		t.Fatalf("drained broker leaked: %+v", st)
	}
	if st.Granted != 3 || st.Rejected != 1 {
		t.Fatalf("outcome counters = %+v", st)
	}
}

// TestBrokerOversize: a cost beyond the whole budget is rejected with the
// estimate attached regardless of how idle the broker is, on both paths.
func TestBrokerOversize(t *testing.T) {
	b, err := NewBroker(100)
	if err != nil {
		t.Fatal(err)
	}
	var oe *OversizeError
	if _, err := b.TryAcquire(101); !errors.As(err, &oe) {
		t.Fatalf("TryAcquire oversize: %v", err)
	}
	if oe.Cost != 101 || oe.Total != 100 {
		t.Fatalf("oversize report = %+v", oe)
	}
	if _, err := b.Acquire(context.Background(), 101); !errors.As(err, &oe) {
		t.Fatalf("Acquire oversize: %v", err)
	}
	if _, err := b.TryAcquire(0); err == nil {
		t.Fatal("zero-cost lease was granted")
	}
	if _, err := NewBroker(0); err == nil {
		t.Fatal("zero-budget broker was built")
	}
}

// TestBrokerFIFO: waiters are served strictly in arrival order even when
// a later, smaller request would fit sooner — the starvation-freedom
// property of admission.
func TestBrokerFIFO(t *testing.T) {
	b, err := NewBroker(100)
	if err != nil {
		t.Fatal(err)
	}
	l0, err := b.TryAcquire(100)
	if err != nil {
		t.Fatal(err)
	}

	type got struct {
		order int
		l     *Lease
	}
	results := make(chan got, 2)
	go func() {
		// First waiter: wants 80, cannot fit until l0 releases.
		l, err := b.Acquire(context.Background(), 80)
		if err != nil {
			t.Errorf("big waiter: %v", err)
		}
		results <- got{order: 1, l: l}
	}()
	// Ensure the big waiter is registered before the small one arrives.
	for b.Stats().Waiting != 1 {
		time.Sleep(time.Millisecond)
	}
	go func() {
		l, err := b.Acquire(context.Background(), 30)
		if err != nil {
			t.Errorf("small waiter: %v", err)
		}
		results <- got{order: 2, l: l}
	}()
	for b.Stats().Waiting != 2 {
		time.Sleep(time.Millisecond)
	}

	// A fail-fast arrival must not overtake the queue even though 0 bytes
	// are free — and even if bytes were free, waiters go first.
	if _, err := b.TryAcquire(1); !errors.Is(err, ErrBudgetBusy) {
		t.Fatalf("TryAcquire with waiters queued: %v", err)
	}

	// 80+30 > 100: releasing l0 can only admit the head of the queue, so
	// a grant of the small waiter first would be an observable overtake.
	l0.Release()
	first := <-results
	if first.order != 1 {
		t.Fatalf("small waiter overtook the big one")
	}
	first.l.Release()
	second := <-results
	if second.order != 2 {
		t.Fatalf("result order = %d", second.order)
	}
	second.l.Release()
	if st := b.Stats(); st.Used != 0 || st.Leases != 0 || st.Waiting != 0 {
		t.Fatalf("broker leaked after FIFO round: %+v", st)
	}
}

// TestBrokerAcquireTimeout: a waiter whose context expires is rejected as
// ErrBudgetBusy and leaves no trace — no debit, no stuck queue entry
// blocking the next grant.
func TestBrokerAcquireTimeout(t *testing.T) {
	b, err := NewBroker(100)
	if err != nil {
		t.Fatal(err)
	}
	l0, err := b.TryAcquire(100)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := b.Acquire(ctx, 50); !errors.Is(err, ErrBudgetBusy) {
		t.Fatalf("timed-out Acquire: %v, want ErrBudgetBusy", err)
	}
	l0.Release()
	// The abandoned waiter must not absorb the freed budget.
	l, err := b.TryAcquire(100)
	if err != nil {
		t.Fatalf("acquire after abandoned waiter: %v", err)
	}
	l.Release()
	if st := b.Stats(); st.Used != 0 || st.Leases != 0 {
		t.Fatalf("broker leaked after timeout round: %+v", st)
	}
}

// TestBrokerConcurrentStress hammers the broker from many goroutines with
// mixed Try/waiting acquires under -race and asserts the terminal
// accounting: zero used, zero leases, grants+rejections == attempts.
func TestBrokerConcurrentStress(t *testing.T) {
	b, err := NewBroker(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 16
	const perG = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				cost := int64(1+(g*perG+i)%64) << 10
				var l *Lease
				var err error
				if i%2 == 0 {
					l, err = b.TryAcquire(cost)
				} else {
					ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
					l, err = b.Acquire(ctx, cost)
					cancel()
				}
				if err != nil {
					continue
				}
				l.Release()
			}
		}(g)
	}
	wg.Wait()
	st := b.Stats()
	if st.Used != 0 || st.Leases != 0 || st.Waiting != 0 {
		t.Fatalf("stressed broker leaked: %+v", st)
	}
	if st.Granted+st.Rejected != goroutines*perG {
		t.Fatalf("outcomes %d+%d != attempts %d", st.Granted, st.Rejected, goroutines*perG)
	}
}
