package schedd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/tree"
)

// Config carries the serving policy of a Server. Zero fields take the
// documented defaults; Budget is mandatory.
type Config struct {
	// Budget is the global resident-byte budget the lease broker
	// partitions across concurrent requests. Mandatory, must be positive.
	Budget int64
	// Engines bounds concurrent expansions (the core.Runner pool size);
	// 0 means 4.
	Engines int
	// Workers is the per-engine parallelism (core.Runner.Workers); 0
	// auto-selects.
	Workers int
	// MaxTreeBytes bounds the request body; 0 means 64 MiB.
	MaxTreeBytes int64
	// DefaultTimeout bounds a request's run+stream when the client sets
	// no timeout_ms; 0 means 10 minutes.
	DefaultTimeout time.Duration
	// MaxWait caps the client-requested admission wait (wait_ms); 0
	// means 30 seconds.
	MaxWait time.Duration
	// CheckpointDir, when non-empty, arms per-request durable
	// checkpoints (req-<id>.ckpt) for the expansion heuristics, so a
	// drain can cut a request short and leave a resumable file behind.
	CheckpointDir string
	// DrainGrace is how long Drain lets in-flight requests finish before
	// cancelling them; 0 means 5 seconds.
	DrainGrace time.Duration
	// Logger receives one structured line per request; nil means
	// slog.Default().
	Logger *slog.Logger
}

// withDefaults resolves the zero-value policy knobs.
func (c Config) withDefaults() Config {
	if c.Engines == 0 {
		c.Engines = 4
	}
	if c.MaxTreeBytes == 0 {
		c.MaxTreeBytes = 64 << 20
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = 10 * time.Minute
	}
	if c.MaxWait == 0 {
		c.MaxWait = 30 * time.Second
	}
	if c.DrainGrace == 0 {
		c.DrainGrace = 5 * time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// Server is the scheduling service: admission control in front of a
// bounded engine pool, streaming schedules back over HTTP. Construct with
// NewServer, expose via Handler, shut down via Drain.
type Server struct {
	cfg    Config
	broker *Broker
	pool   *enginePool
	log    *slog.Logger

	// hardCtx is cancelled by Drain after the grace period: every
	// in-flight request context is derived from the client context AND
	// this one, so a hard drain stops engines at their next quiescent
	// point (flushing armed checkpoints on the way out).
	hardCtx    context.Context
	hardCancel context.CancelFunc

	nextID atomic.Uint64

	mu       sync.Mutex
	draining bool
	inflight int
	served   int64
	errored  int64
	panics   int64
	rejected map[string]int64

	// testGate, when set, is called while the budget lease is held and
	// before the engine runs — the deterministic overload hook: tests
	// block K requests here with all leases held, fire the next wave,
	// and assert exact admission counts with no scheduling luck involved.
	testGate func()
	// testSegment, when set, is called before each streamed segment is
	// written — the deterministic drain hook: tests hold a request at
	// this engine quiescent point mid-stream, trigger Drain, and release,
	// so truncation and checkpoint flushing are asserted without racing
	// the engine or the socket buffers.
	testSegment func(seg int)
}

// NewServer builds a Server over the given policy.
func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	broker, err := NewBroker(cfg.Budget)
	if err != nil {
		return nil, err
	}
	hardCtx, hardCancel := context.WithCancel(context.Background())
	return &Server{
		cfg:        cfg,
		broker:     broker,
		pool:       newEnginePool(cfg.Engines, cfg.Workers),
		log:        cfg.Logger,
		hardCtx:    hardCtx,
		hardCancel: hardCancel,
		rejected:   make(map[string]int64),
	}, nil
}

// Broker exposes the server's lease broker for inspection (stats and
// accounting assertions).
func (s *Server) Broker() *Broker { return s.broker }

// Handler returns the service's HTTP routes: POST /schedule, GET
// /healthz, GET /readyz, GET /statz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /schedule", s.handleSchedule)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /statz", s.handleStatz)
	return mux
}

// ServingStats is a snapshot of the server's request accounting,
// complementing BrokerStats with outcome counters.
type ServingStats struct {
	// Served counts requests that streamed a complete schedule; Errored
	// counts admitted requests that failed mid-run or mid-stream; Panics
	// counts contained handler panics.
	Served, Errored, Panics int64
	// Rejected counts pre-admission rejections by cause: "busy" (429),
	// "oversize" (413), "invalid" (400/422), "draining" (503),
	// "fault" (injected lease failure, 503).
	Rejected map[string]int64
	// InFlight is the number of requests currently admitted; Draining
	// reports whether admission is closed.
	InFlight int
	// Draining reports whether the server has stopped admitting.
	Draining bool
}

// Stats returns a consistent snapshot of the serving counters.
func (s *Server) Stats() ServingStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	rej := make(map[string]int64, len(s.rejected))
	for k, v := range s.rejected {
		rej[k] = v
	}
	return ServingStats{
		Served: s.served, Errored: s.errored, Panics: s.panics,
		Rejected: rej, InFlight: s.inflight, Draining: s.draining,
	}
}

// reject tallies a pre-admission rejection and writes its status line.
func (s *Server) reject(w http.ResponseWriter, status int, cause, msg string) {
	s.mu.Lock()
	s.rejected[cause]++
	s.mu.Unlock()
	http.Error(w, msg, status)
}

// enter admits one request past the draining gate, or reports failure.
func (s *Server) enter() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.inflight++
	return true
}

// leave retires one admitted request with its outcome.
func (s *Server) leave(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inflight--
	if err != nil {
		s.errored++
	} else {
		s.served++
	}
}

// handleSchedule is the serving path: validate, lease, run, stream. Any
// panic below it — handler bug, engine bug not already contained by the
// expand worker recovery — is caught here and contained to this request.
func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if rec := recover(); rec != nil {
			s.mu.Lock()
			s.panics++
			s.mu.Unlock()
			s.log.Error("schedd: contained handler panic",
				"panic", fmt.Sprint(rec), "stack", string(debug.Stack()))
			// If the schedule stream already started this write is a
			// no-op and the truncated stream tells the client.
			http.Error(w, "internal error", http.StatusInternalServerError)
		}
	}()
	if faultinject.Fire(faultinject.HandlerPanic) {
		panic(faultinject.ErrHandlerPanic)
	}
	defer drainBody(r.Body)

	if !s.enter() {
		s.reject(w, http.StatusServiceUnavailable, "draining", "schedd: draining, not admitting")
		return
	}
	var outcome error
	defer func() { s.leave(outcome) }()
	outcome = s.serve(w, r)
}

// serve runs the admitted request end to end and returns its outcome for
// the serving counters.
func (s *Server) serve(w http.ResponseWriter, r *http.Request) error {
	id := s.nextID.Add(1)
	start := time.Now()

	req, t, err := ParseRequest(r, s.cfg.MaxTreeBytes)
	if err != nil {
		s.reject(w, http.StatusBadRequest, "invalid", err.Error())
		return err
	}
	cost, err := req.leaseCost(t.N())
	if err != nil {
		s.reject(w, http.StatusBadRequest, "invalid", err.Error())
		return err
	}

	// Admission: one lease of cost bytes, waiting at most the declared
	// wait_ms (capped by policy); wait_ms=0 sheds load immediately.
	lease, qwait, err := s.acquire(r.Context(), req, cost)
	if err != nil {
		s.rejectLease(w, err, cost)
		return err
	}
	defer lease.Release()
	if s.testGate != nil {
		s.testGate()
	}

	// The request context: client disconnect, the per-request timeout,
	// and the server's hard-drain signal all cancel the engine at its
	// next quiescent point.
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	stopHard := context.AfterFunc(s.hardCtx, cancel)
	defer stopHard()

	rn, err := s.pool.get(ctx)
	if err != nil {
		err = fmt.Errorf("schedd: waiting for an engine: %w", err)
		s.reject(w, http.StatusServiceUnavailable, "busy", err.Error())
		return err
	}
	defer s.pool.put(rn)
	engineWait := time.Since(start) - qwait

	// Resolve the memory bound inside the lease: the mid bound needs the
	// instance's Liu peak, which is the expensive analysis admission
	// deferred.
	alg := req.algorithm()
	M := req.M
	if req.Mid {
		M = core.NewInstance(req.Name, t).M(core.BoundMid)
	} else if lb := t.MaxWBar(); M < lb {
		err = fmt.Errorf("schedd: m=%d is below the instance lower bound %d (no schedule exists)", M, lb)
		s.reject(w, http.StatusUnprocessableEntity, "invalid", err.Error())
		return err
	}

	rn.CacheBudget = lease.Cost()
	rn.Ctx = ctx
	ckptPath := ""
	if s.cfg.CheckpointDir != "" && (alg == core.RecExpand || alg == core.FullRecExpand) {
		ckptPath = filepath.Join(s.cfg.CheckpointDir, fmt.Sprintf("req-%d.ckpt", id))
		rn.CheckpointPath = ckptPath
	}

	// Commit to 200: everything rejectable is checked; what remains are
	// run/stream failures, reported by the crash-evident trailer of the
	// schedule stream plus the X-Schedd-Error HTTP trailer.
	h := w.Header()
	h.Set("Content-Type", "text/plain; charset=utf-8")
	h.Set("X-Schedd-Request-Id", fmt.Sprint(id))
	h.Set("Trailer", "X-Schedd-Io, X-Schedd-Peak, X-Schedd-Cache-Peak-Bytes, X-Schedd-Error")
	w.WriteHeader(http.StatusOK)

	out := faultinject.NewWriter(&stallWriter{w: w})
	streamStart := time.Now()
	var res *core.Result
	var runErr error
	ids, werr := tree.WriteSchedule(out, func(yield func(seg []int) bool) bool {
		segs := 0
		res, runErr = rn.RunStream(alg, t, M, func(seg []int) bool {
			if s.testSegment != nil {
				segs++
				s.testSegment(segs)
			}
			return yield(seg)
		})
		return runErr == nil
	})
	streamDur := time.Since(streamStart)

	outcome := runErr
	if outcome == nil && werr != nil {
		outcome = werr
	}
	if outcome == nil {
		if res != nil {
			cs := rn.CacheStats()
			h.Set("X-Schedd-Io", fmt.Sprint(res.IO))
			h.Set("X-Schedd-Peak", fmt.Sprint(res.Peak))
			h.Set("X-Schedd-Cache-Peak-Bytes", fmt.Sprint(cs.PeakResidentBytes))
		}
		if ckptPath != "" {
			// A served request needs no resume; only drained ones leave
			// their checkpoint behind.
			_ = os.Remove(ckptPath)
		}
	} else {
		h.Set("X-Schedd-Error", outcome.Error())
	}

	s.log.Info("schedd: request",
		"id", id, "name", req.Name, "n", t.N(), "alg", string(alg), "m", M,
		"lease_bytes", lease.Cost(), "queue_wait_ms", qwait.Milliseconds(),
		"engine_wait_ms", engineWait.Milliseconds(),
		"stream_ms", streamDur.Milliseconds(), "ids", ids,
		"err", errString(outcome))
	return outcome
}

// acquire resolves the request's admission wait policy against the broker
// and reports how long admission queued.
func (s *Server) acquire(ctx context.Context, req *Request, cost int64) (*Lease, time.Duration, error) {
	if req.WaitMS <= 0 {
		l, err := s.broker.TryAcquire(cost)
		return l, 0, err
	}
	wait := time.Duration(req.WaitMS) * time.Millisecond
	if wait > s.cfg.MaxWait {
		wait = s.cfg.MaxWait
	}
	wctx, cancel := context.WithTimeout(ctx, wait)
	defer cancel()
	start := time.Now()
	l, err := s.broker.Acquire(wctx, cost)
	return l, time.Since(start), err
}

// rejectLease maps a failed lease acquisition to its status: 413 for
// oversize (with the estimate attached), 503 for an injected acquisition
// fault, 429 + Retry-After for budget pressure.
func (s *Server) rejectLease(w http.ResponseWriter, err error, cost int64) {
	var oe *OversizeError
	switch {
	case errors.As(err, &oe):
		s.reject(w, http.StatusRequestEntityTooLarge, "oversize",
			fmt.Sprintf("schedd: estimated cost %d bytes exceeds the global budget %d bytes", oe.Cost, oe.Total))
	case errors.Is(err, faultinject.ErrLeaseAcquire):
		s.reject(w, http.StatusServiceUnavailable, "fault", err.Error())
	case errors.Is(err, ErrBudgetBusy):
		w.Header().Set("Retry-After", "1")
		s.reject(w, http.StatusTooManyRequests, "busy",
			fmt.Sprintf("schedd: budget busy for a %d-byte lease, retry later", cost))
	default:
		s.reject(w, http.StatusBadRequest, "invalid", err.Error())
	}
}

// Drain gracefully shuts the service down: stop admitting, let in-flight
// requests finish for the configured grace, then cancel the stragglers so
// checkpoint-armed runs flush a resumable state and the streams seal with
// a truncation trailer. It returns nil once no request is in flight, or
// ctx.Err() if ctx expires first.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	graceDone := time.After(s.cfg.DrainGrace)
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		s.mu.Lock()
		n := s.inflight
		s.mu.Unlock()
		if n == 0 {
			return nil
		}
		select {
		case <-graceDone:
			// Grace expired: cancel every in-flight request context and
			// keep waiting for the engines to reach a quiescent point.
			s.hardCancel()
			graceDone = nil
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// handleHealthz reports process liveness: 200 for as long as the handler
// can run at all, draining included.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	fmt.Fprintln(w, "ok")
}

// handleReadyz reports admission readiness: 503 once draining begins, so
// a load balancer stops routing before the listener closes.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ready")
}

// handleStatz serves the broker and serving counters as JSON.
func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(struct {
		// Broker is the lease accounting; Serving the request outcomes.
		Broker  BrokerStats  `json:"broker"`
		Serving ServingStats `json:"serving"`
	}{s.broker.Stats(), s.Stats()})
}

// stallWriter is the slow-client injection shim of the response path: a
// triggered WriterStall fault delays the write, simulating a client that
// stops reading mid-stream, which must stall only its own request while
// the daemon keeps serving others.
type stallWriter struct {
	w io.Writer
}

// Write delays when the armed WriterStall fault triggers, then forwards.
func (sw *stallWriter) Write(p []byte) (int, error) {
	if faultinject.Fire(faultinject.WriterStall) {
		time.Sleep(100 * time.Millisecond)
	}
	return sw.w.Write(p)
}

// errString renders an outcome for the request log, "" for success.
func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
