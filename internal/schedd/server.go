package schedd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/tree"
)

// Config carries the serving policy of a Server. Zero fields take the
// documented defaults; Budget is mandatory.
type Config struct {
	// Budget is the global resident-byte budget the lease broker
	// partitions across concurrent requests. Mandatory, must be positive.
	Budget int64
	// Engines bounds concurrent expansions (the core.Runner pool size);
	// 0 means 4.
	Engines int
	// Workers is the per-engine parallelism (core.Runner.Workers); 0
	// auto-selects.
	Workers int
	// MaxTreeBytes bounds the request body; 0 means 64 MiB.
	MaxTreeBytes int64
	// DefaultTimeout bounds a request's run+stream when the client sets
	// no timeout_ms; 0 means 10 minutes.
	DefaultTimeout time.Duration
	// MaxWait caps the client-requested admission wait (wait_ms); 0
	// means 30 seconds.
	MaxWait time.Duration
	// CheckpointDir, when non-empty, arms per-request durable
	// checkpoints for the expansion heuristics (req-<id>.ckpt for
	// anonymous requests, key-<hash>.ckpt for idempotent ones), so a
	// drain can cut a request short and leave a resumable file behind.
	// The idempotency journal lives in the same directory; with no
	// directory the journal is memory-only.
	CheckpointDir string
	// WriteTimeout bounds each response write: a client that takes longer
	// than this to absorb a write is sealed — its engine is cancelled at
	// the next quiescent point, the armed checkpoint is flushed, and the
	// stream ends with the truncation trailer — so a stalled reader
	// becomes a resumable request instead of a stuck engine. 0 disables.
	WriteTimeout time.Duration
	// DrainGrace is how long Drain lets in-flight requests finish before
	// cancelling them; 0 means 5 seconds.
	DrainGrace time.Duration
	// Logger receives one structured line per request; nil means
	// slog.Default().
	Logger *slog.Logger
}

// withDefaults resolves the zero-value policy knobs.
func (c Config) withDefaults() Config {
	if c.Engines == 0 {
		c.Engines = 4
	}
	if c.MaxTreeBytes == 0 {
		c.MaxTreeBytes = 64 << 20
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = 10 * time.Minute
	}
	if c.MaxWait == 0 {
		c.MaxWait = 30 * time.Second
	}
	if c.DrainGrace == 0 {
		c.DrainGrace = 5 * time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// Server is the scheduling service: admission control in front of a
// bounded engine pool, streaming schedules back over HTTP. Construct with
// NewServer, expose via Handler, shut down via Drain.
type Server struct {
	cfg     Config
	broker  *Broker
	pool    *enginePool
	journal *Journal
	log     *slog.Logger

	// hardCtx is cancelled by Drain after the grace period: every
	// in-flight request context is derived from the client context AND
	// this one, so a hard drain stops engines at their next quiescent
	// point (flushing armed checkpoints on the way out).
	hardCtx    context.Context
	hardCancel context.CancelFunc

	nextID atomic.Uint64

	mu       sync.Mutex
	draining bool
	inflight int
	served   int64
	errored  int64
	panics   int64
	resumed  int64
	sealed   int64
	rejected map[string]int64
	// ewmaServe is the exponentially-weighted mean duration (seconds) of
	// successfully served requests — the per-round unit of the Retry-After
	// estimate on 429.
	ewmaServe float64

	// testGate, when set, is called while the budget lease is held and
	// before the engine runs — the deterministic overload hook: tests
	// block K requests here with all leases held, fire the next wave,
	// and assert exact admission counts with no scheduling luck involved.
	testGate func()
	// testSegment, when set, is called before each streamed segment is
	// written — the deterministic drain hook: tests hold a request at
	// this engine quiescent point mid-stream, trigger Drain, and release,
	// so truncation and checkpoint flushing are asserted without racing
	// the engine or the socket buffers.
	testSegment func(seg int)
}

// NewServer builds a Server over the given policy.
func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	broker, err := NewBroker(cfg.Budget)
	if err != nil {
		return nil, err
	}
	journal, err := NewJournal(cfg.CheckpointDir)
	if err != nil {
		return nil, err
	}
	hardCtx, hardCancel := context.WithCancel(context.Background())
	return &Server{
		cfg:        cfg,
		broker:     broker,
		pool:       newEnginePool(cfg.Engines, cfg.Workers),
		journal:    journal,
		log:        cfg.Logger,
		hardCtx:    hardCtx,
		hardCancel: hardCancel,
		rejected:   make(map[string]int64),
	}, nil
}

// Broker exposes the server's lease broker for inspection (stats and
// accounting assertions).
func (s *Server) Broker() *Broker { return s.broker }

// Journal exposes the server's idempotency journal for inspection.
func (s *Server) Journal() *Journal { return s.journal }

// Handler returns the service's HTTP routes: POST /schedule, GET
// /healthz, GET /readyz, GET /statz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /schedule", s.handleSchedule)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /statz", s.handleStatz)
	return mux
}

// ServingStats is a snapshot of the server's request accounting,
// complementing BrokerStats with outcome counters.
type ServingStats struct {
	// Served counts requests that streamed a complete schedule; Errored
	// counts admitted requests that failed mid-run or mid-stream; Panics
	// counts contained handler panics.
	Served, Errored, Panics int64
	// Resumed counts requests that continued earlier work (a non-zero
	// resume_from or a validated keyed checkpoint); Sealed counts streams
	// cut short by the per-write deadline (slow-client protection).
	Resumed, Sealed int64
	// Rejected counts pre-admission rejections by cause: "busy" (429),
	// "oversize" (413), "invalid" (400/422), "draining" (503),
	// "conflict" (idempotency key reuse, 409), "fault" (injected lease
	// failure, 503).
	Rejected map[string]int64
	// InFlight is the number of requests currently admitted; Draining
	// reports whether admission is closed.
	InFlight int
	// Draining reports whether the server has stopped admitting.
	Draining bool
}

// Stats returns a consistent snapshot of the serving counters.
func (s *Server) Stats() ServingStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	rej := make(map[string]int64, len(s.rejected))
	for k, v := range s.rejected {
		rej[k] = v
	}
	return ServingStats{
		Served: s.served, Errored: s.errored, Panics: s.panics,
		Resumed: s.resumed, Sealed: s.sealed,
		Rejected: rej, InFlight: s.inflight, Draining: s.draining,
	}
}

// reject tallies a pre-admission rejection and writes its status line.
func (s *Server) reject(w http.ResponseWriter, status int, cause, msg string) {
	s.mu.Lock()
	s.rejected[cause]++
	s.mu.Unlock()
	http.Error(w, msg, status)
}

// enter admits one request past the draining gate, or reports failure.
func (s *Server) enter() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.inflight++
	return true
}

// leave retires one admitted request with its outcome.
func (s *Server) leave(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inflight--
	if err != nil {
		s.errored++
	} else {
		s.served++
	}
}

// handleSchedule is the serving path: validate, lease, run, stream. Any
// panic below it — handler bug, engine bug not already contained by the
// expand worker recovery — is caught here and contained to this request.
func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if rec := recover(); rec != nil {
			s.mu.Lock()
			s.panics++
			s.mu.Unlock()
			s.log.Error("schedd: contained handler panic",
				"panic", fmt.Sprint(rec), "stack", string(debug.Stack()))
			// If the schedule stream already started this write is a
			// no-op and the truncated stream tells the client.
			http.Error(w, "internal error", http.StatusInternalServerError)
		}
	}()
	if faultinject.Fire(faultinject.HandlerPanic) {
		panic(faultinject.ErrHandlerPanic)
	}
	defer drainBody(r.Body)

	if !s.enter() {
		s.reject(w, http.StatusServiceUnavailable, "draining", "schedd: draining, not admitting")
		return
	}
	var outcome error
	defer func() { s.leave(outcome) }()
	outcome = s.serve(w, r)
}

// serve runs the admitted request end to end and returns its outcome for
// the serving counters.
func (s *Server) serve(w http.ResponseWriter, r *http.Request) error {
	id := s.nextID.Add(1)
	start := time.Now()

	req, t, err := ParseRequest(r, s.cfg.MaxTreeBytes)
	if err != nil {
		s.reject(w, http.StatusBadRequest, "invalid", err.Error())
		return err
	}
	cost, err := req.leaseCost(t.N())
	if err != nil {
		s.reject(w, http.StatusBadRequest, "invalid", err.Error())
		return err
	}

	// Admission: one lease of cost bytes, waiting at most the declared
	// wait_ms (capped by policy); wait_ms=0 sheds load immediately.
	lease, qwait, err := s.acquire(r.Context(), req, cost)
	if err != nil {
		s.rejectLease(w, err, cost)
		return err
	}
	defer lease.Release()
	if s.testGate != nil {
		s.testGate()
	}

	// The request context: client disconnect, the per-request timeout,
	// the server's hard-drain signal and the write-deadline seal all
	// cancel the engine at its next quiescent point.
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	stopHard := context.AfterFunc(s.hardCtx, cancel)
	defer stopHard()

	// Resolve the algorithm and memory bound inside the lease: the mid
	// bound needs the instance's Liu peak, which is the expensive analysis
	// admission deferred — and the idempotency fingerprint is over the
	// RESOLVED request, so resolution must precede the journal binding.
	alg := req.algorithm()
	M := req.M
	if req.Mid {
		M = core.NewInstance(req.Name, t).M(core.BoundMid)
	} else if lb := t.MaxWBar(); M < lb {
		err = fmt.Errorf("schedd: m=%d is below the instance lower bound %d (no schedule exists)", M, lb)
		s.reject(w, http.StatusUnprocessableEntity, "invalid", err.Error())
		return err
	}
	ckptArmed := s.cfg.CheckpointDir != "" && (alg == core.RecExpand || alg == core.FullRecExpand)

	// Idempotency binding: claim the key (single-flight — a concurrent
	// duplicate waits here and then observes this attempt's journal entry
	// and checkpoint), verify the fingerprint, and durably record the
	// binding BEFORE any schedule byte is written, so a kill mid-stream
	// leaves a resumable record behind.
	keyed := req.IdempotencyKey != ""
	var bind *Binding
	var fp ReqFingerprint
	var skip int64
	ckptPath := ""
	resumeFrom := ""
	if keyed {
		fp = ReqFingerprint{
			TreeHash:  ckpt.HashTree(t.Parents(), t.Weights()),
			N:         int64(t.N()),
			M:         M,
			Algorithm: string(alg),
		}
		bind, err = s.journal.Begin(ctx, req.IdempotencyKey, fp)
		if err != nil {
			if errors.Is(err, ErrKeyConflict) {
				s.reject(w, http.StatusConflict, "conflict", err.Error())
			} else {
				s.reject(w, http.StatusServiceUnavailable, "busy", err.Error())
			}
			return err
		}
		defer bind.Close()
		skip = req.ResumeFrom
		if ckptArmed {
			// Keyed requests share one stable checkpoint path across
			// attempts, and the file is validated against the fingerprint
			// BEFORE headers commit: a stale or corrupt checkpoint must
			// degrade to a fresh computation here, never to an engine
			// mismatch error after the 200 is on the wire.
			ckptPath = s.journal.CkptPathFor(req.IdempotencyKey)
			if preflightCkpt(ckptPath, fp, alg) {
				resumeFrom = ckptPath
			}
		}
		ent := &Entry{FP: fp, CkptPath: ckptPath}
		if bind.Entry != nil {
			ent.Committed = bind.Entry.Committed
			ent.Complete = bind.Entry.Complete
		}
		if err := bind.Commit(ent); err != nil {
			err = fmt.Errorf("schedd: recording journal entry: %w", err)
			s.reject(w, http.StatusServiceUnavailable, "busy", err.Error())
			return err
		}
	} else if ckptArmed {
		ckptPath = filepath.Join(s.cfg.CheckpointDir, fmt.Sprintf("req-%d.ckpt", id))
	}
	resumed := skip > 0 || resumeFrom != ""
	if resumed {
		s.mu.Lock()
		s.resumed++
		s.mu.Unlock()
	}

	rn, err := s.pool.get(ctx)
	if err != nil {
		err = fmt.Errorf("schedd: waiting for an engine: %w", err)
		s.reject(w, http.StatusServiceUnavailable, "busy", err.Error())
		return err
	}
	defer s.pool.put(rn)
	engineWait := time.Since(start) - qwait

	rn.CacheBudget = lease.Cost()
	rn.Ctx = ctx
	rn.CheckpointPath = ckptPath
	rn.ResumeFrom = resumeFrom

	// Commit to 200: everything rejectable is checked; what remains are
	// run/stream failures, reported by the crash-evident trailer of the
	// schedule stream plus the X-Schedd-Error HTTP trailer.
	h := w.Header()
	h.Set("Content-Type", "text/plain; charset=utf-8")
	h.Set("X-Schedd-Request-Id", fmt.Sprint(id))
	h.Set("Trailer", "X-Schedd-Io, X-Schedd-Peak, X-Schedd-Cache-Peak-Bytes, X-Schedd-Error")
	w.WriteHeader(http.StatusOK)

	// The response write stack, innermost first: the real writer, the
	// WriterStall/WriterIO fault shims, then the write-deadline sentinel
	// that turns a stalled reader into a sealed, resumable request.
	dw := &deadlineWriter{
		w:       faultinject.NewWriter(&stallWriter{w: w}),
		rc:      http.NewResponseController(w),
		timeout: s.cfg.WriteTimeout,
		cancel:  cancel,
	}
	streamStart := time.Now()
	var res *core.Result
	var runErr error
	ids, werr := tree.WriteScheduleAt(dw, skip, func(yield func(seg []int) bool) bool {
		segs := 0
		res, runErr = rn.RunStream(alg, t, M, func(seg []int) bool {
			if s.testSegment != nil {
				segs++
				s.testSegment(segs)
			}
			return yield(seg)
		})
		return runErr == nil
	})
	streamDur := time.Since(streamStart)

	outcome := runErr
	if outcome == nil && werr != nil {
		outcome = werr
	}
	if dw.sealed {
		s.mu.Lock()
		s.sealed++
		s.mu.Unlock()
		// A seal that landed after the stream completed did no harm: the
		// client has every byte. Only an interrupted stream reports it.
		if outcome != nil {
			outcome = fmt.Errorf("schedd: stream sealed after the %v write deadline: %w", s.cfg.WriteTimeout, outcome)
		}
	}
	if outcome == nil {
		if res != nil {
			cs := rn.CacheStats()
			h.Set("X-Schedd-Io", fmt.Sprint(res.IO))
			h.Set("X-Schedd-Peak", fmt.Sprint(res.Peak))
			h.Set("X-Schedd-Cache-Peak-Bytes", fmt.Sprint(cs.PeakResidentBytes))
		}
		if ckptPath != "" && !keyed {
			// A served anonymous request needs no resume; keyed requests
			// KEEP their checkpoint (in its finished phase), so a retry of
			// the same key re-emits without redoing the expansion walk.
			_ = os.Remove(ckptPath)
		}
		s.mu.Lock()
		d := time.Since(start).Seconds()
		if s.ewmaServe == 0 {
			s.ewmaServe = d
		} else {
			s.ewmaServe = 0.8*s.ewmaServe + 0.2*d
		}
		s.mu.Unlock()
	} else {
		h.Set("X-Schedd-Error", outcome.Error())
	}
	if keyed {
		// Final journal commit: the absolute emitted count (advisory —
		// the client's RepairSchedule prefix is the real resume cursor)
		// and completeness. A prior attempt's completeness is never
		// regressed; emission is deterministic, so the totals agree.
		fin := &Entry{FP: fp, CkptPath: ckptPath, Committed: skip + ids, Complete: outcome == nil}
		if bind.Entry != nil && bind.Entry.Complete {
			fin.Complete = true
			if fin.Committed < bind.Entry.Committed {
				fin.Committed = bind.Entry.Committed
			}
		}
		_ = bind.Commit(fin)
	}

	s.log.Info("schedd: request",
		"id", id, "name", req.Name, "n", t.N(), "alg", string(alg), "m", M,
		"lease_bytes", lease.Cost(), "queue_wait_ms", qwait.Milliseconds(),
		"engine_wait_ms", engineWait.Milliseconds(),
		"stream_ms", streamDur.Milliseconds(), "ids", ids,
		"key", req.IdempotencyKey, "skip", skip, "resumed", resumed,
		"sealed", dw.sealed, "err", errString(outcome))
	return outcome
}

// preflightCkpt reports whether the checkpoint at path exists and belongs
// to the fingerprinted instance, so the engine's resume cannot fail AFTER
// the 200 and the first schedule bytes are on the wire. Anything else —
// missing file aside — is deleted so the run starts fresh: checkpoint
// damage costs recomputation, never a failed request.
func preflightCkpt(path string, fp ReqFingerprint, alg core.Algorithm) bool {
	if _, err := os.Stat(path); err != nil {
		return false
	}
	st, err := ckpt.ReadFile(path)
	if err != nil {
		_ = os.Remove(path)
		return false
	}
	// MaxPerNode is the one engine-option fingerprint field the serving
	// layer determines (via the algorithm); Victim and GlobalCap are
	// engine defaults identical across serving runs, so matching the
	// instance fields guarantees the engine-side fingerprint check passes.
	maxPerNode := int64(2)
	if alg == core.FullRecExpand {
		maxPerNode = 0
	}
	if st.FP.TreeHash != fp.TreeHash || st.FP.N != fp.N || st.FP.M != fp.M || st.FP.MaxPerNode != maxPerNode {
		_ = os.Remove(path)
		return false
	}
	return true
}

// acquire resolves the request's admission wait policy against the broker
// and reports how long admission queued.
func (s *Server) acquire(ctx context.Context, req *Request, cost int64) (*Lease, time.Duration, error) {
	if req.WaitMS <= 0 {
		l, err := s.broker.TryAcquire(cost)
		return l, 0, err
	}
	wait := time.Duration(req.WaitMS) * time.Millisecond
	if wait > s.cfg.MaxWait {
		wait = s.cfg.MaxWait
	}
	wctx, cancel := context.WithTimeout(ctx, wait)
	defer cancel()
	start := time.Now()
	l, err := s.broker.Acquire(wctx, cost)
	return l, time.Since(start), err
}

// rejectLease maps a failed lease acquisition to its status: 413 for
// oversize (with the estimate attached), 503 for an injected acquisition
// fault, 429 + Retry-After for budget pressure.
func (s *Server) rejectLease(w http.ResponseWriter, err error, cost int64) {
	var oe *OversizeError
	switch {
	case errors.As(err, &oe):
		s.reject(w, http.StatusRequestEntityTooLarge, "oversize",
			fmt.Sprintf("schedd: estimated cost %d bytes exceeds the global budget %d bytes", oe.Cost, oe.Total))
	case errors.Is(err, faultinject.ErrLeaseAcquire):
		s.reject(w, http.StatusServiceUnavailable, "fault", err.Error())
	case errors.Is(err, ErrBudgetBusy):
		w.Header().Set("Retry-After", s.retryAfter(cost))
		s.reject(w, http.StatusTooManyRequests, "busy",
			fmt.Sprintf("schedd: budget busy for a %d-byte lease, retry later", cost))
	default:
		s.reject(w, http.StatusBadRequest, "invalid", err.Error())
	}
}

// retryAfter estimates, in whole seconds, when a cost-byte lease will
// plausibly fit: the demand ahead of the retry (bytes leased out + bytes
// waiting + this request) divided by the budget gives the number of
// serving rounds it must wait through, each costing roughly the observed
// mean served-request duration. Clamped to [1, 60] — an estimate, not a
// promise, but one that scales with actual queue depth instead of the
// constant it replaces.
func (s *Server) retryAfter(cost int64) string {
	bs := s.broker.Stats()
	demand := bs.Used + bs.WaitingCost + cost
	rounds := (demand + bs.Total - 1) / bs.Total
	s.mu.Lock()
	per := s.ewmaServe
	s.mu.Unlock()
	if per <= 0 {
		per = 1
	}
	est := int64(per*float64(rounds) + 0.5)
	if est < 1 {
		est = 1
	}
	if est > 60 {
		est = 60
	}
	return strconv.FormatInt(est, 10)
}

// Drain gracefully shuts the service down: stop admitting, let in-flight
// requests finish for the configured grace, then cancel the stragglers so
// checkpoint-armed runs flush a resumable state and the streams seal with
// a truncation trailer. It returns nil once no request is in flight, or
// ctx.Err() if ctx expires first.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	graceDone := time.After(s.cfg.DrainGrace)
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		s.mu.Lock()
		n := s.inflight
		s.mu.Unlock()
		if n == 0 {
			return nil
		}
		select {
		case <-graceDone:
			// Grace expired: cancel every in-flight request context and
			// keep waiting for the engines to reach a quiescent point.
			s.hardCancel()
			graceDone = nil
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// handleHealthz reports process liveness: 200 for as long as the handler
// can run at all, draining included.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	fmt.Fprintln(w, "ok")
}

// handleReadyz reports admission readiness: 503 once draining begins, so
// a load balancer stops routing before the listener closes.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ready")
}

// handleStatz serves the broker, serving and journal counters as JSON.
func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(struct {
		// Broker is the lease accounting (queue depth and waiting cost
		// included); Serving the request outcomes; Journal the
		// idempotency-key accounting.
		Broker  BrokerStats  `json:"broker"`
		Serving ServingStats `json:"serving"`
		Journal JournalStats `json:"journal"`
	}{s.broker.Stats(), s.Stats(), s.journal.Stats()})
}

// stallWriter is the slow-client injection shim of the response path: a
// triggered WriterStall fault delays the write, simulating a client that
// stops reading mid-stream, which must stall only its own request while
// the daemon keeps serving others.
type stallWriter struct {
	w io.Writer
}

// Write delays when the armed WriterStall fault triggers, then forwards.
func (sw *stallWriter) Write(p []byte) (int, error) {
	if faultinject.Fire(faultinject.WriterStall) {
		time.Sleep(100 * time.Millisecond)
	}
	return sw.w.Write(p)
}

// deadlineWriter is the slow-client sentinel of the response path. Each
// Write is bounded two ways: the connection write deadline (best-effort
// via ResponseController — unblocks a Write stuck on a full TCP window)
// and a wall-clock overrun check (catches a trickling reader the conn
// deadline never fires on). Either trips the seal: the request context is
// cancelled, so the engine quiesces, flushes its armed checkpoint (the
// consumer-stopped flush path of the expansion runner) and the stream
// ends with the truncation trailer — after which a retry with the same
// idempotency key resumes instead of recomputing. Writes keep forwarding
// after the seal (under one more bounded deadline window) so the trailer
// has a chance to reach a client that resumes reading.
type deadlineWriter struct {
	w       io.Writer
	rc      *http.ResponseController
	timeout time.Duration
	cancel  context.CancelFunc
	// sealed records that the deadline tripped; read after the stream to
	// classify the outcome. Single-goroutine (the handler's), no lock.
	sealed bool
}

// Write forwards p, arming the per-write deadline and sealing on overrun.
func (dw *deadlineWriter) Write(p []byte) (int, error) {
	if dw.timeout <= 0 || dw.sealed {
		return dw.w.Write(p)
	}
	_ = dw.rc.SetWriteDeadline(time.Now().Add(dw.timeout))
	start := time.Now()
	n, err := dw.w.Write(p)
	if err != nil || time.Since(start) > dw.timeout {
		dw.sealed = true
		// One more window for the trailer, then the conn stays dead.
		_ = dw.rc.SetWriteDeadline(time.Now().Add(dw.timeout))
		dw.cancel()
	}
	return n, err
}

// errString renders an outcome for the request log, "" for success.
func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
