package schedd

import (
	"context"

	"repro/internal/core"
)

// enginePool is a fixed-size pool of core.Runners. A Runner is reusable
// but not concurrency-safe, and each carries engine scratch worth keeping
// warm (arena free lists, postorder buffers), so the server checks one out
// per admitted request instead of allocating per request. The pool size
// bounds engine concurrency independently of the byte budget: even if the
// budget would admit fifty tiny requests, at most cap(runners) expansions
// run at once.
type enginePool struct {
	runners chan *core.Runner
}

// newEnginePool builds a pool of n runners, each with the given Workers
// setting.
func newEnginePool(n, workers int) *enginePool {
	p := &enginePool{runners: make(chan *core.Runner, n)}
	for i := 0; i < n; i++ {
		p.runners <- core.NewRunner(workers)
	}
	return p
}

// get checks a runner out, waiting until one frees up or ctx expires.
// Admission holds a budget lease at this point, so the wait is bounded by
// the in-flight requests ahead of us, not by the queue of unadmitted work.
func (p *enginePool) get(ctx context.Context) (*core.Runner, error) {
	select {
	case rn := <-p.runners:
		return rn, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// put returns a runner to the pool, clearing the per-request settings so
// a leaked context or checkpoint path can never bleed into the next
// tenant's run. The Workers setting and engine scratch persist.
func (p *enginePool) put(rn *core.Runner) {
	rn.CacheBudget = 0
	rn.Ctx = nil
	rn.CheckpointPath = ""
	rn.CheckpointInterval = 0
	rn.ResumeFrom = ""
	p.runners <- rn
}
