//go:build faultinject

package schedd

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/tree"
)

// TestServeFaultGrid is the armed injection grid of the service: for each
// serving-path point — a failed lease acquisition, a handler panic, a
// slow-client write stall — arm one deterministic fault, send a request,
// assert the contained outcome (503 / 500 / served-but-stalled), and then
// prove the daemon is undamaged: the next clean request is served
// byte-identically to the direct engine stream and the lease accounting
// is back to zero.
func TestServeFaultGrid(t *testing.T) {
	defer faultinject.Reset()
	tr, M := testInstance(t, 400, 31)
	raw, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	body := mustBody(t, Request{Tree: raw, M: M})
	want := expectedStream(t, core.RecExpand, tr, M)

	cases := []struct {
		point      faultinject.Point
		wantStatus int
	}{
		{faultinject.LeaseAcquire, http.StatusServiceUnavailable},
		{faultinject.HandlerPanic, http.StatusInternalServerError},
		{faultinject.WriterStall, http.StatusOK}, // a stalled client is delayed, not failed
	}
	for _, tc := range cases {
		t.Run(tc.point.String(), func(t *testing.T) {
			s := newTestServer(t, Config{})
			h := s.Handler()

			// Count-then-arm: measure the point's hits on a clean run,
			// then arm the first hit of the faulted run.
			faultinject.Reset()
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("POST", "/schedule", bytes.NewReader(body)))
			if rec.Code != http.StatusOK {
				t.Fatalf("clean run status %d", rec.Code)
			}
			if faultinject.Hits(tc.point) == 0 {
				t.Fatalf("point %v never hit on the serving path", tc.point)
			}
			faultinject.Reset()
			faultinject.Arm(tc.point, 1)
			rec = httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("POST", "/schedule", bytes.NewReader(body)))
			if rec.Code != tc.wantStatus {
				t.Fatalf("faulted run status %d, want %d (%s)", rec.Code, tc.wantStatus, rec.Body.String())
			}
			if tc.wantStatus == http.StatusOK {
				// The stall delays the stream but must not corrupt it.
				if !bytes.Equal(rec.Body.Bytes(), want) {
					t.Fatal("stalled stream diverges from the clean stream")
				}
			}
			faultinject.Reset()

			// The containment contract: the daemon keeps serving after
			// the fault, bit-identically, with no leaked lease.
			rec = httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("POST", "/schedule", bytes.NewReader(body)))
			if rec.Code != http.StatusOK {
				t.Fatalf("post-fault run status %d", rec.Code)
			}
			if !bytes.Equal(rec.Body.Bytes(), want) {
				t.Fatal("post-fault stream diverges from the clean stream")
			}
			if st := s.Broker().Stats(); st.Used != 0 || st.Leases != 0 {
				t.Fatalf("fault leaked a lease: %+v", st)
			}
			if tc.point == faultinject.HandlerPanic {
				if st := s.Stats(); st.Panics != 1 {
					t.Fatalf("panic counter = %d, want 1", st.Panics)
				}
			}
		})
	}
}

// TestServeFaultConcurrentIsolation: a write-stalled request must slow
// only itself; a concurrent clean request completes correctly while the
// stall is in effect, and both streams arrive intact.
func TestServeFaultConcurrentIsolation(t *testing.T) {
	defer faultinject.Reset()
	tr, M := testInstance(t, 400, 37)
	body := mustBody(t, Request{Tree: mustRaw(t, tr), M: M})
	want := expectedStream(t, core.RecExpand, tr, M)

	s := newTestServer(t, Config{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	faultinject.Reset()
	faultinject.Arm(faultinject.WriterStall, 1)
	type res struct {
		status int
		body   []byte
	}
	results := make(chan res, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := http.Post(srv.URL+"/schedule", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("post: %v", err)
				results <- res{}
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			if _, err := buf.ReadFrom(resp.Body); err != nil {
				t.Errorf("read: %v", err)
			}
			results <- res{status: resp.StatusCode, body: buf.Bytes()}
		}()
	}
	for i := 0; i < 2; i++ {
		r := <-results
		if r.status != http.StatusOK {
			t.Fatalf("status %d", r.status)
		}
		if !bytes.Equal(r.body, want) {
			t.Fatal("stream diverges under a concurrent stall")
		}
	}
	if faultinject.Hits(faultinject.WriterStall) == 0 {
		t.Fatal("stall point never hit")
	}
	if st := s.Broker().Stats(); st.Used != 0 || st.Leases != 0 {
		t.Fatalf("stall round leaked a lease: %+v", st)
	}
	// Both streams are strict-readable traversals.
	if _, err := tree.ReadScheduleStrict(bytes.NewReader(want)); err != nil {
		t.Fatalf("stream not strict-readable: %v", err)
	}
}

// TestWriteDeadlineSealFault is the WriterStall-armed grid row of the
// slow-client seal path: with a per-write deadline far below the injected
// 100ms stall, the stalled flush trips the seal — the engine is cancelled
// at its next quiescent point, the stream ends with the truncation
// trailer, and the keyed checkpoint is flushed — after which a re-POST of
// the same key resumes from the client's verified prefix and the
// reassembled stream is byte-identical to an uninterrupted one.
func TestWriteDeadlineSealFault(t *testing.T) {
	defer faultinject.Reset()
	ckptDir := t.TempDir()
	// Big enough that the stream spans several 64KiB flushes, so the
	// armed stall lands mid-stream with emission still pending.
	tr, M := testInstance(t, 20000, 41)
	want := expectedStream(t, core.RecExpand, tr, M)
	s := newTestServer(t, Config{
		CheckpointDir: ckptDir,
		WriteTimeout:  5 * time.Millisecond,
	})
	h := s.Handler()
	const key = "seal-fault-1"
	body := mustBody(t, Request{Tree: mustRaw(t, tr), M: M, IdempotencyKey: key})

	faultinject.Reset()
	faultinject.Arm(faultinject.WriterStall, 1)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/schedule", bytes.NewReader(body)))
	faultinject.Reset()
	if rec.Code != http.StatusOK {
		t.Fatalf("sealed run status %d", rec.Code)
	}
	if !bytes.Contains(rec.Body.Bytes(), []byte("# truncated count=")) {
		t.Fatal("sealed stream carries no truncation trailer")
	}
	if st := s.Stats(); st.Sealed != 1 {
		t.Fatalf("sealed counter = %d, want 1", st.Sealed)
	}
	if _, err := os.Stat(s.Journal().CkptPathFor(key)); err != nil {
		t.Fatalf("sealed request flushed no checkpoint: %v", err)
	}

	// Client-side repair, then resume with the same key.
	ids, safeOff, complete, err := tree.RepairSchedule(bytes.NewReader(rec.Body.Bytes()))
	if err != nil || complete || ids == 0 {
		t.Fatalf("repair: ids=%d complete=%v err=%v", ids, complete, err)
	}
	trusted := rec.Body.Bytes()[:safeOff]
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/schedule",
		bytes.NewReader(mustBody(t, Request{Tree: mustRaw(t, tr), M: M, IdempotencyKey: key, ResumeFrom: ids}))))
	if rec.Code != http.StatusOK {
		t.Fatalf("resume run status %d", rec.Code)
	}
	got := append(append([]byte(nil), trusted...), rec.Body.Bytes()...)
	if !bytes.Equal(got, want) {
		t.Fatal("seal + resume reassembly diverges from the uninterrupted stream")
	}
	if st := s.Stats(); st.Resumed != 1 {
		t.Fatalf("resumed counter = %d, want 1", st.Resumed)
	}
	if st := s.Broker().Stats(); st.Used != 0 || st.Leases != 0 {
		t.Fatalf("seal leaked a lease: %+v", st)
	}
}
