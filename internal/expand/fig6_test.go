package expand

import (
	"testing"

	"repro/internal/liu"
	"repro/internal/memsim"
	"repro/internal/tree"
)

// TestFig6ExpansionNarrative replays Appendix A's Figure 6 walkthrough at
// the level of individual expansions: FULLRECEXPAND first expands node b
// by 2 (the FiF-evicted node whose parent is scheduled latest), then the
// resulting middle link by 1, reaching a tree schedulable in M = 10 with
// total expansion volume 3.
func TestFig6ExpansionNarrative(t *testing.T) {
	tr := tree.Graft(1, tree.Chain(4, 8, 2, 9), tree.Chain(6, 4, 10))
	const b = 6 // the weight-4 node of the right branch
	M := int64(10)

	m := NewMutable(tr)
	// Iteration 1: OPTMINMEM needs 12 > 10; FiF evicts a (2) and b (2);
	// b's parent (the weight-6 node) is scheduled last among the two.
	sub, toMut := m.Subtree(m.Root())
	sched, peak := liu.MinMem(sub)
	if peak != 12 {
		t.Fatalf("initial peak %d", peak)
	}
	res, err := memsim.Run(sub, M, sched, memsim.FiF)
	if err != nil {
		t.Fatal(err)
	}
	pos, err := sched.Positions(sub.N())
	if err != nil {
		t.Fatal(err)
	}
	victim := pickVictim(sub, pos, res.Tau, LatestParent)
	if toMut[victim] != b {
		t.Fatalf("first victim is node %d, want b=%d", toMut[victim], b)
	}
	if res.Tau[victim] != 2 {
		t.Fatalf("first expansion amount %d, want 2", res.Tau[victim])
	}
	b2, _, err := m.Expand(toMut[victim], res.Tau[victim])
	if err != nil {
		t.Fatal(err)
	}
	if m.Weight(b2) != 2 {
		t.Fatalf("b2 weight %d, want 2", m.Weight(b2))
	}

	// Iteration 2: the paper says the new schedule pays one more unit
	// on b2; expanding it by 1 yields a tree fitting in M.
	sub2, toMut2 := m.Subtree(m.Root())
	sched2, peak2 := liu.MinMem(sub2)
	if peak2 <= M {
		t.Fatalf("peak already fits after one expansion: %d", peak2)
	}
	res2, err := memsim.Run(sub2, M, sched2, memsim.FiF)
	if err != nil {
		t.Fatal(err)
	}
	pos2, err := sched2.Positions(sub2.N())
	if err != nil {
		t.Fatal(err)
	}
	victim2 := pickVictim(sub2, pos2, res2.Tau, LatestParent)
	if toMut2[victim2] != b2 {
		t.Fatalf("second victim is mutable node %d, want b2=%d", toMut2[victim2], b2)
	}
	if res2.Tau[victim2] != 1 {
		t.Fatalf("second expansion amount %d, want 1", res2.Tau[victim2])
	}
	if _, _, err := m.Expand(toMut2[victim2], res2.Tau[victim2]); err != nil {
		t.Fatal(err)
	}
	final, _ := m.Freeze()
	if _, peak3 := liu.MinMem(final); peak3 > M {
		t.Fatalf("final peak %d > M", peak3)
	}
	if m.ExpansionIO() != 3 {
		t.Fatalf("total expansion volume %d, want 3", m.ExpansionIO())
	}
}
