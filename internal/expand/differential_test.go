package expand

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/liu"
	"repro/internal/memsim"
	"repro/internal/randtree"
	"repro/internal/tree"
)

// TestRecExpandMatchesReference is the differential guarantee of the
// incremental engine: on random instances spanning all victim policies and
// per-node budgets, RecExpand (memoized profiles + in-place allocation-free
// simulation) must reproduce the reference extract-and-rescan engine
// bit-for-bit — same schedule, same expansion sequence length, same I/O
// accounting — and both schedules must be valid traversals of the original
// tree.
func TestRecExpandMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	tried := 0
	for trial := 0; tried < 220; trial++ {
		var tr *tree.Tree
		if trial%3 == 0 {
			tr = randtree.Synth(20+rng.Intn(150), rng)
		} else {
			tr = randomTree(2+rng.Intn(60), rng)
		}
		lb := tr.MaxWBar()
		_, peak := liu.MinMem(tr)
		if peak <= lb {
			continue
		}
		M := lb + rng.Int63n(peak-lb)
		opts := Options{
			MaxPerNode: []int{0, 1, 2, 5}[rng.Intn(4)],
			Victim:     []VictimPolicy{LatestParent, EarliestParent, LargestTau}[rng.Intn(3)],
		}
		if rng.Intn(8) == 0 {
			opts.GlobalCap = 1 + rng.Intn(4)
		}
		tried++
		got, err := RecExpand(tr, M, opts)
		if err != nil {
			t.Fatalf("trial %d: incremental engine: %v", trial, err)
		}
		want, err := ReferenceRecExpand(tr, M, opts)
		if err != nil {
			t.Fatalf("trial %d: reference engine: %v", trial, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: engines diverge (opts=%+v M=%d n=%d)\nincremental: %+v\nreference:   %+v",
				trial, opts, M, tr.N(), got, want)
		}
		if err := tree.Validate(tr, got.Schedule); err != nil {
			t.Fatalf("trial %d: invalid schedule: %v", trial, err)
		}
		if sim, err := memsim.Run(tr, M, got.Schedule, memsim.FiF); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		} else if sim.IO != got.SimulatedIO {
			t.Fatalf("trial %d: declared simulated IO %d, resimulated %d", trial, got.SimulatedIO, sim.IO)
		}
	}
	if tried < 200 {
		t.Fatalf("only %d I/O-bound instances generated, need >= 200", tried)
	}
}

// TestInPlaceSimulatorMatchesExtracted pins the low-level equivalence the
// engine relies on: simulating a subtree schedule in place on the mutable
// tree (child-rank tie-breaking) gives the same τ, I/O and peak as
// extracting the subtree and running the public memsim.Run on the copy
// (id tie-breaking), even after expansions have spliced high-id nodes into
// the middle of child lists.
func TestInPlaceSimulatorMatchesExtracted(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	sim := memsim.NewSimulator()
	for trial := 0; trial < 150; trial++ {
		tr := randomTree(3+rng.Intn(30), rng)
		m := NewMutable(tr)
		m.EnableProfiles()
		// Random expansions to desynchronize ids from child ranks.
		for e := 0; e < rng.Intn(6); e++ {
			v := rng.Intn(m.N())
			if w := m.Weight(v); w > 1 {
				if _, _, err := m.Expand(v, 1+rng.Int63n(w)); err != nil {
					t.Fatal(err)
				}
			}
		}
		r := m.Root()
		sched := m.AppendMinMemSchedule(r, nil)
		sub, toMut := m.Subtree(r)
		subSched, _ := liu.MinMem(sub)
		lb := sub.MaxWBar()
		peak := m.SubtreePeak(r)
		M := lb
		if peak > lb {
			M = lb + rng.Int63n(peak-lb+1)
		}
		io, pk, err := sim.Run(m, r, M, sched, memsim.FiF)
		if err != nil {
			t.Fatalf("trial %d: in-place: %v", trial, err)
		}
		want, err := memsim.Run(sub, M, subSched, memsim.FiF)
		if err != nil {
			t.Fatalf("trial %d: extracted: %v", trial, err)
		}
		if io != want.IO || pk != want.Peak {
			t.Fatalf("trial %d: in-place io=%d peak=%d, extracted io=%d peak=%d",
				trial, io, pk, want.IO, want.Peak)
		}
		tau := sim.Tau()
		for k, mut := range toMut {
			if tau[mut] != want.Tau[k] {
				t.Fatalf("trial %d: τ mismatch at extracted node %d (mutable %d): %d vs %d",
					trial, k, mut, tau[mut], want.Tau[k])
			}
		}
	}
}

// TestSimulatorZeroAllocWarm guards the allocation-free property of the
// inner loop: a warm Simulator re-running a schedule on the same tree must
// not allocate at all.
func TestSimulatorZeroAllocWarm(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := randtree.Synth(2000, rng)
	lb := tr.MaxWBar()
	schedT, peak := liu.MinMem(tr)
	sched := []int(schedT)
	M := (lb + peak) / 2
	sim := memsim.NewSimulator()
	if _, _, err := sim.Run(tr, tr.Root(), M, sched, memsim.FiF); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, _, err := sim.Run(tr, tr.Root(), M, sched, memsim.FiF); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm Simulator.Run allocates %.1f times per run, want 0", allocs)
	}
}
