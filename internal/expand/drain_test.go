package expand

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/liu"
	"repro/internal/randtree"
	"repro/internal/tree"
)

// drainInstance builds an I/O-bound instance big enough that the streamed
// emission spans several segments (segments are ~4k ids), with the paper's
// mid bound.
func drainInstance(t *testing.T, n int) (*tree.Tree, int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	tr := randtree.Synth(n, rng)
	lb := tr.MaxWBar()
	_, peak := liu.MinMem(tr)
	if peak <= lb {
		t.Fatal("drain instance never needs I/O; pick another seed")
	}
	return tr, (lb + peak - 1) / 2
}

// TestDrainFlushesCheckpointOnCancel pins the drain hook of a
// checkpoint-armed run: with a huge interval (so no periodic write ever
// fires during emission) a run cancelled mid-stream must still leave the
// latest committed state durably on disk — the flush-on-cancel path —
// instead of whatever the last phase-transition write recorded. This is
// what lets schedd's graceful drain checkpoint in-flight requests at the
// drain point rather than up to Interval events earlier.
func TestDrainFlushesCheckpointOnCancel(t *testing.T) {
	tr, M := drainInstance(t, 20000)
	dir := t.TempDir()
	path := filepath.Join(dir, "drain.ckpt")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := Options{
		MaxPerNode: 2,
		Workers:    1,
		Ctx:        ctx,
		Checkpoint: CheckpointOptions{Path: path, Interval: 1 << 30},
	}
	var emitted int64
	segs := 0
	_, err := NewEngine().RecExpandStream(tr, M, opts, func(seg []int) bool {
		emitted += int64(len(seg))
		segs++
		if segs == 2 {
			// Cancel between segments: the engine observes the context at
			// the next quiescent point and must flush before returning.
			cancel()
		}
		return true
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled stream returned %v, want context.Canceled", err)
	}

	st, rerr := ckpt.ReadFile(path)
	if rerr != nil {
		t.Fatalf("reading drained checkpoint: %v", rerr)
	}
	if st.Phase != ckpt.PhaseFinish {
		t.Fatalf("drained checkpoint phase = %v, want PhaseFinish", st.Phase)
	}
	// Without the flush the last durable write is the finishExpand
	// transition, whose EmittedIDs is 0; the drain hook must have
	// committed the emission progress the consumer saw.
	if st.EmittedIDs == 0 {
		t.Fatalf("drained checkpoint records 0 emitted ids; consumer saw %d — flush-on-cancel did not fire", emitted)
	}
	if st.EmittedIDs > emitted {
		t.Fatalf("drained checkpoint claims %d emitted ids, consumer saw only %d", st.EmittedIDs, emitted)
	}

	// The flushed checkpoint is an ordinary committed one: a resume must
	// reproduce the uninterrupted run bit-identically.
	resumed, err := RecExpand(tr, M, Options{MaxPerNode: 2, Workers: 1, ResumeFrom: path})
	if err != nil {
		t.Fatalf("resume from drained checkpoint: %v", err)
	}
	baseline, err := RecExpand(tr, M, Options{MaxPerNode: 2, Workers: 1})
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	if !reflect.DeepEqual(resumed, baseline) {
		t.Fatalf("resume from drain-flushed checkpoint diverges from baseline")
	}
}

// TestDrainFlushNoCheckpointArmed: cancellation with checkpointing
// disarmed must not create any file — the nil-runner flush is a no-op.
func TestDrainFlushNoCheckpointArmed(t *testing.T) {
	tr, M := drainInstance(t, 12000)
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	segs := 0
	_, err := NewEngine().RecExpandStream(tr, M, Options{MaxPerNode: 2, Workers: 1, Ctx: ctx}, func(seg []int) bool {
		segs++
		if segs == 1 {
			cancel()
		}
		return true
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled stream returned %v, want context.Canceled", err)
	}
	ents, rerr := os.ReadDir(dir)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if len(ents) != 0 {
		t.Fatalf("disarmed cancelled run created files: %v", ents)
	}
}
