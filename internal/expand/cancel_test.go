package expand

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/liu"
	"repro/internal/randtree"
	"repro/internal/tree"
)

// cancelInstance builds a tree large enough that both drivers have real
// work to interrupt, with an M in the interesting band.
func cancelInstance(t *testing.T, n int, seed int64) (*tree.Tree, int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tr := randtree.Synth(n, rng)
	lb := tr.MaxWBar()
	_, peak := liu.MinMem(tr)
	if peak <= lb {
		t.Fatalf("seed %d: instance needs no I/O", seed)
	}
	return tr, (lb + peak) / 2
}

// TestCancelPreCanceledContext checks the fast path: a context that is
// already done stops both drivers before any expansion work, and the same
// engine then completes an identical uncancelled run.
func TestCancelPreCanceledContext(t *testing.T) {
	tr, M := cancelInstance(t, 8000, 101)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	want, err := RecExpand(tr, M, Options{MaxPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		eng := NewEngine()
		_, err := eng.RecExpand(tr, M, Options{MaxPerNode: 2, Workers: workers, Ctx: ctx})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: got %v, want context.Canceled", workers, err)
		}
		// The engine survives the aborted run: the same instance reuses it.
		got, err := eng.RecExpand(tr, M, Options{MaxPerNode: 2, Workers: workers, Ctx: context.Background()})
		if err != nil {
			t.Fatalf("workers=%d: rerun: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: rerun diverges from the uncancelled result", workers)
		}
	}
}

// TestCancelMidStream cancels from inside the streaming consumer — the
// SIGINT shape: the run must end with the context's error, not
// ErrEmissionStopped (the consumer kept saying yes), and emit no further
// segments after the cancellation is observed.
func TestCancelMidStream(t *testing.T) {
	tr, M := cancelInstance(t, 8000, 103)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	segsAfter := 0
	canceled := false
	_, err := NewEngine().RecExpandStream(tr, M, Options{MaxPerNode: 2, Ctx: ctx}, func(seg []int) bool {
		if canceled {
			segsAfter++
		}
		canceled = true
		cancel()
		return true
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if segsAfter != 0 {
		t.Fatalf("%d segments emitted after cancellation", segsAfter)
	}
	if !canceled {
		t.Fatal("stream never reached the consumer")
	}
}

// TestCancelDuringParallelExpand races a late cancellation against the
// sharded driver (run under -race in CI): whether the cancel lands or the
// run wins, the outcome must be either ctx.Err() or the exact
// uncancelled result, and the engine must complete a clean rerun.
func TestCancelDuringParallelExpand(t *testing.T) {
	tr, M := cancelInstance(t, 30000, 107)
	want, err := RecExpand(tr, M, Options{MaxPerNode: 2, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, delay := range []time.Duration{0, 500 * time.Microsecond, 2 * time.Millisecond} {
		ctx, cancel := context.WithCancel(context.Background())
		var fired atomic.Bool
		timer := time.AfterFunc(delay, func() { fired.Store(true); cancel() })
		eng := NewEngine()
		got, err := eng.RecExpand(tr, M, Options{MaxPerNode: 2, Workers: 4, Ctx: ctx})
		timer.Stop()
		cancel()
		switch {
		case err == nil:
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("delay %v: uncancelled-in-time run diverges", delay)
			}
		case errors.Is(err, context.Canceled) && fired.Load():
			// Cancelled in flight; the engine must be re-runnable.
		default:
			t.Fatalf("delay %v: unexpected error %v", delay, err)
		}
		got, err = eng.RecExpand(tr, M, Options{MaxPerNode: 2, Workers: 4, Ctx: context.Background()})
		if err != nil {
			t.Fatalf("delay %v: rerun: %v", delay, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("delay %v: rerun diverges from the uncancelled result", delay)
		}
	}
}

// TestCancelNilAndBackgroundCtxFree pins the zero-overhead contract: the
// nil context and context.Background() (whose Done channel is nil) both
// disable cancellation entirely — same Result, no error.
func TestCancelNilAndBackgroundCtxFree(t *testing.T) {
	tr, M := cancelInstance(t, 2000, 109)
	want, err := RecExpand(tr, M, Options{MaxPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	got, err := RecExpand(tr, M, Options{MaxPerNode: 2, Ctx: context.Background()})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("context.Background() changed the result")
	}
}
