// Cancellation and panic containment for the expansion engines.
//
// Cancellation is cooperative and coarse-grained on purpose: the run
// checks Options.Ctx once per expansion-loop iteration, per merged unit
// and per streamed segment — points that each represent thousands of
// node visits — and the profile caches poll the same signal every
// cancelPollInterval recomputes (liu.CacheOptions.Done). The hot paths
// between checks are untouched, so an armed-but-quiet context costs
// nothing measurable (see BENCH.md). After a cancelled run the engine and
// its caches are re-runnable: a run builds its mutable tree and caches
// fresh, and an interrupted cache keeps every published profile valid and
// every unreached node dirty.
//
// Containment converts panics into errors at two boundaries: each
// parallel-driver unit worker recovers into a WorkerError (cancelling its
// siblings), and the engine entry points recover anything that reaches
// them — a fault injected into the sequential path, or a merger-side
// failure — into a PanicError. Out-of-range inputs still return plain
// errors; the panic paths exist for invariant violations and injected
// faults, which must not take down a process that has hours of other
// work in flight.
package expand

import (
	"context"
	"fmt"
	"runtime/debug"
)

// ctxDone returns the cancellation channel of ctx, tolerating the nil
// context of an Options value that never set one.
func ctxDone(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}

// ctxErr reports a pending cancellation without blocking; a nil ctx means
// cancellation is not in use.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// mapErr gives a pending cancellation precedence over err: once the
// context is done, downstream failures (empty emissions, invalid
// schedules, stopped streams) are symptoms of the cancellation, and the
// caller should see ctx.Err() rather than the symptom.
func mapErr(ctx context.Context, err error) error {
	if cerr := ctxErr(ctx); cerr != nil {
		return cerr
	}
	return err
}

// WorkerError is a panic contained in a parallel-driver unit worker: the
// driver recovers it in the worker goroutine, cancels the sibling
// workers, drains the pool and returns this error with the engine and
// caches still consistent — the same call is re-runnable.
type WorkerError struct {
	// Unit is the original-tree id of the subtree root the panicking
	// worker was expanding.
	Unit int
	// Panic is the recovered panic value.
	Panic any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

// Error describes the contained panic.
func (w *WorkerError) Error() string {
	return fmt.Sprintf("expand: worker for unit %d panicked: %v", w.Unit, w.Panic)
}

// Unwrap exposes an error-typed panic value to errors.Is/As chains (an
// injected faultinject.ErrWorkerPanic, for instance).
func (w *WorkerError) Unwrap() error {
	if err, ok := w.Panic.(error); ok {
		return err
	}
	return nil
}

// PanicError is a panic recovered at an engine entry point — anything
// that escaped the per-worker containment: a fault injected into the
// sequential path, or a failure on the merger goroutine.
type PanicError struct {
	// Panic is the recovered panic value.
	Panic any
	// Stack is the stack trace captured at the recovery point.
	Stack []byte
}

// Error describes the contained panic.
func (p *PanicError) Error() string {
	return fmt.Sprintf("expand: panic during expansion: %v", p.Panic)
}

// Unwrap exposes an error-typed panic value to errors.Is/As chains.
func (p *PanicError) Unwrap() error {
	if err, ok := p.Panic.(error); ok {
		return err
	}
	return nil
}

// containPanic is the engine-boundary recover: deferred by the RecExpand
// entry points onto their named error result. A panic that is already a
// contained WorkerError passes through unchanged.
func containPanic(err *error) {
	r := recover()
	if r == nil {
		return
	}
	if we, ok := r.(*WorkerError); ok {
		*err = we
		return
	}
	*err = &PanicError{Panic: r, Stack: debug.Stack()}
}
