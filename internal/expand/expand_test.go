package expand

import (
	"math/rand"
	"testing"

	"repro/internal/brute"
	"repro/internal/liu"
	"repro/internal/memsim"
	"repro/internal/randtree"
	"repro/internal/tree"
)

func randomTree(n int, rng *rand.Rand) *tree.Tree {
	parent := make([]int, n)
	weight := make([]int64, n)
	parent[0] = tree.None
	weight[0] = 1 + rng.Int63n(12)
	for i := 1; i < n; i++ {
		parent[i] = rng.Intn(i)
		weight[i] = 1 + rng.Int63n(12)
	}
	return tree.MustNew(parent, weight)
}

func TestMutableExpandBasics(t *testing.T) {
	tr := tree.Chain(3, 5, 2)
	m := NewMutable(tr)
	if m.N() != 3 || m.Root() != 0 {
		t.Fatal("copy wrong")
	}
	i2, i3, err := m.Expand(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Weight(i2) != 3 || m.Weight(i3) != 5 {
		t.Fatalf("weights %d %d", m.Weight(i2), m.Weight(i3))
	}
	if m.Orig(i2) != 1 || m.Orig(i3) != 1 {
		t.Fatal("orig mapping")
	}
	if m.Role(i2) != RoleMiddle || m.Role(i3) != RoleRead || m.Role(1) != RolePrimary {
		t.Fatal("roles")
	}
	if m.ExpansionIO() != 2 || m.Expansions() != 1 {
		t.Fatal("accounting")
	}
	ft, toMut := m.Freeze()
	if ft.N() != 5 {
		t.Fatalf("frozen size %d", ft.N())
	}
	// Structure: 0 -> i3(5) -> i2(3) -> 1(5) -> 2(2)... chain order:
	// node 2 is child of 1; 1 child of i2; i2 child of i3; i3 child of 0.
	sched, _ := liu.MinMem(ft)
	orig := m.Transpose(sched, toMut)
	if len(orig) != 3 {
		t.Fatalf("transposed length %d: %v", len(orig), orig)
	}
	if err := tree.Validate(tr, orig); err != nil {
		t.Fatal(err)
	}
	// Expanding the middle node again (re-expansion of a chain link).
	if _, _, err := m.Expand(i2, 3); err != nil {
		t.Fatal(err)
	}
	if m.ExpansionIO() != 5 {
		t.Fatal("accounting after re-expansion")
	}
	// Weight-0 middle nodes are allowed downstream.
	ft2, _ := m.Freeze()
	if ft2.N() != 7 {
		t.Fatalf("size %d", ft2.N())
	}
}

func TestMutableExpandErrors(t *testing.T) {
	tr := tree.Chain(3, 5)
	m := NewMutable(tr)
	if _, _, err := m.Expand(9, 1); err == nil {
		t.Error("out of range accepted")
	}
	if _, _, err := m.Expand(1, 0); err == nil {
		t.Error("zero amount accepted")
	}
	if _, _, err := m.Expand(1, 6); err == nil {
		t.Error("amount above weight accepted")
	}
}

func TestExpandRoot(t *testing.T) {
	tr := tree.Chain(3, 5)
	m := NewMutable(tr)
	_, i3, err := m.Expand(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Root() != i3 {
		t.Fatal("root not replaced")
	}
	ft, _ := m.Freeze()
	if ft.N() != 4 {
		t.Fatal("freeze after root expansion")
	}
}

func TestExpansionSemantics(t *testing.T) {
	// The expansion mimics an I/O of τ: the expanded tree scheduled
	// without I/O in memory M corresponds to a valid traversal of the
	// original tree with I/O function τ (Figure 3 / Theorem 2).
	// Star(1; 5, 5) with M = 6: executing the second leaf (5) requires
	// evicting 4 units of the first, but the root then needs both
	// children (w̄ = 10 > 6): infeasible for every τ, so LB = 10.
	// Use Graft(1, Chain(3,5), Chain(3,5)) with M = 6 instead.
	tr := tree.Graft(1, tree.Chain(3, 5), tree.Chain(3, 5))
	M := int64(6)
	_, peak := liu.MinMem(tr)
	if peak <= M {
		t.Fatalf("peak %d should exceed M", peak)
	}
	tau := []int64{0, 2, 0, 0, 0} // write 2 units of the first chain top
	sched, err := ScheduleForIO(tr, M, tau)
	if err != nil {
		t.Fatal(err)
	}
	if err := memsim.Validate(tr, M, sched, tau); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleForIOErrors(t *testing.T) {
	tr := tree.Graft(1, tree.Chain(3, 5), tree.Chain(3, 5))
	if _, err := ScheduleForIO(tr, 6, []int64{0, 0}); err == nil {
		t.Error("short tau accepted")
	}
	if _, err := ScheduleForIO(tr, 6, []int64{0, 9, 0, 0, 0}); err == nil {
		t.Error("tau above weight accepted")
	}
	// τ = 0 everywhere cannot fit in M = 6 (peak is 8): Theorem 2 must
	// report that no schedule exists.
	if _, err := ScheduleForIO(tr, 6, []int64{0, 0, 0, 0, 0}); err == nil {
		t.Error("infeasible tau accepted")
	}
}

func TestScheduleForIOFromFiF(t *testing.T) {
	// Property: the τ produced by FiF on any schedule admits a valid
	// schedule (the original one), so Theorem 2 must succeed and its
	// schedule must validate.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		tr := randomTree(2+rng.Intn(15), rng)
		lb := tr.MaxWBar()
		sched := tr.NaturalPostorder()
		peak, err := memsim.Peak(tr, sched)
		if err != nil {
			t.Fatal(err)
		}
		if peak <= lb {
			continue
		}
		M := (lb + peak) / 2
		res, err := memsim.Run(tr, M, sched, memsim.FiF)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ScheduleForIO(tr, M, res.Tau)
		if err != nil {
			t.Fatalf("trial %d: %v (tau=%v parents=%v weights=%v M=%d)",
				trial, err, res.Tau, tr.Parents(), tr.Weights(), M)
		}
		if err := memsim.Validate(tr, M, got, res.Tau); err != nil {
			t.Fatalf("trial %d: schedule invalid: %v", trial, err)
		}
	}
}

func TestFullRecExpandReachesZeroResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 80; trial++ {
		tr := randomTree(2+rng.Intn(25), rng)
		lb := tr.MaxWBar()
		_, peak := liu.MinMem(tr)
		if peak <= lb {
			continue
		}
		M := (lb + peak) / 2
		res, err := FullRecExpand(tr, M)
		if err != nil {
			t.Fatal(err)
		}
		if res.CapHit {
			t.Fatalf("trial %d: cap hit", trial)
		}
		if res.ResidualIO != 0 {
			t.Fatalf("trial %d: FULLRECEXPAND left residual %d", trial, res.ResidualIO)
		}
		if res.FinalPeak > M {
			t.Fatalf("trial %d: final peak %d > M=%d", trial, res.FinalPeak, M)
		}
		if res.IO != res.ExpansionIO {
			t.Fatalf("trial %d: IO accounting", trial)
		}
		if err := tree.Validate(tr, res.Schedule); err != nil {
			t.Fatal(err)
		}
		// Immediate writes dominate the delayed writes expansion
		// encodes: the simulated FiF cost of the transposed schedule
		// never exceeds the declared cost.
		if res.SimulatedIO > res.IO {
			t.Fatalf("trial %d: simulated %d > declared %d", trial, res.SimulatedIO, res.IO)
		}
	}
}

func TestRecExpandNeverWorseThanOptMinMemSchedule(t *testing.T) {
	// Not a theorem, but the designed behaviour on the datasets: the
	// declared cost of RecExpand should improve on OPTMINMEM on a
	// fraction of realistic instances (Section 6 reports strict wins on
	// 90% of SYNTH; the rate is much lower at these reduced sizes). We
	// assert validity, the declared-vs-simulated relation, and that the
	// heuristic wins somewhere without losing more than it wins.
	rng := rand.New(rand.NewSource(43))
	wins, losses := 0, 0
	trials := 25
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		tr := randtree.Synth(400, rng)
		lb := tr.MaxWBar()
		sched, peak := liu.MinMem(tr)
		if peak <= lb {
			continue
		}
		M := (lb + peak) / 2
		base, err := memsim.Run(tr, M, sched, memsim.FiF)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RecExpandDefault(tr, M)
		if err != nil {
			t.Fatal(err)
		}
		if res.SimulatedIO > res.IO {
			t.Fatalf("trial %d: simulated %d > declared %d", trial, res.SimulatedIO, res.IO)
		}
		if res.IO < base.IO {
			wins++
		}
		if res.IO > base.IO {
			losses++
		}
	}
	if !testing.Short() && wins == 0 {
		t.Error("RecExpand never beat OptMinMem on SYNTH-like instances")
	}
	if losses > wins {
		t.Errorf("RecExpand lost to OptMinMem more often than it won: %d wins, %d losses", wins, losses)
	}
	t.Logf("RecExpand vs OptMinMem: %d wins, %d losses", wins, losses)
}

func TestRecExpandNeverBelowOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	trials := 100
	if testing.Short() {
		trials = 30
	}
	for trial := 0; trial < trials; trial++ {
		tr := randomTree(2+rng.Intn(8), rng)
		lb := tr.MaxWBar()
		_, peak := liu.MinMem(tr)
		if peak <= lb {
			continue
		}
		M := (lb + peak) / 2
		_, opt, err := brute.MinIO(tr, M)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range []func(*tree.Tree, int64) (*Result, error){FullRecExpand, RecExpandDefault} {
			res, err := f(tr, M)
			if err != nil {
				t.Fatal(err)
			}
			if res.IO < opt {
				t.Fatalf("trial %d: heuristic IO %d below optimum %d — accounting bug "+
					"(parents=%v weights=%v M=%d)", trial, res.IO, opt, tr.Parents(), tr.Weights(), M)
			}
			if res.SimulatedIO < opt {
				t.Fatalf("trial %d: simulated IO %d below optimum %d", trial, res.SimulatedIO, opt)
			}
		}
	}
}

func TestRecExpandBelowLBRejected(t *testing.T) {
	tr := tree.Star(1, 5, 5)
	if _, err := FullRecExpand(tr, 9); err == nil {
		t.Error("M below LB accepted")
	}
}

func TestRecExpandZeroIOWhenFits(t *testing.T) {
	tr := tree.Graft(1, tree.Chain(3, 5), tree.Chain(3, 5))
	_, peak := liu.MinMem(tr)
	res, err := FullRecExpand(tr, peak)
	if err != nil {
		t.Fatal(err)
	}
	if res.IO != 0 || res.Expansions != 0 {
		t.Fatalf("IO=%d expansions=%d at M=peak", res.IO, res.Expansions)
	}
}

func TestVictimPolicies(t *testing.T) {
	for _, p := range []VictimPolicy{LatestParent, EarliestParent, LargestTau} {
		if p.String() == "" {
			t.Error("empty name")
		}
	}
	if VictimPolicy(9).String() == "" {
		t.Error("unknown name empty")
	}
	// All policies must produce valid results.
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 30; trial++ {
		tr := randomTree(3+rng.Intn(15), rng)
		lb := tr.MaxWBar()
		_, peak := liu.MinMem(tr)
		if peak <= lb {
			continue
		}
		M := (lb + peak) / 2
		for _, p := range []VictimPolicy{LatestParent, EarliestParent, LargestTau} {
			res, err := RecExpand(tr, M, Options{MaxPerNode: 2, Victim: p})
			if err != nil {
				t.Fatalf("policy %s: %v", p, err)
			}
			if err := tree.Validate(tr, res.Schedule); err != nil {
				t.Fatalf("policy %s: %v", p, err)
			}
		}
	}
}

func TestGlobalCap(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	tr := randomTree(30, rng)
	lb := tr.MaxWBar()
	_, peak := liu.MinMem(tr)
	if peak <= lb {
		t.Skip("instance needs no I/O")
	}
	M := (lb + peak) / 2
	res, err := RecExpand(tr, M, Options{GlobalCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Expansions > 1 {
		t.Fatalf("cap ignored: %d expansions", res.Expansions)
	}
	// Even when capped, the result must be a complete valid traversal.
	if err := tree.Validate(tr, res.Schedule); err != nil {
		t.Fatal(err)
	}
	if res.IO != res.ExpansionIO+res.ResidualIO {
		t.Fatal("IO accounting with cap")
	}
}
