package expand

import (
	"fmt"

	"repro/internal/liu"
	"repro/internal/memsim"
	"repro/internal/tree"
)

// ScheduleForIO implements Theorem 2 of the paper: given an I/O function τ
// for which some valid schedule exists, it computes one in polynomial time.
// Every node with τ(i) > 0 is expanded by τ(i); if the resulting tree's
// optimal peak memory fits in M, the OPTMINMEM schedule transposed to the
// original nodes is a valid schedule for (σ, τ). Otherwise no valid
// schedule exists for τ and an error is returned.
func ScheduleForIO(t *tree.Tree, M int64, tau []int64) (tree.Schedule, error) {
	n := t.N()
	if len(tau) != n {
		return nil, fmt.Errorf("expand: τ has %d entries for %d nodes", len(tau), n)
	}
	for i, ti := range tau {
		if ti < 0 || ti > t.Weight(i) {
			return nil, fmt.Errorf("expand: τ(%d)=%d out of [0, %d]", i, ti, t.Weight(i))
		}
	}
	m := NewMutable(t)
	for i, ti := range tau {
		if ti > 0 {
			if _, _, err := m.Expand(i, ti); err != nil {
				return nil, err
			}
		}
	}
	exp, toMut := m.Freeze()
	sched, peak := liu.MinMem(exp)
	if peak > M {
		return nil, fmt.Errorf("expand: no valid schedule exists for the given τ (expanded peak %d > M=%d)", peak, M)
	}
	orig := m.Transpose(sched, toMut)
	if err := memsim.Validate(t, M, orig, tau); err != nil {
		return nil, fmt.Errorf("expand: internal error, transposed schedule fails validation: %w", err)
	}
	return orig, nil
}
