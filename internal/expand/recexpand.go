package expand

import (
	"context"
	"errors"
	"fmt"
	"runtime"

	"repro/internal/liu"
	"repro/internal/memsim"
	"repro/internal/tree"
)

// VictimPolicy selects which node with positive FiF I/O gets expanded at
// each iteration. The paper's choice is LatestParent; the others feed the
// ablation benchmarks.
type VictimPolicy int

const (
	// LatestParent expands the evicted node whose parent is scheduled
	// the latest (the paper's Line 6).
	LatestParent VictimPolicy = iota
	// EarliestParent expands the evicted node whose parent is scheduled
	// the earliest.
	EarliestParent
	// LargestTau expands the node with maximum FiF I/O volume.
	LargestTau
)

// String names the policy.
func (p VictimPolicy) String() string {
	switch p {
	case LatestParent:
		return "LatestParent"
	case EarliestParent:
		return "EarliestParent"
	case LargestTau:
		return "LargestTau"
	}
	return fmt.Sprintf("VictimPolicy(%d)", int(p))
}

// Options tunes the recursive-expansion heuristics.
type Options struct {
	// Ctx cancels a run cooperatively: the engine checks it once per
	// expansion-loop iteration, per merged unit and per streamed segment,
	// and the profile caches poll it during long recompute passes. A
	// cancelled run returns Ctx.Err() (typically context.Canceled) and
	// leaves the engine re-runnable; see cancel.go for the failure model.
	// nil disables cancellation — the zero Options behaves as before.
	Ctx context.Context
	// MaxPerNode caps the number of expansion iterations of the while
	// loop at every recursion node; 0 means unbounded (FULLRECEXPAND).
	// The paper's RECEXPAND uses 2.
	MaxPerNode int
	// Victim selects the expansion victim; the default (zero value) is
	// the paper's latest-scheduled-parent rule.
	Victim VictimPolicy
	// GlobalCap aborts the heuristic after this many expansions in
	// total, as a safety net against the (super-polynomial) worst case
	// of FULLRECEXPAND; 0 means 64·n + 1024.
	GlobalCap int
	// Workers is the number of concurrent workers of the postorder
	// driver: 0 means runtime.GOMAXPROCS(0) (falling back to the
	// sequential engine on small trees), 1 forces the sequential
	// engine, and any value > 1 shards the independent sibling
	// subtrees across that many workers. The Result is bit-identical
	// for every worker count (see parallel.go).
	Workers int
	// CacheBudget bounds the resident bytes of each profile cache the
	// engine creates (liu.CacheOptions.MaxResidentBytes): clean subtree
	// profiles beyond the budget are evicted and recomputed on demand,
	// trading time for a memory footprint that stays flat on 10⁷-node
	// trees. 0 means unlimited. The Result is bit-identical for every
	// budget — eviction is a residency policy, never a semantic one. In
	// the parallel driver the budget applies per cache (the shared cache
	// and each unit's local cache).
	CacheBudget int64
	// MaxUnitLead bounds how many units of the parallel driver may be
	// in flight or finished-but-unreplayed at once: each pending unit
	// holds its extracted tree and warm local profile cache until the
	// merger replays it, so an unbounded pool running far ahead of the
	// merger can stack up to a second shared-cache footprint. 0 means
	// the default of 2×workers (enough to keep every worker busy while
	// the merger drains in postorder); negative means unbounded. Like
	// Workers and CacheBudget it never changes the Result, only the
	// memory/time trade-off.
	MaxUnitLead int
	// Checkpoint arms durable checkpointing: with a non-empty Path the
	// engine persists its decision log and frontier to that file at
	// quiescent points (per expansion, per replayed unit, per streamed
	// segment), each write atomic and fsynced, so a run killed at ANY
	// instant can be resumed via ResumeFrom. The zero value disarms
	// checkpointing entirely and adds no allocations to the hot loops.
	// Like Workers and CacheBudget, checkpointing never changes the
	// Result.
	Checkpoint CheckpointOptions
	// VerifyCache makes the engine audit the profile cache's residency,
	// pin and dirtiness invariants (liu.(*ProfileCache).CheckInvariants)
	// after the run completes, folding any violation into the returned
	// error. The certification harness arms it on every run; it costs one
	// O(n) pass after the result is assembled and nothing on the hot
	// loops.
	VerifyCache bool
	// ResumeFrom names a checkpoint file written by a previous run of
	// the SAME instance (tree, M, MaxPerNode, Victim, effective
	// GlobalCap — enforced by fingerprint, see ErrCheckpointMismatch).
	// The engine replays the logged decisions onto a fresh mutable tree
	// — no re-simulation — and continues the walk from the recorded
	// frontier, producing a Result bit-identical to an uninterrupted
	// run. The resumed walk itself is sequential regardless of Workers
	// (the remaining work is typically small); non-semantic knobs may
	// differ freely between the original and resumed runs. Empty
	// disables resuming.
	ResumeFrom string
}

// CheckpointOptions configures Options.Checkpoint.
type CheckpointOptions struct {
	// Path is the checkpoint file; every durable write atomically
	// replaces it. Empty disarms checkpointing.
	Path string
	// Interval is the number of checkpointable events (logged
	// expansions, streamed segments) between durable writes; 0 means
	// the default of 256. 1 checkpoints at every event. Phase
	// transitions always force a write regardless of the interval.
	Interval int
}

// cacheOptions is the liu residency and cancellation policy the engine
// derives from Options: every cache a run creates shares the run's
// cancellation signal, so ensure-heavy phases (warms, schedule flattens)
// stop within one poll interval of the context being cancelled.
func (o Options) cacheOptions() liu.CacheOptions {
	return liu.CacheOptions{MaxResidentBytes: o.CacheBudget, Done: ctxDone(o.Ctx)}
}

// Result is the outcome of a recursive-expansion heuristic.
type Result struct {
	// Schedule is a topological schedule of the ORIGINAL tree (the
	// expanded-tree OptMinMem schedule transposed to primary nodes).
	Schedule tree.Schedule
	// IO is the heuristic's declared I/O volume: ExpansionIO plus
	// ResidualIO (the paper's accounting).
	IO int64
	// ExpansionIO is the sum of all expansion amounts.
	ExpansionIO int64
	// ResidualIO is the FiF I/O of the final expanded tree under M;
	// zero for FULLRECEXPAND unless GlobalCap was hit.
	ResidualIO int64
	// SimulatedIO is the FiF I/O volume of Schedule on the original
	// tree — never worse than IO, since immediate writes dominate the
	// delayed writes that expansion encodes.
	SimulatedIO int64
	// SimulatedPeak is the peak demand of that same simulation of
	// Schedule on the original tree under M (the memsim.Result.Peak of
	// the run that produced SimulatedIO); callers evaluating the
	// heuristic need not re-simulate.
	SimulatedPeak int64
	// Expansions is the number of expansion operations performed.
	Expansions int
	// CapHit reports that GlobalCap stopped the expansion loop early.
	CapHit bool
	// FinalPeak is the OptMinMem peak of the final expanded tree.
	FinalPeak int64
}

// FullRecExpand runs the paper's FULLRECEXPAND heuristic (Algorithm 2):
// recursively make every subtree schedulable without I/O by repeatedly
// running OPTMINMEM and expanding one FiF-evicted node per iteration.
func FullRecExpand(t *tree.Tree, M int64) (*Result, error) {
	return RecExpand(t, M, Options{MaxPerNode: 0})
}

// RecExpandDefault runs the paper's RECEXPAND variant, whose per-node
// expansion loop is cut after 2 iterations.
func RecExpandDefault(t *tree.Tree, M int64) (*Result, error) {
	return RecExpand(t, M, Options{MaxPerNode: 2})
}

// RecExpand runs the recursive-expansion heuristic with explicit options,
// on the incremental engine: the mutable tree keeps a memoized Liu profile
// per subtree (recomputing only the dirty root-path after each expansion)
// and the inner Furthest-in-the-Future evaluations run allocation-free on
// a reusable simulator, directly on the mutable tree — no per-iteration
// subtree extraction, no from-scratch OPTMINMEM. With Workers other than 1
// the postorder driver shards independent sibling subtrees across a worker
// pool (parallel.go). Results are bit-identical to ReferenceRecExpand, the
// frozen extract-and-rescan engine, for every worker count.
func RecExpand(t *tree.Tree, M int64, opts Options) (*Result, error) {
	return NewEngine().RecExpand(t, M, opts)
}

// Engine owns the reusable scratch of the expansion heuristics: the
// allocation-free simulator, the flattened-schedule buffer and the
// BFS-rank buffer. Reusing one Engine across many RecExpand calls (as the
// experiment runner does, one per worker) avoids re-growing that scratch
// per instance. An Engine is not safe for concurrent use; the parallel
// driver creates private engines for its workers.
type Engine struct {
	sim     *memsim.Simulator
	sched   []int   // reusable flattened-schedule scratch
	bfsPos  []int32 // reusable BFS-rank scratch (LargestTau ties only)
	primBuf []int   // reusable primary-filter chunk (streaming finish)

	cacheStats liu.CacheStats // shared-cache counters of the last run
}

// CacheStats returns the profile-cache residency counters of the engine's
// most recent RecExpand run (the shared cache in the parallel driver).
// Budget calibration reads PeakResidentBytes here; the counters are not
// part of Result so that the differential bit-identity tests can keep
// comparing full Result values across engines and budgets.
func (e *Engine) CacheStats() liu.CacheStats { return e.cacheStats }

// NewEngine returns an engine with empty scratch; buffers grow on first
// use and are retained across calls.
func NewEngine() *Engine { return &Engine{sim: memsim.NewSimulator()} }

// loopExit says which check ended a node's expansion while-loop; the
// parallel replay needs to re-run the checks in the same order, so the
// distinction between the cap and the other exits is load-bearing.
type loopExit uint8

const (
	// exitPeak: the subtree's current peak fits in M (the normal exit).
	exitPeak loopExit = iota
	// exitBudget: MaxPerNode iterations were spent at this node.
	exitBudget
	// exitCap: the global expansion cap tripped; the caller must set
	// CapHit and abort the whole postorder walk.
	exitCap
)

// RecExpand is the Engine-bound form of the package-level RecExpand. A
// panic that reaches this boundary (an injected fault, an invariant
// violation) is recovered into a typed error — WorkerError or PanicError
// — instead of crashing the process; the engine stays re-runnable.
func (e *Engine) RecExpand(t *tree.Tree, M int64, opts Options) (res *Result, err error) {
	defer containPanic(&err)
	m, capHit, _, err := e.expandTree(t, M, opts)
	if err != nil {
		return nil, err
	}
	res, err = e.finish(opts.Ctx, t, m, M, capHit)
	if err == nil && opts.VerifyCache {
		if verr := m.CheckProfileInvariants(); verr != nil {
			return nil, fmt.Errorf("expand: post-run cache audit: %w", verr)
		}
	}
	return res, err
}

// RecExpandStream is RecExpand for out-of-core-scale trees: instead of
// materializing Result.Schedule (an n-word slice), the final original-tree
// schedule is streamed to yield segment by segment, in traversal order.
// Each yielded segment aliases a reusable chunk, valid only for the
// duration of the call — write it out (tree.WriteSchedule) or fold it
// immediately. The returned Result carries a nil Schedule; every other
// field (IO, expansion accounting, SimulatedIO/SimulatedPeak, CapHit) is
// bit-identical to the materializing path, and the streamed segments
// concatenate to exactly Result.Schedule of that path (pinned by the
// streaming differential grid).
//
// The streamed finish also releases the engine's schedule ropes back to
// the profile-cache arena as the emission advances
// (liu.EmitScheduleRelease), so the Θ(n) working set the old flatten held
// — every rope of the tree plus the n-word slice — shrinks progressively
// instead of peaking at the end; under a CacheBudget this is what opens
// >10⁸-node trees (DESIGN.md §2.8).
//
// If yield returns false the run aborts and returns ErrEmissionStopped.
// Like RecExpand, a panic reaching this boundary is recovered into a
// typed WorkerError or PanicError. With Options.Ctx set, cancellation is
// additionally checked between streamed segments, so a consumer blocked
// on slow output storage still observes it promptly.
func (e *Engine) RecExpandStream(t *tree.Tree, M int64, opts Options, yield func(seg []int) bool) (res *Result, err error) {
	defer containPanic(&err)
	m, capHit, ck, err := e.expandTree(t, M, opts)
	if err != nil {
		return nil, err
	}
	res, err = e.finishStream(opts.Ctx, t, m, M, capHit, ck, yield)
	if err == nil && opts.VerifyCache {
		if verr := m.CheckProfileInvariants(); verr != nil {
			return nil, fmt.Errorf("expand: post-run cache audit: %w", verr)
		}
	}
	return res, err
}

// expandTree runs the expansion phase — everything up to, but not
// including, the final schedule emission — and returns the expanded
// mutable tree plus the run's checkpoint runner (nil unless
// Options.Checkpoint arms one). Shared by the materializing and streaming
// entry points.
func (e *Engine) expandTree(t *tree.Tree, M int64, opts Options) (*MutableTree, bool, *ckptRunner, error) {
	if lb := t.MaxWBar(); M < lb {
		return nil, false, nil, fmt.Errorf("expand: M=%d below LB=%d", M, lb)
	}
	globalCap := opts.GlobalCap
	if globalCap == 0 {
		globalCap = 64*t.N() + 1024
	}
	var resume *ckptState
	if opts.ResumeFrom != "" {
		st, err := loadResume(t, M, opts, globalCap)
		if err != nil {
			return nil, false, nil, err
		}
		resume = st
	}
	var ck *ckptRunner
	if opts.Checkpoint.Path != "" {
		ck = newCkptRunner(t, M, opts, globalCap)
	}
	workers := opts.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
		if t.N() < parallelMinNodes {
			// Auto mode: below this size the sharding overhead outweighs
			// the win. An explicit Workers > 1 always takes the parallel
			// path (the determinism tests rely on that).
			workers = 1
		}
	}
	// A resumed walk is always sequential: the remaining work is the tail
	// the kill interrupted, and the sequential engine is bit-identical to
	// the parallel one anyway.
	if resume == nil && workers > 1 {
		m, capHit, err := e.recExpandParallel(t, M, opts, globalCap, workers, ck)
		if err != nil {
			return nil, false, nil, ck.flushOnCancel(err)
		}
		if ck != nil {
			if err := ck.finishExpand(capHit); err != nil {
				return nil, false, nil, err
			}
		}
		return m, capHit, ck, nil
	}

	m := NewMutable(t)
	m.EnableProfilesOpts(opts.cacheOptions())
	capHit := false

	// Skipping initially fitting subtrees wholesale is what keeps the
	// recursion linear on deep trees; see InitialPeaks for why the skip
	// must use these initial peaks and nothing else. On resume the warm
	// runs on the PRISTINE tree, before any logged decision is replayed —
	// the skip decisions are defined on the initial peaks.
	initialPeaks := m.InitialPeaks(1)
	// A cancellation during the warm leaves initialPeaks partially
	// computed (the cache bails between recomputes); bail before any
	// skip decision reads them.
	if err := ctxErr(opts.Ctx); err != nil {
		return nil, false, nil, ck.flushOnCancel(err)
	}

	startIdx := 0
	if resume != nil {
		if err := replayLog(m, resume); err != nil {
			return nil, false, nil, err
		}
		if ck != nil {
			ck.seed(resume)
		}
		if resume.Phase == ckptPhaseFinish {
			// The walk had already completed; only the final
			// evaluation/emission remains, and it is a pure function of
			// the replayed tree.
			if ck != nil {
				if err := ck.finishExpand(resume.CapHit); err != nil {
					return nil, false, nil, err
				}
			}
			return m, resume.CapHit, ck, nil
		}
		startIdx = resume.Cursor
	}

	// Post-order walk over the ORIGINAL nodes: the recursion of
	// Algorithm 2 treats children before their parent, and expansions
	// never change which node roots a processed subtree (the FiF never
	// evicts a subtree's own root, as its output is produced last).
	post := t.NaturalPostorder()
	for idx := startIdx; idx < len(post); idx++ {
		r := post[idx]
		if t.IsLeaf(r) {
			continue // a single node never needs I/O (M ≥ LB ≥ w̄)
		}
		if initialPeaks[r] <= M {
			continue
		}
		startIter := 0
		if resume != nil && idx == resume.Cursor {
			// The frontier node re-enters its loop with the iterations the
			// log already covers, so MaxPerNode budgets stay exact.
			startIter = resume.CurIters
		}
		exit, err := e.expandLoop(m, r, M, opts, globalCap, nil, ck, startIter)
		if err != nil {
			return nil, false, nil, ck.flushOnCancel(err)
		}
		if exit == exitCap {
			capHit = true
			break
		}
	}
	if ck != nil {
		if err := ck.finishExpand(capHit); err != nil {
			return nil, false, nil, err
		}
	}
	return m, capHit, ck, nil
}

// expandLoop runs the while-loop of Algorithm 2 at recursion node r of m:
// repeatedly reschedule r's subtree, simulate it under M with FiF eviction
// and expand one victim, until the subtree fits, the per-node budget is
// spent or the global cap trips. When rec is non-nil every performed
// expansion (victim id in m's id space, amount) is appended to it — the
// trace the parallel driver replays onto the shared tree. When ck is
// non-nil each applied expansion is logged and cursor-committed to the
// checkpoint runner (both hooks are nil-guarded, so the disarmed loop
// stays allocation-free). startIter seeds the iteration counter — a
// resumed frontier node re-enters its loop where the log left off; all
// other callers pass 0.
func (e *Engine) expandLoop(m *MutableTree, r int, M int64, opts Options, globalCap int, rec *[]expRec, ck *ckptRunner, startIter int) (loopExit, error) {
	iter := startIter
	for {
		// One check per iteration: each iteration reschedules and
		// re-simulates a whole subtree, so the select is noise — and a
		// cancelled cache makes the flatten below unusable anyway.
		if err := ctxErr(opts.Ctx); err != nil {
			return 0, err
		}
		if opts.MaxPerNode > 0 && iter >= opts.MaxPerNode {
			return exitBudget, nil
		}
		if m.Expansions() >= globalCap {
			return exitCap, nil
		}
		if m.SubtreePeak(r) <= M {
			return exitPeak, nil
		}
		e.sched = m.AppendMinMemSchedule(r, e.sched[:0])
		if _, _, err := e.sim.Run(m, r, M, e.sched, memsim.FiF); err != nil {
			return 0, mapErr(opts.Ctx, fmt.Errorf("expand: simulating subtree of %d: %w", r, err))
		}
		if opts.Victim == LargestTau {
			e.bfsPos = m.appendBFSRanks(r, e.bfsPos)
		}
		victim := pickVictimInPlace(m, r, e.sim.Positions(), e.sim.Tau(), e.sched, e.bfsPos, opts.Victim)
		if victim < 0 {
			return 0, mapErr(opts.Ctx, fmt.Errorf("expand: subtree of %d overflows M=%d but FiF evicted nothing", r, M))
		}
		amount := e.sim.Tau()[victim]
		if rec != nil {
			*rec = append(*rec, expRec{victim: victim, amount: amount})
		}
		if _, _, err := m.Expand(victim, amount); err != nil {
			return 0, mapErr(opts.Ctx, err)
		}
		iter++
		if ck != nil {
			ck.noteExp(victim, amount)
			if err := ck.commitLoop(r, iter); err != nil {
				return 0, err
			}
		}
	}
}

// ErrEmissionStopped is returned by RecExpandStream when the caller's
// yield function stopped the emission before the schedule was complete.
var ErrEmissionStopped = errors.New("expand: schedule emission stopped by consumer")

// finishStream is finish without the n-word schedules: the expanded-tree
// FiF evaluation and the original-tree validation/simulation both run on
// streamed emissions (memsim.RunStream's two deterministic passes), and
// the caller receives the original-tree schedule segment by segment during
// the last pass — which emits in releasing mode, handing each schedule
// rope back to the cache arena as it streams out.
func (e *Engine) finishStream(ctx context.Context, t *tree.Tree, m *MutableTree, M int64, capHit bool, ck *ckptRunner, yield func(seg []int) bool) (*Result, error) {
	peak := m.SubtreePeak(m.Root())
	root := m.Root()
	emitExpanded := func(y func(seg []int) bool) bool {
		return m.EmitMinMemSchedule(root, y)
	}
	finalIO, _, err := e.sim.RunStreamCtx(ctx, m, root, M, emitExpanded, memsim.FiF)
	if err != nil {
		return nil, ck.flushOnCancel(mapErr(ctx, fmt.Errorf("expand: simulating final tree: %w", err)))
	}
	// The original-tree pass filters the emission down to primary nodes in
	// original ids. RunStream invokes the source exactly twice; only the
	// second (last) pass releases ropes and tees segments to the caller.
	pass := 0
	stopped := false
	var ckErr error
	emitPrimary := func(y func(seg []int) bool) bool {
		pass++
		last := pass == 2
		filter := func(seg []int) bool {
			buf := e.primBuf[:0]
			for _, v := range seg {
				if m.role[v] == RolePrimary {
					buf = append(buf, m.orig[v])
				}
			}
			e.primBuf = buf
			if len(buf) == 0 {
				return true
			}
			if last {
				if yield != nil && !yield(buf) {
					stopped = true
					return false
				}
				// The segment is in the consumer's hands: a quiescent
				// point of the emission (every K segments hits disk).
				if ck != nil {
					if ckErr = ck.commitEmit(len(buf)); ckErr != nil {
						return false
					}
				}
			}
			return y(buf)
		}
		if last {
			return m.EmitMinMemScheduleRelease(root, filter)
		}
		return m.EmitMinMemSchedule(root, filter)
	}
	simIO, simPeak, err := e.sim.RunStreamCtx(ctx, t, t.Root(), M, emitPrimary, memsim.FiF)
	if err != nil {
		if stopped {
			// The consumer went away mid-emission: flush the committed
			// state (emission progress included) so the interrupted run is
			// resumable — the slow-client seal path of the serving layer.
			return nil, ck.flushOnCancel(ErrEmissionStopped)
		}
		if ckErr != nil {
			return nil, ckErr
		}
		return nil, ck.flushOnCancel(mapErr(ctx, fmt.Errorf("expand: simulating transposed schedule: %w", err)))
	}
	e.cacheStats = m.ProfileStats()
	return &Result{
		Schedule:      nil, // streamed to yield instead
		IO:            m.ExpansionIO() + finalIO,
		ExpansionIO:   m.ExpansionIO(),
		ResidualIO:    finalIO,
		SimulatedIO:   simIO,
		SimulatedPeak: simPeak,
		Expansions:    m.Expansions(),
		CapHit:        capHit,
		FinalPeak:     peak,
	}, nil
}

// finish computes the final expanded-tree schedule, transposes it to the
// original tree and assembles the Result — the common tail of the
// sequential and parallel drivers.
func (e *Engine) finish(ctx context.Context, t *tree.Tree, m *MutableTree, M int64, capHit bool) (*Result, error) {
	finalSched := m.AppendMinMemSchedule(m.Root(), nil)
	peak := m.SubtreePeak(m.Root())
	finalIO, _, err := e.sim.Run(m, m.Root(), M, finalSched, memsim.FiF)
	if err != nil {
		return nil, mapErr(ctx, fmt.Errorf("expand: simulating final tree: %w", err))
	}
	orig := m.PrimarySchedule(finalSched)
	if err := tree.Validate(t, orig); err != nil {
		return nil, mapErr(ctx, fmt.Errorf("expand: transposed schedule invalid: %w", err))
	}
	// Reuse the warm simulator: *tree.Tree implements no ChildRanker, so
	// this keeps the public Run's historical id tie-break while avoiding
	// its per-call scratch allocation. Only IO and Peak are consumed.
	simIO, simPeak, err := e.sim.Run(t, t.Root(), M, orig, memsim.FiF)
	if err != nil {
		return nil, mapErr(ctx, fmt.Errorf("expand: simulating transposed schedule: %w", err))
	}
	e.cacheStats = m.ProfileStats()
	return &Result{
		Schedule:      orig,
		IO:            m.ExpansionIO() + finalIO,
		ExpansionIO:   m.ExpansionIO(),
		ResidualIO:    finalIO,
		SimulatedIO:   simIO,
		SimulatedPeak: simPeak,
		Expansions:    m.Expansions(),
		CapHit:        capHit,
		FinalPeak:     peak,
	}, nil
}

// appendBFSRanks fills bfsPos (grown as needed, indexed by mutable id) with
// the BFS rank of every node of r's subtree — the id an extracted copy
// would assign. Entries of nodes outside the subtree are stale and must not
// be read.
func (m *MutableTree) appendBFSRanks(r int, bfsPos []int32) []int32 {
	for len(bfsPos) < m.N() {
		bfsPos = append(bfsPos, 0)
	}
	nodes := m.SubtreeNodes(r)
	for k, v := range nodes {
		bfsPos[v] = int32(k)
	}
	return bfsPos
}

// pickVictimInPlace is pickVictim operating directly on the mutable tree:
// candidates are read off the flattened subtree schedule (mutable ids), pos
// and tau come from the simulator's scratch. Tie-breaking reproduces the
// extracted-subtree rule: for the parent-position policies, equal keys mean
// siblings and the child-list rank stands in for the extracted id; for
// LargestTau, equal τ across arbitrary nodes falls back to the BFS rank of
// the subtree (the extracted id itself).
func pickVictimInPlace(m *MutableTree, r int, pos []int32, tau []int64, sched []int, bfsPos []int32, policy VictimPolicy) int {
	best := -1
	var bestKey, bestTau int64
	for _, i := range sched {
		ti := tau[i]
		if ti <= 0 {
			continue
		}
		var key int64
		switch policy {
		case LatestParent:
			key = int64(pos[m.Parent(i)])
		case EarliestParent:
			key = -int64(pos[m.Parent(i)])
		case LargestTau:
			key = ti
		}
		var better bool
		if best == -1 || key > bestKey {
			better = true
		} else if key == bestKey {
			if ti > bestTau {
				better = true
			} else if ti == bestTau {
				// Equal key and τ: the reference engine prefers the
				// smaller extracted id. Under the parent-position
				// policies equal keys mean same parent, so the child
				// rank decides; under LargestTau compare BFS ranks.
				if policy == LargestTau {
					better = bfsPos[i] < bfsPos[best]
				} else {
					better = m.rank[i] < m.rank[best]
				}
			}
		}
		if better {
			best, bestKey, bestTau = i, key, ti
		}
	}
	return best
}

// pickVictim returns the node of sub with positive τ selected by the
// policy, or -1 if τ is identically zero. pos must be the schedule's
// position array (sched.Positions), computed once by the caller and shared
// with the other per-iteration consumers. For LatestParent (the paper's
// rule) ties on the parent position — possible between siblings — are
// broken towards the larger τ, then the smaller node id.
func pickVictim(sub *tree.Tree, pos []int, tau []int64, policy VictimPolicy) int {
	best := -1
	var bestKey, bestTau int64
	for i, ti := range tau {
		if ti <= 0 {
			continue
		}
		var key int64
		switch policy {
		case LatestParent:
			key = int64(pos[sub.Parent(i)])
		case EarliestParent:
			key = -int64(pos[sub.Parent(i)])
		case LargestTau:
			key = ti
		}
		better := best == -1 || key > bestKey ||
			(key == bestKey && (ti > bestTau || (ti == bestTau && i < best)))
		if better {
			best, bestKey, bestTau = i, key, ti
		}
	}
	return best
}
