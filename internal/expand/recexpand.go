package expand

import (
	"fmt"

	"repro/internal/liu"
	"repro/internal/memsim"
	"repro/internal/tree"
)

// VictimPolicy selects which node with positive FiF I/O gets expanded at
// each iteration. The paper's choice is LatestParent; the others feed the
// ablation benchmarks.
type VictimPolicy int

const (
	// LatestParent expands the evicted node whose parent is scheduled
	// the latest (the paper's Line 6).
	LatestParent VictimPolicy = iota
	// EarliestParent expands the evicted node whose parent is scheduled
	// the earliest.
	EarliestParent
	// LargestTau expands the node with maximum FiF I/O volume.
	LargestTau
)

// String names the policy.
func (p VictimPolicy) String() string {
	switch p {
	case LatestParent:
		return "LatestParent"
	case EarliestParent:
		return "EarliestParent"
	case LargestTau:
		return "LargestTau"
	}
	return fmt.Sprintf("VictimPolicy(%d)", int(p))
}

// Options tunes the recursive-expansion heuristics.
type Options struct {
	// MaxPerNode caps the number of expansion iterations of the while
	// loop at every recursion node; 0 means unbounded (FULLRECEXPAND).
	// The paper's RECEXPAND uses 2.
	MaxPerNode int
	// Victim selects the expansion victim; the default (zero value) is
	// the paper's latest-scheduled-parent rule.
	Victim VictimPolicy
	// GlobalCap aborts the heuristic after this many expansions in
	// total, as a safety net against the (super-polynomial) worst case
	// of FULLRECEXPAND; 0 means 64·n + 1024.
	GlobalCap int
}

// Result is the outcome of a recursive-expansion heuristic.
type Result struct {
	// Schedule is a topological schedule of the ORIGINAL tree (the
	// expanded-tree OptMinMem schedule transposed to primary nodes).
	Schedule tree.Schedule
	// IO is the heuristic's declared I/O volume: ExpansionIO plus
	// ResidualIO (the paper's accounting).
	IO int64
	// ExpansionIO is the sum of all expansion amounts.
	ExpansionIO int64
	// ResidualIO is the FiF I/O of the final expanded tree under M;
	// zero for FULLRECEXPAND unless GlobalCap was hit.
	ResidualIO int64
	// SimulatedIO is the FiF I/O volume of Schedule on the original
	// tree — never worse than IO, since immediate writes dominate the
	// delayed writes that expansion encodes.
	SimulatedIO int64
	// Expansions is the number of expansion operations performed.
	Expansions int
	// CapHit reports that GlobalCap stopped the expansion loop early.
	CapHit bool
	// FinalPeak is the OptMinMem peak of the final expanded tree.
	FinalPeak int64
}

// FullRecExpand runs the paper's FULLRECEXPAND heuristic (Algorithm 2):
// recursively make every subtree schedulable without I/O by repeatedly
// running OPTMINMEM and expanding one FiF-evicted node per iteration.
func FullRecExpand(t *tree.Tree, M int64) (*Result, error) {
	return RecExpand(t, M, Options{MaxPerNode: 0})
}

// RecExpandDefault runs the paper's RECEXPAND variant, whose per-node
// expansion loop is cut after 2 iterations.
func RecExpandDefault(t *tree.Tree, M int64) (*Result, error) {
	return RecExpand(t, M, Options{MaxPerNode: 2})
}

// RecExpand runs the recursive-expansion heuristic with explicit options.
func RecExpand(t *tree.Tree, M int64, opts Options) (*Result, error) {
	if lb := t.MaxWBar(); M < lb {
		return nil, fmt.Errorf("expand: M=%d below LB=%d", M, lb)
	}
	cap := opts.GlobalCap
	if cap == 0 {
		cap = 64*t.N() + 1024
	}
	m := NewMutable(t)
	capHit := false

	// Expansions never increase a subtree's optimal peak (the inserted
	// chain links only re-hold data the subtree already held), so nodes
	// whose initial subtree peak fits in M can be skipped wholesale:
	// their while loop would exit on its first check, but extracting
	// and rescheduling every such subtree is what makes the recursion
	// quadratic on deep trees.
	initialPeaks := liu.AllSubtreePeaks(t)

	// Post-order walk over the ORIGINAL nodes: the recursion of
	// Algorithm 2 treats children before their parent, and expansions
	// never change which node roots a processed subtree (the FiF never
	// evicts a subtree's own root, as its output is produced last).
	for _, r := range t.NaturalPostorder() {
		if t.IsLeaf(r) {
			continue // a single node never needs I/O (M ≥ LB ≥ w̄)
		}
		if initialPeaks[r] <= M {
			continue
		}
		iter := 0
		for {
			if opts.MaxPerNode > 0 && iter >= opts.MaxPerNode {
				break
			}
			if m.Expansions() >= cap {
				capHit = true
				break
			}
			sub, toMut := m.Subtree(r)
			sched, peak := liu.MinMem(sub)
			if peak <= M {
				break
			}
			res, err := memsim.Run(sub, M, sched, memsim.FiF)
			if err != nil {
				return nil, fmt.Errorf("expand: simulating subtree of %d: %w", r, err)
			}
			victim := pickVictim(sub, sched, res.Tau, opts.Victim)
			if victim < 0 {
				return nil, fmt.Errorf("expand: subtree of %d overflows M=%d but FiF evicted nothing", r, M)
			}
			if _, _, err := m.Expand(toMut[victim], res.Tau[victim]); err != nil {
				return nil, err
			}
			iter++
		}
		if capHit {
			break
		}
	}

	final, toMut := m.Freeze()
	sched, peak := liu.MinMem(final)
	finalRes, err := memsim.Run(final, M, sched, memsim.FiF)
	if err != nil {
		return nil, fmt.Errorf("expand: simulating final tree: %w", err)
	}
	orig := m.Transpose(sched, toMut)
	if err := tree.Validate(t, orig); err != nil {
		return nil, fmt.Errorf("expand: transposed schedule invalid: %w", err)
	}
	simRes, err := memsim.Run(t, M, orig, memsim.FiF)
	if err != nil {
		return nil, fmt.Errorf("expand: simulating transposed schedule: %w", err)
	}
	return &Result{
		Schedule:    orig,
		IO:          m.ExpansionIO() + finalRes.IO,
		ExpansionIO: m.ExpansionIO(),
		ResidualIO:  finalRes.IO,
		SimulatedIO: simRes.IO,
		Expansions:  m.Expansions(),
		CapHit:      capHit,
		FinalPeak:   peak,
	}, nil
}

// pickVictim returns the node of sub with positive τ selected by the
// policy, or -1 if τ is identically zero. For LatestParent (the paper's
// rule) ties on the parent position — possible between siblings — are
// broken towards the larger τ, then the smaller node id.
func pickVictim(sub *tree.Tree, sched tree.Schedule, tau []int64, policy VictimPolicy) int {
	pos, err := sched.Positions(sub.N())
	if err != nil {
		return -1
	}
	best := -1
	var bestKey, bestTau int64
	for i, ti := range tau {
		if ti <= 0 {
			continue
		}
		var key int64
		switch policy {
		case LatestParent:
			key = int64(pos[sub.Parent(i)])
		case EarliestParent:
			key = -int64(pos[sub.Parent(i)])
		case LargestTau:
			key = ti
		}
		better := best == -1 || key > bestKey ||
			(key == bestKey && (ti > bestTau || (ti == bestTau && i < best)))
		if better {
			best, bestKey, bestTau = i, key, ti
		}
	}
	return best
}
