// Durable checkpoint/resume for the expansion engine (DESIGN.md §2.10).
//
// A checkpoint is the decision log plus a frontier cursor — never caches
// or other derived state. Expansion is deterministic and mutable-tree ids
// are assigned in Expand-call order, so replaying the logged
// (victim, amount) pairs onto a fresh NewMutable(t) reconstructs the
// exact expanded tree, and the walk can continue from the recorded
// postorder cursor as if the kill never happened. The parallel driver
// checkpoints from its merger, whose unit replays interleave expansions
// in exactly the sequential order, so a checkpoint taken mid-merge is
// resumable by the sequential walk.
package expand

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/tree"
)

// Local names for the ckpt types the walk code touches, so only this file
// imports the format package.
type ckptState = ckpt.State

const ckptPhaseFinish = ckpt.PhaseFinish

// ErrCheckpointMismatch is returned by a resume whose checkpoint does not
// belong to the live instance: a different tree, bound, victim policy or
// expansion budget (detected by fingerprint), or a log that does not
// apply to the tree. Resuming such a checkpoint would silently compute
// garbage, so it fails loudly instead.
var ErrCheckpointMismatch = errors.New("expand: checkpoint does not match this instance")

// defaultCkptInterval is the events-per-write default of
// CheckpointOptions.Interval, chosen so checkpoint-armed runs stay within
// a few percent of disarmed ones (see BenchmarkRecExpandStreamCkptOverhead200k).
const defaultCkptInterval = 256

// ckptAfterWrite, when non-nil, is invoked after every successful durable
// checkpoint write with the checkpoint path. It exists for the
// kill-anywhere tests, which snapshot the file at each write and resume
// from every snapshot; production runs leave it nil.
var ckptAfterWrite func(path string)

// ckptRunner accumulates the durable state of one checkpoint-armed run
// and writes it at quiescent points. All methods run on the goroutine
// driving the walk (the sequential walk or the parallel merger), so no
// locking is needed. A nil *ckptRunner disarms every hook.
type ckptRunner struct {
	path     string
	interval int
	fp       ckpt.Fingerprint
	postIdx  []int32 // original id -> natural-postorder index

	exps     []ckpt.Exp
	cursor   int
	curIters int
	phase    ckpt.Phase
	capHit   bool
	emitted  int64

	pending int // events since the last durable write
}

// ckptFingerprint computes the live instance's fingerprint with the
// EFFECTIVE global cap (defaults resolved), so a checkpoint taken under
// an explicit cap and one under the equivalent default interoperate.
func ckptFingerprint(t *tree.Tree, M int64, opts Options, globalCap int) ckpt.Fingerprint {
	return ckpt.Fingerprint{
		TreeHash:   ckpt.HashTree(t.Parents(), t.Weights()),
		N:          int64(t.N()),
		M:          M,
		MaxPerNode: int64(opts.MaxPerNode),
		Victim:     int64(opts.Victim),
		GlobalCap:  int64(globalCap),
	}
}

// newCkptRunner arms checkpointing for one run.
func newCkptRunner(t *tree.Tree, M int64, opts Options, globalCap int) *ckptRunner {
	interval := opts.Checkpoint.Interval
	if interval <= 0 {
		interval = defaultCkptInterval
	}
	post := t.NaturalPostorder()
	postIdx := make([]int32, t.N())
	for i, v := range post {
		postIdx[v] = int32(i)
	}
	return &ckptRunner{
		path:     opts.Checkpoint.Path,
		interval: interval,
		fp:       ckptFingerprint(t, M, opts, globalCap),
		postIdx:  postIdx,
	}
}

// seed loads a resumed run's already-replayed state into the runner, so
// the next write carries the full log.
func (ck *ckptRunner) seed(st *ckpt.State) {
	ck.exps = st.Exps
	ck.cursor = st.Cursor
	ck.curIters = st.CurIters
	ck.phase = st.Phase
	ck.capHit = st.CapHit
	ck.emitted = st.EmittedIDs
}

// noteExp logs one applied expansion (victim in the shared mutable-tree
// id space). Called immediately after a successful Expand, before the
// cursor commit that makes it checkpointable.
func (ck *ckptRunner) noteExp(victim int, amount int64) {
	ck.exps = append(ck.exps, ckpt.Exp{Victim: victim, Amount: amount})
	ck.pending++
}

// commitLoop marks a quiescent point inside recursion node r's expansion
// loop: iters iterations are complete there and every earlier decision is
// in the log. Writes a checkpoint when the interval is due.
func (ck *ckptRunner) commitLoop(r, iters int) error {
	ck.cursor = int(ck.postIdx[r])
	ck.curIters = iters
	if ck.pending >= ck.interval {
		return ck.write()
	}
	return nil
}

// advance moves the cursor past a fully-processed postorder prefix (the
// merger calls it after replaying a whole unit). No write: the next due
// commit records the advanced cursor.
func (ck *ckptRunner) advance(postIdx int) {
	if postIdx > ck.cursor {
		ck.cursor = postIdx
		ck.curIters = 0
	}
}

// finishExpand marks the expansion walk complete — every decision is in
// the log, the run is entering final evaluation/emission — and always
// writes: the phase transition is what lets a resume skip the walk (and,
// for streams, is durably on disk before the first id is emitted).
func (ck *ckptRunner) finishExpand(capHit bool) error {
	ck.phase = ckpt.PhaseFinish
	ck.capHit = capHit
	ck.cursor = len(ck.postIdx)
	ck.curIters = 0
	return ck.write()
}

// commitEmit marks n more schedule ids handed to the streaming consumer.
// The count is informational — resume seeks the output stream by what is
// actually on disk, which may be ahead of or behind the checkpoint — but
// the periodic write bounds how much log the checkpoint can lag by.
func (ck *ckptRunner) commitEmit(n int) error {
	ck.emitted += int64(n)
	ck.pending++
	if ck.pending >= ck.interval {
		return ck.write()
	}
	return nil
}

// write durably replaces the checkpoint file with the current state.
func (ck *ckptRunner) write() error {
	st := &ckpt.State{
		FP:         ck.fp,
		Exps:       ck.exps,
		Cursor:     ck.cursor,
		CurIters:   ck.curIters,
		Phase:      ck.phase,
		CapHit:     ck.capHit,
		EmittedIDs: ck.emitted,
	}
	if err := ckpt.WriteFile(ck.path, st); err != nil {
		return fmt.Errorf("expand: writing checkpoint: %w", err)
	}
	ck.pending = 0
	if ckptAfterWrite != nil {
		ckptAfterWrite(ck.path)
	}
	return nil
}

// flushOnCancel is the drain hook of a checkpoint-armed run: when err is a
// context cancellation (a graceful drain, a SIGTERM, a request timeout) or
// a consumer-stopped emission (ErrEmissionStopped — a serving client that
// went away or was sealed for reading too slowly) and events are pending
// since the last durable write, the runner's latest committed state is
// flushed so a resume continues from the interruption point instead of up
// to Interval events earlier. The state written is always a committed
// quiescent one — noteExp/commitLoop/commitEmit keep the in-memory runner
// consistent between events — so the flushed checkpoint is
// indistinguishable from a periodic one. err is returned unchanged; a
// failed flush is ignored, because the previous durable checkpoint remains
// valid and the caller is already failing with the more meaningful
// interruption error. Safe on a nil (disarmed) runner.
func (ck *ckptRunner) flushOnCancel(err error) error {
	if ck == nil || err == nil {
		return err
	}
	if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) &&
		!errors.Is(err, ErrEmissionStopped) {
		return err
	}
	if ck.pending > 0 {
		_ = ck.write()
	}
	return err
}

// loadResume reads and validates the checkpoint a run resumes from. The
// fingerprint must match the live instance exactly; the frontier must be
// inside the tree.
func loadResume(t *tree.Tree, M int64, opts Options, globalCap int) (*ckpt.State, error) {
	st, err := ckpt.ReadFile(opts.ResumeFrom)
	if err != nil {
		return nil, fmt.Errorf("expand: reading checkpoint %s: %w", opts.ResumeFrom, err)
	}
	fp := ckptFingerprint(t, M, opts, globalCap)
	if st.FP != fp {
		return nil, fmt.Errorf("%w: checkpoint fingerprint %+v, live instance %+v", ErrCheckpointMismatch, st.FP, fp)
	}
	if st.Cursor < 0 || st.Cursor > t.N() || st.CurIters < 0 {
		return nil, fmt.Errorf("%w: frontier (cursor=%d iters=%d) outside the tree", ErrCheckpointMismatch, st.Cursor, st.CurIters)
	}
	return st, nil
}

// replayLog re-applies a checkpoint's decision log onto a fresh mutable
// tree. Ids are assigned in Expand-call order on both sides, so the log's
// victim ids land on exactly the nodes the original run expanded; any
// structural disagreement (a victim id the tree has not grown yet, an
// amount the node cannot carry) means the checkpoint belongs to a
// different instance and surfaces as ErrCheckpointMismatch.
func replayLog(m *MutableTree, st *ckpt.State) error {
	for i, ex := range st.Exps {
		if ex.Victim < 0 || ex.Victim >= m.N() || ex.Amount <= 0 {
			return fmt.Errorf("%w: logged expansion %d targets node %d of a %d-node tree", ErrCheckpointMismatch, i, ex.Victim, m.N())
		}
		if _, _, err := m.Expand(ex.Victim, ex.Amount); err != nil {
			return fmt.Errorf("%w: replaying logged expansion %d: %v", ErrCheckpointMismatch, i, err)
		}
	}
	return nil
}
