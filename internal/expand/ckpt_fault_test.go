//go:build faultinject

package expand

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/faultinject"
)

// TestCkptFaultGrid injects a checkpoint-write failure and a rename
// failure at deterministic hits of checkpoint-armed runs: the run must
// fail with the typed sentinel, the checkpoint on disk must remain the
// last successfully committed state (readable, fingerprint-valid), and
// resuming from it must reproduce the uninterrupted Result bit-for-bit.
// This is the fail-then-recover loop an operator would actually run.
func TestCkptFaultGrid(t *testing.T) {
	defer faultinject.Reset()
	n := 6
	if testing.Short() {
		n = 3
	}
	cases := ckptCorpus(t, n, 6161)
	for ci, c := range cases {
		want, err := RecExpand(c.tr, c.M, c.opts)
		if err != nil {
			t.Fatalf("case %d: baseline: %v", ci, err)
		}
		for _, workers := range []int{1, 4} {
			dir := t.TempDir()
			path := filepath.Join(dir, "run.ckpt")
			opts := c.opts
			opts.Workers = workers
			opts.Checkpoint = CheckpointOptions{Path: path, Interval: 1}

			// Counting run: how many durable writes does this run take?
			faultinject.Reset()
			if _, err := RecExpand(c.tr, c.M, opts); err != nil {
				t.Fatalf("case %d workers=%d: counting run: %v", ci, workers, err)
			}
			writes := faultinject.Hits(faultinject.CkptWrite)
			if writes == 0 {
				t.Fatalf("case %d workers=%d: no checkpoint writes counted", ci, workers)
			}

			for _, tc := range []struct {
				point    faultinject.Point
				sentinel error
			}{
				{faultinject.CkptWrite, faultinject.ErrCkptWrite},
				{faultinject.CkptRename, faultinject.ErrCkptRename},
			} {
				os.Remove(path)
				os.Remove(path + ".tmp")
				hit := faultinject.PlanHit(int64(ci*100+workers), tc.point, writes)
				faultinject.Reset()
				faultinject.Arm(tc.point, hit)
				_, err := RecExpand(c.tr, c.M, opts)
				faultinject.Reset()
				if !errors.Is(err, tc.sentinel) {
					t.Fatalf("case %d workers=%d %v hit %d: err = %v, want %v",
						ci, workers, tc.point, hit, err, tc.sentinel)
				}

				ropts := c.opts
				ropts.ResumeFrom = path
				if hit == 1 {
					// The very first write failed: no checkpoint was ever
					// committed, and resume must say so rather than read
					// the half-written temp file.
					if _, err := RecExpand(c.tr, c.M, ropts); !errors.Is(err, os.ErrNotExist) {
						t.Fatalf("case %d workers=%d %v: resume without committed checkpoint: %v",
							ci, workers, tc.point, err)
					}
					continue
				}
				// The committed checkpoint must be intact and resumable.
				if _, err := ckpt.ReadFile(path); err != nil {
					t.Fatalf("case %d workers=%d %v hit %d: surviving checkpoint unreadable: %v",
						ci, workers, tc.point, hit, err)
				}
				got, err := RecExpand(c.tr, c.M, ropts)
				if err != nil {
					t.Fatalf("case %d workers=%d %v hit %d: resume: %v", ci, workers, tc.point, hit, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("case %d workers=%d %v hit %d: resumed Result diverges", ci, workers, tc.point, hit)
				}
			}
		}
	}
}
