package expand

import (
	"fmt"

	"repro/internal/liu"
	"repro/internal/memsim"
	"repro/internal/tree"
)

// ReferenceRecExpand is the frozen pre-incremental expansion engine: every
// iteration extracts the current subtree as a standalone tree, reschedules
// it with a from-scratch liu.MinMem and simulates it with a freshly
// allocated memsim.Run — O(subtree) work per iteration, quadratic or worse
// on deep trees. It exists as the differential-testing and benchmarking
// baseline for RecExpand, which must produce bit-identical results on the
// memoized-profile engine.
func ReferenceRecExpand(t *tree.Tree, M int64, opts Options) (*Result, error) {
	if lb := t.MaxWBar(); M < lb {
		return nil, fmt.Errorf("expand: M=%d below LB=%d", M, lb)
	}
	globalCap := opts.GlobalCap
	if globalCap == 0 {
		globalCap = 64*t.N() + 1024
	}
	m := NewMutable(t)
	capHit := false

	// Expansions never increase a subtree's optimal peak (the inserted
	// chain links only re-hold data the subtree already held), so nodes
	// whose initial subtree peak fits in M can be skipped wholesale:
	// their while loop would exit on its first check, but extracting
	// and rescheduling every such subtree is what makes the recursion
	// quadratic on deep trees.
	initialPeaks := liu.AllSubtreePeaks(t)

	// Post-order walk over the ORIGINAL nodes: the recursion of
	// Algorithm 2 treats children before their parent, and expansions
	// never change which node roots a processed subtree (the FiF never
	// evicts a subtree's own root, as its output is produced last).
	for _, r := range t.NaturalPostorder() {
		if t.IsLeaf(r) {
			continue // a single node never needs I/O (M ≥ LB ≥ w̄)
		}
		if initialPeaks[r] <= M {
			continue
		}
		iter := 0
		for {
			if opts.MaxPerNode > 0 && iter >= opts.MaxPerNode {
				break
			}
			if m.Expansions() >= globalCap {
				capHit = true
				break
			}
			sub, toMut := m.Subtree(r)
			sched, peak := liu.MinMem(sub)
			if peak <= M {
				break
			}
			res, err := memsim.Run(sub, M, sched, memsim.FiF)
			if err != nil {
				return nil, fmt.Errorf("expand: simulating subtree of %d: %w", r, err)
			}
			pos, err := sched.Positions(sub.N())
			if err != nil {
				return nil, fmt.Errorf("expand: subtree schedule of %d: %w", r, err)
			}
			victim := pickVictim(sub, pos, res.Tau, opts.Victim)
			if victim < 0 {
				return nil, fmt.Errorf("expand: subtree of %d overflows M=%d but FiF evicted nothing", r, M)
			}
			if _, _, err := m.Expand(toMut[victim], res.Tau[victim]); err != nil {
				return nil, err
			}
			iter++
		}
		if capHit {
			break
		}
	}

	final, toMut := m.Freeze()
	sched, peak := liu.MinMem(final)
	finalRes, err := memsim.Run(final, M, sched, memsim.FiF)
	if err != nil {
		return nil, fmt.Errorf("expand: simulating final tree: %w", err)
	}
	orig := m.Transpose(sched, toMut)
	if err := tree.Validate(t, orig); err != nil {
		return nil, fmt.Errorf("expand: transposed schedule invalid: %w", err)
	}
	simRes, err := memsim.Run(t, M, orig, memsim.FiF)
	if err != nil {
		return nil, fmt.Errorf("expand: simulating transposed schedule: %w", err)
	}
	return &Result{
		Schedule:      orig,
		IO:            m.ExpansionIO() + finalRes.IO,
		ExpansionIO:   m.ExpansionIO(),
		ResidualIO:    finalRes.IO,
		SimulatedIO:   simRes.IO,
		SimulatedPeak: simRes.Peak,
		Expansions:    m.Expansions(),
		CapHit:        capHit,
		FinalPeak:     peak,
	}, nil
}
