package expand

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/liu"
	"repro/internal/randtree"
	"repro/internal/tree"
)

// TestRecExpandParallelDeterminism is the parallel engine's differential
// guarantee: across the same 220-instance corpus as
// TestRecExpandMatchesReference — all victim policies, per-node budgets
// and (occasionally tiny) global caps — the Result must be
// reflect.DeepEqual-identical for Workers ∈ {1, 2, 8}, and identical to
// the frozen reference engine. Workers > 1 always takes the sharded
// driver, whatever the tree size, so this exercises unit planning, local
// traces and the replay's cap accounting on every instance.
func TestRecExpandParallelDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	tried := 0
	for trial := 0; tried < 220; trial++ {
		var tr *tree.Tree
		if trial%3 == 0 {
			tr = randtree.Synth(20+rng.Intn(150), rng)
		} else {
			tr = randomTree(2+rng.Intn(60), rng)
		}
		lb := tr.MaxWBar()
		_, peak := liu.MinMem(tr)
		if peak <= lb {
			continue
		}
		M := lb + rng.Int63n(peak-lb)
		opts := Options{
			MaxPerNode: []int{0, 1, 2, 5}[rng.Intn(4)],
			Victim:     []VictimPolicy{LatestParent, EarliestParent, LargestTau}[rng.Intn(3)],
		}
		if rng.Intn(8) == 0 {
			opts.GlobalCap = 1 + rng.Intn(4)
		}
		tried++
		opts.Workers = 1
		want, err := RecExpand(tr, M, opts)
		if err != nil {
			t.Fatalf("trial %d: sequential engine: %v", trial, err)
		}
		for _, workers := range []int{2, 8} {
			opts.Workers = workers
			got, err := RecExpand(tr, M, opts)
			if err != nil {
				t.Fatalf("trial %d: workers=%d: %v", trial, workers, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d: workers=%d diverges (opts=%+v M=%d n=%d)\nparallel:   %+v\nsequential: %+v",
					trial, workers, opts, M, tr.N(), got, want)
			}
		}
		opts.Workers = 0
		ref, err := ReferenceRecExpand(tr, M, opts)
		if err != nil {
			t.Fatalf("trial %d: reference engine: %v", trial, err)
		}
		if !reflect.DeepEqual(want, ref) {
			t.Fatalf("trial %d: sequential engine diverges from reference (opts=%+v M=%d)", trial, opts, M)
		}
	}
	if tried < 200 {
		t.Fatalf("only %d I/O-bound instances generated, need >= 200", tried)
	}
}

// TestRecExpandParallelCapCorpus hammers the replay's cap reconciliation:
// with a global cap in the interesting range (around the unconstrained
// expansion count), CapHit and the truncated expansion sequence must be
// identical for every worker count.
func TestRecExpandParallelCapCorpus(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tried := 0
	for tried < 120 {
		tr := randtree.Synth(30+rng.Intn(200), rng)
		lb := tr.MaxWBar()
		_, peak := liu.MinMem(tr)
		if peak <= lb {
			continue
		}
		tried++
		M := lb + rng.Int63n(peak-lb)
		free, err := RecExpand(tr, M, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		cap := 1 + rng.Intn(free.Expansions+2)
		opts := Options{GlobalCap: cap, Workers: 1}
		want, err := RecExpand(tr, M, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 8} {
			opts.Workers = workers
			got, err := RecExpand(tr, M, opts)
			if err != nil {
				t.Fatalf("cap=%d workers=%d: %v", cap, workers, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("cap=%d workers=%d diverges: CapHit %v/%v, Expansions %d/%d",
					cap, workers, got.CapHit, want.CapHit, got.Expansions, want.Expansions)
			}
		}
	}
}

// TestRecExpandParallelWideForest runs the shape the sharded driver is
// built for — a root over many independent bushy, I/O-bound subtrees —
// and checks unit planning actually fires (several units) while the
// result stays identical to the sequential engine.
func TestRecExpandParallelWideForest(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := forestTree(8, 120, rng)
	lb := tr.MaxWBar()
	_, peak := liu.MinMem(tr)
	if peak <= lb {
		t.Fatal("forest instance is not I/O-bound")
	}
	M := (lb + peak) / 2
	initialPeaks := liu.AllSubtreePeaks(tr)
	units, _ := planUnits(tr, initialPeaks, M, 4, tr.NaturalPostorder())
	if len(units) < 2 {
		t.Fatalf("expected several units on a forest of bushy subtrees, got %d", len(units))
	}
	want, err := RecExpand(tr, M, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := RecExpand(tr, M, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("forest: parallel result diverges from sequential")
	}
	if err := tree.Validate(tr, got.Schedule); err != nil {
		t.Fatalf("forest: invalid schedule: %v", err)
	}
}

// TestWorthSharding pins the auto-mode fallback heuristic: a deep chain's
// overflow up-set is a path (almost all recursion nodes residual), so
// sharding is not worth it, while a forest of bushy subtrees is the
// designed fan-out shape.
func TestWorthSharding(t *testing.T) {
	chain := deepChainTree(2900, 100, rand.New(rand.NewSource(3)))
	lb := chain.MaxWBar()
	_, peak := liu.MinMem(chain)
	if peak <= lb {
		t.Fatal("deep chain not I/O-bound")
	}
	M := (lb + peak) / 2
	peaks := liu.AllSubtreePeaks(chain)
	units, idx := planUnits(chain, peaks, M, 8, chain.NaturalPostorder())
	if worthSharding(chain, peaks, M, units, idx) {
		t.Fatal("deep chain reported worth sharding")
	}

	forest := forestTree(8, 120, rand.New(rand.NewSource(7)))
	lb = forest.MaxWBar()
	_, peak = liu.MinMem(forest)
	M = (lb + peak) / 2
	peaks = liu.AllSubtreePeaks(forest)
	units, idx = planUnits(forest, peaks, M, 4, forest.NaturalPostorder())
	if !worthSharding(forest, peaks, M, units, idx) {
		t.Fatal("forest reported not worth sharding")
	}
}

// deepChainTree is a bushy Synth subtree below a unit spine (the
// experiments.DeepChain shape, rebuilt locally to avoid an import cycle).
func deepChainTree(spine, bushy int, rng *rand.Rand) *tree.Tree {
	bottom := randtree.Synth(bushy, rng)
	n := spine + bottom.N()
	parent := make([]int, n)
	weight := make([]int64, n)
	parent[0] = tree.None
	weight[0] = 1
	for i := 1; i < spine; i++ {
		parent[i] = i - 1
		weight[i] = 1
	}
	for i := 0; i < bottom.N(); i++ {
		if p := bottom.Parent(i); p == tree.None {
			parent[spine+i] = spine - 1
		} else {
			parent[spine+i] = spine + p
		}
		weight[spine+i] = bottom.Weight(i)
	}
	return tree.MustNew(parent, weight)
}

// forestTree builds a small-weight root over k copies of one Synth
// subtree of m nodes — the forest-of-bushy-subtrees adversarial shape of
// the parallel benchmarks. Using the same subtree k times gives every
// branch the same peak, so a bound between the subtree's LB and its peak
// makes all k branches overflow at once (maximum unit parallelism); a
// weight-1 buffer node between the root and each copy keeps the forest's
// peak driven by the subtree peaks rather than by the sum of the subtree
// outputs.
func forestTree(k, m int, rng *rand.Rand) *tree.Tree {
	sub := randtree.Synth(m, rng)
	parent := []int{tree.None}
	weight := []int64{1}
	for i := 0; i < k; i++ {
		buf := len(parent)
		parent = append(parent, 0)
		weight = append(weight, 1)
		off := len(parent)
		for v := 0; v < sub.N(); v++ {
			p := sub.Parent(v)
			if p == tree.None {
				parent = append(parent, buf)
			} else {
				parent = append(parent, p+off)
			}
			weight = append(weight, sub.Weight(v))
		}
	}
	return tree.MustNew(parent, weight)
}
