package expand

import (
	"fmt"

	"repro/internal/liu"
	"repro/internal/tree"
)

// Role distinguishes the three links of an expansion chain.
type Role uint8

const (
	// RolePrimary marks a node that executes an original task (i1 keeps
	// the identity of the expanded node).
	RolePrimary Role = iota
	// RoleMiddle marks the i2 link, whose reduced weight represents the
	// period during which τ(i) units sit on disk.
	RoleMiddle
	// RoleRead marks the i3 link, modelling the read-back of the data
	// just before the parent's execution.
	RoleRead
)

// MutableTree is a growable task tree supporting node expansion while
// remembering, for every node, which original task it stems from.
type MutableTree struct {
	parent   []int
	children [][]int
	weight   []int64
	orig     []int
	role     []Role
	rank     []int32 // position in the parent's child list
	root     int

	expansionIO int64
	expansions  int

	// profiles, when enabled, memoizes the optimal hill–valley profile of
	// every subtree; Expand keeps it consistent by invalidating exactly
	// the root-path of the expansion site.
	profiles *liu.ProfileCache
}

// NewMutable copies t into a fresh mutable tree. Node ids 0..t.N()-1 match
// the original ids.
func NewMutable(t *tree.Tree) *MutableTree {
	n := t.N()
	m := &MutableTree{
		parent:   make([]int, n),
		children: make([][]int, n),
		weight:   make([]int64, n),
		orig:     make([]int, n),
		role:     make([]Role, n),
		rank:     make([]int32, n),
		root:     t.Root(),
	}
	copy(m.parent, t.Parents())
	copy(m.weight, t.Weights())
	for i := 0; i < n; i++ {
		m.children[i] = append([]int(nil), t.Children(i)...)
		m.orig[i] = i
		m.role[i] = RolePrimary
		for k, c := range m.children[i] {
			m.rank[c] = int32(k)
		}
	}
	return m
}

// N returns the current number of nodes.
func (m *MutableTree) N() int { return len(m.parent) }

// Root returns the current root (a RoleRead node if the original root was
// expanded, though the heuristics never expand a subtree root).
func (m *MutableTree) Root() int { return m.root }

// Weight returns the current weight of node i.
func (m *MutableTree) Weight(i int) int64 { return m.weight[i] }

// Orig returns the original task from which node i stems.
func (m *MutableTree) Orig(i int) int { return m.orig[i] }

// Role returns the expansion role of node i.
func (m *MutableTree) Role(i int) Role { return m.role[i] }

// Children returns node i's current children (owned by the tree).
func (m *MutableTree) Children(i int) []int { return m.children[i] }

// Parent returns node i's current parent, or tree.None for the root.
func (m *MutableTree) Parent(i int) int { return m.parent[i] }

// ChildRanks returns, for every node, its position in its parent's child
// list (the memsim.ChildRanker extension). Sibling ranks reproduce the id
// order an extracted copy of a subtree would assign, which keeps in-place
// simulations bit-identical to extract-and-simulate. The slice is owned by
// the tree and valid until the next Expand.
func (m *MutableTree) ChildRanks() []int32 { return m.rank }

// ExpansionIO returns the accumulated volume of all expansions so far.
func (m *MutableTree) ExpansionIO() int64 { return m.expansionIO }

// Expansions returns the number of Expand calls performed.
func (m *MutableTree) Expansions() int { return m.expansions }

// Expand replaces node i (current weight w) by the chain i → i2 → i3 with
// weights w, w−amount, w, where i3 takes i's place below i's parent. The
// expanded node may itself be a link of a previous expansion. It returns
// the ids of the two new nodes.
func (m *MutableTree) Expand(i int, amount int64) (i2, i3 int, err error) {
	if i < 0 || i >= m.N() {
		return 0, 0, fmt.Errorf("expand: node %d out of range", i)
	}
	w := m.weight[i]
	if amount <= 0 || amount > w {
		return 0, 0, fmt.Errorf("expand: amount %d out of (0, %d] for node %d", amount, w, i)
	}
	i2 = m.addNode(w-amount, m.orig[i], RoleMiddle)
	i3 = m.addNode(w, m.orig[i], RoleRead)
	p := m.parent[i]
	if p == tree.None {
		m.root = i3
	} else {
		cs := m.children[p]
		for k, c := range cs {
			if c == i {
				cs[k] = i3
				break
			}
		}
	}
	m.parent[i3] = p
	m.rank[i3] = m.rank[i] // i3 takes i's slot below p
	m.children[i3] = append(m.children[i3], i2)
	m.parent[i2] = i3
	m.rank[i2] = 0
	m.children[i2] = append(m.children[i2], i)
	m.parent[i] = i2
	m.rank[i] = 0
	m.expansionIO += amount
	m.expansions++
	if m.profiles != nil {
		// i's own subtree is unchanged; everything from i3 to the root
		// sees a new shape.
		m.profiles.Grow()
		m.profiles.Invalidate(i3)
		// i's clean subtree now hangs below the dirty chain: surface it to
		// the residency policy, which cannot discover it from the root-path
		// walk alone.
		m.profiles.NoteCandidate(i)
	}
	return i2, i3, nil
}

func (m *MutableTree) addNode(w int64, orig int, role Role) int {
	id := m.N()
	m.parent = append(m.parent, tree.None)
	m.children = append(m.children, nil)
	m.weight = append(m.weight, w)
	m.orig = append(m.orig, orig)
	m.role = append(m.role, role)
	m.rank = append(m.rank, 0)
	return id
}

// EnableProfiles attaches the memoized Liu profile cache, turning
// SubtreePeak and AppendMinMemSchedule into incremental queries: after an
// Expand, only the profiles on the path from the expansion site to the root
// are recomputed. Enabling is idempotent.
func (m *MutableTree) EnableProfiles() { m.EnableProfilesOpts(liu.CacheOptions{}) }

// EnableProfilesOpts is EnableProfiles with an explicit residency policy
// (memory budget / segment cap; see liu.CacheOptions). The policy never
// changes query results, only the cache's memory/time trade-off. Enabling
// is idempotent; the first call's options win.
func (m *MutableTree) EnableProfilesOpts(opts liu.CacheOptions) {
	if m.profiles == nil {
		m.profiles = liu.NewProfileCacheOpts(m, opts)
	}
}

// ProfileStats returns the residency counters of the attached profile
// cache (zero values if EnableProfiles was never called).
func (m *MutableTree) ProfileStats() liu.CacheStats {
	if m.profiles == nil {
		return liu.CacheStats{}
	}
	return m.profiles.Stats()
}

// CheckProfileInvariants audits the attached profile cache's residency
// accounting, pin counters and dirtiness closure
// (liu.(*ProfileCache).CheckInvariants); it returns nil when no cache is
// attached. The certification harness calls it after every engine run via
// Options.VerifyCache.
func (m *MutableTree) CheckProfileInvariants() error {
	if m.profiles == nil {
		return nil
	}
	return m.profiles.CheckInvariants()
}

// ProfileSnapshot captures a read-only view of the attached cache for
// concurrent AdoptProfiles readers; see liu.CacheSnapshot for the pinning
// contract. EnableProfiles must have been called.
func (m *MutableTree) ProfileSnapshot() liu.CacheSnapshot { return m.profiles.Snapshot() }

// PinProfiles marks v's subtree profile unevictable while a concurrent
// snapshot reader may be walking it. EnableProfiles must have been called.
func (m *MutableTree) PinProfiles(v int) { m.profiles.Pin(v) }

// UnpinProfiles releases a PinProfiles.
func (m *MutableTree) UnpinProfiles(v int) { m.profiles.Unpin(v) }

// DropQueuedProfileSlices empties the cache's consumed-slice eviction
// queue; see liu.(*ProfileCache).DropQueuedSlices for when the parallel
// driver must do this.
func (m *MutableTree) DropQueuedProfileSlices() { m.profiles.DropQueuedSlices() }

// AdoptProfiles transplants the resident profiles of src's subtree at
// srcRoot (over srcT, which must have the same shape and child order as
// this tree's subtree at dstRoot) into the attached cache; see
// liu.(*ProfileCache).AdoptSubtree. It returns the number of adopted node
// profiles. EnableProfiles must have been called.
func (m *MutableTree) AdoptProfiles(src liu.CacheSnapshot, srcT liu.TreeLike, srcRoot, dstRoot int) int {
	return m.profiles.AdoptSubtree(src, srcT, srcRoot, dstRoot)
}

// SubtreePeak returns the optimal (OPTMINMEM) peak memory of r's current
// subtree, served from the profile cache. EnableProfiles must have been
// called.
func (m *MutableTree) SubtreePeak(r int) int64 { return m.profiles.Peak(r) }

// WarmProfiles computes every subtree's profile bottom-up with up to
// workers concurrent warmers over disjoint subtree shards (see
// liu.ProfileCache.EnsureParallel); the cached state is identical to a
// sequential warm. EnableProfiles must have been called.
func (m *MutableTree) WarmProfiles(workers int) { m.profiles.EnsureParallel(m.root, workers) }

// InitialPeaks warms the profile cache (sharded across workers) and
// returns every node's current subtree peak. The expansion drivers call
// it before any expansion and gate each recursion node on these INITIAL
// peaks — not on the cheap current-peak check inside the loop — because
// the reference engine consults the global cap only at nodes whose
// initial peak exceeds M; gating on anything else would flip CapHit in
// corner cases and break the bit-identity contract with
// ReferenceRecExpand. (Expansions never increase a subtree's optimal
// peak, so an initially fitting subtree never needs a loop at all.)
// EnableProfiles must have been called.
func (m *MutableTree) InitialPeaks(workers int) []int64 {
	m.WarmProfiles(workers)
	peaks := make([]int64, m.N())
	for i := range peaks {
		peaks[i] = m.profiles.Peak(i)
	}
	return peaks
}

// AppendMinMemSchedule appends an optimal peak-memory traversal of r's
// current subtree — what liu.MinMem would return on an extracted copy,
// expressed in mutable-tree ids — to dst and returns the extended slice.
// It is a thin collector over EmitMinMemSchedule. EnableProfiles must have
// been called.
func (m *MutableTree) AppendMinMemSchedule(r int, dst []int) []int {
	return m.profiles.AppendSchedule(r, dst)
}

// EmitMinMemSchedule streams the optimal traversal of r's current subtree
// to yield segment by segment (mutable-tree ids, reusable chunks) without
// materializing it; see liu.(*ProfileCache).EmitSchedule. EnableProfiles
// must have been called.
func (m *MutableTree) EmitMinMemSchedule(r int, yield func(seg []int) bool) bool {
	return m.profiles.EmitSchedule(r, yield)
}

// EmitMinMemScheduleRelease is EmitMinMemSchedule in releasing mode: rope
// pages return to the cache arena as the traversal streams out and r's
// subtree is left clean-but-evicted; see
// liu.(*ProfileCache).EmitScheduleRelease for when releasing engages.
// EnableProfiles must have been called.
func (m *MutableTree) EmitMinMemScheduleRelease(r int, yield func(seg []int) bool) bool {
	return m.profiles.EmitScheduleRelease(r, yield)
}

// SubtreeNodes returns the nodes of r's current subtree, r first.
func (m *MutableTree) SubtreeNodes(r int) []int {
	nodes := []int{r}
	for head := 0; head < len(nodes); head++ {
		nodes = append(nodes, m.children[nodes[head]]...)
	}
	return nodes
}

// Subtree extracts the current subtree rooted at r as an immutable tree
// together with the mapping from new ids to mutable-tree ids. The id remap
// is a dense slice indexed by mutable id, not a hash map: extraction is a
// plain O(n) pass.
func (m *MutableTree) Subtree(r int) (*tree.Tree, []int) {
	nodes := m.SubtreeNodes(r)
	toNew := make([]int, m.N())
	for k, v := range nodes {
		toNew[v] = k
	}
	parent := make([]int, len(nodes))
	weight := make([]int64, len(nodes))
	for k, v := range nodes {
		weight[k] = m.weight[v]
		if v == r {
			parent[k] = tree.None
		} else {
			parent[k] = toNew[m.parent[v]]
		}
	}
	return tree.MustNew(parent, weight), nodes
}

// Freeze extracts the whole current tree, as Subtree(Root()).
func (m *MutableTree) Freeze() (*tree.Tree, []int) {
	return m.Subtree(m.root)
}

// Transpose maps a schedule on an extracted copy of the mutable tree back
// to the original tree: only RolePrimary nodes are kept, renamed to their
// original ids. toMut maps extracted-tree ids to mutable-tree ids, as
// returned by Subtree or Freeze.
func (m *MutableTree) Transpose(sched tree.Schedule, toMut []int) tree.Schedule {
	out := make(tree.Schedule, 0, len(sched))
	for _, v := range sched {
		mv := toMut[v]
		if m.role[mv] == RolePrimary {
			out = append(out, m.orig[mv])
		}
	}
	return out
}

// PrimarySchedule maps a schedule expressed directly in mutable-tree ids
// back to the original tree: only RolePrimary nodes are kept, renamed to
// their original ids. It is Transpose with the identity id map.
func (m *MutableTree) PrimarySchedule(sched []int) tree.Schedule {
	out := make(tree.Schedule, 0, len(sched))
	for _, v := range sched {
		if m.role[v] == RolePrimary {
			out = append(out, m.orig[v])
		}
	}
	return out
}
