//go:build faultinject

package expand

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/liu"
	"repro/internal/randtree"
	"repro/internal/tree"
)

// faultConfig is one engine configuration of the injection grid and the
// points that can fire under it.
type faultConfig struct {
	name   string
	opts   Options
	points []faultinject.Point
}

// TestFaultInjectionGrid is the property harness of the robustness work:
// over the same 220-instance corpus as the differential grid, inject one
// deterministic fault per (instance, configuration, point) — count the
// point's hits on a clean run, arm a seed-derived hit index, re-run — and
// assert the all-or-nothing contract: a residency fault (forced eviction,
// worker stall) must leave the Result bit-identical, a failure fault
// (arena allocation, worker panic) must surface as the matching typed
// error, and after any fault the SAME engine must reproduce the clean
// run bit-for-bit.
func TestFaultInjectionGrid(t *testing.T) {
	defer faultinject.Reset()
	corpus := 220
	if testing.Short() {
		corpus = 60 // the -race CI smoke: same property, smaller grid
	}
	configs := []faultConfig{
		{
			name: "sequential/budgeted",
			opts: Options{Workers: 1, CacheBudget: 1 << 12},
			points: []faultinject.Point{
				faultinject.ArenaAlloc,
				faultinject.CacheEvict,
			},
		},
		{
			name: "parallel/2workers",
			opts: Options{Workers: 2},
			points: []faultinject.Point{
				faultinject.ArenaAlloc,
				faultinject.WorkerPanic,
				faultinject.WorkerStall,
			},
		},
	}
	engines := []*Engine{NewEngine(), NewEngine()}

	rng := rand.New(rand.NewSource(2024))
	tried := 0
	for trial := 0; tried < corpus; trial++ {
		var tr *tree.Tree
		if trial%3 == 0 {
			tr = randtree.Synth(20+rng.Intn(150), rng)
		} else {
			tr = randomTree(2+rng.Intn(60), rng)
		}
		lb := tr.MaxWBar()
		_, peak := liu.MinMem(tr)
		if peak <= lb {
			continue
		}
		M := lb + rng.Int63n(peak-lb)
		maxPerNode := []int{0, 1, 2, 5}[rng.Intn(4)]
		victim := []VictimPolicy{LatestParent, EarliestParent, LargestTau}[rng.Intn(3)]
		tried++

		for ci, cfg := range configs {
			opts := cfg.opts
			opts.MaxPerNode, opts.Victim = maxPerNode, victim
			eng := engines[ci]

			// Clean run doubles as the counting run for every point.
			faultinject.Reset()
			want, err := eng.RecExpand(tr, M, opts)
			if err != nil {
				t.Fatalf("trial %d %s: clean run: %v", trial, cfg.name, err)
			}
			for _, p := range cfg.points {
				total := faultinject.Hits(p)
				if total == 0 {
					continue // this workload never reaches the point
				}
				faultinject.Reset()
				faultinject.Arm(p, faultinject.PlanHit(int64(trial), p, total))
				got, err := eng.RecExpand(tr, M, opts)
				switch p {
				case faultinject.CacheEvict, faultinject.WorkerStall:
					// Residency and timing faults are semantics-free.
					if err != nil {
						t.Fatalf("trial %d %s %v: unexpected error: %v", trial, cfg.name, p, err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("trial %d %s %v: fault changed the Result", trial, cfg.name, p)
					}
				case faultinject.ArenaAlloc:
					if !errors.Is(err, faultinject.ErrArenaAlloc) {
						t.Fatalf("trial %d %s %v: got %v, want a contained ErrArenaAlloc", trial, cfg.name, p, err)
					}
				case faultinject.WorkerPanic:
					var werr *WorkerError
					if !errors.As(err, &werr) || !errors.Is(err, faultinject.ErrWorkerPanic) {
						t.Fatalf("trial %d %s %v: got %v, want a WorkerError wrapping ErrWorkerPanic", trial, cfg.name, p, err)
					}
				}
				// Re-runnability: the engine that just absorbed the fault
				// must reproduce the clean run exactly.
				faultinject.Reset()
				again, err := eng.RecExpand(tr, M, opts)
				if err != nil {
					t.Fatalf("trial %d %s %v: rerun after fault: %v", trial, cfg.name, p, err)
				}
				if !reflect.DeepEqual(again, want) {
					t.Fatalf("trial %d %s %v: rerun after fault diverges", trial, cfg.name, p)
				}
			}
		}
	}
	if tried < corpus {
		t.Fatalf("corpus too small: %d instances", tried)
	}
}

// TestFaultWorkerPanicContained pins the headline claim on one large
// instance: an injected worker panic in the parallel driver must not
// crash the process, must cancel the sibling workers, and must leave the
// engine able to reproduce the clean result immediately afterwards.
func TestFaultWorkerPanicContained(t *testing.T) {
	defer faultinject.Reset()
	rng := rand.New(rand.NewSource(211))
	tr := randtree.Synth(30000, rng)
	lb := tr.MaxWBar()
	_, peak := liu.MinMem(tr)
	M := (lb + peak) / 2
	opts := Options{MaxPerNode: 2, Workers: 4}
	eng := NewEngine()

	faultinject.Reset()
	want, err := eng.RecExpand(tr, M, opts)
	if err != nil {
		t.Fatal(err)
	}
	total := faultinject.Hits(faultinject.WorkerPanic)
	if total == 0 {
		t.Skip("instance produced no parallel units")
	}
	for seed := int64(0); seed < 4; seed++ {
		faultinject.Reset()
		faultinject.Arm(faultinject.WorkerPanic, faultinject.PlanHit(seed, faultinject.WorkerPanic, total))
		_, err := eng.RecExpand(tr, M, opts)
		var werr *WorkerError
		if !errors.As(err, &werr) {
			t.Fatalf("seed %d: got %v, want WorkerError", seed, err)
		}
		if len(werr.Stack) == 0 {
			t.Fatalf("seed %d: WorkerError carries no stack", seed)
		}
		faultinject.Reset()
		got, err := eng.RecExpand(tr, M, opts)
		if err != nil {
			t.Fatalf("seed %d: rerun: %v", seed, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: rerun diverges", seed)
		}
	}
}
