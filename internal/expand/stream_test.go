package expand

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/liu"
	"repro/internal/tree"
)

// TestRecExpandStreamMatchesMaterialized is the streaming acceptance grid:
// across the 220-instance corpus crossed with cache budgets (tiny thrash, a
// middling default, unlimited) and worker counts {1, 2, 8}, the streamed
// emission must deliver segment for segment exactly the materialized
// Result.Schedule, and every other Result field must be bit-identical.
// The materialized path is itself pinned against ReferenceRecExpand by
// TestRecExpandBudgetedMatchesReference over the same corpus, so this
// transitively anchors the stream to the frozen seed engine. The CI race
// job runs the grid under -race, which exercises emission right after the
// sharded warm and unit fan-out (emit-while-parallel-warm).
func TestRecExpandStreamMatchesMaterialized(t *testing.T) {
	budgets := []int64{1, 16 << 10, 0}
	workers := []int{1, 2, 8}
	eng := NewEngine()
	budgetCorpus(t, 2028, 220, func(tr *tree.Tree, M int64, trial int) {
		for _, b := range budgets {
			for _, w := range workers {
				opts := Options{MaxPerNode: 2, Workers: w, CacheBudget: b}
				want, err := eng.RecExpand(tr, M, opts)
				if err != nil {
					t.Fatalf("trial %d budget=%d workers=%d: materialized: %v", trial, b, w, err)
				}
				var sched tree.Schedule
				got, err := eng.RecExpandStream(tr, M, opts, func(seg []int) bool {
					sched = append(sched, seg...)
					return true
				})
				if err != nil {
					t.Fatalf("trial %d budget=%d workers=%d: streamed: %v", trial, b, w, err)
				}
				if got.Schedule != nil {
					t.Fatalf("trial %d: streamed Result carries a materialized schedule", trial)
				}
				if !reflect.DeepEqual(sched, want.Schedule) {
					t.Fatalf("trial %d budget=%d workers=%d: streamed schedule diverges (M=%d n=%d)",
						trial, b, w, M, tr.N())
				}
				got.Schedule = want.Schedule
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d budget=%d workers=%d: streamed Result diverges\ngot:  %+v\nwant: %+v",
						trial, b, w, got, want)
				}
			}
		}
	})
}

// TestRecExpandStreamEarlyStop checks consumer cancellation: a yield that
// stops mid-stream must surface ErrEmissionStopped, and the engine must
// stay fully usable afterwards (the next run, streamed or materialized, is
// unaffected).
func TestRecExpandStreamEarlyStop(t *testing.T) {
	eng := NewEngine()
	budgetCorpus(t, 2029, 40, func(tr *tree.Tree, M int64, trial int) {
		opts := Options{MaxPerNode: 2, CacheBudget: 16 << 10}
		want, err := eng.RecExpand(tr, M, opts)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		seen := 0
		_, err = eng.RecExpandStream(tr, M, opts, func(seg []int) bool {
			seen += len(seg)
			return false
		})
		if !errors.Is(err, ErrEmissionStopped) {
			t.Fatalf("trial %d: stopped stream returned %v, want ErrEmissionStopped", trial, err)
		}
		if seen == 0 {
			t.Fatalf("trial %d: consumer saw nothing before stopping", trial)
		}
		var sched tree.Schedule
		got, err := eng.RecExpandStream(tr, M, opts, func(seg []int) bool {
			sched = append(sched, seg...)
			return true
		})
		if err != nil {
			t.Fatalf("trial %d: rerun after early stop: %v", trial, err)
		}
		if !reflect.DeepEqual(sched, want.Schedule) {
			t.Fatalf("trial %d: schedule diverges after early stop", trial)
		}
		got.Schedule = want.Schedule
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: Result diverges after early stop", trial)
		}
	})
}

// TestRecExpandUnitLead pins that the lead bound is purely a residency
// knob: for every MaxUnitLead (tightest possible, default, unbounded) the
// parallel driver must stay bit-identical to the sequential engine, cap
// behaviour included.
func TestRecExpandUnitLead(t *testing.T) {
	leads := []int{1, 0, -1}
	budgetCorpus(t, 2030, 80, func(tr *tree.Tree, M int64, trial int) {
		want, err := RecExpand(tr, M, Options{MaxPerNode: 2, Workers: 1})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, lead := range leads {
			for _, w := range []int{2, 8} {
				got, err := RecExpand(tr, M, Options{MaxPerNode: 2, Workers: w, MaxUnitLead: lead, CacheBudget: 16 << 10})
				if err != nil {
					t.Fatalf("trial %d lead=%d workers=%d: %v", trial, lead, w, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d lead=%d workers=%d: diverges from sequential (M=%d n=%d)",
						trial, lead, w, M, tr.N())
				}
			}
		}
	})
}

// TestRecExpandUnitLeadCapHit crosses the lead bound with a tripping
// global cap: the merger breaks out early while workers may still be
// blocked on the token bucket, which must shut down cleanly and at the
// exact sequential truncation point.
func TestRecExpandUnitLeadCapHit(t *testing.T) {
	budgetCorpus(t, 2031, 40, func(tr *tree.Tree, M int64, trial int) {
		free, err := RecExpand(tr, M, Options{MaxPerNode: 2})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, cap := range []int{1, free.Expansions/2 + 1} {
			want, err := RecExpand(tr, M, Options{MaxPerNode: 2, GlobalCap: cap})
			if err != nil {
				t.Fatalf("trial %d cap=%d: %v", trial, cap, err)
			}
			got, err := RecExpand(tr, M, Options{MaxPerNode: 2, GlobalCap: cap, Workers: 4, MaxUnitLead: 1})
			if err != nil {
				t.Fatalf("trial %d cap=%d: %v", trial, cap, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d cap=%d: lead-bounded driver diverges (CapHit got %v want %v)",
					trial, cap, got.CapHit, want.CapHit)
			}
		}
	})
}

// TestRecExpandStreamAll exercises the streamed finish through the public
// policies and MaxPerNode settings of the main differential corpus (the
// reference-pinned configurations), sequentially.
func TestRecExpandStreamAll(t *testing.T) {
	rng := rand.New(rand.NewSource(2032))
	eng := NewEngine()
	tried := 0
	for trial := 0; tried < 60; trial++ {
		tr := randomTree(2+rng.Intn(60), rng)
		lb := tr.MaxWBar()
		_, peak := liu.MinMem(tr)
		if peak <= lb {
			continue
		}
		M := lb + rng.Int63n(peak-lb)
		tried++
		opts := Options{
			MaxPerNode: []int{0, 1, 2, 5}[rng.Intn(4)],
			Victim:     []VictimPolicy{LatestParent, EarliestParent, LargestTau}[rng.Intn(3)],
		}
		want, err := eng.RecExpand(tr, M, opts)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		var sched tree.Schedule
		got, err := eng.RecExpandStream(tr, M, opts, func(seg []int) bool {
			sched = append(sched, seg...)
			return true
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !reflect.DeepEqual(sched, want.Schedule) {
			t.Fatalf("trial %d: streamed schedule diverges (opts=%+v)", trial, opts)
		}
		got.Schedule = want.Schedule
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: streamed Result diverges (opts=%+v)", trial, opts)
		}
	}
}
