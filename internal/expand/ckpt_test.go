package expand

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/liu"
	"repro/internal/randtree"
	"repro/internal/tree"
)

// ckptCase is one corpus instance of the kill-anywhere grid.
type ckptCase struct {
	tr   *tree.Tree
	M    int64
	opts Options
}

// ckptCorpus mirrors the differential corpus shape (random + synthetic
// trees, all policies and budgets, occasional tiny global caps) at a size
// the resume-from-every-snapshot grid can afford.
func ckptCorpus(t *testing.T, n int, seed int64) []ckptCase {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var cases []ckptCase
	for trial := 0; len(cases) < n; trial++ {
		var tr *tree.Tree
		if trial%3 == 0 {
			tr = randtree.Synth(20+rng.Intn(120), rng)
		} else {
			tr = randomTree(2+rng.Intn(50), rng)
		}
		lb := tr.MaxWBar()
		_, peak := liu.MinMem(tr)
		if peak <= lb {
			continue
		}
		M := lb + rng.Int63n(peak-lb)
		opts := Options{
			MaxPerNode: []int{0, 1, 2, 5}[rng.Intn(4)],
			Victim:     []VictimPolicy{LatestParent, EarliestParent, LargestTau}[rng.Intn(3)],
		}
		if rng.Intn(8) == 0 {
			opts.GlobalCap = 1 + rng.Intn(4)
		}
		cases = append(cases, ckptCase{tr: tr, M: M, opts: opts})
	}
	return cases
}

// captureCkpts runs one checkpoint-armed expansion with interval 1 and
// returns the byte snapshot of the checkpoint file after EVERY durable
// write — the full set of states a kill could leave behind — plus the
// run's Result. ckptAfterWrite is package state, so callers must not run
// in parallel.
func captureCkpts(t *testing.T, c ckptCase, workers int, dir string) (*Result, [][]byte) {
	t.Helper()
	path := filepath.Join(dir, "run.ckpt")
	var snaps [][]byte
	ckptAfterWrite = func(p string) {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatalf("snapshotting checkpoint: %v", err)
		}
		snaps = append(snaps, data)
	}
	defer func() { ckptAfterWrite = nil }()
	opts := c.opts
	opts.Workers = workers
	opts.Checkpoint = CheckpointOptions{Path: path, Interval: 1}
	res, err := RecExpand(c.tr, c.M, opts)
	if err != nil {
		t.Fatalf("armed run failed: %v", err)
	}
	return res, snaps
}

// TestCkptKillAnywhereResume is the tentpole's acceptance grid, engine
// level: for every instance of the corpus, run checkpoint-armed at
// interval 1, snapshot the checkpoint file after every durable write, and
// resume from EVERY snapshot — each resume must produce a Result
// bit-identical to the uninterrupted run. The snapshots are exactly the
// states a SIGKILL at an arbitrary instant can leave on disk (writes are
// atomic, so the file always holds the last completed write).
func TestCkptKillAnywhereResume(t *testing.T) {
	n := 24
	if testing.Short() {
		n = 8
	}
	cases := ckptCorpus(t, n, 2026)
	dir := t.TempDir()
	resumePath := filepath.Join(dir, "resume.ckpt")
	for ci, c := range cases {
		want, err := RecExpand(c.tr, c.M, c.opts)
		if err != nil {
			t.Fatalf("case %d: baseline: %v", ci, err)
		}
		_, snaps := captureCkpts(t, c, 1, t.TempDir())
		if len(snaps) == 0 {
			t.Fatalf("case %d: armed run wrote no checkpoints", ci)
		}
		for si, snap := range snaps {
			if err := os.WriteFile(resumePath, snap, 0o644); err != nil {
				t.Fatal(err)
			}
			opts := c.opts
			opts.ResumeFrom = resumePath
			got, err := RecExpand(c.tr, c.M, opts)
			if err != nil {
				t.Fatalf("case %d snapshot %d/%d: resume: %v", ci, si, len(snaps), err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("case %d snapshot %d/%d: resumed Result diverges\nresumed:  %+v\nbaseline: %+v",
					ci, si, len(snaps), got, want)
			}
		}
	}
}

// TestCkptKillAnywhereResumeParallel is the same grid with the armed run
// on the parallel driver (forced Workers=4): checkpoints written by the
// merger — including mid-unit-replay states — must all resume, on the
// sequential walk, to the bit-identical Result.
func TestCkptKillAnywhereResumeParallel(t *testing.T) {
	n := 12
	if testing.Short() {
		n = 5
	}
	cases := ckptCorpus(t, n, 3033)
	dir := t.TempDir()
	resumePath := filepath.Join(dir, "resume.ckpt")
	for ci, c := range cases {
		want, err := RecExpand(c.tr, c.M, c.opts)
		if err != nil {
			t.Fatalf("case %d: baseline: %v", ci, err)
		}
		armedRes, snaps := captureCkpts(t, c, 4, t.TempDir())
		if !reflect.DeepEqual(armedRes, want) {
			t.Fatalf("case %d: armed parallel run diverges from baseline", ci)
		}
		// Sample the snapshots when the parallel run wrote many: every
		// prefix state is covered across the corpus anyway.
		stride := 1
		if len(snaps) > 40 {
			stride = len(snaps) / 40
		}
		for si := 0; si < len(snaps); si += stride {
			if err := os.WriteFile(resumePath, snaps[si], 0o644); err != nil {
				t.Fatal(err)
			}
			opts := c.opts
			opts.ResumeFrom = resumePath
			opts.Workers = 4 // resume forces the sequential walk internally
			got, err := RecExpand(c.tr, c.M, opts)
			if err != nil {
				t.Fatalf("case %d snapshot %d/%d: resume: %v", ci, si, len(snaps), err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("case %d snapshot %d/%d: resumed Result diverges\nresumed:  %+v\nbaseline: %+v",
					ci, si, len(snaps), got, want)
			}
		}
	}
}

// TestCkptResumeContinuesCheckpointing: a resumed run that is itself
// armed keeps writing checkpoints, and resuming from ITS final checkpoint
// still reproduces the Result (checkpoint-of-a-resume round trip).
func TestCkptResumeContinuesCheckpointing(t *testing.T) {
	cases := ckptCorpus(t, 4, 4711)
	for ci, c := range cases {
		want, err := RecExpand(c.tr, c.M, c.opts)
		if err != nil {
			t.Fatalf("case %d: baseline: %v", ci, err)
		}
		_, snaps := captureCkpts(t, c, 1, t.TempDir())
		mid := snaps[len(snaps)/2]
		dir := t.TempDir()
		resumePath := filepath.Join(dir, "mid.ckpt")
		contPath := filepath.Join(dir, "cont.ckpt")
		if err := os.WriteFile(resumePath, mid, 0o644); err != nil {
			t.Fatal(err)
		}
		opts := c.opts
		opts.ResumeFrom = resumePath
		opts.Checkpoint = CheckpointOptions{Path: contPath, Interval: 1}
		got, err := RecExpand(c.tr, c.M, opts)
		if err != nil {
			t.Fatalf("case %d: armed resume: %v", ci, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("case %d: armed resume diverges", ci)
		}
		opts = c.opts
		opts.ResumeFrom = contPath
		got, err = RecExpand(c.tr, c.M, opts)
		if err != nil {
			t.Fatalf("case %d: resume of resume: %v", ci, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("case %d: resume of resume diverges", ci)
		}
	}
}

// TestCkptStreamResume pins the streaming side: a resumed
// RecExpandStream re-emits the id sequence of the uninterrupted run
// EXACTLY (the CLI seeks past the ids already on disk; the engine's
// contract is deterministic re-emission), with a bit-identical Result.
func TestCkptStreamResume(t *testing.T) {
	cases := ckptCorpus(t, 6, 5555)
	for ci, c := range cases {
		var wantIDs []int
		want, err := NewEngine().RecExpandStream(c.tr, c.M, c.opts, func(seg []int) bool {
			wantIDs = append(wantIDs, seg...)
			return true
		})
		if err != nil {
			t.Fatalf("case %d: baseline stream: %v", ci, err)
		}
		dir := t.TempDir()
		path := filepath.Join(dir, "run.ckpt")
		opts := c.opts
		opts.Checkpoint = CheckpointOptions{Path: path, Interval: 1}
		if _, err := NewEngine().RecExpandStream(c.tr, c.M, opts, func(seg []int) bool { return true }); err != nil {
			t.Fatalf("case %d: armed stream: %v", ci, err)
		}
		// The final checkpoint is PhaseFinish with the emission counted.
		st, err := ckpt.ReadFile(path)
		if err != nil {
			t.Fatalf("case %d: reading final checkpoint: %v", ci, err)
		}
		if st.Phase != ckpt.PhaseFinish {
			t.Fatalf("case %d: final checkpoint phase = %v", ci, st.Phase)
		}
		if st.EmittedIDs != int64(len(wantIDs)) {
			t.Fatalf("case %d: checkpoint counts %d emitted ids, stream had %d", ci, st.EmittedIDs, len(wantIDs))
		}
		var gotIDs []int
		opts = c.opts
		opts.ResumeFrom = path
		got, err := NewEngine().RecExpandStream(c.tr, c.M, opts, func(seg []int) bool {
			gotIDs = append(gotIDs, seg...)
			return true
		})
		if err != nil {
			t.Fatalf("case %d: resumed stream: %v", ci, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("case %d: resumed stream Result diverges", ci)
		}
		if !reflect.DeepEqual(gotIDs, wantIDs) {
			t.Fatalf("case %d: resumed stream emits different ids", ci)
		}
	}
}

// TestResumeFingerprintMismatch: a checkpoint must be rejected with
// ErrCheckpointMismatch when any semantic parameter differs — tree, M,
// per-node budget, victim policy or effective global cap — and accepted
// when only non-semantic knobs (workers, cache budget, interval) differ.
func TestResumeFingerprintMismatch(t *testing.T) {
	c := ckptCorpus(t, 1, 99)[0]
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	opts := c.opts
	opts.Checkpoint = CheckpointOptions{Path: path, Interval: 1}
	want, err := RecExpand(c.tr, c.M, opts)
	if err != nil {
		t.Fatal(err)
	}

	reject := func(name string, tr *tree.Tree, M int64, o Options) {
		t.Helper()
		o.ResumeFrom = path
		if _, err := RecExpand(tr, M, o); !errors.Is(err, ErrCheckpointMismatch) {
			t.Fatalf("%s: err = %v, want ErrCheckpointMismatch", name, err)
		}
	}
	reject("different M", c.tr, c.M+1, c.opts)
	o := c.opts
	o.MaxPerNode++
	reject("different MaxPerNode", c.tr, c.M, o)
	o = c.opts
	o.Victim = (c.opts.Victim + 1) % 3
	reject("different Victim", c.tr, c.M, o)
	o = c.opts
	o.GlobalCap = 64*c.tr.N() + 1025 // one past the resolved default
	reject("different GlobalCap", c.tr, c.M, o)
	// A different tree with the same M: decrement one weight, which can
	// only lower MaxWBar, so the LB precondition still holds and the
	// rejection is attributable to the tree hash alone.
	weights := c.tr.Weights()
	for i, w := range weights {
		if w > 1 {
			weights[i]--
			reject("different tree", tree.MustNew(c.tr.Parents(), weights), c.M, c.opts)
			break
		}
	}

	// Non-semantic knobs may change freely.
	o = c.opts
	o.ResumeFrom = path
	o.Workers = 3
	o.CacheBudget = 1 << 20
	got, err := RecExpand(c.tr, c.M, o)
	if err != nil {
		t.Fatalf("resume with different tuning: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("resume with different tuning diverges")
	}
}

// TestResumeBadFile: missing and corrupt checkpoint files surface their
// typed causes through RecExpand.
func TestResumeBadFile(t *testing.T) {
	c := ckptCorpus(t, 1, 7)[0]
	opts := c.opts
	opts.ResumeFrom = filepath.Join(t.TempDir(), "absent.ckpt")
	if _, err := RecExpand(c.tr, c.M, opts); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing checkpoint: err = %v, want os.ErrNotExist", err)
	}
	bad := filepath.Join(t.TempDir(), "bad.ckpt")
	if err := os.WriteFile(bad, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	opts.ResumeFrom = bad
	if _, err := RecExpand(c.tr, c.M, opts); !errors.Is(err, ckpt.ErrCorrupt) {
		t.Fatalf("corrupt checkpoint: err = %v, want ckpt.ErrCorrupt", err)
	}
}

// TestCkptArmedMatchesDisarmed: arming checkpoints (any interval) never
// changes the Result, on both drivers.
func TestCkptArmedMatchesDisarmed(t *testing.T) {
	cases := ckptCorpus(t, 6, 808)
	for ci, c := range cases {
		want, err := RecExpand(c.tr, c.M, c.opts)
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		for _, workers := range []int{1, 4} {
			for _, interval := range []int{1, 16, 0} {
				opts := c.opts
				opts.Workers = workers
				opts.Checkpoint = CheckpointOptions{
					Path:     filepath.Join(t.TempDir(), "run.ckpt"),
					Interval: interval,
				}
				got, err := RecExpand(c.tr, c.M, opts)
				if err != nil {
					t.Fatalf("case %d workers=%d interval=%d: %v", ci, workers, interval, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("case %d workers=%d interval=%d: armed Result diverges", ci, workers, interval)
				}
			}
		}
	}
}
