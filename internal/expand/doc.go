// Package expand implements the node-expansion technique of Section 5 of
// RR-9025 and the two heuristics built on it, FULLRECEXPAND and RECEXPAND,
// as well as the constructive proof of Theorem 2 (computing a schedule for
// a given I/O function).
//
// # The expansion model
//
// Expanding a node i under an I/O amount τ(i) replaces i by a chain
// i1 → i2 → i3 of weights w_i, w_i − τ(i), w_i: the three weights model the
// occupation of main memory when the data is produced, while part of it
// sits on disk, and when it has been read back for the parent. A tree
// whose optimal peak-memory traversal fits in M after a set of expansions
// yields a valid traversal of the original tree whose I/O volume is the
// sum of the expansion amounts.
//
// # Engines
//
// Three engines produce bit-identical Results (pinned by the differential
// tests against the 220-instance corpus):
//
//   - ReferenceRecExpand (reference.go) freezes the seed implementation:
//     extract every overflowing subtree, rerun MinMem and a fresh FiF
//     simulation per iteration. Quadratic on deep trees; kept as the
//     oracle.
//   - The incremental engine (recexpand.go, mutable.go) runs in place on a
//     MutableTree whose liu.ProfileCache memoizes every subtree's optimal
//     hill–valley profile, invalidating only the root path of each
//     expansion, with an allocation-free memsim.Simulator for the FiF
//     evaluations.
//   - The parallel driver (parallel.go) shards the postorder walk over
//     disjoint unit subtrees when Options.Workers ≠ 1, replaying each
//     unit's recorded expansion trace onto the shared tree in exact
//     sequential order; unit-local profile caches are seeded from, and
//     harvested back into, the shared cache by rope-remapping transplant
//     (liu.AdoptSubtree), so the fan-out warms each subtree once.
//
// # Memory bounding
//
// Options.CacheBudget bounds the resident bytes of every profile cache the
// engines create (liu.CacheOptions.MaxResidentBytes); evicted profiles are
// rematerialized on demand, so 10⁷-node trees schedule within a flat
// memory envelope at identical results. Options.MaxUnitLead bounds how far
// the parallel fan-out runs ahead of the merger, capping the pending
// unit-local caches. DESIGN.md documents the cache memory model, the
// eviction tiers and the measured envelopes.
//
// # Streaming emission
//
// (*Engine).RecExpandStream delivers the final original-tree schedule to a
// yield function segment by segment instead of materializing
// Result.Schedule: the expanded-tree evaluation and the original-tree
// validation/simulation run on memsim.RunStream's two-pass streaming
// protocol, and the last pass emits in releasing mode
// (liu.EmitScheduleRelease), handing each schedule rope back to the cache
// arena as the traversal streams out. tree.WriteSchedule writes such a
// stream to disk with O(segment) memory — the path that opens >10⁸-node
// trees (DESIGN.md §2.8). Streamed segments concatenate to exactly the
// materialized Schedule, pinned by the streaming differential grid.
package expand
