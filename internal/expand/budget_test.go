package expand

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/liu"
	"repro/internal/randtree"
	"repro/internal/tree"
)

// budgetCorpus yields the same flavor of I/O-bound instances as the main
// differential corpus: a mix of SYNTH and uniformly random trees with a
// random bound strictly between LB and the optimal peak.
func budgetCorpus(t *testing.T, seed int64, want int, visit func(tr *tree.Tree, M int64, trial int)) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tried := 0
	for trial := 0; tried < want; trial++ {
		var tr *tree.Tree
		if trial%3 == 0 {
			tr = randtree.Synth(20+rng.Intn(150), rng)
		} else {
			tr = randomTree(2+rng.Intn(60), rng)
		}
		lb := tr.MaxWBar()
		_, peak := liu.MinMem(tr)
		if peak <= lb {
			continue
		}
		tried++
		visit(tr, lb+rng.Int63n(peak-lb), trial)
	}
}

// TestRecExpandBudgetedMatchesReference is the acceptance grid of the
// bounded-memory cache: on a 220-instance corpus, RecExpand must be
// bit-identical to the frozen reference engine for every budget tier
// (tiny = constant thrash, a middling default, unlimited) crossed with
// every worker count {1, 2, 8}. Eviction, rematerialization and profile
// transplant are all pure residency mechanics; any divergence here is a
// correctness bug, not a tuning matter.
func TestRecExpandBudgetedMatchesReference(t *testing.T) {
	budgets := []int64{1, 16 << 10, 0}
	workers := []int{1, 2, 8}
	budgetCorpus(t, 2026, 220, func(tr *tree.Tree, M int64, trial int) {
		opts := Options{MaxPerNode: 2}
		want, err := ReferenceRecExpand(tr, M, opts)
		if err != nil {
			t.Fatalf("trial %d: reference: %v", trial, err)
		}
		for _, b := range budgets {
			for _, w := range workers {
				got, err := RecExpand(tr, M, Options{MaxPerNode: 2, Workers: w, CacheBudget: b})
				if err != nil {
					t.Fatalf("trial %d budget=%d workers=%d: %v", trial, b, w, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d budget=%d workers=%d: diverges from reference (M=%d n=%d)\ngot:  %+v\nwant: %+v",
						trial, b, w, M, tr.N(), got, want)
				}
			}
		}
	})
}

// TestRecExpandCapHitUnderTinyBudget crosses the global expansion cap with
// a thrashing cache budget: CapHit must trip at exactly the same expansion
// as the reference engine, for sequential and sharded drivers alike — the
// replay's budget re-checks must stay exact even while the shared cache is
// evicting and re-adopting around them.
func TestRecExpandCapHitUnderTinyBudget(t *testing.T) {
	budgetCorpus(t, 2027, 120, func(tr *tree.Tree, M int64, trial int) {
		// Find the unconstrained expansion count, then sweep caps around
		// it so some runs trip CapHit mid-walk and some just barely pass.
		free, err := ReferenceRecExpand(tr, M, Options{MaxPerNode: 2})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		caps := []int{1, free.Expansions/2 + 1, free.Expansions + 1}
		for _, cap := range caps {
			opts := Options{MaxPerNode: 2, GlobalCap: cap}
			want, err := ReferenceRecExpand(tr, M, opts)
			if err != nil {
				t.Fatalf("trial %d cap=%d: reference: %v", trial, cap, err)
			}
			for _, w := range []int{1, 4} {
				got, err := RecExpand(tr, M, Options{MaxPerNode: 2, GlobalCap: cap, Workers: w, CacheBudget: 1})
				if err != nil {
					t.Fatalf("trial %d cap=%d workers=%d: %v", trial, cap, w, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d cap=%d workers=%d: diverges (CapHit got %v want %v, expansions got %d want %d)",
						trial, cap, w, got.CapHit, want.CapHit, got.Expansions, want.Expansions)
				}
			}
		}
	})
}

// TestRecExpandBudgetStats sanity-checks the plumbing that budget
// calibration relies on: an unbounded run reports a high-water footprint
// and no evictions; a run bounded to a tenth of that footprint reports
// slice or subtree evictions and stays (well) under the unbounded
// high-water, with an identical Result.
func TestRecExpandBudgetStats(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	tr := randtree.Synth(20000, rng)
	lb := tr.MaxWBar()
	_, peak := liu.MinMem(tr)
	if peak <= lb {
		t.Skip("instance not I/O-bound")
	}
	M := (lb + peak) / 2
	eng := NewEngine()
	want, err := eng.RecExpand(tr, M, Options{MaxPerNode: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	full := eng.CacheStats()
	if full.PeakResidentBytes == 0 {
		t.Fatal("unbounded run reported no resident footprint")
	}
	if full.Evictions != 0 || full.SlicedProfiles != 0 {
		t.Fatalf("unbounded run evicted: %+v", full)
	}
	budget := full.PeakResidentBytes / 10
	got, err := eng.RecExpand(tr, M, Options{MaxPerNode: 2, Workers: 1, CacheBudget: budget})
	if err != nil {
		t.Fatal(err)
	}
	bounded := eng.CacheStats()
	if !reflect.DeepEqual(got, want) {
		t.Fatal("budgeted run changed the Result")
	}
	if bounded.SlicedProfiles == 0 && bounded.Evictions == 0 {
		t.Fatalf("budget %d triggered no eviction (footprint %d)", budget, full.PeakResidentBytes)
	}
	if bounded.PeakResidentBytes >= full.PeakResidentBytes {
		t.Fatalf("budgeted high-water %d did not improve on unbounded %d",
			bounded.PeakResidentBytes, full.PeakResidentBytes)
	}
}

// deepChainForest builds k deep-chain branches — a unit-weight spine of
// `spine` nodes over one shared I/O-bound SYNTH bottom of `bushy` nodes —
// directly under a weight-1 root. Every spine prefix inherits the bottom's
// peak, so the whole forest overflows the mid bound at once: maximal unit
// fan-out for the parallel driver and maximal adopt pressure at replay
// (each unit transplants its full warm cache back into the shared one).
func deepChainForest(k, spine, bushy int, seed int64) *tree.Tree {
	rng := rand.New(rand.NewSource(seed))
	sub := randtree.Synth(bushy, rng)
	parent := []int{tree.None}
	weight := []int64{1}
	for i := 0; i < k; i++ {
		prev := 0
		for j := 0; j < spine; j++ {
			id := len(parent)
			parent = append(parent, prev)
			weight = append(weight, 1)
			prev = id
		}
		off := len(parent)
		for v := 0; v < sub.N(); v++ {
			if p := sub.Parent(v); p == tree.None {
				parent = append(parent, prev)
			} else {
				parent = append(parent, p+off)
			}
			weight = append(weight, sub.Weight(v))
		}
	}
	return tree.MustNew(parent, weight)
}

// TestAdoptBudgetNoOvershoot pins the end-to-end residency envelope of an
// adopt-heavy parallel run under budget: on a forest whose every branch
// overflows, the shared cache's high-water must stay within the budget
// plus the warm-phase rope floor (ropes are unevictable while a monotone
// bottom-up warm is still referencing them upward), instead of stacking
// transplanted unit caches on top. The mechanism itself — AdoptSubtree
// offering the freshly clean subtree for eviction immediately rather than
// waiting for the next Invalidate exposure — is pinned sharply by
// liu's TestAdoptSubtreeImmediateEviction; this test guards the composed
// behaviour, Result bit-identity included.
func TestAdoptBudgetNoOvershoot(t *testing.T) {
	tr := deepChainForest(8, 300, 500, 97)
	lb := tr.MaxWBar()
	_, peak := liu.MinMem(tr)
	if peak <= lb {
		t.Fatal("deep-chain forest not I/O-bound")
	}
	M := (lb + peak) / 2
	eng := NewEngine()
	want, err := eng.RecExpand(tr, M, Options{MaxPerNode: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	full := eng.CacheStats().PeakResidentBytes
	if full == 0 {
		t.Fatal("unbounded run reported no footprint")
	}
	budget := full / 5
	got, err := eng.RecExpand(tr, M, Options{MaxPerNode: 2, Workers: 4, CacheBudget: budget})
	if err != nil {
		t.Fatal(err)
	}
	bounded := eng.CacheStats()
	if !reflect.DeepEqual(got, want) {
		t.Fatal("budgeted sharded run changed the Result")
	}
	if bounded.AdoptedNodes == 0 {
		t.Fatal("run adopted nothing: the shape no longer exercises the transplant path")
	}
	// Rope floor allowance: ≈ 2.2 rope nodes per tree node (leaf ropes plus
	// concatenations) at the current ~56-byte rope size, with headroom.
	ropeFloor := int64(tr.N()) * 56 * 5 / 2
	if limit := budget + ropeFloor; bounded.PeakResidentBytes > limit {
		t.Fatalf("adopt-heavy run overshot: budget %d + rope floor %d < high-water %d (unbounded %d)",
			budget, ropeFloor, bounded.PeakResidentBytes, full)
	}
	t.Logf("unbounded=%d budget=%d high-water=%d adopted=%d",
		full, budget, bounded.PeakResidentBytes, bounded.AdoptedNodes)
}

// TestAdoptAcrossReplayReducesWork checks the fan-out transplant actually
// engages on a unit-friendly shape: a sharded run on a forest must adopt
// profiles into the shared cache (replay direction) and into unit-local
// caches (warm direction) rather than recomputing them, while staying
// bit-identical to the sequential engine.
func TestAdoptAcrossReplayReducesWork(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	// A forest of bushy subtrees: the parallel driver's best case.
	sub := randtree.Synth(3000, rng)
	parent := []int{tree.None}
	weight := []int64{1}
	for i := 0; i < 4; i++ {
		buf := len(parent)
		parent = append(parent, 0)
		weight = append(weight, 1)
		off := len(parent)
		for v := 0; v < sub.N(); v++ {
			if p := sub.Parent(v); p == tree.None {
				parent = append(parent, buf)
			} else {
				parent = append(parent, p+off)
			}
			weight = append(weight, sub.Weight(v))
		}
	}
	tr := tree.MustNew(parent, weight)
	lb := tr.MaxWBar()
	_, peak := liu.MinMem(tr)
	if peak <= lb {
		t.Skip("forest not I/O-bound")
	}
	M := (lb + peak) / 2
	eng := NewEngine()
	want, err := eng.RecExpand(tr, M, Options{MaxPerNode: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.RecExpand(tr, M, Options{MaxPerNode: 2, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("sharded run diverges from sequential")
	}
	if st := eng.CacheStats(); st.AdoptedNodes == 0 {
		t.Fatal("sharded run adopted nothing into the shared cache")
	}
}
