// Parallel postorder driver for the recursive-expansion heuristics.
//
// Algorithm 2 visits every overflowing subtree in postorder; sibling
// subtrees are independent until their parent's own loop runs, so the
// driver decomposes the tree into disjoint unit subtrees, lets a worker
// pool expand each unit on a private extracted copy (recording the
// expansion trace), and a single merger walks the original postorder,
// replaying each unit's trace onto the shared mutable tree the moment the
// walk reaches it and running the residual top-of-tree loops in place.
//
// Bit-identity with the sequential engine rests on three facts:
//
//  1. Every decision inside a unit — peak checks, FiF victims, expansion
//     amounts — depends only on the subtree's structure and weights, never
//     on node ids or on state outside the subtree. Extraction renumbers
//     ids but preserves child order, and all tie-breaking is structural
//     (child ranks, subtree BFS ranks), so a unit's local run performs
//     exactly the expansions the sequential engine would perform there.
//  2. A subtree is a contiguous block of the natural postorder, so
//     "replay the whole unit when the walk first enters it" interleaves
//     unit expansions and residual-node expansions in exactly the
//     sequential order. That makes the global-cap accounting exact: the
//     replay re-runs the loop's MaxPerNode/cap checks in the sequential
//     order (expansion decisions themselves never depend on the remaining
//     budget), truncating precisely where the sequential engine would
//     have tripped CapHit.
//  3. The Result exposes no internal node ids — the schedule is
//     transposed to original ids and everything else is sums and counts —
//     and the final schedule/simulation are structure-determined, so the
//     different expansion-node ids the replay assigns cannot leak out.
package expand

import (
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/liu"
	"repro/internal/tree"
)

// parallelMinNodes is the auto-mode (Workers == 0) threshold: smaller
// trees run the sequential driver outright. Explicit Workers > 1 always
// takes the parallel path, whatever the size.
const parallelMinNodes = 4096

// expRec is one recorded expansion: the victim in the unit's local id
// space and the FiF I/O amount it was expanded by.
type expRec struct {
	victim int
	amount int64
}

// nodeTrace is the recorded expansion loop of one recursion node.
type nodeTrace struct {
	node int // original-tree id (kept for debugging/sanity)
	exps []expRec
}

// unit is one parallel work item: a subtree processed independently on an
// extracted copy. done is closed when trace/err are final.
type unit struct {
	root  int   // original-tree id of the subtree root
	toOld []int // extraction map, local id -> original id
	trace []nodeTrace
	err   error
	done  chan struct{}

	// lm is the unit's local mutable tree, kept (with its warm profile
	// cache) until the merger has replayed the trace: its final profiles
	// are then transplanted into the shared cache, so the merger never
	// recomputes inside the unit what the worker already computed.
	lm *MutableTree
	// l2g maps local ids (including replayed expansion chains) to
	// shared-tree ids; filled by replayUnit.
	l2g []int
}

// recExpandParallel is the sharded postorder driver behind Workers > 1.
// It returns the expanded shared tree; the caller picks the finish
// (materializing or streaming). Checkpointing (ck non-nil) runs entirely
// on the merger goroutine: residual loops commit per iteration and unit
// replays commit per replayed expansion, so every checkpoint this driver
// writes is a state the SEQUENTIAL walk can resume from (the replay
// interleaves expansions in exactly the sequential order).
func (e *Engine) recExpandParallel(t *tree.Tree, M int64, opts Options, globalCap, workers int, ck *ckptRunner) (*MutableTree, bool, error) {
	m := NewMutable(t)
	m.EnableProfilesOpts(opts.cacheOptions())
	// Sharded bottom-up warm; see InitialPeaks for the skip contract.
	initialPeaks := m.InitialPeaks(workers)
	// Bail before the skip decisions read a warm the cancellation may
	// have left partial — and before any unit is pinned or started.
	if err := ctxErr(opts.Ctx); err != nil {
		return nil, false, err
	}

	post := t.NaturalPostorder()
	units, unitIndex := planUnits(t, initialPeaks, M, workers, post)
	if opts.Workers == 0 && !worthSharding(t, initialPeaks, M, units, unitIndex) {
		// Auto mode: when most of the overflow work is residual (deep
		// chains and other path-shaped up-sets), the fan-out is pure
		// overhead — run the plain sequential walk on the already-warm
		// tree instead. An explicit Workers > 1 keeps the sharded path:
		// the caller asked for it, and the determinism tests rely on
		// exercising the machinery on arbitrary shapes.
		units, unitIndex = nil, nil
	}

	// Unit workers seed their local caches from a snapshot of the shared
	// cache (one warm per subtree instead of two). Pinning each unit root
	// keeps the snapshot walkable: the merger's evictions and invalidations
	// can touch everything except a pinned subtree, and the pin is lifted
	// only once the unit's worker is done reading (its done channel gives
	// the happens-before edge).
	var snap liu.CacheSnapshot
	unpinned := make([]bool, len(units))
	if len(units) > 0 {
		for _, u := range units {
			m.PinProfiles(u.root)
		}
		// Warm-time consumed-slice queue entries may point inside the
		// pinned units; the slice tier checks pins per node, not per
		// subtree, so purge the queue before any reader starts walking.
		m.DropQueuedProfileSlices()
		snap = m.ProfileSnapshot()
	}

	// Worker pool: drain the unit queue (postorder order, matching the
	// merger's consumption order) with per-worker engines. cancel stops
	// the pool early when the merger aborts on CapHit or an error.
	//
	// The pool's lead over the merger is bounded by a token bucket: a
	// worker takes a token before starting a unit and the merger returns
	// one after replaying a unit and dropping its local tree/cache, so at
	// most `lead` units hold their extracted copies and warm local caches
	// at any moment. Units are taken in postorder (the merger's
	// consumption order), so the unit the merger waits for is always among
	// the started ones — no deadlock for any lead ≥ 1 — and the bound
	// keeps pending unit-local caches from stacking up to a second
	// shared-cache footprint (DESIGN.md §2.8).
	cancel := make(chan struct{})
	var cancelOnce sync.Once
	// stop aborts the pool; both the merger (CapHit, replay error, panic)
	// and a failing worker (error or contained panic) may call it, in any
	// order and from different goroutines.
	stop := func() { cancelOnce.Do(func() { close(cancel) }) }
	var wg sync.WaitGroup
	var tokens chan struct{}
	if len(units) > 0 {
		lead := opts.MaxUnitLead
		switch {
		case lead < 0:
			lead = len(units)
		case lead == 0:
			lead = 2 * workers
		}
		if lead > len(units) {
			lead = len(units)
		}
		tokens = make(chan struct{}, len(units)+lead)
		for i := 0; i < lead; i++ {
			tokens <- struct{}{}
		}
		var next int64
		if workers > len(units) {
			workers = len(units)
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				eng := NewEngine()
				for {
					select {
					case <-cancel:
						return
					case <-tokens:
					}
					// A closed cancel and an available token race in the
					// select above; re-check so an aborting merger (CapHit,
					// worker error) is not delayed by up to `lead` units of
					// discarded work.
					select {
					case <-cancel:
						return
					default:
					}
					i := atomic.AddInt64(&next, 1) - 1
					if i >= int64(len(units)) {
						return
					}
					units[i].runContained(t, M, opts, globalCap, eng, snap, stop)
				}
			}()
		}
	}

	// The merger: the sequential engine's postorder walk, with whole
	// units consumed as single steps the moment the walk enters their
	// postorder block.
	capHit := false
	var werr error
	replayed := make([]bool, len(units))
	runMerger := func() {
		for _, r := range post {
			if ui := unitAt(unitIndex, r); ui >= 0 {
				if replayed[ui] {
					continue
				}
				replayed[ui] = true
				u := units[ui]
				<-u.done
				// The worker is done reading the shared snapshot; from here the
				// unit's region may be invalidated, evicted and rewritten.
				m.UnpinProfiles(u.root)
				unpinned[ui] = true
				if u.err != nil {
					werr = u.err
					break
				}
				hit, err := m.replayUnit(u, opts, globalCap, ck)
				if err != nil {
					werr = err
					break
				}
				if hit {
					capHit = true
					break
				}
				if ck != nil {
					// The unit's whole contiguous postorder block is
					// replayed; a resume must not re-enter its
					// budget-exited nodes.
					ck.advance(int(ck.postIdx[u.root]) + 1)
				}
				// Transplant the unit's final local profiles over the replayed
				// region: the merger's later ensure passes then find the paths
				// the replay dirtied already resident instead of re-merging
				// them. Skipped on CapHit, where the local and shared trees
				// may have diverged (the replay truncates at the real budget).
				if u.lm != nil {
					m.AdoptProfiles(u.lm.ProfileSnapshot(), u.lm, u.lm.Root(), u.l2g[u.lm.Root()])
					u.lm, u.l2g, u.trace = nil, nil, nil
				}
				// The unit's local tree and cache are gone: let the pool start
				// the next pending unit.
				tokens <- struct{}{}
				continue
			}
			if t.IsLeaf(r) || initialPeaks[r] <= M {
				continue
			}
			exit, err := e.expandLoop(m, r, M, opts, globalCap, nil, ck, 0)
			if err != nil {
				werr = err
				break
			}
			if exit == exitCap {
				capHit = true
				break
			}
		}
	}
	// The merger mutates the shared tree and cache, so a panic there (an
	// injected shared-cache fault, an invariant violation) must not skip
	// the pool shutdown below: contain it locally, abort the pool, and
	// let the normal cleanup path unpin and join before returning the
	// typed error.
	func() {
		defer func() {
			if r := recover(); r != nil {
				werr = &PanicError{Panic: r, Stack: debug.Stack()}
			}
		}()
		runMerger()
	}()
	stop()
	wg.Wait()
	// An early break (CapHit, worker error) leaves later units pinned;
	// release them now that no worker can still be reading the snapshot,
	// so finish's final ensure/flatten runs with normal evictability.
	for ui, u := range units {
		if !unpinned[ui] {
			m.UnpinProfiles(u.root)
		}
	}
	if werr != nil {
		return nil, false, werr
	}
	return m, capHit, nil
}

// unitAt is unitIndex[r] tolerating the nil index of the no-units
// fallback.
func unitAt(unitIndex []int32, r int) int32 {
	if unitIndex == nil {
		return -1
	}
	return unitIndex[r]
}

// worthSharding reports whether the planned units cover at least half of
// the overflowing recursion nodes. The uncovered ones run sequentially in
// the merger whatever the plan, so when they are the majority — the
// overflow up-set is path-shaped, as on deep chains — sharding buys
// nothing and only pays extraction and duplicate warms.
func worthSharding(t *tree.Tree, initialPeaks []int64, M int64, units []*unit, unitIndex []int32) bool {
	if len(units) < 2 {
		return false
	}
	covered, total := 0, 0
	for v := 0; v < t.N(); v++ {
		if initialPeaks[v] <= M || t.IsLeaf(v) {
			continue
		}
		total++
		if unitIndex[v] >= 0 {
			covered++
		}
	}
	return 2*covered >= total
}

// planUnits decomposes the tree into disjoint unit subtrees: maximal
// subtrees of at most `grain` nodes whose initial peak overflows M (peaks
// are monotone up the tree, so that is exactly "contains expansion work").
// Nodes not covered by a unit — the top of the tree — stay with the
// sequential merger, whose loops are the critical path a parent must wait
// for anyway.
//
// The grain is adaptive: a fixed n/(4·workers) cutoff hands out many
// well-balanced units on wide trees but can miss the work entirely when
// the overflow sits at the roots of a few large branches (the forest-of-
// bushy-subtrees shape: every branch exceeds the grain while every
// overflowing node below it fits). Doubling the grain until the plan
// yields at least 2·workers units — or no plan does — finds the natural
// branch decomposition in that regime at O(n) per attempt. Units are
// returned in postorder of their roots; the second result maps every
// covered node to its unit's index, -1 otherwise.
func planUnits(t *tree.Tree, initialPeaks []int64, M int64, workers int, post []int) ([]*unit, []int32) {
	n := t.N()
	sizes := t.SubtreeSizes()
	grain := n / (4 * workers)
	if grain < 2 {
		grain = 2
	}
	var roots []int
	for ; ; grain *= 2 {
		cand := planRoots(t, initialPeaks, M, sizes, grain, post)
		if len(cand) > len(roots) {
			roots = cand
		}
		if len(cand) >= 2*workers || grain >= n {
			break
		}
	}
	unitIndex := make([]int32, n)
	for i := range unitIndex {
		unitIndex[i] = -1
	}
	units := make([]*unit, 0, len(roots))
	for _, v := range roots {
		ui := int32(len(units))
		units = append(units, &unit{root: v, done: make(chan struct{})})
		for _, x := range t.SubtreeNodes(v) {
			unitIndex[x] = ui
		}
	}
	return units, unitIndex
}

// planRoots returns the roots (in postorder) of the maximal ≤grain-sized
// subtrees whose initial peak overflows M — one planning attempt of
// planUnits.
func planRoots(t *tree.Tree, initialPeaks []int64, M int64, sizes []int, grain int, post []int) []int {
	var roots []int
	for _, v := range post {
		if initialPeaks[v] <= M || sizes[v] > grain {
			continue
		}
		if p := t.Parent(v); p != tree.None && sizes[p] <= grain {
			continue // not maximal: the parent's subtree covers v
		}
		roots = append(roots, v)
	}
	return roots
}

// runContained is the worker-side wrapper around runLocal: it recovers a
// panic into a typed WorkerError carrying the unit root and the worker's
// stack, aborts the sibling workers on any failure (the merger will stop
// at this unit anyway, so their remaining work is wasted), and closes
// done in every outcome so the merger never blocks on a dead unit. The
// shared tree and cache are untouched by a unit failure — workers only
// read the pinned snapshot and write their private extracted copy — so
// the caller can re-run the same expansion afterwards.
func (u *unit) runContained(t *tree.Tree, M int64, opts Options, globalCap int, eng *Engine, snap liu.CacheSnapshot, stop func()) {
	defer func() {
		if r := recover(); r != nil {
			u.err = &WorkerError{Unit: u.root, Panic: r, Stack: debug.Stack()}
		}
		if u.err != nil {
			stop()
		}
		close(u.done)
	}()
	u.runLocal(t, M, opts, globalCap, eng, snap)
}

// runLocal expands the unit's subtree on a private extracted copy,
// recording every loop's expansions. The local run pretends it owns the
// whole global budget; the replay reconciles the trace against the real
// budget in sequential order. The local profile cache is seeded by
// transplanting the shared cache's already-warm subtree profiles from the
// snapshot (extraction preserves child order, so the trees walk in
// lockstep), which removes the duplicate warm the fan-out used to pay;
// snapshot holes (profiles the shared cache had evicted under its budget)
// are recomputed locally by InitialPeaks.
func (u *unit) runLocal(t *tree.Tree, M int64, opts Options, globalCap int, eng *Engine, snap liu.CacheSnapshot) {
	// Injection points for the robustness harness (no-ops on default
	// builds): a stall exercises the merger's wait and the lead bound
	// under worker skew; a panic exercises runContained.
	if faultinject.Fire(faultinject.WorkerStall) {
		time.Sleep(2 * time.Millisecond)
	}
	if faultinject.Fire(faultinject.WorkerPanic) {
		panic(faultinject.ErrWorkerPanic)
	}
	sub, toOld := t.Subtree(u.root)
	u.toOld = toOld
	lm := NewMutable(sub)
	lm.EnableProfilesOpts(opts.cacheOptions())
	lm.AdoptProfiles(snap, t, u.root, lm.Root())
	locPeaks := lm.InitialPeaks(1)
	// As in the sequential driver: a cancelled warm leaves locPeaks
	// partial, so bail before the skip decisions read them.
	if err := ctxErr(opts.Ctx); err != nil {
		u.err = err
		return
	}
	for _, r := range sub.NaturalPostorder() {
		if sub.IsLeaf(r) || locPeaks[r] <= M {
			continue
		}
		var rec []expRec
		exit, err := eng.expandLoop(lm, r, M, opts, globalCap, &rec, nil, 0)
		if err != nil {
			u.err = err
			return
		}
		u.trace = append(u.trace, nodeTrace{node: toOld[r], exps: rec})
		if exit == exitCap {
			// Even a unit-local run can exhaust the whole cap; the
			// sequential engine would abort here, and so will the
			// replay — nothing after this point can ever execute.
			break
		}
	}
	// Keep the local tree and its (warm) cache for the replay-time
	// transplant back into the shared cache.
	u.lm = lm
}

// replayUnit applies a unit's recorded expansions to the shared tree,
// re-running each loop's MaxPerNode and global-cap checks in the exact
// sequential order (the recorded decisions themselves are budget-free).
// It returns true when the global cap trips, at precisely the iteration
// the sequential engine would have tripped it. With ck non-nil every
// applied expansion is logged under its SHARED-tree victim id and
// cursor-committed at the recursion node it belongs to, so a checkpoint
// taken mid-replay resumes sequentially from inside the unit.
func (m *MutableTree) replayUnit(u *unit, opts Options, globalCap int, ck *ckptRunner) (capHit bool, err error) {
	l2g := u.toOld // local id -> shared-tree id, extended as chains are replayed
	defer func() { u.l2g = l2g }()
	for _, nt := range u.trace {
		// k doubles as the loop's iteration counter: every pass either
		// breaks or replays exactly one expansion, as in expandLoop.
		for k := 0; ; k++ {
			if opts.MaxPerNode > 0 && k >= opts.MaxPerNode {
				break
			}
			if m.Expansions() >= globalCap {
				return true, nil
			}
			if k >= len(nt.exps) {
				// The local loop exited on its peak check here; the cap
				// check above already ran, as in the sequential engine.
				break
			}
			rec := nt.exps[k]
			victim := l2g[rec.victim]
			i2, i3, err := m.Expand(victim, rec.amount)
			if err != nil {
				return false, err
			}
			// The local Expand appended its i2/i3 with the same ordinals,
			// so extending the map in replay order keeps it aligned.
			l2g = append(l2g, i2, i3)
			if ck != nil {
				ck.noteExp(victim, rec.amount)
				if err := ck.commitLoop(nt.node, k+1); err != nil {
					return false, err
				}
			}
		}
	}
	return false, nil
}
