package search

import (
	"math/rand"

	"repro/internal/memsim"
	"repro/internal/tree"
)

// Options tunes the local search.
type Options struct {
	// MaxRounds caps full improvement sweeps (default 20).
	MaxRounds int
	// Moves is the number of candidate moves sampled per round
	// (default 4·n).
	Moves int
	// Seed drives the candidate sampling.
	Seed int64
}

// Result is the outcome of the search.
type Result struct {
	Schedule tree.Schedule
	IO       int64
	Start    int64 // I/O of the initial schedule
	Rounds   int
	Improved int // accepted moves
}

// Improve runs local search from the given schedule. The returned schedule
// is always valid and never worse than the input.
func Improve(t *tree.Tree, M int64, sched tree.Schedule, opts Options) (*Result, error) {
	cur := append(tree.Schedule(nil), sched...)
	io, err := memsim.IOOf(t, M, cur)
	if err != nil {
		return nil, err
	}
	res := &Result{Start: io, IO: io}
	if opts.MaxRounds == 0 {
		opts.MaxRounds = 20
	}
	if opts.Moves == 0 {
		opts.Moves = 4 * t.N()
	}
	rng := rand.New(rand.NewSource(opts.Seed + 1))
	n := t.N()
	for round := 0; round < opts.MaxRounds && res.IO > 0; round++ {
		res.Rounds++
		improvedThisRound := false
		for m := 0; m < opts.Moves; m++ {
			from := rng.Intn(n)
			to := rng.Intn(n)
			if from == to {
				continue
			}
			// Half the candidates relocate one node, half a short
			// contiguous block (multi-node rearrangements such as
			// chain switches need block moves to be reachable).
			width := 1
			if rng.Intn(2) == 1 {
				width = 2 + rng.Intn(6)
				if from+width > n {
					width = n - from
				}
			}
			cand := moveBlock(cur, from, width, to)
			if !tree.IsTopological(t, cand) {
				continue
			}
			cio, err := memsim.IOOf(t, M, cand)
			if err != nil {
				return nil, err
			}
			if cio < res.IO {
				cur = cand
				res.IO = cio
				res.Improved++
				improvedThisRound = true
			}
		}
		if !improvedThisRound {
			break
		}
	}
	res.Schedule = cur
	return res, nil
}

// moveNode returns a copy of sched with the element at position from
// reinserted at position to.
func moveNode(sched tree.Schedule, from, to int) tree.Schedule {
	return moveBlock(sched, from, 1, to)
}

// moveBlock returns a copy of sched with the block sched[from:from+width]
// reinserted so that it starts at position to of the remaining sequence.
func moveBlock(sched tree.Schedule, from, width, to int) tree.Schedule {
	if width < 1 {
		width = 1
	}
	if from+width > len(sched) {
		width = len(sched) - from
	}
	block := append(tree.Schedule(nil), sched[from:from+width]...)
	rest := make(tree.Schedule, 0, len(sched)-width)
	rest = append(rest, sched[:from]...)
	rest = append(rest, sched[from+width:]...)
	if to > len(rest) {
		to = len(rest)
	}
	out := make(tree.Schedule, 0, len(sched))
	out = append(out, rest[:to]...)
	out = append(out, block...)
	out = append(out, rest[to:]...)
	return out
}
