package search

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/brute"
	"repro/internal/liu"
	"repro/internal/memsim"
	"repro/internal/tree"
)

func TestMoveNode(t *testing.T) {
	s := tree.Schedule{0, 1, 2, 3}
	if got := moveNode(s, 0, 2); !reflect.DeepEqual(got, tree.Schedule{1, 2, 0, 3}) {
		t.Fatalf("got %v", got)
	}
	if got := moveNode(s, 3, 0); !reflect.DeepEqual(got, tree.Schedule{3, 0, 1, 2}) {
		t.Fatalf("got %v", got)
	}
	if !reflect.DeepEqual(s, tree.Schedule{0, 1, 2, 3}) {
		t.Fatal("input mutated")
	}
}

func TestImproveNeverWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(12)
		parent := make([]int, n)
		weight := make([]int64, n)
		parent[0] = tree.None
		weight[0] = 1 + rng.Int63n(9)
		for i := 1; i < n; i++ {
			parent[i] = rng.Intn(i)
			weight[i] = 1 + rng.Int63n(9)
		}
		tr := tree.MustNew(parent, weight)
		lb := tr.MaxWBar()
		sched := tr.NaturalPostorder()
		start, err := memsim.IOOf(tr, lb, sched)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Improve(tr, lb, sched, Options{Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		if res.IO > start || res.Start != start {
			t.Fatalf("trial %d: worse after search (%d -> %d)", trial, start, res.IO)
		}
		if err := tree.Validate(tr, res.Schedule); err != nil {
			t.Fatal(err)
		}
		got, err := memsim.IOOf(tr, lb, res.Schedule)
		if err != nil {
			t.Fatal(err)
		}
		if got != res.IO {
			t.Fatalf("trial %d: declared %d simulated %d", trial, res.IO, got)
		}
	}
}

func TestImproveFindsOptimumOnFig2b(t *testing.T) {
	// From OPTMINMEM's suboptimal schedule, local search should reach
	// the optimum (3) on this small symmetric instance.
	tr := tree.Graft(1, tree.Chain(3, 5, 2, 6), tree.Chain(3, 5, 2, 6))
	M := int64(6)
	sched, _ := liu.MinMem(tr)
	res, err := Improve(tr, M, sched, Options{Seed: 7, MaxRounds: 50, Moves: 3000})
	if err != nil {
		t.Fatal(err)
	}
	_, opt, err := brute.MinIO(tr, M)
	if err != nil {
		t.Fatal(err)
	}
	if res.IO != opt {
		t.Fatalf("search reached %d, optimum %d", res.IO, opt)
	}
	if res.Improved == 0 {
		t.Fatal("no accepted moves despite improvement")
	}
}

func TestImproveStopsAtZero(t *testing.T) {
	tr := tree.Chain(2, 3, 4)
	sched := tree.Schedule{2, 1, 0}
	res, err := Improve(tr, 4, sched, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.IO != 0 || res.Rounds != 0 {
		t.Fatalf("IO=%d rounds=%d", res.IO, res.Rounds)
	}
}
