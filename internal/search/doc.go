// Package search provides a schedule-space local-search improver for the
// MinIO problem: a simple baseline for the "designing competitive
// algorithms" future-work direction of Section 7. Starting from any
// topological schedule, it repeatedly applies the best of a neighbourhood
// of *block moves* — relocating one node (together with nothing else; the
// tree constraints are re-checked) to an earlier or later feasible slot —
// and keeps the move if the FiF I/O volume drops.
//
// It is not part of the paper; the benchmarks use it to gauge how much
// head-room the heuristics leave on small instances.
package search
