package stats

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 || s.Mean != 2.5 {
		t.Fatalf("%+v", s)
	}
	if math.Abs(s.Median-2.5) > 1e-9 {
		t.Fatalf("median %f", s.Median)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatal("empty summary")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.1, 1.4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%f)=%f want %f", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile not NaN")
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRowf("%s %d", "beta", 22)
	tb.AddRow("gamma") // short row tolerated
	var buf bytes.Buffer
	if err := tb.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines=%d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[0], "value") {
		t.Fatalf("header %q", lines[0])
	}
	if !strings.Contains(out, "beta") || !strings.Contains(out, "22") {
		t.Fatalf("rows missing:\n%s", out)
	}
}
