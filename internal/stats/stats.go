package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Summary describes a sample of float64 values.
type Summary struct {
	N                int
	Mean, Min, Max   float64
	P25, Median, P75 float64
}

// Summarize computes a Summary; it returns a zero Summary for empty input.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	var sum float64
	for _, v := range s {
		sum += v
	}
	return Summary{
		N:      len(s),
		Mean:   sum / float64(len(s)),
		Min:    s[0],
		Max:    s[len(s)-1],
		P25:    Quantile(s, 0.25),
		Median: Quantile(s, 0.5),
		P75:    Quantile(s, 0.75),
	}
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of a sorted sample using
// linear interpolation.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Table is a simple aligned text table writer.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; extra or missing cells are tolerated.
func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// AddRowf appends a row of formatted values.
func (t *Table) AddRowf(format string, args ...any) {
	t.AddRow(strings.Fields(fmt.Sprintf(format, args...))...)
}

// Write renders the table with aligned columns.
func (t *Table) Write(w io.Writer) error {
	width := make([]int, len(t.header))
	for c, h := range t.header {
		width[c] = len(h)
	}
	for _, row := range t.rows {
		for c, cell := range row {
			if c < len(width) && len(cell) > width[c] {
				width[c] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(width))
		for c := range width {
			cell := ""
			if c < len(cells) {
				cell = cells[c]
			}
			parts[c] = fmt.Sprintf("%-*s", width[c], cell)
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.header)); err != nil {
		return err
	}
	total := len(width) - 1
	for _, wd := range width {
		total += wd + 1
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}
