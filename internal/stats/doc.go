// Package stats provides the small statistical helpers used by the
// experiment harness: summaries (mean, quantiles) and aligned text tables.
package stats
