package repro

// The out-of-core-scale acceptance check of the bounded-memory profile
// cache. It is gated behind an environment variable because a 10⁷-node run
// takes minutes and gigabytes: the tier-1 suite must stay fast, and the
// claim it verifies ("RECEXPAND on a 10⁷-node tree completes under a
// budget of ~1/10 of the unbounded cache footprint, bit-identically") is
// recorded in DESIGN.md §3 from the cmd/minio-bench -fig huge runs.
//
// Run it with:
//
//	REPRO_HUGE=1000000  go test -run TestHugeTreeBudgeted -v .   # ~10 s
//	REPRO_HUGE=10000000 go test -run TestHugeTreeBudgeted -v .   # minutes
import (
	"os"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/expand"
	"repro/internal/experiments"
)

func TestHugeTreeBudgeted(t *testing.T) {
	env := os.Getenv("REPRO_HUGE")
	if env == "" {
		t.Skip("set REPRO_HUGE=<nodes> (e.g. 1000000 or 10000000) to run the out-of-core-scale check")
	}
	n, err := strconv.Atoi(env)
	if err != nil || n < 1000 {
		t.Fatalf("REPRO_HUGE=%q: want a node count >= 1000", env)
	}
	in := experiments.Huge(n, 1)
	M := in.M(core.BoundMid)
	eng := expand.NewEngine()

	want, err := eng.RecExpand(in.Tree, M, expand.Options{MaxPerNode: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	full := eng.CacheStats().PeakResidentBytes
	if full == 0 {
		t.Fatal("unbounded run reported no footprint")
	}
	budget := full / 10
	got, err := eng.RecExpand(in.Tree, M, expand.Options{MaxPerNode: 2, Workers: 1, CacheBudget: budget})
	if err != nil {
		t.Fatal(err)
	}
	bounded := eng.CacheStats()
	if got.IO != want.IO || got.Expansions != want.Expansions || got.SimulatedIO != want.SimulatedIO {
		t.Fatalf("budgeted run changed the result: io %d vs %d, expansions %d vs %d",
			got.IO, want.IO, got.Expansions, want.Expansions)
	}
	// The budget is a soft target (the flatten working set is pinned), but
	// on the staircase forest the slice tier reclaims the dominant part:
	// the high-water mark must drop to a small multiple of the budget.
	if bounded.PeakResidentBytes > 2*budget {
		t.Fatalf("budget %d MiB: high-water %d MiB, unbounded %d MiB",
			budget>>20, bounded.PeakResidentBytes>>20, full>>20)
	}
	t.Logf("n=%d unbounded=%dMiB budget=%dMiB high-water=%dMiB slices=%d evictions=%d remats=%d",
		in.Tree.N(), full>>20, budget>>20, bounded.PeakResidentBytes>>20,
		bounded.SlicedProfiles, bounded.Evictions, bounded.Rematerializations)
}
