package repro

// The out-of-core-scale acceptance check of the bounded-memory profile
// cache. It is gated behind an environment variable because a 10⁷-node run
// takes minutes and gigabytes: the tier-1 suite must stay fast, and the
// claim it verifies ("RECEXPAND on a 10⁷-node tree completes under a
// budget of ~1/10 of the unbounded cache footprint, bit-identically") is
// recorded in DESIGN.md §3 from the cmd/minio-bench -fig huge runs.
//
// Run it with:
//
//	REPRO_HUGE=1000000  go test -run TestHugeTreeBudgeted -v .   # ~10 s
//	REPRO_HUGE=10000000 go test -run TestHugeTreeBudgeted -v .   # minutes
//
// TestHugeTreeStreamed is the PR 5 extension: the same staircase forest
// under a FIXED byte budget (REPRO_HUGE_BUDGET, default 1GiB) with the
// schedule consumed as a stream (expand.RecExpandStream), so neither the
// n-word schedule slice nor the full rope set survives the emission. It
// runs the streamed engine first and the old materializing path second in
// the same process, and requires the materialized run to push the
// process's resident high-water (getrusage) strictly above the streamed
// one — the measured claim that the streamed finish peaks below the old
// AppendSchedule path at the same scale. A 10⁸-node run
// (REPRO_HUGE=100000000) needs ~40 GiB of RAM and half an hour or more on
// one core; set REPRO_HUGE_COMPARE=0 to skip the second (materializing)
// run and only demonstrate the streamed completion.
import (
	"os"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/expand"
	"repro/internal/experiments"
)

func TestHugeTreeBudgeted(t *testing.T) {
	env := os.Getenv("REPRO_HUGE")
	if env == "" {
		t.Skip("set REPRO_HUGE=<nodes> (e.g. 1000000 or 10000000) to run the out-of-core-scale check")
	}
	n, err := strconv.Atoi(env)
	if err != nil || n < 1000 {
		t.Fatalf("REPRO_HUGE=%q: want a node count >= 1000", env)
	}
	in := experiments.Huge(n, 1)
	M := in.M(core.BoundMid)
	eng := expand.NewEngine()

	want, err := eng.RecExpand(in.Tree, M, expand.Options{MaxPerNode: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	full := eng.CacheStats().PeakResidentBytes
	if full == 0 {
		t.Fatal("unbounded run reported no footprint")
	}
	budget := full / 10
	got, err := eng.RecExpand(in.Tree, M, expand.Options{MaxPerNode: 2, Workers: 1, CacheBudget: budget})
	if err != nil {
		t.Fatal(err)
	}
	bounded := eng.CacheStats()
	if got.IO != want.IO || got.Expansions != want.Expansions || got.SimulatedIO != want.SimulatedIO {
		t.Fatalf("budgeted run changed the result: io %d vs %d, expansions %d vs %d",
			got.IO, want.IO, got.Expansions, want.Expansions)
	}
	// The budget is a soft target (the flatten working set is pinned), but
	// on the staircase forest the slice tier reclaims the dominant part:
	// the high-water mark must drop to a small multiple of the budget.
	if bounded.PeakResidentBytes > 2*budget {
		t.Fatalf("budget %d MiB: high-water %d MiB, unbounded %d MiB",
			budget>>20, bounded.PeakResidentBytes>>20, full>>20)
	}
	t.Logf("n=%d unbounded=%dMiB budget=%dMiB high-water=%dMiB slices=%d evictions=%d remats=%d",
		in.Tree.N(), full>>20, budget>>20, bounded.PeakResidentBytes>>20,
		bounded.SlicedProfiles, bounded.Evictions, bounded.Rematerializations)
}

func TestHugeTreeStreamed(t *testing.T) {
	env := os.Getenv("REPRO_HUGE")
	if env == "" {
		t.Skip("set REPRO_HUGE=<nodes> (e.g. 1000000, 10000000 or 100000000) to run the streamed out-of-core check")
	}
	n, err := strconv.Atoi(env)
	if err != nil || n < 1000 {
		t.Fatalf("REPRO_HUGE=%q: want a node count >= 1000", env)
	}
	budget := int64(1 << 30)
	if b := os.Getenv("REPRO_HUGE_BUDGET"); b != "" {
		budget, err = core.ParseByteSize(b)
		if err != nil || budget <= 0 {
			t.Fatalf("REPRO_HUGE_BUDGET=%q: %v", b, err)
		}
	}
	in := experiments.Huge(n, 1)
	M := in.M(core.BoundMid)
	eng := expand.NewEngine()
	opts := expand.Options{MaxPerNode: 2, Workers: 1, CacheBudget: budget}

	// Streamed run first: process RSS is a monotone high-water, so the
	// streamed engine must set its mark before the materializing
	// comparison run gets a chance to raise it. baseRSS guards the other
	// direction — an earlier test in the same process (TestHugeTreeBudgeted
	// under the same REPRO_HUGE) may already have pushed the high-water
	// past anything this run reaches, voiding the comparison.
	baseRSS := peakRSSBytes()
	var steps int64
	res, err := eng.RecExpandStream(in.Tree, M, opts, func(seg []int) bool {
		steps += int64(len(seg))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	streamed := eng.CacheStats()
	rssStream := peakRSSBytes()
	if steps != int64(in.Tree.N()) {
		t.Fatalf("streamed %d schedule steps for %d nodes", steps, in.Tree.N())
	}
	if streamed.StreamedNodes == 0 {
		t.Fatal("releasing emission never engaged")
	}
	t.Logf("streamed: n=%d budget=%dMiB cache-high-water=%dMiB released=%d remats=%d rss=%dMiB io=%d expansions=%d",
		in.Tree.N(), budget>>20, streamed.PeakResidentBytes>>20, streamed.StreamedNodes,
		streamed.Rematerializations, rssStream>>20, res.IO, res.Expansions)

	if os.Getenv("REPRO_HUGE_COMPARE") == "0" {
		return
	}
	// The old path at the same scale and budget: materializes the n-word
	// expanded and original schedules and keeps every rope pinned across
	// the flatten. Identical Result required; strictly higher process
	// high-water required.
	matRes, err := eng.RecExpand(in.Tree, M, opts)
	if err != nil {
		t.Fatal(err)
	}
	rssMat := peakRSSBytes()
	if matRes.IO != res.IO || matRes.Expansions != res.Expansions || matRes.SimulatedIO != res.SimulatedIO {
		t.Fatalf("materialized run changed the result: io %d vs %d", matRes.IO, res.IO)
	}
	if int64(len(matRes.Schedule)) != steps {
		t.Fatalf("materialized schedule has %d steps, streamed %d", len(matRes.Schedule), steps)
	}
	if rssStream == 0 {
		t.Log("peak RSS unavailable on this platform; skipping the high-water comparison")
		return
	}
	if rssStream <= baseRSS {
		t.Logf("process high-water %dMiB predates the streamed run (earlier tests in this process); skipping the comparison — run with -run TestHugeTreeStreamed for the measured claim", baseRSS>>20)
		return
	}
	if rssMat <= rssStream {
		t.Fatalf("materialized path did not exceed the streamed high-water: %dMiB <= %dMiB",
			rssMat>>20, rssStream>>20)
	}
	t.Logf("materialized: rss=%dMiB (+%dMiB over streamed)", rssMat>>20, (rssMat-rssStream)>>20)
}
