package repro

// Documentation-coverage lint, run as a plain test so it needs no external
// tools and gates CI (the lint job runs it alongside go vet and gofmt):
// every exported top-level declaration in every package of this module
// must carry a doc comment, and every package must have a package comment.
// The operating envelope of a reproduction is part of its correctness
// story — an undocumented exported symbol is a regression here.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// lintSkipDirs are not part of the module's API surface.
var lintSkipDirs = map[string]bool{".git": true, ".github": true, "testdata": true}

func TestExportedSymbolsDocumented(t *testing.T) {
	var violations []string
	packagesSeen := map[string]bool{} // dir -> has package comment somewhere
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if lintSkipDirs[d.Name()] {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		dir := filepath.Dir(path)
		if f.Doc != nil {
			packagesSeen[dir] = true
		} else if _, ok := packagesSeen[dir]; !ok {
			packagesSeen[dir] = false
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				// Methods on unexported receivers are not API surface
				// (interface satisfiers like sort/heap methods included),
				// matching staticcheck's ST1020 scope.
				if d.Name.IsExported() && d.Doc == nil && receiverExported(d) {
					violations = append(violations, pos(fset, d.Pos())+": exported func "+d.Name.Name)
				}
			case *ast.GenDecl:
				// A doc comment on the group covers its specs (the
				// standard Go convention for const/var blocks).
				if d.Doc != nil {
					continue
				}
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
							violations = append(violations, pos(fset, s.Pos())+": exported type "+s.Name.Name)
						}
					case *ast.ValueSpec:
						if s.Doc != nil || s.Comment != nil {
							continue
						}
						for _, n := range s.Names {
							if n.IsExported() {
								violations = append(violations, pos(fset, n.Pos())+": exported "+declKind(d.Tok)+" "+n.Name)
							}
						}
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for dir, ok := range packagesSeen {
		if !ok {
			violations = append(violations, dir+": package has no package comment (add a doc.go)")
		}
	}
	if len(violations) > 0 {
		t.Fatalf("undocumented exported symbols (%d):\n  %s",
			len(violations), strings.Join(violations, "\n  "))
	}
}

// receiverExported reports whether fn is a plain function or a method
// whose receiver type is exported.
func receiverExported(fn *ast.FuncDecl) bool {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return true
	}
	t := fn.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}

func pos(fset *token.FileSet, p token.Pos) string {
	pp := fset.Position(p)
	return pp.Filename + ":" + strconv.Itoa(pp.Line)
}

func declKind(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}

// Ensure the lint cannot silently pass by walking nothing (e.g. a future
// layout change): the module root must contain the internal tree.
func TestLintWalksTheModule(t *testing.T) {
	if _, err := os.Stat("internal/liu/cache.go"); err != nil {
		t.Fatal("doc lint is not running at the module root:", err)
	}
}
