//go:build race

package repro

// raceEnabled reports that this test binary runs under the race detector,
// whose shadow memory inflates RSS far past any engine budget — tests with
// resident-memory envelopes skip those assertions when it is set.
const raceEnabled = true
