package repro_test

import (
	"fmt"
	"strings"

	"repro"
)

// The paper's Figure 2(b) instance: a unit root consuming two chains of
// output sizes 3, 5, 2, 6.
func fig2bTree() *repro.Tree {
	t, err := repro.NewTree(
		[]int{repro.None, 0, 1, 2, 3, 0, 5, 6, 7},
		[]int64{1, 3, 5, 2, 6, 3, 5, 2, 6},
	)
	if err != nil {
		panic(err)
	}
	return t
}

func ExampleSchedule() {
	t := fig2bTree()
	res, err := repro.Schedule(t, 6, repro.RecExpand)
	if err != nil {
		panic(err)
	}
	fmt.Println("I/O volume:", res.IO)
	// Output:
	// I/O volume: 3
}

// ExampleScheduleTuned shows the engine knobs behind the -workers and
// -cache-budget CLI flags (cmd/sched, cmd/minio-bench): sharding the
// expansion walk and bounding the profile-cache memory never change the
// result — even a 1-byte budget (constant cache thrash) reproduces the
// exact I/O volume.
func ExampleScheduleTuned() {
	t := fig2bTree()
	plain, err := repro.Schedule(t, 6, repro.RecExpand)
	if err != nil {
		panic(err)
	}
	tuned, err := repro.ScheduleTuned(t, 6, repro.RecExpand, repro.Tuning{Workers: 2, CacheBudget: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println(plain.IO, tuned.IO, plain.IO == tuned.IO)
	// Output:
	// 3 3 true
}

func ExampleScheduleStreamed() {
	t := fig2bTree()
	plain, err := repro.Schedule(t, 6, repro.RecExpand)
	if err != nil {
		panic(err)
	}
	// Stream the traversal to a writer instead of materializing it: the
	// segments concatenate to exactly plain.Schedule, and on huge trees
	// the n-word slice never exists (see DESIGN.md §2.8).
	var sb strings.Builder
	var streamed *repro.Result
	var serr error
	steps, err := repro.WriteSchedule(&sb, func(yield func(seg []int) bool) bool {
		streamed, serr = repro.ScheduleStreamed(t, 6, repro.RecExpand, repro.Tuning{CacheBudget: 1}, yield)
		return serr == nil
	})
	if serr != nil {
		panic(serr) // the engine's own error, not the writer's truncation notice
	}
	if err != nil {
		panic(err)
	}
	back, err := repro.ReadSchedule(strings.NewReader(sb.String()))
	if err != nil {
		panic(err)
	}
	fmt.Println(steps, streamed.IO == plain.IO, fmt.Sprint(back) == fmt.Sprint(plain.Schedule))
	// Output:
	// 9 true true
}

func ExampleMinMemory() {
	t := fig2bTree()
	fmt.Println(repro.MinMemory(t), repro.OptimalPeak(t))
	// Output:
	// 6 8
}

func ExampleIOVolume() {
	t := fig2bTree()
	// Process one chain entirely, then the other: 3 units of I/O.
	order := repro.TaskSchedule{4, 3, 2, 1, 8, 7, 6, 5, 0}
	io, err := repro.IOVolume(t, 6, order)
	if err != nil {
		panic(err)
	}
	fmt.Println(io)
	// Output:
	// 3
}

func ExampleBestPostorder() {
	t := fig2bTree()
	_, io := repro.BestPostorder(t, 6)
	fmt.Println(io)
	// Output:
	// 3
}

func ExampleScheduleForIO() {
	t := fig2bTree()
	// Prescribe 3 units of I/O on the first chain's top node; Theorem 2
	// constructs a schedule realizing it.
	tau := make([]int64, t.N())
	tau[1] = 3
	sched, err := repro.ScheduleForIO(t, 6, tau)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(sched) == t.N())
	// Output:
	// true
}

func ExampleExecute() {
	t := fig2bTree()
	sched, _ := repro.OptimalPeakSchedule(t)
	// Each task's output: its node id repeated over weight×unit bytes.
	f := func(node int, inputs map[int][]byte) ([]byte, error) {
		out := make([]byte, t.Weight(node)*8)
		for i := range out {
			out[i] = byte(node)
		}
		return out, nil
	}
	root, stats, err := repro.Execute(t, 6, sched, repro.ExecConfig{UnitSize: 8}, f)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(root), stats.UnitsWritten > 0)
	// Output:
	// 8 true
}
