//go:build !linux && !darwin

package repro

// peakRSSBytes is unavailable on platforms without getrusage; consumers
// (the residency benchmarks and TestHugeTreeStreamed) treat 0 as "no
// measurement" and skip their RSS assertions.
func peakRSSBytes() int64 { return 0 }
