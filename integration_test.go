package repro

// End-to-end integration tests spanning the whole stack: dataset substrate
// → symbolic analysis → scheduling → validation → byte-level execution.

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/expand"
	"repro/internal/liu"
	"repro/internal/memsim"
	"repro/internal/oocexec"
	"repro/internal/randtree"
	"repro/internal/search"
	"repro/internal/sparse"
	"repro/internal/tree"
)

// TestPipelineSparseToExecution runs the full multifrontal scenario: build
// a matrix, analyze it, schedule the assembly tree out-of-core with every
// algorithm, verify each traversal, and execute the best one with real
// byte buffers, checking the result against an in-core run.
func TestPipelineSparseToExecution(t *testing.T) {
	nx := 18
	pat, err := sparse.Grid2D(nx, nx)
	if err != nil {
		t.Fatal(err)
	}
	perm := sparse.NestedDissection2D(nx, nx, 8)
	pat, err = pat.Permute(perm)
	if err != nil {
		t.Fatal(err)
	}
	tt, err := sparse.EliminationTaskTree(pat, 0)
	if err != nil {
		t.Fatal(err)
	}
	in := core.NewInstance("grid", tt)
	if !in.NeedsIO() {
		t.Fatalf("instance unexpectedly I/O-free (LB=%d Peak=%d)", in.LB, in.Peak)
	}
	M := in.M(core.BoundMid)
	lbIO := core.IOLowerBound(tt, M)

	var bestSched tree.Schedule
	bestIO := int64(1) << 62
	for _, alg := range core.PaperAlgorithms {
		res, err := core.Run(alg, tt, M)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if res.IO < lbIO {
			t.Fatalf("%s: IO %d below the provable lower bound %d", alg, res.IO, lbIO)
		}
		if err := tree.Validate(tt, res.Schedule); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if res.IO < bestIO {
			bestIO, bestSched = res.IO, res.Schedule
		}
	}

	// The FiF τ of the best schedule must be realizable via Theorem 2.
	plan, err := memsim.Run(tt, M, bestSched, memsim.FiF)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := expand.ScheduleForIO(tt, M, plan.Tau); err != nil {
		t.Fatal(err)
	}

	// Execute for real (unit = 4 bytes to keep buffers small).
	f := func(node int, inputs map[int][]byte) ([]byte, error) {
		var acc byte
		for _, c := range tt.Children(node) {
			buf, ok := inputs[c]
			if !ok {
				return nil, fmt.Errorf("missing input %d", c)
			}
			for _, b := range buf {
				acc ^= b
			}
		}
		out := make([]byte, tt.Weight(node)*4)
		for i := range out {
			out[i] = acc ^ byte(node+i)
		}
		return out, nil
	}
	want, _, err := oocexec.Execute(tt, in.Peak, bestSched, oocexec.Config{UnitSize: 4}, f)
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := oocexec.Execute(tt, M, bestSched, oocexec.Config{UnitSize: 4, SpillDir: t.TempDir()}, f)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("out-of-core execution produced a different result")
	}
	if st.UnitsWritten != plan.IO {
		t.Fatalf("executor spilled %d units, planner predicted %d", st.UnitsWritten, plan.IO)
	}
}

// TestPipelineSynthSearchHeadroom checks the solver chain on SYNTH
// instances: heuristics ≥ brute lower bound, local search never hurts, and
// the paper's hierarchy holds in aggregate.
func TestPipelineSynthSearchHeadroom(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	var sumOpt, sumRec, sumPO int64
	for trial := 0; trial < 10; trial++ {
		tr := randtree.Synth(200, rng)
		in := core.NewInstance("s", tr)
		if !in.NeedsIO() {
			continue
		}
		M := in.M(core.BoundMid)
		opt, err := core.Run(core.OptMinMem, tr, M)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := core.Run(core.RecExpand, tr, M)
		if err != nil {
			t.Fatal(err)
		}
		po, err := core.Run(core.PostOrderMinIO, tr, M)
		if err != nil {
			t.Fatal(err)
		}
		sumOpt += opt.IO
		sumRec += rec.IO
		sumPO += po.IO
		recSchedIO, err := memsim.IOOf(tr, M, rec.Schedule)
		if err != nil {
			t.Fatal(err)
		}
		s, err := search.Improve(tr, M, rec.Schedule, search.Options{Seed: int64(trial), MaxRounds: 3})
		if err != nil {
			t.Fatal(err)
		}
		if s.IO > recSchedIO {
			t.Fatal("search made things worse")
		}
	}
	if sumRec > sumOpt {
		t.Errorf("RecExpand total %d above OptMinMem total %d", sumRec, sumOpt)
	}
	if sumPO < sumRec {
		t.Errorf("PostOrderMinIO total %d below RecExpand total %d on SYNTH — unexpected", sumPO, sumRec)
	}
}

// TestDeterminism: the whole pipeline is deterministic for a fixed seed.
func TestDeterminism(t *testing.T) {
	run := func() string {
		tr := randtree.Synth(150, rand.New(rand.NewSource(5)))
		in := core.NewInstance("d", tr)
		M := in.M(core.BoundMid)
		var out string
		for _, alg := range core.PaperAlgorithms {
			res, err := core.Run(alg, tr, M)
			if err != nil {
				t.Fatal(err)
			}
			out += fmt.Sprintf("%s=%d;", alg, res.IO)
		}
		return out
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %s vs %s", a, b)
	}
}

// TestDeepTreeStack exercises every algorithm on a 50k-node chain-heavy
// tree (elimination trees of banded matrices are near-chains of this
// size); nothing may recurse on the Go stack proportionally to depth.
func TestDeepTreeStack(t *testing.T) {
	if testing.Short() {
		t.Skip("deep-tree stress")
	}
	n := 50_000
	parent := make([]int, n)
	weight := make([]int64, n)
	parent[0] = tree.None
	weight[0] = 1
	rng := rand.New(rand.NewSource(9))
	for i := 1; i < n; i++ {
		// Mostly a chain with occasional short branches.
		if i > 10 && rng.Intn(20) == 0 {
			parent[i] = i - 1 - rng.Intn(10)
		} else {
			parent[i] = i - 1
		}
		weight[i] = 1 + rng.Int63n(9)
	}
	tr := tree.MustNew(parent, weight)
	in := core.NewInstance("deep", tr)
	M := in.M(core.BoundMid)
	if M < in.LB {
		M = in.LB
	}
	for _, alg := range []core.Algorithm{core.OptMinMem, core.PostOrderMinIO, core.PostOrderMinMem, core.NaturalPostOrder} {
		if _, err := core.Run(alg, tr, M); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
	}
	_ = liu.MemProfile(tr)
}
