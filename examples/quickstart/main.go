// Quickstart: build a small task tree, ask how much memory it needs, then
// schedule it out-of-core with every algorithm of the paper and compare the
// I/O volumes.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
)

func main() {
	// The Figure 2(b) tree of the paper: a unit root consuming two
	// chains with output sizes 3, 5, 2, 6 (top-down).
	//
	//            root(1)
	//           /       \
	//         3           3
	//         |           |
	//         5           5
	//         |           |
	//         2           2
	//         |           |
	//         6           6
	parents := []int{repro.None, 0, 1, 2, 3, 0, 5, 6, 7}
	weights := []int64{1, 3, 5, 2, 6, 3, 5, 2, 6}
	t, err := repro.NewTree(parents, weights)
	if err != nil {
		log.Fatal(err)
	}

	lb := repro.MinMemory(t)     // cannot run at all below this
	peak := repro.OptimalPeak(t) // no I/O needed at or above this
	fmt.Printf("tree with %d tasks: minimum memory %d, in-core peak %d\n", t.N(), lb, peak)

	M := int64(6) // the paper's bound for this example
	fmt.Printf("scheduling with M = %d:\n", M)
	for _, alg := range []repro.Algorithm{
		repro.OptMinMem,
		repro.PostOrderMinIO,
		repro.RecExpand,
		repro.FullRecExpand,
	} {
		res, err := repro.Schedule(t, M, alg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-16s I/O volume %d  (performance %.3f)\n",
			alg, res.IO, res.Performance(M))
	}

	// Any topological order can be evaluated directly; Theorem 1 says
	// the Furthest-in-Future policy used by IOVolume is optimal for it.
	chainAfterChain := repro.TaskSchedule{4, 3, 2, 1, 8, 7, 6, 5, 0}
	io, err := repro.IOVolume(t, M, chainAfterChain)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hand-written chain-after-chain order: I/O volume %d (the optimum here)\n", io)

	// At scale, the engine has two knobs that trade wall-clock against
	// memory without ever changing the result — the same knobs the CLIs
	// expose as `sched -workers 8 -cache-budget 256MiB`:
	//   Workers      shards the expansion walk over subtree units;
	//   CacheBudget  bounds the resident profile-cache bytes (10⁷-node
	//                trees schedule in a flat memory envelope).
	tuned, err := repro.ScheduleTuned(t, M, repro.RecExpand,
		repro.Tuning{Workers: 2, CacheBudget: 64 << 20})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tuned engine (workers=2, cache budget 64MiB): I/O volume %d — identical\n", tuned.IO)

	// Beyond ~10⁸ tasks even the answer itself is too big to hold: stream
	// the traversal to a writer segment by segment instead (WriteSchedule
	// + ScheduleStreamed never build the n-word schedule; cmd/sched
	// exposes the same path as `-stream-sched file`).
	var sb strings.Builder
	var streamed *repro.Result
	var serr error
	steps, err := repro.WriteSchedule(&sb, func(yield func(seg []int) bool) bool {
		streamed, serr = repro.ScheduleStreamed(t, M, repro.RecExpand,
			repro.Tuning{CacheBudget: 64 << 20}, yield)
		return serr == nil
	})
	if serr != nil {
		log.Fatal(serr) // the engine's own error, not the writer's truncation notice
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed %d-step schedule (%d bytes on the wire): I/O volume %d — identical\n",
		steps, sb.Len(), streamed.IO)
}
