// Multifrontal: the end-to-end sparse direct solver scenario that motivates
// the paper. Starting from a sparse symmetric matrix (a 2-D Laplacian under
// nested dissection), run the symbolic analysis — elimination tree, factor
// column counts, supernode amalgamation — to obtain the assembly task tree,
// then plan its out-of-core factorization under a memory budget smaller
// than the in-core peak.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/sparse"
)

func main() {
	// 1. The matrix: a 24×24 grid Laplacian (576 unknowns), permuted by
	// geometric nested dissection the way a fill-reducing ordering
	// package would.
	nx := 24
	pat, err := sparse.Grid2D(nx, nx)
	if err != nil {
		log.Fatal(err)
	}
	perm := sparse.NestedDissection2D(nx, nx, 8)
	pat, err = pat.Permute(perm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matrix: %d unknowns, %d off-diagonal nonzeros\n", pat.N, 2*pat.NNZ())

	// 2. Symbolic analysis.
	parent := sparse.Etree(pat)
	post := sparse.EtreePostorder(parent)
	counts := sparse.ColCounts(pat, parent)
	var fill int64
	for _, c := range counts {
		fill += c
	}
	fmt.Printf("factor: %d nonzeros (fill ratio %.1fx)\n", fill, float64(fill)/float64(pat.NNZ()+pat.N))

	sns := sparse.Amalgamate(parent, post, counts, 0)
	t, err := sparse.AssemblyTree(sns)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assembly tree: %d supernodes, depth %d, %d leaves\n",
		t.N(), t.Depth(), len(t.Leaves()))

	// 3. Memory analysis: how much memory does the factorization need
	// in-core, and what is the least memory it can run in at all?
	lb := repro.MinMemory(t)
	peak := repro.OptimalPeak(t)
	fmt.Printf("contribution-block memory: minimum %d units, in-core peak %d units\n", lb, peak)
	if peak == lb {
		fmt.Println("this tree never needs I/O; pick a larger grid")
		return
	}

	// 4. Out-of-core planning at half the slack, the paper's main
	// setting: M = (LB + Peak − 1) / 2.
	M := (lb + peak - 1) / 2
	fmt.Printf("planning out-of-core factorization with M = %d:\n", M)
	type row struct {
		alg repro.Algorithm
		io  int64
	}
	var best row
	for _, alg := range []repro.Algorithm{
		repro.NaturalPostOrder,
		repro.PostOrderMinMem,
		repro.PostOrderMinIO,
		repro.OptMinMem,
		repro.RecExpand,
	} {
		res, err := repro.Schedule(t, M, alg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-16s writes %6d units to disk (performance %.4f)\n",
			alg, res.IO, res.Performance(M))
		if best.alg == "" || res.IO < best.io {
			best = row{alg, res.IO}
		}
	}
	fmt.Printf("chosen schedule: %s with %d units of I/O\n", best.alg, best.io)
}
