// Adversarial: reproduces the two lower-bound families of Section 4 of the
// paper, showing that both classical strategies can be arbitrarily far from
// optimal — the reason the paper's expansion heuristic exists.
//
// Family (a) (Figure 2(a)) defeats the best postorder: one unit of I/O
// suffices, yet every postorder pays about M/2 per leaf. Family (c)
// (Figure 2(c)) defeats the optimal peak-memory traversal: 2k I/Os suffice,
// yet OPTMINMEM pays Θ(k²).
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/experiments"
)

func main() {
	fmt.Println("--- Family (a): postorders are not competitive (M = 20) ---")
	M := int64(20)
	fmt.Printf("%8s %8s %14s %16s\n", "levels", "nodes", "optimal I/O", "postorder I/O")
	for levels := 0; levels <= 6; levels += 2 {
		t, good, err := experiments.Fig2a(levels, M)
		if err != nil {
			log.Fatal(err)
		}
		gio, err := repro.IOVolume(t, M, good)
		if err != nil {
			log.Fatal(err)
		}
		_, pio := repro.BestPostorder(t, M)
		fmt.Printf("%8d %8d %14d %16d\n", levels, t.N(), gio, pio)
	}

	fmt.Println()
	fmt.Println("--- Family (c): OPTMINMEM is not competitive (M = 4k) ---")
	fmt.Printf("%8s %8s %14s %16s %12s\n", "k", "M", "chain I/O", "OptMinMem I/O", "RecExpand")
	for k := int64(2); k <= 10; k += 2 {
		t, chain, M, err := experiments.Fig2c(k)
		if err != nil {
			log.Fatal(err)
		}
		cio, err := repro.IOVolume(t, M, chain)
		if err != nil {
			log.Fatal(err)
		}
		opt, err := repro.Schedule(t, M, repro.OptMinMem)
		if err != nil {
			log.Fatal(err)
		}
		rec, err := repro.Schedule(t, M, repro.RecExpand)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %8d %14d %16d %12d\n", k, M, cio, opt.IO, rec.IO)
	}
	fmt.Println()
	fmt.Println("RecExpand repairs OPTMINMEM by making the forced I/Os explicit in the")
	fmt.Println("tree before rescheduling (Section 5 of the paper).")
}
