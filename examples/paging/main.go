// Paging: a close-up of the out-of-core machinery on the Figure 6 example.
// It shows the step-by-step memory timeline of OPTMINMEM's schedule under
// the Furthest-in-Future policy, then how FULLRECEXPAND transforms the tree
// (expanding node b, then the middle link again) to reach the optimal three
// units of I/O.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/expand"
	"repro/internal/experiments"
	"repro/internal/liu"
	"repro/internal/memsim"
)

func main() {
	t, a, b := experiments.Fig6()
	M := experiments.Fig6M
	fmt.Printf("Figure 6 tree (%d tasks), M = %d, nodes a=%d b=%d\n", t.N(), M, a, b)
	fmt.Printf("minimum memory %d, in-core peak %d\n\n", repro.MinMemory(t), repro.OptimalPeak(t))

	// OPTMINMEM's schedule, traced step by step.
	sched, peak := liu.MinMem(t)
	fmt.Printf("OPTMINMEM schedule (in-core peak %d): %v\n", peak, sched)
	res, err := memsim.RunTraced(t, M, sched, memsim.FiF)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(memsim.RenderTrace(res, 48))
	fmt.Printf("τ per node: %v\n\n", res.Tau)

	// FULLRECEXPAND: expansion-by-expansion.
	full, err := expand.FullRecExpand(t, M)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FULLRECEXPAND: %d expansions, declared I/O %d (optimal is 3)\n",
		full.Expansions, full.IO)
	fmt.Printf("final schedule on the original tree: %v\n", full.Schedule)

	score, err := memsim.ScoreSchedule(t, M, full.Schedule)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-simulating that schedule with FiF paging: %d units of I/O (in-core peak %d, fits M: %v)\n",
		score.IO, score.Peak, score.Bounded)
}
