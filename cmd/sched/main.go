// Command sched runs a MinIO scheduling algorithm on a task tree (JSON, as
// produced by treegen) and reports the traversal, its I/O volume and
// optionally the step-by-step memory trace or a Graphviz rendering.
//
// Usage:
//
//	sched -tree tree.json -M 5000 -alg RecExpand
//	sched -tree tree.json -mid -alg all -trace
//	sched -tree tree.json -M 5000 -alg OptMinMem -dot out.dot
//	sched -tree big.json -mid -alg RecExpand -workers 8 -cache-budget 256MiB
//
// -workers shards the expansion engine's postorder walk; -cache-budget
// bounds the resident bytes of its profile caches (out-of-core-scale
// trees). Both knobs change only time and memory, never the result.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/memsim"
	"repro/internal/search"
	"repro/internal/stats"
	"repro/internal/tree"
)

func main() {
	treePath := flag.String("tree", "", "task tree JSON file")
	M := flag.Int64("M", 0, "memory bound (units)")
	mid := flag.Bool("mid", false, "use the paper's mid bound (LB+Peak-1)/2 instead of -M")
	alg := flag.String("alg", "RecExpand", "algorithm: OptMinMem, PostOrderMinIO, PostOrderMinMem, NaturalPostOrder, RecExpand, FullRecExpand, or all")
	trace := flag.Bool("trace", false, "print the step-by-step memory trace")
	dot := flag.String("dot", "", "write a Graphviz rendering (tree + schedule steps) to this file")
	doSearch := flag.Bool("search", false, "post-optimize each schedule with local search")
	workers := flag.Int("workers", 0, "expansion-engine workers: 0 = auto (GOMAXPROCS on large trees), 1 = sequential; results are identical for every setting")
	cacheBudget := flag.String("cache-budget", "", "resident-byte budget of the expansion engine's profile caches, e.g. 64MiB (empty or 0 = unlimited); results are identical for every budget")
	out := flag.String("o", "", "write the last algorithm's full traversal (σ, τ) as JSON to this file")
	flag.Parse()

	budget, err := core.ParseByteSize(*cacheBudget)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sched:", err)
		os.Exit(1)
	}
	if err := run(*treePath, *M, *mid, *alg, *trace, *dot, *doSearch, *workers, budget, *out); err != nil {
		fmt.Fprintln(os.Stderr, "sched:", err)
		os.Exit(1)
	}
}

func run(treePath string, M int64, mid bool, alg string, trace bool, dot string, doSearch bool, workers int, cacheBudget int64, out string) error {
	if treePath == "" {
		return fmt.Errorf("-tree is required")
	}
	f, err := os.Open(treePath)
	if err != nil {
		return err
	}
	t, err := tree.ReadJSON(f)
	f.Close()
	if err != nil {
		return err
	}
	in := core.NewInstance(treePath, t)
	fmt.Printf("%s  LB=%d Peak_incore=%d\n", t.String(), in.LB, in.Peak)
	if mid {
		M = in.M(core.BoundMid)
		if M < in.LB {
			M = in.LB // Peak == LB: the tree never needs I/O
		}
		fmt.Printf("using mid bound M=%d\n", M)
	}
	if M <= 0 {
		return fmt.Errorf("need -M > 0 or -mid")
	}

	algs := []core.Algorithm{core.Algorithm(alg)}
	if alg == "all" {
		algs = append(append([]core.Algorithm(nil), core.PaperAlgorithms...), core.PostOrderMinMem, core.NaturalPostOrder)
	}
	header := []string{"algorithm", "IO", "performance", "peak_incore"}
	if doSearch {
		header = append(header, "IO_after_search")
	}
	tab := stats.NewTable(header...)
	runner := core.NewRunner(workers)
	runner.CacheBudget = cacheBudget
	var lastSched tree.Schedule
	for _, a := range algs {
		res, err := runner.Run(a, t, M)
		if err != nil {
			return err
		}
		row := fmt.Sprintf("%s %d %.4f %d", a, res.IO, res.Performance(M), res.Peak)
		lastSched = res.Schedule
		if doSearch {
			s, err := search.Improve(t, M, res.Schedule, search.Options{Seed: 1})
			if err != nil {
				return err
			}
			row += fmt.Sprintf(" %d", s.IO)
			lastSched = s.Schedule
		}
		tab.AddRowf("%s", row)
	}
	if err := tab.Write(os.Stdout); err != nil {
		return err
	}

	if trace && lastSched != nil {
		res, err := memsim.RunTraced(t, M, lastSched, memsim.FiF)
		if err != nil {
			return err
		}
		fmt.Printf("\ntrace of %s (last algorithm):\n", algs[len(algs)-1])
		fmt.Print(memsim.RenderTrace(res, 60))
	}
	if dot != "" && lastSched != nil {
		f, err := os.Create(dot)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := t.WriteDOT(f, lastSched); err != nil {
			return err
		}
		fmt.Println("DOT written to", dot)
	}
	if out != "" && lastSched != nil {
		tv, err := core.NewTraversal(t, M, lastSched, algs[len(algs)-1])
		if err != nil {
			return err
		}
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := tv.Write(f); err != nil {
			return err
		}
		fmt.Printf("traversal (IO=%d) written to %s\n", tv.IO(), out)
	}
	return nil
}
