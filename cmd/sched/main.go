// Command sched runs a MinIO scheduling algorithm on a task tree (JSON, as
// produced by treegen) and reports the traversal, its I/O volume and
// optionally the step-by-step memory trace or a Graphviz rendering.
//
// Usage:
//
//	sched -tree tree.json -M 5000 -alg RecExpand
//	sched -tree tree.json -mid -alg all -trace
//	sched -tree tree.json -M 5000 -alg OptMinMem -dot out.dot
//	sched -tree big.json -mid -alg RecExpand -workers 8 -cache-budget 256MiB
//	sched -tree huge.json -mid -alg RecExpand -cache-budget 1GiB -stream-sched sched.txt
//	sched -tree huge.json -mid -alg RecExpand -stream-sched sched.txt -checkpoint run.ckpt
//	sched -tree huge.json -mid -alg RecExpand -stream-sched sched.txt -checkpoint run.ckpt -resume
//	sched -repair-sched sched.txt.partial
//
// -workers shards the expansion engine's postorder walk; -cache-budget
// bounds the resident bytes of its profile caches (out-of-core-scale
// trees). Both knobs change only time and memory, never the result.
// -stream-sched writes the traversal straight to disk segment by segment
// (tree.WriteSchedule over the engine's streamed emission), so huge trees
// are scheduled without ever materializing the n-word schedule slice; the
// stream grows in <out>.partial and is atomically renamed over <out> only
// when complete, so the target path never holds a partial schedule.
//
// -checkpoint FILE arms durable checkpointing of the expansion engine
// (RecExpand/FullRecExpand only): the decision log and frontier are
// atomically persisted at quiescent points, so a run killed at ANY
// instant — SIGKILL included — restarts with -resume and continues to a
// bit-identical result instead of recomputing from scratch. With
// -stream-sched, -resume also repairs the partial stream (trimming a torn
// tail) and appends only the missing ids. -repair-sched validates and
// trims a partial stream standalone, reporting the safe resume offset.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/expand"
	"repro/internal/faultinject"
	"repro/internal/memsim"
	"repro/internal/search"
	"repro/internal/stats"
	"repro/internal/tree"
)

func main() {
	treePath := flag.String("tree", "", "task tree JSON file")
	M := flag.Int64("M", 0, "memory bound (units)")
	mid := flag.Bool("mid", false, "use the paper's mid bound (LB+Peak-1)/2 instead of -M")
	alg := flag.String("alg", "RecExpand", "algorithm: OptMinMem, PostOrderMinIO, PostOrderMinMem, NaturalPostOrder, RecExpand, FullRecExpand, or all")
	trace := flag.Bool("trace", false, "print the step-by-step memory trace")
	dot := flag.String("dot", "", "write a Graphviz rendering (tree + schedule steps) to this file")
	doSearch := flag.Bool("search", false, "post-optimize each schedule with local search")
	workers := flag.Int("workers", 0, "expansion-engine workers: 0 = auto (GOMAXPROCS on large trees), 1 = sequential; results are identical for every setting")
	cacheBudget := flag.String("cache-budget", "", "resident-byte budget of the expansion engine's profile caches, e.g. 64MiB (empty or 0 = unlimited); results are identical for every budget")
	out := flag.String("o", "", "write the last algorithm's full traversal (σ, τ) as JSON to this file")
	streamSched := flag.String("stream-sched", "", "stream the schedule to this file, one node id per line, without materializing it (RecExpand/FullRecExpand only)")
	ckptPath := flag.String("checkpoint", "", "durably checkpoint the expansion engine's progress to this file (RecExpand/FullRecExpand only); resume a killed run with -resume")
	ckptInterval := flag.Int("checkpoint-interval", 0, "checkpointable events between durable checkpoint writes (0 = engine default)")
	resume := flag.Bool("resume", false, "resume from the -checkpoint file (and repair/extend the -stream-sched partial stream); a missing checkpoint starts fresh")
	repairSched := flag.String("repair-sched", "", "repair a partial schedule stream in place (trim torn tail, report the safe resume offset) and exit")
	flag.Parse()

	budget, err := core.ParseByteSize(*cacheBudget)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sched:", err)
		os.Exit(1)
	}
	isExpansion := core.Algorithm(*alg) == core.RecExpand || core.Algorithm(*alg) == core.FullRecExpand
	// First SIGINT/SIGTERM: cancel the context and let the engine stop
	// gracefully (the streaming path flushes a truncation-marked stream
	// and reports progress). Once the context is done the handler is
	// uninstalled, so a second signal force-kills a stuck run.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	go func() {
		<-ctx.Done()
		stopSignals()
	}()
	switch {
	case *repairSched != "":
		err = runRepair(*repairSched)
	case *streamSched != "" && (*out != "" || *trace || *dot != "" || *doSearch):
		// The streaming path never materializes the schedule these flags
		// need; dropping them silently would report success for work that
		// was not done.
		err = fmt.Errorf("-stream-sched cannot be combined with -o, -trace, -dot or -search")
	case (*ckptPath != "" || *resume) && !isExpansion:
		// Checkpointing is the expansion engine's; the closed-form
		// algorithms (and "all") have nothing durable to log.
		err = fmt.Errorf("-checkpoint/-resume require -alg RecExpand or FullRecExpand, not %q", *alg)
	case *resume && *ckptPath == "":
		err = fmt.Errorf("-resume requires -checkpoint (the file to resume from)")
	case *streamSched != "":
		err = runStream(ctx, *treePath, *M, *mid, *alg, *workers, budget, *streamSched, *ckptPath, *ckptInterval, *resume)
	default:
		err = run(ctx, *treePath, *M, *mid, *alg, *trace, *dot, *doSearch, *workers, budget, *out, *ckptPath, *ckptInterval, *resume)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sched:", err)
		if errors.Is(err, context.Canceled) {
			os.Exit(130) // interrupted, 128+SIGINT: scripts can tell a cancel from a failure
		}
		os.Exit(1)
	}
}

// loadInstance reads the tree and resolves the memory bound.
func loadInstance(treePath string, M int64, mid bool) (*core.Instance, int64, error) {
	if treePath == "" {
		return nil, 0, fmt.Errorf("-tree is required")
	}
	f, err := os.Open(treePath)
	if err != nil {
		return nil, 0, err
	}
	t, err := tree.ReadJSON(f)
	f.Close()
	if err != nil {
		return nil, 0, err
	}
	in := core.NewInstance(treePath, t)
	if mid {
		M = in.M(core.BoundMid)
		if M < in.LB {
			M = in.LB // Peak == LB: the tree never needs I/O
		}
	}
	if M <= 0 {
		return nil, 0, fmt.Errorf("need -M > 0 or -mid")
	}
	return in, M, nil
}

// runRepair is the standalone -repair-sched mode: trim a partial schedule
// stream to its longest trusted prefix so a later -resume (or any strict
// consumer of the prefix) starts from a safe offset.
func runRepair(path string) error {
	ids, complete, err := tree.RepairScheduleFile(path)
	if err != nil {
		return err
	}
	if complete {
		fmt.Printf("%s: already complete (%d schedule ids, end trailer verified); nothing trimmed\n", path, ids)
		return nil
	}
	fmt.Printf("%s: repaired to %d trusted schedule ids; safe resume offset is id %d (untrusted tail trimmed in place)\n", path, ids, ids)
	return nil
}

// runStream is the out-of-core path: the expansion engine streams the
// final schedule straight to the output file, so no n-word slice is ever
// built (see expand.(*Engine).RecExpandStream and tree.WriteSchedule).
//
// Durability contract: the stream grows in out+".partial" and is renamed
// over out only after the completeness trailer is durably on disk, so out
// either holds a strict-valid complete schedule or the previous run's.
// With -resume, the partial is first repaired (torn tail trimmed) and the
// engine's deterministic re-emission is skipped past the ids already on
// disk, so only the missing suffix is ever written.
func runStream(ctx context.Context, treePath string, M int64, mid bool, alg string, workers int, cacheBudget int64, out, ckptPath string, ckptInterval int, resume bool) error {
	maxPerNode := 0
	switch core.Algorithm(alg) {
	case core.RecExpand:
		maxPerNode = 2
	case core.FullRecExpand:
		maxPerNode = 0
	default:
		return fmt.Errorf("-stream-sched supports RecExpand and FullRecExpand, not %q", alg)
	}
	in, M, err := loadInstance(treePath, M, mid)
	if err != nil {
		return err
	}
	fmt.Printf("%s  LB=%d Peak_incore=%d M=%d\n", in.Tree.String(), in.LB, in.Peak, M)

	opts := expand.Options{
		MaxPerNode: maxPerNode, Workers: workers, CacheBudget: cacheBudget, Ctx: ctx,
		Checkpoint: expand.CheckpointOptions{Path: ckptPath, Interval: ckptInterval},
	}
	partial := out + ".partial"
	var skip int64
	var f *os.File
	if resume {
		// A checkpoint may legitimately be missing (the run was killed
		// before the first durable write): resume then degrades to a fresh
		// run. Any other stat failure is a real error.
		if _, err := os.Stat(ckptPath); err == nil {
			opts.ResumeFrom = ckptPath
		} else if !errors.Is(err, os.ErrNotExist) {
			return err
		}
		ids, complete, rerr := tree.RepairScheduleFile(partial)
		switch {
		case rerr == nil && complete:
			// The stream finished but the final rename was lost: commit the
			// already-complete partial without recomputing anything.
			pf, err := os.OpenFile(partial, os.O_RDWR, 0)
			if err != nil {
				return err
			}
			if err := ckpt.CommitFile(pf, partial, out); err != nil {
				return err
			}
			fmt.Printf("%d-step schedule already complete in %s; committed to %s\n", ids, partial, out)
			return nil
		case rerr == nil:
			skip = ids
			fmt.Printf("resuming: %d schedule ids already durable in %s\n", ids, partial)
		case errors.Is(rerr, os.ErrNotExist):
			// Killed before the first segment flushed: nothing to skip.
		default:
			return rerr
		}
		f, err = os.OpenFile(partial, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	} else {
		f, err = os.Create(partial)
	}
	if err != nil {
		return err
	}

	eng := expand.NewEngine()
	var res *expand.Result
	var rerr error
	// faultinject.NewWriter is an identity wrapper on default builds; under
	// the faultinject tag it lets the robustness harness fail this stream
	// at an exact byte offset.
	n, werr := tree.WriteScheduleAt(faultinject.NewWriter(f), skip, func(yield func(seg []int) bool) bool {
		res, rerr = eng.RecExpandStream(in.Tree, M, opts, yield)
		return rerr == nil
	})
	if errors.Is(rerr, context.Canceled) || errors.Is(rerr, context.DeadlineExceeded) {
		// Graceful interruption: WriteScheduleAt has already flushed the
		// truncation marker, so a strict reader can never mistake the
		// partial stream for a complete schedule, and a later -resume run
		// repairs and extends it.
		f.Close()
		fmt.Fprintf(os.Stderr, "sched: interrupted: %d schedule ids flushed to %s (stream carries a truncation marker; rerun with -resume to continue)\n", skip+n, partial)
		return rerr
	}
	if rerr != nil && rerr != expand.ErrEmissionStopped {
		f.Close()
		return rerr
	}
	if werr != nil {
		f.Close()
		return werr
	}
	// Fsync the finished stream and rename it over the target: out never
	// observes a partial schedule, even across power loss.
	if err := ckpt.CommitFile(f, partial, out); err != nil {
		return err
	}
	st := eng.CacheStats()
	fmt.Printf("%s IO=%d performance=%.4f expansions=%d peak_resident_cache=%.1fMiB\n",
		alg, res.IO, float64(M+res.IO)/float64(M), res.Expansions,
		float64(st.PeakResidentBytes)/(1<<20))
	fmt.Printf("%d-step schedule streamed to %s\n", skip+n, out)
	return nil
}

func run(ctx context.Context, treePath string, M int64, mid bool, alg string, trace bool, dot string, doSearch bool, workers int, cacheBudget int64, out, ckptPath string, ckptInterval int, resume bool) error {
	in, M, err := loadInstance(treePath, M, mid)
	if err != nil {
		return err
	}
	t := in.Tree
	fmt.Printf("%s  LB=%d Peak_incore=%d\n", t.String(), in.LB, in.Peak)
	if mid {
		fmt.Printf("using mid bound M=%d\n", M)
	}

	algs := []core.Algorithm{core.Algorithm(alg)}
	if alg == "all" {
		algs = append(append([]core.Algorithm(nil), core.PaperAlgorithms...), core.PostOrderMinMem, core.NaturalPostOrder)
	}
	header := []string{"algorithm", "IO", "performance", "peak_incore"}
	if doSearch {
		header = append(header, "IO_after_search")
	}
	tab := stats.NewTable(header...)
	runner := core.NewRunner(workers)
	runner.CacheBudget = cacheBudget
	runner.Ctx = ctx
	runner.CheckpointPath = ckptPath
	runner.CheckpointInterval = ckptInterval
	if resume {
		// Same contract as the streaming path: a checkpoint that was never
		// committed means the run starts from scratch, not an error.
		if _, err := os.Stat(ckptPath); err == nil {
			runner.ResumeFrom = ckptPath
		} else if !errors.Is(err, os.ErrNotExist) {
			return err
		}
	}
	var lastSched tree.Schedule
	for _, a := range algs {
		res, err := runner.Run(a, t, M)
		if err != nil {
			return err
		}
		row := fmt.Sprintf("%s %d %.4f %d", a, res.IO, res.Performance(M), res.Peak)
		lastSched = res.Schedule
		if doSearch {
			s, err := search.Improve(t, M, res.Schedule, search.Options{Seed: 1})
			if err != nil {
				return err
			}
			row += fmt.Sprintf(" %d", s.IO)
			lastSched = s.Schedule
		}
		tab.AddRowf("%s", row)
	}
	if err := tab.Write(os.Stdout); err != nil {
		return err
	}

	if trace && lastSched != nil {
		res, err := memsim.RunTraced(t, M, lastSched, memsim.FiF)
		if err != nil {
			return err
		}
		fmt.Printf("\ntrace of %s (last algorithm):\n", algs[len(algs)-1])
		fmt.Print(memsim.RenderTrace(res, 60))
	}
	if dot != "" && lastSched != nil {
		// Atomic temp+fsync+rename: a crash or write error mid-render never
		// leaves a truncated file at the requested path.
		err := ckpt.WriteFileAtomic(dot, func(w io.Writer) error {
			return t.WriteDOT(faultinject.NewWriter(w), lastSched)
		})
		if err != nil {
			return err
		}
		fmt.Println("DOT written to", dot)
	}
	if out != "" && lastSched != nil {
		tv, err := core.NewTraversal(t, M, lastSched, algs[len(algs)-1])
		if err != nil {
			return err
		}
		err = ckpt.WriteFileAtomic(out, func(w io.Writer) error {
			return tv.Write(faultinject.NewWriter(w))
		})
		if err != nil {
			return err
		}
		fmt.Printf("traversal (IO=%d) written to %s\n", tv.IO(), out)
	}
	return nil
}
