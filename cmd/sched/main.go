// Command sched runs a MinIO scheduling algorithm on a task tree (JSON, as
// produced by treegen) and reports the traversal, its I/O volume and
// optionally the step-by-step memory trace or a Graphviz rendering.
//
// Usage:
//
//	sched -tree tree.json -M 5000 -alg RecExpand
//	sched -tree tree.json -mid -alg all -trace
//	sched -tree tree.json -M 5000 -alg OptMinMem -dot out.dot
//	sched -tree big.json -mid -alg RecExpand -workers 8 -cache-budget 256MiB
//	sched -tree huge.json -mid -alg RecExpand -cache-budget 1GiB -stream-sched sched.txt
//
// -workers shards the expansion engine's postorder walk; -cache-budget
// bounds the resident bytes of its profile caches (out-of-core-scale
// trees). Both knobs change only time and memory, never the result.
// -stream-sched writes the traversal straight to disk segment by segment
// (tree.WriteSchedule over the engine's streamed emission), so huge trees
// are scheduled without ever materializing the n-word schedule slice.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/core"
	"repro/internal/expand"
	"repro/internal/faultinject"
	"repro/internal/memsim"
	"repro/internal/search"
	"repro/internal/stats"
	"repro/internal/tree"
)

func main() {
	treePath := flag.String("tree", "", "task tree JSON file")
	M := flag.Int64("M", 0, "memory bound (units)")
	mid := flag.Bool("mid", false, "use the paper's mid bound (LB+Peak-1)/2 instead of -M")
	alg := flag.String("alg", "RecExpand", "algorithm: OptMinMem, PostOrderMinIO, PostOrderMinMem, NaturalPostOrder, RecExpand, FullRecExpand, or all")
	trace := flag.Bool("trace", false, "print the step-by-step memory trace")
	dot := flag.String("dot", "", "write a Graphviz rendering (tree + schedule steps) to this file")
	doSearch := flag.Bool("search", false, "post-optimize each schedule with local search")
	workers := flag.Int("workers", 0, "expansion-engine workers: 0 = auto (GOMAXPROCS on large trees), 1 = sequential; results are identical for every setting")
	cacheBudget := flag.String("cache-budget", "", "resident-byte budget of the expansion engine's profile caches, e.g. 64MiB (empty or 0 = unlimited); results are identical for every budget")
	out := flag.String("o", "", "write the last algorithm's full traversal (σ, τ) as JSON to this file")
	streamSched := flag.String("stream-sched", "", "stream the schedule to this file, one node id per line, without materializing it (RecExpand/FullRecExpand only)")
	flag.Parse()

	budget, err := core.ParseByteSize(*cacheBudget)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sched:", err)
		os.Exit(1)
	}
	// First SIGINT/SIGTERM: cancel the context and let the engine stop
	// gracefully (the streaming path flushes a truncation-marked stream
	// and reports progress). Once the context is done the handler is
	// uninstalled, so a second signal force-kills a stuck run.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	go func() {
		<-ctx.Done()
		stopSignals()
	}()
	switch {
	case *streamSched != "" && (*out != "" || *trace || *dot != "" || *doSearch):
		// The streaming path never materializes the schedule these flags
		// need; dropping them silently would report success for work that
		// was not done.
		err = fmt.Errorf("-stream-sched cannot be combined with -o, -trace, -dot or -search")
	case *streamSched != "":
		err = runStream(ctx, *treePath, *M, *mid, *alg, *workers, budget, *streamSched)
	default:
		err = run(ctx, *treePath, *M, *mid, *alg, *trace, *dot, *doSearch, *workers, budget, *out)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sched:", err)
		if errors.Is(err, context.Canceled) {
			os.Exit(130) // interrupted, 128+SIGINT: scripts can tell a cancel from a failure
		}
		os.Exit(1)
	}
}

// loadInstance reads the tree and resolves the memory bound.
func loadInstance(treePath string, M int64, mid bool) (*core.Instance, int64, error) {
	if treePath == "" {
		return nil, 0, fmt.Errorf("-tree is required")
	}
	f, err := os.Open(treePath)
	if err != nil {
		return nil, 0, err
	}
	t, err := tree.ReadJSON(f)
	f.Close()
	if err != nil {
		return nil, 0, err
	}
	in := core.NewInstance(treePath, t)
	if mid {
		M = in.M(core.BoundMid)
		if M < in.LB {
			M = in.LB // Peak == LB: the tree never needs I/O
		}
	}
	if M <= 0 {
		return nil, 0, fmt.Errorf("need -M > 0 or -mid")
	}
	return in, M, nil
}

// runStream is the out-of-core path: the expansion engine streams the
// final schedule straight to the output file, so no n-word slice is ever
// built (see expand.(*Engine).RecExpandStream and tree.WriteSchedule).
func runStream(ctx context.Context, treePath string, M int64, mid bool, alg string, workers int, cacheBudget int64, out string) error {
	maxPerNode := 0
	switch core.Algorithm(alg) {
	case core.RecExpand:
		maxPerNode = 2
	case core.FullRecExpand:
		maxPerNode = 0
	default:
		return fmt.Errorf("-stream-sched supports RecExpand and FullRecExpand, not %q", alg)
	}
	in, M, err := loadInstance(treePath, M, mid)
	if err != nil {
		return err
	}
	fmt.Printf("%s  LB=%d Peak_incore=%d M=%d\n", in.Tree.String(), in.LB, in.Peak, M)
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	eng := expand.NewEngine()
	var res *expand.Result
	var rerr error
	// faultinject.NewWriter is an identity wrapper on default builds; under
	// the faultinject tag it lets the robustness harness fail this stream
	// at an exact byte offset.
	n, werr := tree.WriteSchedule(faultinject.NewWriter(f), func(yield func(seg []int) bool) bool {
		res, rerr = eng.RecExpandStream(in.Tree, M, expand.Options{
			MaxPerNode: maxPerNode, Workers: workers, CacheBudget: cacheBudget, Ctx: ctx,
		}, yield)
		return rerr == nil
	})
	if cerr := f.Close(); cerr != nil && werr == nil {
		// Write-back errors surfacing at close would otherwise leave a
		// truncated file reported as success.
		werr = cerr
	}
	if errors.Is(rerr, context.Canceled) || errors.Is(rerr, context.DeadlineExceeded) {
		// Graceful interruption: WriteSchedule has already flushed the
		// truncation marker, so a strict reader can never mistake the
		// partial stream for a complete schedule.
		fmt.Fprintf(os.Stderr, "sched: interrupted: %d schedule ids flushed to %s (stream carries a truncation marker)\n", n, out)
		return rerr
	}
	if rerr != nil && rerr != expand.ErrEmissionStopped {
		return rerr
	}
	if werr != nil {
		return werr
	}
	st := eng.CacheStats()
	fmt.Printf("%s IO=%d performance=%.4f expansions=%d peak_resident_cache=%.1fMiB\n",
		alg, res.IO, float64(M+res.IO)/float64(M), res.Expansions,
		float64(st.PeakResidentBytes)/(1<<20))
	fmt.Printf("%d-step schedule streamed to %s\n", n, out)
	return nil
}

func run(ctx context.Context, treePath string, M int64, mid bool, alg string, trace bool, dot string, doSearch bool, workers int, cacheBudget int64, out string) error {
	in, M, err := loadInstance(treePath, M, mid)
	if err != nil {
		return err
	}
	t := in.Tree
	fmt.Printf("%s  LB=%d Peak_incore=%d\n", t.String(), in.LB, in.Peak)
	if mid {
		fmt.Printf("using mid bound M=%d\n", M)
	}

	algs := []core.Algorithm{core.Algorithm(alg)}
	if alg == "all" {
		algs = append(append([]core.Algorithm(nil), core.PaperAlgorithms...), core.PostOrderMinMem, core.NaturalPostOrder)
	}
	header := []string{"algorithm", "IO", "performance", "peak_incore"}
	if doSearch {
		header = append(header, "IO_after_search")
	}
	tab := stats.NewTable(header...)
	runner := core.NewRunner(workers)
	runner.CacheBudget = cacheBudget
	runner.Ctx = ctx
	var lastSched tree.Schedule
	for _, a := range algs {
		res, err := runner.Run(a, t, M)
		if err != nil {
			return err
		}
		row := fmt.Sprintf("%s %d %.4f %d", a, res.IO, res.Performance(M), res.Peak)
		lastSched = res.Schedule
		if doSearch {
			s, err := search.Improve(t, M, res.Schedule, search.Options{Seed: 1})
			if err != nil {
				return err
			}
			row += fmt.Sprintf(" %d", s.IO)
			lastSched = s.Schedule
		}
		tab.AddRowf("%s", row)
	}
	if err := tab.Write(os.Stdout); err != nil {
		return err
	}

	if trace && lastSched != nil {
		res, err := memsim.RunTraced(t, M, lastSched, memsim.FiF)
		if err != nil {
			return err
		}
		fmt.Printf("\ntrace of %s (last algorithm):\n", algs[len(algs)-1])
		fmt.Print(memsim.RenderTrace(res, 60))
	}
	if dot != "" && lastSched != nil {
		f, err := os.Create(dot)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := t.WriteDOT(f, lastSched); err != nil {
			return err
		}
		fmt.Println("DOT written to", dot)
	}
	if out != "" && lastSched != nil {
		tv, err := core.NewTraversal(t, M, lastSched, algs[len(algs)-1])
		if err != nil {
			return err
		}
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := tv.Write(f); err != nil {
			return err
		}
		fmt.Printf("traversal (IO=%d) written to %s\n", tv.IO(), out)
	}
	return nil
}
