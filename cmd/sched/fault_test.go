//go:build faultinject

package main

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultinject"
)

// TestCkptStreamWriterFaultResume injects an I/O error at a deterministic
// byte of the schedule stream: the run must fail with the typed write
// error, the target path must stay untouched (the damage is confined to
// the .partial working file), and a -resume run must repair the partial
// and commit a stream byte-identical to an unfaulted run's. This is the
// disk-hiccup-then-retry loop the .partial design exists for.
func TestCkptStreamWriterFaultResume(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	treePath := writeTestTree(t, dir, 4000)
	ctx := context.Background()

	base := filepath.Join(dir, "base.txt")
	faultinject.Reset()
	if err := runStream(ctx, treePath, 0, true, "RecExpand", 1, 0, base, "", 0, false); err != nil {
		t.Fatalf("baseline stream: %v", err)
	}
	hits := faultinject.Hits(faultinject.WriterIO)
	if hits == 0 {
		t.Fatal("baseline stream offered no bytes to the fault writer")
	}
	want, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}

	out := filepath.Join(dir, "sched.txt")
	ck := filepath.Join(dir, "run.ckpt")
	hit := faultinject.PlanHit(41, faultinject.WriterIO, hits)
	faultinject.Reset()
	faultinject.Arm(faultinject.WriterIO, hit)
	err = runStream(ctx, treePath, 0, true, "RecExpand", 1, 0, out, ck, 16, false)
	faultinject.Reset()
	if !errors.Is(err, faultinject.ErrWrite) {
		t.Fatalf("faulted stream: err = %v, want ErrWrite", err)
	}
	if _, err := os.Stat(out); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("faulted run left something at the target path (stat: %v)", err)
	}

	if err := runStream(ctx, treePath, 0, true, "RecExpand", 1, 0, out, ck, 16, true); err != nil {
		t.Fatalf("resume after write fault: %v", err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("recovered stream differs from baseline (%d vs %d bytes)", len(got), len(want))
	}
	if _, err := os.Stat(out + ".partial"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("resume left a .partial behind (stat: %v)", err)
	}
}

// TestCkptRunOutputWriterFault injects an I/O error into the -o and -dot
// writers of the materializing path: the atomic temp+fsync+rename write
// must fail loudly, leave nothing at the target path (and no temp
// residue), and a clean retry must succeed.
func TestCkptRunOutputWriterFault(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	treePath := writeTestTree(t, dir, 1000)
	ctx := context.Background()

	for _, tc := range []struct {
		name string
		call func(dot, out string) error
	}{
		{"dot", func(dot, out string) error {
			return run(ctx, treePath, 0, true, "RecExpand", false, dot, false, 1, 0, "", "", 0, false)
		}},
		{"o", func(dot, out string) error {
			return run(ctx, treePath, 0, true, "RecExpand", false, "", false, 1, 0, out, "", 0, false)
		}},
	} {
		target := filepath.Join(dir, tc.name+".out")
		dot, out := target, target

		faultinject.Reset()
		if err := tc.call(dot, out); err != nil {
			t.Fatalf("%s: counting run: %v", tc.name, err)
		}
		hits := faultinject.Hits(faultinject.WriterIO)
		if hits == 0 {
			t.Fatalf("%s: no bytes offered to the fault writer", tc.name)
		}
		if err := os.Remove(target); err != nil {
			t.Fatal(err)
		}

		hit := faultinject.PlanHit(42, faultinject.WriterIO, hits)
		faultinject.Reset()
		faultinject.Arm(faultinject.WriterIO, hit)
		err := tc.call(dot, out)
		faultinject.Reset()
		if !errors.Is(err, faultinject.ErrWrite) {
			t.Fatalf("%s: faulted run: err = %v, want ErrWrite", tc.name, err)
		}
		if _, err := os.Stat(target); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("%s: faulted run left something at the target path (stat: %v)", tc.name, err)
		}
		if _, err := os.Stat(target + ".tmp"); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("%s: faulted run left temp residue (stat: %v)", tc.name, err)
		}

		if err := tc.call(dot, out); err != nil {
			t.Fatalf("%s: retry after fault: %v", tc.name, err)
		}
		if fi, err := os.Stat(target); err != nil || fi.Size() == 0 {
			t.Fatalf("%s: retry produced no output (stat: %v, %v)", tc.name, fi, err)
		}
	}
}
