package main

import (
	"bufio"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/tree"
)

// TestStreamSchedSIGINTCancel is the end-to-end contract of the graceful
// interrupt path: a real sched binary streaming a schedule to disk, a real
// SIGINT mid-run. Whatever the race between the signal and the engine, the
// on-disk state must be crash-evident — either the target file carries the
// "# end" trailer and passes the strict reader (the run won), or the
// process exits 130, the target file was never created (the stream grows
// in <out>.partial until complete), and the partial stream is rejected by
// the strict reader (the signal won). A silent third state — a partial
// stream at the target path that parses as complete — is the bug this test
// exists to rule out.
func TestStreamSchedSIGINTCancel(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and signals a real binary; skipped under -short")
	}
	if runtime.GOOS == "windows" {
		t.Skip("POSIX signal semantics required")
	}
	dir := t.TempDir()

	bin := filepath.Join(dir, "sched")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building sched: %v\n%s", err, out)
	}

	// Big enough that the expansion takes long enough to be interrupted,
	// small enough that the completed-before-signal outcome stays cheap.
	in := experiments.Huge(400000, 1)
	treePath := filepath.Join(dir, "tree.json")
	f, err := os.Create(treePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Tree.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	schedPath := filepath.Join(dir, "sched.txt")
	cmd := exec.Command(bin, "-tree", treePath, "-mid", "-alg", "RecExpand", "-stream-sched", schedPath)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// The instance header is printed after the tree is loaded and before
	// the engine starts: signalling shortly after it maximizes the chance
	// of landing mid-expansion rather than mid-parse.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		cmd.Wait()
		t.Fatalf("sched exited before printing the instance header: %v", sc.Err())
	}
	time.Sleep(50 * time.Millisecond)
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatalf("SIGINT: %v", err)
	}
	for sc.Scan() {
		// Drain so the child never blocks on a full stdout pipe.
	}
	werr := cmd.Wait()

	switch {
	case werr == nil:
		// The run beat the signal: the committed target must be complete
		// and strict, and the working partial must have been renamed away.
		sf, err := os.Open(schedPath)
		if err != nil {
			t.Fatalf("stream file missing after completed run: %v", err)
		}
		defer sf.Close()
		sched, serr := tree.ReadScheduleStrict(sf)
		if serr != nil {
			t.Fatalf("run completed but strict read failed: %v", serr)
		}
		if len(sched) != in.Tree.N() {
			t.Fatalf("complete stream has %d ids, want %d", len(sched), in.Tree.N())
		}
		if _, err := os.Stat(schedPath + ".partial"); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("completed run left %s.partial behind (stat: %v)", schedPath, err)
		}
	default:
		var xerr *exec.ExitError
		if !errors.As(werr, &xerr) {
			t.Fatalf("wait: %v", werr)
		}
		if code := xerr.ExitCode(); code != 130 {
			t.Fatalf("interrupted sched exited %d, want 130", code)
		}
		// The signal won: the target path must not exist at all — the
		// truncated stream lives only in the .partial working file, and
		// the strict reader must reject it.
		if _, err := os.Stat(schedPath); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("interrupted run left something at the target path (stat: %v)", err)
		}
		pf, err := os.Open(schedPath + ".partial")
		if err != nil {
			t.Fatalf("partial stream missing after interrupt: %v", err)
		}
		defer pf.Close()
		sched, serr := tree.ReadScheduleStrict(pf)
		if serr == nil {
			t.Fatalf("interrupted run left a partial stream that passes the strict reader (%d ids): truncation is not crash-evident", len(sched))
		}
		if !errors.Is(serr, tree.ErrTruncatedSchedule) {
			t.Fatalf("strict read error = %v, want ErrTruncatedSchedule", serr)
		}
	}
}
