package main

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/randtree"
	"repro/internal/tree"
)

// writeTestTree materializes a deterministic synthetic tree as JSON for
// the CLI paths under test.
func writeTestTree(t *testing.T, dir string, n int) string {
	t.Helper()
	tr := randtree.Synth(n, rand.New(rand.NewSource(7)))
	path := filepath.Join(dir, "tree.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunStreamCkptResume drives the streaming CLI path through every
// recovery shape an operator can encounter after a hard kill — torn
// partial stream, complete-but-unrenamed partial, and a kill before
// anything durable existed — and requires the recovered target file to be
// byte-identical to an uninterrupted run's.
func TestRunStreamCkptResume(t *testing.T) {
	dir := t.TempDir()
	treePath := writeTestTree(t, dir, 4000)
	ctx := context.Background()

	base := filepath.Join(dir, "base.txt")
	if err := runStream(ctx, treePath, 0, true, "RecExpand", 1, 0, base, "", 0, false); err != nil {
		t.Fatalf("baseline stream: %v", err)
	}
	want, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}

	out := filepath.Join(dir, "sched.txt")
	partial := out + ".partial"
	ck := filepath.Join(dir, "run.ckpt")

	// Checkpoint-armed run: same bytes, no working partial left behind,
	// and a durable checkpoint for the recovery scenarios below.
	if err := runStream(ctx, treePath, 0, true, "RecExpand", 1, 0, out, ck, 16, false); err != nil {
		t.Fatalf("armed stream: %v", err)
	}
	if got, _ := os.ReadFile(out); !bytes.Equal(got, want) {
		t.Fatalf("checkpoint-armed stream differs from baseline (%d vs %d bytes)", len(got), len(want))
	}
	if _, err := os.Stat(partial); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("completed run left %s (stat: %v)", partial, err)
	}
	if _, err := os.Stat(ck); err != nil {
		t.Fatalf("armed run left no checkpoint: %v", err)
	}

	// Torn partial: a SIGKILL leaves a prefix of the stream cut mid-line
	// and no committed target. Resume must repair the tail, skip what is
	// durable, and commit a byte-identical stream.
	if err := os.WriteFile(partial, want[:len(want)*2/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(out); err != nil {
		t.Fatal(err)
	}
	if err := runStream(ctx, treePath, 0, true, "RecExpand", 1, 0, out, ck, 16, true); err != nil {
		t.Fatalf("resume from torn partial: %v", err)
	}
	if got, _ := os.ReadFile(out); !bytes.Equal(got, want) {
		t.Fatalf("resumed stream differs from baseline (%d vs %d bytes)", len(got), len(want))
	}
	if _, err := os.Stat(partial); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("resume left %s (stat: %v)", partial, err)
	}

	// Complete partial: the stream sealed its trailer but the process died
	// before the final rename. Resume must commit it without recomputing.
	if err := os.Rename(out, partial); err != nil {
		t.Fatal(err)
	}
	if err := runStream(ctx, treePath, 0, true, "RecExpand", 1, 0, out, ck, 16, true); err != nil {
		t.Fatalf("resume from complete partial: %v", err)
	}
	if got, _ := os.ReadFile(out); !bytes.Equal(got, want) {
		t.Fatalf("re-committed stream differs from baseline")
	}

	// Killed before anything durable existed: no partial, no checkpoint.
	// Resume degrades to a fresh run instead of erroring.
	if err := os.Remove(out); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(ck); err != nil {
		t.Fatal(err)
	}
	if err := runStream(ctx, treePath, 0, true, "RecExpand", 1, 0, out, ck, 16, true); err != nil {
		t.Fatalf("resume with nothing durable: %v", err)
	}
	if got, _ := os.ReadFile(out); !bytes.Equal(got, want) {
		t.Fatalf("fresh-degraded resume differs from baseline")
	}
}

// TestRunMaterializeCkptResume covers the non-streaming CLI path: the
// -checkpoint/-resume flags thread into core.Runner and the -o traversal
// written after a resumed run is identical to the uninterrupted one's.
func TestRunMaterializeCkptResume(t *testing.T) {
	dir := t.TempDir()
	treePath := writeTestTree(t, dir, 2000)
	ctx := context.Background()
	outJSON := filepath.Join(dir, "traversal.json")
	ck := filepath.Join(dir, "run.ckpt")

	if err := run(ctx, treePath, 0, true, "RecExpand", false, "", false, 1, 0, outJSON, ck, 8, false); err != nil {
		t.Fatalf("armed run: %v", err)
	}
	want, err := os.ReadFile(outJSON)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(ck); err != nil {
		t.Fatalf("armed run left no checkpoint: %v", err)
	}

	if err := run(ctx, treePath, 0, true, "RecExpand", false, "", false, 1, 0, outJSON, ck, 8, true); err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if got, _ := os.ReadFile(outJSON); !bytes.Equal(got, want) {
		t.Fatalf("resumed traversal differs from baseline")
	}

	// Resume with a checkpoint that was never committed starts fresh.
	if err := os.Remove(ck); err != nil {
		t.Fatal(err)
	}
	if err := run(ctx, treePath, 0, true, "RecExpand", false, "", false, 1, 0, outJSON, ck, 8, true); err != nil {
		t.Fatalf("resume without checkpoint: %v", err)
	}
	if got, _ := os.ReadFile(outJSON); !bytes.Equal(got, want) {
		t.Fatalf("fresh-degraded resume traversal differs from baseline")
	}
}

// TestRunRepairSchedResumeOffset covers the standalone -repair-sched mode:
// a torn stream is trimmed in place to its trusted prefix, a complete
// stream is left untouched, and a missing file is an error.
func TestRunRepairSchedResumeOffset(t *testing.T) {
	dir := t.TempDir()

	torn := filepath.Join(dir, "torn.txt")
	if err := os.WriteFile(torn, []byte("3\n1\n4\n1\n5"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runRepair(torn); err != nil {
		t.Fatalf("repairing torn stream: %v", err)
	}
	if got, _ := os.ReadFile(torn); string(got) != "3\n1\n4\n1\n" {
		t.Fatalf("torn stream repaired to %q, want trusted 4-id prefix", got)
	}

	complete := filepath.Join(dir, "complete.txt")
	body := "3\n1\n4\n# end count=3\n"
	if err := os.WriteFile(complete, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runRepair(complete); err != nil {
		t.Fatalf("repairing complete stream: %v", err)
	}
	if got, _ := os.ReadFile(complete); string(got) != body {
		t.Fatalf("complete stream modified by repair: %q", got)
	}

	if err := runRepair(filepath.Join(dir, "nope.txt")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("repair of missing file: %v, want os.ErrNotExist", err)
	}
}

// TestSchedCkptKillResume is the end-to-end hard-kill contract: a real
// sched binary streaming with -checkpoint armed, a real SIGKILL mid-run —
// no signal handler, no graceful flush — then a -resume invocation that
// must finish the job with a target file byte-identical to an
// uninterrupted run's. It also pins the CLI's flag validation for the
// checkpoint options.
func TestSchedCkptKillResume(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real binary; skipped under -short")
	}
	if runtime.GOOS == "windows" {
		t.Skip("POSIX signal semantics required")
	}
	dir := t.TempDir()

	bin := filepath.Join(dir, "sched")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building sched: %v\n%s", err, out)
	}

	in := experiments.Huge(300000, 1)
	treePath := filepath.Join(dir, "tree.json")
	f, err := os.Create(treePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Tree.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Uninterrupted reference bytes, computed in-process (same code path
	// as the binary's fresh run).
	base := filepath.Join(dir, "base.txt")
	if err := runStream(context.Background(), treePath, 0, true, "RecExpand", 0, 0, base, "", 0, false); err != nil {
		t.Fatalf("baseline stream: %v", err)
	}
	want, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}

	schedPath := filepath.Join(dir, "sched.txt")
	ck := filepath.Join(dir, "run.ckpt")
	cmd := exec.Command(bin, "-tree", treePath, "-mid", "-alg", "RecExpand",
		"-stream-sched", schedPath, "-checkpoint", ck)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Kill shortly after the instance header: mid-expansion, with some
	// checkpoints likely committed. SIGKILL gives the process no chance
	// to flush or clean anything.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		cmd.Wait()
		t.Fatalf("sched exited before printing the instance header: %v", sc.Err())
	}
	time.Sleep(150 * time.Millisecond)
	killErr := cmd.Process.Kill()
	for sc.Scan() {
		// Drain so the child never blocks on a full stdout pipe.
	}
	werr := cmd.Wait()
	completed := werr == nil && killErr != nil // beat the kill: already exited

	if !completed {
		// The kill won: the target must not exist (only .partial and/or a
		// checkpoint may).
		if _, err := os.Stat(schedPath); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("killed run left something at the target path (stat: %v)", err)
		}
	}

	// Recovery: a single -resume run must finish the stream, whatever
	// state the kill left (torn partial, checkpoint or neither).
	resumeCmd := exec.Command(bin, "-tree", treePath, "-mid", "-alg", "RecExpand",
		"-stream-sched", schedPath, "-checkpoint", ck, "-resume")
	if out, err := resumeCmd.CombinedOutput(); err != nil {
		t.Fatalf("resume run: %v\n%s", err, out)
	}
	got, err := os.ReadFile(schedPath)
	if err != nil {
		t.Fatalf("target missing after resume: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed stream differs from uninterrupted run (%d vs %d bytes)", len(got), len(want))
	}
	if _, err := os.Stat(schedPath + ".partial"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("resume left a .partial behind (stat: %v)", err)
	}
	sf, err := os.Open(schedPath)
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Close()
	if _, err := tree.ReadScheduleStrict(sf); err != nil {
		t.Fatalf("recovered stream fails the strict reader: %v", err)
	}

	// Flag validation: checkpointing is expansion-only, and -resume needs
	// the checkpoint path.
	bad := exec.Command(bin, "-tree", treePath, "-mid", "-alg", "OptMinMem", "-checkpoint", ck)
	if err := bad.Run(); err == nil {
		t.Fatal("-checkpoint with a non-expansion algorithm was accepted")
	}
	bad = exec.Command(bin, "-tree", treePath, "-mid", "-alg", "RecExpand", "-resume")
	if err := bad.Run(); err == nil {
		t.Fatal("-resume without -checkpoint was accepted")
	}
}
