// Command schedd serves the scheduling engine as a long-running
// multi-tenant daemon: clients POST tree instances (JSON, as written by
// treegen, or the treegen text format) to /schedule and stream back the
// schedule — the same bytes `sched -stream-sched` writes — while a budget
// lease broker partitions one global resident-byte budget across the
// concurrent requests (admission control: 429 + Retry-After under
// pressure, 413 for requests no budget state could ever admit).
//
// Requests may carry an idempotency_key: the daemon journals the key's
// progress durably (under -checkpoint-dir) so a retry of the same key
// with resume_from resumes the interrupted stream byte-identically
// instead of recomputing it. With -write-timeout set, a client too slow
// to keep up has its stream sealed with a truncation trailer — and, when
// keyed, a checkpoint to resume from — rather than pinning an engine.
//
// Usage:
//
//	schedd -budget 1GiB
//	schedd -addr 127.0.0.1:8437 -budget 512MiB -engines 8 -checkpoint-dir /var/lib/schedd
//	curl -s localhost:8437/schedule -d '{"tree":{"parents":[-1,0,0],"weights":[5,3,4]},"m":12}'
//
// SIGTERM or SIGINT starts a graceful drain: admission closes (readyz
// flips to 503), in-flight requests get -drain-grace to finish, then the
// stragglers are cancelled at engine quiescent points — their streams are
// sealed with a truncation trailer and, with -checkpoint-dir set, their
// progress is flushed as resumable req-<id>.ckpt files — and the process
// exits 0. A second signal force-kills.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/schedd"
)

func main() {
	os.Exit(run())
}

// run is main with an exit code, so deferred cleanup runs before exit.
func run() int {
	addr := flag.String("addr", "127.0.0.1:8437", "listen address (host:port; :0 picks a free port)")
	budget := flag.String("budget", "1GiB", "global resident-byte budget partitioned across concurrent requests")
	engines := flag.Int("engines", 0, "engine pool size bounding concurrent expansions (0 = 4)")
	workers := flag.Int("workers", 0, "per-engine expansion workers (0 = auto)")
	maxTree := flag.String("max-tree-bytes", "", "request body size limit, e.g. 64MiB (empty = 64MiB)")
	timeout := flag.Duration("timeout", 0, "default per-request run+stream timeout (0 = 10m)")
	maxWait := flag.Duration("max-wait", 0, "cap on the client-requested admission wait (0 = 30s)")
	ckptDir := flag.String("checkpoint-dir", "", "directory for per-request drain checkpoints (empty = no checkpoints)")
	writeTimeout := flag.Duration("write-timeout", 0, "per-write deadline on the response stream; a slower client gets its stream sealed with a truncation trailer (0 = never)")
	drainGrace := flag.Duration("drain-grace", 0, "how long a drain lets in-flight requests finish before cancelling them (0 = 5s)")
	drainTimeout := flag.Duration("drain-timeout", 60*time.Second, "hard bound on the whole drain")
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	b, err := core.ParseByteSize(*budget)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedd:", err)
		return 1
	}
	mt, err := core.ParseByteSize(*maxTree)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedd:", err)
		return 1
	}
	s, err := schedd.NewServer(schedd.Config{
		Budget:         b,
		Engines:        *engines,
		Workers:        *workers,
		MaxTreeBytes:   mt,
		DefaultTimeout: *timeout,
		MaxWait:        *maxWait,
		CheckpointDir:  *ckptDir,
		WriteTimeout:   *writeTimeout,
		DrainGrace:     *drainGrace,
		Logger:         logger,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedd:", err)
		return 1
	}

	// Install the drain trigger before the address is announced: a client
	// that reacts to the stdout line by signalling immediately must hit
	// the graceful path, never the default signal disposition. Once the
	// context is done the handler is uninstalled, so a second signal
	// force-kills a stuck drain.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedd:", err)
		return 1
	}
	// The one stdout line, for scripts that start schedd with :0 and need
	// the resolved port; everything else goes to the structured log.
	fmt.Printf("listening on %s\n", ln.Addr())
	logger.Info("schedd: serving", "addr", ln.Addr().String(), "budget_bytes", b)

	hs := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		logger.Error("schedd: serve failed", "err", err)
		return 1
	case <-ctx.Done():
		stopSignals()
	}

	logger.Info("schedd: drain started", "grace", drainGrace.String())
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		logger.Error("schedd: drain incomplete", "err", err)
		return 1
	}
	// No requests are in flight; Shutdown just closes the listener and
	// idle connections.
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	_ = hs.Shutdown(sctx)
	logger.Info("schedd: drained, exiting")
	return 0
}
