package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/experiments"
)

// TestDrainSIGTERM is the end-to-end graceful-shutdown contract of the
// daemon: a real schedd binary, a real request streaming mid-flight, a
// real SIGTERM. Whatever the race between the drain and the engine, the
// process must exit 0 and the client must hold a crash-evident stream —
// either sealed complete ("# end count=", no checkpoint left behind) or
// sealed truncated ("# truncated count=", with the in-flight progress
// flushed as a committed, readable checkpoint file). A hang, a non-zero
// exit, or an unsealed stream is the bug this test exists to rule out.
func TestDrainSIGTERM(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and signals a real binary; skipped under -short")
	}
	if runtime.GOOS == "windows" {
		t.Skip("POSIX signal semantics required")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "schedd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building schedd: %v\n%s", err, out)
	}
	ckptDir := filepath.Join(dir, "ckpt")
	if err := os.Mkdir(ckptDir, 0o755); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-budget", "1GiB",
		"-checkpoint-dir", ckptDir,
		"-drain-grace", "50ms",
		"-drain-timeout", "30s",
	)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Scrape the resolved address from the one stdout line.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		cmd.Wait()
		t.Fatalf("schedd exited before announcing its address: %v", sc.Err())
	}
	line := sc.Text()
	addr := line[strings.LastIndex(line, " ")+1:]
	base := "http://" + addr
	go func() {
		for sc.Scan() {
			// Drain so the child never blocks on a full stdout pipe.
		}
	}()

	// Liveness before load.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()

	// A big expansion request: the engine is busy for long enough that
	// the SIGTERM below lands mid-run with overwhelming probability. The
	// bound is computed client-side so the server spends the whole window
	// expanding rather than analyzing.
	in := experiments.Huge(400000, 1)
	raw, err := json.Marshal(in.Tree)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(struct {
		Tree json.RawMessage `json:"tree"`
		M    int64           `json:"m"`
	}{Tree: raw, M: in.M(core.BoundMid)})
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		status int
		body   []byte
		err    error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Post(base+"/schedule", "application/json", bytes.NewReader(body))
		if err != nil {
			done <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		done <- result{status: resp.StatusCode, body: b, err: err}
	}()

	// Let the request get admitted and the engine start, then drain.
	time.Sleep(300 * time.Millisecond)
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}

	werr := cmd.Wait()
	if werr != nil {
		var xerr *exec.ExitError
		if errors.As(werr, &xerr) {
			t.Fatalf("drained schedd exited %d, want 0", xerr.ExitCode())
		}
		t.Fatalf("wait: %v", werr)
	}

	res := <-done
	if res.err != nil {
		t.Fatalf("in-flight client: %v", res.err)
	}
	if res.status != http.StatusOK {
		t.Fatalf("in-flight client status %d: %s", res.status, res.body)
	}
	ents, err := os.ReadDir(ckptDir)
	if err != nil {
		t.Fatal(err)
	}
	switch {
	case bytes.Contains(res.body, []byte("# end count=")):
		// The run beat the drain: complete stream, checkpoint cleaned up.
		if len(ents) != 0 {
			t.Fatalf("completed request left checkpoints: %v", ents)
		}
	case bytes.Contains(res.body, []byte("# truncated count=")):
		// The drain won. If the cancel landed after any engine progress
		// there is exactly one checkpoint and it must be committed and
		// readable; a cancel that beat the engine to its first write
		// legitimately leaves nothing behind. Never more than one file,
		// and never a torn one.
		switch len(ents) {
		case 0:
			t.Log("cancel landed before the first checkpoint write")
		case 1:
			st, err := ckpt.ReadFile(filepath.Join(ckptDir, ents[0].Name()))
			if err != nil {
				t.Fatalf("drained checkpoint unreadable: %v", err)
			}
			t.Logf("drain checkpointed at phase=%v emitted=%d", st.Phase, st.EmittedIDs)
		default:
			t.Fatalf("drained request left %d checkpoint files, want at most 1: %v", len(ents), ents)
		}
	default:
		t.Fatalf("in-flight stream is not crash-evident:\n...%q", tailBytes(res.body, 120))
	}
}

// tailBytes returns the last n bytes of b for failure messages.
func tailBytes(b []byte, n int) []byte {
	if len(b) <= n {
		return b
	}
	return b[len(b)-n:]
}

// TestDrainSIGTERMIdle: a SIGTERM to an idle daemon exits 0 promptly.
func TestDrainSIGTERMIdle(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and signals a real binary; skipped under -short")
	}
	if runtime.GOOS == "windows" {
		t.Skip("POSIX signal semantics required")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "schedd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building schedd: %v\n%s", err, out)
	}
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-budget", "64MiB")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		cmd.Wait()
		t.Fatal("no address line")
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("idle drain exited non-zero: %v", err)
	}
}
