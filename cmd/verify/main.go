// Command verify checks an out-of-core traversal against the paper's
// validity conditions: given a tree (JSON, as written by treegen), a
// memory bound, and optionally a schedule and/or an I/O function, it
// reports whether the traversal is valid and what it costs.
//
//   - With only -tree and -M: verifies that the tree is processable
//     (M ≥ LB) and reports LB, Peak, and the I/O lower bound.
//   - With -sched file: validates the schedule and reports its FiF I/O
//     (Theorem 1 gives the best τ for it).
//   - With -tau file: computes a schedule realizing τ if one exists
//     (Theorem 2) and prints it.
//   - With both: checks the explicit (σ, τ) traversal.
//
// Schedules and τ are JSON arrays of integers.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/core"
	"repro/internal/expand"
	"repro/internal/liu"
	"repro/internal/memsim"
	"repro/internal/tree"
)

func main() {
	treePath := flag.String("tree", "", "task tree JSON file")
	M := flag.Int64("M", 0, "memory bound (units)")
	schedPath := flag.String("sched", "", "schedule JSON file (array of node ids)")
	tauPath := flag.String("tau", "", "I/O function JSON file (array of volumes)")
	traversalPath := flag.String("traversal", "", "traversal JSON file written by sched -o (overrides -M/-sched/-tau)")
	flag.Parse()

	// SIGINT/SIGTERM cancel the context, checked at the seams between
	// stages (load, analysis, validation); a second signal hits the
	// re-installed default disposition and kills outright. As in sched,
	// an interrupted run exits 130 so scripts can tell a cancel from an
	// invalid traversal.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	go func() {
		<-ctx.Done()
		stopSignals()
	}()

	var err error
	if *traversalPath != "" {
		err = runTraversal(ctx, *treePath, *traversalPath)
	} else {
		err = run(ctx, *treePath, *M, *schedPath, *tauPath)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "verify:", err)
		if errors.Is(err, context.Canceled) {
			os.Exit(130) // interrupted, 128+SIGINT: scripts can tell a cancel from a failure
		}
		os.Exit(1)
	}
}

func runTraversal(ctx context.Context, treePath, traversalPath string) error {
	if treePath == "" {
		return fmt.Errorf("need -tree")
	}
	tf, err := os.Open(treePath)
	if err != nil {
		return err
	}
	t, err := tree.ReadJSON(tf)
	tf.Close()
	if err != nil {
		return err
	}
	vf, err := os.Open(traversalPath)
	if err != nil {
		return err
	}
	tv, err := core.ReadTraversal(vf)
	vf.Close()
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := tv.Validate(t); err != nil {
		return fmt.Errorf("traversal INVALID: %w", err)
	}
	fmt.Printf("traversal valid: M=%d, I/O volume %d (algorithm %s)\n", tv.M, tv.IO(), tv.Algorithm)
	return nil
}

func run(ctx context.Context, treePath string, M int64, schedPath, tauPath string) error {
	if treePath == "" || M <= 0 {
		return fmt.Errorf("need -tree and -M > 0")
	}
	f, err := os.Open(treePath)
	if err != nil {
		return err
	}
	t, err := tree.ReadJSON(f)
	f.Close()
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	lb := t.MaxWBar()
	peak := liu.MinMemPeak(t)
	fmt.Printf("%s\n", t.String())
	fmt.Printf("LB=%d Peak_incore=%d M=%d I/O lower bound=%d\n", lb, peak, M, core.IOLowerBound(t, M))
	if M < lb {
		return fmt.Errorf("M=%d below LB=%d: the tree cannot be processed", M, lb)
	}

	var sched tree.Schedule
	if schedPath != "" {
		var raw []int
		if err := readJSON(schedPath, &raw); err != nil {
			return err
		}
		sched = tree.Schedule(raw)
	}
	var tau []int64
	if tauPath != "" {
		if err := readJSON(tauPath, &tau); err != nil {
			return err
		}
	}
	// The inputs are loaded and the cheap analysis is printed; bail
	// before the validation/search stage, which dominates on big trees.
	if err := ctx.Err(); err != nil {
		return err
	}
	switch {
	case sched != nil && tau != nil:
		if err := memsim.Validate(t, M, sched, tau); err != nil {
			return fmt.Errorf("traversal INVALID: %w", err)
		}
		var total int64
		for _, ti := range tau {
			total += ti
		}
		fmt.Printf("traversal valid; declared I/O volume %d\n", total)
	case sched != nil:
		res, err := memsim.Run(t, M, sched, memsim.FiF)
		if err != nil {
			return fmt.Errorf("schedule INVALID: %w", err)
		}
		fmt.Printf("schedule valid; FiF I/O volume %d (optimal for this schedule by Theorem 1)\n", res.IO)
	case tau != nil:
		sched, err := expand.ScheduleForIO(t, M, tau)
		if err != nil {
			return fmt.Errorf("no valid schedule for the given τ: %w", err)
		}
		out, err := json.Marshal(sched)
		if err != nil {
			return err
		}
		fmt.Printf("τ is realizable (Theorem 2); one valid schedule:\n%s\n", out)
	default:
		fmt.Println("tree is processable at this bound")
	}
	return nil
}

func readJSON(path string, dst any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, dst)
}
