package main

import (
	"errors"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"syscall"
	"testing"
	"time"

	"repro/internal/randtree"
)

// TestVerifySIGTERM is the interrupt contract of the checker: a real
// verify binary on a tree large enough that the in-core analysis takes
// seconds, a real SIGTERM mid-run. Either the run wins (exit 0, the
// report printed) or the signal wins (exit 130 at the next stage seam);
// a plain failure exit is the bug this test exists to rule out — scripts
// must be able to tell a cancelled check from an invalid traversal.
func TestVerifySIGTERM(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and signals a real binary; skipped under -short")
	}
	if runtime.GOOS == "windows" {
		t.Skip("POSIX signal semantics required")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "verify")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building verify: %v\n%s", err, out)
	}

	// Big enough that the peak/lower-bound analysis runs for seconds.
	tr := randtree.Synth(400000, rand.New(rand.NewSource(7)))
	treePath := filepath.Join(dir, "tree.json")
	f, err := os.Create(treePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(bin, "-tree", treePath, "-M", strconv.FormatInt(tr.MaxWBar(), 10))
	cmd.Stderr = os.Stderr
	cmd.Stdout = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()
	time.Sleep(150 * time.Millisecond)
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}

	werr := cmd.Wait()
	if werr == nil {
		return // the analysis beat the signal: a clean, complete report
	}
	var xerr *exec.ExitError
	if !errors.As(werr, &xerr) {
		t.Fatalf("wait: %v", werr)
	}
	if code := xerr.ExitCode(); code != 130 {
		t.Fatalf("interrupted verify exited %d, want 130", code)
	}
}
