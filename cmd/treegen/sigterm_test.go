package main

import (
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"syscall"
	"testing"
	"time"

	"repro/internal/tree"
)

// TestGenerateSIGTERM is the interrupt contract of the generator: a real
// treegen binary on a multi-second workload, a real SIGTERM mid-build.
// Whatever the race between the signal and the generation stages, the
// outcome must be crash-evident — either the run won (exit 0, the output
// file parses as a complete tree) or the signal won (exit 130, the output
// file was never created; the write is atomic and the seam checks precede
// it). A third state — exit 1, or a partial file at the output path — is
// the bug this test exists to rule out.
func TestGenerateSIGTERM(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and signals a real binary; skipped under -short")
	}
	if runtime.GOOS == "windows" {
		t.Skip("POSIX signal semantics required")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "treegen")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building treegen: %v\n%s", err, out)
	}

	// A grid large enough that nested dissection plus the symbolic
	// factorization take a couple of seconds — long enough for the signal
	// to land mid-build, short enough that the completed-before-signal
	// outcome stays cheap.
	out := filepath.Join(dir, "tree.json")
	cmd := exec.Command(bin, "-kind", "grid3d", "-n", "40", "-nd", "-o", out)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()
	time.Sleep(150 * time.Millisecond)
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}

	werr := cmd.Wait()
	switch {
	case werr == nil:
		// The run won: the output must be a complete, parseable tree.
		f, err := os.Open(out)
		if err != nil {
			t.Fatalf("clean exit but no output file: %v", err)
		}
		defer f.Close()
		if _, err := tree.ReadJSON(f); err != nil {
			t.Fatalf("clean exit left an unparseable tree: %v", err)
		}
	default:
		var xerr *exec.ExitError
		if !errors.As(werr, &xerr) {
			t.Fatalf("wait: %v", werr)
		}
		if code := xerr.ExitCode(); code != 130 {
			t.Fatalf("interrupted treegen exited %d, want 130", code)
		}
		// The signal won: the atomic writer must not have left anything
		// (committed or partial) at the output path.
		if _, err := os.Stat(out); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("interrupted treegen left a file at -o: stat err=%v", err)
		}
	}
}
