//go:build faultinject

package main

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/randtree"
	"repro/internal/tree"
)

// TestWriteTreeWriterFaultCkptAtomic injects an I/O error into treegen's
// -o writer: the atomic write must fail loudly, leave neither a truncated
// tree nor temp residue at the target, and a clean retry must produce a
// tree that parses back identically.
func TestWriteTreeWriterFaultCkptAtomic(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	tr := randtree.Synth(500, rand.New(rand.NewSource(3)))
	target := filepath.Join(dir, "tree.json")

	faultinject.Reset()
	if err := writeTree(tr, target); err != nil {
		t.Fatalf("counting run: %v", err)
	}
	hits := faultinject.Hits(faultinject.WriterIO)
	if hits == 0 {
		t.Fatal("no bytes offered to the fault writer")
	}
	if err := os.Remove(target); err != nil {
		t.Fatal(err)
	}

	hit := faultinject.PlanHit(43, faultinject.WriterIO, hits)
	faultinject.Reset()
	faultinject.Arm(faultinject.WriterIO, hit)
	err := writeTree(tr, target)
	faultinject.Reset()
	if !errors.Is(err, faultinject.ErrWrite) {
		t.Fatalf("faulted write: err = %v, want ErrWrite", err)
	}
	if _, err := os.Stat(target); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("faulted write left something at the target path (stat: %v)", err)
	}
	if _, err := os.Stat(target + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("faulted write left temp residue (stat: %v)", err)
	}

	if err := writeTree(tr, target); err != nil {
		t.Fatalf("retry after fault: %v", err)
	}
	f, err := os.Open(target)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := tree.ReadJSON(f)
	if err != nil {
		t.Fatalf("retried tree does not parse: %v", err)
	}
	if got.N() != tr.N() {
		t.Fatalf("retried tree has %d nodes, want %d", got.N(), tr.N())
	}
}
