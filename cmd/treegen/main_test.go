package main

import (
	"context"
	"strings"
	"testing"
)

func TestBuildKinds(t *testing.T) {
	cases := []struct {
		kind string
		n    int
		ord  string
		min  int // minimum acceptable node count
	}{
		{"synth", 50, "natural", 50},
		{"grid2d", 8, "natural", 8},
		{"grid2d", 8, "nd", 8},
		{"grid3d", 3, "natural", 3},
		{"grid3d", 3, "nd", 3},
		{"rand", 60, "natural", 5},
		{"rand", 60, "md", 5},
		{"rand", 60, "rcm", 5},
		{"band", 40, "natural", 5},
	}
	for _, c := range cases {
		tr, err := build(context.Background(), c.kind, c.n, 4, 3, 1, 0, c.ord, "")
		if err != nil {
			t.Fatalf("%s/%s: %v", c.kind, c.ord, err)
		}
		if tr.N() < c.min {
			t.Errorf("%s/%s: only %d nodes", c.kind, c.ord, tr.N())
		}
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := build(context.Background(), "nope", 10, 4, 3, 1, 0, "natural", ""); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := build(context.Background(), "rand", 10, 4, 3, 1, 0, "nd", ""); err == nil {
		t.Error("nd on non-grid accepted")
	}
	if _, err := build(context.Background(), "rand", 10, 4, 3, 1, 0, "quantum", ""); err == nil {
		t.Error("unknown ordering accepted")
	}
	if _, err := build(context.Background(), "mm", 10, 4, 3, 1, 0, "natural", ""); err == nil {
		t.Error("mm without input accepted")
	}
	if _, err := build(context.Background(), "mm", 10, 4, 3, 1, 0, "natural", "/nonexistent.mtx"); err == nil || !strings.Contains(err.Error(), "no such file") {
		t.Errorf("mm with missing file: %v", err)
	}
}
