// Command treegen generates task trees (to JSON on stdout or a file) from
// the dataset substrates of the reproduction: uniform random binary trees
// (SYNTH), elimination task trees of synthetic sparse matrices (TREES), or
// elimination task trees of a user-supplied Matrix Market file.
//
// Usage:
//
//	treegen -kind synth -n 3000 -seed 1 > tree.json
//	treegen -kind grid2d -n 24 -o grid.json
//	treegen -kind grid3d -n 6
//	treegen -kind rand -n 500 -deg 6
//	treegen -kind band -n 300 -bw 4
//	treegen -kind mm -in matrix.mtx
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/ckpt"
	"repro/internal/faultinject"
	"repro/internal/randtree"
	"repro/internal/sparse"
	"repro/internal/tree"
)

func main() {
	kind := flag.String("kind", "synth", "synth, grid2d, grid3d, rand, band, mm")
	n := flag.Int("n", 3000, "size parameter (nodes for synth/rand/band, grid side for grid2d/grid3d)")
	deg := flag.Int("deg", 6, "average degree for -kind rand")
	bw := flag.Int("bw", 4, "half bandwidth for -kind band")
	seed := flag.Int64("seed", 1, "random seed")
	relax := flag.Int64("relax", 0, "supernode amalgamation relaxation")
	nd := flag.Bool("nd", false, "apply nested dissection (grid2d/grid3d; shorthand for -ord nd)")
	ord := flag.String("ord", "natural", "fill-reducing ordering: natural, nd (grids), md (minimum degree), rcm")
	in := flag.String("in", "", "input Matrix Market file for -kind mm")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()
	if *nd {
		*ord = "nd"
	}

	// SIGINT/SIGTERM cancel the context, checked between the generation
	// stages (pattern build, ordering, symbolic factorization) and before
	// the output write — an interrupted generator exits 130 without ever
	// leaving a partial tree at -o (the write itself is atomic). A second
	// signal hits the re-installed default disposition and kills outright.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	go func() {
		<-ctx.Done()
		stopSignals()
	}()

	t, err := build(ctx, *kind, *n, *deg, *bw, *seed, *relax, *ord, *in)
	if err == nil {
		if cerr := ctx.Err(); cerr != nil {
			err = cerr
		} else {
			err = writeTree(t, *out)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "treegen:", err)
		if errors.Is(err, context.Canceled) {
			os.Exit(130) // interrupted, 128+SIGINT: scripts can tell a cancel from a failure
		}
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, t.String())
}

// writeTree emits the generated tree to stdout, or atomically
// (temp+fsync+rename) to out: a generator killed — or a disk filling up —
// mid-write never leaves a truncated tree at the requested path for a
// later sched run to trip over. faultinject.NewWriter is an identity
// wrapper on default builds.
func writeTree(t *tree.Tree, out string) error {
	if out == "" {
		return t.WriteJSON(os.Stdout)
	}
	return ckpt.WriteFileAtomic(out, func(w io.Writer) error {
		return t.WriteJSON(faultinject.NewWriter(w))
	})
}

func build(ctx context.Context, kind string, n, deg, bw int, seed, relax int64, ord, in string) (*tree.Tree, error) {
	rng := rand.New(rand.NewSource(seed))
	var p *sparse.Pattern
	switch kind {
	case "synth":
		return randtree.Synth(n, rng), nil
	case "grid2d":
		var err error
		if p, err = sparse.Grid2D(n, n); err != nil {
			return nil, err
		}
		if ord == "nd" {
			perm := sparse.NestedDissection2D(n, n, 8)
			var err error
			p, err = p.Permute(perm)
			if err != nil {
				return nil, err
			}
			ord = "natural"
		}
	case "grid3d":
		var err error
		if p, err = sparse.Grid3D(n, n, n); err != nil {
			return nil, err
		}
		if ord == "nd" {
			perm := sparse.NestedDissection3D(n, n, n, 8)
			var err error
			p, err = p.Permute(perm)
			if err != nil {
				return nil, err
			}
			ord = "natural"
		}
	case "rand":
		var err error
		if p, err = sparse.RandomSymmetric(n, deg, rng); err != nil {
			return nil, err
		}
	case "band":
		var err error
		if p, err = sparse.Band(n, bw); err != nil {
			return nil, err
		}
	case "mm":
		if in == "" {
			return nil, fmt.Errorf("-kind mm needs -in file.mtx")
		}
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		p, err = sparse.ReadMatrixMarket(f)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("unknown kind %q", kind)
	}
	// Seam between the pattern build and the fill-reducing ordering; the
	// orderings and the symbolic factorization below dominate on large
	// inputs.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	switch ord {
	case "natural", "":
	case "md":
		perm := sparse.MinimumDegree(p)
		var err error
		p, err = p.Permute(perm)
		if err != nil {
			return nil, err
		}
	case "rcm":
		perm := sparse.ReverseCuthillMcKee(p)
		var err error
		p, err = p.Permute(perm)
		if err != nil {
			return nil, err
		}
	case "nd":
		return nil, fmt.Errorf("-ord nd is only available for grid kinds")
	default:
		return nil, fmt.Errorf("unknown ordering %q", ord)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return sparse.EliminationTaskTree(p, relax)
}
